#include "src/sim/calendar.h"

#include "src/sim/sharded_calendar.h"

namespace uflip {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kBusTransfer:
      return "bus_transfer";
    case EventKind::kComplete:
      return "complete";
    case EventKind::kGeneric:
      return "generic";
  }
  return "unknown";
}

void SimContext::Schedule(const Event& e) {
  UFLIP_CHECK_MSG(e.time_us >= now_us_,
                  "event scheduled into the simulated past");
  owner_->ScheduleFrom(shard_, e);
}

}  // namespace uflip
