// ShardedCalendar: one EventCalendar per shard, events routed by
// (channel % shards). The point of sharding is intra-device
// parallelism: a device whose channels are independent resources can
// drain each shard's events on its own worker thread (RunAllParallel)
// and still produce exactly the output of a serial drain.
//
// Sharding contract (what makes parallel == serial, byte for byte):
//
//  * An event chain that stays on one channel stays on one shard, so
//    its events execute in (time_us, seq) order no matter how many
//    shards or threads drain the calendar.
//  * Handlers may only touch state owned by the event's channel (plus
//    per-shard state keyed on SimContext::shard()). The device model
//    honors this by construction; a serialized controller is a
//    cross-channel resource, so DeviceTimeline forces one shard there.
//  * Cross-shard scheduling is the one ordering hazard, and it is
//    governed by the conservative time-window protocol: during a
//    windowed parallel drain, an event scheduled onto another shard
//    must not fire before the current window ends (the lookahead
//    guarantee). Such events are parked in per-(source, destination)
//    mailboxes and delivered at the window barrier in deterministic
//    (source shard, mailbox position) order. An unwindowed parallel
//    drain (kNoWindow) forbids cross-shard scheduling outright.
#ifndef UFLIP_SIM_SHARDED_CALENDAR_H_
#define UFLIP_SIM_SHARDED_CALENDAR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/calendar.h"
#include "src/sim/event.h"
#include "src/util/thread_pool.h"

namespace uflip {

class ShardedCalendar {
 public:
  /// Sentinel window for RunAllParallel: drain every shard to empty in
  /// one round, no barriers. Requires that handlers never schedule
  /// across shards (checked).
  static constexpr uint64_t kNoWindow = UINT64_MAX;

  explicit ShardedCalendar(uint32_t shards);
  ShardedCalendar(const ShardedCalendar&) = delete;
  ShardedCalendar& operator=(const ShardedCalendar&) = delete;

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t ShardOf(uint32_t channel) const {
    return channel % static_cast<uint32_t>(shards_.size());
  }

  /// Schedules an event from outside a drain (initial population).
  /// Routed to shard ShardOf(e.channel); seq is stamped by that shard.
  void Schedule(const Event& e);

  [[nodiscard]] bool Empty() const;
  [[nodiscard]] size_t Size() const;

  /// Events popped and handled so far, across all drains and shards.
  [[nodiscard]] uint64_t Processed() const;

  /// Drains every shard to empty on the calling thread, merging shard
  /// heads in (time_us, shard index) order. This is the reference
  /// order; parallel drains must be observationally identical to it.
  void RunAll(EventHandler* handler);

  /// Drains every shard to empty using one pool task per shard.
  /// window_us bounds how far a round may advance past the earliest
  /// pending event before the barrier at which cross-shard mail is
  /// delivered; kNoWindow drains in a single barrier-free round.
  /// Falls back to RunAll when the calendar has one shard or `pool`
  /// is null.
  void RunAllParallel(EventHandler* handler, ThreadPool* pool,
                      uint64_t window_us = kNoWindow);

 private:
  friend class SimContext;

  // Cache-line-sized so two workers' hot counters never share a line.
  struct alignas(64) Shard {
    EventCalendar calendar;
    uint64_t processed = 0;
  };

  /// SimContext::Schedule lands here. Same-shard events go straight
  /// into the shard's calendar; cross-shard events are mailboxed (only
  /// legal when the event fires at/after the current window barrier).
  void ScheduleFrom(uint32_t src_shard, const Event& e);

  /// Pops and handles `shard`'s events with time_us < horizon.
  void DrainShard(uint32_t shard, EventHandler* handler, uint64_t horizon);

  /// Moves mailboxed events into their destination calendars in
  /// (source shard, position) order. Returns whether any were moved.
  bool DeliverMail();

  /// Earliest pending time across shards, or kNoWindow if all empty.
  uint64_t NextEventTime() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  // mail_[src * shards + dst]: written only by src's worker during a
  // round, read only at the barrier.
  std::vector<std::vector<Event>> mail_;
  // End of the current parallel round's window; UINT64_MAX outside
  // windowed rounds (making the cross-shard lookahead check reject
  // everything in unwindowed mode).
  uint64_t window_end_ = UINT64_MAX;
  bool draining_parallel_ = false;
};

}  // namespace uflip

#endif  // UFLIP_SIM_SHARDED_CALENDAR_H_
