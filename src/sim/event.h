// Typed events of the discrete-event simulation core (src/sim/). An
// Event is a point on the simulated timeline: "at time_us, something
// happens on channel". The calendar (calendar.h) orders events by
// (time_us, seq) -- seq is a monotone per-calendar sequence number
// stamped at Schedule time, so events at the same simulated instant
// execute in FIFO (schedule) order, deterministically, on every run.
//
// The device model (device_timeline.h) runs each IO as a short causal
// chain of these events:
//
//   kDispatch      the IO reaches the controller and acquires its
//                  resources (channel; plus the serialized controller
//                  timeline under the bounded-controller model);
//   kBusTransfer   the chip-to-controller data transfer acquires the
//                  channel's data-bus slot (only when per-channel bus
//                  contention is enabled -- ControllerConfig::
//                  channel_bus_contention);
//   kComplete      the IO's completion record becomes visible.
//
// kGeneric is for tests and future background processes (GC, aging)
// that want a calendar without inventing new kinds.
#ifndef UFLIP_SIM_EVENT_H_
#define UFLIP_SIM_EVENT_H_

#include <cstdint>

namespace uflip {

enum class EventKind : uint8_t {
  kDispatch,
  kBusTransfer,
  kComplete,
  kGeneric,
};

const char* EventKindName(EventKind kind);

/// One scheduled occurrence. The payload fields (id, aux, a/b/c) are
/// kind-specific and owned by whoever schedules the event; the calendar
/// only reads time_us and seq.
struct Event {
  /// Simulated time the event fires at.
  uint64_t time_us = 0;
  /// FIFO tie-breaker at equal time_us: stamped by the calendar when
  /// the event is scheduled, monotone per calendar shard. Callers never
  /// set it.
  uint64_t seq = 0;
  EventKind kind = EventKind::kGeneric;
  /// Flash channel the event belongs to; the ShardedCalendar routes an
  /// event to shard (channel % shards).
  uint32_t channel = 0;
  /// Caller payload: the IO token of the chain this event belongs to.
  uint64_t id = 0;
  /// Caller payload: a second integer slot (the device model carries
  /// the IO's start time through its chain here).
  uint64_t aux = 0;
  /// Caller payload: stage durations in microseconds (the device model
  /// uses a = controller stage, b = flash stage, c = bus stage).
  double a = 0;
  double b = 0;
  double c = 0;
};

/// Calendar ordering: earlier time first; FIFO (schedule order) at
/// equal times.
inline bool EventAfter(const Event& x, const Event& y) {
  if (x.time_us != y.time_us) return x.time_us > y.time_us;
  return x.seq > y.seq;
}

}  // namespace uflip

#endif  // UFLIP_SIM_EVENT_H_
