#include "src/sim/device_timeline.h"

#include <algorithm>
#include <utility>

#include "src/obs/metric_registry.h"
#include "src/obs/span_trace.h"
#include "src/util/logging.h"

namespace uflip {
namespace {

// Below this many pending events a sharded drain is all coordination
// and no work; drain on the calling thread instead. Per-Enqueue
// resolution (1-3 events) always takes the serial path.
constexpr size_t kParallelDrainMinEvents = 64;

uint32_t EffectiveShards(uint32_t channels, bool serialized_controller,
                         uint32_t calendar_shards) {
  // The serialized controller is a cross-channel resource: every
  // dispatch reads and advances one controller busy-until, so shards
  // would race on it. One shard keeps the model exact.
  if (serialized_controller) return 1;
  if (calendar_shards < 1) return 1;
  return std::min(calendar_shards, channels);
}

}  // namespace

DeviceTimeline::DeviceTimeline(uint32_t channels, bool serialized_controller,
                               uint32_t calendar_shards,
                               uint64_t initial_busy_us)
    : serialized_(serialized_controller),
      calendar_(
          EffectiveShards(channels, serialized_controller, calendar_shards)) {
  UFLIP_CHECK(channels >= 1);
  chan_busy_us_.assign(channels, initial_busy_us);
  bus_busy_us_.assign(channels, initial_busy_us);
  ctrl_busy_us_ = initial_busy_us;
  shard_state_.reserve(calendar_.shards());
  for (uint32_t s = 0; s < calendar_.shards(); ++s) {
    shard_state_.push_back(std::make_unique<ShardState>());
  }
  // A device prepared through the sync path carries its makespan over
  // even before the first queued IO completes.
  shard_state_[0]->busy_max_us = initial_busy_us;
}

void DeviceTimeline::Submit(uint64_t id, uint64_t ready_us, uint32_t channel,
                            const IoStages& stages) {
  Submit(id, ready_us, channel, stages, ready_us);
}

void DeviceTimeline::Submit(uint64_t id, uint64_t ready_us, uint32_t channel,
                            const IoStages& stages, uint64_t submit_us) {
  UFLIP_CHECK(channel < channels());
  Event e;
  e.time_us = ready_us;
  e.kind = EventKind::kDispatch;
  e.channel = channel;
  e.id = id;
  // The host submit time rides in the dispatch event's spare integer
  // slot for span capture (aux carries the start time from dispatch
  // onward).
  e.aux = submit_us;
  e.a = stages.controller_us;
  e.b = stages.channel_us;
  e.c = stages.bus_us;
  calendar_.Schedule(e);
}

void DeviceTimeline::ResolveAll(std::vector<IoOutcome>* out) {
  collect_outcomes_ = out != nullptr;
  if (!calendar_.Empty()) {
    if (calendar_.shards() > 1 &&
        calendar_.Size() >= kParallelDrainMinEvents) {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<ThreadPool>(calendar_.shards());
      }
      calendar_.RunAllParallel(this, pool_.get());
    } else {
      calendar_.RunAll(this);
    }
  }
  if (span_recorder_ != nullptr) {
    // Hand completed spans over in id order -- the same canonical
    // merge that makes outcomes independent of how events interleaved
    // across shards, so the recorder sees one deterministic stream for
    // every shard count.
    span_scratch_.clear();
    for (auto& s : shard_state_) {
      span_scratch_.insert(span_scratch_.end(), s->spans.begin(),
                           s->spans.end());
      s->spans.clear();
    }
    std::sort(span_scratch_.begin(), span_scratch_.end(),
              [](const IoSpan& x, const IoSpan& y) { return x.id < y.id; });
    for (const IoSpan& sp : span_scratch_) span_recorder_->Record(sp);
  }
  if (out == nullptr) return;
  // Merge the per-shard completions in id order: ids are issued in
  // submit order, so the merged view is independent of how events
  // interleaved across shards (the sharded-vs-serial identity).
  auto base = static_cast<std::ptrdiff_t>(out->size());
  for (auto& s : shard_state_) {
    out->insert(out->end(), s->outcomes.begin(), s->outcomes.end());
    s->outcomes.clear();
  }
  std::sort(out->begin() + base, out->end(),
            [](const IoOutcome& x, const IoOutcome& y) { return x.id < y.id; });
}

uint64_t DeviceTimeline::BusyMaxUs() const {
  uint64_t m = 0;
  for (const auto& s : shard_state_) {
    m = std::max(m, s->busy_max_us);
  }
  return m;
}

void DeviceTimeline::AttachMetrics(std::vector<TimeSeries*> channel_busy,
                                   TimeSeries* controller_busy,
                                   std::vector<TimeSeries*> bus_busy) {
  UFLIP_CHECK(channel_busy.empty() || channel_busy.size() == channels());
  UFLIP_CHECK(bus_busy.empty() || bus_busy.size() == channels());
  m_chan_busy_ = std::move(channel_busy);
  m_ctrl_busy_ = controller_busy;
  m_bus_busy_ = std::move(bus_busy);
}

void DeviceTimeline::AttachSpans(SpanRecorder* recorder) {
  span_recorder_ = recorder;
  for (auto& s : shard_state_) {
    s->open_spans.clear();
    s->spans.clear();
  }
}

void DeviceTimeline::Complete(SimContext& ctx, uint64_t id,
                              uint64_t start_us) {
  ShardState& s = *shard_state_[ctx.shard()];
  s.busy_max_us = std::max(s.busy_max_us, ctx.now_us());
  if (collect_outcomes_) {
    s.outcomes.push_back(IoOutcome{id, start_us, ctx.now_us()});
  }
  if (span_recorder_ != nullptr && !s.open_spans.empty()) {
    // Only bus-stage IOs park in open_spans (see kDispatch); everything
    // else was finalized there and never pays the map.
    auto it = s.open_spans.find(id);
    if (it != s.open_spans.end()) {
      it->second.complete_us = ctx.now_us();
      s.spans.push_back(it->second);
      s.open_spans.erase(it);
    }
  }
}

void DeviceTimeline::OnEvent(SimContext& ctx, const Event& e) {
  switch (e.kind) {
    case EventKind::kDispatch: {
      const uint32_t ch = e.channel;
      uint64_t start = 0;
      uint64_t ctrl_end = 0;
      uint64_t flash_end = 0;
      if (serialized_) {
        // Bounded controller: the IO starts when its channel AND the
        // controller are both free, holds the channel for its entire
        // service and additionally occupies the controller for its
        // controller stage. The fractional tail of the controller
        // stage travels with the flash stage so qd=1 reproduces the
        // synchronous start + floor(total) rounding exactly.
        start = std::max({e.time_us, ctrl_busy_us_, chan_busy_us_[ch]});
        auto ctrl_whole = static_cast<uint64_t>(e.a);
        double ctrl_frac = e.a - static_cast<double>(ctrl_whole);
        ctrl_busy_us_ = start + ctrl_whole;
        ctrl_end = ctrl_busy_us_;
        flash_end =
            start + ctrl_whole + static_cast<uint64_t>(ctrl_frac + e.b);
        obs::Span(m_ctrl_busy_, start, ctrl_busy_us_);
      } else {
        // Fully pipelined: the whole service time overlaps across
        // channels.
        start = std::max(e.time_us, chan_busy_us_[ch]);
        flash_end = start + static_cast<uint64_t>(e.a + e.b);
        ctrl_end = std::min(start + static_cast<uint64_t>(e.a), flash_end);
      }
      chan_busy_us_[ch] = flash_end;
      if (!m_chan_busy_.empty()) {
        obs::Span(m_chan_busy_[ch], start, flash_end);
      }
      if (span_recorder_ != nullptr) {
        IoSpan sp;
        sp.id = e.id;
        sp.channel = ch;
        sp.submit_us = e.aux;
        sp.ready_us = e.time_us;
        sp.start_us = start;
        sp.ctrl_end_us = ctrl_end;
        sp.flash_end_us = flash_end;
        sp.bus_start_us = flash_end;
        sp.bus_end_us = flash_end;
        sp.complete_us = flash_end;
        ShardState& ss = *shard_state_[ctx.shard()];
        if (e.c > 0) {
          // A bus stage follows: park the span for kBusTransfer /
          // kComplete to finalize.
          ss.open_spans[e.id] = sp;
        } else {
          // No bus stage -- the chain is final here (complete ==
          // flash_end), so skip the open_spans map on the common path.
          ss.spans.push_back(sp);
        }
      }
      Event next;
      next.channel = ch;
      next.id = e.id;
      next.aux = start;
      if (e.c > 0) {
        next.time_us = flash_end;
        next.kind = EventKind::kBusTransfer;
        next.a = e.c;
      } else {
        next.time_us = flash_end;
        next.kind = EventKind::kComplete;
      }
      ctx.Schedule(next);
      break;
    }
    case EventKind::kBusTransfer: {
      // The channel's data-bus slot: chip-to-controller transfers of
      // IOs on one channel serialize even though their flash stages
      // already completed.
      const uint32_t ch = e.channel;
      uint64_t start = std::max(e.time_us, bus_busy_us_[ch]);
      uint64_t end = start + static_cast<uint64_t>(e.a);
      bus_busy_us_[ch] = end;
      if (!m_bus_busy_.empty()) {
        obs::Span(m_bus_busy_[ch], start, end);
      }
      if (span_recorder_ != nullptr) {
        auto& open = shard_state_[ctx.shard()]->open_spans;
        auto it = open.find(e.id);
        if (it != open.end()) {
          it->second.bus_start_us = start;
          it->second.bus_end_us = end;
        }
      }
      Event done;
      done.time_us = end;
      done.kind = EventKind::kComplete;
      done.channel = ch;
      done.id = e.id;
      done.aux = e.aux;
      ctx.Schedule(done);
      break;
    }
    case EventKind::kComplete:
      Complete(ctx, e.id, e.aux);
      break;
    case EventKind::kGeneric:
      break;
  }
}

}  // namespace uflip
