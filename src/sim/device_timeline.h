// DeviceTimeline: the device's resource model expressed as calendar
// events. It replaces the ad-hoc busy-until scalars the device layer
// used to advance time with (`chan_busy_us_` / `ctrl_busy_us_` /
// `busy_max_us_`): every IO is now a short causal chain of events on a
// ShardedCalendar, and the per-channel / controller / bus occupancy is
// state this handler owns and advances as the chain fires.
//
// Event lifecycle of one IO (Submit -> ... -> IoOutcome):
//
//   kDispatch (at ready_us)
//     acquires the IO's channel -- and, under the bounded-controller
//     model, the serialized controller timeline -- exactly like the
//     old scalar arithmetic: start = max(ready, [controller,] channel
//     busy-until). Advances those busy-untils and either finishes the
//     chain or, when the IO has a bus stage, schedules:
//   kBusTransfer (at flash end; only with ControllerConfig::
//     channel_bus_contention)
//     acquires the channel's data-bus slot: chip-to-controller
//     transfers of IOs on one channel serialize even though their
//     flash stages already completed. Schedules:
//   kComplete (at the IO's completion time)
//     records the IoOutcome and folds the completion into the
//     device-wide busy-max.
//
// Byte-identity contract: with the bus stage off (every IoStages.
// bus_us == 0, the default), the outcomes equal the old scalar
// arithmetic microsecond for microsecond, for both the pipelined and
// the bounded-controller model -- including the floor-rounding of
// fractional service times. With shards > 1 the outcomes are byte-
// identical to shards == 1: channels map to shards disjointly, every
// chain stays on its channel, and outcomes are merged in token order.
//
// Threading: Submit/ResolveAll are called from one thread. ResolveAll
// drains serially, or -- when the timeline has > 1 shard and enough
// pending events to be worth it -- on an internal pool with one worker
// per shard (events of different shards touch disjoint channel state,
// so the drain is race-free; see sharded_calendar.h). A serialized
// controller is a cross-channel resource, so it forces one shard.
#ifndef UFLIP_SIM_DEVICE_TIMELINE_H_
#define UFLIP_SIM_DEVICE_TIMELINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/obs/io_span.h"
#include "src/sim/calendar.h"
#include "src/sim/sharded_calendar.h"
#include "src/util/thread_pool.h"

namespace uflip {

class TimeSeries;
class SpanRecorder;

/// Foreground stage durations of one IO, as produced by
/// SimDevice::ServiceUs: the (possibly serialized) controller stage,
/// the flash-channel stage, and the chip-to-controller bus stage
/// (zero unless per-channel bus contention is modeled).
struct IoStages {
  double controller_us = 0;
  double channel_us = 0;
  double bus_us = 0;
};

/// Resolved timing of one submitted IO.
struct IoOutcome {
  /// The id passed to Submit (the device layer passes the IoToken).
  uint64_t id = 0;
  /// When the IO acquired its resources (the old `start`).
  uint64_t start_us = 0;
  /// When the IO completed on the whole-microsecond device timeline.
  uint64_t complete_us = 0;
};

class DeviceTimeline : public EventHandler {
 public:
  /// A timeline over `channels` flash channels. serialized_controller
  /// selects the bounded-controller model (and forces one shard).
  /// calendar_shards > 1 spreads channels over that many calendar
  /// shards (clamped to [1, channels]) so large batched drains run on
  /// multiple threads. initial_busy_us seeds every busy-until (a
  /// device prepared through the sync path carries its state over).
  DeviceTimeline(uint32_t channels, bool serialized_controller,
                 uint32_t calendar_shards, uint64_t initial_busy_us);

  uint32_t channels() const {
    return static_cast<uint32_t>(chan_busy_us_.size());
  }
  uint32_t shards() const { return calendar_.shards(); }

  /// Schedules the dispatch of IO `id` (ready at `ready_us`, targeting
  /// `channel`) onto the calendar. The IO resolves at the next
  /// ResolveAll. `submit_us` is when the host submitted the IO (for
  /// span capture only -- queue-depth backpressure makes it precede
  /// ready_us on the async path); the 4-argument form uses ready_us.
  void Submit(uint64_t id, uint64_t ready_us, uint32_t channel,
              const IoStages& stages);
  void Submit(uint64_t id, uint64_t ready_us, uint32_t channel,
              const IoStages& stages, uint64_t submit_us);

  /// Drains the calendar to empty, firing every pending IO chain. The
  /// outcomes of all IOs completed by this drain are appended to *out
  /// in id order; pass nullptr to discard them (bulk timing runs).
  void ResolveAll(std::vector<IoOutcome>* out);

  /// Latest completion across all channels (the simulated makespan so
  /// far when the timeline started fresh). Only meaningful between
  /// drains.
  [[nodiscard]] uint64_t BusyMaxUs() const;

  /// Total calendar events fired so far (perf accounting).
  [[nodiscard]] uint64_t EventsProcessed() const { return calendar_.Processed(); }

  /// Wires the occupancy series fed from event transitions: one
  /// busy-timeline per channel, the controller timeline (bounded-
  /// controller model; ignored otherwise) and one bus-slot timeline
  /// per channel (bus-contention model; pass empty otherwise). Null
  /// entries / empty vectors detach. Never perturbs the timeline.
  void AttachMetrics(std::vector<TimeSeries*> channel_busy,
                     TimeSeries* controller_busy,
                     std::vector<TimeSeries*> bus_busy);

  /// Wires per-IO span capture: every chain resolved while attached is
  /// recorded into `recorder` (not owned; single-threaded -- spans are
  /// handed over inside ResolveAll, merged to id order across shards
  /// exactly like outcomes). nullptr detaches. Attach before
  /// submitting; chains in flight across an attach are dropped, not
  /// half-recorded. Never perturbs the timeline.
  void AttachSpans(SpanRecorder* recorder);

  void OnEvent(SimContext& ctx, const Event& e) override;

 private:
  // Cache-line-sized: shards fold completions concurrently. An IO's
  // whole chain stays on its channel's shard, so the open-span map is
  // shard-local state too.
  struct alignas(64) ShardState {
    uint64_t busy_max_us = 0;
    std::vector<IoOutcome> outcomes;
    /// Span capture (only touched while a recorder is attached):
    /// chains between dispatch and completion, then the completed
    /// spans awaiting the ResolveAll handover.
    std::unordered_map<uint64_t, IoSpan> open_spans;
    std::vector<IoSpan> spans;
  };

  void Complete(SimContext& ctx, uint64_t id, uint64_t start_us);

  bool serialized_;
  ShardedCalendar calendar_;
  /// Per-channel busy-until: IOs dispatched to different channels
  /// overlap; IOs on one channel serialize.
  std::vector<uint64_t> chan_busy_us_;
  /// Per-channel data-bus-slot busy-until (bus-contention model).
  std::vector<uint64_t> bus_busy_us_;
  /// Controller busy-until (bounded-controller model): controller
  /// stages of in-flight IOs never overlap.
  uint64_t ctrl_busy_us_ = 0;
  std::vector<std::unique_ptr<ShardState>> shard_state_;
  bool collect_outcomes_ = false;
  std::unique_ptr<ThreadPool> pool_;  // lazily created for sharded drains

  // Observability handles (null / empty when unattached).
  std::vector<TimeSeries*> m_chan_busy_;
  TimeSeries* m_ctrl_busy_ = nullptr;
  std::vector<TimeSeries*> m_bus_busy_;
  SpanRecorder* span_recorder_ = nullptr;
  std::vector<IoSpan> span_scratch_;  // ResolveAll id-order merge buffer
};

}  // namespace uflip

#endif  // UFLIP_SIM_DEVICE_TIMELINE_H_
