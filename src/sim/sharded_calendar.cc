#include "src/sim/sharded_calendar.h"

#include <future>
#include <utility>

#include "src/util/logging.h"

namespace uflip {

ShardedCalendar::ShardedCalendar(uint32_t shards) {
  UFLIP_CHECK(shards >= 1);
  shards_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  mail_.resize(static_cast<size_t>(shards) * shards);
}

void ShardedCalendar::Schedule(const Event& e) {
  shards_[ShardOf(e.channel)]->calendar.Schedule(e);
}

bool ShardedCalendar::Empty() const {
  for (const auto& s : shards_) {
    if (!s->calendar.empty()) return false;
  }
  for (const auto& box : mail_) {
    if (!box.empty()) return false;
  }
  return true;
}

size_t ShardedCalendar::Size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->calendar.size();
  for (const auto& box : mail_) n += box.size();
  return n;
}

uint64_t ShardedCalendar::Processed() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->processed;
  return n;
}

void ShardedCalendar::ScheduleFrom(uint32_t src_shard, const Event& e) {
  uint32_t dst = ShardOf(e.channel);
  if (dst == src_shard || !draining_parallel_) {
    shards_[dst]->calendar.Schedule(e);
    return;
  }
  // Cross-shard while another shard's worker may be running: park the
  // event in the (src, dst) mailbox for delivery at the barrier. The
  // conservative protocol is only sound if the event cannot fire
  // inside the current window -- that is the lookahead guarantee a
  // handler must provide to schedule across shards at all. With
  // kNoWindow, window_end_ is UINT64_MAX and no event can satisfy
  // this, which is exactly the "no cross-shard scheduling" rule of
  // unwindowed drains.
  UFLIP_CHECK_MSG(e.time_us >= window_end_,
                  "cross-shard event inside the current window "
                  "(shard %u -> %u)",
                  src_shard, dst);
  mail_[static_cast<size_t>(src_shard) * shards_.size() + dst].push_back(e);
}

void ShardedCalendar::DrainShard(uint32_t shard, EventHandler* handler,
                                 uint64_t horizon) {
  Shard& s = *shards_[shard];
  while (!s.calendar.empty() && s.calendar.Peek().time_us < horizon) {
    Event e = s.calendar.PopTop();
    SimContext ctx(this, shard, e.time_us);
    handler->OnEvent(ctx, e);
    ++s.processed;
  }
}

bool ShardedCalendar::DeliverMail() {
  bool any = false;
  // (source shard, position) order: deterministic because each source
  // appends to its mailboxes in its own drain order.
  for (size_t src = 0; src < shards_.size(); ++src) {
    for (size_t dst = 0; dst < shards_.size(); ++dst) {
      std::vector<Event>& box = mail_[src * shards_.size() + dst];
      for (const Event& e : box) {
        shards_[dst]->calendar.Schedule(e);
        any = true;
      }
      box.clear();
    }
  }
  return any;
}

uint64_t ShardedCalendar::NextEventTime() const {
  uint64_t t = kNoWindow;
  for (const auto& s : shards_) {
    if (!s->calendar.empty() && s->calendar.Peek().time_us < t) {
      t = s->calendar.Peek().time_us;
    }
  }
  return t;
}

void ShardedCalendar::RunAll(EventHandler* handler) {
  // Merge shard heads by (time_us, shard index); within a shard the
  // heap already yields (time_us, seq). This is the reference event
  // order for the byte-identity contract.
  for (;;) {
    uint32_t best = UINT32_MAX;
    uint64_t best_time = 0;
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      const EventCalendar& cal = shards_[s]->calendar;
      if (cal.empty()) continue;
      if (best == UINT32_MAX || cal.Peek().time_us < best_time) {
        best = s;
        best_time = cal.Peek().time_us;
      }
    }
    if (best == UINT32_MAX) return;
    Event e = shards_[best]->calendar.PopTop();
    SimContext ctx(this, best, e.time_us);
    handler->OnEvent(ctx, e);
    ++shards_[best]->processed;
  }
}

void ShardedCalendar::RunAllParallel(EventHandler* handler, ThreadPool* pool,
                                     uint64_t window_us) {
  if (shards_.size() == 1 || pool == nullptr) {
    RunAll(handler);
    return;
  }
  draining_parallel_ = true;
  for (;;) {
    uint64_t next = NextEventTime();
    if (next == kNoWindow) break;
    window_end_ = window_us == kNoWindow
                      ? kNoWindow
                      : (next > kNoWindow - window_us ? kNoWindow
                                                      : next + window_us);
    std::vector<std::future<void>> rounds;
    rounds.reserve(shards_.size());
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      uint64_t horizon = window_end_;
      rounds.push_back(pool->Submit(
          [this, s, handler, horizon] { DrainShard(s, handler, horizon); }));
    }
    for (auto& f : rounds) f.get();  // rethrows handler exceptions
    DeliverMail();
  }
  window_end_ = kNoWindow;
  draining_parallel_ = false;
}

}  // namespace uflip

