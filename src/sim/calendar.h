// EventCalendar: the priority queue at the heart of the discrete-event
// core. Events are ordered by (time_us, seq) -- simulated time first,
// then schedule order -- so draining a calendar visits events in
// nondecreasing simulated time with deterministic FIFO tie-breaking at
// equal timestamps, regardless of insertion order (two schedules at the
// same time_us pop in the order they were scheduled).
//
// A calendar is single-threaded state. Multi-threaded draining is the
// ShardedCalendar's job (sharded_calendar.h), which owns one
// EventCalendar per shard.
#ifndef UFLIP_SIM_CALENDAR_H_
#define UFLIP_SIM_CALENDAR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/event.h"
#include "src/util/logging.h"

namespace uflip {

class ShardedCalendar;

/// What an event handler sees while its event fires: the simulated
/// clock (the event's own timestamp) and a way to schedule follow-up
/// events into the owning calendar. Contexts are created by the
/// calendar drain loops and live only for the duration of one OnEvent
/// call.
class SimContext {
 public:
  SimContext(ShardedCalendar* owner, uint32_t shard, uint64_t now_us)
      : owner_(owner), shard_(shard), now_us_(now_us) {}

  /// The simulated instant the current event fires at.
  uint64_t now_us() const { return now_us_; }

  /// The calendar shard the current event belongs to (always 0 when
  /// draining serially or with one shard).
  uint32_t shard() const { return shard_; }

  /// Schedules a follow-up event. e.time_us must not precede now_us()
  /// -- the past is immutable. The event is routed to shard
  /// (e.channel % shards); scheduling onto a *different* shard is only
  /// legal inside a windowed parallel drain (see
  /// ShardedCalendar::RunAllParallel's lookahead contract).
  void Schedule(const Event& e);

 private:
  ShardedCalendar* owner_;
  uint32_t shard_;
  uint64_t now_us_;
};

/// Receives events as a calendar drains. Handlers may schedule
/// follow-up events through the context.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void OnEvent(SimContext& ctx, const Event& e) = 0;
};

/// A min-heap of events keyed on (time_us, seq). seq is stamped here,
/// at Schedule time, from a monotone per-calendar counter -- that is
/// what makes equal-time events FIFO and the drain order a pure
/// function of the schedule sequence.
class EventCalendar {
 public:
  EventCalendar() = default;
  EventCalendar(const EventCalendar&) = delete;
  EventCalendar& operator=(const EventCalendar&) = delete;

  /// Inserts a copy of `e` with the next sequence number. Any seq the
  /// caller set is overwritten.
  void Schedule(Event e) {
    e.seq = next_seq_++;
    heap_.push(e);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }

  /// The earliest event (min (time_us, seq)). Calendar must be
  /// non-empty.
  [[nodiscard]] const Event& Peek() const {
    UFLIP_DCHECK(!heap_.empty());
    return heap_.top();
  }

  /// Removes and returns the earliest event.
  [[nodiscard]] Event PopTop() {
    UFLIP_DCHECK(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  /// Total events ever scheduled (the seq counter). Survives pops;
  /// used by perf accounting and the FIFO tests.
  [[nodiscard]] uint64_t scheduled() const { return next_seq_; }

 private:
  struct After {
    bool operator()(const Event& x, const Event& y) const {
      return EventAfter(x, y);
    }
  };

  std::priority_queue<Event, std::vector<Event>, After> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_SIM_CALENDAR_H_
