// Minimal streaming JSON writer for the observability outputs (run
// manifests, BENCH_* perf records). Emits deterministic text -- keys in
// the order written, doubles through one fixed format -- so manifest
// golden tests and downstream diff tooling see byte-stable output for
// identical inputs. Not a general serializer: no pretty-print options
// beyond two-space indentation, no unicode escaping beyond the JSON
// control set.
#ifndef UFLIP_UTIL_JSON_WRITER_H_
#define UFLIP_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uflip {

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level; 0
  /// emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Key of the next value inside an object.
  JsonWriter& Key(const std::string& k);

  JsonWriter& String(const std::string& v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Int(int64_t v);
  /// Shortest "%g" representation that round-trips to the exact value
  /// (so large metric sums survive a JSON round trip); non-finite
  /// values emit null (JSON has no NaN/Inf).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// The document so far. Valid once every container is closed.
  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes not included).
  static std::string Escape(const std::string& s);

 private:
  /// Separator/indent bookkeeping before a value or key is emitted.
  void Prefix(bool is_key);
  void Newline();

  int indent_;
  std::string out_;
  /// One entry per open container: true = object (values need keys).
  std::vector<bool> stack_;
  /// Whether the current container already holds an element.
  std::vector<bool> has_elem_;
  bool key_pending_ = false;
};

}  // namespace uflip

#endif  // UFLIP_UTIL_JSON_WRITER_H_
