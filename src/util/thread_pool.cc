#include "src/util/thread_pool.h"

namespace uflip {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  // Workers only exit once the queue is empty (run-to-completion), so
  // joining is the drain.
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();  // packaged_task: an exception lands in the future
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace uflip
