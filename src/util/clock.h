// Clock abstraction. Simulated devices advance a VirtualClock (fast,
// deterministic); FileDevice measures against the RealClock
// (CLOCK_MONOTONIC). All times in the library are microseconds.
#ifndef UFLIP_UTIL_CLOCK_H_
#define UFLIP_UTIL_CLOCK_H_

#include <cstdint>

namespace uflip {

/// Microsecond clock interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since an arbitrary epoch.
  virtual uint64_t NowUs() const = 0;
  /// Blocks (real clock) or advances time (virtual clock) by `us`.
  virtual void SleepUs(uint64_t us) = 0;
};

/// Deterministic clock for simulation: Now() is a counter advanced by
/// SleepUs()/AdvanceTo(). Never blocks.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(uint64_t start_us = 0) : now_us_(start_us) {}

  uint64_t NowUs() const override { return now_us_; }
  void SleepUs(uint64_t us) override { now_us_ += us; }

  /// Moves the clock forward to `t_us`; no-op if already past it.
  void AdvanceTo(uint64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }

 private:
  uint64_t now_us_;
};

/// Splits a fractional duration into the whole microseconds to sleep
/// now and the sub-microsecond remainder to carry into the next call.
/// The clock only ticks in whole microseconds; accumulating the carry
/// keeps long runs of fractional response times from drifting.
inline uint64_t WholeUsWithCarry(double us, double* carry_us) {
  double total = us + *carry_us;
  uint64_t whole = static_cast<uint64_t>(total);
  *carry_us = total - static_cast<double>(whole);
  return whole;
}

/// Wall clock backed by CLOCK_MONOTONIC; SleepUs() uses nanosleep.
class RealClock : public Clock {
 public:
  uint64_t NowUs() const override;
  void SleepUs(uint64_t us) override;
};

}  // namespace uflip

#endif  // UFLIP_UTIL_CLOCK_H_
