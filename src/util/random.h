// Deterministic pseudo-random number generation (xoshiro256**). The whole
// benchmark is reproducible given a seed: every simulated device and every
// pattern generator owns its own Rng so experiments do not perturb each
// other's random streams.
#ifndef UFLIP_UTIL_RANDOM_H_
#define UFLIP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uflip {

/// xoshiro256** 1.0 generator. Small, fast, and with far better statistical
/// properties than std::minstd / rand(). Not cryptographic.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<uint64_t> Permutation(uint64_t n);

  /// Forks a child generator whose stream is independent of (and does not
  /// advance) this one beyond a single draw.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace uflip

#endif  // UFLIP_UTIL_RANDOM_H_
