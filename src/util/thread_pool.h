// Fixed-size worker thread pool, the execution substrate of the
// parallel simulation core (src/run/parallel_exec.h). Deliberately
// minimal:
//
//  * FIFO dispatch. Tasks start in submission order (workers pull from
//    one queue), which is what lets callers reason about progress; task
//    *completion* order is of course scheduler-dependent, so nothing
//    downstream may depend on it -- results go into caller-indexed
//    slots and are folded on the coordinating thread.
//  * Exception propagation. Submit returns a std::future carrying the
//    task's result or its exception; a worker never swallows a throw
//    and never dies from one.
//  * Run-to-completion shutdown. The destructor (and Wait) drains every
//    task already submitted -- work handed to the pool is never
//    silently dropped, so a coordinator that fanned out N units can
//    destroy the pool and trust all N slots were filled.
#ifndef UFLIP_UTIL_THREAD_POOL_H_
#define UFLIP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace uflip {

class ThreadPool {
 public:
  /// Starts `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);

  /// Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns the future of its result. An exception
  /// thrown by `fn` is captured into the future and rethrown on get().
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there is work (or stop)"
  std::condition_variable idle_cv_;  // waiters: "queue empty, all idle"
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace uflip

#endif  // UFLIP_UTIL_THREAD_POOL_H_
