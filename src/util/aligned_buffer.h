// Page-aligned IO buffer for O_DIRECT file IO and chip page staging.
#ifndef UFLIP_UTIL_ALIGNED_BUFFER_H_
#define UFLIP_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

namespace uflip {

/// Owns a heap buffer aligned to `alignment` bytes (default 4096, enough
/// for O_DIRECT on every mainstream Linux filesystem).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t size, size_t alignment = 4096);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  size_t alignment() const { return alignment_; }

  /// Fills the buffer with a deterministic byte pattern derived from
  /// `seed` (used to make written data verifiable).
  void FillPattern(uint64_t seed);

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t alignment_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_UTIL_ALIGNED_BUFFER_H_
