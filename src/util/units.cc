#include "src/util/units.h"

#include <cstdio>

namespace uflip {

std::string FormatSize(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluGB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatMs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", us / 1000.0);
  return buf;
}

}  // namespace uflip
