#include "src/util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace uflip {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<size_t>(indent_) * stack_.size(), ' ');
}

void JsonWriter::Prefix(bool is_key) {
  if (stack_.empty()) return;  // document root
  if (key_pending_) {
    // A keyed value follows its key on the same line.
    UFLIP_CHECK(!is_key);
    key_pending_ = false;
    return;
  }
  UFLIP_CHECK(is_key == stack_.back());  // objects take keys, arrays values
  if (has_elem_.back()) out_ += ',';
  has_elem_.back() = true;
  Newline();
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix(false);
  out_ += '{';
  stack_.push_back(true);
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix(false);
  out_ += '[';
  stack_.push_back(false);
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  UFLIP_CHECK(!stack_.empty() && stack_.back() && !key_pending_);
  bool had = has_elem_.back();
  stack_.pop_back();
  has_elem_.pop_back();
  if (had) Newline();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  UFLIP_CHECK(!stack_.empty() && !stack_.back());
  bool had = has_elem_.back();
  stack_.pop_back();
  has_elem_.pop_back();
  if (had) Newline();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  Prefix(true);
  out_ += '"';
  out_ += Escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  Prefix(false);
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  Prefix(false);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Prefix(false);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  if (!std::isfinite(v)) return Null();
  Prefix(false);
  // Shortest representation that parses back to exactly `v`: large
  // metric sums (span stage totals, busy-time integrals) exceed six
  // significant digits, and a manifest that silently rounds them would
  // fail cross-checks like "stage sums == total latency".
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Prefix(false);
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prefix(false);
  out_ += "null";
  return *this;
}

}  // namespace uflip
