// CSV emission for benchmark result sets (the paper publishes per-IO
// response times; we emit the same raw data plus summaries).
#ifndef UFLIP_UTIL_CSV_H_
#define UFLIP_UTIL_CSV_H_

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace uflip {

/// Streams rows to a CSV file (RFC-4180 quoting for strings that need it).
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any previous content.
  [[nodiscard]] static StatusOr<CsvWriter> Open(const std::string& path);

  /// Writes a header / data row. Values are joined with commas.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: numeric row.
  void WriteRow(const std::vector<double>& cells);

  /// Flushes and closes the underlying stream.
  [[nodiscard]] Status Close();

 private:
  explicit CsvWriter(std::ofstream out) : out_(std::move(out)) {}

  static std::string Escape(const std::string& cell);

  std::ofstream out_;
};

}  // namespace uflip

#endif  // UFLIP_UTIL_CSV_H_
