// Byte-size and time literals/helpers used throughout the library.
#ifndef UFLIP_UTIL_UNITS_H_
#define UFLIP_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace uflip {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/// 512-byte logical sector, the unit of the paper's IOSize/IOShift ranges.
inline constexpr uint64_t kSector = 512ULL;

inline constexpr uint64_t MsToUs(double ms) {
  return static_cast<uint64_t>(ms * 1000.0);
}
inline constexpr double UsToMs(double us) { return us / 1000.0; }

/// "32.0KB" / "4.0MB" / "512B" formatting for reports.
std::string FormatSize(uint64_t bytes);

/// "0.30ms" / "256.00ms" formatting for reports.
std::string FormatMs(double us);

}  // namespace uflip

#endif  // UFLIP_UTIL_UNITS_H_
