#include "src/util/random.h"

#include <numeric>

namespace uflip {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // Avoid the all-zero state (xoshiro fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's method with rejection for exact uniformity.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + UniformU64(hi - lo + 1);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint64_t> Rng::Permutation(uint64_t n) {
  std::vector<uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(&v);
  return v;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace uflip
