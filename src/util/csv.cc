#include "src/util/csv.h"

#include <cstdio>

namespace uflip {

StatusOr<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open CSV file: " + path);
  }
  return CsvWriter(std::move(out));
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  char buf[64];
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.6g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IoError("CSV stream in failed state");
  out_.close();
  return Status::Ok();
}

}  // namespace uflip
