#include "src/util/aligned_buffer.h"

#include <cstdlib>
#include <utility>

#include "src/util/logging.h"

namespace uflip {

AlignedBuffer::AlignedBuffer(size_t size, size_t alignment)
    : size_(size), alignment_(alignment) {
  UFLIP_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  // aligned_alloc requires size to be a multiple of alignment.
  size_t alloc = (size + alignment - 1) / alignment * alignment;
  if (alloc == 0) alloc = alignment;
  data_ = static_cast<uint8_t*>(std::aligned_alloc(alignment, alloc));
  UFLIP_CHECK(data_ != nullptr);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

void AlignedBuffer::FillPattern(uint64_t seed) {
  uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (size_t i = 0; i < size_; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data_[i] = static_cast<uint8_t>(x);
  }
}

}  // namespace uflip
