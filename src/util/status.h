// Lightweight Status / StatusOr error-handling primitives in the style of
// Abseil / RocksDB. Library code never throws; fallible operations return
// Status (or StatusOr<T> when they produce a value).
#ifndef UFLIP_UTIL_STATUS_H_
#define UFLIP_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace uflip {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kIoError,
  kUnimplemented,
  kCorruption,
};

/// Returns a human-readable name for a StatusCode ("Ok", "IoError", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type result of a fallible operation. Cheap to copy when OK.
/// [[nodiscard]] on the class makes every function returning Status by
/// value warn when the result is silently dropped; discard explicitly
/// with uflip::IgnoreStatus(expr, "reason") so the decision is visible.
class [[nodiscard]] Status {
 public:
  /// Default-constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Holds either a value of type T or an error Status. Accessing the
/// value of an errored StatusOr is a programming error (UFLIP_CHECKed
/// in every build type).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value (OK).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    UFLIP_CHECK_MSG(!status_.ok(),
                    "StatusOr constructed from OK status w/o value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    UFLIP_CHECK(ok());
    return *value_;
  }
  T& value() & {
    UFLIP_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    UFLIP_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Explicitly discards a Status (or the status of a StatusOr) with a
/// stated reason. The only sanctioned way to ignore a fallible result:
/// a bare `(void)call()` no longer appears in the tree, so every
/// swallowed error names its justification at the call site.
inline void IgnoreStatus(const Status& status, const char* reason) {
  (void)status;
  (void)reason;
}
template <typename T>
inline void IgnoreStatus(const StatusOr<T>& status_or, const char* reason) {
  (void)status_or;
  (void)reason;
}

}  // namespace uflip

/// Propagates a non-OK Status from the evaluated expression.
#define UFLIP_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::uflip::Status _uflip_status = (expr);          \
    if (!_uflip_status.ok()) return _uflip_status;   \
  } while (0)

#endif  // UFLIP_UTIL_STATUS_H_
