#include "src/util/clock.h"

#include <ctime>

namespace uflip {

uint64_t RealClock::NowUs() const {
  timespec ts;
  // uflip-lint: allow(wall-clock) -- RealClock is the sanctioned real-time source (real-device measurement only; simulations use VirtualClock)
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ULL;
}

void RealClock::SleepUs(uint64_t us) {
  timespec req;
  req.tv_sec = static_cast<time_t>(us / 1000000ULL);
  req.tv_nsec = static_cast<long>((us % 1000000ULL) * 1000ULL);
  nanosleep(&req, nullptr);
}

}  // namespace uflip
