#include "src/util/status.h"

namespace uflip {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace uflip
