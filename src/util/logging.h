// Minimal assertion / logging macros. UFLIP_CHECK aborts on violated
// invariants in all build types; UFLIP_DCHECK only in debug builds.
#ifndef UFLIP_UTIL_LOGGING_H_
#define UFLIP_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define UFLIP_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "UFLIP_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define UFLIP_CHECK_MSG(cond, ...)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "UFLIP_CHECK failed at %s:%d: %s: ", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define UFLIP_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define UFLIP_DCHECK(cond) UFLIP_CHECK(cond)
#endif

#endif  // UFLIP_UTIL_LOGGING_H_
