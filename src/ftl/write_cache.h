// Coalescing RAM write-back cache in front of an FTL (the "RAM +
// autonomous power" destaging buffer of Section 2.2). Absorbs
// overwrites (bounded by a destage policy so dirty data does not dwell
// forever) and evicts in contiguous runs. On devices that have it
// (e.g. the Samsung SSD in the paper), repeated in-place writes become
// cheaper than sequential writes (Table 3: in-place x0.6).
#ifndef UFLIP_FTL_WRITE_CACHE_H_
#define UFLIP_FTL_WRITE_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ftl/ftl.h"
#include "src/util/status.h"

namespace uflip {

struct WriteCacheConfig {
  /// Dirty-page capacity; eviction keeps the cache at or below this.
  uint32_t capacity_pages = 1024;
  /// Maximum number of overwrites one cached page may absorb before it
  /// is force-destaged (bounds data dwell time).
  uint32_t max_coalesce = 2;
  /// Destage dirty pages during idle time (the "buffering" of
  /// Section 4.2: produces a start-up phase after idle periods and the
  /// Pause-absorption / lingering effects on devices that have it).
  bool background_flush = false;

  [[nodiscard]] Status Validate() const;
};

/// Lifetime counters of one WriteCache instance (page granularity).
struct WriteCacheStats {
  /// Host-read pages served from the dirty map (RAM, no flash touched)
  /// vs forwarded to the inner FTL.
  uint64_t read_hit_pages = 0;
  uint64_t read_miss_pages = 0;
  uint64_t host_write_pages = 0;
  /// Overwrites absorbed in place -- writes that never reached flash.
  uint64_t absorbed_overwrites = 0;
  /// Pages destaged because they hit the max_coalesce dwell bound.
  uint64_t forced_destages = 0;
  /// Pages written through to the inner FTL (any destage path).
  uint64_t destaged_pages = 0;
  /// Capacity evictions (FlushRun calls driven by EvictToCapacity).
  uint64_t eviction_runs = 0;

  /// Fraction of host-written pages whose write was absorbed in RAM.
  double AbsorbRate() const {
    return host_write_pages == 0
               ? 0.0
               : static_cast<double>(absorbed_overwrites) /
                     static_cast<double>(host_write_pages);
  }
};

/// Decorates an Ftl with a write-back cache. Implements the Ftl
/// interface so SimDevice can stack it transparently.
class WriteCache : public Ftl {
 public:
  WriteCache(std::unique_ptr<Ftl> inner, const WriteCacheConfig& config);

  uint64_t logical_pages() const override { return inner_->logical_pages(); }
  uint32_t page_bytes() const override { return inner_->page_bytes(); }

  [[nodiscard]] Status Read(uint64_t lpn, uint32_t npages, std::vector<uint64_t>* tokens,
              FtlCost* cost) override;
  [[nodiscard]] Status Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
               FtlCost* cost) override;

  /// Destages dirty runs during idle time (when background_flush is
  /// enabled), then forwards remaining budget to the inner FTL.
  double BackgroundWork(double budget_us) override;
  double PendingBackgroundUs() const override;

  uint32_t Channels() const override { return inner_->Channels(); }
  uint32_t DispatchChannel(uint64_t lpn) const override {
    return inner_->DispatchChannel(lpn);
  }
  const FlashArray* flash_array() const override {
    return inner_->flash_array();
  }

  const FtlStats& stats() const override { return inner_->stats(); }
  std::string DebugString() const override;

  const WriteCacheStats& cache_stats() const { return cache_stats_; }

  /// Exports "cache.*" counters and forwards to the inner FTL.
  void RegisterMetrics(MetricRegistry* registry) override;

  /// Destages every dirty page to the inner FTL.
  [[nodiscard]] Status FlushAll(FtlCost* cost);

  size_t DirtyPages() const { return dirty_.size(); }
  Ftl* inner() { return inner_.get(); }
  /// The cache sizing/destage knobs this instance runs with (sweeps and
  /// reports read them back off the built FTL stack).
  const WriteCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    uint64_t token = 0;
    uint32_t overwrites = 0;
  };

  /// Flushes the contiguous dirty run starting at `lpn`.
  [[nodiscard]] Status FlushRun(uint64_t lpn, FtlCost* cost);

  /// Evicts oldest runs until size <= capacity.
  [[nodiscard]] Status EvictToCapacity(FtlCost* cost);

  std::unique_ptr<Ftl> inner_;
  WriteCacheConfig config_;
  WriteCacheStats cache_stats_;
  std::unordered_map<uint64_t, Entry> dirty_;
  std::deque<uint64_t> fifo_;  // insertion order; may contain stale lpns
  // Background destage accounting.
  double bg_credit_us_ = 0;
  double flush_cost_per_page_ema_us_ = 300.0;
};

}  // namespace uflip

#endif  // UFLIP_FTL_WRITE_CACHE_H_
