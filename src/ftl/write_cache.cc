#include "src/ftl/write_cache.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metric_registry.h"
#include "src/util/logging.h"

namespace uflip {

Status WriteCacheConfig::Validate() const {
  if (capacity_pages == 0) {
    return Status::InvalidArgument("capacity_pages must be > 0");
  }
  return Status::Ok();
}

WriteCache::WriteCache(std::unique_ptr<Ftl> inner,
                       const WriteCacheConfig& config)
    : inner_(std::move(inner)), config_(config) {
  UFLIP_CHECK(config_.Validate().ok());
}

Status WriteCache::FlushRun(uint64_t lpn, FtlCost* cost) {
  // Gather the contiguous dirty run starting at (or containing) lpn.
  uint64_t start = lpn;
  while (start > 0 && dirty_.count(start - 1)) --start;
  std::vector<uint64_t> tokens;
  uint64_t p = start;
  while (dirty_.count(p) && tokens.size() < 256) {
    tokens.push_back(dirty_[p].token);
    dirty_.erase(p);
    ++p;
  }
  if (tokens.empty()) return Status::Ok();
  cache_stats_.destaged_pages += tokens.size();
  return inner_->Write(start, static_cast<uint32_t>(tokens.size()),
                       tokens.data(), cost);
}

Status WriteCache::EvictToCapacity(FtlCost* cost) {
  while (dirty_.size() > config_.capacity_pages) {
    // Oldest insertion whose page is still dirty.
    while (!fifo_.empty() && !dirty_.count(fifo_.front())) fifo_.pop_front();
    if (fifo_.empty()) break;  // defensive: stale queue
    ++cache_stats_.eviction_runs;
    UFLIP_RETURN_IF_ERROR(FlushRun(fifo_.front(), cost));
  }
  return Status::Ok();
}

Status WriteCache::Write(uint64_t lpn, uint32_t npages,
                         const uint64_t* tokens, FtlCost* cost) {
  cache_stats_.host_write_pages += npages;
  for (uint32_t i = 0; i < npages; ++i) {
    uint64_t page = lpn + i;
    auto it = dirty_.find(page);
    if (it != dirty_.end()) {
      if (++it->second.overwrites > config_.max_coalesce) {
        // Dwell bound reached: destage this run, then re-insert.
        ++cache_stats_.forced_destages;
        UFLIP_RETURN_IF_ERROR(FlushRun(page, cost));
        dirty_[page] = Entry{tokens != nullptr ? tokens[i] : 0, 0};
        fifo_.push_back(page);
      } else {
        ++cache_stats_.absorbed_overwrites;
        it->second.token = tokens != nullptr ? tokens[i] : 0;
      }
    } else {
      dirty_[page] = Entry{tokens != nullptr ? tokens[i] : 0, 0};
      fifo_.push_back(page);
    }
  }
  return EvictToCapacity(cost);
}

Status WriteCache::Read(uint64_t lpn, uint32_t npages,
                        std::vector<uint64_t>* tokens, FtlCost* cost) {
  // Serve cached pages from RAM; read the uncached subranges from the
  // inner FTL.
  if (tokens != nullptr) tokens->assign(npages, 0);
  uint32_t i = 0;
  while (i < npages) {
    uint64_t page = lpn + i;
    auto it = dirty_.find(page);
    if (it != dirty_.end()) {
      ++cache_stats_.read_hit_pages;
      if (tokens != nullptr) (*tokens)[i] = it->second.token;
      ++i;
      continue;
    }
    // Extend the uncached run.
    uint32_t j = i;
    while (j < npages && !dirty_.count(lpn + j)) ++j;
    cache_stats_.read_miss_pages += j - i;
    std::vector<uint64_t> sub;
    UFLIP_RETURN_IF_ERROR(
        inner_->Read(lpn + i, j - i, tokens != nullptr ? &sub : nullptr,
                     cost));
    if (tokens != nullptr) {
      std::copy(sub.begin(), sub.end(), tokens->begin() + i);
    }
    i = j;
  }
  return Status::Ok();
}

Status WriteCache::FlushAll(FtlCost* cost) {
  while (!dirty_.empty()) {
    UFLIP_RETURN_IF_ERROR(FlushRun(dirty_.begin()->first, cost));
  }
  fifo_.clear();
  return Status::Ok();
}

double WriteCache::BackgroundWork(double budget_us) {
  double used = 0;
  if (config_.background_flush && !dirty_.empty()) {
    bg_credit_us_ += budget_us;
    // Cap: a week of idle must not turn into unbounded credit.
    bg_credit_us_ = std::min(
        bg_credit_us_, 10.0 * flush_cost_per_page_ema_us_ *
                           static_cast<double>(config_.capacity_pages));
    while (!dirty_.empty()) {
      // Estimate the next run's cost; stop when credit is insufficient.
      while (!fifo_.empty() && !dirty_.count(fifo_.front())) {
        fifo_.pop_front();
      }
      if (fifo_.empty()) break;
      if (bg_credit_us_ < flush_cost_per_page_ema_us_) break;
      size_t before = dirty_.size();
      FtlCost cost;
      Status flush = FlushRun(fifo_.front(), &cost);
      if (!flush.ok()) {
        IgnoreStatus(flush,
                     "background destage halts on error; the foreground "
                     "path hits the same device fault and propagates it");
        break;
      }
      size_t flushed = before - dirty_.size();
      if (flushed > 0) {
        flush_cost_per_page_ema_us_ =
            0.8 * flush_cost_per_page_ema_us_ +
            0.2 * cost.service_us / static_cast<double>(flushed);
      }
      bg_credit_us_ -= cost.service_us;
      used += cost.service_us;
    }
  }
  used += inner_->BackgroundWork(budget_us > used ? budget_us - used : 0);
  return used;
}

double WriteCache::PendingBackgroundUs() const {
  double pending = inner_->PendingBackgroundUs();
  if (config_.background_flush) {
    // Only dirty data beyond a comfortable fill level counts as debt;
    // a half-empty buffer does not make the controller steal foreground
    // slices. This is what gives async devices their start-up phase
    // (the buffer absorbs the first ~capacity/2 pages silently).
    size_t comfortable = config_.capacity_pages / 2;
    if (dirty_.size() > comfortable) {
      pending += static_cast<double>(dirty_.size() - comfortable) *
                 flush_cost_per_page_ema_us_;
    }
  }
  return pending;
}

void WriteCache::RegisterMetrics(MetricRegistry* registry) {
  auto* read_hits = registry->GetCounter("cache.read_hit_pages");
  auto* read_misses = registry->GetCounter("cache.read_miss_pages");
  auto* writes = registry->GetCounter("cache.host_write_pages");
  auto* absorbed = registry->GetCounter("cache.absorbed_overwrites");
  auto* forced = registry->GetCounter("cache.forced_destages");
  auto* destaged = registry->GetCounter("cache.destaged_pages");
  auto* evictions = registry->GetCounter("cache.eviction_runs");
  auto* dirty_peak = registry->GetGauge("cache.dirty_pages_peak");
  // Delta against registration time, like Ftl::RegisterMetrics: the
  // snapshot covers the attached window, not device preparation.
  WriteCacheStats base = cache_stats_;
  registry->AddCollector([=, this] {
    read_hits->value = cache_stats_.read_hit_pages - base.read_hit_pages;
    read_misses->value =
        cache_stats_.read_miss_pages - base.read_miss_pages;
    writes->value = cache_stats_.host_write_pages - base.host_write_pages;
    absorbed->value =
        cache_stats_.absorbed_overwrites - base.absorbed_overwrites;
    forced->value = cache_stats_.forced_destages - base.forced_destages;
    destaged->value = cache_stats_.destaged_pages - base.destaged_pages;
    evictions->value = cache_stats_.eviction_runs - base.eviction_runs;
    obs::SetMax(dirty_peak, static_cast<double>(dirty_.size()));
  });
  inner_->RegisterMetrics(registry);
}

std::string WriteCache::DebugString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "WriteCache{dirty=%zu/%u} over %s",
                dirty_.size(), config_.capacity_pages,
                inner_->DebugString().c_str());
  return buf;
}

}  // namespace uflip
