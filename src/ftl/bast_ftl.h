// BAST-style hybrid FTL: block-granularity direct map plus a small pool
// of per-logical-block log blocks. This is the classic FTL of low-end
// removable flash devices (USB sticks, SD cards, IDE modules) and is the
// source of their signature behaviours in the paper:
//
//  * Sequential writes fill a log block in order and retire it with a
//    cheap "switch merge" (periodic erase -> the response-time
//    oscillation of Figure 4, period = pages_per_block / pages_per_IO).
//  * Random writes over more logical blocks than the pool holds thrash
//    the pool; every write evicts a log block and pays a full merge
//    (read + program a whole block + two erases) -> RW one to two orders
//    of magnitude slower than SW (Table 3), with no locality benefit
//    once the working set exceeds log_blocks * block_size.
//  * With strict_sequential_log (cheapest controllers, e.g. Kingston
//    DTI), any non-ascending append forces an immediate merge: in-place
//    (Incr = 0) and reverse (Incr = -1) patterns become pathological
//    (x8..x40 the cost of SW in the paper).
//  * Concurrent sequential streams are fine up to `log_blocks`
//    partitions and degrade to random-write behaviour beyond
//    (Partitioning micro-benchmark).
#ifndef UFLIP_FTL_BAST_FTL_H_
#define UFLIP_FTL_BAST_FTL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/flash/array.h"
#include "src/ftl/ftl.h"
#include "src/util/status.h"

namespace uflip {

struct BastConfig {
  /// Log-block pool size (number of logical blocks that can be written
  /// concurrently without merges).
  uint32_t log_blocks = 8;
  /// If true, a log block only accepts appends with strictly ascending
  /// logical page offsets; any other write merges immediately.
  bool strict_sequential_log = false;
  /// Fixed controller bookkeeping cost added to every *full* merge
  /// (copy bookkeeping, inverse-map journaling on flash).
  double merge_overhead_us = 0.0;
  /// Cost of a switch / partial merge (map update only).
  double switch_overhead_us = 100.0;
  /// Whether the controller implements partial merges (copy the tail of
  /// the data block into a sequential log, then switch). The cheapest
  /// controllers (Kingston DTI, SD cards) only do switch or full
  /// merges, which is what makes their in-place pattern pathological
  /// (Table 3: x40).
  bool partial_merge_supported = true;

  [[nodiscard]] Status Validate() const;
};

class BastFtl : public Ftl {
 public:
  BastFtl(std::unique_ptr<FlashArray> array, const BastConfig& config);

  uint64_t logical_pages() const override { return logical_pages_; }
  uint32_t page_bytes() const override { return array_->page_data_bytes(); }

  [[nodiscard]] Status Read(uint64_t lpn, uint32_t npages, std::vector<uint64_t>* tokens,
              FtlCost* cost) override;
  [[nodiscard]] Status Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
               FtlCost* cost) override;

  uint32_t Channels() const override { return array_->channels(); }
  uint32_t DispatchChannel(uint64_t lpn) const override;

  const FtlStats& stats() const override { return stats_; }
  std::string DebugString() const override;

  const FlashArray& array() const { return *array_; }
  const FlashArray* flash_array() const override { return array_.get(); }
  const BastConfig& config() const { return config_; }
  /// Number of pool entries currently bound to a logical block.
  uint32_t ActiveLogBlocks() const;

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;
  static constexpr int32_t kNoLog = -1;
  static constexpr int32_t kNoPage = -1;

  struct LogBlock {
    uint64_t phys = UINT64_MAX;   // physical block backing this log
    uint64_t owner = UINT64_MAX;  // logical block, kUnmapped if unused
    uint32_t write_point = 0;     // next physical page to program
    /// page_map[logical_off] = physical page in `phys` holding its
    /// latest copy, or kNoPage.
    std::vector<int32_t> page_map;
    /// True while every append i went to physical page i with
    /// logical_off == i (makes switch merges possible).
    bool sequential = true;
    int32_t last_off = kNoPage;  // last appended logical offset
    uint64_t lru_tick = 0;
  };

  /// Pages-per-block shorthand.
  uint32_t ppb() const { return array_->pages_per_block(); }

  bool IsWritten(uint64_t lpn) const {
    return (written_[lpn >> 6] >> (lpn & 63)) & 1;
  }
  void MarkWritten(uint64_t lpn) { written_[lpn >> 6] |= 1ULL << (lpn & 63); }

  /// Pops an erased free block (invariant: never empty in steady state).
  [[nodiscard]] Status AllocFree(uint64_t* block);

  /// Erases `block` and returns it to the free list.
  [[nodiscard]] Status ReleaseBlock(uint64_t block, FtlCost* cost);

  /// Returns the pool index of the log bound to `lbk`, allocating (and
  /// evicting via merge) as needed.
  [[nodiscard]] Status GetLog(uint64_t lbk, FtlCost* cost, int32_t* log_idx);

  /// Merges log `log_idx` into its owner's data block; the entry becomes
  /// unbound with a fresh erased physical block.
  [[nodiscard]] Status MergeLog(int32_t log_idx, FtlCost* cost);

  /// Writes `count` pages at offsets [first_off, first_off+count) of
  /// logical block `lbk`.
  [[nodiscard]] Status WriteBlockPages(uint64_t lbk, uint32_t first_off, uint32_t count,
                         const uint64_t* tokens, FtlCost* cost);

  std::unique_ptr<FlashArray> array_;
  BastConfig config_;

  uint64_t n_logical_blocks_;
  uint64_t logical_pages_;

  std::vector<uint64_t> map_;        // lbk -> physical data block
  std::vector<int32_t> log_of_;      // lbk -> pool index or kNoLog
  std::vector<uint64_t> written_;    // bitmap over logical pages
  std::vector<uint64_t> free_;       // erased physical blocks
  std::vector<LogBlock> pool_;
  uint64_t lru_clock_ = 0;

  FtlStats stats_;

  std::vector<GlobalPage> scratch_pages_;
  std::vector<PageWrite> scratch_writes_;
  std::vector<uint64_t> scratch_tokens_;
};

}  // namespace uflip

#endif  // UFLIP_FTL_BAST_FTL_H_
