#include "src/ftl/ftl.h"

#include "src/obs/metric_registry.h"

namespace uflip {

void Ftl::RegisterMetrics(MetricRegistry* registry) {
  // The FTL keeps its own lifetime counters (FtlStats) regardless of
  // observability; the collector exports the delta against the values at
  // registration time, so metrics cover the attached window only --
  // device preparation (state enforcement, settling) done before
  // AttachMetrics does not leak into the snapshot. Per-repetition
  // registries each see their own device's window, so the cross-registry
  // snapshot merge (sum) is the fleet total.
  auto* host_reads = registry->GetCounter("ftl.host.page_reads");
  auto* host_writes = registry->GetCounter("ftl.host.page_writes");
  auto* flash_reads = registry->GetCounter("ftl.flash.page_reads");
  auto* flash_programs = registry->GetCounter("ftl.flash.page_programs");
  auto* flash_erases = registry->GetCounter("ftl.flash.block_erases");
  auto* merges = registry->GetCounter("ftl.merges");
  auto* switch_merges = registry->GetCounter("ftl.switch_merges");
  auto* gc_runs = registry->GetCounter("ftl.gc_runs");
  auto* map_hits = registry->GetCounter("ftl.map_hits");
  auto* map_misses = registry->GetCounter("ftl.map_misses");
  auto* wa = registry->GetGauge("ftl.write_amplification");
  FtlStats base = stats();
  registry->AddCollector([=, this] {
    const FtlStats& s = stats();
    host_reads->value = s.host_page_reads - base.host_page_reads;
    host_writes->value = s.host_page_writes - base.host_page_writes;
    flash_reads->value = s.flash_page_reads - base.flash_page_reads;
    flash_programs->value = s.flash_page_programs - base.flash_page_programs;
    flash_erases->value = s.flash_block_erases - base.flash_block_erases;
    merges->value = s.merges - base.merges;
    switch_merges->value = s.switch_merges - base.switch_merges;
    gc_runs->value = s.gc_runs - base.gc_runs;
    map_hits->value = s.map_hits - base.map_hits;
    map_misses->value = s.map_misses - base.map_misses;
    // Write amplification over the window: programs per host page
    // written since attach.
    uint64_t hw = s.host_page_writes - base.host_page_writes;
    uint64_t fp = s.flash_page_programs - base.flash_page_programs;
    if (hw > 0) {
      obs::SetMax(wa, static_cast<double>(fp) / static_cast<double>(hw));
    }
  });
}

}  // namespace uflip
