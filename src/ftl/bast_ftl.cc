#include "src/ftl/bast_ftl.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace uflip {

Status BastConfig::Validate() const {
  if (log_blocks == 0) {
    return Status::InvalidArgument("log_blocks must be > 0");
  }
  if (merge_overhead_us < 0) {
    return Status::InvalidArgument("merge_overhead_us must be >= 0");
  }
  return Status::Ok();
}

BastFtl::BastFtl(std::unique_ptr<FlashArray> array, const BastConfig& config)
    : array_(std::move(array)), config_(config) {
  UFLIP_CHECK(config_.Validate().ok());
  uint64_t n_phys = array_->total_blocks();
  // Reserve: the log pool plus a small spare cushion for merges.
  uint64_t reserve = config_.log_blocks + 4;
  UFLIP_CHECK_MSG(reserve + 1 < n_phys, "device too small for log pool");
  n_logical_blocks_ = n_phys - reserve;
  logical_pages_ = n_logical_blocks_ * ppb();

  map_.assign(n_logical_blocks_, kUnmapped);
  log_of_.assign(n_logical_blocks_, kNoLog);
  written_.assign((logical_pages_ + 63) / 64, 0);
  // All physical blocks start erased; the pool takes its backing blocks
  // up front, the rest are free.
  pool_.resize(config_.log_blocks);
  uint64_t next = 0;
  for (auto& log : pool_) {
    log.phys = next++;
    log.page_map.assign(ppb(), kNoPage);
  }
  for (uint64_t b = next; b < n_phys; ++b) free_.push_back(b);
}

uint32_t BastFtl::ActiveLogBlocks() const {
  uint32_t n = 0;
  for (const auto& log : pool_) {
    if (log.owner != kUnmapped) ++n;
  }
  return n;
}

Status BastFtl::AllocFree(uint64_t* block) {
  if (free_.empty()) {
    return Status::Internal("BAST free pool exhausted");
  }
  *block = free_.back();
  free_.pop_back();
  return Status::Ok();
}

Status BastFtl::ReleaseBlock(uint64_t block, FtlCost* cost) {
  double t = 0;
  UFLIP_RETURN_IF_ERROR(array_->EraseBlock(block, &t));
  cost->service_us += t;
  ++cost->block_erases;
  ++stats_.flash_block_erases;
  free_.push_back(block);
  return Status::Ok();
}

Status BastFtl::MergeLog(int32_t log_idx, FtlCost* cost) {
  LogBlock& log = pool_[log_idx];
  UFLIP_DCHECK(log.owner != kUnmapped);
  uint64_t lbk = log.owner;
  ++cost->merges;
  ++stats_.merges;
  // Local buffers: merges run in the middle of host writes that are
  // accumulating their own program batch in the shared scratch vectors.
  std::vector<GlobalPage> m_pages;
  std::vector<PageWrite> m_writes;
  std::vector<uint64_t> m_tokens;

  bool full_sequential = log.sequential && log.write_point == ppb();
  if (full_sequential) {
    // Switch merge: the log block becomes the data block. Only the map
    // update is paid (merge_overhead_us models the copy bookkeeping of
    // full merges and does not apply here).
    ++stats_.switch_merges;
    cost->service_us += config_.switch_overhead_us;
    uint64_t old_data = map_[lbk];
    map_[lbk] = log.phys;
    if (old_data != kUnmapped) {
      UFLIP_RETURN_IF_ERROR(ReleaseBlock(old_data, cost));
    }
    // Give the pool entry a fresh backing block.
    UFLIP_RETURN_IF_ERROR(AllocFree(&log.phys));
  } else if (config_.partial_merge_supported && log.sequential &&
             map_[lbk] != kUnmapped) {
    // Partial merge: log holds pages [0, wp) at aligned positions; copy
    // the tail [wp, ppb) from the data block, then switch.
    cost->service_us += config_.switch_overhead_us;
    std::vector<uint32_t> offs;
    for (uint32_t off = log.write_point; off < ppb(); ++off) {
      uint64_t lpn = lbk * ppb() + off;
      if (!IsWritten(lpn)) continue;
      m_pages.push_back(GlobalPage{map_[lbk], off});
      offs.push_back(off);
    }
    double t = 0;
    if (!m_pages.empty()) {
      UFLIP_RETURN_IF_ERROR(
          array_->ReadPages(m_pages, &m_tokens, &t));
      cost->service_us += t;
      cost->page_reads += m_pages.size();
      stats_.flash_page_reads += m_pages.size();
      for (size_t k = 0; k < offs.size(); ++k) {
        m_writes.push_back(
            PageWrite{GlobalPage{log.phys, offs[k]}, m_tokens[k]});
      }
      UFLIP_RETURN_IF_ERROR(array_->ProgramPages(m_writes, &t));
      cost->service_us += t;
      cost->page_programs += m_writes.size();
      stats_.flash_page_programs += m_writes.size();
    }
    uint64_t old_data = map_[lbk];
    map_[lbk] = log.phys;
    UFLIP_RETURN_IF_ERROR(ReleaseBlock(old_data, cost));
    UFLIP_RETURN_IF_ERROR(AllocFree(&log.phys));
  } else {
    // Full merge: gather latest copies (log first, then data block) into
    // a fresh block, release data block and recycle the log block.
    cost->service_us += config_.merge_overhead_us;
    uint64_t dst = 0;
    UFLIP_RETURN_IF_ERROR(AllocFree(&dst));
    std::vector<uint32_t> offs;
    for (uint32_t off = 0; off < ppb(); ++off) {
      uint64_t lpn = lbk * ppb() + off;
      if (log.page_map[off] != kNoPage) {
        m_pages.push_back(
            GlobalPage{log.phys, static_cast<uint32_t>(log.page_map[off])});
        offs.push_back(off);
      } else if (map_[lbk] != kUnmapped && IsWritten(lpn)) {
        m_pages.push_back(GlobalPage{map_[lbk], off});
        offs.push_back(off);
      }
    }
    double t = 0;
    if (!m_pages.empty()) {
      UFLIP_RETURN_IF_ERROR(
          array_->ReadPages(m_pages, &m_tokens, &t));
      cost->service_us += t;
      cost->page_reads += m_pages.size();
      stats_.flash_page_reads += m_pages.size();
      for (size_t k = 0; k < offs.size(); ++k) {
        m_writes.push_back(
            PageWrite{GlobalPage{dst, offs[k]}, m_tokens[k]});
      }
      UFLIP_RETURN_IF_ERROR(array_->ProgramPages(m_writes, &t));
      cost->service_us += t;
      cost->page_programs += m_writes.size();
      stats_.flash_page_programs += m_writes.size();
    }
    uint64_t old_data = map_[lbk];
    map_[lbk] = dst;
    if (old_data != kUnmapped) {
      UFLIP_RETURN_IF_ERROR(ReleaseBlock(old_data, cost));
    }
    // Erase the log block in place; it stays in the pool.
    double te = 0;
    UFLIP_RETURN_IF_ERROR(array_->EraseBlock(log.phys, &te));
    cost->service_us += te;
    ++cost->block_erases;
    ++stats_.flash_block_erases;
  }

  // Unbind the pool entry.
  log_of_[lbk] = kNoLog;
  log.owner = kUnmapped;
  log.write_point = 0;
  log.sequential = true;
  log.last_off = kNoPage;
  std::fill(log.page_map.begin(), log.page_map.end(), kNoPage);
  return Status::Ok();
}

Status BastFtl::GetLog(uint64_t lbk, FtlCost* cost, int32_t* log_idx) {
  ++lru_clock_;
  if (log_of_[lbk] != kNoLog) {
    *log_idx = log_of_[lbk];
    pool_[*log_idx].lru_tick = lru_clock_;
    return Status::Ok();
  }
  // Find an unbound entry, else evict the LRU one.
  int32_t chosen = kNoLog;
  for (size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].owner == kUnmapped) {
      chosen = static_cast<int32_t>(i);
      break;
    }
  }
  if (chosen == kNoLog) {
    size_t lru = 0;
    for (size_t i = 1; i < pool_.size(); ++i) {
      if (pool_[i].lru_tick < pool_[lru].lru_tick) lru = i;
    }
    UFLIP_RETURN_IF_ERROR(MergeLog(static_cast<int32_t>(lru), cost));
    chosen = static_cast<int32_t>(lru);
  }
  LogBlock& log = pool_[chosen];
  log.owner = lbk;
  log.lru_tick = lru_clock_;
  log_of_[lbk] = chosen;
  *log_idx = chosen;
  return Status::Ok();
}

Status BastFtl::WriteBlockPages(uint64_t lbk, uint32_t first_off,
                                uint32_t count, const uint64_t* tokens,
                                FtlCost* cost) {
  int32_t log_idx = kNoLog;
  UFLIP_RETURN_IF_ERROR(GetLog(lbk, cost, &log_idx));
  scratch_writes_.clear();
  for (uint32_t k = 0; k < count; ++k) {
    uint32_t off = first_off + k;
    LogBlock* log = &pool_[log_idx];
    bool violates =
        config_.strict_sequential_log
            ? (log->last_off != kNoPage &&
               static_cast<int32_t>(off) <= log->last_off)
            : (log->write_point == ppb());
    if (violates) {
      // Flush pending programs before merging so chip ordering holds.
      if (!scratch_writes_.empty()) {
        double t = 0;
        UFLIP_RETURN_IF_ERROR(array_->ProgramPages(scratch_writes_, &t));
        cost->service_us += t;
        cost->page_programs += scratch_writes_.size();
        stats_.flash_page_programs += scratch_writes_.size();
        scratch_writes_.clear();
      }
      UFLIP_RETURN_IF_ERROR(MergeLog(log_idx, cost));
      UFLIP_RETURN_IF_ERROR(GetLog(lbk, cost, &log_idx));
      log = &pool_[log_idx];
    }
    // Strict logs place pages at their aligned positions (enabling switch
    // merges); lenient logs append at the write point with a page map.
    uint32_t phys_page;
    if (config_.strict_sequential_log) {
      phys_page = off;
      log->write_point = off + 1;
    } else {
      phys_page = log->write_point++;
    }
    // "Sequential" (switch/partial-merge eligible) means the log holds
    // exactly offsets 0,1,2,... at their aligned positions -- gaps or
    // out-of-order appends force a full merge.
    uint32_t expected_off =
        log->last_off == kNoPage ? 0 : static_cast<uint32_t>(log->last_off) + 1;
    if (off != expected_off || phys_page != off) log->sequential = false;
    log->page_map[off] = static_cast<int32_t>(phys_page);
    log->last_off = static_cast<int32_t>(off);
    uint64_t lpn = lbk * ppb() + off;
    scratch_writes_.push_back(PageWrite{GlobalPage{log->phys, phys_page},
                                        tokens != nullptr ? tokens[k] : 0});
    MarkWritten(lpn);
    // A (lenient) log that just filled up must be merged before any
    // further write to this logical block.
    if (!config_.strict_sequential_log && log->write_point == ppb() &&
        k + 1 < count) {
      double t = 0;
      UFLIP_RETURN_IF_ERROR(array_->ProgramPages(scratch_writes_, &t));
      cost->service_us += t;
      cost->page_programs += scratch_writes_.size();
      stats_.flash_page_programs += scratch_writes_.size();
      scratch_writes_.clear();
      UFLIP_RETURN_IF_ERROR(MergeLog(log_idx, cost));
      UFLIP_RETURN_IF_ERROR(GetLog(lbk, cost, &log_idx));
    }
  }
  if (!scratch_writes_.empty()) {
    double t = 0;
    UFLIP_RETURN_IF_ERROR(array_->ProgramPages(scratch_writes_, &t));
    cost->service_us += t;
    cost->page_programs += scratch_writes_.size();
    stats_.flash_page_programs += scratch_writes_.size();
  }
  return Status::Ok();
}

Status BastFtl::Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
                      FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("write beyond logical capacity");
  }
  stats_.host_page_writes += npages;
  uint64_t page = lpn;
  uint32_t remaining = npages;
  while (remaining > 0) {
    uint64_t lbk = page / ppb();
    uint32_t off = static_cast<uint32_t>(page % ppb());
    uint32_t in_block = std::min<uint32_t>(remaining, ppb() - off);
    UFLIP_RETURN_IF_ERROR(WriteBlockPages(
        lbk, off, in_block, tokens != nullptr ? tokens + (page - lpn) : nullptr,
        cost));
    page += in_block;
    remaining -= in_block;
  }
  return Status::Ok();
}

Status BastFtl::Read(uint64_t lpn, uint32_t npages,
                     std::vector<uint64_t>* tokens, FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("read beyond logical capacity");
  }
  stats_.host_page_reads += npages;
  if (tokens != nullptr) tokens->assign(npages, 0);
  scratch_pages_.clear();
  std::vector<size_t> out_index;
  for (uint32_t i = 0; i < npages; ++i) {
    uint64_t page = lpn + i;
    if (!IsWritten(page)) continue;
    uint64_t lbk = page / ppb();
    uint32_t off = static_cast<uint32_t>(page % ppb());
    int32_t log_idx = log_of_[lbk];
    if (log_idx != kNoLog && pool_[log_idx].page_map[off] != kNoPage) {
      scratch_pages_.push_back(GlobalPage{
          pool_[log_idx].phys,
          static_cast<uint32_t>(pool_[log_idx].page_map[off])});
    } else if (map_[lbk] != kUnmapped) {
      scratch_pages_.push_back(GlobalPage{map_[lbk], off});
    } else {
      continue;  // written bit set but data only ever lived in a log
                 // that has since merged into a data block -- impossible;
                 // defensive skip.
    }
    out_index.push_back(i);
  }
  stats_.map_hits += scratch_pages_.size();
  stats_.map_misses += npages - scratch_pages_.size();
  if (!scratch_pages_.empty()) {
    double t = 0;
    scratch_tokens_.clear();
    UFLIP_RETURN_IF_ERROR(
        array_->ReadPages(scratch_pages_, &scratch_tokens_, &t));
    cost->service_us += t;
    cost->page_reads += scratch_pages_.size();
    stats_.flash_page_reads += scratch_pages_.size();
    if (tokens != nullptr) {
      for (size_t k = 0; k < out_index.size(); ++k) {
        (*tokens)[out_index[k]] = scratch_tokens_[k];
      }
    }
  }
  return Status::Ok();
}

uint32_t BastFtl::DispatchChannel(uint64_t lpn) const {
  if (lpn >= logical_pages_) {
    return array_->ChannelOf(lpn / ppb());
  }
  uint64_t lbk = lpn / ppb();
  // Latest copy may live in the logical block's log block.
  int32_t li = log_of_[lbk];
  if (li != kNoLog &&
      pool_[li].page_map[lpn % ppb()] != kNoPage) {
    return array_->ChannelOf(pool_[li].phys);
  }
  uint64_t phys = map_[lbk];
  return array_->ChannelOf(phys != kUnmapped ? phys : lbk);
}

std::string BastFtl::DebugString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "BastFtl{pool=%u logs (%u active), strict=%d, logical=%llu "
                "pages, WA=%.2f, merges=%llu}",
                config_.log_blocks, ActiveLogBlocks(),
                config_.strict_sequential_log ? 1 : 0,
                static_cast<unsigned long long>(logical_pages_),
                stats_.WriteAmplification(),
                static_cast<unsigned long long>(stats_.merges));
  return buf;
}

}  // namespace uflip
