#include "src/ftl/bucket_queue.h"

#include "src/util/logging.h"

namespace uflip {

BucketQueue::BucketQueue(uint32_t capacity, uint32_t max_key)
    : head_(max_key + 1, kNone),
      next_(capacity, kNone),
      prev_(capacity, kNone),
      key_(capacity, kNone) {}

void BucketQueue::Insert(uint32_t id, uint32_t key) {
  UFLIP_DCHECK(id < key_.size());
  UFLIP_DCHECK(key < head_.size());
  UFLIP_DCHECK(key_[id] == kNone);
  key_[id] = key;
  next_[id] = head_[key];
  prev_[id] = kNone;
  if (head_[key] != kNone) prev_[head_[key]] = id;
  head_[key] = id;
  if (key < min_hint_) min_hint_ = key;
  ++size_;
}

void BucketQueue::Unlink(uint32_t id) {
  uint32_t key = key_[id];
  if (prev_[id] != kNone) {
    next_[prev_[id]] = next_[id];
  } else {
    head_[key] = next_[id];
  }
  if (next_[id] != kNone) prev_[next_[id]] = prev_[id];
  next_[id] = prev_[id] = kNone;
}

void BucketQueue::Remove(uint32_t id) {
  UFLIP_DCHECK(id < key_.size());
  UFLIP_DCHECK(key_[id] != kNone);
  Unlink(id);
  key_[id] = kNone;
  --size_;
}

void BucketQueue::UpdateKey(uint32_t id, uint32_t new_key) {
  UFLIP_DCHECK(key_[id] != kNone);
  if (key_[id] == new_key) return;
  Unlink(id);
  key_[id] = new_key;
  next_[id] = head_[new_key];
  prev_[id] = kNone;
  if (head_[new_key] != kNone) prev_[head_[new_key]] = id;
  head_[new_key] = id;
  if (new_key < min_hint_) min_hint_ = new_key;
}

uint32_t BucketQueue::PeekMin() const {
  if (size_ == 0) return kNone;
  while (min_hint_ < head_.size() && head_[min_hint_] == kNone) ++min_hint_;
  UFLIP_DCHECK(min_hint_ < head_.size());
  return head_[min_hint_];
}

uint32_t BucketQueue::PopMin() {
  uint32_t id = PeekMin();
  if (id != kNone) Remove(id);
  return id;
}

}  // namespace uflip
