// Log-structured page-mapping FTL modelling high-end SSDs (Memoright,
// Mtron, Samsung in the paper). Main behaviours and where they come from:
//
//  * The direct map works at "mapping unit" (MU) granularity -- one or
//    more flash pages (Samsung: 16KB). Host writes that partially cover
//    an MU pay a read-modify-write; this is the alignment penalty of the
//    Alignment micro-benchmark.
//  * Writes are appended to per-stream open blocks striped across
//    channels; a K-entry stream table detects (strided) sequential
//    streams. More concurrent sequential streams than K degrade to
//    random-write behaviour (Partitioning micro-benchmark).
//  * Strided streams (Incr > 1) are placed with LBA-static channel
//    assignment to preserve sequential read striping; strides that are
//    multiples of the channel count collapse onto a single channel
//    (the paper's "large Incr" x2-x4 penalty).
//  * Garbage collection is greedy (minimum-valid victim per channel).
//    Random writes over a large area leave victims mostly valid ->
//    large write amplification; writes within a small area (or
//    sequential overwrites) leave victims mostly invalid -> cheap.
//    This produces the Locality micro-benchmark behaviour.
//  * With async_gc enabled, reclamation is deferred to idle periods
//    (Pause/Bursts absorption); the free-block high watermark restored
//    during inter-run pauses produces the start-up phase of Figure 3,
//    and the outstanding "GC debt" after a random-write burst produces
//    the lingering effect on reads of Figure 5.
#ifndef UFLIP_FTL_PAGE_MAPPING_FTL_H_
#define UFLIP_FTL_PAGE_MAPPING_FTL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/flash/array.h"
#include "src/ftl/bucket_queue.h"
#include "src/ftl/ftl.h"
#include "src/util/status.h"

namespace uflip {

struct PageMappingConfig {
  /// Flash pages per mapping unit (1 -> 2KB map granularity; 8 -> 16KB).
  uint32_t mapping_unit_pages = 2;
  /// Fraction of physical capacity reserved (not host visible).
  double overprovision = 0.08;
  /// Number of write streams the FTL tracks (open-block contexts).
  uint32_t write_streams = 4;
  /// Maximum MU distance at which two host IOs are recognized as one
  /// strided stream.
  uint32_t max_learn_stride_mus = 8192;
  /// Asynchronous (idle-time) garbage collection.
  bool async_gc = false;
  /// Async GC refills the free pool up to this many blocks; sync GC runs
  /// only when a channel's free list is empty. Also the length of the
  /// start-up phase in blocks.
  uint32_t gc_high_watermark_blocks = 32;

  [[nodiscard]] Status Validate(const ArrayConfig& array) const;
};

class PageMappingFtl : public Ftl {
 public:
  /// Takes ownership of the flash array.
  PageMappingFtl(std::unique_ptr<FlashArray> array,
                 const PageMappingConfig& config);

  uint64_t logical_pages() const override { return logical_pages_; }
  uint32_t page_bytes() const override { return array_->page_data_bytes(); }

  [[nodiscard]] Status Read(uint64_t lpn, uint32_t npages, std::vector<uint64_t>* tokens,
              FtlCost* cost) override;
  [[nodiscard]] Status Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
               FtlCost* cost) override;

  double BackgroundWork(double budget_us) override;
  double PendingBackgroundUs() const override;

  uint32_t Channels() const override { return array_->channels(); }
  uint32_t DispatchChannel(uint64_t lpn) const override;

  const FtlStats& stats() const override { return stats_; }
  std::string DebugString() const override;

  /// Total free (fully erased, unassigned) blocks; exposed for tests.
  uint64_t FreeBlocks() const { return free_total_; }
  const FlashArray& array() const { return *array_; }
  const FlashArray* flash_array() const override { return array_.get(); }
  const PageMappingConfig& config() const { return config_; }

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;
  static constexpr uint64_t kNoBlock = UINT64_MAX;
  static constexpr int64_t kStrideUnknown = INT64_MIN;

  enum class BlockState : uint8_t { kFree, kOpen, kFull };

  struct Stream {
    /// First / one-past-last MU of the previous host IO of this stream.
    uint64_t last_start = UINT64_MAX;
    uint64_t last_end = UINT64_MAX;
    /// 1 = sequential (next IO starts at last_end), 0 = in-place,
    /// other = strided in MUs between IO starts; kStrideUnknown = not
    /// yet learned.
    int64_t stride = kStrideUnknown;
    uint64_t lru_tick = 0;
    uint32_t rr_channel = 0;
    std::vector<uint64_t> open;  // per channel, kNoBlock if none
  };

  uint64_t SlotOf(uint64_t block, uint32_t idx) const {
    return block * slots_per_block_ + idx;
  }
  uint64_t BlockOfSlot(uint64_t slot) const { return slot / slots_per_block_; }
  uint32_t IdxOfSlot(uint64_t slot) const {
    return static_cast<uint32_t>(slot % slots_per_block_);
  }

  /// Selects (or steals) a stream for a host IO covering MUs
  /// [first_mu, end_mu).
  Stream* PickStream(uint64_t first_mu, uint64_t end_mu);

  /// Channel for the i-th MU of a host IO handled by `stream`.
  uint32_t PlacementChannel(Stream* stream, uint64_t mu);

  /// Returns a block on `channel` with at least one free slot for
  /// `stream` (allocating / garbage-collecting as needed).
  [[nodiscard]] Status EnsureOpenBlock(Stream* stream, uint32_t channel, FtlCost* cost,
                         uint64_t* block);

  /// Pops a free block on `channel`, running synchronous GC if empty.
  [[nodiscard]] Status AllocBlock(uint32_t channel, FtlCost* cost, uint64_t* block);

  /// Programs the pending host-write batch (pending_writes_). Must be
  /// called before any GC so a victim block can never have unflushed
  /// programs.
  [[nodiscard]] Status FlushPending(FtlCost* cost);

  /// One greedy GC run on `channel`: relocate the valid MUs of the
  /// minimum-valid full block, erase it. Fails if nothing reclaimable.
  [[nodiscard]] Status GcOnce(uint32_t channel, FtlCost* cost);

  /// Marks `mu`'s previous slot invalid (if mapped).
  void InvalidateOld(uint64_t mu);

  /// Transitions a filled open block to Full and queues it for GC.
  void SealIfFull(uint64_t block);

  /// Writes one MU: allocates a slot, programs pages, updates maps.
  [[nodiscard]] Status WriteMu(Stream* stream, uint64_t mu, const uint64_t* mu_tokens,
                 FtlCost* cost);

  std::unique_ptr<FlashArray> array_;
  PageMappingConfig config_;

  uint32_t mu_pages_;
  uint32_t slots_per_block_;
  uint64_t n_blocks_;
  uint64_t n_mus_;
  uint64_t logical_pages_;

  std::vector<uint64_t> map_;          // mu -> slot (kUnmapped)
  std::vector<uint64_t> rmap_;         // slot -> mu (kUnmapped = free/invalid)
  std::vector<uint32_t> valid_;        // per block: valid slots
  std::vector<uint32_t> fill_;         // per block: next slot index
  std::vector<BlockState> state_;      // per block
  std::vector<std::vector<uint64_t>> free_;  // per channel free lists
  uint64_t free_total_ = 0;
  std::vector<std::unique_ptr<BucketQueue>> candidates_;  // per channel

  std::vector<Stream> streams_;
  Stream gc_stream_;  // relocation frontier (per-channel open blocks)
  uint64_t lru_clock_ = 0;
  uint32_t global_rr_channel_ = 0;

  // Async GC bookkeeping.
  double bg_credit_us_ = 0;
  double gc_cost_ema_us_ = 2000.0;

  FtlStats stats_;

  // Scratch buffers reused across calls.
  std::vector<GlobalPage> scratch_pages_;
  std::vector<uint64_t> scratch_tokens_;
  // Host-write program batch, deferred for cross-channel makespan
  // accounting; flushed before GC and at the end of each Write().
  std::vector<PageWrite> pending_writes_;
};

}  // namespace uflip

#endif  // UFLIP_FTL_PAGE_MAPPING_FTL_H_
