#include "src/ftl/page_mapping_ftl.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace uflip {

Status PageMappingConfig::Validate(const ArrayConfig& array) const {
  if (mapping_unit_pages == 0 ||
      array.chip_geometry.pages_per_block % mapping_unit_pages != 0) {
    return Status::InvalidArgument(
        "mapping_unit_pages must divide pages_per_block");
  }
  if (overprovision <= 0.0 || overprovision >= 0.9) {
    return Status::InvalidArgument("overprovision must be in (0, 0.9)");
  }
  if (write_streams == 0) {
    return Status::InvalidArgument("write_streams must be > 0");
  }
  return Status::Ok();
}

PageMappingFtl::PageMappingFtl(std::unique_ptr<FlashArray> array,
                               const PageMappingConfig& config)
    : array_(std::move(array)), config_(config) {
  mu_pages_ = config_.mapping_unit_pages;
  slots_per_block_ = array_->pages_per_block() / mu_pages_;
  UFLIP_CHECK(slots_per_block_ > 0);
  n_blocks_ = array_->total_blocks();

  // Reserve: over-provisioning, but always enough for the GC high
  // watermark, the open-block demand of the streams, and a per-channel
  // GC relocation cushion.
  uint64_t reserve = static_cast<uint64_t>(
      static_cast<double>(n_blocks_) * config_.overprovision);
  uint64_t floor_reserve =
      config_.gc_high_watermark_blocks +
      static_cast<uint64_t>(config_.write_streams + 2) * array_->channels() +
      4;
  reserve = std::max(reserve, floor_reserve);
  UFLIP_CHECK_MSG(reserve < n_blocks_,
                  "device too small for the configured reserve");

  n_mus_ = (n_blocks_ - reserve) * slots_per_block_;
  logical_pages_ = n_mus_ * mu_pages_;

  map_.assign(n_mus_, kUnmapped);
  rmap_.assign(n_blocks_ * slots_per_block_, kUnmapped);
  valid_.assign(n_blocks_, 0);
  fill_.assign(n_blocks_, 0);
  state_.assign(n_blocks_, BlockState::kFree);
  free_.resize(array_->channels());
  for (uint64_t b = 0; b < n_blocks_; ++b) {
    free_[array_->ChannelOf(b)].push_back(b);
    ++free_total_;
  }
  candidates_.resize(array_->channels());
  for (uint32_t c = 0; c < array_->channels(); ++c) {
    candidates_[c] = std::make_unique<BucketQueue>(
        static_cast<uint32_t>(n_blocks_), slots_per_block_);
  }
  streams_.resize(config_.write_streams);
  for (auto& s : streams_) s.open.assign(array_->channels(), kNoBlock);
  gc_stream_.open.assign(array_->channels(), kNoBlock);
}

PageMappingFtl::Stream* PageMappingFtl::PickStream(uint64_t first_mu,
                                                   uint64_t end_mu) {
  (void)end_mu;
  ++lru_clock_;
  Stream* learnable = nullptr;
  int64_t learn_stride = kStrideUnknown;
  Stream* lru = &streams_[0];
  for (auto& s : streams_) {
    if (s.lru_tick < lru->lru_tick) lru = &s;
    if (s.last_start == UINT64_MAX) continue;
    if (s.stride != kStrideUnknown) {
      // Exact continuation of a known stream.
      uint64_t expected =
          s.stride == 1
              ? s.last_end
              : static_cast<uint64_t>(static_cast<int64_t>(s.last_start) +
                                      s.stride);
      if (first_mu == expected) {
        s.lru_tick = lru_clock_;
        return &s;
      }
    } else if (learnable == nullptr) {
      if (first_mu == s.last_end) {
        learnable = &s;
        learn_stride = 1;  // sequential: IO begins where the last ended
      } else if (first_mu == s.last_start) {
        learnable = &s;
        learn_stride = 0;  // in-place
      } else {
        int64_t delta = static_cast<int64_t>(first_mu) -
                        static_cast<int64_t>(s.last_start);
        if (delta != 0 &&
            std::llabs(delta) <=
                static_cast<int64_t>(config_.max_learn_stride_mus)) {
          learnable = &s;
          learn_stride = delta;  // strided (Incr) or reverse
        }
      }
    }
  }
  if (learnable != nullptr) {
    learnable->stride = learn_stride;
    learnable->lru_tick = lru_clock_;
    return learnable;
  }
  // Steal the least-recently-used stream; keep its open blocks (they
  // continue to be filled by the new stream).
  lru->last_start = UINT64_MAX;
  lru->last_end = UINT64_MAX;
  lru->stride = kStrideUnknown;
  lru->lru_tick = lru_clock_;
  return lru;
}

uint32_t PageMappingFtl::PlacementChannel(Stream* stream, uint64_t mu) {
  const uint32_t channels = array_->channels();
  if (stream->stride != kStrideUnknown && stream->stride > 1) {
    // Strided sequential stream: LBA-static placement so that later
    // sequential reads stripe across channels. Strides that are
    // multiples of the channel count collapse onto one channel.
    uint64_t lba_block = (mu * mu_pages_) / array_->pages_per_block();
    return static_cast<uint32_t>(lba_block % channels);
  }
  // Sequential / in-place / reverse / random: dynamic round-robin.
  if (stream->stride == kStrideUnknown) {
    return global_rr_channel_++ % channels;
  }
  return stream->rr_channel++ % channels;
}

Status PageMappingFtl::FlushPending(FtlCost* cost) {
  if (pending_writes_.empty()) return Status::Ok();
  double t = 0;
  Status s = array_->ProgramPages(pending_writes_, &t);
  cost->service_us += t;
  cost->page_programs += pending_writes_.size();
  stats_.flash_page_programs += pending_writes_.size();
  pending_writes_.clear();
  return s;
}

Status PageMappingFtl::AllocBlock(uint32_t channel, FtlCost* cost,
                                  uint64_t* block) {
  // Keep a per-channel cushion free for GC relocation.
  uint64_t guard = 0;
  while (free_[channel].empty() || free_total_ <= array_->channels()) {
    UFLIP_RETURN_IF_ERROR(GcOnce(channel, cost));
    if (++guard > n_blocks_) {
      return Status::Internal("GC cannot reclaim space (device full?)");
    }
  }
  *block = free_[channel].back();
  free_[channel].pop_back();
  --free_total_;
  state_[*block] = BlockState::kOpen;
  UFLIP_DCHECK(fill_[*block] == 0);
  return Status::Ok();
}

Status PageMappingFtl::EnsureOpenBlock(Stream* stream, uint32_t channel,
                                       FtlCost* cost, uint64_t* block) {
  uint64_t b = stream->open[channel];
  if (b != kNoBlock && state_[b] == BlockState::kOpen &&
      fill_[b] < slots_per_block_) {
    *block = b;
    return Status::Ok();
  }
  UFLIP_RETURN_IF_ERROR(AllocBlock(channel, cost, &b));
  stream->open[channel] = b;
  *block = b;
  return Status::Ok();
}

void PageMappingFtl::InvalidateOld(uint64_t mu) {
  uint64_t slot = map_[mu];
  if (slot == kUnmapped) return;
  rmap_[slot] = kUnmapped;
  uint64_t b = BlockOfSlot(slot);
  UFLIP_DCHECK(valid_[b] > 0);
  --valid_[b];
  if (state_[b] == BlockState::kFull) {
    candidates_[array_->ChannelOf(b)]->UpdateKey(static_cast<uint32_t>(b),
                                                 valid_[b]);
  }
}

void PageMappingFtl::SealIfFull(uint64_t block) {
  if (fill_[block] == slots_per_block_ &&
      state_[block] == BlockState::kOpen) {
    state_[block] = BlockState::kFull;
    candidates_[array_->ChannelOf(block)]->Insert(
        static_cast<uint32_t>(block), valid_[block]);
  }
}

Status PageMappingFtl::GcOnce(uint32_t channel, FtlCost* cost) {
  // A victim must never carry unflushed host programs.
  UFLIP_RETURN_IF_ERROR(FlushPending(cost));
  ++stats_.gc_runs;
  BucketQueue* q = candidates_[channel].get();
  if (q->empty()) {
    return Status::Internal("GC: no full blocks to collect on channel");
  }
  uint32_t victim = q->PopMin();
  state_[victim] = BlockState::kFree;  // will be erased below

  // Relocate valid mapping units.
  // Local buffers: GC may run in the middle of a host write that is
  // accumulating its own program batch in the shared scratch vectors.
  std::vector<GlobalPage> gc_pages;
  std::vector<PageWrite> gc_writes;
  std::vector<uint64_t> gc_tokens;
  std::vector<uint64_t> moved_mus;
  for (uint32_t idx = 0; idx < slots_per_block_; ++idx) {
    uint64_t slot = SlotOf(victim, idx);
    uint64_t mu = rmap_[slot];
    if (mu == kUnmapped) continue;
    moved_mus.push_back(mu);
    for (uint32_t p = 0; p < mu_pages_; ++p) {
      gc_pages.push_back(
          GlobalPage{victim, idx * mu_pages_ + p});
    }
  }
  double t = 0;
  if (!gc_pages.empty()) {
    UFLIP_RETURN_IF_ERROR(
        array_->ReadPages(gc_pages, &gc_tokens, &t));
    cost->service_us += t;
    cost->page_reads += gc_pages.size();
    stats_.flash_page_reads += gc_pages.size();

    // Program relocated MUs into the GC frontier (victim's channel if it
    // has capacity, otherwise any channel with free space).
    size_t tok_idx = 0;
    for (uint64_t mu : moved_mus) {
      // Find a destination block.
      uint64_t dst = gc_stream_.open[channel];
      uint32_t dst_ch = channel;
      if (dst == kNoBlock || fill_[dst] >= slots_per_block_) {
        dst = kNoBlock;
        // Prefer the victim's channel, then any channel with an open
        // frontier with slack or a free block.
        for (uint32_t off = 0; off < array_->channels(); ++off) {
          uint32_t c = (channel + off) % array_->channels();
          uint64_t ob = gc_stream_.open[c];
          if (ob != kNoBlock && fill_[ob] < slots_per_block_) {
            dst = ob;
            dst_ch = c;
            break;
          }
          if (!free_[c].empty()) {
            dst = free_[c].back();
            free_[c].pop_back();
            --free_total_;
            state_[dst] = BlockState::kOpen;
            gc_stream_.open[c] = dst;
            dst_ch = c;
            break;
          }
        }
        if (dst == kNoBlock) {
          return Status::Internal("GC relocation found no free space");
        }
      } else {
        dst_ch = channel;
      }
      UFLIP_CHECK_MSG(fill_[dst] < slots_per_block_,
                      "gc fill overflow b=%llu fill=%u state=%d victim=%u "
                      "dst_ch=%u ch=%u gc_open_ch=%llu",
                      (unsigned long long)dst, fill_[dst], (int)state_[dst],
                      victim, dst_ch, channel,
                      (unsigned long long)gc_stream_.open[channel]);
      uint32_t idx = fill_[dst]++;
      uint64_t new_slot = SlotOf(dst, idx);
      for (uint32_t p = 0; p < mu_pages_; ++p) {
        gc_writes.push_back(PageWrite{
            GlobalPage{dst, idx * mu_pages_ + p},
            gc_tokens[tok_idx++]});
      }
      // Re-point the map. The old slot belongs to the victim, which is
      // erased below, so no bucket update is needed.
      rmap_[map_[mu]] = kUnmapped;
      map_[mu] = new_slot;
      rmap_[new_slot] = mu;
      ++valid_[dst];
      SealIfFull(dst);
      if (gc_stream_.open[dst_ch] == dst &&
          fill_[dst] == slots_per_block_) {
        gc_stream_.open[dst_ch] = kNoBlock;
      }
    }
    UFLIP_RETURN_IF_ERROR(array_->ProgramPages(gc_writes, &t));
    cost->service_us += t;
    cost->page_programs += gc_writes.size();
    stats_.flash_page_programs += gc_writes.size();
  }

  valid_[victim] = 0;
  UFLIP_RETURN_IF_ERROR(array_->EraseBlock(victim, &t));
  cost->service_us += t;
  ++cost->block_erases;
  ++stats_.flash_block_erases;
  fill_[victim] = 0;
  // Drop stale open-block pointers: a stream that last wrote into this
  // block while it was still open must not keep appending to it now
  // that it is erased and back on the free list.
  for (auto& stream : streams_) {
    for (auto& open : stream.open) {
      if (open == victim) open = kNoBlock;
    }
  }
  for (auto& open : gc_stream_.open) {
    if (open == victim) open = kNoBlock;
  }
  free_[channel].push_back(victim);
  ++free_total_;
  ++cost->merges;
  return Status::Ok();
}

Status PageMappingFtl::WriteMu(Stream* stream, uint64_t mu,
                               const uint64_t* mu_tokens, FtlCost* cost) {
  uint32_t channel = PlacementChannel(stream, mu);
  uint64_t block = 0;
  UFLIP_RETURN_IF_ERROR(EnsureOpenBlock(stream, channel, cost, &block));
  UFLIP_CHECK_MSG(fill_[block] < slots_per_block_, "write fill overflow b=%llu",
                  (unsigned long long)block);
  uint32_t idx = fill_[block]++;
  uint64_t slot = SlotOf(block, idx);
  for (uint32_t p = 0; p < mu_pages_; ++p) {
    pending_writes_.push_back(
        PageWrite{GlobalPage{block, idx * mu_pages_ + p}, mu_tokens[p]});
  }
  InvalidateOld(mu);
  map_[mu] = slot;
  rmap_[slot] = mu;
  ++valid_[block];
  SealIfFull(block);
  return Status::Ok();
}

Status PageMappingFtl::Write(uint64_t lpn, uint32_t npages,
                             const uint64_t* tokens, FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("write beyond logical capacity");
  }
  stats_.host_page_writes += npages;

  uint64_t first_mu = lpn / mu_pages_;
  uint64_t last_mu = (lpn + npages - 1) / mu_pages_;
  Stream* stream = PickStream(first_mu, last_mu + 1);

  // Pass 1: gather read-modify-write pages for partially covered MUs.
  scratch_pages_.clear();
  struct RmwRef {
    uint64_t page;   // logical page
    size_t index;    // index into the RMW token array
  };
  std::vector<RmwRef> rmw_refs;
  for (uint64_t mu = first_mu; mu <= last_mu; ++mu) {
    uint64_t mu_base = mu * mu_pages_;
    for (uint32_t p = 0; p < mu_pages_; ++p) {
      uint64_t page = mu_base + p;
      bool covered = page >= lpn && page < lpn + npages;
      if (covered) continue;
      uint64_t slot = map_[mu];
      if (slot == kUnmapped) continue;  // missing data is zero
      uint64_t phys_block = BlockOfSlot(slot);
      uint32_t phys_page = IdxOfSlot(slot) * mu_pages_ + p;
      rmw_refs.push_back(RmwRef{page, scratch_pages_.size()});
      scratch_pages_.push_back(GlobalPage{phys_block, phys_page});
    }
  }
  std::vector<uint64_t> rmw_tokens;
  if (!scratch_pages_.empty()) {
    double t = 0;
    UFLIP_RETURN_IF_ERROR(array_->ReadPages(scratch_pages_, &rmw_tokens, &t));
    cost->service_us += t;
    cost->page_reads += scratch_pages_.size();
    cost->rmw_pages += scratch_pages_.size();
    stats_.flash_page_reads += scratch_pages_.size();
  }

  // Pass 2: write each MU (allocation may trigger synchronous GC whose
  // flash operations are charged immediately after the pending batch is
  // flushed; the new data programs are batched for cross-channel
  // makespan accounting).
  UFLIP_DCHECK(pending_writes_.empty());
  std::vector<uint64_t> mu_tokens(mu_pages_, 0);
  size_t rmw_cursor = 0;
  for (uint64_t mu = first_mu; mu <= last_mu; ++mu) {
    uint64_t mu_base = mu * mu_pages_;
    for (uint32_t p = 0; p < mu_pages_; ++p) {
      uint64_t page = mu_base + p;
      if (page >= lpn && page < lpn + npages) {
        mu_tokens[p] = tokens != nullptr ? tokens[page - lpn] : 0;
      } else if (rmw_cursor < rmw_refs.size() &&
                 rmw_refs[rmw_cursor].page == page) {
        mu_tokens[p] = rmw_tokens[rmw_refs[rmw_cursor].index];
        ++rmw_cursor;
      } else {
        mu_tokens[p] = 0;
      }
    }
    UFLIP_RETURN_IF_ERROR(WriteMu(stream, mu, mu_tokens.data(), cost));
  }
  UFLIP_RETURN_IF_ERROR(FlushPending(cost));
  stream->last_start = first_mu;
  stream->last_end = last_mu + 1;
  return Status::Ok();
}

Status PageMappingFtl::Read(uint64_t lpn, uint32_t npages,
                            std::vector<uint64_t>* tokens, FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("read beyond logical capacity");
  }
  stats_.host_page_reads += npages;
  if (tokens != nullptr) {
    tokens->assign(npages, 0);
  }
  scratch_pages_.clear();
  std::vector<size_t> out_index;
  for (uint32_t i = 0; i < npages; ++i) {
    uint64_t page = lpn + i;
    uint64_t mu = page / mu_pages_;
    uint64_t slot = map_[mu];
    if (slot == kUnmapped) continue;  // never written -> zero
    uint64_t phys_block = BlockOfSlot(slot);
    uint32_t phys_page =
        IdxOfSlot(slot) * mu_pages_ + static_cast<uint32_t>(page % mu_pages_);
    scratch_pages_.push_back(GlobalPage{phys_block, phys_page});
    out_index.push_back(i);
  }
  stats_.map_hits += scratch_pages_.size();
  stats_.map_misses += npages - scratch_pages_.size();
  if (!scratch_pages_.empty()) {
    double t = 0;
    scratch_tokens_.clear();
    UFLIP_RETURN_IF_ERROR(
        array_->ReadPages(scratch_pages_, &scratch_tokens_, &t));
    cost->service_us += t;
    cost->page_reads += scratch_pages_.size();
    stats_.flash_page_reads += scratch_pages_.size();
    if (tokens != nullptr) {
      for (size_t k = 0; k < out_index.size(); ++k) {
        (*tokens)[out_index[k]] = scratch_tokens_[k];
      }
    }
  }
  return Status::Ok();
}

double PageMappingFtl::BackgroundWork(double budget_us) {
  if (!config_.async_gc) return 0.0;
  bg_credit_us_ += budget_us;
  // Cap accumulated credit so that a week-long idle does not turn into
  // unbounded instantaneous work later.
  double cap = 50.0 * gc_cost_ema_us_ * config_.gc_high_watermark_blocks;
  bg_credit_us_ = std::min(bg_credit_us_, cap);
  double used = 0;
  while (free_total_ < config_.gc_high_watermark_blocks &&
         bg_credit_us_ >= gc_cost_ema_us_) {
    // Collect on the channel with the least free blocks.
    uint32_t ch = 0;
    for (uint32_t c = 1; c < array_->channels(); ++c) {
      if (free_[c].size() < free_[ch].size()) ch = c;
    }
    if (candidates_[ch]->empty()) {
      // Fall back to any channel with candidates.
      bool found = false;
      for (uint32_t c = 0; c < array_->channels(); ++c) {
        if (!candidates_[c]->empty()) {
          ch = c;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    FtlCost gc;
    Status collected = GcOnce(ch, &gc);
    if (!collected.ok()) {
      IgnoreStatus(collected,
                   "background GC halts on error; the foreground path "
                   "hits the same device fault and propagates it");
      break;
    }
    gc_cost_ema_us_ = 0.8 * gc_cost_ema_us_ + 0.2 * gc.service_us;
    bg_credit_us_ -= gc.service_us;
    used += gc.service_us;
  }
  return used;
}

double PageMappingFtl::PendingBackgroundUs() const {
  if (!config_.async_gc) return 0.0;
  if (free_total_ >= config_.gc_high_watermark_blocks) return 0.0;
  return static_cast<double>(config_.gc_high_watermark_blocks - free_total_) *
         gc_cost_ema_us_;
}

uint32_t PageMappingFtl::DispatchChannel(uint64_t lpn) const {
  uint64_t mu = (lpn / mu_pages_);
  if (mu < n_mus_ && map_[mu] != kUnmapped) {
    return array_->ChannelOf(BlockOfSlot(map_[mu]));
  }
  // Unmapped (never written): predict the LBA-static striping the write
  // placement uses.
  return array_->ChannelOf(mu);
}

std::string PageMappingFtl::DebugString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "PageMappingFtl{mu=%u pages, logical=%llu pages, free=%llu blocks, "
      "WA=%.2f, gc_runs=%llu}",
      mu_pages_, static_cast<unsigned long long>(logical_pages_),
      static_cast<unsigned long long>(free_total_),
      stats_.WriteAmplification(),
      static_cast<unsigned long long>(stats_.gc_runs));
  return buf;
}

}  // namespace uflip
