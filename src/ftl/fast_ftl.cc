#include "src/ftl/fast_ftl.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace uflip {

Status FastConfig::Validate() const {
  if (log_region_blocks < 2) {
    return Status::InvalidArgument("log_region_blocks must be >= 2");
  }
  if (merge_overhead_us < 0) {
    return Status::InvalidArgument("merge_overhead_us must be >= 0");
  }
  return Status::Ok();
}

FastFtl::FastFtl(std::unique_ptr<FlashArray> array, const FastConfig& config)
    : array_(std::move(array)), config_(config) {
  UFLIP_CHECK(config_.Validate().ok());
  uint64_t n_phys = array_->total_blocks();
  uint64_t reserve = config_.log_region_blocks + 4;
  UFLIP_CHECK_MSG(reserve + 1 < n_phys, "device too small for log region");
  n_logical_blocks_ = n_phys - reserve;
  logical_pages_ = n_logical_blocks_ * ppb();

  map_.assign(n_logical_blocks_, kUnmapped);
  written_.assign((logical_pages_ + 63) / 64, 0);
  for (uint64_t b = 0; b < n_phys; ++b) free_.push_back(b);
  heads_.resize(std::max<uint32_t>(1, config_.append_points));
}

Status FastFtl::AllocFree(uint64_t* block) {
  if (free_.empty()) return Status::Internal("FAST free pool exhausted");
  *block = free_.back();
  free_.pop_back();
  return Status::Ok();
}

Status FastFtl::ReleaseBlock(uint64_t block, FtlCost* cost) {
  double t = 0;
  UFLIP_RETURN_IF_ERROR(array_->EraseBlock(block, &t));
  cost->service_us += t;
  ++cost->block_erases;
  ++stats_.flash_block_erases;
  free_.push_back(block);
  return Status::Ok();
}

FastFtl::LogSegment* FastFtl::SegmentBySerial(uint32_t serial) {
  if (ring_.empty()) return nullptr;
  if (serial < front_serial_ ||
      serial >= front_serial_ + ring_.size()) {
    return nullptr;
  }
  return &ring_[serial - front_serial_];
}

Status FastFtl::MergeLogicalBlock(uint64_t lbk, FtlCost* cost) {
  ++cost->merges;
  ++stats_.merges;
  // Local buffers: merges run while a host write batch may be pending
  // in the shared scratch vectors.
  std::vector<GlobalPage> m_pages;
  std::vector<PageWrite> m_writes;
  std::vector<uint64_t> m_tokens;

  // Switch-merge detection: the newest segment that holds *all* live
  // pages of lbk at aligned positions, completely filling it.
  // (Cheap check: page 0..ppb-1 of lbk all map to the same segment at
  // position == offset.)
  {
    uint64_t base = lbk * ppb();
    auto it0 = latest_.find(base);
    if (it0 != latest_.end() && it0->second.page == 0) {
      uint32_t serial = it0->second.segment_serial;
      bool switchable = true;
      for (uint32_t off = 1; off < ppb(); ++off) {
        auto it = latest_.find(base + off);
        if (it == latest_.end() || it->second.segment_serial != serial ||
            it->second.page != off) {
          switchable = false;
          break;
        }
      }
      LogSegment* seg = switchable ? SegmentBySerial(serial) : nullptr;
      if (seg != nullptr && seg->write_point == ppb()) {
        ++stats_.switch_merges;
        cost->service_us += config_.switch_overhead_us;
        uint64_t old_data = map_[lbk];
        map_[lbk] = seg->phys;
        if (old_data != kUnmapped) {
          UFLIP_RETURN_IF_ERROR(ReleaseBlock(old_data, cost));
        }
        // The segment's block now belongs to the data map; give the
        // segment a stand-in free block so ring recycling stays uniform.
        UFLIP_RETURN_IF_ERROR(AllocFree(&seg->phys));
        std::fill(seg->entries.begin(), seg->entries.end(), kUnmapped);
        // NOTE: write_point stays at ppb so the stand-in is treated as
        // exhausted and recycled on wrap without further programming.
        for (uint32_t off = 0; off < ppb(); ++off) latest_.erase(base + off);
        return Status::Ok();
      }
    }
  }

  // Full merge -- or, when every live log page of this block sits in a
  // single segment, the cheaper "reorder" merge (the controller copies
  // one log block and one data block 1:1 instead of gathering from the
  // whole region).
  uint64_t dst = 0;
  UFLIP_RETURN_IF_ERROR(AllocFree(&dst));
  std::vector<uint32_t> offs;
  uint64_t base = lbk * ppb();
  uint32_t log_segments_touched = 0;
  uint32_t last_serial_seen = UINT32_MAX;
  LogSegment* only_segment = nullptr;
  for (uint32_t off = 0; off < ppb(); ++off) {
    uint64_t lpn = base + off;
    auto it = latest_.find(lpn);
    if (it != latest_.end()) {
      LogSegment* seg = SegmentBySerial(it->second.segment_serial);
      UFLIP_CHECK(seg != nullptr);
      if (it->second.segment_serial != last_serial_seen) {
        last_serial_seen = it->second.segment_serial;
        ++log_segments_touched;
        only_segment = seg;
      }
      m_pages.push_back(GlobalPage{seg->phys, it->second.page});
      offs.push_back(off);
    } else if (map_[lbk] != kUnmapped && IsWritten(lpn)) {
      m_pages.push_back(GlobalPage{map_[lbk], off});
      offs.push_back(off);
    }
  }
  // Reorder tier: the single touched log segment is dedicated to this
  // block (>= half of its entries, live or stale, belong to it) -- the
  // signature of reverse / in-place streams. Random writes leave stray
  // chunks in shared segments and pay the full gather overhead.
  bool dedicated = false;
  if (log_segments_touched == 1 && only_segment != nullptr) {
    uint32_t mine = 0;
    for (uint32_t pg = 0; pg < only_segment->write_point; ++pg) {
      uint64_t entry = only_segment->entries[pg];
      if (entry != kUnmapped && entry / ppb() == lbk) ++mine;
    }
    dedicated = mine >= ppb() / 2;
  }
  cost->service_us += (log_segments_touched <= 1 && dedicated)
                          ? config_.reorder_overhead_us
                          : config_.merge_overhead_us;
  double t = 0;
  if (!m_pages.empty()) {
    UFLIP_RETURN_IF_ERROR(
        array_->ReadPages(m_pages, &m_tokens, &t));
    cost->service_us += t;
    cost->page_reads += m_pages.size();
    stats_.flash_page_reads += m_pages.size();
    for (size_t k = 0; k < offs.size(); ++k) {
      m_writes.push_back(
          PageWrite{GlobalPage{dst, offs[k]}, m_tokens[k]});
    }
    UFLIP_RETURN_IF_ERROR(array_->ProgramPages(m_writes, &t));
    cost->service_us += t;
    cost->page_programs += m_writes.size();
    stats_.flash_page_programs += m_writes.size();
  }
  uint64_t old_data = map_[lbk];
  map_[lbk] = dst;
  if (old_data != kUnmapped) {
    UFLIP_RETURN_IF_ERROR(ReleaseBlock(old_data, cost));
  }
  for (uint32_t off = 0; off < ppb(); ++off) latest_.erase(base + off);
  return Status::Ok();
}

Status FastFtl::ReclaimOldest(FtlCost* cost) {
  UFLIP_CHECK(!ring_.empty());
  LogSegment& seg = ring_.front();
  // Collect logical blocks with live pages in this segment.
  std::vector<uint64_t> victims;
  for (uint32_t p = 0; p < seg.write_point; ++p) {
    uint64_t lpn = seg.entries[p];
    if (lpn == kUnmapped) continue;
    auto it = latest_.find(lpn);
    if (it == latest_.end() || it->second.segment_serial != front_serial_ ||
        it->second.page != p) {
      continue;  // superseded by a newer copy
    }
    uint64_t lbk = lpn / ppb();
    if (std::find(victims.begin(), victims.end(), lbk) == victims.end()) {
      victims.push_back(lbk);
    }
  }
  for (uint64_t lbk : victims) {
    UFLIP_RETURN_IF_ERROR(MergeLogicalBlock(lbk, cost));
  }
  // All live content is gone; recycle the block.
  LogSegment old = std::move(ring_.front());
  ring_.pop_front();
  ++front_serial_;
  UFLIP_RETURN_IF_ERROR(ReleaseBlock(old.phys, cost));
  return Status::Ok();
}

FastFtl::Head* FastFtl::PickHead(uint64_t lpn) {
  ++head_lru_clock_;
  Head* lru = &heads_[0];
  for (auto& h : heads_) {
    if (h.lru < lru->lru) lru = &h;
    if (h.expected_next == lpn || h.last_lbk == lpn / ppb()) {
      h.lru = head_lru_clock_;
      return &h;
    }
  }
  lru->serial = UINT32_MAX;
  lru->expected_next = UINT64_MAX;
  lru->last_lbk = UINT64_MAX;
  lru->lru = head_lru_clock_;
  return lru;
}

Status FastFtl::EnsureAppendRoom(Head* head, FtlCost* cost) {
  LogSegment* seg = SegmentBySerial(head->serial);
  if (seg != nullptr && seg->write_point < ppb()) return Status::Ok();
  while (ring_.size() >= config_.log_region_blocks) {
    UFLIP_RETURN_IF_ERROR(ReclaimOldest(cost));
  }
  LogSegment fresh;
  UFLIP_RETURN_IF_ERROR(AllocFree(&fresh.phys));
  fresh.entries.assign(ppb(), kUnmapped);
  ring_.push_back(std::move(fresh));
  if (ring_.size() == 1) front_serial_ = next_serial_;
  head->serial = next_serial_;
  ++next_serial_;
  return Status::Ok();
}

Status FastFtl::Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
                      FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("write beyond logical capacity");
  }
  stats_.host_page_writes += npages;
  Head* head = PickHead(lpn);
  // Sequential-stream alignment: a write starting at a logical-block
  // boundary closes this head's partially filled segment so that full
  // sequential blocks land alone in one segment (switch-merge
  // eligible). Without this, one mid-segment write would misalign every
  // later sequential stream forever.
  if (lpn % ppb() == 0 && head->last_lbk != lpn / ppb()) {
    LogSegment* seg = SegmentBySerial(head->serial);
    if (seg != nullptr && seg->write_point != 0 &&
        seg->write_point != ppb()) {
      seg->write_point = ppb();
    }
  }
  scratch_writes_.clear();
  for (uint32_t i = 0; i < npages; ++i) {
    // Appends may wrap the ring (merges flush pending programs first).
    LogSegment* seg = SegmentBySerial(head->serial);
    if (seg == nullptr || seg->write_point == ppb()) {
      if (!scratch_writes_.empty()) {
        double t = 0;
        UFLIP_RETURN_IF_ERROR(array_->ProgramPages(scratch_writes_, &t));
        cost->service_us += t;
        cost->page_programs += scratch_writes_.size();
        stats_.flash_page_programs += scratch_writes_.size();
        scratch_writes_.clear();
      }
      UFLIP_RETURN_IF_ERROR(EnsureAppendRoom(head, cost));
      seg = SegmentBySerial(head->serial);
      UFLIP_CHECK(seg != nullptr);
    }
    uint32_t p = seg->write_point++;
    uint64_t page = lpn + i;
    seg->entries[p] = page;
    latest_[page] = LogLoc{head->serial, p};
    MarkWritten(page);
    scratch_writes_.push_back(PageWrite{GlobalPage{seg->phys, p},
                                        tokens != nullptr ? tokens[i] : 0});
  }
  head->expected_next = lpn + npages;
  head->last_lbk = (lpn + npages - 1) / ppb();
  if (!scratch_writes_.empty()) {
    double t = 0;
    UFLIP_RETURN_IF_ERROR(array_->ProgramPages(scratch_writes_, &t));
    cost->service_us += t;
    cost->page_programs += scratch_writes_.size();
    stats_.flash_page_programs += scratch_writes_.size();
  }
  return Status::Ok();
}

Status FastFtl::Read(uint64_t lpn, uint32_t npages,
                     std::vector<uint64_t>* tokens, FtlCost* cost) {
  if (npages == 0) return Status::Ok();
  if (lpn + npages > logical_pages_) {
    return Status::OutOfRange("read beyond logical capacity");
  }
  stats_.host_page_reads += npages;
  if (tokens != nullptr) tokens->assign(npages, 0);
  scratch_pages_.clear();
  std::vector<size_t> out_index;
  for (uint32_t i = 0; i < npages; ++i) {
    uint64_t page = lpn + i;
    if (!IsWritten(page)) continue;
    auto it = latest_.find(page);
    if (it != latest_.end()) {
      LogSegment* seg = SegmentBySerial(it->second.segment_serial);
      UFLIP_CHECK(seg != nullptr);
      scratch_pages_.push_back(GlobalPage{seg->phys, it->second.page});
    } else {
      uint64_t lbk = page / ppb();
      if (map_[lbk] == kUnmapped) continue;
      scratch_pages_.push_back(
          GlobalPage{map_[lbk], static_cast<uint32_t>(page % ppb())});
    }
    out_index.push_back(i);
  }
  stats_.map_hits += scratch_pages_.size();
  stats_.map_misses += npages - scratch_pages_.size();
  if (!scratch_pages_.empty()) {
    double t = 0;
    scratch_tokens_.clear();
    UFLIP_RETURN_IF_ERROR(
        array_->ReadPages(scratch_pages_, &scratch_tokens_, &t));
    cost->service_us += t;
    cost->page_reads += scratch_pages_.size();
    stats_.flash_page_reads += scratch_pages_.size();
    if (tokens != nullptr) {
      for (size_t k = 0; k < out_index.size(); ++k) {
        (*tokens)[out_index[k]] = scratch_tokens_[k];
      }
    }
  }
  return Status::Ok();
}

uint32_t FastFtl::DispatchChannel(uint64_t lpn) const {
  if (lpn >= logical_pages_) {
    return array_->ChannelOf(lpn / ppb());
  }
  // Latest copy may live in the shared log ring.
  auto it = latest_.find(lpn);
  if (it != latest_.end()) {
    uint32_t idx = it->second.segment_serial - front_serial_;
    if (idx < ring_.size()) {
      return array_->ChannelOf(ring_[idx].phys);
    }
  }
  uint64_t lbk = lpn / ppb();
  uint64_t phys = map_[lbk];
  return array_->ChannelOf(phys != kUnmapped ? phys : lbk);
}

std::string FastFtl::DebugString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "FastFtl{log_region=%u blocks (%zu in ring), logical=%llu "
                "pages, WA=%.2f, merges=%llu}",
                config_.log_region_blocks, ring_.size(),
                static_cast<unsigned long long>(logical_pages_),
                stats_.WriteAmplification(),
                static_cast<unsigned long long>(stats_.merges));
  return buf;
}

}  // namespace uflip
