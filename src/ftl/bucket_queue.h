// O(1) greedy GC victim selection: blocks bucketed by valid-page count.
// Supports insert, remove, key decrement and pop-min. Implemented with
// intrusive doubly-linked lists over flat arrays (no allocation on the
// hot path).
#ifndef UFLIP_FTL_BUCKET_QUEUE_H_
#define UFLIP_FTL_BUCKET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uflip {

/// Priority structure keyed by small integer (valid count in
/// [0, max_key]); pop returns an element with the minimum key.
class BucketQueue {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  /// `capacity` elements (block ids in [0, capacity)), keys in
  /// [0, max_key].
  BucketQueue(uint32_t capacity, uint32_t max_key);

  /// Inserts `id` with `key`. Must not already be present.
  void Insert(uint32_t id, uint32_t key);

  /// Removes `id`. Must be present.
  void Remove(uint32_t id);

  /// Changes the key of a present `id`.
  void UpdateKey(uint32_t id, uint32_t new_key);

  bool Contains(uint32_t id) const { return key_[id] != kNone; }
  uint32_t KeyOf(uint32_t id) const { return key_[id]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns an id with the minimum key without removing it, or kNone if
  /// empty.
  uint32_t PeekMin() const;

  /// Removes and returns an id with the minimum key, or kNone if empty.
  uint32_t PopMin();

 private:
  void Unlink(uint32_t id);

  std::vector<uint32_t> head_;  // per key: first id, or kNone
  std::vector<uint32_t> next_;  // per id
  std::vector<uint32_t> prev_;  // per id
  std::vector<uint32_t> key_;   // per id: current key, or kNone if absent
  mutable uint32_t min_hint_ = 0;
  size_t size_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_FTL_BUCKET_QUEUE_H_
