// Flash Translation Layer interface (Section 2.2 of the paper). An FTL
// maintains the direct map between logical block addresses and flash
// pages, trading expensive writes-in-place (with the erase they incur)
// for cheaper writes onto free flash pages, and reclaiming obsolete pages
// either synchronously or asynchronously. Three concrete FTLs are
// provided:
//   * PageMappingFtl  - log-structured page/mapping-unit granularity map
//                       with greedy GC (high-end SSDs);
//   * BastFtl         - block mapping with a per-logical-block log-block
//                       pool (low-end USB sticks, SD cards);
//   * FastFtl         - block mapping with a shared sequential log region
//                       (mid-range devices).
#ifndef UFLIP_FTL_FTL_H_
#define UFLIP_FTL_FTL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace uflip {

class FlashArray;
class MetricRegistry;

/// Cost and operation accounting for one FTL request (or one GC run).
struct FtlCost {
  /// Foreground service time in microseconds.
  double service_us = 0;
  uint64_t page_reads = 0;
  uint64_t page_programs = 0;
  uint64_t block_erases = 0;
  /// Merge operations (BAST/FAST) or GC victim collections (page map).
  uint64_t merges = 0;
  /// Extra page reads/programs caused by read-modify-write of partially
  /// covered mapping units (the alignment penalty).
  uint64_t rmw_pages = 0;

  void Add(const FtlCost& other) {
    service_us += other.service_us;
    page_reads += other.page_reads;
    page_programs += other.page_programs;
    block_erases += other.block_erases;
    merges += other.merges;
    rmw_pages += other.rmw_pages;
  }
};

/// Lifetime counters for reports and tests.
struct FtlStats {
  uint64_t host_page_reads = 0;
  uint64_t host_page_writes = 0;
  uint64_t flash_page_reads = 0;
  uint64_t flash_page_programs = 0;
  uint64_t flash_block_erases = 0;
  uint64_t merges = 0;
  uint64_t gc_runs = 0;
  /// Host-read pages that resolved to a mapped flash page vs pages never
  /// written (map lookup found nothing; served as zeros without touching
  /// flash).
  uint64_t map_hits = 0;
  uint64_t map_misses = 0;
  /// Merges satisfied by the cheap log-block promotion (BAST/FAST switch
  /// merge: map update only, no page copies).
  uint64_t switch_merges = 0;

  /// Write amplification: flash programs per host page written.
  double WriteAmplification() const {
    return host_page_writes == 0
               ? 0.0
               : static_cast<double>(flash_page_programs) /
                     static_cast<double>(host_page_writes);
  }
};

/// Abstract FTL. All addressing is in logical flash pages; the device
/// model (SimDevice) converts host byte offsets into page ranges.
/// `tokens` carry 64-bit content stand-ins so that data integrity is
/// testable end-to-end without buffering real data.
class Ftl {
 public:
  virtual ~Ftl() = default;

  /// Logical capacity in flash pages (< physical due to over-provisioning
  /// and log/reserve pools).
  virtual uint64_t logical_pages() const = 0;
  virtual uint32_t page_bytes() const = 0;

  /// Reads `npages` logical pages starting at `lpn`. Never-written pages
  /// yield token 0. tokens may be nullptr when the caller only needs
  /// timing.
  [[nodiscard]] virtual Status Read(uint64_t lpn, uint32_t npages,
                      std::vector<uint64_t>* tokens, FtlCost* cost) = 0;

  /// Writes `npages` logical pages starting at `lpn`; tokens[i] is the
  /// content of page lpn+i (tokens may be nullptr -> zero tokens).
  [[nodiscard]] virtual Status Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
                       FtlCost* cost) = 0;

  /// Runs up to `budget_us` of deferred background work (asynchronous
  /// page reclamation, Section 2.2). Returns the time actually consumed.
  /// Default: the FTL has no asynchronous machinery.
  virtual double BackgroundWork(double budget_us) {
    (void)budget_us;
    return 0.0;
  }

  /// Estimated outstanding background work in microseconds (0 when the
  /// device is fully reclaimed). Drives the lingering effect of Figure 5.
  virtual double PendingBackgroundUs() const { return 0.0; }

  /// Independent flash channels beneath this FTL; the exclusive upper
  /// bound of DispatchChannel(). Default: one queue, no parallelism.
  virtual uint32_t Channels() const { return 1; }

  /// Channel the flash work of the next host access to `lpn` would
  /// predominantly land on -- the dispatch hint a multi-queue
  /// controller uses to route in-flight IOs onto per-channel queues
  /// (AsyncSimDevice). A hint, not a contract: multi-page IOs and
  /// merges may touch other channels too.
  virtual uint32_t DispatchChannel(uint64_t lpn) const {
    (void)lpn;
    return 0;
  }

  /// The flash array beneath this FTL, when there is one (decorators
  /// forward to the wrapped FTL). The device model reads the array's
  /// cumulative chip-to-controller transfer time to split an IO's bus
  /// stage out of its flash stage for the per-channel bus-contention
  /// model (ControllerConfig::channel_bus_contention); backends without
  /// a flash array (nullptr, the default) simply have no bus stage.
  virtual const FlashArray* flash_array() const { return nullptr; }

  virtual const FtlStats& stats() const = 0;
  virtual std::string DebugString() const = 0;

  /// Registers pull-collectors on `registry` that export this FTL's
  /// lifetime counters under "ftl.*" at every Snapshot(). Decorators
  /// (WriteCache) override to add their own metrics and forward to the
  /// wrapped FTL. Safe to skip entirely: an FTL never registered costs
  /// nothing.
  virtual void RegisterMetrics(MetricRegistry* registry);
};

}  // namespace uflip

#endif  // UFLIP_FTL_FTL_H_
