// FAST-style hybrid FTL: block-granularity direct map plus one shared,
// fully-associative log region written sequentially. Models mid-range
// devices (e.g. Kingston DT HyperX in the paper):
//
//  * Any write appends to the current log block; a log block retires
//    only when the region wraps, so random writes confined to an area
//    smaller than the log region mostly supersede themselves before
//    reclaim -> a large "locality area" (16 MB for the DTHX) even
//    without page mapping.
//  * When the region wraps, the oldest log block is reclaimed: every
//    logical block that still has live pages in it pays a full merge.
//    Random writes over a large area make each reclaimed block carry
//    live pages of many logical blocks -> very expensive random writes.
//  * A reclaimed log block whose content is exactly one aligned,
//    complete logical block switch-merges for free, so sequential
//    writes stay cheap.
#ifndef UFLIP_FTL_FAST_FTL_H_
#define UFLIP_FTL_FAST_FTL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/flash/array.h"
#include "src/ftl/ftl.h"
#include "src/util/status.h"

namespace uflip {

struct FastConfig {
  /// Blocks in the shared log region; the locality area of the device is
  /// roughly log_region_blocks * block_bytes.
  uint32_t log_region_blocks = 32;
  /// Fixed controller bookkeeping cost per *full* merge.
  double merge_overhead_us = 0.0;
  /// Cost of a switch merge (map update only).
  double switch_overhead_us = 100.0;
  /// Bookkeeping cost of a "reorder" merge: all live log pages of the
  /// victim block sit in a single log segment (reverse / in-place
  /// patterns produce these). Much cheaper than the scattered full
  /// merge on most controllers.
  double reorder_overhead_us = 2000.0;
  /// Concurrent append points (write heads). Sequential streams get
  /// their own segments, so up to this many partitions switch-merge
  /// cleanly; beyond, streams interleave and degrade to full merges
  /// (the Partitioning micro-benchmark limit).
  uint32_t append_points = 1;

  [[nodiscard]] Status Validate() const;
};

class FastFtl : public Ftl {
 public:
  FastFtl(std::unique_ptr<FlashArray> array, const FastConfig& config);

  uint64_t logical_pages() const override { return logical_pages_; }
  uint32_t page_bytes() const override { return array_->page_data_bytes(); }

  [[nodiscard]] Status Read(uint64_t lpn, uint32_t npages, std::vector<uint64_t>* tokens,
              FtlCost* cost) override;
  [[nodiscard]] Status Write(uint64_t lpn, uint32_t npages, const uint64_t* tokens,
               FtlCost* cost) override;

  uint32_t Channels() const override { return array_->channels(); }
  uint32_t DispatchChannel(uint64_t lpn) const override;

  const FtlStats& stats() const override { return stats_; }
  std::string DebugString() const override;

  const FlashArray& array() const { return *array_; }
  const FlashArray* flash_array() const override { return array_.get(); }
  const FastConfig& config() const { return config_; }
  size_t LogSegments() const { return ring_.size(); }

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;

  struct LogSegment {
    uint64_t phys = UINT64_MAX;
    /// entries[p] = logical page stored at physical page p (kUnmapped if
    /// not yet programmed).
    std::vector<uint64_t> entries;
    uint32_t write_point = 0;
  };

  /// Location of the latest log copy of a logical page.
  struct LogLoc {
    uint32_t segment_serial;  // serial id of the segment in ring order
    uint32_t page;
  };

  uint32_t ppb() const { return array_->pages_per_block(); }

  bool IsWritten(uint64_t lpn) const {
    return (written_[lpn >> 6] >> (lpn & 63)) & 1;
  }
  void MarkWritten(uint64_t lpn) { written_[lpn >> 6] |= 1ULL << (lpn & 63); }

  [[nodiscard]] Status AllocFree(uint64_t* block);
  [[nodiscard]] Status ReleaseBlock(uint64_t block, FtlCost* cost);

  struct Head {
    uint32_t serial = UINT32_MAX;     // current segment, or none
    uint64_t expected_next = UINT64_MAX;  // stream continuation lpn
    uint64_t last_lbk = UINT64_MAX;
    uint64_t lru = 0;
  };

  /// Picks the append head for a host IO starting at `lpn` (stream
  /// continuation or same-block match; LRU steal otherwise).
  Head* PickHead(uint64_t lpn);

  /// Makes sure `head` has a segment with room for one page, wrapping
  /// the ring (and reclaiming its oldest segment) when needed.
  [[nodiscard]] Status EnsureAppendRoom(Head* head, FtlCost* cost);

  /// Reclaims the oldest ring segment: merges every logical block with
  /// live pages in it, then recycles the segment's physical block.
  [[nodiscard]] Status ReclaimOldest(FtlCost* cost);

  /// Full (or switch) merge of logical block `lbk` using the latest
  /// copies in the log and its data block.
  [[nodiscard]] Status MergeLogicalBlock(uint64_t lbk, FtlCost* cost);

  /// Finds the ring segment with serial `serial`, or nullptr.
  LogSegment* SegmentBySerial(uint32_t serial);

  std::unique_ptr<FlashArray> array_;
  FastConfig config_;

  uint64_t n_logical_blocks_;
  uint64_t logical_pages_;

  std::vector<uint64_t> map_;      // lbk -> physical data block
  std::vector<uint64_t> written_;  // bitmap over logical pages
  std::vector<uint64_t> free_;

  std::deque<LogSegment> ring_;   // oldest at front
  uint32_t next_serial_ = 0;      // serial of the segment pushed next
  uint32_t front_serial_ = 0;     // serial of ring_.front()
  std::vector<Head> heads_;
  uint64_t head_lru_clock_ = 0;
  std::unordered_map<uint64_t, LogLoc> latest_;  // lpn -> latest log copy

  FtlStats stats_;

  std::vector<GlobalPage> scratch_pages_;
  std::vector<PageWrite> scratch_writes_;
  std::vector<uint64_t> scratch_tokens_;
};

}  // namespace uflip

#endif  // UFLIP_FTL_FAST_FTL_H_
