// The nine uFLIP micro-benchmarks (Section 3.2 / Table 1). Each
// micro-benchmark is a collection of experiments over the four baseline
// patterns (SR, RR, SW, RW) with a single varying parameter:
//   1. Granularity  (IOSize)        2. Alignment   (IOShift)
//   3. Locality     (TargetSize)    4. Partitioning(Partitions)
//   5. Order        (Incr)          6. Parallelism (ParallelDegree)
//   7. Mix          (Ratio)         8. Pause       (Pause)
//   9. Bursts       (Burst)
#ifndef UFLIP_CORE_MICROBENCH_H_
#define UFLIP_CORE_MICROBENCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/device/block_device.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/util/status.h"

namespace uflip {

/// One measured point of an experiment: the varying parameter's value
/// and the run executed at it.
struct ExperimentPoint {
  double param = 0;
  std::string param_label;
  RunResult run;
};

/// A collection of runs of the same reference pattern with one varying
/// parameter (Section 3.2, design principle 1).
struct Experiment {
  std::string name;        // e.g. "Granularity/SW"
  std::string param_name;  // e.g. "IOSize"
  std::vector<ExperimentPoint> points;

  /// mean response time (us) per point, running phase only.
  std::vector<double> MeanSeries() const;
  std::vector<double> ParamSeries() const;
};

/// Shared settings for building micro-benchmark experiments on a device.
struct MicroBenchConfig {
  /// Reference IO size (paper: 32KB after the Granularity results).
  uint32_t io_size = 32 * 1024;
  /// Per-run length and warm-up (Section 4.2; scaled internally where a
  /// micro-benchmark requires it).
  uint32_t io_count = 512;
  uint32_t io_ignore = 0;
  /// Target space used by read/random-write experiments.
  uint64_t target_offset = 0;
  uint64_t target_size = 64ULL << 20;
  uint64_t seed = 1;
  /// Which baselines to include (subset of {"SR","RR","SW","RW"}).
  std::vector<std::string> baselines = {"SR", "RR", "SW", "RW"};
};

/// The micro-benchmark identifiers, in the paper's order.
enum class MicroBench {
  kGranularity,
  kAlignment,
  kLocality,
  kPartitioning,
  kOrder,
  kParallelism,
  kMix,
  kPause,
  kBursts,
};

const char* MicroBenchName(MicroBench mb);

/// All nine, in order.
std::vector<MicroBench> AllMicroBenches();

/// Default parameter sweep for a micro-benchmark (Table 1 ranges).
/// Values are in the parameter's natural unit (bytes for IOSize/IOShift/
/// TargetSize, count for Partitions/ParallelDegree/Ratio/Burst, plain
/// coefficient for Incr, microseconds for Pause).
std::vector<int64_t> DefaultSweep(MicroBench mb, const MicroBenchConfig& cfg);

/// Builds and executes one micro-benchmark on a device: for each
/// baseline pattern it applies, one experiment sweeping the parameter.
/// Progress callback (may be null) is invoked before each run.
using ProgressFn =
    std::function<void(const std::string& experiment, double param)>;

[[nodiscard]] StatusOr<std::vector<Experiment>> RunMicroBench(
    BlockDevice* device, MicroBench mb, const MicroBenchConfig& cfg,
    ProgressFn progress = nullptr);

/// Lower-level helper: executes a prepared list of (param, spec) points
/// as one experiment.
[[nodiscard]] StatusOr<Experiment> RunSweep(
    BlockDevice* device, const std::string& name,
    const std::string& param_name,
    const std::vector<std::pair<double, PatternSpec>>& points,
    ProgressFn progress = nullptr);

}  // namespace uflip

#endif  // UFLIP_CORE_MICROBENCH_H_
