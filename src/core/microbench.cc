#include "src/core/microbench.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace uflip {

std::vector<double> Experiment::MeanSeries() const {
  std::vector<double> v;
  v.reserve(points.size());
  for (const auto& p : points) v.push_back(p.run.Stats().mean_us);
  return v;
}

std::vector<double> Experiment::ParamSeries() const {
  std::vector<double> v;
  v.reserve(points.size());
  for (const auto& p : points) v.push_back(p.param);
  return v;
}

const char* MicroBenchName(MicroBench mb) {
  switch (mb) {
    case MicroBench::kGranularity:
      return "Granularity";
    case MicroBench::kAlignment:
      return "Alignment";
    case MicroBench::kLocality:
      return "Locality";
    case MicroBench::kPartitioning:
      return "Partitioning";
    case MicroBench::kOrder:
      return "Order";
    case MicroBench::kParallelism:
      return "Parallelism";
    case MicroBench::kMix:
      return "Mix";
    case MicroBench::kPause:
      return "Pause";
    case MicroBench::kBursts:
      return "Bursts";
  }
  return "?";
}

std::vector<MicroBench> AllMicroBenches() {
  return {MicroBench::kGranularity, MicroBench::kAlignment,
          MicroBench::kLocality,    MicroBench::kPartitioning,
          MicroBench::kOrder,       MicroBench::kParallelism,
          MicroBench::kMix,         MicroBench::kPause,
          MicroBench::kBursts};
}

std::vector<int64_t> DefaultSweep(MicroBench mb, const MicroBenchConfig& cfg) {
  std::vector<int64_t> v;
  switch (mb) {
    case MicroBench::kGranularity:
      // [2^0 .. 2^9] x 512B plus some non-powers of two (Table 1).
      for (int k = 0; k <= 9; ++k) v.push_back(512LL << k);
      v.push_back(48 * 1024);
      v.push_back(96 * 1024);
      std::sort(v.begin(), v.end());
      break;
    case MicroBench::kAlignment:
      // [2^0 .. IOSize/512] x 512B.
      for (int64_t s = 512; s <= cfg.io_size; s *= 2) v.push_back(s);
      break;
    case MicroBench::kLocality:
      // Rnd: [2^0 .. 2^12] x IOSize (the paper goes to 2^16 on 32GB
      // devices; we stop at 128MB to stay within the simulated
      // capacity).
      for (int k = 0; k <= 12; ++k) {
        int64_t ts = static_cast<int64_t>(cfg.io_size) << k;
        if (static_cast<uint64_t>(ts) > cfg.target_size * 2) break;
        v.push_back(ts);
      }
      break;
    case MicroBench::kPartitioning:
      for (int k = 0; k <= 8; ++k) v.push_back(1LL << k);
      break;
    case MicroBench::kOrder:
      v = {-1, 0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
      break;
    case MicroBench::kParallelism:
      for (int k = 0; k <= 4; ++k) v.push_back(1LL << k);
      break;
    case MicroBench::kMix:
      for (int k = 0; k <= 6; ++k) v.push_back(1LL << k);
      break;
    case MicroBench::kPause:
      // [2^0 .. 2^8] x 0.1ms.
      for (int k = 0; k <= 8; ++k) v.push_back(100LL << k);
      break;
    case MicroBench::kBursts:
      // [2^0 .. 2^6] x 10 IOs per burst.
      for (int k = 0; k <= 6; ++k) v.push_back(10LL << k);
      break;
  }
  return v;
}

StatusOr<Experiment> RunSweep(
    BlockDevice* device, const std::string& name,
    const std::string& param_name,
    const std::vector<std::pair<double, PatternSpec>>& points,
    ProgressFn progress) {
  Experiment exp;
  exp.name = name;
  exp.param_name = param_name;
  for (const auto& [param, spec] : points) {
    if (progress) progress(name, param);
    StatusOr<RunResult> run = ExecuteRun(device, spec);
    if (!run.ok()) return run.status();
    ExperimentPoint pt;
    pt.param = param;
    pt.run = std::move(*run);
    exp.points.push_back(std::move(pt));
  }
  return exp;
}

namespace {

// Baseline spec over the config's target space.
StatusOr<PatternSpec> BaseSpec(const std::string& baseline,
                               const MicroBenchConfig& cfg) {
  StatusOr<PatternSpec> s = PatternSpec::Baseline(
      baseline, cfg.io_size, cfg.target_offset, cfg.target_size);
  if (!s.ok()) return s;
  s->io_count = cfg.io_count;
  s->io_ignore = cfg.io_ignore;
  s->seed = cfg.seed;
  return s;
}

using Points = std::vector<std::pair<double, PatternSpec>>;

StatusOr<std::vector<Experiment>> BuildAndRunSimple(
    BlockDevice* device, MicroBench mb, const MicroBenchConfig& cfg,
    ProgressFn progress) {
  std::vector<Experiment> out;
  std::vector<int64_t> sweep = DefaultSweep(mb, cfg);
  for (const std::string& baseline : cfg.baselines) {
    // Partitioning and Order are sequential-pattern variations only
    // (Table 1).
    bool sequential_only =
        mb == MicroBench::kPartitioning || mb == MicroBench::kOrder;
    if (sequential_only && (baseline == "RR" || baseline == "RW")) continue;

    Points points;
    for (int64_t value : sweep) {
      StatusOr<PatternSpec> base = BaseSpec(baseline, cfg);
      if (!base.ok()) return base.status();
      PatternSpec spec = *base;
      switch (mb) {
        case MicroBench::kGranularity:
          spec.io_size = static_cast<uint32_t>(value);
          break;
        case MicroBench::kAlignment:
          spec.io_shift = static_cast<uint64_t>(value);
          break;
        case MicroBench::kLocality:
          spec.target_size = static_cast<uint64_t>(value);
          // Seq locality stops at 2^8 x IOSize (Table 1).
          if ((baseline == "SR" || baseline == "SW") &&
              value > static_cast<int64_t>(cfg.io_size) * 256) {
            continue;
          }
          break;
        case MicroBench::kPartitioning:
          spec.lba = LbaFunction::kPartitioned;
          spec.partitions = static_cast<uint32_t>(value);
          if (spec.target_size / spec.partitions < spec.io_size) continue;
          break;
        case MicroBench::kOrder:
          spec.lba = LbaFunction::kOrdered;
          spec.incr = value;
          break;
        case MicroBench::kPause:
          spec.time = TimeFunction::kPause;
          spec.pause_us = static_cast<uint64_t>(value);
          break;
        case MicroBench::kBursts:
          spec.time = TimeFunction::kBurst;
          spec.pause_us = 100000;  // fixed 100ms (Section 3.2)
          spec.burst = static_cast<uint32_t>(value);
          break;
        default:
          return Status::Internal("not a simple micro-benchmark");
      }
      Status valid = spec.Validate();
      if (!valid.ok()) {
        // Sweeps probe parameter grids whose corners can be infeasible
        // (e.g. a shift past the target size); those points are skipped,
        // not errors.
        IgnoreStatus(valid, "infeasible sweep point skipped by design");
        continue;
      }
      spec.label = baseline;
      points.emplace_back(static_cast<double>(value), spec);
    }
    if (points.empty()) continue;
    StatusOr<Experiment> exp = RunSweep(
        device, std::string(MicroBenchName(mb)) + "/" + baseline,
        mb == MicroBench::kGranularity  ? "IOSize"
        : mb == MicroBench::kAlignment  ? "IOShift"
        : mb == MicroBench::kLocality   ? "TargetSize"
        : mb == MicroBench::kPartitioning ? "Partitions"
        : mb == MicroBench::kOrder      ? "Incr"
        : mb == MicroBench::kPause      ? "Pause(us)"
                                        : "Burst",
        points, progress);
    if (!exp.ok()) return exp.status();
    out.push_back(std::move(*exp));
  }
  return out;
}

StatusOr<std::vector<Experiment>> BuildAndRunParallelism(
    BlockDevice* device, const MicroBenchConfig& cfg, ProgressFn progress) {
  std::vector<Experiment> out;
  for (const std::string& baseline : cfg.baselines) {
    Experiment exp;
    exp.name = std::string("Parallelism/") + baseline;
    exp.param_name = "ParallelDegree";
    for (int64_t degree : DefaultSweep(MicroBench::kParallelism, cfg)) {
      StatusOr<PatternSpec> base = BaseSpec(baseline, cfg);
      if (!base.ok()) return base.status();
      if (progress) progress(exp.name, static_cast<double>(degree));
      StatusOr<RunResult> run = ExecuteParallelRun(
          device, *base, static_cast<uint32_t>(degree));
      if (!run.ok()) return run.status();
      ExperimentPoint pt;
      pt.param = static_cast<double>(degree);
      pt.run = std::move(*run);
      exp.points.push_back(std::move(pt));
    }
    out.push_back(std::move(exp));
  }
  return out;
}

StatusOr<std::vector<Experiment>> BuildAndRunMix(BlockDevice* device,
                                                 const MicroBenchConfig& cfg,
                                                 ProgressFn progress) {
  // The six combinations of two distinct baselines (Table 1).
  static const std::pair<const char*, const char*> kCombos[] = {
      {"SR", "RR"}, {"SR", "RW"}, {"SR", "SW"},
      {"RR", "SW"}, {"RR", "RW"}, {"SW", "RW"}};
  std::vector<Experiment> out;
  for (const auto& [first_name, second_name] : kCombos) {
    Experiment exp;
    exp.name = std::string("Mix/") + first_name + "+" + second_name;
    exp.param_name = "Ratio";
    for (int64_t ratio : DefaultSweep(MicroBench::kMix, cfg)) {
      StatusOr<PatternSpec> first = BaseSpec(first_name, cfg);
      if (!first.ok()) return first.status();
      StatusOr<PatternSpec> second = BaseSpec(second_name, cfg);
      if (!second.ok()) return second.status();
      // Disjoint halves of the target space so the two patterns do not
      // collide.
      uint64_t half = cfg.target_size / 2;
      second->target_offset = cfg.target_offset + half;
      first->target_size = half;
      second->target_size = half;
      // Scale: `second` contributes io_count/(ratio+1) IOs.
      second->io_count = std::max<uint32_t>(
          32, cfg.io_count / static_cast<uint32_t>(ratio + 1));
      second->io_ignore = cfg.io_ignore / static_cast<uint32_t>(ratio + 1);
      if (progress) progress(exp.name, static_cast<double>(ratio));
      StatusOr<RunResult> run = ExecuteMixRun(device, *first, *second,
                                              static_cast<uint32_t>(ratio));
      if (!run.ok()) return run.status();
      ExperimentPoint pt;
      pt.param = static_cast<double>(ratio);
      pt.run = std::move(*run);
      exp.points.push_back(std::move(pt));
    }
    out.push_back(std::move(exp));
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Experiment>> RunMicroBench(BlockDevice* device,
                                                MicroBench mb,
                                                const MicroBenchConfig& cfg,
                                                ProgressFn progress) {
  switch (mb) {
    case MicroBench::kParallelism:
      return BuildAndRunParallelism(device, cfg, progress);
    case MicroBench::kMix:
      return BuildAndRunMix(device, cfg, progress);
    default:
      return BuildAndRunSimple(device, mb, cfg, progress);
  }
}

}  // namespace uflip
