// Design-hint evaluation (Section 5.3): given a device's measured
// characteristics, check which of the paper's seven design hints the
// device supports, with the measured evidence.
//   1. Flash devices do incur latency (larger IOs are beneficial).
//   2. Block size should (currently) be 32KB.
//   3. Blocks should be aligned to flash pages.
//   4. Random writes should be limited to a focused area.
//   5. Sequential writes should be limited to a few partitions.
//   6. Combining a limited number of patterns is acceptable.
//   7. Neither concurrent nor delayed IOs improve the performance.
#ifndef UFLIP_CORE_HINTS_H_
#define UFLIP_CORE_HINTS_H_

#include <string>
#include <vector>

#include "src/core/microbench.h"
#include "src/core/table3.h"
#include "src/device/block_device.h"
#include "src/util/status.h"

namespace uflip {

struct HintFinding {
  int number = 0;
  std::string hint;
  bool holds = false;
  std::string evidence;
};

struct HintReport {
  std::string device;
  std::vector<HintFinding> findings;

  std::string Render() const;
};

/// Evaluates all seven hints on a device (runs the granularity,
/// alignment, mix, pause and parallelism probes it needs; the Table 3
/// row supplies the rest). The device must be in a well-defined state.
[[nodiscard]] StatusOr<HintReport> EvaluateHints(BlockDevice* device, const Table3Row& row,
                                   const MicroBenchConfig& cfg,
                                   ProgressFn progress = nullptr);

}  // namespace uflip

#endif  // UFLIP_CORE_HINTS_H_
