// Key-characteristics extraction (Table 3 of the paper): for one device,
// derive the succinct performance indicators the paper argues capture a
// flash device -- baseline costs at 32KB, the effect of pauses on random
// writes, the random-write locality area, the sequential-write partition
// limit, and the cost of reverse / in-place / large-increment ordered
// patterns.
#ifndef UFLIP_CORE_TABLE3_H_
#define UFLIP_CORE_TABLE3_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/microbench.h"
#include "src/device/block_device.h"
#include "src/util/status.h"

namespace uflip {

struct Table3Config {
  uint32_t io_size = 32 * 1024;
  uint32_t io_count = 384;
  /// Start-up IOs excluded from statistics (Section 4.2); covers the
  /// free-pool restoration of async-GC devices after the inter-run
  /// pause.
  uint32_t io_ignore = 96;
  /// Pause between component runs (Section 4.3).
  uint64_t inter_run_pause_us = 2000000;
  /// Target space for the whole-device-style random patterns
  /// (0 = the full device, as for the paper's baselines).
  uint64_t target_offset = 0;
  uint64_t target_size = 0;
  /// Locality sweep upper bound.
  uint64_t max_locality_target = 64ULL << 20;
  /// Pause used when probing the Pause effect (per-IO, us); the paper
  /// observes that a pause equal to the average RW cost suffices.
  uint64_t probe_pause_us = 0;  // 0 = auto (measured RW mean)
  /// "No significant degradation" factor for the partition limit.
  double partition_tolerance = 2.5;
  /// Locality area: largest TargetSize where RW <= locality_tolerance x
  /// the in-area cost floor.
  double locality_tolerance = 2.5;
  uint64_t seed = 7;
};

/// One row of Table 3.
struct Table3Row {
  std::string device;
  double sr_ms = 0, rr_ms = 0, sw_ms = 0, rw_ms = 0;
  /// RW cost with a sufficient pause inserted; <0 when pauses have no
  /// effect (printed as blank, as in the paper).
  double rw_pause_ms = -1;
  /// Largest area (MB) where random writes stay cheap; 0 = no benefit
  /// ("No" in the paper). factor = cost within the area relative to SW.
  double locality_mb = 0;
  double locality_factor = 0;
  /// Concurrent sequential-write partitions without significant
  /// degradation, and their cost relative to single-partition SW.
  uint32_t partitions = 0;
  double partition_factor = 0;
  /// Ordered-pattern costs relative to SW (reverse, in-place) and to RW
  /// (large increments).
  double reverse_factor = 0;
  double inplace_factor = 0;
  double large_incr_factor = 0;

  /// Formats a factor the way the paper does: "=" when within 25% of
  /// 1.0, else "xN".
  static std::string FormatFactor(double f);
};

/// Runs the component experiments and extracts the row. The device must
/// already be in a well-defined (random) state. Progress may be null.
[[nodiscard]] StatusOr<Table3Row> ExtractTable3Row(BlockDevice* device,
                                     const Table3Config& config,
                                     ProgressFn progress = nullptr);

/// Renders rows as the paper's result-summary table (fixed-width text).
std::string RenderTable3(const std::vector<Table3Row>& rows);

}  // namespace uflip

#endif  // UFLIP_CORE_TABLE3_H_
