#include "src/core/methodology.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace uflip {

// ---------------------------------------------------------------------
// State enforcement
// ---------------------------------------------------------------------

StatusOr<StateEnforcementReport> EnforceRandomState(
    BlockDevice* device, const StateEnforcementOptions& options) {
  if (options.min_io_bytes < 512 || options.max_io_bytes < options.min_io_bytes) {
    return Status::InvalidArgument("bad IO size range");
  }
  StateEnforcementReport report;
  Rng rng(options.seed);
  const uint64_t capacity = device->capacity_bytes();
  const uint64_t goal =
      static_cast<uint64_t>(options.coverage * static_cast<double>(capacity));
  uint64_t start = device->clock()->NowUs();
  while (report.bytes_written < goal) {
    // Random size in [min, max], 512B granularity; random 512B-aligned
    // location.
    uint64_t sectors =
        rng.UniformRange(options.min_io_bytes / 512, options.max_io_bytes / 512);
    uint32_t size = static_cast<uint32_t>(sectors * 512);
    uint64_t max_off = capacity - size;
    uint64_t offset = rng.UniformU64(max_off / 512 + 1) * 512;
    IoRequest req{offset, size, IoMode::kWrite};
    StatusOr<double> rt = device->Submit(req);
    if (!rt.ok()) return rt.status();
    ++report.ios;
    report.bytes_written += size;
  }
  report.duration_us =
      static_cast<double>(device->clock()->NowUs() - start);
  return report;
}

StatusOr<StateEnforcementReport> EnforceSequentialState(BlockDevice* device,
                                                        uint32_t io_bytes) {
  if (io_bytes == 0 || io_bytes % 512 != 0) {
    return Status::InvalidArgument("io_bytes must be a 512B multiple");
  }
  StateEnforcementReport report;
  const uint64_t capacity = device->capacity_bytes();
  uint64_t start = device->clock()->NowUs();
  for (uint64_t off = 0; off + io_bytes <= capacity; off += io_bytes) {
    IoRequest req{off, io_bytes, IoMode::kWrite};
    StatusOr<double> rt = device->Submit(req);
    if (!rt.ok()) return rt.status();
    ++report.ios;
    report.bytes_written += io_bytes;
  }
  report.duration_us =
      static_cast<double>(device->clock()->NowUs() - start);
  return report;
}

// ---------------------------------------------------------------------
// Phase analysis: moved to src/run/phases.cc.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Pause calibration
// ---------------------------------------------------------------------

StatusOr<PauseCalibration> CalibratePause(
    BlockDevice* device, const PauseCalibrationOptions& options) {
  PauseCalibration out;
  auto run_batch = [&](const PatternSpec& spec) -> Status {
    StatusOr<RunResult> r = ExecuteRun(device, spec);
    if (!r.ok()) return r.status();
    for (const IoSample& s : r->samples) out.trace_rt_us.push_back(s.rt_us);
    return Status::Ok();
  };

  PatternSpec sr = PatternSpec::SequentialRead(
      options.io_size, options.target_offset, options.target_size);
  sr.io_count = options.sr_ios;
  sr.seed = options.seed;
  PatternSpec rw = PatternSpec::RandomWrite(
      options.io_size, options.target_offset, options.target_size);
  rw.io_count = options.rw_ios;
  rw.seed = options.seed + 1;

  UFLIP_RETURN_IF_ERROR(run_batch(sr));
  out.sr1_count = options.sr_ios;
  UFLIP_RETURN_IF_ERROR(run_batch(rw));
  out.rw_count = options.rw_ios;
  // Second SR batch, measured from a fresh generator (same pattern).
  uint64_t sr2_clock_start = device->clock()->NowUs();
  UFLIP_RETURN_IF_ERROR(run_batch(sr));
  (void)sr2_clock_start;

  // Baseline read latency: median of the first SR batch.
  std::vector<double> base(out.trace_rt_us.begin(),
                           out.trace_rt_us.begin() + out.sr1_count);
  std::nth_element(base.begin(), base.begin() + base.size() / 2, base.end());
  double med = base[base.size() / 2];
  double threshold = 1.5 * med;

  // Count affected reads in the second SR batch: last index above the
  // threshold (the paper counts "the number of sequential reads ...
  // which are affected").
  size_t sr2_begin = out.sr1_count + out.rw_count;
  size_t last_slow = 0;
  bool any = false;
  double lingering_us = 0;
  for (size_t i = sr2_begin; i < out.trace_rt_us.size(); ++i) {
    if (out.trace_rt_us[i] > threshold) {
      last_slow = i - sr2_begin + 1;
      any = true;
    }
  }
  if (any) {
    out.affected_reads = static_cast<uint32_t>(last_slow);
    for (size_t i = sr2_begin; i < sr2_begin + last_slow; ++i) {
      lingering_us += out.trace_rt_us[i];
    }
  }
  out.lingering_us = lingering_us;
  // "We propose to significantly overestimate the length of the pause":
  // 2x the lingering effect, and at least 1 second (the conservative
  // floor used in Section 5.1).
  out.recommended_pause_us = std::max<uint64_t>(
      static_cast<uint64_t>(2.0 * lingering_us), 1000000ULL);
  return out;
}

// ---------------------------------------------------------------------
// Target allocation & benchmark plan
// ---------------------------------------------------------------------

StatusOr<uint64_t> TargetSpaceAllocator::Allocate(uint64_t size,
                                                  uint64_t align) {
  uint64_t off = (next_ + align - 1) / align * align;
  if (off + size > capacity_) {
    return Status::NotFound("target space exhausted");
  }
  next_ = off + size;
  return off;
}

BenchmarkPlan::BenchmarkPlan(uint64_t device_capacity,
                             uint64_t inter_run_pause_us)
    : capacity_(device_capacity), pause_us_(inter_run_pause_us) {}

void BenchmarkPlan::AddRun(const PatternSpec& spec) { runs_.push_back(spec); }

bool BenchmarkPlan::DisturbsState(const PatternSpec& spec) {
  // Only (large) sequential writes disturb the random state
  // significantly (Section 4.1); partitioned/ordered writes are
  // sequential-write variants.
  return spec.mode == IoMode::kWrite && spec.lba != LbaFunction::kRandom;
}

StatusOr<std::vector<PlanStep>> BenchmarkPlan::Build() {
  std::vector<PlanStep> steps;
  state_resets_ = 0;

  PlanStep enforce;
  enforce.kind = PlanStep::Kind::kEnforceState;
  steps.push_back(enforce);

  // Non-disturbing runs first, then the grouped sequential-write runs
  // with disjoint target spaces.
  std::vector<PatternSpec> benign, disturbing;
  for (const auto& r : runs_) {
    (DisturbsState(r) ? disturbing : benign).push_back(r);
  }
  auto push_run = [&steps, this](const PatternSpec& spec) {
    if (!steps.empty() && steps.back().kind == PlanStep::Kind::kRun) {
      PlanStep pause;
      pause.kind = PlanStep::Kind::kPause;
      pause.pause_us = pause_us_;
      steps.push_back(pause);
    }
    PlanStep run;
    run.kind = PlanStep::Kind::kRun;
    run.spec = spec;
    steps.push_back(run);
  };
  for (const auto& r : benign) push_run(r);

  TargetSpaceAllocator alloc(capacity_);
  for (auto r : disturbing) {
    uint64_t need = r.target_size + r.io_shift;
    StatusOr<uint64_t> off = alloc.Allocate(need);
    if (!off.ok()) {
      // Device exhausted: reset state, rewind the allocator.
      PlanStep reset;
      reset.kind = PlanStep::Kind::kEnforceState;
      steps.push_back(reset);
      ++state_resets_;
      alloc.Rewind();
      off = alloc.Allocate(need);
      if (!off.ok()) {
        return Status::InvalidArgument(
            "target space larger than the device: " + r.ToString());
      }
    }
    r.target_offset = *off;
    push_run(r);
  }
  return steps;
}

}  // namespace uflip
