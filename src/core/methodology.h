// Benchmarking methodology (Section 4):
//  * Device state enforcement (4.1): a well-defined initial state is
//    obtained by writing the whole device with random IOs of random size
//    (0.5KB up to the flash block size). A sequential enforcement is
//    also provided for the comparison experiment of Section 5.1.
//  * Start-up and running phases (4.2): a two-phase model of response
//    time; PhaseDetector derives start-up length, oscillation period and
//    variability from a long baseline run, from which IOIgnore and
//    IOCount are chosen.
//  * No interference (4.3): PauseCalibrator measures the lingering
//    effect of random writes on subsequent reads (SR ; RW ; SR) and
//    recommends an inter-run pause; TargetSpaceAllocator hands
//    sequential-write experiments disjoint target spaces so that state
//    resets are only needed when the device is exhausted; BenchmarkPlan
//    sequences experiments accordingly.
#ifndef UFLIP_CORE_METHODOLOGY_H_
#define UFLIP_CORE_METHODOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/device/block_device.h"
#include "src/pattern/pattern.h"
#include "src/run/phases.h"
#include "src/run/runner.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace uflip {

// ---------------------------------------------------------------------
// Device state enforcement (Section 4.1)
// ---------------------------------------------------------------------

struct StateEnforcementOptions {
  /// Minimum / maximum random IO size (paper: 0.5KB to the flash block
  /// size, 128KB).
  uint32_t min_io_bytes = 512;
  uint32_t max_io_bytes = 128 * 1024;
  /// Stop after writing coverage * capacity bytes (1.0 = full device,
  /// as the methodology prescribes).
  double coverage = 1.0;
  uint64_t seed = 0xF1A5;
};

struct StateEnforcementReport {
  uint64_t ios = 0;
  uint64_t bytes_written = 0;
  /// Virtual (simulated) or wall time the enforcement took.
  double duration_us = 0;
};

/// Random-state enforcement: random writes of random size over the whole
/// device.
[[nodiscard]] StatusOr<StateEnforcementReport> EnforceRandomState(
    BlockDevice* device, const StateEnforcementOptions& options = {});

/// Sequential-state enforcement: one sequential rewrite of the device
/// with fixed-size IOs (faster but less stable, Section 4.1).
[[nodiscard]] StatusOr<StateEnforcementReport> EnforceSequentialState(
    BlockDevice* device, uint32_t io_bytes = 128 * 1024);

// ---------------------------------------------------------------------
// Start-up and running phases (Section 4.2)
// ---------------------------------------------------------------------
// PhaseAnalysis / AnalyzePhases / RunLengths / SuggestRunLengths moved
// to src/run/phases.h (included above) so trace replay can auto-derive
// io_ignore without the run layer depending on this one.

// ---------------------------------------------------------------------
// Inter-run pause (Section 4.3, Figure 5)
// ---------------------------------------------------------------------

struct PauseCalibration {
  /// Sequential reads affected by the preceding random writes.
  uint32_t affected_reads = 0;
  /// Duration of the lingering effect (us).
  double lingering_us = 0;
  /// Recommended (overestimated) pause between runs (us).
  uint64_t recommended_pause_us = 0;
  /// The three-batch trace (SR ; RW ; SR), for Figure 5.
  std::vector<double> trace_rt_us;
  uint32_t sr1_count = 0;
  uint32_t rw_count = 0;
};

struct PauseCalibrationOptions {
  uint32_t io_size = 32 * 1024;
  uint32_t sr_ios = 3000;
  uint32_t rw_ios = 2000;
  uint64_t target_offset = 0;
  uint64_t target_size = 64ULL << 20;
  uint64_t seed = 99;
};

/// Runs SR ; RW ; SR and measures how long the random writes keep
/// affecting the reads.
[[nodiscard]] StatusOr<PauseCalibration> CalibratePause(
    BlockDevice* device, const PauseCalibrationOptions& options = {});

// ---------------------------------------------------------------------
// Benchmark plans (Sections 4.2-4.3)
// ---------------------------------------------------------------------

/// Hands out disjoint, IOSize-aligned target spaces; sequential-write
/// experiments must not overlap previously written targets (random
/// state is only disturbed by sequential writes).
class TargetSpaceAllocator {
 public:
  TargetSpaceAllocator(uint64_t capacity_bytes, uint64_t start_offset = 0)
      : capacity_(capacity_bytes), next_(start_offset) {}

  /// Allocates `size` bytes aligned to `align`; NotFound when the device
  /// is exhausted (caller must reset state and Rewind()).
  [[nodiscard]] StatusOr<uint64_t> Allocate(uint64_t size, uint64_t align = 1 << 20);

  void Rewind(uint64_t start_offset = 0) { next_ = start_offset; }
  uint64_t remaining() const { return capacity_ > next_ ? capacity_ - next_ : 0; }

 private:
  uint64_t capacity_;
  uint64_t next_;
};

/// One step of a benchmark plan.
struct PlanStep {
  enum class Kind { kEnforceState, kPause, kRun };
  Kind kind = Kind::kRun;
  PatternSpec spec;     // kRun
  uint64_t pause_us = 0;  // kPause
};

/// Builds an execution plan for a set of runs: sequential-write runs are
/// delayed and grouped so their target spaces do not overlap; a state
/// reset is inserted (only) when the accumulated sequential-write target
/// space exceeds the device; the calibrated pause separates consecutive
/// runs.
class BenchmarkPlan {
 public:
  BenchmarkPlan(uint64_t device_capacity, uint64_t inter_run_pause_us);

  /// Queues a run.
  void AddRun(const PatternSpec& spec);

  /// Produces the ordered steps (including the initial state
  /// enforcement). Sequential-write runs receive adjusted
  /// target_offsets.
  [[nodiscard]] StatusOr<std::vector<PlanStep>> Build();

  /// Number of state resets the plan needs (0 for big-enough devices,
  /// matching the paper's "for large flash devices the state is in fact
  /// never reset").
  uint32_t state_resets() const { return state_resets_; }

 private:
  static bool DisturbsState(const PatternSpec& spec);

  uint64_t capacity_;
  uint64_t pause_us_;
  std::vector<PatternSpec> runs_;
  uint32_t state_resets_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_CORE_METHODOLOGY_H_
