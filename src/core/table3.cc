#include "src/core/table3.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace uflip {

namespace {

/// Mean response time (running phase) of one pattern run, in ms.
StatusOr<double> MeanMs(BlockDevice* device, const PatternSpec& spec) {
  StatusOr<RunResult> run = ExecuteRun(device, spec);
  if (!run.ok()) return run.status();
  return run->Stats().mean_us / 1000.0;
}

}  // namespace

std::string Table3Row::FormatFactor(double f) {
  if (f <= 0) return "-";
  if (f >= 0.8 && f <= 1.25) return "=";
  char buf[32];
  if (f < 1) {
    std::snprintf(buf, sizeof(buf), "x%.1f", f);
  } else if (f < 10) {
    std::snprintf(buf, sizeof(buf), "x%.1f", f);
  } else {
    std::snprintf(buf, sizeof(buf), "x%.0f", f);
  }
  return buf;
}

StatusOr<Table3Row> ExtractTable3Row(BlockDevice* device,
                                     const Table3Config& cfg_in,
                                     ProgressFn progress) {
  Table3Row row;
  row.device = device->name();
  Table3Config cfg = cfg_in;
  if (cfg.target_size == 0) {
    cfg.target_size = device->capacity_bytes() - cfg.target_offset;
  }
  if (cfg.max_locality_target > cfg.target_size / 2) {
    cfg.max_locality_target = cfg.target_size / 2;
  }
  auto note = [&](const std::string& what, double p = 0) {
    if (progress) progress(what, p);
  };
  // Inter-run pause (Section 4.3): let asynchronous reclamation drain
  // between component runs.
  auto pause = [&] { device->clock()->SleepUs(cfg.inter_run_pause_us); };
  // No-interference drain (Section 4.3): before a group of write probes,
  // cycle hybrid log regions with unmeasured sequential writes so junk
  // left by preceding random-write probes does not pollute them.
  auto drain = [&]() -> Status {
    PatternSpec s = PatternSpec::SequentialWrite(
        cfg.io_size, cfg.target_offset + cfg.target_size / 2,
        cfg.target_size / 2);
    s.io_count = 768;
    s.seed = cfg.seed + 41;
    StatusOr<RunResult> r = ExecuteRun(device, s);
    if (!r.ok()) return r.status();
    device->clock()->SleepUs(cfg.inter_run_pause_us);
    return Status::Ok();
  };

  // --- Basic patterns (SR, RR, SW, RW at the reference IO size) ---
  auto base = [&](const std::string& name) {
    PatternSpec s = *PatternSpec::Baseline(name, cfg.io_size,
                                           cfg.target_offset,
                                           cfg.target_size);
    s.io_count = cfg.io_count;
    s.io_ignore = cfg.io_ignore;
    s.seed = cfg.seed;
    return s;
  };
  pause();
    note("baseline/SR");
  StatusOr<double> v = MeanMs(device, base("SR"));
  if (!v.ok()) return v.status();
  row.sr_ms = *v;
  pause();
    note("baseline/RR");
  v = MeanMs(device, base("RR"));
  if (!v.ok()) return v.status();
  row.rr_ms = *v;
  pause();
    note("baseline/SW");
  v = MeanMs(device, base("SW"));
  if (!v.ok()) return v.status();
  row.sw_ms = *v;
  pause();
    note("baseline/RW");
  v = MeanMs(device, base("RW"));
  if (!v.ok()) return v.status();
  row.rw_ms = *v;

  // --- Pause effect on RW (Table 3 col 5) ---
  // The paper reports the pause length at which random writes start
  // behaving like sequential writes -- and observes that it is
  // "precisely the time required on average for a random write". We
  // probe pauses of RW/2 and RW and report the smallest that absorbs
  // the GC cost (blank when pauses have no effect).
  {
    row.rw_pause_ms = -1.0;
    for (double frac : {0.5, 1.0}) {
      PatternSpec s = base("RW");
      s.time = TimeFunction::kPause;
      s.pause_us = cfg.probe_pause_us != 0
                       ? cfg.probe_pause_us
                       : static_cast<uint64_t>(frac * row.rw_ms * 1000.0);
      if (s.pause_us == 0) break;
      pause();
      note("pause/RW", static_cast<double>(s.pause_us));
      v = MeanMs(device, s);
      if (!v.ok()) return v.status();
      if (*v < 0.5 * row.rw_ms && *v < 4.0 * row.sw_ms) {
        row.rw_pause_ms = static_cast<double>(s.pause_us) / 1000.0;
        break;
      }
    }
  }

  // --- Locality (Table 3 col 6): largest area where RW stays cheap ---
  {
    UFLIP_RETURN_IF_ERROR(drain());
    double floor_ms = 0;
    double best_mb = 0;
    for (uint64_t ts = cfg.io_size * 4ULL; ts <= cfg.max_locality_target;
         ts *= 2) {
      PatternSpec s = PatternSpec::RandomWrite(cfg.io_size, cfg.target_offset,
                                               ts);
      s.io_count = cfg.io_count;
      s.io_ignore = cfg.io_ignore;
      s.seed = cfg.seed + 13;
      pause();
    note("locality/RW", static_cast<double>(ts));
      v = MeanMs(device, s);
      if (!v.ok()) return v.status();
      if (ts == cfg.io_size * 4ULL) floor_ms = std::max(*v, row.sw_ms);
      // The paper's "locality area": random writes within it are far
      // cheaper than whole-device random writes (their relative cost to
      // SW -- the reported factor -- can still be substantial, e.g. x20
      // for the Kingston DTHX).
      if (*v <= 0.3 * row.rw_ms) {
        best_mb = static_cast<double>(ts) / static_cast<double>(kMiB);
        row.locality_factor = *v / row.sw_ms;
      }
    }
    // "No benefit" when even small areas cost like whole-device RW.
    if (floor_ms > 0.3 * row.rw_ms) {
      row.locality_mb = 0;
      row.locality_factor = 0;
    } else {
      row.locality_mb = best_mb;
    }
  }

  // --- Partitioning (Table 3 col 7) ---
  {
    UFLIP_RETURN_IF_ERROR(drain());
    double single_ms = 0;
    for (uint32_t parts = 1; parts <= 256; parts *= 2) {
      PatternSpec s = PatternSpec::SequentialWrite(
          cfg.io_size, cfg.target_offset, cfg.target_size / 2);
      s.lba = LbaFunction::kPartitioned;
      s.partitions = parts;
      s.io_count = cfg.io_count;
      s.io_ignore = cfg.io_ignore;
      s.seed = cfg.seed + 17;
      if (s.target_size / parts < s.io_size) break;
      pause();
    note("partitioning/SW", parts);
      v = MeanMs(device, s);
      if (!v.ok()) return v.status();
      if (parts == 1) {
        single_ms = *v;
        row.partitions = 1;
        row.partition_factor = 1.0;
        continue;
      }
      if (*v <= cfg.partition_tolerance * single_ms &&
          *v < 0.34 * row.rw_ms) {
        row.partitions = parts;
        row.partition_factor = *v / single_ms;
      } else {
        break;
      }
    }
  }

  // --- Order (Table 3 cols 8-10) ---
  {
    UFLIP_RETURN_IF_ERROR(drain());
    auto ordered = [&](int64_t incr) {
      PatternSpec s = PatternSpec::SequentialWrite(
          cfg.io_size, cfg.target_offset, cfg.target_size / 2);
      s.lba = LbaFunction::kOrdered;
      s.incr = incr;
      s.io_count = cfg.io_count;
      s.io_ignore = cfg.io_ignore;
      s.seed = cfg.seed + 23;
      return s;
    };
    pause();
    note("order/reverse");
    v = MeanMs(device, ordered(-1));
    if (!v.ok()) return v.status();
    row.reverse_factor = *v / row.sw_ms;
    pause();
    note("order/in-place");
    {
      PatternSpec s = ordered(0);
      // In-place rewrites a single location; target can be minimal.
      s.target_size = cfg.io_size * 4ULL;
      v = MeanMs(device, s);
      if (!v.ok()) return v.status();
      row.inplace_factor = *v / row.sw_ms;
    }
    // Large increments (gaps 1MB..8MB): mean over Incr = 32, 128, 256
    // at 32KB IOs, relative to RW.
    double sum = 0;
    int n = 0;
    for (int64_t incr : {32, 128, 256}) {
      uint64_t gap = static_cast<uint64_t>(incr) * cfg.io_size;
      if (gap * 4 > cfg.target_size) continue;
      pause();
    note("order/large-incr", static_cast<double>(incr));
      v = MeanMs(device, ordered(incr));
      if (!v.ok()) return v.status();
      sum += *v;
      ++n;
    }
    row.large_incr_factor = n > 0 ? (sum / n) / row.rw_ms : 0;
  }
  return row;
}

std::string RenderTable3(const std::vector<Table3Row>& rows) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-18s %6s %6s %6s %8s %8s %12s %14s %9s %9s %7s\n",
                "Device", "SR(ms)", "RR(ms)", "SW(ms)", "RW(ms)",
                "Pause-RW", "Locality", "Partitioning", "Reverse",
                "In-Place", "LgIncr");
  out += line;
  out += std::string(110, '-') + "\n";
  for (const auto& r : rows) {
    char pause_buf[16];
    if (r.rw_pause_ms >= 0) {
      std::snprintf(pause_buf, sizeof(pause_buf), "%.1f", r.rw_pause_ms);
    } else {
      std::snprintf(pause_buf, sizeof(pause_buf), " ");
    }
    char loc_buf[32];
    if (r.locality_mb > 0) {
      std::snprintf(loc_buf, sizeof(loc_buf), "%.0fMB (%s)", r.locality_mb,
                    Table3Row::FormatFactor(r.locality_factor).c_str());
    } else {
      std::snprintf(loc_buf, sizeof(loc_buf), "No");
    }
    char part_buf[32];
    std::snprintf(part_buf, sizeof(part_buf), "%u (%s)", r.partitions,
                  Table3Row::FormatFactor(r.partition_factor).c_str());
    std::snprintf(line, sizeof(line),
                  "%-18s %6.1f %6.1f %6.1f %8.1f %8s %12s %14s %9s %9s %7s\n",
                  r.device.c_str(), r.sr_ms, r.rr_ms, r.sw_ms, r.rw_ms,
                  pause_buf, loc_buf, part_buf,
                  Table3Row::FormatFactor(r.reverse_factor).c_str(),
                  Table3Row::FormatFactor(r.inplace_factor).c_str(),
                  Table3Row::FormatFactor(r.large_incr_factor).c_str());
    out += line;
  }
  return out;
}

}  // namespace uflip
