#include "src/core/hints.h"

#include <cmath>
#include <cstdio>

namespace uflip {

namespace {

StatusOr<double> MeanMsOf(BlockDevice* device, PatternSpec spec) {
  StatusOr<RunResult> run = ExecuteRun(device, spec);
  if (!run.ok()) return run.status();
  return run->Stats().mean_us / 1000.0;
}

std::string Fmt(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

StatusOr<HintReport> EvaluateHints(BlockDevice* device, const Table3Row& row,
                                   const MicroBenchConfig& cfg,
                                   ProgressFn progress) {
  HintReport report;
  report.device = device->name();
  auto note = [&](const std::string& w) {
    if (progress) progress(w, 0);
  };

  // Hint 1: latency exists -> per-byte cost falls with IO size.
  {
    note("hint1/granularity");
    PatternSpec small = PatternSpec::SequentialRead(4096, cfg.target_offset,
                                                    cfg.target_size);
    small.io_count = cfg.io_count;
    PatternSpec large = PatternSpec::SequentialRead(
        128 * 1024, cfg.target_offset, cfg.target_size);
    large.io_count = cfg.io_count;
    StatusOr<double> ms_small = MeanMsOf(device, small);
    if (!ms_small.ok()) return ms_small.status();
    StatusOr<double> ms_large = MeanMsOf(device, large);
    if (!ms_large.ok()) return ms_large.status();
    double per_kb_small = *ms_small / 4.0;
    double per_kb_large = *ms_large / 128.0;
    report.findings.push_back(HintFinding{
        1, "Flash devices do incur latency; larger IOs are beneficial",
        per_kb_large < 0.75 * per_kb_small,
        Fmt("SR cost/KB: %.4fms @4KB vs %.4fms @128KB", per_kb_small,
            per_kb_large)});
  }

  // Hint 2: 32KB block size is a good read/write trade-off: writes gain
  // clearly up to 32KB and little beyond; reads stay acceptable.
  {
    note("hint2/blocksize");
    auto sw_at = [&](uint32_t io) {
      PatternSpec s = PatternSpec::SequentialWrite(io, cfg.target_offset,
                                                   cfg.target_size);
      s.io_count = cfg.io_count;
      return MeanMsOf(device, s);
    };
    StatusOr<double> w8 = sw_at(8 * 1024);
    if (!w8.ok()) return w8.status();
    StatusOr<double> w32 = sw_at(32 * 1024);
    if (!w32.ok()) return w32.status();
    double per_kb_8 = *w8 / 8.0, per_kb_32 = *w32 / 32.0;
    report.findings.push_back(HintFinding{
        2, "Block size should (currently) be 32KB",
        per_kb_32 < per_kb_8,
        Fmt("SW cost/KB: %.4fms @8KB vs %.4fms @32KB", per_kb_8, per_kb_32)});
  }

  // Hint 3: alignment matters for writes.
  {
    note("hint3/alignment");
    PatternSpec aligned = PatternSpec::RandomWrite(
        cfg.io_size, cfg.target_offset, cfg.target_size);
    aligned.io_count = cfg.io_count;
    PatternSpec shifted = aligned;
    shifted.io_shift = 512;
    StatusOr<double> a = MeanMsOf(device, aligned);
    if (!a.ok()) return a.status();
    StatusOr<double> s = MeanMsOf(device, shifted);
    if (!s.ok()) return s.status();
    report.findings.push_back(HintFinding{
        3, "Blocks should be aligned to flash pages", *s > 1.1 * *a,
        Fmt("RW: %.2fms aligned vs %.2fms shifted by 512B", *a, *s)});
  }

  // Hint 4: random writes should be focused (from the Table 3 row).
  report.findings.push_back(HintFinding{
      4, "Random writes should be limited to a focused area",
      row.locality_mb > 0,
      row.locality_mb > 0
          ? Fmt("RW within %.0fMB costs x%.1f of SW (vs whole-device RW)",
                row.locality_mb, row.locality_factor)
          : "no locality area found (random writes always expensive)"});

  // Hint 5: sequential writes limited to a few partitions.
  report.findings.push_back(HintFinding{
      5, "Sequential writes should be limited to a few partitions",
      row.partitions >= 2,
      Fmt("up to %.0f partitions at x%.1f of single-stream SW",
          static_cast<double>(row.partitions), row.partition_factor)});

  // Hint 6: mixing a limited number of patterns is acceptable: the mix
  // of SR and RR costs about the weighted sum of its parts.
  {
    note("hint6/mix");
    PatternSpec sr = PatternSpec::SequentialRead(cfg.io_size,
                                                 cfg.target_offset,
                                                 cfg.target_size / 2);
    sr.io_count = cfg.io_count;
    PatternSpec rr = PatternSpec::RandomRead(
        cfg.io_size, cfg.target_offset + cfg.target_size / 2,
        cfg.target_size / 2);
    rr.io_count = std::max<uint32_t>(32, cfg.io_count / 2);
    StatusOr<double> sr_ms = MeanMsOf(device, sr);
    if (!sr_ms.ok()) return sr_ms.status();
    StatusOr<double> rr_ms = MeanMsOf(device, rr);
    if (!rr_ms.ok()) return rr_ms.status();
    StatusOr<RunResult> mix = ExecuteMixRun(device, sr, rr, 1);
    if (!mix.ok()) return mix.status();
    double mix_ms = mix->Stats().mean_us / 1000.0;
    double expected = (*sr_ms + *rr_ms) / 2.0;
    report.findings.push_back(HintFinding{
        6, "Combining a limited number of patterns is acceptable",
        mix_ms < 1.3 * expected,
        Fmt("SR+RR 1:1 mix: %.2fms vs %.2fms weighted baseline", mix_ms,
            expected)});
  }

  // Hint 7: neither concurrent nor delayed IOs improve performance
  // (total workload time; pauses shift cost, they do not remove it).
  {
    note("hint7/parallel");
    PatternSpec sr = PatternSpec::SequentialRead(cfg.io_size,
                                                 cfg.target_offset,
                                                 cfg.target_size);
    sr.io_count = cfg.io_count;
    StatusOr<RunResult> serial = ExecuteRun(device, sr);
    if (!serial.ok()) return serial.status();
    StatusOr<RunResult> par = ExecuteParallelRun(device, sr, 4);
    if (!par.ok()) return par.status();
    double serial_total = serial->Stats().sum_us;
    // Parallel wall time: last completion - first submission.
    const auto& ps = par->samples;
    double par_wall = 0;
    if (!ps.empty()) {
      double end = 0;
      for (const auto& s : ps) {
        end = std::max(end, static_cast<double>(s.submit_us) + s.rt_us);
      }
      par_wall = end - static_cast<double>(ps.front().submit_us);
    }
    report.findings.push_back(HintFinding{
        7, "Neither concurrent nor delayed IOs improve the performance",
        par_wall >= 0.9 * serial_total,
        Fmt("SR total: serial %.0fms vs 4-way parallel %.0fms wall",
            serial_total / 1000.0, par_wall / 1000.0)});
  }
  return report;
}

std::string HintReport::Render() const {
  std::string out = "Design hints for " + device + ":\n";
  for (const auto& f : findings) {
    char buf[320];
    std::snprintf(buf, sizeof(buf), "  Hint %d: %-58s [%s]\n    %s\n",
                  f.number, f.hint.c_str(), f.holds ? "HOLDS" : "differs",
                  f.evidence.c_str());
    out += buf;
  }
  return out;
}

}  // namespace uflip
