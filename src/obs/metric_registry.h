// Simulator-wide metrics layer: a registry of named counters, gauges,
// sums, sketch-backed latency histograms and windowed time series,
// designed around two constraints:
//
//  * Zero overhead when disabled. Instrumented code resolves handles
//    (Counter*, Sum*, ...) once at attach time and records through the
//    inline helpers below, which no-op on null -- a component that was
//    never attached to a registry pays one branch per record site and
//    allocates nothing. Components expose AttachMetrics(MetricRegistry*)
//    and are built unattached by default.
//
//  * Deterministic merging. A MetricSnapshot is the value type a
//    registry exports; snapshots merge pairwise (counters/sums add,
//    gauges max, histograms merge their t-digests, time series add
//    bucket-wise on the absolute timeline) and the merge is commutative
//    and associative by construction -- merge(a, b) and merge(b, a) are
//    snapshot-identical, which is what lets per-repetition and
//    per-worker registries pool into one report (the same property PR
//    5's quantile sketches give the response-time percentiles).
//
// Naming scheme (see README "Observability"): dot-separated paths,
// lower_snake leaf names, unit suffixes spelled out --
// "device.channel.0.busy_us", "ftl.flash.page_reads", "cache.read_hits".
#ifndef UFLIP_OBS_METRIC_REGISTRY_H_
#define UFLIP_OBS_METRIC_REGISTRY_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/time_series.h"
#include "src/stats/quantile_sketch.h"

namespace uflip {

class JsonWriter;

namespace obs {

/// Initial bucket width of the utilization timelines (per-channel busy
/// fraction, controller occupancy, queue depth). A power of two so that
/// every coalesced resolution stays in one merge lineage across series
/// of different ages.
inline constexpr uint64_t kTimelineIntervalUs = 1024;

/// Monotone event count. Merge: sum.
struct Counter {
  uint64_t value = 0;
};

/// Accumulated quantity (microseconds, bytes). Merge: sum.
struct Sum {
  double value = 0;
};

/// High-water mark. Merge: max (commutative; `set` distinguishes an
/// untouched gauge from a recorded 0).
struct Gauge {
  double value = 0;
  bool set = false;
};

/// Latency histogram. The hot path records into a fixed array of
/// logarithmic buckets -- a handful of integer ops on ~5KB of
/// L1-resident state, no sorting, no amortized compaction spikes
/// (TDigest::Add's periodic flush passes over tens of KB were measured
/// evicting the simulator's working set; see bench/obs_overhead).
/// Snapshotting synthesizes the mergeable t-digest from the buckets
/// (Histogram::ToDigest), so exported histograms keep PR 5's
/// deterministic merge algebra; the exact count/min/max are carried
/// into the digest, and every other recorded value is represented by
/// its bucket midpoint, within ~±2.2% relative value error.
struct Histogram {
  /// log2(sub-buckets per octave): 16 sub-buckets per power of two, so
  /// consecutive bucket boundaries are a ratio 2^(1/16) ~ 1.044 apart.
  static constexpr int kSubBits = 4;
  /// Bucketed magnitude range [2^kMinExp, 2^kMaxExp): ~1e-3 to ~1.7e10,
  /// i.e. sub-nanosecond to multi-hour in microsecond units. Values
  /// outside (including zero and negatives) clamp into the end buckets;
  /// their exact magnitude still reaches min/max.
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 34;
  static constexpr int kBuckets = (kMaxExp - kMinExp) << kSubBits;

  uint64_t count = 0;
  double min = 0;
  double max = 0;
  uint64_t bucket[kBuckets] = {};

  void Record(double v) {
    if (v != v) return;  // NaN: ignore, matching TDigest::Add
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    // Bucket index straight from the double's bit pattern: biased
    // exponent selects the octave, the top kSubBits mantissa bits the
    // sub-bucket. No log, no branch misses on the common path.
    int idx = 0;
    if (v > 0) {
      uint64_t bits = std::bit_cast<uint64_t>(v);
      int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
      int sub =
          static_cast<int>(bits >> (52 - kSubBits)) & ((1 << kSubBits) - 1);
      idx = ((e - kMinExp) << kSubBits) | sub;
      if (idx < 0) {
        idx = 0;
      } else if (idx >= kBuckets) {
        idx = kBuckets - 1;
      }
    }
    ++bucket[idx];
  }

  /// The representative value (geometric midpoint) of bucket `idx`.
  static double BucketValue(int idx);

  /// The buckets as a mergeable t-digest: occupied buckets become
  /// weighted centroids at their representatives (clamped into
  /// [min, max]), with one sample re-attributed to each exact extreme
  /// so Quantile(0)/Quantile(1) stay exact.
  TDigest ToDigest() const;
};

/// Record-site helpers: no-ops on null, so un-attached components pay
/// one branch and nothing else.
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->value += n;
}
inline void Add(Sum* s, double v) {
  if (s != nullptr) s->value += v;
}
inline void SetMax(Gauge* g, double v) {
  if (g != nullptr) {
    if (!g->set || v > g->value) g->value = v;
    g->set = true;
  }
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Record(v);
}
inline void Sample(TimeSeries* t, uint64_t t_us, double v) {
  if (t != nullptr) t->Add(t_us, v);
}
inline void Span(TimeSeries* t, uint64_t start_us, uint64_t end_us,
                 double weight = 1.0) {
  if (t != nullptr) t->AddInterval(start_us, end_us, weight);
}

}  // namespace obs

enum class MetricKind { kCounter, kSum, kGauge, kHistogram, kTimeSeries };

const char* MetricKindName(MetricKind kind);

/// One exported metric. Histograms and time series are held by
/// shared_ptr so snapshots copy cheaply; Merge clones before mutating.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;                      // kCounter
  double value = 0;                          // kSum / kGauge
  std::shared_ptr<const TDigest> hist;       // kHistogram
  std::shared_ptr<const TimeSeries> series;  // kTimeSeries
};

/// A registry's exported state: the mergeable value type carried in
/// RunResult and pooled across repetitions/workers. Entries are sorted
/// by name, so equality (and the golden-file JSON) is well defined.
class MetricSnapshot {
 public:
  bool empty() const { return values_.empty(); }
  const std::vector<MetricValue>& values() const { return values_; }
  const MetricValue* Find(const std::string& name) const;

  /// Convenience readers (0 when absent).
  uint64_t CounterValue(const std::string& name) const;
  double Value(const std::string& name) const;

  /// Deterministic pairwise merge (see file header). Entries present in
  /// only one operand carry over unchanged; same-name entries must
  /// share a kind.
  void Merge(const MetricSnapshot& other);

  /// The snapshot as one JSON object keyed by metric name.
  void AppendJson(JsonWriter* w) const;
  std::string ToJson(int indent = 2) const;

  /// Appends one entry; used by MetricRegistry::Snapshot (which feeds
  /// names in sorted order) and tests.
  void Add(MetricValue v);

 private:
  std::vector<MetricValue> values_;  // sorted by name
};

/// Owner of live metric objects. Handle pointers remain valid for the
/// registry's lifetime (entries live in a std::map, so insertion never
/// moves them). Re-getting a name returns the same object; a name is
/// pinned to the kind it was first created with.
class MetricRegistry {
 public:
  obs::Counter* GetCounter(const std::string& name);
  obs::Sum* GetSum(const std::string& name);
  obs::Gauge* GetGauge(const std::string& name);
  obs::Histogram* GetHistogram(const std::string& name);
  TimeSeries* GetTimeSeries(const std::string& name, uint64_t interval_us,
                            size_t max_buckets = TimeSeries::kDefaultMaxBuckets);

  /// Registers a pull-based refresher run at every Snapshot() --
  /// components with their own lifetime counters (FtlStats,
  /// WriteCacheStats) register one that copies the current values into
  /// registry counters instead of double-counting on the hot path.
  void AddCollector(std::function<void()> fn);

  /// Runs collectors, then exports every metric (sorted by name).
  MetricSnapshot Snapshot();

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    obs::Counter counter;
    obs::Sum sum;
    obs::Gauge gauge;
    std::unique_ptr<obs::Histogram> hist;
    std::unique_ptr<TimeSeries> series;
  };

  Entry* GetEntry(const std::string& name, MetricKind kind);

  std::map<std::string, Entry> entries_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace uflip

#endif  // UFLIP_OBS_METRIC_REGISTRY_H_
