// IoSpan: the resolved per-IO span chain of the discrete-event device
// model (src/sim/device_timeline.h), in simulated microseconds only --
// no wall-clock field exists on purpose (the determinism linter bans
// wall-clock reads in src/, and spans must be byte-identical across
// --jobs and --calendar_shards).
//
// This header is deliberately dependency-free (cstdint only) so the
// sim layer can hold IoSpan values without pulling the full recorder
// (src/obs/span_trace.h) into its headers.
//
// Stage glossary (one IO's life, each boundary a simulated instant):
//
//   submit_us     the host submitted the IO (Enqueue / SubmitAt time);
//   ready_us      the IO was admitted to dispatch -- past queue-depth
//                 backpressure (>= submit_us; equal on the sync path);
//   start_us      the IO acquired its resources (channel; plus the
//                 serialized controller under the bounded-controller
//                 model). [submit_us, start_us) is the queue wait;
//   ctrl_end_us   end of the controller stage (firmware overhead, host
//                 bus transfer, GC slices) -- the serialized-controller
//                 occupancy window is [start_us, ctrl_end_us);
//   flash_end_us  the IO released its flash channel;
//   bus_start_us/ the chip-to-controller data transfer held the
//   bus_end_us    channel's bus slot (bus-contention model only;
//                 both equal flash_end_us otherwise);
//   complete_us   the completion became visible to the host.
//
// Invariants (pinned by tests/span_trace_test.cc and the CI trace
// checker): submit <= ready <= start <= ctrl_end <= flash_end <=
// bus_start <= bus_end <= complete, with complete == max(flash_end,
// bus_end).
#ifndef UFLIP_OBS_IO_SPAN_H_
#define UFLIP_OBS_IO_SPAN_H_

#include <cstdint>

namespace uflip {

struct IoSpan {
  /// The id passed to DeviceTimeline::Submit (the device layer's
  /// IoToken / sync sequence number; issued in submission order).
  uint64_t id = 0;
  /// Flash channel the IO dispatched to.
  uint32_t channel = 0;
  uint64_t submit_us = 0;
  uint64_t ready_us = 0;
  uint64_t start_us = 0;
  uint64_t ctrl_end_us = 0;
  uint64_t flash_end_us = 0;
  uint64_t bus_start_us = 0;
  uint64_t bus_end_us = 0;
  uint64_t complete_us = 0;

  /// Stage durations, all exact integer microseconds off the event
  /// timeline (so exported traces are byte-stable).
  uint64_t QueueWaitUs() const { return start_us - submit_us; }
  uint64_t ControllerUs() const { return ctrl_end_us - start_us; }
  uint64_t FlashUs() const { return flash_end_us - ctrl_end_us; }
  uint64_t BusUs() const { return bus_end_us - bus_start_us; }
  uint64_t TotalUs() const { return complete_us - submit_us; }
};

/// Strict total order "a is slower than b" used by the slowest-K tail
/// reservoir: longer total latency first, then smaller id (ids are
/// unique within one device, so within a recorder this never ties;
/// across merged recorders the remaining fields break ties). Being a
/// pure function of span values -- never of arrival order -- is what
/// makes the reservoir permutation-invariant.
inline bool SpanSlowerThan(const IoSpan& a, const IoSpan& b) {
  if (a.TotalUs() != b.TotalUs()) return a.TotalUs() > b.TotalUs();
  if (a.id != b.id) return a.id < b.id;
  if (a.submit_us != b.submit_us) return a.submit_us < b.submit_us;
  return a.channel < b.channel;
}

/// Capture limits of a SpanRecorder. Memory is bounded by
/// head_limit + tail_k spans regardless of run length.
struct SpanRecorderConfig {
  /// First-N capture: the first `head_limit` spans recorded are kept
  /// verbatim, in record order.
  uint64_t head_limit = 4096;
  /// Slowest-K tail reservoir: the `tail_k` slowest spans of the whole
  /// run (under SpanSlowerThan), kept regardless of when they occurred.
  uint32_t tail_k = 64;
};

}  // namespace uflip

#endif  // UFLIP_OBS_IO_SPAN_H_
