// Windowed time series over simulated time: fixed-interval buckets,
// O(1) memory via bucket coalescing. When a sample lands past the
// bucket budget, adjacent bucket pairs merge and the interval doubles,
// so a series covers any simulated span -- microseconds to weeks --
// in at most `max_buckets` buckets. This is the substrate of the
// utilization timelines (per-channel busy fraction, controller
// occupancy, queue depth over time): instrumentation can record into
// one without knowing the run's duration up front, and the final
// resolution degrades gracefully instead of the memory growing.
//
// Each bucket accumulates a (sum, count) pair, which covers the two
// recording styles the simulator needs:
//  * interval accounting -- AddInterval(start, end) distributes the
//    busy microseconds across the covered buckets' sums, so
//    sum / interval_us is the bucket's busy fraction;
//  * sampled values -- Add(t, v) accumulates v and bumps the count, so
//    MeanAt() is the bucket's average sample (queue depth).
//
// Merging two series (replicated experiments, per-worker registries) is
// deterministic: both operands coarsen to the larger interval -- all
// intervals are the initial interval times a power of two, bucket
// boundaries stay aligned to absolute time -- and then add bucket-wise,
// so merge(a, b) == merge(b, a) exactly.
#ifndef UFLIP_OBS_TIME_SERIES_H_
#define UFLIP_OBS_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uflip {

class TimeSeries {
 public:
  static constexpr size_t kDefaultMaxBuckets = 512;

  /// `interval_us` is the initial bucket width (> 0); coalescing only
  /// ever doubles it. `max_buckets` (>= 2) bounds retained memory.
  explicit TimeSeries(uint64_t interval_us,
                      size_t max_buckets = kDefaultMaxBuckets);

  /// Accumulates a sampled value: bucket(t).sum += value, count += 1.
  void Add(uint64_t t_us, double value);

  /// Distributes `weight` per microsecond of [start_us, end_us) across
  /// the covered buckets' sums (counts untouched). With weight 1 the
  /// bucket sum is occupied-microseconds, i.e. sum / interval_us is the
  /// busy fraction. No-op when end_us <= start_us.
  void AddInterval(uint64_t start_us, uint64_t end_us, double weight = 1.0);

  /// Merges `other` bucket-wise on the absolute timeline. Both series
  /// must share an initial interval lineage (intervals related by a
  /// power of two); the result's interval is the coarser of the two,
  /// further coalesced if the union span overflows max_buckets.
  void Merge(const TimeSeries& other);

  uint64_t interval_us() const { return interval_us_; }
  size_t max_buckets() const { return max_buckets_; }
  bool empty() const { return buckets_.empty(); }
  /// Number of buckets between the first and last touched bucket.
  size_t size() const { return buckets_.size(); }
  /// Start time of bucket `i` on the absolute timeline.
  uint64_t BucketStartUs(size_t i) const {
    return (first_bucket_ + i) * interval_us_;
  }
  /// End of the last touched bucket (0 when empty).
  uint64_t EndUs() const {
    return empty() ? 0 : BucketStartUs(size() - 1) + interval_us_;
  }

  double SumAt(size_t i) const { return buckets_[i].sum; }
  uint64_t CountAt(size_t i) const { return buckets_[i].count; }
  /// Average sampled value in bucket `i` (0 when the bucket is empty).
  double MeanAt(size_t i) const {
    return buckets_[i].count == 0
               ? 0.0
               : buckets_[i].sum / static_cast<double>(buckets_[i].count);
  }
  /// Bucket sum as a fraction of the bucket width (interval
  /// accounting: the busy fraction of that window).
  double FractionAt(size_t i) const {
    return buckets_[i].sum / static_cast<double>(interval_us_);
  }

  double TotalSum() const;
  uint64_t TotalCount() const;

  /// The series coarsened onto exactly `n` equal windows spanning
  /// [BucketStartUs(0), EndUs()) -- the rendering path (sparklines of a
  /// fixed terminal width). Each output pair is (sum, count) of the
  /// source buckets whose start falls in the window.
  struct Window {
    uint64_t start_us = 0;
    double sum = 0;
    uint64_t count = 0;
  };
  std::vector<Window> Resample(size_t n) const;

 private:
  struct Bucket {
    double sum = 0;
    uint64_t count = 0;
  };

  /// Grows/coalesces until absolute bucket index `idx` is addressable,
  /// and returns its slot.
  Bucket* BucketFor(uint64_t idx);
  /// Halves resolution: pairs buckets on even absolute boundaries.
  void Coalesce();

  uint64_t interval_us_;
  size_t max_buckets_;
  /// Absolute index (t / interval) of buckets_[0].
  uint64_t first_bucket_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace uflip

#endif  // UFLIP_OBS_TIME_SERIES_H_
