// Per-IO span tracing: the second half of the observability layer.
// Where MetricRegistry answers "how much, in aggregate", the
// SpanRecorder answers "where did *this* IO's time go" -- one IoSpan
// chain per IO (submit, queue wait, controller occupancy, channel-bus
// transfer, flash busy, completion), recorded in simulated time only.
//
// Design mirrors MetricRegistry's two constraints:
//
//  * Zero overhead when detached. Components expose
//    AttachSpans(SpanRecorder*) and are built unattached; every
//    instrumentation site is guarded by one null check and records
//    nothing otherwise. Attaching never perturbs the simulated
//    timeline -- attached and detached runs produce byte-identical
//    response times (pinned by tests).
//
//  * Deterministic, bounded, mergeable capture. A recorder keeps the
//    first `head_limit` spans verbatim plus a slowest-K tail reservoir
//    (SpanSlowerThan order; permutation-invariant, so the tail is
//    identical no matter how completions interleaved across calendar
//    shards). SpanSnapshot is the exported value type; snapshots merge
//    in the canonical unit-index order of the PR 7 parallel contract,
//    so --trace_out output is byte-identical across --jobs and
//    --calendar_shards. Stage aggregates (count, per-stage sums and
//    log-bucket histograms) ride the existing MetricSnapshot algebra
//    via RegisterMetrics, surfacing mean/p50/p99 per stage in run
//    manifests and the --explain stage table.
//
// Export: SpanSnapshot::ChromeTraceJson emits Chrome trace_event JSON
// (load in Perfetto / chrome://tracing): pid 0 is the device, one tid
// per resource track (flash channels, the serialized controller, bus
// slots), duration ("X") events for occupancy windows and async
// ("b"/"e") events for queue waits; pid 1 lays the slowest-K tail out
// one IO per row. All timestamps are simulated microseconds.
#ifndef UFLIP_OBS_SPAN_TRACE_H_
#define UFLIP_OBS_SPAN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/io_span.h"
#include "src/obs/metric_registry.h"

namespace uflip {

/// Bounded, mergeable capture of one run's spans: the exported value
/// type of a SpanRecorder (carried in RunResult like MetricSnapshot).
struct SpanSnapshot {
  SpanRecorderConfig config;
  /// Total spans observed, captured or not.
  uint64_t recorded = 0;
  /// First-N capture, in record order (submission order within one
  /// device; canonical unit order across merges).
  std::vector<IoSpan> head;
  /// Slowest-K tail, in SpanSlowerThan order (slowest first). May
  /// overlap `head`.
  std::vector<IoSpan> tail;

  /// Folds `other` in after this one. Call in canonical unit-index
  /// order (the PR 7 contract): `head` keeps the first head_limit spans
  /// of the concatenation, `tail` the slowest tail_k of the union --
  /// the latter is order-invariant, the former is exactly why the fold
  /// order is canonical. Configs must match.
  void Merge(const SpanSnapshot& other);
};

/// Rendering knobs of the Chrome trace_event export.
struct ChromeTraceOptions {
  /// Process name metadata of pid 0 (the device label).
  std::string process_name = "device";
  /// Emit the serialized-controller occupancy track (the controller
  /// stage serializes across channels only under the bounded-controller
  /// model; under the pipelined model the stage is part of the channel
  /// window and only appears in slice args).
  bool serialized_controller = false;
};

/// Chrome trace_event JSON of `snap` ({"traceEvents": [...]}), byte-
/// deterministic for identical snapshots: integer timestamps only,
/// slices sorted by (track, start, id). Head spans populate the
/// per-resource tracks of pid 0; tail spans not already in the head get
/// one row each under pid 1.
std::string ChromeTraceJson(const SpanSnapshot& snap,
                            const ChromeTraceOptions& options = {});

/// Writes ChromeTraceJson to `path` (stdout when path is "-"). Returns
/// false on I/O failure.
bool WriteChromeTrace(const SpanSnapshot& snap, const std::string& path,
                      const ChromeTraceOptions& options = {});

/// Records span chains for one device, single-threaded (the device
/// layer feeds it from DeviceTimeline::ResolveAll, already merged to
/// id order). Construct per run unit, attach via the device's
/// AttachSpans, snapshot at run end.
class SpanRecorder {
 public:
  explicit SpanRecorder(SpanRecorderConfig config = {});

  const SpanRecorderConfig& config() const { return config_; }

  /// Observes one resolved span: updates the stage aggregates, the
  /// first-N head (while it has room) and the slowest-K tail.
  void Record(const IoSpan& span);

  /// Total spans observed so far.
  uint64_t recorded() const { return recorded_; }

  /// The capture + aggregate state as a mergeable value.
  SpanSnapshot Snapshot() const;

  /// Exports the stage aggregates through `registry` (not owned; must
  /// outlive the recorder): counter "span.count", per-stage histograms
  /// "span.<stage>_us" and sums "span.<stage>_sum_us" for stages
  /// queue_wait / controller / flash / bus / total. Registered as a
  /// collector, so every registry snapshot sees current totals and
  /// merged snapshots aggregate across recorders. Also switches per-
  /// span stage aggregation on -- a recorder without metrics (pure
  /// --trace_out capture) skips that work entirely -- so this must be
  /// called before the first Record (checked).
  void RegisterMetrics(MetricRegistry* registry);

 private:
  SpanRecorderConfig config_;
  uint64_t recorded_ = 0;
  std::vector<IoSpan> head_;
  /// Kept sorted by SpanSlowerThan, size <= config_.tail_k.
  std::vector<IoSpan> tail_;

  // Stage aggregates, maintained only after RegisterMetrics opts in:
  // they are observable through the registry alone (SpanSnapshot
  // carries head/tail only), and four histogram records per IO are
  // the dominant recorder cost on the capture-only path.
  bool aggregate_stages_ = false;
  obs::Histogram h_queue_wait_;
  obs::Histogram h_controller_;
  obs::Histogram h_flash_;
  obs::Histogram h_bus_;
  obs::Histogram h_total_;
  double sum_queue_wait_ = 0;
  double sum_controller_ = 0;
  double sum_flash_ = 0;
  double sum_bus_ = 0;
  double sum_total_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_OBS_SPAN_TRACE_H_
