#include "src/obs/run_manifest.h"

#include <algorithm>
#include <cstdio>

#include "src/util/json_writer.h"

namespace uflip {

std::string GitDescribe() {
#ifdef UFLIP_GIT_DESCRIBE
  return UFLIP_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string RunManifest::ToJson(int indent) const {
  JsonWriter w(indent);
  w.BeginObject();
  w.Key("schema").String(kSchema);
  w.Key("tool").String(tool);
  w.Key("git").String(GitDescribe());
  w.Key("seed").Uint(seed);
  w.Key("flags").BeginObject();
  auto sorted = flags;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [k, v] : sorted) w.Key(k).String(v);
  w.EndObject();
  w.Key("jobs").Uint(jobs);
  w.Key("calendar_shards").Uint(calendar_shards);
  w.Key("events").Uint(events);
  w.Key("wall_seconds").Double(wall_seconds);
  w.Key("events_per_sec").Double(EventsPerSec());
  w.Key("sim_makespan_us").Uint(sim_makespan_us);
  w.Key("span_trace").BeginObject();
  w.Key("enabled").Bool(span_trace_enabled);
  w.Key("head_limit").Uint(span_config.head_limit);
  w.Key("slowest_k").Uint(span_config.tail_k);
  w.EndObject();
  w.Key("metrics");
  metrics.AppendJson(&w);
  w.EndObject();
  return w.str();
}

bool RunManifest::WriteTo(const std::string& path) const {
  std::string json = ToJson();
  json += '\n';
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return n == json.size() && rc == 0;
}

}  // namespace uflip
