#include "src/obs/span_trace.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <set>

#include "src/util/json_writer.h"
#include "src/util/logging.h"

namespace uflip {

void SpanSnapshot::Merge(const SpanSnapshot& other) {
  UFLIP_CHECK(config.head_limit == other.config.head_limit &&
              config.tail_k == other.config.tail_k);
  recorded += other.recorded;
  for (const IoSpan& s : other.head) {
    if (head.size() >= config.head_limit) break;
    head.push_back(s);
  }
  // Both tails are sorted by SpanSlowerThan; a stable merge keeps this
  // snapshot's spans ahead of other's at full ties, so folding in
  // canonical unit order stays deterministic even across id collisions
  // between devices.
  std::vector<IoSpan> merged;
  merged.reserve(tail.size() + other.tail.size());
  std::merge(tail.begin(), tail.end(), other.tail.begin(), other.tail.end(),
             std::back_inserter(merged), SpanSlowerThan);
  if (merged.size() > config.tail_k) merged.resize(config.tail_k);
  tail = std::move(merged);
}

SpanRecorder::SpanRecorder(SpanRecorderConfig config) : config_(config) {
  head_.reserve(std::min<uint64_t>(config_.head_limit, 4096));
  tail_.reserve(config_.tail_k);
}

void SpanRecorder::Record(const IoSpan& span) {
  ++recorded_;
  if (aggregate_stages_) {
    const double queue_wait = static_cast<double>(span.QueueWaitUs());
    const double controller = static_cast<double>(span.ControllerUs());
    const double flash = static_cast<double>(span.FlashUs());
    const double total = static_cast<double>(span.TotalUs());
    h_queue_wait_.Record(queue_wait);
    h_controller_.Record(controller);
    h_flash_.Record(flash);
    h_total_.Record(total);
    sum_queue_wait_ += queue_wait;
    sum_controller_ += controller;
    sum_flash_ += flash;
    sum_total_ += total;
    if (span.BusUs() > 0) {
      // The bus stage only exists under the bus-contention model; its
      // row aggregates over IOs that had one, not over zeros.
      const double bus = static_cast<double>(span.BusUs());
      h_bus_.Record(bus);
      sum_bus_ += bus;
    }
  }
  if (head_.size() < config_.head_limit) head_.push_back(span);
  if (config_.tail_k == 0) return;
  if (tail_.size() >= config_.tail_k &&
      !SpanSlowerThan(span, tail_.back())) {
    return;
  }
  auto it = std::upper_bound(tail_.begin(), tail_.end(), span, SpanSlowerThan);
  tail_.insert(it, span);
  if (tail_.size() > config_.tail_k) tail_.pop_back();
}

SpanSnapshot SpanRecorder::Snapshot() const {
  SpanSnapshot snap;
  snap.config = config_;
  snap.recorded = recorded_;
  snap.head = head_;
  snap.tail = tail_;
  return snap;
}

void SpanRecorder::RegisterMetrics(MetricRegistry* registry) {
  if (registry == nullptr) return;
  UFLIP_CHECK_MSG(recorded_ == 0,
                  "RegisterMetrics must precede the first Record");
  aggregate_stages_ = true;
  // Collector, not live handles: stage aggregates are copied into the
  // registry at snapshot time, so replicated-run snapshots merge the
  // histograms/sums across recorders exactly like every other metric.
  registry->AddCollector([this, registry] {
    registry->GetCounter("span.count")->value = recorded_;
    *registry->GetHistogram("span.queue_wait_us") = h_queue_wait_;
    *registry->GetHistogram("span.controller_us") = h_controller_;
    *registry->GetHistogram("span.flash_us") = h_flash_;
    *registry->GetHistogram("span.bus_us") = h_bus_;
    *registry->GetHistogram("span.total_us") = h_total_;
    registry->GetSum("span.queue_wait_sum_us")->value = sum_queue_wait_;
    registry->GetSum("span.controller_sum_us")->value = sum_controller_;
    registry->GetSum("span.flash_sum_us")->value = sum_flash_;
    registry->GetSum("span.bus_sum_us")->value = sum_bus_;
    registry->GetSum("span.total_sum_us")->value = sum_total_;
  });
}

namespace {

/// Track (tid) layout of pid 0. Channels sit at their own index;
/// controller and bus tracks are offset well past any realistic
/// channel count.
constexpr uint64_t kControllerTid = 1000;
constexpr uint64_t kBusTidBase = 2000;

void MetaEvent(JsonWriter* w, uint64_t pid, const uint64_t* tid,
               const std::string& name) {
  w->BeginObject();
  w->Key("name").String(tid == nullptr ? "process_name" : "thread_name");
  w->Key("ph").String("M");
  w->Key("pid").Uint(pid);
  if (tid != nullptr) w->Key("tid").Uint(*tid);
  w->Key("args").BeginObject();
  w->Key("name").String(name);
  w->EndObject();
  w->EndObject();
}

void SpanArgs(JsonWriter* w, const IoSpan& s, bool full) {
  w->Key("args").BeginObject();
  w->Key("id").Uint(s.id);
  if (full) {
    w->Key("queue_wait_us").Uint(s.QueueWaitUs());
    w->Key("controller_us").Uint(s.ControllerUs());
    w->Key("flash_us").Uint(s.FlashUs());
    w->Key("bus_us").Uint(s.BusUs());
    w->Key("total_us").Uint(s.TotalUs());
  }
  w->EndObject();
}

void Slice(JsonWriter* w, const char* name, const char* cat, uint64_t pid,
           uint64_t tid, uint64_t ts, uint64_t dur, const IoSpan& s,
           bool full_args) {
  w->BeginObject();
  w->Key("name").String(name);
  w->Key("cat").String(cat);
  w->Key("ph").String("X");
  w->Key("pid").Uint(pid);
  w->Key("tid").Uint(tid);
  w->Key("ts").Uint(ts);
  w->Key("dur").Uint(dur);
  SpanArgs(w, s, full_args);
  w->EndObject();
}

void AsyncEvent(JsonWriter* w, const char* ph, uint64_t tid, uint64_t ts,
                const IoSpan& s) {
  w->BeginObject();
  w->Key("name").String("queue_wait");
  w->Key("cat").String("queue");
  w->Key("ph").String(ph);
  w->Key("id").Uint(s.id);
  w->Key("pid").Uint(0);
  w->Key("tid").Uint(tid);
  w->Key("ts").Uint(ts);
  w->EndObject();
}

/// (start, id) order within one resource track; every track models a
/// serialized resource, so sorted slices never overlap.
bool SliceBefore(const IoSpan* a, const IoSpan* b, uint64_t a_ts,
                 uint64_t b_ts) {
  if (a_ts != b_ts) return a_ts < b_ts;
  return a->id < b->id;
}

}  // namespace

std::string ChromeTraceJson(const SpanSnapshot& snap,
                            const ChromeTraceOptions& options) {
  JsonWriter w(1);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();

  std::set<uint32_t> channels;
  std::set<uint32_t> bus_channels;
  bool any_ctrl = false;
  for (const IoSpan& s : snap.head) {
    channels.insert(s.channel);
    if (s.BusUs() > 0) bus_channels.insert(s.channel);
    if (s.ControllerUs() > 0) any_ctrl = true;
  }

  MetaEvent(&w, 0, nullptr, options.process_name);
  for (uint32_t ch : channels) {
    uint64_t tid = ch;
    MetaEvent(&w, 0, &tid, "channel " + std::to_string(ch));
  }
  const bool ctrl_track = options.serialized_controller && any_ctrl;
  if (ctrl_track) {
    uint64_t tid = kControllerTid;
    MetaEvent(&w, 0, &tid, "controller");
  }
  for (uint32_t ch : bus_channels) {
    uint64_t tid = kBusTidBase + ch;
    MetaEvent(&w, 0, &tid, "channel " + std::to_string(ch) + " bus");
  }

  // Channel occupancy: [start, flash_end) is exactly the window the IO
  // holds its flash channel for (controller tail included under the
  // bounded-controller model).
  std::vector<const IoSpan*> track;
  for (uint32_t ch : channels) {
    track.clear();
    for (const IoSpan& s : snap.head) {
      if (s.channel == ch) track.push_back(&s);
    }
    std::sort(track.begin(), track.end(),
              [](const IoSpan* a, const IoSpan* b) {
                return SliceBefore(a, b, a->start_us, b->start_us);
              });
    for (const IoSpan* s : track) {
      Slice(&w, "io", "device", 0, ch, s->start_us,
            s->flash_end_us - s->start_us, *s, /*full_args=*/true);
    }
  }

  // Serialized-controller occupancy: controller stages of in-flight
  // IOs never overlap, so they form one track.
  if (ctrl_track) {
    track.clear();
    for (const IoSpan& s : snap.head) {
      if (s.ControllerUs() > 0) track.push_back(&s);
    }
    std::sort(track.begin(), track.end(),
              [](const IoSpan* a, const IoSpan* b) {
                return SliceBefore(a, b, a->start_us, b->start_us);
              });
    for (const IoSpan* s : track) {
      Slice(&w, "ctrl", "device", 0, kControllerTid, s->start_us,
            s->ControllerUs(), *s, /*full_args=*/false);
    }
  }

  // Per-channel bus slots (bus-contention model): transfers of one
  // channel's IOs serialize on its data bus.
  for (uint32_t ch : bus_channels) {
    track.clear();
    for (const IoSpan& s : snap.head) {
      if (s.channel == ch && s.BusUs() > 0) track.push_back(&s);
    }
    std::sort(track.begin(), track.end(),
              [](const IoSpan* a, const IoSpan* b) {
                return SliceBefore(a, b, a->bus_start_us, b->bus_start_us);
              });
    for (const IoSpan* s : track) {
      Slice(&w, "bus", "device", 0, kBusTidBase + ch, s->bus_start_us,
            s->BusUs(), *s, /*full_args=*/false);
    }
  }

  // Queue waits as async ("b"/"e") events, one pair per waiting IO,
  // keyed by the IO id.
  for (const IoSpan& s : snap.head) {
    if (s.QueueWaitUs() == 0) continue;
    AsyncEvent(&w, "b", s.channel, s.submit_us, s);
    AsyncEvent(&w, "e", s.channel, s.start_us, s);
  }

  // Slowest-K tail: one row per slow IO (slowest first) under pid 1,
  // whole-life slices. Spans already in the head are shown there.
  std::vector<const IoSpan*> tail_only;
  {
    std::set<uint64_t> head_ids;
    for (const IoSpan& s : snap.head) head_ids.insert(s.id);
    for (const IoSpan& s : snap.tail) {
      if (head_ids.count(s.id) == 0) tail_only.push_back(&s);
    }
  }
  if (!tail_only.empty()) {
    MetaEvent(&w, 1, nullptr, "slowest-" +
                                  std::to_string(snap.config.tail_k) +
                                  " tail");
    for (size_t r = 0; r < tail_only.size(); ++r) {
      uint64_t tid = r;
      MetaEvent(&w, 1, &tid,
                "slow #" + std::to_string(r) + " io " +
                    std::to_string(tail_only[r]->id));
    }
    for (size_t r = 0; r < tail_only.size(); ++r) {
      const IoSpan& s = *tail_only[r];
      Slice(&w, "io", "slow", 1, r, s.submit_us, s.TotalUs(), s,
            /*full_args=*/true);
    }
  }

  w.EndArray();
  w.EndObject();
  return w.str();
}

bool WriteChromeTrace(const SpanSnapshot& snap, const std::string& path,
                      const ChromeTraceOptions& options) {
  std::string json = ChromeTraceJson(snap, options);
  json += '\n';
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return n == json.size() && rc == 0;
}

}  // namespace uflip
