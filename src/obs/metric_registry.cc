#include "src/obs/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/json_writer.h"
#include "src/util/logging.h"

namespace uflip {

namespace obs {

double Histogram::BucketValue(int idx) {
  int e = (idx >> kSubBits) + kMinExp;
  int sub = idx & ((1 << kSubBits) - 1);
  return std::ldexp(1.0 + (sub + 0.5) / (1 << kSubBits), e);
}

TDigest Histogram::ToDigest() const {
  TDigest d;
  if (count == 0) return d;
  int first = -1, last = -1;
  for (int i = 0; i < kBuckets; ++i) {
    if (bucket[i] != 0) {
      if (first < 0) first = i;
      last = i;
    }
  }
  // One sample of the first bucket is re-attributed to the exact min
  // (and, when count allows, one of the last to the exact max): the
  // digest's extremes come from inserted points, and uFLIP reports
  // lean on exact Quantile(0)/Quantile(1). Everything else enters as
  // one weighted centroid per occupied bucket, ascending, with the
  // representative clamped into the observed range so interpolation
  // never invents values outside it.
  uint64_t spend_max = count >= 2 ? 1 : 0;
  d.AddWeighted(min, 1);
  for (int i = first; i <= last; ++i) {
    uint64_t w = bucket[i];
    if (w == 0) continue;
    if (i == first) w -= 1;
    if (i == last) w -= spend_max;
    if (w == 0) continue;
    double rep = std::min(std::max(BucketValue(i), min), max);
    d.AddWeighted(rep, static_cast<double>(w));
  }
  if (spend_max != 0) d.AddWeighted(max, 1);
  return d;
}

}  // namespace obs

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kSum: return "sum";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kTimeSeries: return "timeseries";
  }
  return "unknown";
}

const MetricValue* MetricSnapshot::Find(const std::string& name) const {
  auto it = std::lower_bound(
      values_.begin(), values_.end(), name,
      [](const MetricValue& v, const std::string& n) { return v.name < n; });
  if (it == values_.end() || it->name != name) return nullptr;
  return &*it;
}

uint64_t MetricSnapshot::CounterValue(const std::string& name) const {
  const MetricValue* v = Find(name);
  return v == nullptr ? 0 : v->counter;
}

double MetricSnapshot::Value(const std::string& name) const {
  const MetricValue* v = Find(name);
  return v == nullptr ? 0.0 : v->value;
}

void MetricSnapshot::Add(MetricValue v) {
  auto it = std::lower_bound(
      values_.begin(), values_.end(), v.name,
      [](const MetricValue& m, const std::string& n) { return m.name < n; });
  UFLIP_CHECK(it == values_.end() || it->name != v.name);
  values_.insert(it, std::move(v));
}

void MetricSnapshot::Merge(const MetricSnapshot& other) {
  std::vector<MetricValue> merged;
  merged.reserve(values_.size() + other.values_.size());
  size_t i = 0, j = 0;
  while (i < values_.size() || j < other.values_.size()) {
    if (j >= other.values_.size() ||
        (i < values_.size() && values_[i].name < other.values_[j].name)) {
      merged.push_back(std::move(values_[i++]));
      continue;
    }
    if (i >= values_.size() || other.values_[j].name < values_[i].name) {
      merged.push_back(other.values_[j++]);
      continue;
    }
    MetricValue v = std::move(values_[i++]);
    const MetricValue& o = other.values_[j++];
    UFLIP_CHECK(v.kind == o.kind);
    switch (v.kind) {
      case MetricKind::kCounter:
        v.counter += o.counter;
        break;
      case MetricKind::kSum:
        v.value += o.value;
        break;
      case MetricKind::kGauge:
        v.value = std::max(v.value, o.value);
        break;
      case MetricKind::kHistogram: {
        auto h = std::make_shared<TDigest>(*v.hist);
        if (o.hist != nullptr) h->Merge(*o.hist);
        v.hist = std::move(h);
        break;
      }
      case MetricKind::kTimeSeries: {
        auto s = std::make_shared<TimeSeries>(*v.series);
        if (o.series != nullptr) s->Merge(*o.series);
        v.series = std::move(s);
        break;
      }
    }
    merged.push_back(std::move(v));
  }
  values_ = std::move(merged);
}

void MetricSnapshot::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  for (const MetricValue& v : values_) {
    w->Key(v.name).BeginObject();
    w->Key("kind").String(MetricKindName(v.kind));
    switch (v.kind) {
      case MetricKind::kCounter:
        w->Key("value").Uint(v.counter);
        break;
      case MetricKind::kSum:
      case MetricKind::kGauge:
        w->Key("value").Double(v.value);
        break;
      case MetricKind::kHistogram: {
        const TDigest& d = *v.hist;
        w->Key("count").Uint(d.count());
        w->Key("min").Double(d.Quantile(0.0));
        w->Key("p50").Double(d.Quantile(0.5));
        w->Key("p95").Double(d.Quantile(0.95));
        w->Key("p99").Double(d.Quantile(0.99));
        w->Key("max").Double(d.Quantile(1.0));
        break;
      }
      case MetricKind::kTimeSeries: {
        const TimeSeries& s = *v.series;
        w->Key("interval_us").Uint(s.interval_us());
        w->Key("start_us").Uint(s.empty() ? 0 : s.BucketStartUs(0));
        w->Key("total_sum").Double(s.TotalSum());
        w->Key("total_count").Uint(s.TotalCount());
        w->Key("sum").BeginArray();
        for (size_t i = 0; i < s.size(); ++i) w->Double(s.SumAt(i));
        w->EndArray();
        w->Key("count").BeginArray();
        for (size_t i = 0; i < s.size(); ++i) w->Uint(s.CountAt(i));
        w->EndArray();
        break;
      }
    }
    w->EndObject();
  }
  w->EndObject();
}

std::string MetricSnapshot::ToJson(int indent) const {
  JsonWriter w(indent);
  AppendJson(&w);
  return w.str();
}

MetricRegistry::Entry* MetricRegistry::GetEntry(const std::string& name,
                                                MetricKind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else {
    UFLIP_CHECK(it->second.kind == kind);
  }
  return &it->second;
}

obs::Counter* MetricRegistry::GetCounter(const std::string& name) {
  return &GetEntry(name, MetricKind::kCounter)->counter;
}

obs::Sum* MetricRegistry::GetSum(const std::string& name) {
  return &GetEntry(name, MetricKind::kSum)->sum;
}

obs::Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return &GetEntry(name, MetricKind::kGauge)->gauge;
}

obs::Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  Entry* e = GetEntry(name, MetricKind::kHistogram);
  if (e->hist == nullptr) e->hist = std::make_unique<obs::Histogram>();
  return e->hist.get();
}

TimeSeries* MetricRegistry::GetTimeSeries(const std::string& name,
                                          uint64_t interval_us,
                                          size_t max_buckets) {
  Entry* e = GetEntry(name, MetricKind::kTimeSeries);
  if (e->series == nullptr) {
    e->series = std::make_unique<TimeSeries>(interval_us, max_buckets);
  }
  return e->series.get();
}

void MetricRegistry::AddCollector(std::function<void()> fn) {
  collectors_.push_back(std::move(fn));
}

MetricSnapshot MetricRegistry::Snapshot() {
  for (const auto& fn : collectors_) fn();
  MetricSnapshot snap;
  for (const auto& [name, e] : entries_) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        v.counter = e.counter.value;
        break;
      case MetricKind::kSum:
        v.value = e.sum.value;
        break;
      case MetricKind::kGauge:
        v.value = e.gauge.value;
        break;
      case MetricKind::kHistogram:
        v.hist = std::make_shared<TDigest>(e.hist->ToDigest());
        break;
      case MetricKind::kTimeSeries:
        v.series = std::make_shared<TimeSeries>(*e.series);
        break;
    }
    snap.Add(std::move(v));
  }
  return snap;
}

}  // namespace uflip
