// Run manifest: the self-describing JSON record a benchmark binary
// emits alongside its results (--metrics_out=). One file answers "what
// exactly produced these numbers" -- the tool and its flags, the seed,
// the build (git describe), throughput (events, wall seconds,
// events/sec), the simulated makespan, and the full metric snapshot --
// so two runs can be diffed field-by-field and CI can regression-check
// any of it. Schema is versioned ("uflip.run_manifest/v2") and the
// output is deterministic modulo the wall-clock fields: flags are
// emitted sorted by key and the metric object sorted by name.
#ifndef UFLIP_OBS_RUN_MANIFEST_H_
#define UFLIP_OBS_RUN_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/io_span.h"
#include "src/obs/metric_registry.h"

namespace uflip {

/// The build's `git describe --always --dirty`, baked in at configure
/// time (UFLIP_GIT_DESCRIBE); "unknown" outside a git checkout.
std::string GitDescribe();

struct RunManifest {
  /// v2 adds the "span_trace" object (whether per-IO span tracing was
  /// on, and its capture limits). v1 records differ only by its
  /// absence and stay readable -- consumers must accept both (see
  /// SchemaReadable).
  static constexpr const char* kSchema = "uflip.run_manifest/v2";
  static constexpr const char* kSchemaV1 = "uflip.run_manifest/v1";

  /// True for every schema tag this codebase knows how to consume.
  static bool SchemaReadable(const std::string& schema) {
    return schema == kSchema || schema == kSchemaV1;
  }

  std::string tool;  // emitting binary, e.g. "ftl_compare"
  std::vector<std::pair<std::string, std::string>> flags;
  uint64_t seed = 0;
  /// Worker threads the run executed on (parallel execution core). A
  /// config field like `flags`, not a result: every jobs value produces
  /// identical simulation output, only wall_seconds moves.
  uint32_t jobs = 1;
  /// Event-calendar shards per simulated device (src/sim/). Like jobs,
  /// a config field: every shard count produces identical simulation
  /// output.
  uint32_t calendar_shards = 1;
  uint64_t events = 0;          // IOs simulated across the whole run
  double wall_seconds = 0;      // host wall time of the simulation
  uint64_t sim_makespan_us = 0;  // simulated completion time, max over reps
  /// Whether per-IO span tracing was attached, and the capture limits
  /// it ran with (a config field like `flags`: tracing never changes
  /// simulation output). The span.* stage aggregates live in `metrics`.
  bool span_trace_enabled = false;
  SpanRecorderConfig span_config;
  MetricSnapshot metrics;

  double EventsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }

  void AddFlag(const std::string& key, const std::string& value) {
    flags.emplace_back(key, value);
  }

  std::string ToJson(int indent = 2) const;
  /// Writes ToJson() to `path` (stdout when path is "-"). Returns false
  /// on I/O failure.
  bool WriteTo(const std::string& path) const;
};

}  // namespace uflip

#endif  // UFLIP_OBS_RUN_MANIFEST_H_
