#include "src/obs/time_series.h"

#include <algorithm>

#include "src/util/logging.h"

namespace uflip {

TimeSeries::TimeSeries(uint64_t interval_us, size_t max_buckets)
    : interval_us_(interval_us), max_buckets_(max_buckets) {
  UFLIP_CHECK(interval_us_ > 0);
  UFLIP_CHECK(max_buckets_ >= 2);
}

void TimeSeries::Coalesce() {
  uint64_t new_first = first_bucket_ / 2;
  if (!buckets_.empty()) {
    uint64_t last = first_bucket_ + buckets_.size() - 1;
    std::vector<Bucket> merged(last / 2 - new_first + 1);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      Bucket& dst = merged[(first_bucket_ + i) / 2 - new_first];
      dst.sum += buckets_[i].sum;
      dst.count += buckets_[i].count;
    }
    buckets_ = std::move(merged);
  }
  first_bucket_ = new_first;
  interval_us_ *= 2;
}

TimeSeries::Bucket* TimeSeries::BucketFor(uint64_t idx) {
  if (buckets_.empty()) {
    first_bucket_ = idx;
    buckets_.emplace_back();
    return &buckets_.back();
  }
  // Simulated time is nondecreasing in practice; a sample behind the
  // window is folded into the first bucket rather than growing the
  // front.
  if (idx < first_bucket_) return &buckets_.front();
  while (idx - first_bucket_ >= max_buckets_) {
    Coalesce();
    idx /= 2;
  }
  if (idx - first_bucket_ >= buckets_.size()) {
    buckets_.resize(idx - first_bucket_ + 1);
  }
  return &buckets_[idx - first_bucket_];
}

void TimeSeries::Add(uint64_t t_us, double value) {
  Bucket* b = BucketFor(t_us / interval_us_);
  b->sum += value;
  b->count += 1;
}

void TimeSeries::AddInterval(uint64_t start_us, uint64_t end_us,
                             double weight) {
  if (end_us <= start_us) return;
  // Make both endpoints addressable first: BucketFor may coalesce (and
  // thereby move every boundary), so the per-bucket overlap split below
  // must run at the final resolution.
  BucketFor(start_us / interval_us_);
  BucketFor((end_us - 1) / interval_us_);
  uint64_t s = start_us / interval_us_;
  uint64_t e = (end_us - 1) / interval_us_;
  for (uint64_t idx = s; idx <= e; ++idx) {
    uint64_t b_start = idx * interval_us_;
    uint64_t b_end = b_start + interval_us_;
    uint64_t lo = std::max(start_us, b_start);
    uint64_t hi = std::min(end_us, b_end);
    buckets_[idx - first_bucket_].sum +=
        weight * static_cast<double>(hi - lo);
  }
}

void TimeSeries::Merge(const TimeSeries& other) {
  if (other.empty()) return;
  if (empty()) {
    interval_us_ = other.interval_us_;
    first_bucket_ = other.first_bucket_;
    buckets_ = other.buckets_;
    while (buckets_.size() > max_buckets_) Coalesce();
    return;
  }
  // Same lineage: one interval is the other times a power of two, so
  // the coarser grid's boundaries contain the finer grid's.
  uint64_t target = std::max(interval_us_, other.interval_us_);
  UFLIP_CHECK(target % std::min(interval_us_, other.interval_us_) == 0);
  // Pre-coarsen until the union span fits, so no coalesce can fire in
  // the middle of the bucket-wise addition below.
  while (true) {
    while (interval_us_ < target) Coalesce();
    target = interval_us_;
    uint64_t lo = std::min(first_bucket_ * interval_us_,
                           other.first_bucket_ * other.interval_us_);
    uint64_t hi = std::max(EndUs(), other.EndUs());
    if ((hi - lo) / target < max_buckets_) break;
    target *= 2;
  }
  // Extend the window backwards when `other` starts earlier: BucketFor's
  // fold-into-the-front policy is for out-of-order hot-path samples, and
  // letting it absorb another series' early buckets would make the merge
  // depend on operand order. The pre-coarsening above already bounded
  // the union span, so the front extension stays within max_buckets.
  uint64_t other_first = (other.first_bucket_ * other.interval_us_) /
                         interval_us_;
  if (other_first < first_bucket_) {
    buckets_.insert(buckets_.begin(), first_bucket_ - other_first, Bucket{});
    first_bucket_ = other_first;
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i].sum == 0 && other.buckets_[i].count == 0) continue;
    uint64_t t = (other.first_bucket_ + i) * other.interval_us_;
    Bucket* b = BucketFor(t / interval_us_);
    b->sum += other.buckets_[i].sum;
    b->count += other.buckets_[i].count;
  }
}

double TimeSeries::TotalSum() const {
  double total = 0;
  for (const Bucket& b : buckets_) total += b.sum;
  return total;
}

uint64_t TimeSeries::TotalCount() const {
  uint64_t total = 0;
  for (const Bucket& b : buckets_) total += b.count;
  return total;
}

std::vector<TimeSeries::Window> TimeSeries::Resample(size_t n) const {
  std::vector<Window> out;
  if (empty() || n == 0) return out;
  uint64_t start = BucketStartUs(0);
  uint64_t span = EndUs() - start;
  out.resize(std::min(n, buckets_.size()));
  size_t windows = out.size();
  for (size_t w = 0; w < windows; ++w) {
    out[w].start_us = start + span * w / windows;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    size_t w = static_cast<size_t>((BucketStartUs(i) - start) * windows /
                                   span);
    w = std::min(w, windows - 1);
    out[w].sum += buckets_[i].sum;
    out[w].count += buckets_[i].count;
  }
  return out;
}

}  // namespace uflip
