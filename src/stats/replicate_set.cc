#include "src/stats/replicate_set.h"

#include <algorithm>
#include <cmath>

namespace uflip {

bool ReplicateAggregate::OverlapsCi(const ReplicateAggregate& other) const {
  return CiOverlaps(mean, mean_ci95_half, other.mean, other.mean_ci95_half);
}

void ReplicateSet::Add(const RepSummary& rep) {
  if (rep.count == 0) return;
  rep_means_.push_back(rep.mean);
  if (n_ == 0) {
    min_ = rep.min;
    max_ = rep.max;
  } else {
    min_ = std::min(min_, rep.min);
    max_ = std::max(max_, rep.max);
  }
  // Chan et al. pairwise combine: equals one Welford pass over the
  // concatenation of both sample sets.
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(rep.count);
  double delta = rep.mean - mean_;
  n_ += rep.count;
  double n = static_cast<double>(n_);
  mean_ += delta * nb / n;
  m2_ += rep.m2 + delta * delta * na * nb / n;
  wp50_ += rep.p50 * nb;
  wp95_ += rep.p95 * nb;
  wp99_ += rep.p99 * nb;
  // Merge sketches only while every repetition contributes one of the
  // same kind; otherwise a merged sketch would cover fewer samples than
  // the moments claim, so drop it and let Aggregate() fall back to the
  // count-weighted per-rep percentiles (which cover all reps).
  if (sketch_mismatch_) return;
  if (rep.sketch == nullptr ||
      (merged_ != nullptr && merged_->kind() != rep.sketch->kind())) {
    sketch_mismatch_ = true;
    merged_.reset();
    return;
  }
  if (merged_ == nullptr) {
    merged_ = rep.sketch->Clone();
  } else {
    merged_->Merge(*rep.sketch);
  }
}

double ReplicateSet::TCritical95(uint32_t reps) {
  if (reps < 2) return 0;
  // t_{0.975, df} for df = 1..30.
  static constexpr double kT975[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  uint32_t df = reps - 1;
  if (df <= 30) return kT975[df - 1];
  // Bracketed beyond the table, each bracket using (at least) the value
  // at its smallest df, so intervals round wider -- never narrower --
  // than the exact t would give.
  if (df <= 40) return 2.040;
  if (df <= 60) return 2.020;
  if (df <= 120) return 2.000;
  if (df <= 300) return 1.980;
  // Exact t stays above the normal 1.960 at any finite df; 1.970
  // dominates it for every df > 300 (t_301 = 1.968).
  return 1.970;
}

ReplicateAggregate ReplicateSet::Aggregate() const {
  ReplicateAggregate agg;
  agg.reps = reps();
  if (n_ == 0) return agg;
  agg.count = n_;
  agg.mean = mean_;
  double var = m2_ / static_cast<double>(n_);
  agg.stddev = var > 0 ? std::sqrt(var) : 0.0;
  agg.min = min_;
  agg.max = max_;

  if (agg.reps >= 2) {
    // Sample stddev of the per-repetition means (R - 1 denominator).
    double rm = 0;
    for (double m : rep_means_) rm += m;
    rm /= static_cast<double>(rep_means_.size());
    double s2 = 0;
    for (double m : rep_means_) s2 += (m - rm) * (m - rm);
    s2 /= static_cast<double>(rep_means_.size() - 1);
    agg.mean_ci95_half = TCritical95(agg.reps) * std::sqrt(s2) /
                         std::sqrt(static_cast<double>(rep_means_.size()));
  }

  if (merged_ != nullptr) {
    agg.p50 = merged_->Quantile(0.50);
    agg.p95 = merged_->Quantile(0.95);
    agg.p99 = merged_->Quantile(0.99);
    agg.sketch = std::shared_ptr<const QuantileSketch>(merged_->Clone());
  } else {
    double n = static_cast<double>(n_);
    agg.p50 = wp50_ / n;
    agg.p95 = wp95_ / n;
    agg.p99 = wp99_ / n;
  }
  return agg;
}

}  // namespace uflip
