// Replicated-experiment aggregation: combines the per-repetition
// summaries of one experimental cell -- Welford moments plus a
// mergeable quantile sketch each -- into pooled moments, merged-sketch
// percentiles, and a 95% confidence interval on the mean.
//
// The moment algebra is Chan et al.'s pairwise Welford combine, so the
// pooled mean/variance equal one Welford pass over the concatenated
// samples (no per-sample state is kept). The confidence interval is the
// classic replicated-run interval: the per-repetition means are treated
// as R independent observations and the half-width is
// t_{0.975, R-1} * s_R / sqrt(R), which is exactly how a benchmark
// harness should qualify "pattern A beat pattern B by 1.2x" claims
// built on few repetitions. Percentiles come from merging the
// repetitions' sketches, so they cover the union of all samples within
// the sketch's rank-error bound -- not an average of per-rep
// percentiles, which has no such guarantee.
#ifndef UFLIP_STATS_REPLICATE_SET_H_
#define UFLIP_STATS_REPLICATE_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/stats/quantile_sketch.h"

namespace uflip {

/// One repetition's summary (units are the caller's; microseconds
/// throughout this repo). `m2` is the sum of squared deviations from
/// the mean (count * variance), i.e. Welford's running M2.
struct RepSummary {
  uint64_t count = 0;
  double mean = 0;
  double m2 = 0;
  double min = 0;
  double max = 0;
  /// Per-rep percentile estimates: only used as a count-weighted
  /// fallback when no sketch accompanies the summary.
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::shared_ptr<const QuantileSketch> sketch;
};

/// The 95%-CI overlap rule shared by every "statistically tied" claim
/// (ReplicateAggregate::OverlapsCi, GridReport::TiesWithBest): the two
/// means are indistinguishable when neither lies outside the other's
/// interval reach. `ci_*` are half-widths.
inline bool CiOverlaps(double mean_a, double ci_a, double mean_b,
                       double ci_b) {
  double diff = mean_a > mean_b ? mean_a - mean_b : mean_b - mean_a;
  return diff <= ci_a + ci_b;
}

/// The combined cell: pooled over every sample of every repetition.
struct ReplicateAggregate {
  uint32_t reps = 0;
  uint64_t count = 0;
  double mean = 0;
  double stddev = 0;  // pooled (population) stddev over all samples
  double min = 0;
  double max = 0;
  /// Half-width of the 95% confidence interval on the mean, from the
  /// spread of the per-repetition means; 0 when reps < 2 (one run
  /// carries no replication evidence).
  double mean_ci95_half = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  /// Merged across all repetitions; null when no rep carried a sketch.
  std::shared_ptr<const QuantileSketch> sketch;

  /// True when this cell's CI overlaps `other`'s: the two means are not
  /// distinguishable at the 95% level, so neither "beat" the other.
  bool OverlapsCi(const ReplicateAggregate& other) const;
};

class ReplicateSet {
 public:
  void Add(const RepSummary& rep);

  uint32_t reps() const { return static_cast<uint32_t>(rep_means_.size()); }
  uint64_t count() const { return n_; }

  ReplicateAggregate Aggregate() const;

  /// Two-sided 97.5% Student-t critical value for reps - 1 degrees of
  /// freedom; beyond the df <= 30 table it is bracketed so the value
  /// never falls below the exact t (intervals round wider, not
  /// narrower). 0 when reps < 2.
  static double TCritical95(uint32_t reps);

 private:
  std::vector<double> rep_means_;
  // Pairwise Welford combine state over all samples.
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  // Count-weighted fallback percentiles for sketch-less summaries.
  double wp50_ = 0, wp95_ = 0, wp99_ = 0;
  // Set when any rep lacks a sketch (or kinds mix): the merged sketch
  // is dropped so percentiles never cover fewer samples than the
  // moments; Aggregate() uses the weighted fallback instead.
  bool sketch_mismatch_ = false;
  std::unique_ptr<QuantileSketch> merged_;
};

}  // namespace uflip

#endif  // UFLIP_STATS_REPLICATE_SET_H_
