#include "src/stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace uflip {

namespace {

// Samples buffered between t-digest compactions. Larger buffers
// amortize the O(C) merge/compaction passes and the per-emitted-centroid
// sin() over more adds (the sort itself is only O(log B) per add) but
// hold more uncompacted memory; 1024 doubles is 8KB per sketch, still
// comfortably O(1) retained.
constexpr size_t kTDigestBuffer = 1024;

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kTDigest: return "t-digest";
    case SketchKind::kKll: return "kll";
  }
  return "?";
}

std::unique_ptr<QuantileSketch> QuantileSketch::Create(SketchKind kind) {
  switch (kind) {
    case SketchKind::kTDigest: return std::make_unique<TDigest>();
    case SketchKind::kKll: return std::make_unique<KllSketch>();
  }
  return std::make_unique<TDigest>();
}

// ---------------------------------------------------------------------
// TDigest
// ---------------------------------------------------------------------

TDigest::TDigest(double compression)
    : compression_(compression < 20 ? 20 : compression) {
  samples_.reserve(kTDigestBuffer);
}

double TDigest::ScaleK(double q) const {
  double arg = 2 * q - 1;
  arg = std::max(-1.0, std::min(1.0, arg));
  return compression_ / (2 * M_PI) * std::asin(arg);
}

double TDigest::ScaleQ(double k) const {
  double arg = k * 2 * M_PI / compression_;
  arg = std::max(-M_PI / 2, std::min(M_PI / 2, arg));
  return (std::sin(arg) + 1) / 2;
}

void TDigest::Add(double x) {
  if (std::isnan(x)) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  samples_.push_back(x);
  if (samples_.size() >= kTDigestBuffer) Flush();
}

void TDigest::AddWeighted(double x, double weight) {
  if (std::isnan(x) || weight <= 0) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += static_cast<uint64_t>(weight + 0.5);
  buffer_.push_back(Centroid{x, weight});
  if (buffer_.size() >= kTDigestBuffer) Flush();
}

void TDigest::Flush() const {
  if (samples_.empty() && buffer_.empty()) return;
  auto less = [](const Centroid& a, const Centroid& b) {
    return a.mean < b.mean || (a.mean == b.mean && a.weight < b.weight);
  };
  // The union is recompacted left-to-right each flush, so the result
  // depends only on the sorted multiset of centroids -- which is what
  // makes Merge order-independent (merge(a, b) == merge(b, a)).
  // centroids_ is already sorted (output of the previous compaction),
  // so only the pending inputs need sorting before a linear merge;
  // scratch_ is a member to keep the hot path allocation-free after
  // warm-up. Add() buffers raw doubles (weight-1 singletons) rather
  // than centroids: sorting doubles is markedly cheaper, and Flush is
  // amortized under every histogram sample the simulator records.
  if (!buffer_.empty()) {
    // Rare path (Merge insertions): fold the foreign centroids into
    // centroids_ first so the hot path below stays two-way.
    std::sort(buffer_.begin(), buffer_.end(), less);
    scratch_.clear();
    scratch_.reserve(buffer_.size() + centroids_.size());
    std::merge(centroids_.begin(), centroids_.end(), buffer_.begin(),
               buffer_.end(), std::back_inserter(scratch_), less);
    buffer_.clear();
    centroids_.swap(scratch_);
  }
  std::sort(samples_.begin(), samples_.end());
  scratch_.clear();
  scratch_.reserve(samples_.size() + centroids_.size());
  // Merge the sorted singletons with the sorted centroids. On an equal
  // mean the weight-1 singleton sorts first (centroid weights are
  // >= 1, and equal-weight duplicates are interchangeable), matching
  // `less` above.
  {
    size_t ci = 0, si = 0;
    while (ci < centroids_.size() && si < samples_.size()) {
      if (centroids_[ci].mean < samples_[si] ||
          (centroids_[ci].mean == samples_[si] &&
           centroids_[ci].weight <= 1)) {
        scratch_.push_back(centroids_[ci++]);
      } else {
        scratch_.push_back(Centroid{samples_[si++], 1});
      }
    }
    for (; ci < centroids_.size(); ++ci) scratch_.push_back(centroids_[ci]);
    for (; si < samples_.size(); ++si) {
      scratch_.push_back(Centroid{samples_[si], 1});
    }
  }
  samples_.clear();
  double total = 0;
  for (const Centroid& c : scratch_) total += c.weight;

  // Compaction walks the union once. The k-scale bound "merging c into
  // cur keeps the centroid within one k-unit" is tested as a
  // precomputed weight limit (ScaleQ, the inverse scale function)
  // instead of per-centroid asin calls: one sin per EMITTED centroid
  // (~compression) rather than one asin per INPUT centroid.
  centroids_.clear();
  double w_before = 0;  // weight fully emitted before `cur`
  double w_limit = total * ScaleQ(ScaleK(0) + 1.0);
  Centroid cur = scratch_[0];
  for (size_t i = 1; i < scratch_.size(); ++i) {
    const Centroid& c = scratch_[i];
    if (w_before + cur.weight + c.weight <= w_limit) {
      cur.weight += c.weight;
      cur.mean += (c.mean - cur.mean) * (c.weight / cur.weight);
    } else {
      centroids_.push_back(cur);
      w_before += cur.weight;
      w_limit = total * ScaleQ(ScaleK(w_before / total) + 1.0);
      cur = c;
    }
  }
  centroids_.push_back(cur);
}

void TDigest::Merge(const QuantileSketch& other) {
  UFLIP_CHECK(other.kind() == SketchKind::kTDigest);
  const TDigest& od = static_cast<const TDigest&>(other);
  // Flush BOTH sides so each operand contributes its compacted
  // centroids regardless of which is the receiver -- with only the
  // argument flushed, the receiver's buffered singletons would make the
  // recompacted union depend on operand order.
  Flush();
  od.Flush();
  if (od.count_ == 0) return;
  if (count_ == 0) {
    min_ = od.min_;
    max_ = od.max_;
  } else {
    min_ = std::min(min_, od.min_);
    max_ = std::max(max_, od.max_);
  }
  count_ += od.count_;
  buffer_.insert(buffer_.end(), od.centroids_.begin(), od.centroids_.end());
  Flush();
}

double TDigest::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  Flush();
  if (centroids_.size() == 1) return centroids_[0].mean;
  // Centroid i's mean is taken as the value at cumulative weight
  // cum_i + w_i / 2; linear interpolation between those anchor points,
  // pinned to the exact min/max at the ends. The target rank follows
  // the type-7 convention (h = q * (n - 1), interpolated): with every
  // centroid a singleton this reproduces classic sorted-sample
  // interpolation exactly, one order statistic at most from the
  // floor(q * (n - 1)) index RunStats::Compute reports.
  double total = 0;
  for (const Centroid& c : centroids_) total += c.weight;
  double target = q * (total - 1) + 0.5;
  double prev_pos = 0;
  double prev_val = min_;
  double cum = 0;
  for (const Centroid& c : centroids_) {
    double pos = cum + c.weight / 2;
    if (target < pos) {
      double t = (target - prev_pos) / (pos - prev_pos);
      return prev_val + t * (c.mean - prev_val);
    }
    prev_pos = pos;
    prev_val = c.mean;
    cum += c.weight;
  }
  double t = (target - prev_pos) / (total - prev_pos);
  return prev_val + t * (max_ - prev_val);
}

double TDigest::RankErrorBound() const {
  // The k1 scale function caps one centroid's rank span at pi/delta
  // (worst at the median, tighter toward the tails); interpolation
  // between adjacent anchors stays within one span.
  return M_PI / compression_;
}

std::unique_ptr<QuantileSketch> TDigest::Clone() const {
  return std::make_unique<TDigest>(*this);
}

size_t TDigest::CentroidCount() const {
  Flush();
  return centroids_.size();
}

// ---------------------------------------------------------------------
// KllSketch
// ---------------------------------------------------------------------

KllSketch::KllSketch(size_t k) : k_(k < 8 ? 8 : k) {
  levels_.emplace_back();
  parity_.push_back(0);
}

size_t KllSketch::LevelCapacity(size_t level, size_t depth) const {
  // Top level holds k values; capacities decay by 2/3 per level below,
  // floored so every level keeps a usable sample.
  double cap = static_cast<double>(k_) *
               std::pow(2.0 / 3.0, static_cast<double>(depth - 1 - level));
  return std::max<size_t>(8, static_cast<size_t>(std::ceil(cap)));
}

void KllSketch::Add(double x) {
  if (std::isnan(x)) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  levels_[0].push_back(x);
  if (levels_[0].size() >= LevelCapacity(0, levels_.size())) Compress();
}

void KllSketch::Compress() {
  for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    std::vector<double>& cur = levels_[lvl];
    if (cur.size() < LevelCapacity(lvl, levels_.size())) continue;
    std::sort(cur.begin(), cur.end());
    if (lvl + 1 >= levels_.size()) {
      levels_.emplace_back();
      parity_.push_back(0);
    }
    // Promote every other value (weight doubles); the kept parity
    // alternates per level via a counter, so compaction -- and with it
    // every quantile the sketch will ever report -- is deterministic.
    size_t offset = parity_[lvl] & 1;
    parity_[lvl] ^= 1;
    std::vector<double>& up = levels_[lvl + 1];
    size_t pairs = levels_[lvl].size() / 2;
    for (size_t i = 0; i < pairs; ++i) {
      up.push_back(levels_[lvl][2 * i + offset]);
    }
    std::vector<double> keep;
    if (levels_[lvl].size() % 2) keep.push_back(levels_[lvl].back());
    levels_[lvl] = std::move(keep);
  }
}

void KllSketch::Merge(const QuantileSketch& other) {
  UFLIP_CHECK(other.kind() == SketchKind::kKll);
  if (&other == this) {
    KllSketch copy = *this;
    Merge(static_cast<const QuantileSketch&>(copy));
    return;
  }
  const KllSketch& o = static_cast<const KllSketch&>(other);
  if (o.count_ == 0) return;
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  while (levels_.size() < o.levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  for (size_t lvl = 0; lvl < o.levels_.size(); ++lvl) {
    levels_[lvl].insert(levels_[lvl].end(), o.levels_[lvl].begin(),
                        o.levels_[lvl].end());
  }
  Compress();
}

double KllSketch::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  // Weighted rank walk over every retained value. Compaction preserves
  // total weight exactly, so the weights sum to count().
  std::vector<std::pair<double, double>> items;
  items.reserve(RetainedItems());
  double total = 0;
  for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    double w = std::ldexp(1.0, static_cast<int>(lvl));
    for (double v : levels_[lvl]) {
      items.emplace_back(v, w);
      total += w;
    }
  }
  std::sort(items.begin(), items.end());
  double target = q * total;
  double cum = 0;
  for (const auto& [v, w] : items) {
    cum += w;
    if (cum >= target) return v;
  }
  return max_;
}

size_t KllSketch::RetainedItems() const {
  size_t n = 0;
  for (const auto& lvl : levels_) n += lvl.size();
  return n;
}

double KllSketch::RankErrorBound() const {
  // Conservative envelope for the deterministic-parity compactor stack
  // (the randomized KLL bound is ~2.3/k; alternating parity trades the
  // probabilistic guarantee for reproducibility).
  return 8.0 / static_cast<double>(k_);
}

std::unique_ptr<QuantileSketch> KllSketch::Clone() const {
  return std::make_unique<KllSketch>(*this);
}

}  // namespace uflip
