// Mergeable quantile sketches: bounded-memory streaming summaries whose
// quantile estimates carry a rank-error guarantee and whose merge is an
// associative, commutative algebra -- sketch(A) merged with sketch(B)
// estimates the quantiles of A ++ B within the same bound as one sketch
// over the concatenation. That mergeability is what makes replicated
// experiments (ftl_compare --reps) statistically honest: each
// repetition summarizes its response times independently and the
// per-cell report merges the summaries instead of re-running anything.
//
// Two implementations share the interface:
//  * TDigest -- the merging t-digest (Dunning's scale-function
//    compaction). Centroid budget is proportional to the compression
//    parameter; accuracy concentrates at the tails, which is where
//    uFLIP's conclusions live (p95/p99 of response-time
//    distributions). Merging is exact-deterministic: both operand
//    orders compact the same sorted centroid union, so merge(a, b) and
//    merge(b, a) return identical quantiles.
//  * KllSketch -- a KLL-style compactor stack kept as a fallback with
//    uniform (rank-wise) accuracy. Compaction parity is derived from a
//    per-level counter rather than a coin, so it is deterministic too.
//
// Both are O(1) memory in the stream length (RetainedItems() is bounded
// by a function of the accuracy parameter alone) and neither allocates
// per Add on the hot path outside of amortized compactions.
#ifndef UFLIP_STATS_QUANTILE_SKETCH_H_
#define UFLIP_STATS_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace uflip {

enum class SketchKind { kTDigest, kKll };

const char* SketchKindName(SketchKind kind);

class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  virtual SketchKind kind() const = 0;

  /// Adds one sample. NaNs are ignored (a NaN response time is a bug
  /// upstream, not a quantile).
  virtual void Add(double x) = 0;

  /// Merges `other` into this sketch; `other` must be the same kind.
  /// The result summarizes the union of both streams.
  virtual void Merge(const QuantileSketch& other) = 0;

  /// The q-quantile estimate (q in [0, 1], clamped). Exact at q = 0 and
  /// q = 1 (the sketch tracks min/max exactly); 0 on an empty sketch.
  virtual double Quantile(double q) const = 0;

  virtual uint64_t count() const = 0;

  /// Values/centroids currently retained. Bounded by the accuracy
  /// parameter, independent of count() -- the O(1)-memory guarantee
  /// streaming replay relies on.
  virtual size_t RetainedItems() const = 0;

  /// Worst-case rank error: the returned Quantile(q) is the exact
  /// r-quantile of the stream for some |r - q| <= RankErrorBound().
  virtual double RankErrorBound() const = 0;

  virtual std::unique_ptr<QuantileSketch> Clone() const = 0;

  /// Factory with each kind's default accuracy parameter.
  static std::unique_ptr<QuantileSketch> Create(SketchKind kind);
};

/// Merging t-digest. `compression` is the centroid budget parameter
/// (delta); accuracy at quantile q scales like sqrt(q(1-q))/compression,
/// i.e. tightest at the tails.
class TDigest final : public QuantileSketch {
 public:
  /// Worst-case rank error pi/compression = ~0.8%: comfortably inside
  /// the 2% histogram cross-check threshold, ~800 centroids retained.
  static constexpr double kDefaultCompression = 400.0;

  explicit TDigest(double compression = kDefaultCompression);

  SketchKind kind() const override { return SketchKind::kTDigest; }
  void Add(double x) override;
  /// Adds `weight` co-located samples at `x` in one step (weight is a
  /// sample count and is rounded into count()). For pre-aggregated
  /// input -- e.g. synthesizing a digest from histogram buckets -- where
  /// calling Add() weight times would be wasteful. Deterministic like
  /// Add: the result depends only on the inserted (x, weight) multiset.
  void AddWeighted(double x, double weight);
  void Merge(const QuantileSketch& other) override;
  double Quantile(double q) const override;
  uint64_t count() const override { return count_; }
  size_t RetainedItems() const override {
    return centroids_.size() + buffer_.size() + samples_.size();
  }
  double RankErrorBound() const override;
  std::unique_ptr<QuantileSketch> Clone() const override;

  double compression() const { return compression_; }
  /// Compacted centroid count (flushes pending buffered samples).
  size_t CentroidCount() const;

 private:
  struct Centroid {
    double mean = 0;
    double weight = 0;
  };

  /// The k1 scale function: k(q) = delta/(2*pi) * asin(2q - 1).
  double ScaleK(double q) const;
  /// Its inverse: q(k) = (sin(2*pi*k / delta) + 1) / 2, clamped to the
  /// asin branch. Lets the compaction loop test a precomputed weight
  /// limit instead of evaluating asin per input centroid -- Flush is on
  /// the metrics hot path (amortized under every histogram Observe).
  double ScaleQ(double k) const;
  /// Sorts buffered samples into the centroid list and recompacts the
  /// whole union left-to-right (deterministic given the multiset).
  void Flush() const;

  double compression_;
  uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  // Quantile() is logically const but compacts lazily.
  mutable std::vector<Centroid> centroids_;  // sorted by mean after Flush
  mutable std::vector<double> samples_;      // Add() singletons
  mutable std::vector<Centroid> buffer_;     // Merge() insertions
  mutable std::vector<Centroid> scratch_;    // Flush working set, reused
};

/// KLL-style compactor stack: level i holds values of weight 2^i; a
/// full level sorts itself and promotes every other value (parity from
/// a per-level counter, so compaction is deterministic) to level i+1.
/// Capacities decay geometrically below the top level.
class KllSketch final : public QuantileSketch {
 public:
  static constexpr size_t kDefaultK = 200;

  explicit KllSketch(size_t k = kDefaultK);

  SketchKind kind() const override { return SketchKind::kKll; }
  void Add(double x) override;
  void Merge(const QuantileSketch& other) override;
  double Quantile(double q) const override;
  uint64_t count() const override { return count_; }
  size_t RetainedItems() const override;
  double RankErrorBound() const override;
  std::unique_ptr<QuantileSketch> Clone() const override;

  size_t k() const { return k_; }

 private:
  /// Capacity of `level` in a stack currently `depth` levels deep.
  size_t LevelCapacity(size_t level, size_t depth) const;
  /// Compacts every over-capacity level bottom-up.
  void Compress();

  size_t k_;
  uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<std::vector<double>> levels_;
  std::vector<uint32_t> parity_;  // per-level compaction counter
};

}  // namespace uflip

#endif  // UFLIP_STATS_QUANTILE_SKETCH_H_
