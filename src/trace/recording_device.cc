#include "src/trace/recording_device.h"

#include <utility>

namespace uflip {

RecordingDevice::RecordingDevice(BlockDevice* inner) : inner_(inner) {
  trace_.meta.source = inner_->name();
  trace_.meta.capacity_bytes = inner_->capacity_bytes();
}

StatusOr<double> RecordingDevice::SubmitAt(uint64_t t_us,
                                           const IoRequest& req) {
  StatusOr<double> rt = inner_->SubmitAt(t_us, req);
  if (rt.ok()) {
    trace_.events.push_back(
        TraceEvent{t_us, req.offset, req.size, req.mode, *rt});
  }
  return rt;
}

Trace RecordingDevice::TakeTrace() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.meta = out.meta;
  return out;
}

}  // namespace uflip
