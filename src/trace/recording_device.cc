#include "src/trace/recording_device.h"

#include <utility>

namespace uflip {

// ---------------------------------------------------------------------
// TraceCaptureSink
// ---------------------------------------------------------------------

TraceCaptureSink::TraceCaptureSink(TraceMeta meta) {
  trace_.meta = std::move(meta);
}

Status TraceCaptureSink::StreamTo(const std::string& path,
                                  TraceFormat format,
                                  TraceCompression compression) {
  if (writer_.has_value()) {
    return Status::FailedPrecondition("already streaming");
  }
  StatusOr<TraceWriter> writer =
      TraceWriter::Open(path, format, trace_.meta, compression);
  if (!writer.ok()) return writer.status();
  writer_.emplace(std::move(*writer));
  write_status_ = Status::Ok();
  return Status::Ok();
}

void TraceCaptureSink::Emit(const TraceEvent& event) {
  ++captured_;
  if (writer_.has_value()) {
    Status s = writer_->Append(event);
    if (!s.ok() && write_status_.ok()) write_status_ = s;
    return;
  }
  trace_.events.push_back(event);
}

Status TraceCaptureSink::Finish() {
  if (!writer_.has_value()) return write_status_;
  Status close = writer_->Close();
  writer_.reset();
  if (!write_status_.ok()) return write_status_;
  return close;
}

Trace TraceCaptureSink::TakeTrace() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.meta = out.meta;
  return out;
}

void TraceCaptureSink::Reset() {
  trace_.events.clear();
  // Streamed events are already in the file and cannot be dropped;
  // events_captured() keeps describing the file's content. Buffered
  // captures restart from zero.
  if (!writer_.has_value()) captured_ = 0;
}

Status TraceCaptureSink::WriteTo(const std::string& path, TraceFormat format,
                                 TraceCompression compression) const {
  if (writer_.has_value()) {
    return Status::FailedPrecondition(
        "streaming capture has no buffered trace to write");
  }
  return WriteTrace(path, format, trace_, compression);
}

// ---------------------------------------------------------------------
// RecordingDevice
// ---------------------------------------------------------------------

namespace {
TraceMeta MetaFor(const std::string& source, uint64_t capacity_bytes) {
  TraceMeta meta;
  meta.source = source;
  meta.capacity_bytes = capacity_bytes;
  return meta;
}
}  // namespace

RecordingDevice::RecordingDevice(BlockDevice* inner)
    : inner_(inner),
      sink_(MetaFor(inner->name(), inner->capacity_bytes())) {}

StatusOr<double> RecordingDevice::SubmitAt(uint64_t t_us,
                                           const IoRequest& req) {
  StatusOr<double> rt = inner_->SubmitAt(t_us, req);
  if (rt.ok()) {
    sink_.Emit(TraceEvent{t_us, req.offset, req.size, req.mode, *rt});
  }
  return rt;
}

// ---------------------------------------------------------------------
// AsyncRecordingDevice
// ---------------------------------------------------------------------

AsyncRecordingDevice::AsyncRecordingDevice(AsyncBlockDevice* inner)
    : inner_(inner),
      sink_(MetaFor(inner->name(), inner->capacity_bytes())) {}

StatusOr<IoToken> AsyncRecordingDevice::Enqueue(uint64_t t_us,
                                                const IoRequest& req) {
  StatusOr<IoToken> token = inner_->Enqueue(t_us, req);
  if (token.ok()) {
    window_.push_back(PendingEvent{
        *token, TraceEvent{t_us, req.offset, req.size, req.mode, 0}, false});
  }
  return token;
}

std::vector<IoCompletion> AsyncRecordingDevice::Capture(
    std::vector<IoCompletion> records) {
  for (const IoCompletion& c : records) {
    for (PendingEvent& p : window_) {
      if (p.token != c.token) continue;
      p.event.rt_us = c.rt_us;
      p.resolved = true;
      break;
    }
  }
  // Emit in enqueue order so submit times stay nondecreasing.
  while (!window_.empty() && window_.front().resolved) {
    sink_.Emit(window_.front().event);
    window_.pop_front();
  }
  return records;
}

std::vector<IoCompletion> AsyncRecordingDevice::PollCompletions() {
  return Capture(inner_->PollCompletions());
}

std::vector<IoCompletion> AsyncRecordingDevice::DrainUntil(uint64_t t_us) {
  return Capture(inner_->DrainUntil(t_us));
}

void AsyncRecordingDevice::Reset() {
  sink_.Reset();
  window_.clear();
}

}  // namespace uflip
