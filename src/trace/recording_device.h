// BlockDevice decorator that captures every IO flowing through it as a
// TraceEvent (submission time, offset, size, mode, response time). The
// device stays a black box (Section 2.3): recording observes the same
// per-IO measurements the benchmark already takes, so any existing
// runner or micro-benchmark can be pointed at a RecordingDevice
// unchanged and its workload captured for later replay.
#ifndef UFLIP_TRACE_RECORDING_DEVICE_H_
#define UFLIP_TRACE_RECORDING_DEVICE_H_

#include <string>

#include "src/device/block_device.h"
#include "src/trace/trace_event.h"
#include "src/trace/trace_io.h"
#include "src/util/status.h"

namespace uflip {

class RecordingDevice : public BlockDevice {
 public:
  /// Wraps `inner` (not owned; must outlive the recorder).
  explicit RecordingDevice(BlockDevice* inner);

  uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override;
  Clock* clock() override { return inner_->clock(); }
  std::string name() const override { return inner_->name() + "+rec"; }

  /// The trace captured so far. Events are in submission-call order,
  /// which every runner keeps nondecreasing in time.
  const Trace& trace() const { return trace_; }

  /// Moves the captured trace out and starts a fresh recording.
  Trace TakeTrace();

  /// Drops everything captured so far (e.g. after device preparation,
  /// so state-enforcement traffic does not pollute the workload trace).
  void Reset() { trace_.events.clear(); }

  /// Writes the captured trace to `path`.
  Status WriteTo(const std::string& path, TraceFormat format) const {
    return WriteTrace(path, format, trace_);
  }

  BlockDevice* inner() { return inner_; }

 private:
  BlockDevice* inner_;
  Trace trace_;
};

}  // namespace uflip

#endif  // UFLIP_TRACE_RECORDING_DEVICE_H_
