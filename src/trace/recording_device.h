// Device decorators that capture every IO flowing through them as
// TraceEvents (submission time, offset, size, mode, response time). The
// device stays a black box (Section 2.3): recording observes the same
// per-IO measurements the benchmark already takes, so any existing
// runner or micro-benchmark can be pointed at a RecordingDevice
// unchanged and its workload captured for later replay.
//
// Two capture modes:
//  * buffered (default): events accumulate in memory; trace() /
//    WriteTo() expose them.
//  * streaming: after StreamTo(), each event is appended to a
//    TraceWriter the moment its response time is known, so multi-GB
//    captures never hold the whole trace in memory. Finish() closes the
//    file.
//
// AsyncRecordingDevice is the queued-API variant: it captures the
// Enqueue (submit) timestamp and fills the response time from the
// completion record, so traces of queued workloads carry submit vs.
// complete times (queue wait included) and replay open-loop exactly.
#ifndef UFLIP_TRACE_RECORDING_DEVICE_H_
#define UFLIP_TRACE_RECORDING_DEVICE_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/device/async_device.h"
#include "src/device/block_device.h"
#include "src/trace/trace_event.h"
#include "src/trace/trace_io.h"
#include "src/util/status.h"

namespace uflip {

/// Shared capture back-end of the two recording decorators: buffers
/// events in memory or, once StreamTo() is called, flushes each event
/// through a TraceWriter incrementally.
class TraceCaptureSink {
 public:
  explicit TraceCaptureSink(TraceMeta meta);

  /// Switches to streaming capture at `path`; events emitted so far stay
  /// buffered (call before the workload for a pure streaming capture).
  /// The default compression (kAuto) gzip-frames ".gz" paths as they
  /// stream.
  [[nodiscard]] Status StreamTo(const std::string& path, TraceFormat format,
                  TraceCompression compression = TraceCompression::kAuto);

  /// Records one finished event (buffered or streamed).
  void Emit(const TraceEvent& event);

  /// Closes the streaming writer (no-op when buffering) and reports the
  /// first write error, if any.
  [[nodiscard]] Status Finish();

  bool streaming() const { return writer_.has_value(); }
  uint64_t events_captured() const { return captured_; }

  const Trace& trace() const { return trace_; }
  Trace TakeTrace();
  void Reset();
  [[nodiscard]] Status WriteTo(const std::string& path, TraceFormat format,
                 TraceCompression compression = TraceCompression::kAuto)
      const;

 private:
  Trace trace_;
  std::optional<TraceWriter> writer_;
  Status write_status_ = Status::Ok();
  uint64_t captured_ = 0;
};

class RecordingDevice : public BlockDevice {
 public:
  /// Wraps `inner` (not owned; must outlive the recorder).
  explicit RecordingDevice(BlockDevice* inner);

  uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  [[nodiscard]] StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override;
  Clock* clock() override { return inner_->clock(); }
  std::string name() const override { return inner_->name() + "+rec"; }

  /// Streams subsequent events to `path` instead of buffering them.
  [[nodiscard]] Status StreamTo(const std::string& path, TraceFormat format,
                  TraceCompression compression = TraceCompression::kAuto) {
    return sink_.StreamTo(path, format, compression);
  }
  /// Closes the streaming capture; returns the first write error.
  [[nodiscard]] Status Finish() { return sink_.Finish(); }
  uint64_t events_captured() const { return sink_.events_captured(); }

  /// The trace captured so far (buffered mode). Events are in
  /// submission-call order, which every runner keeps nondecreasing in
  /// time.
  const Trace& trace() const { return sink_.trace(); }

  /// Moves the captured trace out and starts a fresh recording.
  Trace TakeTrace() { return sink_.TakeTrace(); }

  /// Drops the buffered capture (e.g. after device preparation, so
  /// state-enforcement traffic does not pollute the workload trace).
  /// Streamed events are already in the file and stay there: to exclude
  /// preparation traffic from a streaming capture, call StreamTo()
  /// after preparing the device instead.
  void Reset() { sink_.Reset(); }

  /// Writes the buffered trace to `path`.
  [[nodiscard]] Status WriteTo(const std::string& path, TraceFormat format,
                 TraceCompression compression =
                     TraceCompression::kAuto) const {
    return sink_.WriteTo(path, format, compression);
  }

  BlockDevice* inner() { return inner_; }

 private:
  BlockDevice* inner_;
  TraceCaptureSink sink_;
};

/// AsyncBlockDevice decorator: captures the submit timestamp at Enqueue
/// and the response time from the completion record as it is popped, so
/// the captured trace reproduces the queued workload (submit times are
/// the enqueue schedule; rt_us includes queue wait). Events are emitted
/// in enqueue order, which keeps submit times nondecreasing even when
/// completions pop out of order.
class AsyncRecordingDevice : public AsyncBlockDevice {
 public:
  /// Wraps `inner` (not owned; must outlive the recorder).
  explicit AsyncRecordingDevice(AsyncBlockDevice* inner);

  uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  uint32_t queue_depth() const override { return inner_->queue_depth(); }
  [[nodiscard]] StatusOr<IoToken> Enqueue(uint64_t t_us, const IoRequest& req) override;
  std::vector<IoCompletion> PollCompletions() override;
  std::vector<IoCompletion> DrainUntil(uint64_t t_us) override;
  size_t pending() const override { return inner_->pending(); }
  Clock* clock() override { return inner_->clock(); }
  std::string name() const override { return inner_->name() + "+rec"; }

  [[nodiscard]] Status StreamTo(const std::string& path, TraceFormat format,
                  TraceCompression compression = TraceCompression::kAuto) {
    return sink_.StreamTo(path, format, compression);
  }
  [[nodiscard]] Status Finish() { return sink_.Finish(); }
  uint64_t events_captured() const { return sink_.events_captured(); }

  const Trace& trace() const { return sink_.trace(); }
  Trace TakeTrace() { return sink_.TakeTrace(); }
  /// Drops buffered events and forgets IOs still in flight (their
  /// completions will not be captured).
  void Reset();
  [[nodiscard]] Status WriteTo(const std::string& path, TraceFormat format,
                 TraceCompression compression =
                     TraceCompression::kAuto) const {
    return sink_.WriteTo(path, format, compression);
  }

  AsyncBlockDevice* inner() { return inner_; }

 private:
  struct PendingEvent {
    IoToken token = 0;
    TraceEvent event;
    bool resolved = false;
  };

  /// Fills response times from `records` and emits the resolved prefix
  /// of the enqueue-ordered window.
  std::vector<IoCompletion> Capture(std::vector<IoCompletion> records);

  AsyncBlockDevice* inner_;
  TraceCaptureSink sink_;
  std::deque<PendingEvent> window_;
};

}  // namespace uflip

#endif  // UFLIP_TRACE_RECORDING_DEVICE_H_
