#include "src/trace/synthetic.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <string>

namespace uflip {

namespace {

/// Exponential inter-arrival gap with the given mean (0 mean = 0 gap).
uint64_t ExpGapUs(Rng* rng, uint64_t mean_us) {
  if (mean_us == 0) return 0;
  // Inverse CDF; UniformDouble() < 1 keeps the log argument positive.
  double u = rng->UniformDouble();
  return static_cast<uint64_t>(-static_cast<double>(mean_us) *
                               std::log(1.0 - u));
}

Status ValidateGeometry(uint64_t capacity_bytes, uint32_t io_size,
                        const char* what) {
  if (io_size == 0) {
    return Status::InvalidArgument(std::string(what) + ": io_size == 0");
  }
  if (capacity_bytes / io_size == 0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": capacity smaller than one IO");
  }
  return Status::Ok();
}

/// SplitMix64 finalizer: a well-mixed 64-bit bijection used as the
/// Feistel round function (only its low bits are kept, so it need not
/// be invertible there -- Feistel supplies the invertibility).
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Exact zeta prefix length: long enough that the Euler-Maclaurin tail
/// error is ~1e-9 relative, short enough to be effectively free.
constexpr uint64_t kZetaExactPrefix = 10000;

}  // namespace

// ---------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------

double ZetaN(uint64_t n, double theta) {
  uint64_t exact = std::min(n, kZetaExactPrefix);
  double z = 0;
  for (uint64_t i = 1; i <= exact; ++i) {
    z += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Midpoint-rule tail: sum_{i=k+1..n} i^-theta ~
    // integral_{k+1/2}^{n+1/2} x^-theta dx (logarithmic at theta = 1).
    double lo = static_cast<double>(exact) + 0.5;
    double hi = static_cast<double>(n) + 0.5;
    if (theta == 1.0) {
      z += std::log(hi / lo);
    } else {
      double p = 1.0 - theta;
      z += (std::pow(hi, p) - std::pow(lo, p)) / p;
    }
  }
  return z;
}

ZipfianLba::ZipfianLba(uint64_t locations, double theta, uint64_t seed)
    : n_(std::max<uint64_t>(locations, 1)), theta_(theta), rng_(seed) {
  if (theta_ > 0) {
    zetan_ = ZetaN(n_, theta_);
    double zeta2 = 1.0 + std::pow(0.5, theta_);  // exact first two terms
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    half_pow_theta_ = std::pow(0.5, theta_);
  }
  // Feistel domain: the smallest even-split power of two covering n_,
  // i.e. 2^(2*half_bits_) >= n_ (and < 4*n_, so the cycle walk below
  // lands inside [0, n_) within a handful of iterations).
  uint32_t bits = n_ > 1 ? std::bit_width(n_ - 1) : 1;
  half_bits_ = std::max(1u, (bits + 1) / 2);
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  for (uint64_t& k : keys_) k = rng_.NextU64();
}

uint64_t ZipfianLba::Scatter(uint64_t rank) const {
  if (n_ <= 1) return 0;
  // Cycle-walked Feistel permutation: a 4-round Feistel network is a
  // bijection on [0, 2^(2*half_bits_)); re-applying it until the value
  // lands in [0, n_) yields a seeded bijection on [0, n_) with O(1)
  // state -- the replacement for the old O(n) shuffled lookup table.
  uint64_t x = rank;
  do {
    uint64_t left = x >> half_bits_;
    uint64_t right = x & half_mask_;
    for (uint64_t key : keys_) {
      uint64_t next_right = left ^ (Mix64(right + key) & half_mask_);
      left = right;
      right = next_right;
    }
    x = (left << half_bits_) | right;
  } while (x >= n_);
  return x;
}

uint64_t ZipfianLba::Next() {
  uint64_t rank;
  if (theta_ <= 0) {
    rank = rng_.UniformU64(n_);
  } else {
    // Gray et al. / YCSB rejection-free Zipf sampler.
    double u = rng_.UniformDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + half_pow_theta_) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) rank = n_ - 1;
    }
  }
  return Scatter(rank);
}

Status ZipfianTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(ValidateGeometry(capacity_bytes, io_size, "zipfian"));
  if (theta < 0 || theta >= 1) {
    return Status::InvalidArgument("zipfian: theta must be in [0, 1)");
  }
  if (write_fraction < 0 || write_fraction > 1) {
    return Status::InvalidArgument("zipfian: write_fraction not in [0, 1]");
  }
  if (io_count == 0) return Status::InvalidArgument("zipfian: io_count == 0");
  return Status::Ok();
}

ZipfianEventSource::ZipfianEventSource(const ZipfianTraceConfig& cfg)
    : cfg_(cfg),
      invalid_(cfg.Validate()),
      lba_(cfg.io_size ? cfg.capacity_bytes / cfg.io_size : 1, cfg.theta,
           cfg.seed),
      rng_(cfg.seed ^ 0x5A1Full) {
  char label[48];
  std::snprintf(label, sizeof(label), "zipfian(theta=%.2f)", cfg_.theta);
  meta_.source = label;
  meta_.capacity_bytes = cfg_.capacity_bytes;
}

std::optional<uint64_t> ZipfianEventSource::SizeHint() const {
  return cfg_.io_count;
}

StatusOr<bool> ZipfianEventSource::Next(TraceEvent* event) {
  if (!invalid_.ok()) return invalid_;
  if (emitted_ >= cfg_.io_count) return false;
  now_us_ += ExpGapUs(&rng_, cfg_.mean_gap_us);
  IoMode mode = rng_.Bernoulli(cfg_.write_fraction) ? IoMode::kWrite
                                                    : IoMode::kRead;
  *event = TraceEvent{now_us_, lba_.Next() * cfg_.io_size, cfg_.io_size,
                      mode, 0};
  ++emitted_;
  return true;
}

StatusOr<Trace> GenerateZipfianTrace(const ZipfianTraceConfig& cfg) {
  ZipfianEventSource source(cfg);
  return MaterializeTrace(&source);
}

// ---------------------------------------------------------------------
// OLTP read-modify-write
// ---------------------------------------------------------------------

Status OltpTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(ValidateGeometry(capacity_bytes, io_size, "oltp"));
  if (read_only_fraction < 0 || read_only_fraction > 1) {
    return Status::InvalidArgument("oltp: read_only_fraction not in [0, 1]");
  }
  if (transactions == 0) {
    return Status::InvalidArgument("oltp: transactions == 0");
  }
  return Status::Ok();
}

OltpEventSource::OltpEventSource(const OltpTraceConfig& cfg)
    : cfg_(cfg), invalid_(cfg.Validate()), rng_(cfg.seed) {
  meta_.source = "oltp(rmw)";
  meta_.capacity_bytes = cfg_.capacity_bytes;
  pages_ = cfg_.io_size ? cfg_.capacity_bytes / cfg_.io_size : 0;
}

StatusOr<bool> OltpEventSource::Next(TraceEvent* event) {
  if (!invalid_.ok()) return invalid_;
  if (write_back_pending_) {
    // The write-back of the page just read (same timestamp: the
    // transaction issues it as soon as the read returns).
    write_back_pending_ = false;
    *event = TraceEvent{now_us_, pending_offset_, cfg_.io_size,
                        IoMode::kWrite, 0};
    return true;
  }
  if (done_ >= cfg_.transactions) return false;
  ++done_;
  now_us_ += ExpGapUs(&rng_, cfg_.mean_gap_us);
  pending_offset_ = rng_.UniformU64(pages_) * cfg_.io_size;
  *event = TraceEvent{now_us_, pending_offset_, cfg_.io_size,
                      IoMode::kRead, 0};
  write_back_pending_ = !rng_.Bernoulli(cfg_.read_only_fraction);
  return true;
}

StatusOr<Trace> GenerateOltpTrace(const OltpTraceConfig& cfg) {
  OltpEventSource source(cfg);
  return MaterializeTrace(&source);
}

// ---------------------------------------------------------------------
// Multi-stream sequential interleave
// ---------------------------------------------------------------------

Status MultiStreamTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(
      ValidateGeometry(capacity_bytes, io_size, "multistream"));
  if (streams == 0) return Status::InvalidArgument("multistream: streams == 0");
  if (ios_per_stream == 0) {
    return Status::InvalidArgument("multistream: ios_per_stream == 0");
  }
  uint64_t slice = capacity_bytes / streams / io_size;
  if (slice == 0) {
    return Status::InvalidArgument(
        "multistream: per-stream slice smaller than one IO");
  }
  return Status::Ok();
}

MultiStreamEventSource::MultiStreamEventSource(
    const MultiStreamTraceConfig& cfg)
    : cfg_(cfg), invalid_(cfg.Validate()) {
  meta_.source = "multistream(" + std::to_string(cfg_.streams) + ")";
  meta_.capacity_bytes = cfg_.capacity_bytes;
  if (invalid_.ok()) {
    // Each stream appends sequentially within its own IOSize-aligned
    // slice, wrapping when the slice fills; submissions interleave
    // round-robin, the pattern a log-structured writer per stream makes.
    slice_ios_ = cfg_.capacity_bytes / cfg_.streams / cfg_.io_size;
    slice_bytes_ = slice_ios_ * cfg_.io_size;
  }
}

std::optional<uint64_t> MultiStreamEventSource::SizeHint() const {
  return static_cast<uint64_t>(cfg_.streams) * cfg_.ios_per_stream;
}

StatusOr<bool> MultiStreamEventSource::Next(TraceEvent* event) {
  if (!invalid_.ok()) return invalid_;
  if (round_ >= cfg_.ios_per_stream) return false;
  uint64_t offset =
      stream_ * slice_bytes_ + (round_ % slice_ios_) * cfg_.io_size;
  *event = TraceEvent{now_us_, offset, cfg_.io_size, IoMode::kWrite, 0};
  now_us_ += cfg_.gap_us;
  if (++stream_ == cfg_.streams) {
    stream_ = 0;
    ++round_;
  }
  return true;
}

StatusOr<Trace> GenerateMultiStreamTrace(const MultiStreamTraceConfig& cfg) {
  MultiStreamEventSource source(cfg);
  return MaterializeTrace(&source);
}

}  // namespace uflip
