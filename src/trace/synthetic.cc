#include "src/trace/synthetic.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace uflip {

namespace {

/// Exponential inter-arrival gap with the given mean (0 mean = 0 gap).
uint64_t ExpGapUs(Rng* rng, uint64_t mean_us) {
  if (mean_us == 0) return 0;
  // Inverse CDF; UniformDouble() < 1 keeps the log argument positive.
  double u = rng->UniformDouble();
  return static_cast<uint64_t>(-static_cast<double>(mean_us) *
                               std::log(1.0 - u));
}

Status ValidateGeometry(uint64_t capacity_bytes, uint32_t io_size,
                        const char* what) {
  if (io_size == 0) {
    return Status::InvalidArgument(std::string(what) + ": io_size == 0");
  }
  if (capacity_bytes / io_size == 0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": capacity smaller than one IO");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------

ZipfianLba::ZipfianLba(uint64_t locations, double theta, uint64_t seed)
    : n_(locations), theta_(theta), rng_(seed) {
  if (theta_ > 0) {
    double zeta2 = 0;
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
      if (i == 2) zeta2 = zetan_;
    }
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    half_pow_theta_ = std::pow(0.5, theta_);
  }
  scatter_ = rng_.Permutation(n_);
}

uint64_t ZipfianLba::Next() {
  uint64_t rank;
  if (theta_ <= 0) {
    rank = rng_.UniformU64(n_);
  } else {
    // Gray et al. / YCSB rejection-free Zipf sampler.
    double u = rng_.UniformDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + half_pow_theta_) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) rank = n_ - 1;
    }
  }
  return scatter_[rank];
}

Status ZipfianTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(ValidateGeometry(capacity_bytes, io_size, "zipfian"));
  if (theta < 0 || theta >= 1) {
    return Status::InvalidArgument("zipfian: theta must be in [0, 1)");
  }
  if (write_fraction < 0 || write_fraction > 1) {
    return Status::InvalidArgument("zipfian: write_fraction not in [0, 1]");
  }
  if (io_count == 0) return Status::InvalidArgument("zipfian: io_count == 0");
  return Status::Ok();
}

StatusOr<Trace> GenerateZipfianTrace(const ZipfianTraceConfig& cfg) {
  UFLIP_RETURN_IF_ERROR(cfg.Validate());
  uint64_t locations = cfg.capacity_bytes / cfg.io_size;
  ZipfianLba lba(locations, cfg.theta, cfg.seed);
  Rng rng(cfg.seed ^ 0x5A1Full);

  char label[48];
  std::snprintf(label, sizeof(label), "zipfian(theta=%.2f)", cfg.theta);
  Trace trace;
  trace.meta.source = label;
  trace.meta.capacity_bytes = cfg.capacity_bytes;
  trace.events.reserve(cfg.io_count);
  uint64_t now_us = 0;
  for (uint32_t i = 0; i < cfg.io_count; ++i) {
    now_us += ExpGapUs(&rng, cfg.mean_gap_us);
    IoMode mode = rng.Bernoulli(cfg.write_fraction) ? IoMode::kWrite
                                                    : IoMode::kRead;
    trace.events.push_back(TraceEvent{
        now_us, lba.Next() * cfg.io_size, cfg.io_size, mode, 0});
  }
  return trace;
}

// ---------------------------------------------------------------------
// OLTP read-modify-write
// ---------------------------------------------------------------------

Status OltpTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(ValidateGeometry(capacity_bytes, io_size, "oltp"));
  if (read_only_fraction < 0 || read_only_fraction > 1) {
    return Status::InvalidArgument("oltp: read_only_fraction not in [0, 1]");
  }
  if (transactions == 0) {
    return Status::InvalidArgument("oltp: transactions == 0");
  }
  return Status::Ok();
}

StatusOr<Trace> GenerateOltpTrace(const OltpTraceConfig& cfg) {
  UFLIP_RETURN_IF_ERROR(cfg.Validate());
  uint64_t pages = cfg.capacity_bytes / cfg.io_size;
  Rng rng(cfg.seed);

  Trace trace;
  trace.meta.source = "oltp(rmw)";
  trace.meta.capacity_bytes = cfg.capacity_bytes;
  trace.events.reserve(cfg.transactions * 2);
  uint64_t now_us = 0;
  for (uint32_t t = 0; t < cfg.transactions; ++t) {
    now_us += ExpGapUs(&rng, cfg.mean_gap_us);
    uint64_t offset = rng.UniformU64(pages) * cfg.io_size;
    trace.events.push_back(
        TraceEvent{now_us, offset, cfg.io_size, IoMode::kRead, 0});
    if (!rng.Bernoulli(cfg.read_only_fraction)) {
      // The write-back of the page just read (same timestamp: the
      // transaction issues it as soon as the read returns).
      trace.events.push_back(
          TraceEvent{now_us, offset, cfg.io_size, IoMode::kWrite, 0});
    }
  }
  return trace;
}

// ---------------------------------------------------------------------
// Multi-stream sequential interleave
// ---------------------------------------------------------------------

Status MultiStreamTraceConfig::Validate() const {
  UFLIP_RETURN_IF_ERROR(
      ValidateGeometry(capacity_bytes, io_size, "multistream"));
  if (streams == 0) return Status::InvalidArgument("multistream: streams == 0");
  if (ios_per_stream == 0) {
    return Status::InvalidArgument("multistream: ios_per_stream == 0");
  }
  uint64_t slice = capacity_bytes / streams / io_size;
  if (slice == 0) {
    return Status::InvalidArgument(
        "multistream: per-stream slice smaller than one IO");
  }
  return Status::Ok();
}

StatusOr<Trace> GenerateMultiStreamTrace(const MultiStreamTraceConfig& cfg) {
  UFLIP_RETURN_IF_ERROR(cfg.Validate());
  // Each stream appends sequentially within its own IOSize-aligned
  // slice, wrapping when the slice fills; submissions interleave
  // round-robin, the pattern a log-structured writer per stream makes.
  uint64_t slice_ios = cfg.capacity_bytes / cfg.streams / cfg.io_size;
  uint64_t slice_bytes = slice_ios * cfg.io_size;

  Trace trace;
  trace.meta.source = "multistream(" + std::to_string(cfg.streams) + ")";
  trace.meta.capacity_bytes = cfg.capacity_bytes;
  trace.events.reserve(static_cast<size_t>(cfg.streams) * cfg.ios_per_stream);
  uint64_t now_us = 0;
  for (uint32_t i = 0; i < cfg.ios_per_stream; ++i) {
    for (uint32_t s = 0; s < cfg.streams; ++s) {
      uint64_t offset = s * slice_bytes + (i % slice_ios) * cfg.io_size;
      trace.events.push_back(
          TraceEvent{now_us, offset, cfg.io_size, IoMode::kWrite, 0});
      now_us += cfg.gap_us;
    }
  }
  return trace;
}

}  // namespace uflip
