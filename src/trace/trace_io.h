// On-disk trace formats: a human-readable CSV (inspectable, diffable,
// loadable into the same tooling as the per-IO response-time dumps the
// paper publishes) and a compact binary format (32 bytes/event) for
// long recordings. Both round-trip byte-exactly: writing a trace that
// was read back produces an identical file. Either format can
// additionally be gzip-framed (suffix ".gz"): the writer deflates
// through zlib as it streams, and the reader sniffs the gzip magic and
// inflates transparently, so multi-GB recordings stay small on disk
// without ever being materialized.
//
// CSV layout:
//   # uflip-trace v1
//   # source=<device or generator name>
//   # capacity_bytes=<LBA domain of the events>
//   submit_us,offset,size,mode,rt_us
//   0,0,32768,read,263.840
//
// Binary layout (little-endian, native x86 field order):
//   magic "UFTRACE1" | u32 source_len | source bytes | u64 capacity
//   | u64 event_count | event_count * (u64 submit, u64 offset,
//   u32 size, u32 mode, f64 rt)
// A gzip-framed binary trace cannot seek back to patch the count at
// Close(), so it stores the sentinel UINT64_MAX ("unknown; read until
// EOF") instead; the reader then treats a clean EOF at a record
// boundary as the end of the trace and a partial record as corruption.
#ifndef UFLIP_TRACE_TRACE_IO_H_
#define UFLIP_TRACE_TRACE_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/trace/event_source.h"
#include "src/trace/trace_event.h"
#include "src/util/status.h"

namespace uflip {

enum class TraceFormat { kCsv, kBinary };

const char* TraceFormatName(TraceFormat f);

/// Gzip framing around either format. kAuto resolves from the file
/// extension at TraceWriter::Open (readers always sniff the file's
/// leading bytes instead).
enum class TraceCompression { kAuto, kNone, kGzip };

const char* TraceCompressionName(TraceCompression c);

/// True when gzip support was compiled in (zlib found at build time).
bool GzipSupported();

/// Picks a format from a file extension, looking through a trailing
/// ".gz": ".csv" / ".csv.gz" is CSV, anything else (".utr", ".bin",
/// ".utr.gz", ...) is binary.
TraceFormat FormatForPath(const std::string& path);

/// Picks the framing from a file extension: ".gz" is gzip.
TraceCompression CompressionForPath(const std::string& path);

/// Streams events to a trace file one at a time (WriteTrace() below is
/// the whole-trace convenience wrapper; RecordingDevice::StreamTo
/// flushes a live capture through one of these incrementally).
class TraceWriter {
 public:
  /// Opens `path` for writing (truncating) and emits the header.
  [[nodiscard]] static StatusOr<TraceWriter> Open(
      const std::string& path, TraceFormat format, const TraceMeta& meta,
      TraceCompression compression = TraceCompression::kAuto);

  // Defined out of line: members hold a pointer-to-incomplete Output.
  TraceWriter(TraceWriter&&) noexcept;
  TraceWriter& operator=(TraceWriter&&) noexcept;
  ~TraceWriter();

  [[nodiscard]] Status Append(const TraceEvent& event);

  /// Finalizes the file (seekable binary: patches the event count) and
  /// closes it.
  [[nodiscard]] Status Close();

  uint64_t events_written() const { return count_; }
  TraceFormat format() const { return format_; }
  TraceCompression compression() const { return compression_; }

  struct Output;  // byte sink: plain file or gzip-deflating file

 private:
  TraceWriter(std::unique_ptr<Output> out, TraceFormat format,
              TraceCompression compression, uint64_t count_pos);

  std::unique_ptr<Output> out_;
  TraceFormat format_;
  TraceCompression compression_;
  uint64_t count_pos_;  // seekable binary: where the event count lives
  uint64_t count_ = 0;
};

/// Streams events back from a trace file; gzip framing and the inner
/// format are sniffed from the file's first bytes, so readers need not
/// know how a trace was written. TraceReader is the streaming
/// EventSource: replaying straight from one keeps peak memory
/// independent of the trace length.
class TraceReader : public EventSource {
 public:
  [[nodiscard]] static StatusOr<TraceReader> Open(const std::string& path);

  // Defined out of line: members hold a pointer-to-incomplete Input.
  TraceReader(TraceReader&&) noexcept;
  TraceReader& operator=(TraceReader&&) noexcept;
  ~TraceReader() override;

  const TraceMeta& meta() const override { return meta_; }
  TraceFormat format() const { return format_; }
  TraceCompression compression() const { return compression_; }

  /// Events still to be read, when the header counted them.
  std::optional<uint64_t> SizeHint() const override;

  /// Pulls the next event: Ok(true) fills *event, Ok(false) is the
  /// clean end of the trace (explicitly distinct from any error).
  /// Malformed content (bad mode, non-numeric fields, truncation) is
  /// Corruption, tagged with "<path> line N" for CSV and the event
  /// index for binary.
  [[nodiscard]] StatusOr<bool> Next(TraceEvent* event) override;

  struct Input;  // byte source: plain file or gzip-inflating file

 private:
  TraceReader(std::unique_ptr<Input> in, TraceFormat format,
              TraceCompression compression, std::string path, TraceMeta meta,
              uint64_t remaining, uint64_t line);

  [[nodiscard]] StatusOr<bool> NextCsv(TraceEvent* event);
  [[nodiscard]] StatusOr<bool> NextBinary(TraceEvent* event);

  std::unique_ptr<Input> in_;
  TraceFormat format_;
  TraceCompression compression_;
  std::string path_;    // for error messages
  TraceMeta meta_;
  uint64_t remaining_ = 0;  // binary: events left (kUnknownCount = EOF-driven)
  uint64_t read_ = 0;       // events returned so far
  uint64_t line_ = 0;       // CSV: current line, for error messages
};

/// Writes a whole trace to `path`.
[[nodiscard]] Status WriteTrace(const std::string& path, TraceFormat format,
                  const Trace& trace,
                  TraceCompression compression = TraceCompression::kAuto);

/// Reads and validates a whole trace (any format) from `path`.
[[nodiscard]] StatusOr<Trace> ReadTrace(const std::string& path);

}  // namespace uflip

#endif  // UFLIP_TRACE_TRACE_IO_H_
