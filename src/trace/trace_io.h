// On-disk trace formats: a human-readable CSV (inspectable, diffable,
// loadable into the same tooling as the per-IO response-time dumps the
// paper publishes) and a compact binary format (32 bytes/event) for
// long recordings. Both round-trip byte-exactly: writing a trace that
// was read back produces an identical file.
//
// CSV layout:
//   # uflip-trace v1
//   # source=<device or generator name>
//   # capacity_bytes=<LBA domain of the events>
//   submit_us,offset,size,mode,rt_us
//   0,0,32768,read,263.840
//
// Binary layout (little-endian, native x86 field order):
//   magic "UFTRACE1" | u32 source_len | source bytes | u64 capacity
//   | u64 event_count | event_count * (u64 submit, u64 offset,
//   u32 size, u32 mode, f64 rt)
#ifndef UFLIP_TRACE_TRACE_IO_H_
#define UFLIP_TRACE_TRACE_IO_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "src/trace/trace_event.h"
#include "src/util/status.h"

namespace uflip {

enum class TraceFormat { kCsv, kBinary };

const char* TraceFormatName(TraceFormat f);

/// Picks a format from a file extension: ".csv" is CSV, anything else
/// (".utr", ".bin", ...) is binary.
TraceFormat FormatForPath(const std::string& path);

/// Streams events to a trace file one at a time (WriteTrace() below is
/// the whole-trace convenience wrapper; RecordingDevice::StreamTo
/// flushes a live capture through one of these incrementally).
class TraceWriter {
 public:
  /// Opens `path` for writing (truncating) and emits the header.
  static StatusOr<TraceWriter> Open(const std::string& path,
                                    TraceFormat format,
                                    const TraceMeta& meta);

  TraceWriter(TraceWriter&&) = default;
  TraceWriter& operator=(TraceWriter&&) = default;

  Status Append(const TraceEvent& event);

  /// Finalizes the file (binary: patches the event count) and closes it.
  Status Close();

  uint64_t events_written() const { return count_; }
  TraceFormat format() const { return format_; }

 private:
  TraceWriter(std::ofstream out, TraceFormat format,
              std::streampos count_pos)
      : out_(std::move(out)), format_(format), count_pos_(count_pos) {}

  std::ofstream out_;
  TraceFormat format_;
  std::streampos count_pos_;  // binary: where the event count lives
  uint64_t count_ = 0;
};

/// Streams events back from a trace file; the format is sniffed from the
/// file's first bytes, so readers need not know how a trace was written.
class TraceReader {
 public:
  static StatusOr<TraceReader> Open(const std::string& path);

  TraceReader(TraceReader&&) = default;
  TraceReader& operator=(TraceReader&&) = default;

  const TraceMeta& meta() const { return meta_; }
  TraceFormat format() const { return format_; }

  /// The next event, or NotFound at end of trace. Malformed content
  /// (bad mode, non-numeric fields, truncation) is Corruption.
  StatusOr<TraceEvent> Next();

 private:
  TraceReader(std::ifstream in, TraceFormat format, TraceMeta meta,
              uint64_t remaining, uint64_t line)
      : in_(std::move(in)),
        format_(format),
        meta_(std::move(meta)),
        remaining_(remaining),
        line_(line) {}

  StatusOr<TraceEvent> NextCsv();
  StatusOr<TraceEvent> NextBinary();

  std::ifstream in_;
  TraceFormat format_;
  TraceMeta meta_;
  uint64_t remaining_ = 0;  // binary: events left
  uint64_t line_ = 0;       // CSV: current line, for error messages
};

/// Writes a whole trace to `path`.
Status WriteTrace(const std::string& path, TraceFormat format,
                  const Trace& trace);

/// Reads and validates a whole trace (any format) from `path`.
StatusOr<Trace> ReadTrace(const std::string& path);

}  // namespace uflip

#endif  // UFLIP_TRACE_TRACE_IO_H_
