#include "src/trace/trace_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace uflip {

namespace {

constexpr char kBinaryMagic[8] = {'U', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kCsvMagic[] = "# uflip-trace v1";
constexpr char kCsvHeader[] = "submit_us,offset,size,mode,rt_us";
// Guards the binary source-name length against garbage files.
constexpr uint32_t kMaxSourceLen = 1 << 20;

#pragma pack(push, 1)
struct BinaryEvent {
  uint64_t submit_us;
  uint64_t offset;
  uint32_t size;
  uint32_t mode;
  double rt_us;
};
#pragma pack(pop)
static_assert(sizeof(BinaryEvent) == 32, "binary trace event is 32 bytes");

template <typename T>
void PutRaw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetRaw(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.gcount() == static_cast<std::streamsize>(sizeof(*v));
}

Status ParseU64(const std::string& field, uint64_t line, uint64_t* out) {
  if (field.empty()) {
    return Status::Corruption("trace line " + std::to_string(line) +
                              ": empty numeric field");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) {
    return Status::Corruption("trace line " + std::to_string(line) +
                              ": bad number '" + field + "'");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

const char* TraceFormatName(TraceFormat f) {
  return f == TraceFormat::kCsv ? "csv" : "binary";
}

TraceFormat FormatForPath(const std::string& path) {
  size_t dot = path.find_last_of('.');
  if (dot != std::string::npos && path.substr(dot) == ".csv") {
    return TraceFormat::kCsv;
  }
  return TraceFormat::kBinary;
}

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

StatusOr<TraceWriter> TraceWriter::Open(const std::string& path,
                                        TraceFormat format,
                                        const TraceMeta& meta) {
  // Refuse to write what TraceReader would refuse to read.
  if (meta.source.size() > kMaxSourceLen) {
    return Status::InvalidArgument("trace source name too long");
  }
  if (meta.source.find_first_of("\r\n") != std::string::npos) {
    return Status::InvalidArgument(
        "trace source name must not contain newlines");
  }
  std::ios::openmode mode = std::ios::out | std::ios::trunc;
  if (format == TraceFormat::kBinary) mode |= std::ios::binary;
  std::ofstream out(path, mode);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  std::streampos count_pos = 0;
  if (format == TraceFormat::kCsv) {
    out << kCsvMagic << '\n';
    out << "# source=" << meta.source << '\n';
    out << "# capacity_bytes=" << meta.capacity_bytes << '\n';
    out << kCsvHeader << '\n';
  } else {
    out.write(kBinaryMagic, sizeof(kBinaryMagic));
    PutRaw(out, static_cast<uint32_t>(meta.source.size()));
    out.write(meta.source.data(),
              static_cast<std::streamsize>(meta.source.size()));
    PutRaw(out, meta.capacity_bytes);
    count_pos = out.tellp();
    PutRaw(out, static_cast<uint64_t>(0));  // patched by Close()
  }
  if (!out.good()) {
    return Status::IoError("failed writing trace header: " + path);
  }
  return TraceWriter(std::move(out), format, count_pos);
}

Status TraceWriter::Append(const TraceEvent& event) {
  if (event.mode != IoMode::kRead && event.mode != IoMode::kWrite) {
    return Status::InvalidArgument("trace event with invalid IO mode");
  }
  if (format_ == TraceFormat::kCsv) {
    // Sized for worst-case u64 fields plus %.3f of any finite double
    // (~310 digits for DBL_MAX); the check below still guards overflow.
    char buf[400];
    int n = std::snprintf(buf, sizeof(buf), "%llu,%llu,%u,%s,%.3f",
                          static_cast<unsigned long long>(event.submit_us),
                          static_cast<unsigned long long>(event.offset),
                          event.size, IoModeName(event.mode), event.rt_us);
    if (n < 0 || n >= static_cast<int>(sizeof(buf))) {
      return Status::InvalidArgument("trace event does not format as CSV");
    }
    out_ << buf << '\n';
  } else {
    BinaryEvent be{event.submit_us, event.offset, event.size,
                   event.mode == IoMode::kRead ? 0u : 1u, event.rt_us};
    PutRaw(out_, be);
  }
  if (!out_.good()) return Status::IoError("trace write failed");
  ++count_;
  return Status::Ok();
}

Status TraceWriter::Close() {
  if (format_ == TraceFormat::kBinary) {
    out_.seekp(count_pos_);
    PutRaw(out_, count_);
  }
  out_.flush();
  if (!out_.good()) return Status::IoError("trace stream in failed state");
  out_.close();
  return Status::Ok();
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

StatusOr<TraceReader> TraceReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open trace file: " + path);
  }
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() == sizeof(magic) &&
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0) {
    TraceMeta meta;
    uint32_t source_len = 0;
    if (!GetRaw(in, &source_len) || source_len > kMaxSourceLen) {
      return Status::Corruption("binary trace: bad source length");
    }
    meta.source.resize(source_len);
    in.read(meta.source.data(), source_len);
    uint64_t count = 0;
    if (in.gcount() != static_cast<std::streamsize>(source_len) ||
        !GetRaw(in, &meta.capacity_bytes) || !GetRaw(in, &count)) {
      return Status::Corruption("binary trace: truncated header");
    }
    return TraceReader(std::move(in), TraceFormat::kBinary, std::move(meta),
                       count, 0);
  }

  // CSV: re-read from the top, line by line.
  in.clear();
  in.seekg(0);
  std::string line;
  if (!std::getline(in, line) || line != kCsvMagic) {
    return Status::Corruption("not a uflip trace (bad magic): " + path);
  }
  TraceMeta meta;
  uint64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("# source=", 0) == 0) {
      meta.source = line.substr(sizeof("# source=") - 1);
    } else if (line.rfind("# capacity_bytes=", 0) == 0) {
      UFLIP_RETURN_IF_ERROR(ParseU64(
          line.substr(sizeof("# capacity_bytes=") - 1), line_no,
          &meta.capacity_bytes));
    } else if (line.rfind("#", 0) == 0) {
      continue;  // unknown metadata: ignore for forward compatibility
    } else if (line == kCsvHeader) {
      return TraceReader(std::move(in), TraceFormat::kCsv, std::move(meta),
                         0, line_no);
    } else {
      return Status::Corruption("trace line " + std::to_string(line_no) +
                                ": expected column header");
    }
  }
  return Status::Corruption("csv trace: missing column header: " + path);
}

StatusOr<TraceEvent> TraceReader::Next() {
  return format_ == TraceFormat::kCsv ? NextCsv() : NextBinary();
}

StatusOr<TraceEvent> TraceReader::NextCsv() {
  std::string line;
  // Skip blank trailing lines so hand-edited traces stay readable.
  do {
    if (!std::getline(in_, line)) {
      return Status::NotFound("end of trace");
    }
    ++line_;
  } while (line.empty());

  std::string fields[5];
  size_t field = 0, start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (field >= 5) {
        return Status::Corruption("trace line " + std::to_string(line_) +
                                  ": too many fields");
      }
      fields[field++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  if (field != 5) {
    return Status::Corruption("trace line " + std::to_string(line_) +
                              ": expected 5 fields, got " +
                              std::to_string(field));
  }
  TraceEvent e;
  uint64_t size64 = 0;
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[0], line_, &e.submit_us));
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[1], line_, &e.offset));
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[2], line_, &size64));
  if (size64 > UINT32_MAX) {
    return Status::Corruption("trace line " + std::to_string(line_) +
                              ": IO size out of range");
  }
  e.size = static_cast<uint32_t>(size64);
  if (fields[3] == "read") {
    e.mode = IoMode::kRead;
  } else if (fields[3] == "write") {
    e.mode = IoMode::kWrite;
  } else {
    return Status::Corruption("trace line " + std::to_string(line_) +
                              ": unknown IO mode '" + fields[3] + "'");
  }
  char* end = nullptr;
  e.rt_us = std::strtod(fields[4].c_str(), &end);
  if (fields[4].empty() || end != fields[4].c_str() + fields[4].size()) {
    return Status::Corruption("trace line " + std::to_string(line_) +
                              ": bad response time '" + fields[4] + "'");
  }
  return e;
}

StatusOr<TraceEvent> TraceReader::NextBinary() {
  if (remaining_ == 0) return Status::NotFound("end of trace");
  BinaryEvent be;
  if (!GetRaw(in_, &be)) {
    return Status::Corruption("binary trace: truncated event (" +
                              std::to_string(remaining_) + " still counted)");
  }
  if (be.mode > 1) {
    return Status::Corruption("binary trace: unknown IO mode " +
                              std::to_string(be.mode));
  }
  --remaining_;
  return TraceEvent{be.submit_us, be.offset, be.size,
                    be.mode == 0 ? IoMode::kRead : IoMode::kWrite, be.rt_us};
}

// ---------------------------------------------------------------------
// Whole-trace convenience
// ---------------------------------------------------------------------

Status WriteTrace(const std::string& path, TraceFormat format,
                  const Trace& trace) {
  auto writer = TraceWriter::Open(path, format, trace.meta);
  if (!writer.ok()) return writer.status();
  for (const TraceEvent& e : trace.events) {
    UFLIP_RETURN_IF_ERROR(writer->Append(e));
  }
  return writer->Close();
}

StatusOr<Trace> ReadTrace(const std::string& path) {
  auto reader = TraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  Trace trace;
  trace.meta = reader->meta();
  while (true) {
    StatusOr<TraceEvent> e = reader->Next();
    if (!e.ok()) {
      if (e.status().code() == StatusCode::kNotFound) break;
      return e.status();
    }
    trace.events.push_back(*e);
  }
  UFLIP_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

}  // namespace uflip
