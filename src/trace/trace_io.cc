#include "src/trace/trace_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>

#ifdef UFLIP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace uflip {

namespace {

constexpr char kBinaryMagic[8] = {'U', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr char kCsvMagic[] = "# uflip-trace v1";
constexpr char kCsvHeader[] = "submit_us,offset,size,mode,rt_us";
constexpr unsigned char kGzipMagic[2] = {0x1f, 0x8b};
// Guards the binary source-name length against garbage files.
constexpr uint32_t kMaxSourceLen = 1 << 20;
// Binary event count meaning "uncounted; read until EOF" (written by
// non-seekable gzip framing, which cannot patch the count at Close()).
constexpr uint64_t kUnknownCount = UINT64_MAX;

#pragma pack(push, 1)
struct BinaryEvent {
  uint64_t submit_us;
  uint64_t offset;
  uint32_t size;
  uint32_t mode;
  double rt_us;
};
#pragma pack(pop)
static_assert(sizeof(BinaryEvent) == 32, "binary trace event is 32 bytes");

Status ParseU64(const std::string& field, const std::string& where,
                uint64_t* out) {
  if (field.empty()) {
    return Status::Corruption(where + ": empty numeric field");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) {
    return Status::Corruption(where + ": bad number '" + field + "'");
  }
  *out = v;
  return Status::Ok();
}

std::string StripGz(const std::string& path) {
  if (path.size() > 3 && std::string_view(path).ends_with(".gz")) {
    return path.substr(0, path.size() - 3);
  }
  return path;
}

}  // namespace

const char* TraceFormatName(TraceFormat f) {
  return f == TraceFormat::kCsv ? "csv" : "binary";
}

const char* TraceCompressionName(TraceCompression c) {
  switch (c) {
    case TraceCompression::kAuto: return "auto";
    case TraceCompression::kNone: return "none";
    case TraceCompression::kGzip: return "gzip";
  }
  return "?";
}

bool GzipSupported() {
#ifdef UFLIP_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

TraceFormat FormatForPath(const std::string& path) {
  std::string p = StripGz(path);
  size_t dot = p.find_last_of('.');
  if (dot != std::string::npos && p.substr(dot) == ".csv") {
    return TraceFormat::kCsv;
  }
  return TraceFormat::kBinary;
}

TraceCompression CompressionForPath(const std::string& path) {
  return StripGz(path) == path ? TraceCompression::kNone
                               : TraceCompression::kGzip;
}

// ---------------------------------------------------------------------
// Byte sinks / sources (plain file vs. gzip framing)
// ---------------------------------------------------------------------

/// Append-only byte sink behind TraceWriter. The plain-file sink is
/// seekable so the binary event count can be patched at Close(); the
/// gzip sink is not (a deflate stream cannot rewrite emitted bytes).
struct TraceWriter::Output {
  virtual ~Output() = default;
  virtual bool Write(const void* p, size_t n) = 0;
  virtual bool seekable() const = 0;
  /// Overwrites `n` bytes at absolute offset `pos` (seekable sinks only).
  virtual bool PatchAt(uint64_t pos, const void* p, size_t n) = 0;
  /// Flushes and closes; false reports any deferred write error.
  virtual bool Close() = 0;
};

namespace {

struct PlainOutput final : TraceWriter::Output {
  explicit PlainOutput(std::ofstream stream) : out(std::move(stream)) {}
  bool Write(const void* p, size_t n) override {
    out.write(static_cast<const char*>(p),
              static_cast<std::streamsize>(n));
    return out.good();
  }
  bool seekable() const override { return true; }
  bool PatchAt(uint64_t pos, const void* p, size_t n) override {
    out.seekp(static_cast<std::streamoff>(pos));
    return Write(p, n);
  }
  bool Close() override {
    out.flush();
    if (!out.good()) return false;
    out.close();
    return true;
  }
  std::ofstream out;
};

#ifdef UFLIP_HAVE_ZLIB
struct GzOutput final : TraceWriter::Output {
  explicit GzOutput(gzFile f) : gz(f) {}
  ~GzOutput() override {
    if (gz) gzclose(gz);
  }
  bool Write(const void* p, size_t n) override {
    if (n == 0) return true;
    return gzwrite(gz, p, static_cast<unsigned>(n)) ==
           static_cast<int>(n);
  }
  bool seekable() const override { return false; }
  bool PatchAt(uint64_t, const void*, size_t) override { return false; }
  bool Close() override {
    int rc = gzclose(gz);
    gz = nullptr;
    return rc == Z_OK;
  }
  gzFile gz;
};
#endif

StatusOr<std::unique_ptr<TraceWriter::Output>> OpenOutput(
    const std::string& path, TraceCompression compression) {
  if (compression == TraceCompression::kGzip) {
#ifdef UFLIP_HAVE_ZLIB
    gzFile gz = gzopen(path.c_str(), "wb");
    if (gz == nullptr) {
      return Status::IoError("cannot open trace file for writing: " + path);
    }
    return std::unique_ptr<TraceWriter::Output>(new GzOutput(gz));
#else
    return Status::Unimplemented(
        "gzip trace framing not compiled in (zlib missing): " + path);
#endif
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  return std::unique_ptr<TraceWriter::Output>(new PlainOutput(std::move(out)));
}

}  // namespace

/// Byte source behind TraceReader: reads raw bytes and text lines from
/// a plain or gzip-framed file (the gzip source inflates as it goes).
struct TraceReader::Input {
  virtual ~Input() = default;
  /// Reads up to n bytes; bytes read (0 = clean EOF), or -1 on error.
  virtual long Read(void* p, size_t n) = 0;
  /// Reads one '\n'-terminated line (terminator stripped). Ok(true):
  /// *line filled; Ok(false): clean EOF before any character.
  virtual StatusOr<bool> ReadLine(std::string* line) = 0;
  /// Restarts from the first byte (used after format sniffing).
  virtual bool Rewind() = 0;
};

namespace {

struct PlainInput final : TraceReader::Input {
  explicit PlainInput(std::ifstream stream) : in(std::move(stream)) {}
  long Read(void* p, size_t n) override {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (in.bad()) return -1;
    return static_cast<long>(in.gcount());
  }
  StatusOr<bool> ReadLine(std::string* line) override {
    if (std::getline(in, *line)) return true;
    if (in.bad()) return Status::IoError("trace read failed");
    return false;  // clean EOF
  }
  bool Rewind() override {
    in.clear();
    in.seekg(0);
    return in.good();
  }
  std::ifstream in;
};

#ifdef UFLIP_HAVE_ZLIB
struct GzInput final : TraceReader::Input {
  explicit GzInput(gzFile f) : gz(f) {}
  ~GzInput() override {
    if (gz) gzclose(gz);
  }
  long Read(void* p, size_t n) override {
    int got = gzread(gz, p, static_cast<unsigned>(n));
    return got < 0 ? -1 : got;
  }
  StatusOr<bool> ReadLine(std::string* line) override {
    line->clear();
    char buf[4096];
    while (true) {
      if (gzgets(gz, buf, sizeof(buf)) == nullptr) {
        int errnum = Z_OK;
        gzerror(gz, &errnum);
        if (errnum != Z_OK && errnum != Z_STREAM_END) {
          return Status::Corruption("gzip trace: inflate failed");
        }
        // Clean EOF; a partial final line (no '\n') still counts.
        return !line->empty();
      }
      size_t n = std::strlen(buf);
      line->append(buf, n);
      if (n > 0 && line->back() == '\n') {
        line->pop_back();
        return true;
      }
      // Chunk filled without a newline: keep reading the same line.
    }
  }
  bool Rewind() override { return gzrewind(gz) == 0; }
  gzFile gz;
};
#endif

StatusOr<std::unique_ptr<TraceReader::Input>> OpenInput(
    const std::string& path, TraceCompression* compression) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open trace file: " + path);
  }
  unsigned char magic[2] = {};
  in.read(reinterpret_cast<char*>(magic), sizeof(magic));
  bool gzipped = in.gcount() == sizeof(magic) &&
                 std::memcmp(magic, kGzipMagic, sizeof(magic)) == 0;
  if (!gzipped) {
    *compression = TraceCompression::kNone;
    in.clear();
    in.seekg(0);
    return std::unique_ptr<TraceReader::Input>(
        new PlainInput(std::move(in)));
  }
  in.close();
#ifdef UFLIP_HAVE_ZLIB
  gzFile gz = gzopen(path.c_str(), "rb");
  if (gz == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  *compression = TraceCompression::kGzip;
  return std::unique_ptr<TraceReader::Input>(new GzInput(gz));
#else
  return Status::Unimplemented(
      "gzip-framed trace but gzip support not compiled in (zlib missing): " +
      path);
#endif
}

}  // namespace

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(std::unique_ptr<Output> out, TraceFormat format,
                         TraceCompression compression, uint64_t count_pos)
    : out_(std::move(out)),
      format_(format),
      compression_(compression),
      count_pos_(count_pos) {}
TraceWriter::TraceWriter(TraceWriter&&) noexcept = default;
TraceWriter& TraceWriter::operator=(TraceWriter&&) noexcept = default;
TraceWriter::~TraceWriter() = default;

StatusOr<TraceWriter> TraceWriter::Open(const std::string& path,
                                        TraceFormat format,
                                        const TraceMeta& meta,
                                        TraceCompression compression) {
  // Refuse to write what TraceReader would refuse to read.
  if (meta.source.size() > kMaxSourceLen) {
    return Status::InvalidArgument("trace source name too long");
  }
  if (meta.source.find_first_of("\r\n") != std::string::npos) {
    return Status::InvalidArgument(
        "trace source name must not contain newlines");
  }
  if (compression == TraceCompression::kAuto) {
    compression = CompressionForPath(path);
  }
  auto out = OpenOutput(path, compression);
  if (!out.ok()) return out.status();

  uint64_t count_pos = 0;
  bool ok = true;
  if (format == TraceFormat::kCsv) {
    std::string header;
    header.append(kCsvMagic).append("\n# source=").append(meta.source);
    header.append("\n# capacity_bytes=")
        .append(std::to_string(meta.capacity_bytes))
        .append("\n")
        .append(kCsvHeader)
        .append("\n");
    ok = (*out)->Write(header.data(), header.size());
  } else {
    uint32_t source_len = static_cast<uint32_t>(meta.source.size());
    ok = ok && (*out)->Write(kBinaryMagic, sizeof(kBinaryMagic));
    ok = ok && (*out)->Write(&source_len, sizeof(source_len));
    ok = ok && (*out)->Write(meta.source.data(), meta.source.size());
    ok = ok && (*out)->Write(&meta.capacity_bytes,
                             sizeof(meta.capacity_bytes));
    count_pos = sizeof(kBinaryMagic) + sizeof(source_len) +
                meta.source.size() + sizeof(meta.capacity_bytes);
    // A non-seekable sink cannot patch the count at Close(): store the
    // "uncounted; read until EOF" sentinel up front instead.
    uint64_t count = (*out)->seekable() ? 0 : kUnknownCount;
    ok = ok && (*out)->Write(&count, sizeof(count));
  }
  if (!ok) {
    return Status::IoError("failed writing trace header: " + path);
  }
  return TraceWriter(std::move(*out), format, compression, count_pos);
}

Status TraceWriter::Append(const TraceEvent& event) {
  if (event.mode != IoMode::kRead && event.mode != IoMode::kWrite) {
    return Status::InvalidArgument("trace event with invalid IO mode");
  }
  bool ok;
  if (format_ == TraceFormat::kCsv) {
    // Sized for worst-case u64 fields plus %.3f of any finite double
    // (~310 digits for DBL_MAX); the check below still guards overflow.
    char buf[400];
    int n = std::snprintf(buf, sizeof(buf), "%llu,%llu,%u,%s,%.3f\n",
                          static_cast<unsigned long long>(event.submit_us),
                          static_cast<unsigned long long>(event.offset),
                          event.size, IoModeName(event.mode), event.rt_us);
    if (n < 0 || n >= static_cast<int>(sizeof(buf))) {
      return Status::InvalidArgument("trace event does not format as CSV");
    }
    ok = out_->Write(buf, static_cast<size_t>(n));
  } else {
    BinaryEvent be{event.submit_us, event.offset, event.size,
                   event.mode == IoMode::kRead ? 0u : 1u, event.rt_us};
    ok = out_->Write(&be, sizeof(be));
  }
  if (!ok) return Status::IoError("trace write failed");
  ++count_;
  return Status::Ok();
}

Status TraceWriter::Close() {
  if (format_ == TraceFormat::kBinary && out_->seekable()) {
    if (!out_->PatchAt(count_pos_, &count_, sizeof(count_))) {
      return Status::IoError("trace stream in failed state");
    }
  }
  if (!out_->Close()) {
    return Status::IoError("trace stream in failed state");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

TraceReader::TraceReader(std::unique_ptr<Input> in, TraceFormat format,
                         TraceCompression compression, std::string path,
                         TraceMeta meta, uint64_t remaining, uint64_t line)
    : in_(std::move(in)),
      format_(format),
      compression_(compression),
      path_(std::move(path)),
      meta_(std::move(meta)),
      remaining_(remaining),
      line_(line) {}
TraceReader::TraceReader(TraceReader&&) noexcept = default;
TraceReader& TraceReader::operator=(TraceReader&&) noexcept = default;
TraceReader::~TraceReader() = default;

StatusOr<TraceReader> TraceReader::Open(const std::string& path) {
  TraceCompression compression = TraceCompression::kNone;
  auto in = OpenInput(path, &compression);
  if (!in.ok()) return in.status();

  char magic[8] = {};
  long got = (*in)->Read(magic, sizeof(magic));
  if (got == static_cast<long>(sizeof(magic)) &&
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0) {
    TraceMeta meta;
    uint32_t source_len = 0;
    if ((*in)->Read(&source_len, sizeof(source_len)) !=
            static_cast<long>(sizeof(source_len)) ||
        source_len > kMaxSourceLen) {
      return Status::Corruption("binary trace: bad source length");
    }
    meta.source.resize(source_len);
    uint64_t count = 0;
    if ((*in)->Read(meta.source.data(), source_len) !=
            static_cast<long>(source_len) ||
        (*in)->Read(&meta.capacity_bytes, sizeof(meta.capacity_bytes)) !=
            static_cast<long>(sizeof(meta.capacity_bytes)) ||
        (*in)->Read(&count, sizeof(count)) !=
            static_cast<long>(sizeof(count))) {
      return Status::Corruption("binary trace: truncated header");
    }
    return TraceReader(std::move(*in), TraceFormat::kBinary, compression,
                       path, std::move(meta), count, 0);
  }

  // CSV: re-read from the top, line by line.
  if (!(*in)->Rewind()) {
    return Status::IoError("cannot rewind trace file: " + path);
  }
  std::string line;
  StatusOr<bool> more = (*in)->ReadLine(&line);
  if (!more.ok()) return more.status();
  if (!*more || line != kCsvMagic) {
    return Status::Corruption("not a uflip trace (bad magic): " + path);
  }
  TraceMeta meta;
  uint64_t line_no = 1;
  while (true) {
    more = (*in)->ReadLine(&line);
    if (!more.ok()) return more.status();
    if (!*more) break;
    ++line_no;
    if (line.rfind("# source=", 0) == 0) {
      meta.source = line.substr(sizeof("# source=") - 1);
    } else if (line.rfind("# capacity_bytes=", 0) == 0) {
      UFLIP_RETURN_IF_ERROR(ParseU64(
          line.substr(sizeof("# capacity_bytes=") - 1),
          path + " line " + std::to_string(line_no), &meta.capacity_bytes));
    } else if (line.rfind("#", 0) == 0) {
      continue;  // unknown metadata: ignore for forward compatibility
    } else if (line == kCsvHeader) {
      return TraceReader(std::move(*in), TraceFormat::kCsv, compression,
                         path, std::move(meta), 0, line_no);
    } else {
      return Status::Corruption(path + " line " + std::to_string(line_no) +
                                ": expected column header");
    }
  }
  return Status::Corruption("csv trace: missing column header: " + path);
}

std::optional<uint64_t> TraceReader::SizeHint() const {
  if (format_ == TraceFormat::kBinary && remaining_ != kUnknownCount) {
    return remaining_;
  }
  return std::nullopt;
}

StatusOr<bool> TraceReader::Next(TraceEvent* event) {
  StatusOr<bool> more =
      format_ == TraceFormat::kCsv ? NextCsv(event) : NextBinary(event);
  if (more.ok() && *more) ++read_;
  return more;
}

StatusOr<bool> TraceReader::NextCsv(TraceEvent* event) {
  std::string line;
  // Skip blank trailing lines so hand-edited traces stay readable.
  do {
    StatusOr<bool> more = in_->ReadLine(&line);
    if (!more.ok()) return more.status();
    if (!*more) return false;  // clean end of trace
    ++line_;
  } while (line.empty());
  const std::string where = path_ + " line " + std::to_string(line_);

  std::string fields[5];
  size_t field = 0, start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (field >= 5) {
        return Status::Corruption(where + ": too many fields");
      }
      fields[field++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  if (field != 5) {
    return Status::Corruption(where + ": expected 5 fields, got " +
                              std::to_string(field));
  }
  TraceEvent e;
  uint64_t size64 = 0;
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[0], where, &e.submit_us));
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[1], where, &e.offset));
  UFLIP_RETURN_IF_ERROR(ParseU64(fields[2], where, &size64));
  if (size64 > UINT32_MAX) {
    return Status::Corruption(where + ": IO size out of range");
  }
  e.size = static_cast<uint32_t>(size64);
  if (fields[3] == "read") {
    e.mode = IoMode::kRead;
  } else if (fields[3] == "write") {
    e.mode = IoMode::kWrite;
  } else {
    return Status::Corruption(where + ": unknown IO mode '" + fields[3] +
                              "'");
  }
  char* end = nullptr;
  e.rt_us = std::strtod(fields[4].c_str(), &end);
  if (fields[4].empty() || end != fields[4].c_str() + fields[4].size()) {
    return Status::Corruption(where + ": bad response time '" + fields[4] +
                              "'");
  }
  *event = e;
  return true;
}

StatusOr<bool> TraceReader::NextBinary(TraceEvent* event) {
  if (remaining_ == 0) return false;  // counted trace fully consumed
  BinaryEvent be;
  long got = in_->Read(&be, sizeof(be));
  if (got == 0 && remaining_ == kUnknownCount) {
    return false;  // uncounted trace: clean EOF at a record boundary
  }
  if (got != static_cast<long>(sizeof(be))) {
    std::string counted =
        remaining_ == kUnknownCount
            ? "mid-record EOF"
            : std::to_string(remaining_) + " still counted";
    return Status::Corruption("binary trace: truncated event " +
                              std::to_string(read_) + " (" + counted + ")");
  }
  if (be.mode > 1) {
    return Status::Corruption("binary trace: event " + std::to_string(read_) +
                              ": unknown IO mode " + std::to_string(be.mode));
  }
  if (remaining_ != kUnknownCount) --remaining_;
  *event = TraceEvent{be.submit_us, be.offset, be.size,
                      be.mode == 0 ? IoMode::kRead : IoMode::kWrite,
                      be.rt_us};
  return true;
}

// ---------------------------------------------------------------------
// Whole-trace convenience
// ---------------------------------------------------------------------

Status WriteTrace(const std::string& path, TraceFormat format,
                  const Trace& trace, TraceCompression compression) {
  auto writer = TraceWriter::Open(path, format, trace.meta, compression);
  if (!writer.ok()) return writer.status();
  for (const TraceEvent& e : trace.events) {
    UFLIP_RETURN_IF_ERROR(writer->Append(e));
  }
  return writer->Close();
}

StatusOr<Trace> ReadTrace(const std::string& path) {
  auto reader = TraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  return MaterializeTrace(&*reader);
}

}  // namespace uflip
