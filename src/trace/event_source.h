// Pull-based trace event streams. An EventSource produces TraceEvents
// one at a time, so replay and tooling can process traces far larger
// than memory: an in-memory Trace, a TraceReader streaming (possibly
// gzip-compressed) events off disk, and the synthetic generators all
// implement the same interface, and ExecuteTraceRun pulls from any of
// them with O(1) peak memory in the trace length.
//
// The contract mirrors the repo's Status idiom: Next() fills *event and
// returns Ok(true) while events remain, Ok(false) exactly at the clean
// end of the stream (and on every call after it), and a non-OK Status
// for corrupt or invalid sources. End-of-stream is therefore explicit
// and never conflated with an error.
#ifndef UFLIP_TRACE_EVENT_SOURCE_H_
#define UFLIP_TRACE_EVENT_SOURCE_H_

#include <cstdint>
#include <optional>

#include "src/trace/trace_event.h"
#include "src/util/status.h"

namespace uflip {

/// Reserve ceiling for EventSource::SizeHint consumers: a hint can come
/// from an unvalidated file header (TraceReader), so never pre-commit
/// more than this many events of memory up front -- containers grow
/// past it on demand.
inline constexpr uint64_t kMaxReserveEvents = 1 << 20;

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Provenance and LBA domain of the events this source produces.
  virtual const TraceMeta& meta() const = 0;

  /// Total number of events, when known up front (in-memory traces,
  /// counted binary files, generators). nullopt for open-ended streams.
  virtual std::optional<uint64_t> SizeHint() const { return std::nullopt; }

  /// Pulls the next event. Ok(true): *event was filled. Ok(false):
  /// clean end of stream. Error: the source is corrupt or failed.
  [[nodiscard]] virtual StatusOr<bool> Next(TraceEvent* event) = 0;
};

/// EventSource over an in-memory Trace (not owned; must outlive the
/// view). Rewindable via Reset(), so one materialized trace can feed
/// several replays.
class TraceView : public EventSource {
 public:
  explicit TraceView(const Trace* trace) : trace_(trace) {}

  const TraceMeta& meta() const override { return trace_->meta; }
  std::optional<uint64_t> SizeHint() const override {
    return trace_->events.size();
  }
  [[nodiscard]] StatusOr<bool> Next(TraceEvent* event) override;

  /// Restarts iteration from the first event.
  void Reset() { next_ = 0; }

 private:
  const Trace* trace_;
  size_t next_ = 0;
};

/// Drains `source` into an in-memory Trace (the materializing
/// convenience the generators and ReadTrace are built on). `max_events`
/// guards against accidentally materializing an unbounded stream.
[[nodiscard]] StatusOr<Trace> MaterializeTrace(EventSource* source,
                                 uint64_t max_events = UINT64_MAX);

}  // namespace uflip

#endif  // UFLIP_TRACE_EVENT_SOURCE_H_
