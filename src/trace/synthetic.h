// Synthetic trace generators: workload families beyond the paper's nine
// parameterized micro-benchmarks, emitted as ordinary Traces so
// synthetic and captured workloads share one on-disk format and one
// replay path. Three families cover the classic flash-unfriendly
// scenarios: Zipfian hot/cold skew (caching / key-value stores), an
// OLTP read-modify-write page mix (the database workload the paper
// motivates), and multi-stream sequential interleave (log-structured
// writers sharing one device).
//
// Each family is exposed two ways: a pull-based EventSource (O(1)
// memory: generate -> write or generate -> replay without ever holding
// the trace) and the materializing GenerateXxxTrace() convenience
// wrappers built on it.
#ifndef UFLIP_TRACE_SYNTHETIC_H_
#define UFLIP_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/event_source.h"
#include "src/trace/trace_event.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace uflip {

/// Riemann zeta partial sum Z(n, theta) = sum_{i=1..n} i^-theta,
/// computed exactly up to a fixed prefix and closed with an
/// Euler-Maclaurin integral tail, so the cost is O(1) in n while the
/// relative error stays far below the sampler's own resolution.
double ZetaN(uint64_t n, double theta);

/// Draws IOSize-aligned locations with a Zipf(theta) popularity skew
/// (YCSB-style; theta = 0 is uniform, 0.99 the usual "hot" skew). Ranks
/// are scattered over the target space with a seeded hash bijection
/// (a cycle-walked Feistel permutation) so the hot set is not one
/// contiguous region. Construction and Next() are both O(1) in
/// `locations`: a terabyte LBA domain at 4KB IOs costs the same as a
/// megabyte one.
class ZipfianLba {
 public:
  /// `locations` is the number of distinct IOSize slots; theta in [0,1).
  ZipfianLba(uint64_t locations, double theta, uint64_t seed);

  /// Next location index in [0, locations).
  uint64_t Next();

  /// The seeded rank -> location bijection on [0, locations): rank 0 is
  /// the hottest slot. Exposed so tests can verify it permutes.
  uint64_t Scatter(uint64_t rank) const;

 private:
  uint64_t n_;
  double theta_;
  // Sampler constants precomputed from (n, theta).
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double half_pow_theta_ = 0;
  // Feistel scatter: domain 2^(2*half_bits_) >= n, keyed per seed.
  uint32_t half_bits_ = 1;
  uint64_t half_mask_ = 1;
  uint64_t keys_[4] = {};
  Rng rng_;
};

struct ZipfianTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  uint32_t io_size = 4096;
  uint32_t io_count = 4096;
  /// Zipf skew over the IOSize-aligned locations; 0 = uniform.
  double theta = 0.99;
  /// Fraction of IOs that are writes.
  double write_fraction = 0.5;
  /// Mean inter-arrival time; exponentially distributed gaps (0 = all
  /// events share one timestamp, i.e. a pure closed-loop trace).
  uint64_t mean_gap_us = 0;
  uint64_t seed = 1;

  [[nodiscard]] Status Validate() const;
};

/// Pull-based Zipfian workload stream (io_count events).
class ZipfianEventSource : public EventSource {
 public:
  explicit ZipfianEventSource(const ZipfianTraceConfig& cfg);

  const TraceMeta& meta() const override { return meta_; }
  std::optional<uint64_t> SizeHint() const override;
  [[nodiscard]] StatusOr<bool> Next(TraceEvent* event) override;

 private:
  ZipfianTraceConfig cfg_;
  Status invalid_;  // non-OK when the config failed validation
  TraceMeta meta_;
  ZipfianLba lba_;
  Rng rng_;
  uint64_t now_us_ = 0;
  uint32_t emitted_ = 0;
};

[[nodiscard]] StatusOr<Trace> GenerateZipfianTrace(const ZipfianTraceConfig& cfg);

struct OltpTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  /// Database page size (the unit of every IO).
  uint32_t io_size = 8192;
  /// Number of transactions; an update transaction emits a page read
  /// followed by a write-back of the same page, a read-only one just
  /// the read.
  uint32_t transactions = 2048;
  double read_only_fraction = 0.5;
  /// Mean think time between transactions (exponential; 0 = none).
  uint64_t mean_gap_us = 0;
  uint64_t seed = 1;

  [[nodiscard]] Status Validate() const;
};

/// Pull-based OLTP read-modify-write stream (one or two events per
/// transaction).
class OltpEventSource : public EventSource {
 public:
  explicit OltpEventSource(const OltpTraceConfig& cfg);

  const TraceMeta& meta() const override { return meta_; }
  [[nodiscard]] StatusOr<bool> Next(TraceEvent* event) override;

 private:
  OltpTraceConfig cfg_;
  Status invalid_;
  TraceMeta meta_;
  Rng rng_;
  uint64_t now_us_ = 0;
  uint64_t pages_ = 0;
  uint32_t done_ = 0;
  bool write_back_pending_ = false;
  uint64_t pending_offset_ = 0;
};

[[nodiscard]] StatusOr<Trace> GenerateOltpTrace(const OltpTraceConfig& cfg);

struct MultiStreamTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  uint32_t io_size = 32 * 1024;
  /// Concurrent sequential writers, each appending round-robin within
  /// its own slice of the device (wrapping when the slice fills).
  uint32_t streams = 4;
  uint32_t ios_per_stream = 512;
  /// Fixed gap between consecutive submissions (0 = closed-loop trace).
  uint64_t gap_us = 0;
  uint64_t seed = 1;

  [[nodiscard]] Status Validate() const;
};

/// Pull-based multi-stream sequential-interleave stream
/// (streams * ios_per_stream events).
class MultiStreamEventSource : public EventSource {
 public:
  explicit MultiStreamEventSource(const MultiStreamTraceConfig& cfg);

  const TraceMeta& meta() const override { return meta_; }
  std::optional<uint64_t> SizeHint() const override;
  [[nodiscard]] StatusOr<bool> Next(TraceEvent* event) override;

 private:
  MultiStreamTraceConfig cfg_;
  Status invalid_;
  TraceMeta meta_;
  uint64_t slice_ios_ = 0;
  uint64_t slice_bytes_ = 0;
  uint64_t now_us_ = 0;
  uint32_t round_ = 0;   // which IO of each stream
  uint32_t stream_ = 0;  // next stream within the round
};

[[nodiscard]] StatusOr<Trace> GenerateMultiStreamTrace(const MultiStreamTraceConfig& cfg);

}  // namespace uflip

#endif  // UFLIP_TRACE_SYNTHETIC_H_
