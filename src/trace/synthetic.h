// Synthetic trace generators: workload families beyond the paper's nine
// parameterized micro-benchmarks, emitted as ordinary Traces so
// synthetic and captured workloads share one on-disk format and one
// replay path. Three families cover the classic flash-unfriendly
// scenarios: Zipfian hot/cold skew (caching / key-value stores), an
// OLTP read-modify-write page mix (the database workload the paper
// motivates), and multi-stream sequential interleave (log-structured
// writers sharing one device).
#ifndef UFLIP_TRACE_SYNTHETIC_H_
#define UFLIP_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/trace_event.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace uflip {

/// Draws IOSize-aligned locations with a Zipf(theta) popularity skew
/// (YCSB-style; theta = 0 is uniform, 0.99 the usual "hot" skew). Ranks
/// are scattered over the target space with a seeded permutation so the
/// hot set is not one contiguous region.
class ZipfianLba {
 public:
  /// `locations` is the number of distinct IOSize slots; theta in [0,1).
  ZipfianLba(uint64_t locations, double theta, uint64_t seed);

  /// Next location index in [0, locations).
  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  // Sampler constants precomputed from (n, theta).
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double half_pow_theta_ = 0;
  Rng rng_;
  std::vector<uint64_t> scatter_;
};

struct ZipfianTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  uint32_t io_size = 4096;
  uint32_t io_count = 4096;
  /// Zipf skew over the IOSize-aligned locations; 0 = uniform.
  double theta = 0.99;
  /// Fraction of IOs that are writes.
  double write_fraction = 0.5;
  /// Mean inter-arrival time; exponentially distributed gaps (0 = all
  /// events share one timestamp, i.e. a pure closed-loop trace).
  uint64_t mean_gap_us = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

StatusOr<Trace> GenerateZipfianTrace(const ZipfianTraceConfig& cfg);

struct OltpTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  /// Database page size (the unit of every IO).
  uint32_t io_size = 8192;
  /// Number of transactions; an update transaction emits a page read
  /// followed by a write-back of the same page, a read-only one just
  /// the read.
  uint32_t transactions = 2048;
  double read_only_fraction = 0.5;
  /// Mean think time between transactions (exponential; 0 = none).
  uint64_t mean_gap_us = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

StatusOr<Trace> GenerateOltpTrace(const OltpTraceConfig& cfg);

struct MultiStreamTraceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  uint32_t io_size = 32 * 1024;
  /// Concurrent sequential writers, each appending round-robin within
  /// its own slice of the device (wrapping when the slice fills).
  uint32_t streams = 4;
  uint32_t ios_per_stream = 512;
  /// Fixed gap between consecutive submissions (0 = closed-loop trace).
  uint64_t gap_us = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

StatusOr<Trace> GenerateMultiStreamTrace(const MultiStreamTraceConfig& cfg);

}  // namespace uflip

#endif  // UFLIP_TRACE_SYNTHETIC_H_
