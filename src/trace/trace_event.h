// Trace subsystem core. A trace is a device-independent record of an IO
// workload: one event per IO carrying the four uFLIP attributes
// (submission time, LBA, size, mode; Section 3.1) plus the measured
// response time when the trace was captured from a device. Captured
// (RecordingDevice) and synthetic (src/trace/synthetic.h) traces share
// this representation, the on-disk formats (src/trace/trace_io.h) and
// the replay path (src/run/trace_run.h).
#ifndef UFLIP_TRACE_TRACE_EVENT_H_
#define UFLIP_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/device/block_device.h"
#include "src/util/status.h"

namespace uflip {

/// One traced IO. `submit_us` is in the clock domain of the recording
/// (replay only uses inter-arrival deltas, so the epoch is arbitrary).
/// `rt_us` is the measured response time; 0 for synthetic traces.
struct TraceEvent {
  uint64_t submit_us = 0;
  uint64_t offset = 0;
  uint32_t size = 0;
  IoMode mode = IoMode::kRead;
  double rt_us = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// Where a trace came from and the capacity of the device it was
/// recorded against. The capacity defines the LBA domain of the events
/// and drives rescaling when the trace is replayed on a device of a
/// different size.
struct TraceMeta {
  std::string source;
  uint64_t capacity_bytes = 0;

  bool operator==(const TraceMeta&) const = default;
};

struct Trace {
  TraceMeta meta;
  std::vector<TraceEvent> events;

  bool operator==(const Trace&) const = default;

  /// Structural invariants every well-formed trace satisfies: nonzero IO
  /// sizes, nondecreasing submission times, and events within the
  /// recorded capacity (when meta.capacity_bytes is set).
  [[nodiscard]] Status Validate() const;

  /// Trace duration: last submission minus first (0 for <2 events).
  uint64_t SpanUs() const;
};

}  // namespace uflip

#endif  // UFLIP_TRACE_TRACE_EVENT_H_
