#include "src/trace/trace_event.h"

#include <string>

namespace uflip {

Status Trace::Validate() const {
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.size == 0) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": zero-sized IO");
    }
    if (e.mode != IoMode::kRead && e.mode != IoMode::kWrite) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": invalid IO mode");
    }
    if (e.rt_us < 0) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": negative response time");
    }
    if (i > 0 && e.submit_us < events[i - 1].submit_us) {
      return Status::InvalidArgument(
          "trace event " + std::to_string(i) +
          ": submission times not sorted (" + std::to_string(e.submit_us) +
          " after " + std::to_string(events[i - 1].submit_us) + ")");
    }
    if (meta.capacity_bytes > 0 &&
        e.offset + e.size > meta.capacity_bytes) {
      return Status::OutOfRange(
          "trace event " + std::to_string(i) + ": [" +
          std::to_string(e.offset) + ", " +
          std::to_string(e.offset + e.size) + ") beyond recorded capacity " +
          std::to_string(meta.capacity_bytes));
    }
  }
  return Status::Ok();
}

uint64_t Trace::SpanUs() const {
  if (events.size() < 2) return 0;
  return events.back().submit_us - events.front().submit_us;
}

}  // namespace uflip
