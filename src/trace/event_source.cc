#include "src/trace/event_source.h"

#include <algorithm>

namespace uflip {

StatusOr<bool> TraceView::Next(TraceEvent* event) {
  if (next_ >= trace_->events.size()) return false;
  *event = trace_->events[next_++];
  return true;
}

StatusOr<Trace> MaterializeTrace(EventSource* source, uint64_t max_events) {
  Trace trace;
  trace.meta = source->meta();
  if (std::optional<uint64_t> n = source->SizeHint();
      n && *n <= max_events) {
    trace.events.reserve(
        static_cast<size_t>(std::min(*n, kMaxReserveEvents)));
  }
  TraceEvent e;
  while (true) {
    StatusOr<bool> more = source->Next(&e);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (trace.events.size() >= max_events) {
      return Status::ResourceExhausted(
          "event source exceeds materialization limit of " +
          std::to_string(max_events) + " events");
    }
    trace.events.push_back(e);
  }
  UFLIP_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

}  // namespace uflip
