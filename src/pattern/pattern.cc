#include "src/pattern/pattern.h"

#include <cstdio>

#include "src/util/logging.h"

namespace uflip {

const char* LbaFunctionName(LbaFunction f) {
  switch (f) {
    case LbaFunction::kSequential:
      return "sequential";
    case LbaFunction::kRandom:
      return "random";
    case LbaFunction::kOrdered:
      return "ordered";
    case LbaFunction::kPartitioned:
      return "partitioned";
  }
  return "?";
}

const char* TimeFunctionName(TimeFunction f) {
  switch (f) {
    case TimeFunction::kConsecutive:
      return "consecutive";
    case TimeFunction::kPause:
      return "pause";
    case TimeFunction::kBurst:
      return "burst";
  }
  return "?";
}

Status PatternSpec::Validate() const {
  if (io_size == 0) return Status::InvalidArgument("io_size == 0");
  if (target_size < io_size) {
    return Status::InvalidArgument("target_size smaller than io_size");
  }
  if (io_count == 0) return Status::InvalidArgument("io_count == 0");
  if (io_ignore >= io_count) {
    return Status::InvalidArgument("io_ignore must be < io_count");
  }
  if (lba == LbaFunction::kPartitioned) {
    if (partitions == 0) return Status::InvalidArgument("partitions == 0");
    if (target_size / partitions < io_size) {
      return Status::InvalidArgument("partition smaller than io_size");
    }
  }
  if (time == TimeFunction::kBurst && burst == 0) {
    return Status::InvalidArgument("burst == 0");
  }
  if (io_shift % 512 != 0) {
    return Status::InvalidArgument("io_shift must be a multiple of 512");
  }
  return Status::Ok();
}

std::string PatternSpec::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s{%s %s io=%uB target=[%llu,+%llu) shift=%llu incr=%lld parts=%u "
      "pause=%lluus burst=%u n=%u ignore=%u}",
      label.empty() ? "Pattern" : label.c_str(), IoModeName(mode),
      LbaFunctionName(lba), io_size,
      static_cast<unsigned long long>(target_offset),
      static_cast<unsigned long long>(target_size),
      static_cast<unsigned long long>(io_shift), static_cast<long long>(incr),
      partitions, static_cast<unsigned long long>(pause_us), burst, io_count,
      io_ignore);
  return buf;
}

PatternSpec PatternSpec::SequentialRead(uint32_t io_size,
                                        uint64_t target_offset,
                                        uint64_t target_size) {
  PatternSpec s;
  s.mode = IoMode::kRead;
  s.lba = LbaFunction::kSequential;
  s.io_size = io_size;
  s.target_offset = target_offset;
  s.target_size = target_size;
  s.label = "SR";
  return s;
}

PatternSpec PatternSpec::RandomRead(uint32_t io_size, uint64_t target_offset,
                                    uint64_t target_size) {
  PatternSpec s = SequentialRead(io_size, target_offset, target_size);
  s.lba = LbaFunction::kRandom;
  s.label = "RR";
  return s;
}

PatternSpec PatternSpec::SequentialWrite(uint32_t io_size,
                                         uint64_t target_offset,
                                         uint64_t target_size) {
  PatternSpec s = SequentialRead(io_size, target_offset, target_size);
  s.mode = IoMode::kWrite;
  s.label = "SW";
  return s;
}

PatternSpec PatternSpec::RandomWrite(uint32_t io_size, uint64_t target_offset,
                                     uint64_t target_size) {
  PatternSpec s = SequentialRead(io_size, target_offset, target_size);
  s.mode = IoMode::kWrite;
  s.lba = LbaFunction::kRandom;
  s.label = "RW";
  return s;
}

StatusOr<PatternSpec> PatternSpec::Baseline(const std::string& name,
                                            uint32_t io_size,
                                            uint64_t target_offset,
                                            uint64_t target_size) {
  if (name == "SR") return SequentialRead(io_size, target_offset, target_size);
  if (name == "RR") return RandomRead(io_size, target_offset, target_size);
  if (name == "SW") {
    return SequentialWrite(io_size, target_offset, target_size);
  }
  if (name == "RW") return RandomWrite(io_size, target_offset, target_size);
  return Status::InvalidArgument("unknown baseline pattern: " + name);
}

PatternGenerator::PatternGenerator(const PatternSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  UFLIP_CHECK_MSG(spec.Validate().ok(), "invalid pattern: %s",
                  spec.ToString().c_str());
}

uint64_t PatternGenerator::LbaAt(const PatternSpec& spec, uint64_t i,
                                 Rng* rng) {
  const uint64_t locations = spec.target_size / spec.io_size;
  uint64_t aligned = 0;
  switch (spec.lba) {
    case LbaFunction::kRandom:
      aligned = rng->UniformU64(locations) * spec.io_size;
      break;
    case LbaFunction::kSequential:
      // Seq: TargetOffset + (i x IOSize) mod TargetSize (Table 1,
      // Locality row); wraps inside the target space.
      aligned = (i % locations) * spec.io_size;
      break;
    case LbaFunction::kOrdered: {
      // Seq: TargetOffset + (Incr x i x IOSize); negative increments
      // wrap from the end of the target space.
      int64_t pos = spec.incr * static_cast<int64_t>(i);
      int64_t wrapped = pos % static_cast<int64_t>(locations);
      if (wrapped < 0) wrapped += static_cast<int64_t>(locations);
      aligned = static_cast<uint64_t>(wrapped) * spec.io_size;
      break;
    }
    case LbaFunction::kPartitioned: {
      // Pi x PS + Oi with PS = TargetSize/Partitions, Pi = i mod P,
      // Oi = floor(i/P) x IOSize mod PS (Table 1).
      uint64_t ps = spec.target_size / spec.partitions;
      ps -= ps % spec.io_size;  // IOSize-aligned partition stride
      uint64_t pi = i % spec.partitions;
      uint64_t oi = ((i / spec.partitions) * spec.io_size) % ps;
      aligned = pi * ps + oi;
      break;
    }
  }
  return spec.target_offset + spec.io_shift + aligned;
}

IoRequest PatternGenerator::Next() {
  IoRequest req;
  req.offset = LbaAt(spec_, index_, &rng_);
  req.size = spec_.io_size;
  req.mode = spec_.mode;
  ++index_;
  return req;
}

uint64_t PatternGenerator::PauseBeforeNextUs() const {
  switch (spec_.time) {
    case TimeFunction::kConsecutive:
      return 0;
    case TimeFunction::kPause:
      return index_ == 0 ? 0 : spec_.pause_us;
    case TimeFunction::kBurst:
      // A pause of length Pause between groups of Burst IOs.
      return (index_ != 0 && index_ % spec_.burst == 0) ? spec_.pause_us : 0;
  }
  return 0;
}

}  // namespace uflip
