// IO patterns (Section 3.1): a pattern is a sequence of IOs, each defined
// by four attributes -- submission time t(IOi), IOSize, LBA(IOi) and
// Mode(IOi). uFLIP restricts the attribute functions to:
//   t:    consecutive | pause(Pause) | burst(Pause, Burst)
//   size: constant IOSize
//   LBA:  sequential | random | ordered(Incr) | partitioned(Partitions),
//         relative to TargetOffset within TargetSize, aligned to IOSize
//         boundaries plus IOShift
//   mode: read | write
// plus run-control parameters IOCount (pattern length) and IOIgnore
// (warm-up IOs excluded from statistics).
#ifndef UFLIP_PATTERN_PATTERN_H_
#define UFLIP_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>

#include "src/device/block_device.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace uflip {

enum class LbaFunction { kSequential, kRandom, kOrdered, kPartitioned };
enum class TimeFunction { kConsecutive, kPause, kBurst };

const char* LbaFunctionName(LbaFunction f);
const char* TimeFunctionName(TimeFunction f);

/// Complete description of one reference pattern (Table 1).
struct PatternSpec {
  // -- the four IO attributes --
  IoMode mode = IoMode::kRead;
  uint32_t io_size = 32 * 1024;
  LbaFunction lba = LbaFunction::kSequential;
  TimeFunction time = TimeFunction::kConsecutive;

  // -- LBA function parameters --
  /// Start of the target space on the device (bytes).
  uint64_t target_offset = 0;
  /// Size of the target space (bytes); sequential/ordered patterns wrap
  /// around inside it.
  uint64_t target_size = 0;
  /// Misalignment added to every LBA (bytes, multiple of 512).
  uint64_t io_shift = 0;
  /// ordered(Incr): linear coefficient; -1 = reverse, 0 = in-place,
  /// >1 = increasing gaps.
  int64_t incr = 1;
  /// partitioned(Partitions): round-robin partitions of the target space.
  uint32_t partitions = 1;

  // -- time function parameters --
  uint64_t pause_us = 0;
  uint32_t burst = 1;

  // -- run control --
  uint32_t io_count = 1024;
  /// Start-up IOs excluded from summary statistics (Section 4.2).
  uint32_t io_ignore = 0;
  uint64_t seed = 1;

  std::string label;

  [[nodiscard]] Status Validate() const;
  std::string ToString() const;

  /// Number of distinct IOSize-aligned locations in the target space.
  uint64_t Locations() const { return target_size / io_size; }

  // Baseline patterns (SR / RR / SW / RW) over a target space.
  static PatternSpec SequentialRead(uint32_t io_size, uint64_t target_offset,
                                    uint64_t target_size);
  static PatternSpec RandomRead(uint32_t io_size, uint64_t target_offset,
                                uint64_t target_size);
  static PatternSpec SequentialWrite(uint32_t io_size, uint64_t target_offset,
                                     uint64_t target_size);
  static PatternSpec RandomWrite(uint32_t io_size, uint64_t target_offset,
                                 uint64_t target_size);
  /// Baseline by short name "SR" | "RR" | "SW" | "RW".
  [[nodiscard]] static StatusOr<PatternSpec> Baseline(const std::string& name,
                                        uint32_t io_size,
                                        uint64_t target_offset,
                                        uint64_t target_size);
};

/// Generates the IO sequence of a pattern. Deterministic given the
/// spec's seed. IOs must be drawn in order (the random LBA stream is
/// stateful).
class PatternGenerator {
 public:
  explicit PatternGenerator(const PatternSpec& spec);

  const PatternSpec& spec() const { return spec_; }

  /// The i-th IO request (call with i = 0, 1, 2, ... in order).
  IoRequest Next();

  /// Pause to insert before submitting the next IO (time function).
  uint64_t PauseBeforeNextUs() const;

  uint64_t index() const { return index_; }

  /// LBA formula (Table 1) for index i; exposed for tests. Random
  /// patterns draw from `rng`.
  static uint64_t LbaAt(const PatternSpec& spec, uint64_t i, Rng* rng);

 private:
  PatternSpec spec_;
  Rng rng_;
  uint64_t index_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_PATTERN_PATTERN_H_
