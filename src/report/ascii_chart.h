// Terminal rendering of the paper's figures: scatter/line charts of
// response time vs IO number or parameter value, with optional
// logarithmic axes (the paper plots response time on a log scale).
#ifndef UFLIP_REPORT_ASCII_CHART_H_
#define UFLIP_REPORT_ASCII_CHART_H_

#include <string>
#include <vector>

namespace uflip {

struct ChartOptions {
  int width = 96;
  int height = 22;
  bool log_y = false;
  bool log_x = false;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// One named series of (x, y) points.
struct ChartSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Renders series into a text chart (box-drawn axes, one glyph per
/// series, legend line).
std::string RenderChart(const std::vector<ChartSeries>& series,
                        const ChartOptions& options);

/// Convenience: y values against their indices (response-time traces).
std::string RenderTrace(const std::vector<double>& y,
                        const ChartOptions& options);

}  // namespace uflip

#endif  // UFLIP_REPORT_ASCII_CHART_H_
