#include "src/report/stage_table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace uflip {

namespace {

struct StageRow {
  const char* label;
  const char* metric;  // span.<metric>_us / span.<metric>_sum_us
};

constexpr StageRow kStages[] = {
    {"queue wait", "queue_wait"},
    {"controller", "controller"},
    {"flash", "flash"},
    {"bus", "bus"},
    {"total", "total"},
};

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

}  // namespace

std::string RenderStageBreakdown(const MetricSnapshot& snap) {
  uint64_t spans = snap.CounterValue("span.count");
  if (spans == 0) return "";
  double total_sum = snap.Value("span.total_sum_us");

  std::string out;
  AppendF(&out, "Where the time went (%" PRIu64
                " IO spans, simulated us):\n",
          spans);
  AppendF(&out, "  %-10s  %10s  %10s  %10s  %10s  %10s  %6s\n", "stage",
          "count", "mean", "p50", "p99", "max", "share");
  for (const StageRow& row : kStages) {
    const MetricValue* hist =
        snap.Find(std::string("span.") + row.metric + "_us");
    if (hist == nullptr || hist->kind != MetricKind::kHistogram ||
        hist->hist == nullptr) {
      continue;
    }
    const TDigest& d = *hist->hist;
    uint64_t count = d.count();
    if (count == 0) continue;  // e.g. no bus stage without the bus model
    double sum = snap.Value(std::string("span.") + row.metric + "_sum_us");
    double share = total_sum > 0 ? 100.0 * sum / total_sum : 0.0;
    AppendF(&out,
            "  %-10s  %10" PRIu64 "  %10.1f  %10.1f  %10.1f  %10.1f  %5.1f%%\n",
            row.label, count, count > 0 ? sum / static_cast<double>(count) : 0.0,
            d.Quantile(0.5), d.Quantile(0.99), d.Quantile(1.0), share);
  }
  return out;
}

}  // namespace uflip
