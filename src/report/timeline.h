// ASCII rendering of the observability layer's utilization timelines:
// per-channel busy fraction, controller occupancy and queue depth over
// simulated time, as recorded in a MetricSnapshot (see
// src/obs/metric_registry.h for the metric names). This is the
// `ftl_compare --explain=CELL` view -- one sparkline row per channel,
// dark glyphs = busy windows, plus a queue-depth chart when the
// snapshot has one.
#ifndef UFLIP_REPORT_TIMELINE_H_
#define UFLIP_REPORT_TIMELINE_H_

#include <string>

#include "src/obs/metric_registry.h"

namespace uflip {

struct TimelineOptions {
  /// Sparkline width in windows (columns).
  int width = 72;
  /// Render the queue-depth series as a full chart below the sparklines
  /// (when the snapshot carries "device.queue_depth").
  bool queue_depth_chart = true;
};

/// Renders every utilization time series in `snap` ("device.busy_us",
/// "device.channel.<i>.busy_us", "device.controller.busy_us",
/// "device.queue_depth") into a text block. Returns "" when the
/// snapshot has no timeline metrics.
std::string RenderUtilizationTimelines(const MetricSnapshot& snap,
                                       const TimelineOptions& options = {});

/// One busy-fraction sparkline over `width` windows: the glyph ramp
/// " .:-=+*#%@" maps fraction 0..1 per window. Exposed for tests.
std::string BusySparkline(const TimeSeries& series, int width);

}  // namespace uflip

#endif  // UFLIP_REPORT_TIMELINE_H_
