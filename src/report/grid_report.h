// Tabular report over a multi-axis sweep (the design-space explorer's
// output format): each cell is one run, keyed by its position on the
// sweep axes (device, FTL, queue depth, channels, cache pages, ...) and
// carrying its running-phase statistics. Rendering marks the best cell
// (lowest mean response time), reports every cell's factor relative to
// it, and exports the full grid as CSV for downstream plotting.
#ifndef UFLIP_REPORT_GRID_REPORT_H_
#define UFLIP_REPORT_GRID_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/run/run_stats.h"

namespace uflip {

/// One run of the sweep: its coordinates on the axes plus its results.
struct GridCell {
  /// One value per axis, in the axes' order ("mtron", "8", "4", ...).
  std::vector<std::string> keys;
  /// Running-phase statistics of the cell's replay; with reps > 1 the
  /// ReplicateSet aggregate (pooled moments, merged-sketch
  /// percentiles).
  RunStats stats;
  /// Repetitions pooled into this cell, and the half-width of the 95%
  /// confidence interval on the mean across them (0 when reps < 2).
  uint32_t reps = 1;
  double mean_ci95_us = 0;
  /// IOs executed and device-time makespan (summed over repetitions),
  /// for throughput.
  uint64_t ios = 0;
  uint64_t makespan_us = 0;

  double IosPerSec() const {
    return makespan_us > 0 ? static_cast<double>(ios) * 1e6 /
                                 static_cast<double>(makespan_us)
                           : 0.0;
  }
};

/// Collects cells keyed on fixed axes and renders them.
class GridReport {
 public:
  /// `axes` are the key column names, one per GridCell::keys entry.
  explicit GridReport(std::vector<std::string> axes);

  /// Adds one cell; keys.size() must equal the axis count.
  void Add(GridCell cell);

  bool empty() const { return cells_.empty(); }
  const std::vector<GridCell>& cells() const { return cells_; }
  const std::vector<std::string>& axes() const { return axes_; }

  /// Index of the best cell (lowest mean among cells with IOs);
  /// SIZE_MAX when no cell qualifies.
  size_t BestIndex() const;

  /// True when cell `i` is not the best but its 95% confidence interval
  /// overlaps the best cell's: at the measured repetition count the two
  /// means are not distinguishable, so the cell is not a loser. Both
  /// cells must carry replication (reps >= 2) -- single runs have no
  /// interval to overlap. The two-argument form takes a precomputed
  /// BestIndex() so rendering avoids the per-row rescan.
  bool TiesWithBest(size_t i) const;
  bool TiesWithBest(size_t i, size_t best) const;

  /// Text table: axis columns, mean / CI half-width / factor-vs-best
  /// ("x") / p50 / p95 / p99 / max (ms) and IOs/s, one row per cell in
  /// insertion order; the best cell is marked '*' and cells whose CI
  /// overlaps the best's are marked '~'.
  std::string Render(const std::string& title) const;

  /// The non-axis CSV columns in emission order. One fixed schema
  /// regardless of replication: reps=1 cells emit reps=1 and
  /// mean_ci95_us=0 rather than dropping columns, so grids produced
  /// with different --reps concatenate and diff cleanly.
  static const std::vector<std::string>& CsvValueColumns();

  /// The full CSV header row (axes + CsvValueColumns), newline
  /// included.
  std::string CsvHeader() const;

  /// CSV export: CsvHeader() columns, one row per cell. `header` =
  /// false appends rows only (for concatenating grids that share axes).
  std::string ToCsv(bool header = true) const;

 private:
  std::vector<std::string> axes_;
  std::vector<GridCell> cells_;
};

}  // namespace uflip

#endif  // UFLIP_REPORT_GRID_REPORT_H_
