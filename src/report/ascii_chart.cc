#include "src/report/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace uflip {

namespace {

double Tx(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-9));
}

}  // namespace

std::string RenderChart(const std::vector<ChartSeries>& series,
                        const ChartOptions& options) {
  const int w = std::max(20, options.width);
  const int h = std::max(6, options.height);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    for (size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      any = true;
      xmin = std::min(xmin, Tx(s.x[i], options.log_x));
      xmax = std::max(xmax, Tx(s.x[i], options.log_x));
      ymin = std::min(ymin, Tx(s.y[i], options.log_y));
      ymax = std::max(ymax, Tx(s.y[i], options.log_y));
    }
  }
  if (!any) return options.title + "\n  (no data)\n";
  if (xmax - xmin < 1e-12) xmax = xmin + 1;
  if (ymax - ymin < 1e-12) ymax = ymin + 1;

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (const auto& s : series) {
    for (size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      double fx = (Tx(s.x[i], options.log_x) - xmin) / (xmax - xmin);
      double fy = (Tx(s.y[i], options.log_y) - ymin) / (ymax - ymin);
      int col = static_cast<int>(fx * (w - 1));
      int row = h - 1 - static_cast<int>(fy * (h - 1));
      grid[row][col] = s.glyph;
    }
  }

  auto fmt_val = [&](double t, bool log_scale) {
    double v = log_scale ? std::pow(10.0, t) : t;
    char buf[32];
    if (std::fabs(v) >= 1e6 || (std::fabs(v) < 1e-2 && v != 0)) {
      std::snprintf(buf, sizeof(buf), "%.2g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%.4g", v);
    }
    return std::string(buf);
  };

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  std::string ytop = fmt_val(ymax, options.log_y);
  std::string ybot = fmt_val(ymin, options.log_y);
  size_t margin = std::max(ytop.size(), ybot.size()) + 1;
  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) {
      label = ytop;
    } else if (r == h - 1) {
      label = ybot;
    }
    out += std::string(margin - label.size(), ' ') + label + "|" + grid[r] +
           "\n";
  }
  out += std::string(margin, ' ') + "+" + std::string(w, '-') + "\n";
  std::string xlo = fmt_val(xmin, options.log_x);
  std::string xhi = fmt_val(xmax, options.log_x);
  out += std::string(margin + 1, ' ') + xlo +
         std::string(std::max<int>(1, w - static_cast<int>(xlo.size()) -
                                          static_cast<int>(xhi.size())),
                     ' ') +
         xhi + "\n";
  std::string legend;
  for (const auto& s : series) {
    if (!legend.empty()) legend += "   ";
    legend += std::string(1, s.glyph) + " " + s.name;
  }
  if (!legend.empty()) {
    out += std::string(margin + 1, ' ') + legend;
  }
  if (!options.x_label.empty()) out += "   [x: " + options.x_label + "]";
  if (!options.y_label.empty()) out += " [y: " + options.y_label + "]";
  out += "\n";
  return out;
}

std::string RenderTrace(const std::vector<double>& y,
                        const ChartOptions& options) {
  ChartSeries s;
  s.name = options.y_label.empty() ? "rt" : options.y_label;
  s.y = y;
  s.x.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) s.x[i] = static_cast<double>(i);
  return RenderChart({s}, options);
}

}  // namespace uflip
