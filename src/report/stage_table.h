// The "where the time went" table of `ftl_compare --explain=CELL`:
// per-IO stage latency decomposition (queue wait, controller, flash,
// bus, total) read from the span.* metrics a SpanRecorder exports into
// a MetricSnapshot (see src/obs/span_trace.h). Count and mean are
// exact (counter + sum metrics); p50/p99/max come from the mergeable
// t-digest behind each stage histogram, so the table is as valid for a
// merged multi-rep snapshot as for a single run.
#ifndef UFLIP_REPORT_STAGE_TABLE_H_
#define UFLIP_REPORT_STAGE_TABLE_H_

#include <string>

#include "src/obs/metric_registry.h"

namespace uflip {

/// Renders the per-stage breakdown table from `snap`'s span.* metrics.
/// Returns "" when the snapshot carries no spans (span.count absent or
/// zero).
std::string RenderStageBreakdown(const MetricSnapshot& snap);

}  // namespace uflip

#endif  // UFLIP_REPORT_STAGE_TABLE_H_
