#include "src/report/grid_report.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace uflip {

GridReport::GridReport(std::vector<std::string> axes)
    : axes_(std::move(axes)) {
  UFLIP_CHECK(!axes_.empty());
}

void GridReport::Add(GridCell cell) {
  UFLIP_CHECK(cell.keys.size() == axes_.size());
  cells_.push_back(std::move(cell));
}

size_t GridReport::BestIndex() const {
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].stats.count == 0) continue;
    if (best == SIZE_MAX ||
        cells_[i].stats.mean_us < cells_[best].stats.mean_us) {
      best = i;
    }
  }
  return best;
}

std::string GridReport::Render(const std::string& title) const {
  // Axis column widths sized to their content.
  std::vector<size_t> widths(axes_.size());
  for (size_t a = 0; a < axes_.size(); ++a) {
    widths[a] = axes_[a].size();
    for (const GridCell& c : cells_) {
      widths[a] = std::max(widths[a], c.keys[a].size());
    }
  }
  size_t best = BestIndex();
  double best_mean = best == SIZE_MAX ? 0 : cells_[best].stats.mean_us;

  std::string out = title + "\n";
  out += "   ";
  for (size_t a = 0; a < axes_.size(); ++a) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %-*s", static_cast<int>(widths[a]),
                  axes_[a].c_str());
    out += buf;
  }
  char head[128];
  std::snprintf(head, sizeof(head), " %9s %6s %9s %9s %9s %9s %9s\n",
                "mean ms", "x", "p50 ms", "p95 ms", "p99 ms", "max ms",
                "IOs/s");
  out += head;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const GridCell& c = cells_[i];
    out += i == best ? " * " : "   ";
    for (size_t a = 0; a < axes_.size(); ++a) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %-*s", static_cast<int>(widths[a]),
                    c.keys[a].c_str());
      out += buf;
    }
    double factor =
        best_mean > 0 && c.stats.count > 0 ? c.stats.mean_us / best_mean : 0;
    char row[192];
    std::snprintf(row, sizeof(row),
                  " %9.3f %6.2f %9.3f %9.3f %9.3f %9.3f %9.0f\n",
                  UsToMs(c.stats.mean_us), factor, UsToMs(c.stats.p50_us),
                  UsToMs(c.stats.p95_us), UsToMs(c.stats.p99_us),
                  UsToMs(c.stats.max_us), c.IosPerSec());
    out += row;
  }
  if (best != SIZE_MAX) {
    out += "   (* = best cell; x = mean vs best)\n";
  }
  return out;
}

std::string GridReport::ToCsv(bool header) const {
  std::string out;
  if (header) {
    for (const std::string& a : axes_) {
      out += a;
      out += ',';
    }
    out +=
        "ios,mean_us,stddev_us,p50_us,p95_us,p99_us,min_us,max_us,"
        "makespan_us,ios_per_sec\n";
  }
  for (const GridCell& c : cells_) {
    for (const std::string& k : c.keys) {
      out += k;
      out += ',';
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%llu,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%llu,%.1f\n",
                  static_cast<unsigned long long>(c.ios), c.stats.mean_us,
                  c.stats.stddev_us, c.stats.p50_us, c.stats.p95_us,
                  c.stats.p99_us, c.stats.min_us, c.stats.max_us,
                  static_cast<unsigned long long>(c.makespan_us),
                  c.IosPerSec());
    out += buf;
  }
  return out;
}

}  // namespace uflip
