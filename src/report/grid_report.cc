#include "src/report/grid_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace uflip {

GridReport::GridReport(std::vector<std::string> axes)
    : axes_(std::move(axes)) {
  UFLIP_CHECK(!axes_.empty());
}

void GridReport::Add(GridCell cell) {
  UFLIP_CHECK(cell.keys.size() == axes_.size());
  cells_.push_back(std::move(cell));
}

size_t GridReport::BestIndex() const {
  size_t best = SIZE_MAX;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].stats.count == 0) continue;
    if (best == SIZE_MAX ||
        cells_[i].stats.mean_us < cells_[best].stats.mean_us) {
      best = i;
    }
  }
  return best;
}

bool GridReport::TiesWithBest(size_t i) const {
  return TiesWithBest(i, BestIndex());
}

bool GridReport::TiesWithBest(size_t i, size_t best) const {
  if (best == SIZE_MAX || i == best || i >= cells_.size()) return false;
  const GridCell& c = cells_[i];
  const GridCell& b = cells_[best];
  if (c.stats.count == 0) return false;
  // A tie claim needs replication evidence on both sides: single-run
  // cells have no interval, so an exact mean coincidence says nothing.
  if (c.reps < 2 || b.reps < 2) return false;
  return CiOverlaps(c.stats.mean_us, c.mean_ci95_us, b.stats.mean_us,
                    b.mean_ci95_us);
}

std::string GridReport::Render(const std::string& title) const {
  // Axis column widths sized to their content.
  std::vector<size_t> widths(axes_.size());
  for (size_t a = 0; a < axes_.size(); ++a) {
    widths[a] = axes_[a].size();
    for (const GridCell& c : cells_) {
      widths[a] = std::max(widths[a], c.keys[a].size());
    }
  }
  size_t best = BestIndex();
  double best_mean = best == SIZE_MAX ? 0 : cells_[best].stats.mean_us;

  std::string out = title + "\n";
  out += "   ";
  for (size_t a = 0; a < axes_.size(); ++a) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %-*s", static_cast<int>(widths[a]),
                  axes_[a].c_str());
    out += buf;
  }
  char head[160];
  std::snprintf(head, sizeof(head), " %9s %8s %6s %9s %9s %9s %9s %9s\n",
                "mean ms", "ci95 ms", "x", "p50 ms", "p95 ms", "p99 ms",
                "max ms", "IOs/s");
  out += head;
  bool any_tie = false;
  bool any_reps = false;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const GridCell& c = cells_[i];
    bool tie = TiesWithBest(i, best);
    any_tie |= tie;
    any_reps |= c.reps > 1;
    out += i == best ? " * " : (tie ? " ~ " : "   ");
    for (size_t a = 0; a < axes_.size(); ++a) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %-*s", static_cast<int>(widths[a]),
                    c.keys[a].c_str());
      out += buf;
    }
    double factor =
        best_mean > 0 && c.stats.count > 0 ? c.stats.mean_us / best_mean : 0;
    char row[224];
    std::snprintf(row, sizeof(row),
                  " %9.3f %8.3f %6.2f %9.3f %9.3f %9.3f %9.3f %9.0f\n",
                  UsToMs(c.stats.mean_us), UsToMs(c.mean_ci95_us), factor,
                  UsToMs(c.stats.p50_us), UsToMs(c.stats.p95_us),
                  UsToMs(c.stats.p99_us), UsToMs(c.stats.max_us),
                  c.IosPerSec());
    out += row;
  }
  if (best != SIZE_MAX) {
    out += "   (* = best cell";
    if (any_tie || any_reps) {
      out += "; ~ = 95% CI overlaps best, not distinguishable";
    }
    out += "; x = mean vs best)\n";
  }
  return out;
}

const std::vector<std::string>& GridReport::CsvValueColumns() {
  // Keep in sync with the snprintf in ToCsv; the schema test pins both.
  static const std::vector<std::string> kColumns = {
      "ios",    "reps",   "mean_us", "mean_ci95_us", "stddev_us",
      "p50_us", "p95_us", "p99_us",  "min_us",       "max_us",
      "makespan_us", "ios_per_sec"};
  return kColumns;
}

std::string GridReport::CsvHeader() const {
  std::string out;
  for (const std::string& a : axes_) {
    out += a;
    out += ',';
  }
  const std::vector<std::string>& cols = CsvValueColumns();
  for (size_t i = 0; i < cols.size(); ++i) {
    out += cols[i];
    out += i + 1 < cols.size() ? "," : "\n";
  }
  return out;
}

std::string GridReport::ToCsv(bool header) const {
  std::string out;
  if (header) out += CsvHeader();
  for (const GridCell& c : cells_) {
    for (const std::string& k : c.keys) {
      out += k;
      out += ',';
    }
    char buf[288];
    std::snprintf(
        buf, sizeof(buf),
        "%llu,%u,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%llu,%.1f\n",
        static_cast<unsigned long long>(c.ios), c.reps, c.stats.mean_us,
        c.mean_ci95_us, c.stats.stddev_us, c.stats.p50_us, c.stats.p95_us,
        c.stats.p99_us, c.stats.min_us, c.stats.max_us,
        static_cast<unsigned long long>(c.makespan_us), c.IosPerSec());
    out += buf;
  }
  return out;
}

}  // namespace uflip
