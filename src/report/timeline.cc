#include "src/report/timeline.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/report/ascii_chart.h"

namespace uflip {

namespace {

constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampMax = 9;  // strlen(kRamp) - 1

std::string HumanUs(uint64_t us) {
  char buf[32];
  if (us >= 10ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(us) / 1e6);
  } else if (us >= 10ull * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

/// A busy series' average fraction over its span.
double AvgFraction(const TimeSeries& s) {
  if (s.empty()) return 0;
  uint64_t span = s.EndUs() - s.BucketStartUs(0);
  return span == 0 ? 0 : s.TotalSum() / static_cast<double>(span);
}

}  // namespace

std::string BusySparkline(const TimeSeries& series, int width) {
  if (series.empty() || width <= 0) return "";
  std::vector<TimeSeries::Window> windows =
      series.Resample(static_cast<size_t>(width));
  uint64_t span = series.EndUs() - series.BucketStartUs(0);
  double window_us =
      static_cast<double>(span) / static_cast<double>(windows.size());
  std::string out;
  out.reserve(windows.size());
  for (const TimeSeries::Window& w : windows) {
    double frac = window_us == 0 ? 0 : w.sum / window_us;
    frac = std::clamp(frac, 0.0, 1.0);
    out += kRamp[static_cast<int>(frac * kRampMax + 0.5)];
  }
  return out;
}

std::string RenderUtilizationTimelines(const MetricSnapshot& snap,
                                       const TimelineOptions& options) {
  // Collect the busy series in display order: whole device, channels
  // (already name-sorted in the snapshot), controller.
  struct Row {
    std::string label;
    const TimeSeries* series;
  };
  std::vector<Row> rows;
  for (const MetricValue& v : snap.values()) {
    if (v.kind != MetricKind::kTimeSeries || v.series == nullptr ||
        v.series->empty()) {
      continue;
    }
    if (v.name == "device.busy_us") {
      rows.push_back({"device", v.series.get()});
    } else if (v.name.rfind("device.channel.", 0) == 0) {
      // device.channel.<i>.busy_us -> "chan <i>"
      std::string idx = v.name.substr(15, v.name.size() - 15 - 8);
      rows.push_back({"chan " + idx, v.series.get()});
    } else if (v.name == "device.controller.busy_us") {
      rows.push_back({"controller", v.series.get()});
    }
  }
  const MetricValue* qd = snap.Find("device.queue_depth");
  if (rows.empty() && qd == nullptr) return "";

  std::string out;
  char buf[160];
  if (!rows.empty()) {
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const Row& r : rows) {
      lo = std::min(lo, r.series->BucketStartUs(0));
      hi = std::max(hi, r.series->EndUs());
    }
    std::snprintf(buf, sizeof(buf),
                  "utilization %s .. %s (%d windows, busy fraction ' '=0 "
                  "'@'=1)\n",
                  HumanUs(lo).c_str(), HumanUs(hi).c_str(), options.width);
    out += buf;
    size_t label_w = 0;
    for (const Row& r : rows) label_w = std::max(label_w, r.label.size());
    for (const Row& r : rows) {
      std::snprintf(buf, sizeof(buf), "  %-*s |%s| avg %.2f\n",
                    static_cast<int>(label_w), r.label.c_str(),
                    BusySparkline(*r.series, options.width).c_str(),
                    AvgFraction(*r.series));
      out += buf;
    }
  }

  if (options.queue_depth_chart && qd != nullptr && qd->series != nullptr &&
      !qd->series->empty()) {
    const TimeSeries& s = *qd->series;
    std::vector<TimeSeries::Window> windows =
        s.Resample(static_cast<size_t>(options.width));
    ChartSeries series;
    series.name = "mean queue depth";
    for (const TimeSeries::Window& w : windows) {
      if (w.count == 0) continue;
      series.x.push_back(static_cast<double>(w.start_us) / 1e3);
      series.y.push_back(w.sum / static_cast<double>(w.count));
    }
    if (!series.x.empty()) {
      ChartOptions chart;
      chart.title = "queue depth over time";
      chart.x_label = "simulated ms";
      chart.y_label = "depth";
      chart.width = std::max(48, options.width);
      chart.height = 10;
      out += RenderChart({series}, chart);
    }
  }
  return out;
}

}  // namespace uflip
