// Native async implementation of the simulated device: in-flight IOs
// are dispatched onto the FlashArray channels of the underlying FTL
// stack, so overlapping requests to different channels genuinely
// overlap, exactly the internal parallelism Section 2.1 says the block
// manager should leverage. With queue_depth = 1 the dispatch
// degenerates to the single-queue serialization of the synchronous
// SimDevice, microsecond for microsecond, which is what makes
// SyncAdapter round-trips exact.
//
// Timing is delegated to a DeviceTimeline (src/sim/): each Enqueue
// submits one dispatch event onto the event calendar and resolves it
// eagerly (the async API's contract -- PollCompletions returns every
// enqueued IO's record immediately), so per-channel / controller / bus
// occupancy all advance through the discrete-event core rather than
// the scalar busy-until fields this class used to keep.
//
// Two controller models govern how queued IOs share the device:
//  * fully pipelined (the default; ControllerConfig::pipelined with
//    controller_us == 0): the whole service time overlaps across
//    channels, so speedup grows with queue depth up to channels x;
//  * bounded controller (pipelined == false or controller_us > 0):
//    each IO still holds its channel for the whole service, but its
//    controller/bus stage (ServiceCost::controller_us) additionally
//    occupies a single controller-busy timeline, so controller stages
//    of in-flight IOs never overlap -- at high queue depth the
//    serialized stage caps the speedup strictly below channels x, as
//    on real devices.
#ifndef UFLIP_DEVICE_ASYNC_SIM_DEVICE_H_
#define UFLIP_DEVICE_ASYNC_SIM_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/device/async_device.h"
#include "src/device/sim_device.h"
#include "src/sim/device_timeline.h"
#include "src/util/status.h"

namespace uflip {

class AsyncSimDevice : public AsyncBlockDevice {
 public:
  /// Lifts `sim` into the queued API, seeding the per-channel timeline
  /// from its synchronous busy-until (so a device prepared through the
  /// sync path carries its state over). Once lifted, drive the device
  /// only through this interface or a SyncAdapter over it: the inner
  /// synchronous timeline is no longer maintained. calendar_shards > 1
  /// spreads the event calendar's channels over that many shards
  /// (clamped to the channel count; byte-identical to 1 -- see
  /// src/sim/sharded_calendar.h).
  AsyncSimDevice(std::unique_ptr<SimDevice> sim, uint32_t queue_depth,
                 uint32_t calendar_shards = 1);

  uint64_t capacity_bytes() const override { return sim_->capacity_bytes(); }
  uint32_t queue_depth() const override { return queue_depth_; }
  [[nodiscard]] StatusOr<IoToken> Enqueue(uint64_t t_us, const IoRequest& req) override;
  std::vector<IoCompletion> PollCompletions() override;
  std::vector<IoCompletion> DrainUntil(uint64_t t_us) override;
  size_t pending() const override { return ledger_.pending(); }
  Clock* clock() override { return sim_->clock(); }
  std::string name() const override;

  SimDevice* sim() { return sim_.get(); }
  const SimDevice* sim() const { return sim_.get(); }
  uint32_t channels() const { return timeline_.channels(); }

  /// Calendar shards the timeline actually runs with (1 under the
  /// bounded-controller model regardless of what was requested).
  uint32_t calendar_shards() const { return timeline_.shards(); }

  /// Channel the controller would dispatch `req` to right now (the
  /// FTL's hint for the IO's first page).
  uint32_t DispatchChannelOf(const IoRequest& req) const;

  /// Latest completion across all channels (the simulated makespan so
  /// far when the device started fresh).
  uint64_t busy_max_us() const { return timeline_.BusyMaxUs(); }

  /// Attaches the observability layer to the whole stack: the inner
  /// SimDevice's counters/histogram plus the event timeline's
  /// per-channel busy series ("device.channel.<i>.busy_us"), the
  /// controller occupancy (bounded-controller model only), the
  /// per-channel bus-slot series ("device.channel.<i>.bus_us";
  /// bus-contention model only) and the queue depth over time. nullptr
  /// detaches. Never perturbs the simulated timeline.
  void AttachMetrics(MetricRegistry* registry);
  MetricRegistry* metrics_registry() const override {
    return sim_->metrics_registry();
  }

  /// Attaches per-IO span tracing to the multi-queue timeline: every
  /// enqueued IO records one span chain (submit at Enqueue time, so
  /// queue-depth backpressure shows up as queue wait) into `recorder`
  /// (not owned). nullptr detaches. Never perturbs the timeline.
  void AttachSpans(SpanRecorder* recorder);
  SpanRecorder* span_recorder() const override { return span_recorder_; }

 private:
  std::unique_ptr<SimDevice> sim_;
  uint32_t queue_depth_;
  /// Per-channel, controller and bus-slot occupancy as calendar events
  /// (replaces the chan_busy_us_/ctrl_busy_us_/busy_max_us_ scalars).
  DeviceTimeline timeline_;
  std::vector<IoOutcome> outcome_scratch_;
  CompletionLedger ledger_;

  // Observability handles (null when unattached; see AttachMetrics).
  TimeSeries* m_queue_depth_ = nullptr;
  SpanRecorder* span_recorder_ = nullptr;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_ASYNC_SIM_DEVICE_H_
