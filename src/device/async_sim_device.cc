#include "src/device/async_sim_device.h"

#include <algorithm>
#include <string>

#include "src/obs/metric_registry.h"
#include "src/util/logging.h"

namespace uflip {

AsyncSimDevice::AsyncSimDevice(std::unique_ptr<SimDevice> sim,
                               uint32_t queue_depth)
    : sim_(std::move(sim)), queue_depth_(queue_depth) {
  UFLIP_CHECK(sim_ != nullptr);
  UFLIP_CHECK(queue_depth_ >= 1);
  chan_busy_us_.assign(sim_->ftl()->Channels(), sim_->busy_until_us());
  ctrl_busy_us_ = sim_->busy_until_us();
  busy_max_us_ = sim_->busy_until_us();
}

void AsyncSimDevice::AttachMetrics(MetricRegistry* registry) {
  sim_->AttachMetrics(registry);
  if (registry == nullptr) {
    m_chan_busy_.clear();
    m_ctrl_busy_ = nullptr;
    m_queue_depth_ = nullptr;
    return;
  }
  m_chan_busy_.resize(channels());
  for (uint32_t ch = 0; ch < channels(); ++ch) {
    m_chan_busy_[ch] = registry->GetTimeSeries(
        "device.channel." + std::to_string(ch) + ".busy_us",
        obs::kTimelineIntervalUs);
  }
  if (sim_->controller().SerializedController()) {
    m_ctrl_busy_ = registry->GetTimeSeries("device.controller.busy_us",
                                           obs::kTimelineIntervalUs);
  }
  m_queue_depth_ = registry->GetTimeSeries("device.queue_depth",
                                           obs::kTimelineIntervalUs);
  auto* makespan = registry->GetGauge("device.makespan_us");
  registry->AddCollector([this, makespan] {
    obs::SetMax(makespan, static_cast<double>(busy_max_us_));
  });
}

uint32_t AsyncSimDevice::DispatchChannelOf(const IoRequest& req) const {
  uint64_t first_page = req.offset / sim_->page_bytes();
  uint32_t ch = sim_->ftl()->DispatchChannel(first_page);
  UFLIP_CHECK(ch < chan_busy_us_.size());
  return ch;
}

StatusOr<IoToken> AsyncSimDevice::Enqueue(uint64_t t_us,
                                          const IoRequest& req) {
  // A full queue blocks the submitter until a slot frees.
  uint64_t eff = ledger_.Admit(t_us, queue_depth_);
  // Time past the last completion is device idle time, donated to
  // asynchronous reclamation (same rule as the synchronous path).
  double idle_us = eff > busy_max_us_
                       ? static_cast<double>(eff - busy_max_us_)
                       : 0.0;
  StatusOr<ServiceCost> service =
      sim_->ServiceUs(idle_us, req, nullptr, nullptr);
  if (!service.ok()) return service.status();
  uint32_t ch = DispatchChannelOf(req);
  uint64_t start;
  uint64_t complete;
  if (sim_->controller().SerializedController()) {
    // Bounded controller: the IO starts when its channel AND the
    // controller are both free, holds the channel for its entire
    // service (the die plus its bus slot own the command end to end,
    // as in the pipelined model) and additionally occupies the
    // controller for its controller stage -- so controller stages of
    // in-flight IOs never overlap. The serialized stage both floors
    // the makespan at n x controller_us and staggers the channel
    // streams, keeping the speedup over qd=1 strictly below
    // channels x. The fractional tail of the controller stage travels
    // with the flash stage so qd=1 reproduces the synchronous
    // start + floor(total) rounding exactly.
    start = std::max({eff, ctrl_busy_us_, chan_busy_us_[ch]});
    uint64_t ctrl_whole = static_cast<uint64_t>(service->controller_us);
    double ctrl_frac =
        service->controller_us - static_cast<double>(ctrl_whole);
    ctrl_busy_us_ = start + ctrl_whole;
    complete = start + ctrl_whole +
               static_cast<uint64_t>(ctrl_frac + service->channel_us);
    obs::Span(m_ctrl_busy_, start, ctrl_busy_us_);
  } else {
    // Fully pipelined: the whole service time overlaps across channels.
    start = std::max(eff, chan_busy_us_[ch]);
    complete = start + static_cast<uint64_t>(service->TotalUs());
  }
  chan_busy_us_[ch] = complete;
  busy_max_us_ = std::max(busy_max_us_, complete);
  if (!m_chan_busy_.empty()) {
    obs::Span(m_chan_busy_[ch], start, complete);
  }
  // Queue occupancy at admission: IOs still incomplete at eff plus this
  // one (in_flight() would count against the submitter's lagging clock
  // and read far beyond the queue depth under backpressure).
  obs::Sample(m_queue_depth_, eff,
              static_cast<double>(ledger_.OccupancyAt(eff) + 1));

  IoCompletion rec;
  rec.token = ledger_.NextToken();
  rec.submit_us = t_us;
  rec.complete_us = complete;
  rec.rt_us = static_cast<double>(complete - t_us);
  ledger_.Commit(rec);
  return rec.token;
}

std::vector<IoCompletion> AsyncSimDevice::PollCompletions() {
  return ledger_.Pop(UINT64_MAX);
}

std::vector<IoCompletion> AsyncSimDevice::DrainUntil(uint64_t t_us) {
  return ledger_.Pop(t_us);
}

std::string AsyncSimDevice::name() const {
  return sim_->name() + "+mq" + std::to_string(queue_depth_);
}

}  // namespace uflip
