#include "src/device/async_sim_device.h"

#include <string>
#include <utility>

#include "src/obs/metric_registry.h"
#include "src/util/logging.h"

namespace uflip {

namespace {

std::unique_ptr<SimDevice> CheckedSim(std::unique_ptr<SimDevice> sim) {
  UFLIP_CHECK(sim != nullptr);
  return sim;
}

}  // namespace

AsyncSimDevice::AsyncSimDevice(std::unique_ptr<SimDevice> sim,
                               uint32_t queue_depth, uint32_t calendar_shards)
    : sim_(CheckedSim(std::move(sim))),
      queue_depth_(queue_depth),
      timeline_(sim_->ftl()->Channels(),
                sim_->controller().SerializedController(), calendar_shards,
                sim_->busy_until_us()) {
  UFLIP_CHECK(queue_depth_ >= 1);
}

void AsyncSimDevice::AttachMetrics(MetricRegistry* registry) {
  sim_->AttachMetrics(registry);
  if (registry == nullptr) {
    timeline_.AttachMetrics({}, nullptr, {});
    m_queue_depth_ = nullptr;
    return;
  }
  std::vector<TimeSeries*> chan_busy(channels(), nullptr);
  std::vector<TimeSeries*> bus_busy;
  for (uint32_t ch = 0; ch < channels(); ++ch) {
    chan_busy[ch] = registry->GetTimeSeries(
        "device.channel." + std::to_string(ch) + ".busy_us",
        obs::kTimelineIntervalUs);
  }
  TimeSeries* ctrl_busy = nullptr;
  if (sim_->controller().SerializedController()) {
    ctrl_busy = registry->GetTimeSeries("device.controller.busy_us",
                                        obs::kTimelineIntervalUs);
  }
  if (sim_->controller().channel_bus_contention) {
    // Created only under the bus-contention model: registering a
    // series exports it in every snapshot, and attached-vs-unattached
    // runs must stay byte-identical when the knob is off.
    bus_busy.resize(channels(), nullptr);
    for (uint32_t ch = 0; ch < channels(); ++ch) {
      bus_busy[ch] = registry->GetTimeSeries(
          "device.channel." + std::to_string(ch) + ".bus_us",
          obs::kTimelineIntervalUs);
    }
  }
  timeline_.AttachMetrics(std::move(chan_busy), ctrl_busy,
                          std::move(bus_busy));
  m_queue_depth_ = registry->GetTimeSeries("device.queue_depth",
                                           obs::kTimelineIntervalUs);
  auto* makespan = registry->GetGauge("device.makespan_us");
  registry->AddCollector([this, makespan] {
    obs::SetMax(makespan, static_cast<double>(timeline_.BusyMaxUs()));
  });
}

void AsyncSimDevice::AttachSpans(SpanRecorder* recorder) {
  span_recorder_ = recorder;
  timeline_.AttachSpans(recorder);
}

uint32_t AsyncSimDevice::DispatchChannelOf(const IoRequest& req) const {
  uint64_t first_page = req.offset / sim_->page_bytes();
  uint32_t ch = sim_->ftl()->DispatchChannel(first_page);
  UFLIP_CHECK(ch < timeline_.channels());
  return ch;
}

StatusOr<IoToken> AsyncSimDevice::Enqueue(uint64_t t_us,
                                          const IoRequest& req) {
  // A full queue blocks the submitter until a slot frees.
  uint64_t eff = ledger_.Admit(t_us, queue_depth_);
  // Time past the last completion is device idle time, donated to
  // asynchronous reclamation (same rule as the synchronous path).
  uint64_t busy_max = timeline_.BusyMaxUs();
  double idle_us =
      eff > busy_max ? static_cast<double>(eff - busy_max) : 0.0;
  StatusOr<ServiceCost> service =
      sim_->ServiceUs(idle_us, req, nullptr, nullptr);
  if (!service.ok()) return service.status();
  uint32_t ch = DispatchChannelOf(req);
  IoToken token = ledger_.NextToken();
  // The IO becomes a dispatch event on the calendar and resolves
  // eagerly (the async contract: every enqueued IO's record is
  // available immediately), so exactly one chain is in the calendar
  // and exactly one outcome comes back.
  // submit_us = t_us: the span's queue wait covers both queue-depth
  // backpressure (eff - t_us) and dispatch wait (start - eff).
  timeline_.Submit(token, eff, ch,
                   IoStages{service->controller_us, service->channel_us,
                            service->bus_us},
                   /*submit_us=*/t_us);
  outcome_scratch_.clear();
  timeline_.ResolveAll(&outcome_scratch_);
  UFLIP_CHECK(outcome_scratch_.size() == 1 &&
              outcome_scratch_[0].id == token);
  uint64_t complete = outcome_scratch_[0].complete_us;
  // Queue occupancy at admission: IOs still incomplete at eff plus this
  // one (in_flight() would count against the submitter's lagging clock
  // and read far beyond the queue depth under backpressure).
  obs::Sample(m_queue_depth_, eff,
              static_cast<double>(ledger_.OccupancyAt(eff) + 1));

  IoCompletion rec;
  rec.token = token;
  rec.submit_us = t_us;
  rec.complete_us = complete;
  rec.rt_us = static_cast<double>(complete - t_us);
  ledger_.Commit(rec);
  return rec.token;
}

std::vector<IoCompletion> AsyncSimDevice::PollCompletions() {
  return ledger_.Pop(UINT64_MAX);
}

std::vector<IoCompletion> AsyncSimDevice::DrainUntil(uint64_t t_us) {
  return ledger_.Pop(t_us);
}

std::string AsyncSimDevice::name() const {
  return sim_->name() + "+mq" + std::to_string(queue_depth_);
}

}  // namespace uflip
