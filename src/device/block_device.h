// The block-device abstraction the uFLIP benchmark measures. Devices are
// black boxes (Section 2.3): the benchmark submits IOs -- each defined by
// its submission time, size, logical block address and mode -- and
// records per-IO response times.
#ifndef UFLIP_DEVICE_BLOCK_DEVICE_H_
#define UFLIP_DEVICE_BLOCK_DEVICE_H_

#include <cstdint>
#include <string>

#include "src/util/clock.h"
#include "src/util/status.h"

namespace uflip {

class MetricRegistry;
class SpanRecorder;

/// IO mode (Section 3.1, attribute 4).
enum class IoMode { kRead, kWrite };

inline const char* IoModeName(IoMode m) {
  return m == IoMode::kRead ? "read" : "write";
}

/// One IO of a pattern: byte offset (LBA * sector size), size and mode.
struct IoRequest {
  uint64_t offset = 0;
  uint32_t size = 0;
  IoMode mode = IoMode::kRead;
};

/// Synchronous block device. A device owns (or references) a Clock:
/// simulated devices advance a VirtualClock, real devices measure a
/// RealClock. Response times are returned in microseconds.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Host-visible capacity in bytes.
  virtual uint64_t capacity_bytes() const = 0;

  /// Submits one IO at time `t_us` (device clock domain) and returns its
  /// response time in microseconds. The device serializes overlapping
  /// submissions: an IO submitted while the device is busy waits.
  [[nodiscard]] virtual StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) = 0;

  /// Submits at the clock's current time and advances the clock past the
  /// IO's completion. This is the "consecutive" submission mode of the
  /// baseline patterns. Fractional response time is carried over to the
  /// next Submit (for the device's lifetime: the carry is real unslept
  /// time, so it must not be dropped at phase boundaries either).
  [[nodiscard]] StatusOr<double> Submit(const IoRequest& req) {
    uint64_t t = clock()->NowUs();
    StatusOr<double> rt = SubmitAt(t, req);
    if (rt.ok()) {
      clock()->SleepUs(WholeUsWithCarry(*rt, &submit_carry_us_));
    }
    return rt;
  }

  /// The clock this device lives on.
  virtual Clock* clock() = 0;

  /// Human-readable device name for reports.
  virtual std::string name() const = 0;

  /// The metrics registry this device records into, or nullptr when
  /// observability is not attached (the default: devices are built
  /// unattached and pay nothing). Runners use it to snapshot metrics
  /// into results without knowing the concrete device type.
  virtual MetricRegistry* metrics_registry() const { return nullptr; }

  /// The per-IO span recorder this device records into, or nullptr
  /// when span tracing is not attached (same contract as
  /// metrics_registry; see src/obs/span_trace.h). Runners use it to
  /// snapshot spans into results.
  virtual SpanRecorder* span_recorder() const { return nullptr; }

 private:
  /// Sub-microsecond remainder of response time not yet slept (Submit).
  double submit_carry_us_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_BLOCK_DEVICE_H_
