#include "src/device/sim_device.h"

#include <algorithm>

#include "src/flash/array.h"
#include "src/obs/metric_registry.h"
#include "src/util/logging.h"

namespace uflip {

Status ControllerConfig::Validate() const {
  if (read_overhead_us < 0 || write_overhead_us < 0) {
    return Status::InvalidArgument("overheads must be >= 0");
  }
  if (bus_read_mb_s <= 0 || bus_write_mb_s <= 0) {
    return Status::InvalidArgument("bus bandwidth must be > 0");
  }
  if (gc_slice_us < 0) {
    return Status::InvalidArgument("gc_slice_us must be >= 0");
  }
  if (controller_us < 0) {
    return Status::InvalidArgument("controller_us must be >= 0");
  }
  return Status::Ok();
}

SimDevice::SimDevice(std::string name, std::unique_ptr<Ftl> ftl,
                     const ControllerConfig& config,
                     std::shared_ptr<VirtualClock> clock)
    : name_(std::move(name)),
      ftl_(std::move(ftl)),
      config_(config),
      clock_(std::move(clock)) {
  UFLIP_CHECK(config_.Validate().ok());
  UFLIP_CHECK(clock_ != nullptr);
}

void SimDevice::AttachMetrics(MetricRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_reads_ = nullptr;
    m_writes_ = nullptr;
    m_read_penalties_ = nullptr;
    m_gc_slice_us_ = nullptr;
    m_service_us_ = nullptr;
    m_busy_ = nullptr;
    timeline_.AttachMetrics({}, nullptr, {});
    return;
  }
  m_reads_ = registry->GetCounter("device.reads");
  m_writes_ = registry->GetCounter("device.writes");
  m_read_penalties_ = registry->GetCounter("device.random_read_penalties");
  m_gc_slice_us_ = registry->GetSum("device.gc_slice_us");
  m_service_us_ = registry->GetHistogram("device.service_us");
  m_busy_ = registry->GetTimeSeries("device.busy_us", obs::kTimelineIntervalUs);
  // The single-queue busy series doubles as the timeline's (only)
  // channel series; the sync path has no serialized-controller or
  // bus-slot occupancy to export.
  timeline_.AttachMetrics({m_busy_}, nullptr, {});
  auto* makespan = registry->GetGauge("device.makespan_us");
  registry->AddCollector([this, makespan] {
    obs::SetMax(makespan, static_cast<double>(timeline_.BusyMaxUs()));
  });
  ftl_->RegisterMetrics(registry);
}

void SimDevice::AttachSpans(SpanRecorder* recorder) {
  span_recorder_ = recorder;
  timeline_.AttachSpans(recorder);
}

StatusOr<ServiceCost> SimDevice::ServiceUs(double idle_us,
                                           const IoRequest& req,
                                           const uint64_t* write_tokens,
                                           std::vector<uint64_t>* read_tokens) {
  if (req.size == 0) return Status::InvalidArgument("zero-sized IO");
  if (req.offset + req.size > capacity_bytes()) {
    return Status::OutOfRange("IO beyond device capacity");
  }
  ++ios_;

  // Idle time between the previous completion and this submission is
  // donated to asynchronous reclamation.
  if (idle_us > 0) {
    ftl_->BackgroundWork(idle_us);
  }
  ServiceCost cost_split;

  // While reclamation debt is outstanding the controller interleaves
  // bounded background slices with foreground IOs (lingering effect).
  if (config_.gc_slice_us > 0 && ftl_->PendingBackgroundUs() > 0) {
    double slice = ftl_->BackgroundWork(config_.gc_slice_us);
    cost_split.controller_us += slice;
    obs::Add(m_gc_slice_us_, slice);
  }
  obs::Inc(req.mode == IoMode::kRead ? m_reads_ : m_writes_);

  cost_split.controller_us += req.mode == IoMode::kRead
                                  ? config_.read_overhead_us
                                  : config_.write_overhead_us;
  cost_split.controller_us += config_.BusUs(req.size, req.mode);
  cost_split.controller_us += config_.controller_us;
  if (req.mode == IoMode::kRead) {
    if (req.offset != last_read_end_) {
      cost_split.controller_us += config_.random_read_penalty_us;
      obs::Inc(m_read_penalties_);
    }
    last_read_end_ = req.offset + req.size;
  }

  const uint32_t page = ftl_->page_bytes();
  uint64_t first_page = req.offset / page;
  uint64_t last_page = (req.offset + req.size - 1) / page;
  uint32_t npages = static_cast<uint32_t>(last_page - first_page + 1);

  // Bus-contention model: diff the array's cumulative chip-to-
  // controller transfer time around the foreground FTL work (not the
  // background slices above -- reclamation traffic is charged to the
  // controller stage) to split the IO's bus stage out of its flash
  // stage.
  const FlashArray* bus_array =
      config_.channel_bus_contention ? ftl_->flash_array() : nullptr;
  double transfer_before =
      bus_array != nullptr ? bus_array->TransferUsTotal() : 0.0;

  FtlCost cost;
  if (req.mode == IoMode::kRead) {
    Status s = ftl_->Read(first_page, npages, read_tokens, &cost);
    if (!s.ok()) return s;
  } else {
    // Sub-page-aligned writes read the partially covered edge pages
    // first (device-level read-modify-write).
    bool head_partial = req.offset % page != 0;
    bool tail_partial = (req.offset + req.size) % page != 0;
    if (head_partial) {
      Status s = ftl_->Read(first_page, 1, nullptr, &cost);
      if (!s.ok()) return s;
    }
    if (tail_partial && last_page != first_page) {
      Status s = ftl_->Read(last_page, 1, nullptr, &cost);
      if (!s.ok()) return s;
    }
    if (write_tokens == nullptr) {
      scratch_tokens_.resize(npages);
      for (uint32_t i = 0; i < npages; ++i) {
        scratch_tokens_[i] = ++token_counter_;
      }
      write_tokens = scratch_tokens_.data();
    }
    Status s = ftl_->Write(first_page, npages, write_tokens, &cost);
    if (!s.ok()) return s;
  }
  cost_split.channel_us += cost.service_us;
  if (bus_array != nullptr) {
    double transfer = bus_array->TransferUsTotal() - transfer_before;
    // cost.service_us is the per-channel makespan of the FTL's batched
    // flash work while the transfer total is the serial sum across
    // channels, so clamp: the bus stage never exceeds the flash stage
    // it is split from (multi-channel-spanning IOs under-attribute
    // rather than go negative).
    cost_split.bus_us = std::min(transfer, cost_split.channel_us);
    cost_split.channel_us -= cost_split.bus_us;
  }
  obs::Observe(m_service_us_, cost_split.TotalUs());
  return cost_split;
}

StatusOr<double> SimDevice::DoIo(uint64_t t_us, const IoRequest& req,
                                 const uint64_t* write_tokens,
                                 std::vector<uint64_t>* read_tokens) {
  uint64_t busy_until = timeline_.BusyMaxUs();
  double idle_us =
      t_us > busy_until ? static_cast<double>(t_us - busy_until) : 0.0;
  StatusOr<ServiceCost> service =
      ServiceUs(idle_us, req, write_tokens, read_tokens);
  if (!service.ok()) return service.status();
  // One dispatch event on the single-queue timeline, resolved
  // immediately: the event handler performs the start = max(t, busy),
  // complete = start + floor(service) arithmetic (plus the bus stage
  // when modeled) and feeds the busy series.
  timeline_.Submit(++io_seq_, t_us, 0,
                   IoStages{service->controller_us, service->channel_us,
                            service->bus_us});
  outcome_scratch_.clear();
  timeline_.ResolveAll(&outcome_scratch_);
  UFLIP_CHECK(outcome_scratch_.size() == 1 &&
              outcome_scratch_[0].id == io_seq_);
  return static_cast<double>(outcome_scratch_[0].complete_us - t_us);
}

StatusOr<double> SimDevice::SubmitAt(uint64_t t_us, const IoRequest& req) {
  return DoIo(t_us, req, nullptr, nullptr);
}

StatusOr<double> SimDevice::WriteTokens(uint64_t t_us, uint64_t offset,
                                        uint32_t size,
                                        const std::vector<uint64_t>& tokens) {
  const uint32_t page = ftl_->page_bytes();
  uint64_t first_page = offset / page;
  uint64_t last_page = (offset + size - 1) / page;
  if (tokens.size() != last_page - first_page + 1) {
    return Status::InvalidArgument("token count != covered pages");
  }
  IoRequest req{offset, size, IoMode::kWrite};
  return DoIo(t_us, req, tokens.data(), nullptr);
}

StatusOr<std::vector<uint64_t>> SimDevice::ReadTokens(uint64_t offset,
                                                      uint32_t size) {
  IoRequest req{offset, size, IoMode::kRead};
  std::vector<uint64_t> tokens;
  StatusOr<double> rt = DoIo(clock_->NowUs(), req, nullptr, &tokens);
  if (!rt.ok()) return rt.status();
  return tokens;
}

}  // namespace uflip
