// Trivial in-memory device with an analytic cost model; used by runner /
// methodology unit tests where FTL dynamics would only add noise, and as
// the "ideal device" baseline in ablation benches.
#ifndef UFLIP_DEVICE_MEM_DEVICE_H_
#define UFLIP_DEVICE_MEM_DEVICE_H_

#include <memory>
#include <string>

#include "src/device/block_device.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace uflip {

struct MemDeviceConfig {
  uint64_t capacity_bytes = 64ULL << 20;
  double read_base_us = 100.0;
  double write_base_us = 150.0;
  /// Per-byte transfer cost (us/byte).
  double read_per_byte_us = 0.005;
  double write_per_byte_us = 0.008;
  /// Uniform jitter amplitude added to every IO (0 = deterministic).
  double jitter_us = 0.0;
  uint64_t seed = 42;
};

class MemDevice : public BlockDevice {
 public:
  explicit MemDevice(const MemDeviceConfig& config,
                     std::shared_ptr<VirtualClock> clock)
      : config_(config), clock_(std::move(clock)), rng_(config.seed) {}

  uint64_t capacity_bytes() const override { return config_.capacity_bytes; }

  [[nodiscard]] StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override {
    if (req.size == 0) return Status::InvalidArgument("zero-sized IO");
    if (req.offset + req.size > config_.capacity_bytes) {
      return Status::OutOfRange("IO beyond device capacity");
    }
    double service =
        req.mode == IoMode::kRead
            ? config_.read_base_us + config_.read_per_byte_us * req.size
            : config_.write_base_us + config_.write_per_byte_us * req.size;
    if (config_.jitter_us > 0) {
      service += rng_.UniformDouble() * config_.jitter_us;
    }
    uint64_t start = std::max(t_us, busy_until_us_);
    busy_until_us_ = start + static_cast<uint64_t>(service);
    return static_cast<double>(busy_until_us_ - t_us);
  }

  Clock* clock() override { return clock_.get(); }
  std::string name() const override { return "mem"; }

 private:
  MemDeviceConfig config_;
  std::shared_ptr<VirtualClock> clock_;
  Rng rng_;
  uint64_t busy_until_us_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_MEM_DEVICE_H_
