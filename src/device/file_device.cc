#include "src/device/file_device.h"

#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <linux/fs.h>
#endif

namespace uflip {
namespace {

// Thread-safe strerror: plain strerror writes into shared static
// storage (concurrency-mt-unsafe), and the device layer runs under the
// parallel execution core.
std::string ErrnoString(int err) {
  char buf[256];
#if defined(_GNU_SOURCE) && defined(__GLIBC__)
  return strerror_r(err, buf, sizeof(buf));  // GNU variant returns char*
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace

FileDevice::FileDevice(std::string path, int fd, uint64_t capacity,
                       bool direct)
    : path_(std::move(path)), fd_(fd), capacity_(capacity), direct_(direct) {}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<FileDevice>> FileDevice::Open(
    const std::string& path, const FileDeviceOptions& options) {
  int flags = O_RDWR | O_CREAT;
  int fd = -1;
  bool direct = false;
#ifdef O_DIRECT
  if (options.try_direct) {
    fd = ::open(path.c_str(), flags | O_DIRECT | O_SYNC, 0644);
    direct = fd >= 0;
  }
#endif
  if (fd < 0) {
    fd = ::open(path.c_str(), flags | O_SYNC, 0644);
    direct = false;
  }
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + ErrnoString(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + ErrnoString(errno));
  }
  uint64_t capacity = 0;
  if (S_ISBLK(st.st_mode)) {
#ifdef BLKGETSIZE64
    if (::ioctl(fd, BLKGETSIZE64, &capacity) != 0) {
      ::close(fd);
      return Status::IoError("BLKGETSIZE64 failed: " + ErrnoString(errno));
    }
#endif
  } else {
    capacity = static_cast<uint64_t>(st.st_size);
    if (capacity < options.create_size_bytes) {
      if (::ftruncate(fd, static_cast<off_t>(options.create_size_bytes)) !=
          0) {
        ::close(fd);
        return Status::IoError("ftruncate: " + ErrnoString(errno));
      }
      capacity = options.create_size_bytes;
    }
  }
  if (capacity == 0) {
    ::close(fd);
    return Status::InvalidArgument("device has zero capacity: " + path);
  }
  return std::unique_ptr<FileDevice>(
      new FileDevice(path, fd, capacity, direct));
}

StatusOr<double> FileDevice::SubmitAt(uint64_t t_us, const IoRequest& req) {
  (void)t_us;  // real device: submission happens now, by definition
  if (req.size == 0) return Status::InvalidArgument("zero-sized IO");
  if (req.offset + req.size > capacity_) {
    return Status::OutOfRange("IO beyond device capacity");
  }
  if (buffer_.size() < req.size) {
    buffer_ = AlignedBuffer(req.size, 4096);
    buffer_.FillPattern(++fill_counter_);
  }
  uint64_t begin = clock_.NowUs();
  ssize_t n;
  if (req.mode == IoMode::kRead) {
    n = ::pread(fd_, buffer_.data(), req.size,
                static_cast<off_t>(req.offset));
  } else {
    n = ::pwrite(fd_, buffer_.data(), req.size,
                 static_cast<off_t>(req.offset));
  }
  if (n < 0 && direct_ && errno == EINVAL) {
    // O_DIRECT alignment refusal (e.g. 512B-shifted IOs on a 4K-sector
    // filesystem): retry through the page cache with O_SYNC semantics.
    ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL) & ~O_DIRECT);
    direct_ = false;
    if (req.mode == IoMode::kRead) {
      n = ::pread(fd_, buffer_.data(), req.size,
                  static_cast<off_t>(req.offset));
    } else {
      n = ::pwrite(fd_, buffer_.data(), req.size,
                   static_cast<off_t>(req.offset));
    }
  }
  if (n != static_cast<ssize_t>(req.size)) {
    return Status::IoError(std::string(req.mode == IoMode::kRead ? "pread"
                                                                 : "pwrite") +
                           " failed: " + ErrnoString(errno));
  }
  uint64_t end = clock_.NowUs();
  return static_cast<double>(end - begin);
}

}  // namespace uflip
