#include "src/device/profiles.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace uflip {

const char* FtlKindName(FtlKind k) {
  switch (k) {
    case FtlKind::kPageMapping:
      return "page-mapping";
    case FtlKind::kBast:
      return "block+log (BAST)";
    case FtlKind::kFast:
      return "shared-log (FAST)";
  }
  return "?";
}

Status DeviceProfile::Validate() const {
  if (id.empty()) return Status::InvalidArgument("profile id empty");
  if (sim_capacity_bytes == 0) {
    return Status::InvalidArgument("sim_capacity_bytes == 0");
  }
  if (channels == 0) return Status::InvalidArgument("channels == 0");
  UFLIP_RETURN_IF_ERROR(controller.Validate());
  return Status::Ok();
}

namespace {

// ---------------------------------------------------------------------
// High-end SLC SSDs (Memoright, GSKILL, Mtron). uFLIP-era high-end SSDs
// used hybrid block-mapped FTLs with large superblock erase units and a
// RAM write-back buffer:
//  * SW switch-merges regardless of device state -> SW ~ SR;
//  * RW thrashes the log pool -> one full merge per IO;
//  * the locality area equals log_pool x superblock size;
//  * the RAM buffer destaged in the background produces the start-up
//    phase (Figure 3), Pause absorption, and the lingering reads of
//    Figure 5.
// Internal channel parallelism is folded into the effective per-page
// timings (channels = 1 with fast pages), so superblock-wide merges and
// programs are costed as the striped controller would execute them.
// ---------------------------------------------------------------------
DeviceProfile HighEndSsd(std::string id, std::string brand, std::string model,
                         uint64_t adv_gb, double price) {
  DeviceProfile p;
  p.id = std::move(id);
  p.brand = std::move(brand);
  p.model = std::move(model);
  p.type = "SSD";
  p.advertised_capacity_bytes = adv_gb * kGiB;
  p.price_usd = price;
  p.sim_capacity_bytes = 512 * kMiB;
  p.cell = CellType::kSlc;
  p.page_bytes = 4096;
  p.pages_per_block = 128;  // 512KB superblock erase unit
  p.channels = 1;           // parallelism folded into page timings
  p.read_page_us_override = 8.0;
  p.program_page_us_override = 6.0;
  p.erase_block_us_override = 700.0;
  p.page_transfer_us_override = 3.0;
  p.controller.read_overhead_us = 70.0;
  p.controller.write_overhead_us = 70.0;
  p.controller.bus_read_mb_s = 250.0;
  p.controller.bus_write_mb_s = 230.0;
  p.controller.random_read_penalty_us = 100.0;
  p.controller.gc_slice_us = 700.0;
  p.ftl = FtlKind::kBast;
  p.bast.log_blocks = 16;  // 16 x 512KB = 8MB locality area
  p.bast.strict_sequential_log = false;
  p.bast.merge_overhead_us = 3200.0;
  p.bast.switch_overhead_us = 60.0;
  p.write_cache = true;
  p.cache.capacity_pages = 1024;  // 4MB RAM buffer -> ~128-IO start-up
  p.cache.max_coalesce = 8;
  p.cache.background_flush = true;  // async destaging (pause absorption)
  return p;
}

// ---------------------------------------------------------------------
// Samsung MCBQE32G5MPP: hybrid block mapping at 16KB page granularity
// (the 16KB alignment sensitivity of Section 5.2), coalescing write
// cache WITHOUT background destaging (no pause effect, no start-up), a
// 16MB log pool.
// ---------------------------------------------------------------------
DeviceProfile SamsungSsd() {
  DeviceProfile p;
  p.id = "samsung";
  p.brand = "Samsung";
  p.model = "MCBQE32G5MPP";
  p.type = "SSD";
  p.advertised_capacity_bytes = 32 * kGiB;
  p.price_usd = 517;
  p.representative = true;
  p.sim_capacity_bytes = 512 * kMiB;
  p.cell = CellType::kMlc;
  p.page_bytes = 16384;     // 16KB flash pages / mapping granularity
  p.pages_per_block = 64;   // 1MB superblock
  p.channels = 1;
  p.read_page_us_override = 80.0;
  p.program_page_us_override = 60.0;
  p.erase_block_us_override = 1400.0;
  p.page_transfer_us_override = 20.0;
  p.controller.read_overhead_us = 120.0;
  p.controller.write_overhead_us = 140.0;
  p.controller.bus_read_mb_s = 180.0;
  p.controller.bus_write_mb_s = 150.0;
  p.controller.random_read_penalty_us = 60.0;
  p.controller.gc_slice_us = 0.0;  // no background machinery
  p.ftl = FtlKind::kBast;
  p.bast.log_blocks = 16;  // 16 x 1MB = 16MB locality area
  p.bast.merge_overhead_us = 6000.0;
  p.bast.switch_overhead_us = 120.0;
  p.write_cache = true;
  p.cache.capacity_pages = 192;  // 3MB RAM buffer
  p.cache.max_coalesce = 2;      // in-place x0.6
  p.cache.background_flush = false;
  return p;
}

// ---------------------------------------------------------------------
// FAST-FTL devices (Transcend SSDs / IDE module, Corsair, Kingston
// DTHX): shared sequential log region; locality area = region size;
// partition degradation emerges from interleaved streams defeating
// switch merges.
// ---------------------------------------------------------------------
DeviceProfile FastDevice(std::string id, std::string brand,
                         std::string model, std::string type,
                         uint64_t adv_gb, double price, uint32_t region,
                         double bus_r, double bus_w,
                         double merge_overhead_ms, CellType cell) {
  DeviceProfile p;
  p.id = std::move(id);
  p.brand = std::move(brand);
  p.model = std::move(model);
  p.type = std::move(type);
  p.advertised_capacity_bytes = adv_gb * kGiB;
  p.price_usd = price;
  p.sim_capacity_bytes = 256 * kMiB;
  p.cell = cell;
  p.page_bytes = 4096;
  p.pages_per_block = 32;  // 128KB erase unit
  p.channels = 1;
  p.read_page_us_override = 30.0;
  p.program_page_us_override = 55.0;
  p.erase_block_us_override = 1500.0;
  p.page_transfer_us_override = 8.0;
  p.controller.read_overhead_us = 250.0;
  p.controller.write_overhead_us = 300.0;
  p.controller.bus_read_mb_s = bus_r;
  p.controller.bus_write_mb_s = bus_w;
  p.controller.random_read_penalty_us = 150.0;
  p.controller.gc_slice_us = 0.0;
  p.ftl = FtlKind::kFast;
  p.fast.log_region_blocks = region;
  p.fast.merge_overhead_us = merge_overhead_ms * 1000.0;
  p.fast.switch_overhead_us = 100.0;
  p.fast.reorder_overhead_us = merge_overhead_ms * 20.0;  // ~2% of full
  p.fast.append_points = 4;
  return p;
}

// ---------------------------------------------------------------------
// Strict-log BAST devices (Kingston DTI, SD card): tiny pool of
// strict-sequential log blocks -> no locality benefit, pathological
// in-place / reverse patterns.
// ---------------------------------------------------------------------
DeviceProfile StrictBastDevice(std::string id, std::string brand,
                               std::string model, std::string type,
                               uint64_t adv_gb, double price, uint32_t pool,
                               double bus_r, double bus_w,
                               double merge_overhead_ms) {
  DeviceProfile p;
  p.id = std::move(id);
  p.brand = std::move(brand);
  p.model = std::move(model);
  p.type = std::move(type);
  p.advertised_capacity_bytes = adv_gb * kGiB;
  p.price_usd = price;
  p.sim_capacity_bytes = 256 * kMiB;
  p.cell = CellType::kMlc;
  p.page_bytes = 4096;
  p.pages_per_block = 32;
  p.channels = 1;
  p.read_page_us_override = 19.0;
  p.program_page_us_override = 38.0;
  p.erase_block_us_override = 1000.0;
  p.page_transfer_us_override = 6.0;
  p.controller.read_overhead_us = 150.0;
  p.controller.write_overhead_us = 200.0;
  p.controller.bus_read_mb_s = bus_r;
  p.controller.bus_write_mb_s = bus_w;
  p.controller.random_read_penalty_us = 250.0;
  p.controller.gc_slice_us = 0.0;
  p.ftl = FtlKind::kBast;
  p.bast.log_blocks = pool;
  p.bast.strict_sequential_log = true;
  p.bast.merge_overhead_us = merge_overhead_ms * 1000.0;
  p.bast.switch_overhead_us = 150.0;
  return p;
}

}  // namespace

const std::vector<DeviceProfile>& AllProfiles() {
  static const std::vector<DeviceProfile>* profiles = [] {
    auto* v = new std::vector<DeviceProfile>();

    // 1. Memoright MR25.2-032S, 32GB, $943 (representative).
    DeviceProfile memoright =
        HighEndSsd("memoright", "Memoright", "MR25.2-032S", 32, 943);
    memoright.representative = true;
    v->push_back(memoright);

    // 2. GSKILL FS-25S2-32GB, 32GB, $694: Memoright-class, slightly
    //    slower interconnect.
    DeviceProfile gskill =
        HighEndSsd("gskill", "GSKILL", "FS-25S2-32GB", 32, 694);
    gskill.controller.bus_read_mb_s = 200.0;
    gskill.controller.bus_write_mb_s = 180.0;
    gskill.bast.merge_overhead_us = 1500.0;
    v->push_back(gskill);

    // 3. Samsung MCBQE32G5MPP, 32GB, $517 (representative).
    v->push_back(SamsungSsd());

    // 4. Mtron SATA7035-016, 16GB, $407 (representative): high-end
    //    class, 1MB superblocks (merges ~2x Memoright -> RW ~9ms,
    //    locality 8MB at x2).
    DeviceProfile mtron =
        HighEndSsd("mtron", "Mtron", "SATA7035-016", 16, 407);
    mtron.representative = true;
    mtron.pages_per_block = 256;  // 1MB superblock
    mtron.read_page_us_override = 10.0;
    mtron.program_page_us_override = 7.0;
    mtron.controller.read_overhead_us = 90.0;
    mtron.controller.write_overhead_us = 90.0;
    mtron.controller.bus_read_mb_s = 200.0;
    mtron.controller.bus_write_mb_s = 180.0;
    mtron.bast.log_blocks = 8;  // 8 x 1MB = 8MB locality
    mtron.bast.merge_overhead_us = 3600.0;
    v->push_back(mtron);

    // 5. Transcend TS16GSSD25S-S (SLC), 16GB, $250.
    DeviceProfile tslc = FastDevice(
        "transcend-slc", "Transcend", "TS16GSSD25S-S", "SSD", 16, 250,
        /*region=*/32, /*bus_r=*/70, /*bus_w=*/55,
        /*merge_overhead_ms=*/8, CellType::kSlc);
    tslc.read_page_us_override = 20.0;
    tslc.program_page_us_override = 40.0;
    v->push_back(tslc);

    // 6. Transcend TS32GSSD25S-M (MLC), 32GB, $199 (representative;
    //    "Transcend MLC" in Table 3): 4MB log region, very slow merges.
    DeviceProfile tmlc = FastDevice(
        "transcend-mlc", "Transcend", "TS32GSSD25S-M", "SSD", 32, 199,
        /*region=*/32, /*bus_r=*/40, /*bus_w=*/25,
        /*merge_overhead_ms=*/240, CellType::kMlc);
    tmlc.representative = true;
    tmlc.controller.random_read_penalty_us = 1500.0;  // RR ~2x SR
    v->push_back(tmlc);

    // 7. Kingston DT HyperX, 8GB, $153 (representative): 16MB shared
    //    log region.
    DeviceProfile dthx = FastDevice(
        "kingston-dthx", "Kingston", "DT hyper X", "USB drive", 8, 153,
        /*region=*/128, /*bus_r=*/35, /*bus_w=*/32,
        /*merge_overhead_ms=*/310, CellType::kMlc);
    dthx.representative = true;
    dthx.erase_block_us_override = 1200.0;
    dthx.fast.reorder_overhead_us = 45000.0;  // reverse/in-place x6-7
    dthx.fast.append_points = 8;
    v->push_back(dthx);

    // 8. Corsair Flash Voyager GT, 16GB, $110.
    v->push_back(FastDevice("corsair", "Corsair", "Flash Voyager GT",
                            "USB drive", 16, 110, /*region=*/8,
                            /*bus_r=*/28, /*bus_w=*/20,
                            /*merge_overhead_ms=*/110, CellType::kMlc));

    // 9. Transcend TS4GDOM40V-S IDE module, 4GB, $62 (representative;
    //    "Transcend Module" in Table 3): 4MB log region, modest merges.
    DeviceProfile module = FastDevice(
        "transcend-module", "Transcend", "TS4GDOM40V-S", "IDE module", 4,
        62, /*region=*/32, /*bus_r=*/45, /*bus_w=*/45,
        /*merge_overhead_ms=*/13, CellType::kSlc);
    module.representative = true;
    module.read_page_us_override = 22.0;
    module.program_page_us_override = 27.0;
    v->push_back(module);

    // 10. Kingston DTI, 4GB, $17 (representative): 4 strict logs.
    DeviceProfile dti = StrictBastDevice(
        "kingston-dti", "Kingston", "DTI 4GB", "USB drive", 4, 17,
        /*pool=*/4, /*bus_r=*/20, /*bus_w=*/16,
        /*merge_overhead_ms=*/300);
    dti.bast.partial_merge_supported = false;
    dti.representative = true;
    v->push_back(dti);

    // 11. Kingston SD 4GB (2GB usable), $12: 2 strict logs, slowest bus.
    DeviceProfile sd = StrictBastDevice(
        "kingston-sd", "Kingston", "SD 4GB", "SD card", 2, 12,
        /*pool=*/2, /*bus_r=*/12, /*bus_w=*/9,
        /*merge_overhead_ms=*/320);
    sd.bast.partial_merge_supported = false;
    sd.sim_capacity_bytes = 128 * kMiB;
    v->push_back(sd);

    for (const auto& p : *v) UFLIP_CHECK(p.Validate().ok());
    return v;
  }();
  return *profiles;
}

std::vector<DeviceProfile> RepresentativeProfiles() {
  std::vector<DeviceProfile> out;
  for (const auto& p : AllProfiles()) {
    if (p.representative) out.push_back(p);
  }
  return out;
}

StatusOr<DeviceProfile> ProfileById(const std::string& id) {
  for (const auto& p : AllProfiles()) {
    if (p.id == id) return p;
  }
  return Status::NotFound("no device profile named '" + id + "'");
}

StatusOr<std::unique_ptr<SimDevice>> CreateSimDevice(
    const DeviceProfile& profile, std::shared_ptr<VirtualClock> clock,
    uint64_t capacity_override) {
  UFLIP_RETURN_IF_ERROR(profile.Validate());
  uint64_t capacity = capacity_override != 0 ? capacity_override
                                             : profile.sim_capacity_bytes;

  FlashGeometry geom;
  geom.page_data_bytes = profile.page_bytes;
  geom.pages_per_block = profile.pages_per_block;
  uint64_t block_bytes = geom.block_bytes();
  uint64_t blocks_total = (capacity + block_bytes - 1) / block_bytes;
  // Physical blocks: logical capacity plus room for reserves; the FTL
  // carves its own reserve out of this, so the slack must cover it.
  uint64_t ftl_reserve = 16;
  if (profile.ftl == FtlKind::kBast) {
    ftl_reserve = profile.bast.log_blocks + 8;
  } else if (profile.ftl == FtlKind::kFast) {
    ftl_reserve = profile.fast.log_region_blocks + 8;
  }
  blocks_total += std::max<uint64_t>(blocks_total / 8, ftl_reserve);
  uint64_t per_channel =
      (blocks_total + profile.channels - 1) / profile.channels;
  geom.blocks = static_cast<uint32_t>(per_channel);

  FlashTiming timing = FlashTiming::ForCell(profile.cell);
  if (profile.program_page_us_override > 0) {
    timing.program_page_us = profile.program_page_us_override;
  }
  if (profile.read_page_us_override > 0) {
    timing.read_page_us = profile.read_page_us_override;
  }
  if (profile.erase_block_us_override > 0) {
    timing.erase_block_us = profile.erase_block_us_override;
  }
  if (profile.page_transfer_us_override > 0) {
    timing.page_transfer_us = profile.page_transfer_us_override;
  }

  ArrayConfig array_config;
  array_config.chip_geometry = geom;
  array_config.timing = timing;
  array_config.channels = profile.channels;
  auto array = std::make_unique<FlashArray>(array_config);

  std::unique_ptr<Ftl> ftl;
  switch (profile.ftl) {
    case FtlKind::kPageMapping: {
      UFLIP_RETURN_IF_ERROR(profile.page_mapping.Validate(array_config));
      ftl = std::make_unique<PageMappingFtl>(std::move(array),
                                             profile.page_mapping);
      break;
    }
    case FtlKind::kBast: {
      UFLIP_RETURN_IF_ERROR(profile.bast.Validate());
      ftl = std::make_unique<BastFtl>(std::move(array), profile.bast);
      break;
    }
    case FtlKind::kFast: {
      UFLIP_RETURN_IF_ERROR(profile.fast.Validate());
      ftl = std::make_unique<FastFtl>(std::move(array), profile.fast);
      break;
    }
  }
  if (profile.write_cache) {
    ftl = std::make_unique<WriteCache>(std::move(ftl), profile.cache);
  }
  if (clock == nullptr) clock = std::make_shared<VirtualClock>();
  return std::make_unique<SimDevice>(profile.id, std::move(ftl),
                                     profile.controller, std::move(clock));
}

}  // namespace uflip
