#include "src/device/async_device.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace uflip {

uint64_t CompletionLedger::Admit(uint64_t t_us, uint32_t queue_depth) {
  UFLIP_CHECK(queue_depth >= 1);
  // IOs that completed by this submission are no longer in flight.
  // (This is the only mutation: submission times are nondecreasing, so
  // dropping them stays correct even if the enqueue fails afterwards.)
  live_.erase(live_.begin(), live_.upper_bound(t_us));
  if (live_.size() < queue_depth) return t_us;
  // A full queue blocks the submitter until enough of the earliest
  // in-flight IOs complete that a slot frees.
  auto it = live_.begin();
  std::advance(it, live_.size() - queue_depth);
  return std::max(t_us, *it);
}

void CompletionLedger::Commit(const IoCompletion& record) {
  live_.insert(record.complete_us);
  done_.push_back(record);
}

std::vector<IoCompletion> CompletionLedger::Pop(uint64_t horizon_us) {
  std::vector<IoCompletion> out;
  size_t kept = 0;
  for (IoCompletion& rec : done_) {
    if (rec.complete_us <= horizon_us) {
      out.push_back(rec);
    } else {
      done_[kept++] = rec;
    }
  }
  done_.resize(kept);
  std::sort(out.begin(), out.end(),
            [](const IoCompletion& a, const IoCompletion& b) {
              return a.complete_us != b.complete_us
                         ? a.complete_us < b.complete_us
                         : a.token < b.token;
            });
  return out;
}

StatusOr<double> SyncAdapter::SubmitAt(uint64_t t_us, const IoRequest& req) {
  // The sync contract serializes overlapping submissions: an IO
  // submitted while the previous one is still running waits for it.
  uint64_t eff = std::max(t_us, last_complete_us_);
  StatusOr<IoToken> token = async_->Enqueue(eff, req);
  if (!token.ok()) return token.status();
  for (const IoCompletion& c : async_->PollCompletions()) {
    if (c.token != *token) continue;
    last_complete_us_ = c.complete_us;
    // Response time from the caller's submission time, so the
    // serialization wait is charged exactly as a sync device charges it.
    return c.rt_us + static_cast<double>(eff - t_us);
  }
  return Status::Internal("async device did not resolve the submitted IO");
}

AsyncShim::AsyncShim(BlockDevice* inner, uint32_t queue_depth)
    : inner_(inner), queue_depth_(queue_depth) {
  UFLIP_CHECK(inner_ != nullptr);
  UFLIP_CHECK(queue_depth_ >= 1);
}

StatusOr<IoToken> AsyncShim::Enqueue(uint64_t t_us, const IoRequest& req) {
  uint64_t eff = ledger_.Admit(t_us, queue_depth_);
  StatusOr<double> rt = inner_->SubmitAt(eff, req);
  if (!rt.ok()) return rt.status();
  double complete_exact = static_cast<double>(eff) + *rt;
  IoCompletion rec;
  rec.token = ledger_.NextToken();
  rec.submit_us = t_us;
  rec.complete_us = static_cast<uint64_t>(std::ceil(complete_exact));
  rec.rt_us = complete_exact - static_cast<double>(t_us);
  ledger_.Commit(rec);
  return rec.token;
}

std::vector<IoCompletion> AsyncShim::PollCompletions() {
  return ledger_.Pop(UINT64_MAX);
}

std::vector<IoCompletion> AsyncShim::DrainUntil(uint64_t t_us) {
  return ledger_.Pop(t_us);
}

}  // namespace uflip
