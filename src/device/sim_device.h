// Simulated flash device: controller + host interconnect + FTL + flash
// array, on a virtual clock. This is the black box the uFLIP benchmark
// measures in lieu of physical hardware.
//
// Controller model:
//  * fixed per-IO firmware overhead (the "latency despite no mechanical
//    parts" of design hint 1);
//  * host bus transfer time (USB vs IDE vs SATA bandwidths);
//  * FTL service time (flash operations, merges, GC);
//  * background-GC scheduling: idle host time is donated to the FTL's
//    asynchronous reclamation, and while reclamation debt is
//    outstanding the controller steals bounded slices from foreground
//    IOs -- which produces both the Pause-absorption effect and the
//    lingering effect on reads after a random-write burst (Figure 5).
#ifndef UFLIP_DEVICE_SIM_DEVICE_H_
#define UFLIP_DEVICE_SIM_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/device/block_device.h"
#include "src/ftl/ftl.h"
#include "src/sim/device_timeline.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace uflip {

class TimeSeries;
namespace obs {
struct Counter;
struct Sum;
struct Histogram;
}  // namespace obs

/// Foreground cost of one IO, split into the stage that occupies the
/// (possibly serialized) controller/bus and the stage that runs on the
/// IO's flash channel. The synchronous path charges the sum; the
/// multi-queue AsyncSimDevice overlaps channel stages across channels
/// and, under the bounded-controller model, serializes controller
/// stages on one controller timeline.
struct ServiceCost {
  /// Controller/bus stage: firmware overhead, host bus transfer, GC
  /// slices, read-locality penalty and ControllerConfig::controller_us.
  double controller_us = 0;
  /// Flash stage: the FTL's page reads/programs, erases and merges --
  /// the part a multi-channel device executes in parallel.
  double channel_us = 0;
  /// Chip-to-controller data-transfer stage, split out of channel_us
  /// only under the per-channel bus-contention model
  /// (ControllerConfig::channel_bus_contention); 0 otherwise.
  double bus_us = 0;

  double TotalUs() const { return controller_us + channel_us + bus_us; }
};

struct ControllerConfig {
  /// Firmware cost per IO (command decode, map lookup).
  double read_overhead_us = 100.0;
  double write_overhead_us = 100.0;
  /// Host interconnect bandwidth in MB/s (USB2 ~ 25, IDE ~ 60, SATA ~
  /// 120).
  double bus_read_mb_s = 100.0;
  double bus_write_mb_s = 100.0;
  /// Foreground GC preemption slice: while reclamation debt is
  /// outstanding, each IO donates up to this much time to background
  /// work.
  double gc_slice_us = 1000.0;
  /// Extra cost for reads that do not continue the previous read
  /// (missing read-ahead / map-segment locality; SR < RR in Table 3).
  double random_read_penalty_us = 0.0;
  /// Additional serialized controller/bus occupancy per IO (command
  /// decode, host DMA setup -- the work a real controller cannot
  /// pipeline across in-flight IOs). Any value > 0 switches the
  /// multi-queue model to the bounded controller (see pipelined).
  double controller_us = 0.0;
  /// Fully pipelined controller (the default): queued IOs overlap their
  /// entire service time across channels, so speedup grows with queue
  /// depth up to channels x. When false -- or whenever controller_us >
  /// 0 -- the controller stage of every queued IO (firmware overhead,
  /// bus transfer, GC slices, read penalty, controller_us) additionally
  /// serializes through a single controller timeline, bounding the
  /// speedup strictly below channels x like real devices.
  bool pipelined = true;
  /// Model per-channel data-bus slot contention: the chip-to-controller
  /// transfer portion of an IO's flash work (FlashTiming::
  /// page_transfer_us per page read/programmed) is split into a third
  /// service stage that serializes on the IO's channel data bus even
  /// though the flash dies already moved on. Off by default: the
  /// transfer time then stays folded into the flash stage exactly as
  /// before, so enabling this knob is the only way outputs change.
  bool channel_bus_contention = false;

  /// True when the bounded-controller model is active for queued IOs.
  bool SerializedController() const {
    return !pipelined || controller_us > 0;
  }

  [[nodiscard]] Status Validate() const;

  double BusUs(uint32_t bytes, IoMode mode) const {
    double mbs = mode == IoMode::kRead ? bus_read_mb_s : bus_write_mb_s;
    return static_cast<double>(bytes) / mbs;  // bytes / (MB/s) == us
  }
};

class SimDevice : public BlockDevice {
 public:
  /// Takes ownership of the FTL stack; the clock is shared with the
  /// workload runner.
  SimDevice(std::string name, std::unique_ptr<Ftl> ftl,
            const ControllerConfig& config,
            std::shared_ptr<VirtualClock> clock);

  uint64_t capacity_bytes() const override {
    return ftl_->logical_pages() * ftl_->page_bytes();
  }

  [[nodiscard]] StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override;

  Clock* clock() override { return clock_.get(); }
  std::string name() const override { return name_; }

  /// Test/data-path API: write with caller-provided per-page tokens
  /// (tokens.size() must equal the number of flash pages the byte range
  /// covers, partially covered edge pages included).
  [[nodiscard]] StatusOr<double> WriteTokens(uint64_t t_us, uint64_t offset, uint32_t size,
                               const std::vector<uint64_t>& tokens);
  /// Reads the per-page tokens covering [offset, offset+size).
  [[nodiscard]] StatusOr<std::vector<uint64_t>> ReadTokens(uint64_t offset, uint32_t size);

  Ftl* ftl() { return ftl_.get(); }
  const Ftl* ftl() const { return ftl_.get(); }
  uint32_t page_bytes() const { return ftl_->page_bytes(); }
  VirtualClock* virtual_clock() { return clock_.get(); }
  const ControllerConfig& controller() const { return config_; }

  /// Cumulative counters for reports.
  uint64_t ios_submitted() const { return ios_; }

  /// End of the last IO on the synchronous timeline (the single-queue
  /// busy-until, read off the event timeline). AsyncSimDevice seeds its
  /// per-channel timeline from it when lifting an already-used device.
  uint64_t busy_until_us() const { return timeline_.BusyMaxUs(); }

  /// Attaches the observability layer: resolves metric handles on
  /// `registry` (not owned; must outlive the device) and registers the
  /// FTL stack's collectors. nullptr detaches. Instrumentation never
  /// touches the simulated timeline -- attached and unattached devices
  /// produce identical response times.
  void AttachMetrics(MetricRegistry* registry);
  MetricRegistry* metrics_registry() const override { return metrics_; }

  /// Attaches per-IO span tracing (see src/obs/span_trace.h): every IO
  /// submitted through the synchronous path records one span chain
  /// into `recorder` (not owned; must outlive the device). nullptr
  /// detaches. Like AttachMetrics, never perturbs the simulated
  /// timeline.
  void AttachSpans(SpanRecorder* recorder);
  SpanRecorder* span_recorder() const override { return span_recorder_; }

  /// Foreground service cost of `req` when it reaches the controller
  /// after `idle_us` of device idle time (idle time is donated to
  /// asynchronous reclamation), split into the serialized
  /// controller/bus stage and the per-channel flash stage. Advances FTL
  /// and content state but not the device timeline; the synchronous
  /// path and AsyncSimDevice's multi-queue dispatch share it so both
  /// cost IOs identically.
  [[nodiscard]] StatusOr<ServiceCost> ServiceUs(double idle_us, const IoRequest& req,
                                  const uint64_t* write_tokens,
                                  std::vector<uint64_t>* read_tokens);

 private:
  /// Core IO path; `write_tokens` may be nullptr (benchmark writes use a
  /// device-generated version counter so content still changes).
  [[nodiscard]] StatusOr<double> DoIo(uint64_t t_us, const IoRequest& req,
                        const uint64_t* write_tokens,
                        std::vector<uint64_t>* read_tokens);

  std::string name_;
  std::unique_ptr<Ftl> ftl_;
  ControllerConfig config_;
  std::shared_ptr<VirtualClock> clock_;

  /// The synchronous path as a one-channel event timeline: each DoIo
  /// submits a single dispatch event and resolves it immediately, so
  /// the single-queue busy-until arithmetic (start = max(t, busy),
  /// busy = start + floor(service)) now flows through src/sim/ like
  /// the multi-queue path's. Always pipelined: the sync contract
  /// charges an IO its full service time regardless of the controller
  /// model (queueing is where the bounded controller bites).
  DeviceTimeline timeline_{1, false, 1, 0};
  std::vector<IoOutcome> outcome_scratch_;
  uint64_t io_seq_ = 0;
  uint64_t last_read_end_ = UINT64_MAX;
  uint64_t token_counter_ = 0;
  uint64_t ios_ = 0;

  // Observability handles (null when unattached; see AttachMetrics).
  MetricRegistry* metrics_ = nullptr;
  SpanRecorder* span_recorder_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
  obs::Counter* m_read_penalties_ = nullptr;
  obs::Sum* m_gc_slice_us_ = nullptr;
  obs::Histogram* m_service_us_ = nullptr;
  /// Single-queue busy timeline (sync path only; AsyncSimDevice keeps
  /// per-channel timelines instead and bypasses DoIo). Handed to
  /// timeline_, which feeds it from event transitions.
  TimeSeries* m_busy_ = nullptr;

  std::vector<uint64_t> scratch_tokens_;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_SIM_DEVICE_H_
