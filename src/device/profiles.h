// Calibrated simulator profiles for the eleven flash devices of Table 2.
// Each profile selects an FTL architecture and sets chip / controller /
// FTL knobs so that the *shape* of the paper's results (Table 3 and
// Figures 3-8) emerges from the simulation: who wins, by roughly what
// factor, and where behavioural crossovers (locality areas, partition
// limits, start-up phases) fall. Absolute microsecond values are
// approximate by design -- the substrate is a simulator, not the
// authors' testbed.
#ifndef UFLIP_DEVICE_PROFILES_H_
#define UFLIP_DEVICE_PROFILES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/device/sim_device.h"
#include "src/flash/geometry.h"
#include "src/ftl/bast_ftl.h"
#include "src/ftl/fast_ftl.h"
#include "src/ftl/page_mapping_ftl.h"
#include "src/ftl/write_cache.h"
#include "src/util/status.h"

namespace uflip {

enum class FtlKind { kPageMapping, kBast, kFast };

const char* FtlKindName(FtlKind k);

/// Full description of one device: Table 2 metadata plus simulator
/// parameters.
struct DeviceProfile {
  // --- Table 2 metadata ---
  std::string id;      // short name used on the command line ("mtron")
  std::string brand;
  std::string model;
  std::string type;    // "SSD" | "USB drive" | "IDE module" | "SD card"
  uint64_t advertised_capacity_bytes = 0;
  double price_usd = 0;
  /// Marked with an arrow in Table 2 (one of the seven devices whose
  /// results the paper presents).
  bool representative = false;

  // --- simulator parameters ---
  /// Capacity actually simulated (smaller than advertised so state
  /// enforcement and experiments run quickly; behaviour is unchanged as
  /// long as it dwarfs every TargetSize in the benchmark).
  uint64_t sim_capacity_bytes = 512ULL << 20;
  CellType cell = CellType::kMlc;
  uint32_t page_bytes = 2048;
  uint32_t pages_per_block = 64;
  uint32_t channels = 1;
  /// Optional chip-timing overrides (0 = use CellType defaults).
  double program_page_us_override = 0;
  double read_page_us_override = 0;
  double erase_block_us_override = 0;
  double page_transfer_us_override = 0;

  ControllerConfig controller;
  FtlKind ftl = FtlKind::kBast;
  PageMappingConfig page_mapping;
  BastConfig bast;
  FastConfig fast;
  bool write_cache = false;
  WriteCacheConfig cache;

  [[nodiscard]] Status Validate() const;
};

/// All eleven devices of Table 2, in the paper's order.
const std::vector<DeviceProfile>& AllProfiles();

/// The seven representative devices (arrows in Table 2).
std::vector<DeviceProfile> RepresentativeProfiles();

/// Looks up a profile by id ("memoright", "mtron", ...).
[[nodiscard]] StatusOr<DeviceProfile> ProfileById(const std::string& id);

/// Instantiates a simulated device from a profile. `capacity_override`
/// (bytes, 0 = profile default) shrinks or grows the simulated flash.
[[nodiscard]] StatusOr<std::unique_ptr<SimDevice>> CreateSimDevice(
    const DeviceProfile& profile,
    std::shared_ptr<VirtualClock> clock = nullptr,
    uint64_t capacity_override = 0);

}  // namespace uflip

#endif  // UFLIP_DEVICE_PROFILES_H_
