// Asynchronous multi-queue device API (io_uring-style). The synchronous
// BlockDevice contract serializes every IO, which hides the internal
// parallelism Section 2.1 describes (channels, planes, pipelined
// commands): the Parallelism and Pause micro-benchmarks only make sense
// when a device can service several in-flight IOs. This layer separates
// submission from completion:
//
//   * Enqueue(t_us, req) hands an IO to the device at time t_us and
//     returns a token. At most queue_depth() IOs may be in flight; an
//     Enqueue against a full queue blocks the submitter until a slot
//     frees (like io_uring submit with a full ring), and the wait shows
//     up in the IO's response time.
//   * PollCompletions() / DrainUntil(t_us) pop completion records
//     {token, submit_us, complete_us, rt_us}. rt_us is measured from
//     the Enqueue time, so it includes any queue wait.
//
// Two adapters bridge the sync and async worlds: SyncAdapter turns any
// AsyncBlockDevice back into a BlockDevice (serializing, preserving the
// base-class WholeUsWithCarry carry semantics of Submit), and AsyncShim
// lifts a legacy synchronous device into the async interface with a
// serial queue. AsyncSimDevice (async_sim_device.h) is the native
// implementation that genuinely overlaps IOs on different flash
// channels.
//
// Submission times passed to Enqueue must be nondecreasing (all runners
// maintain this); completion resolution is eager for simulated and
// shimmed devices, i.e. PollCompletions() returns every enqueued IO's
// record immediately, in completion order.
#ifndef UFLIP_DEVICE_ASYNC_DEVICE_H_
#define UFLIP_DEVICE_ASYNC_DEVICE_H_

#include <cstdint>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "src/device/block_device.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace uflip {

/// Identifies one queued IO from Enqueue to its completion record.
using IoToken = uint64_t;

/// One completed IO.
struct IoCompletion {
  IoToken token = 0;
  /// Host submission time (the t_us passed to Enqueue).
  uint64_t submit_us = 0;
  /// Completion time on the device's whole-microsecond timeline.
  /// AsyncSimDevice truncates the service time exactly like the
  /// synchronous SimDevice (start + floor(service); what makes
  /// SyncAdapter round-trips bit-identical); AsyncShim rounds a
  /// fractional inner response up so an IO is never reported complete
  /// before it is. rt_us carries the exact value either way.
  uint64_t complete_us = 0;
  /// Exact response time from submission, queue wait included.
  double rt_us = 0;
};

/// Queued block device: submissions and completions are decoupled, and
/// up to queue_depth() IOs may be in flight concurrently.
class AsyncBlockDevice {
 public:
  virtual ~AsyncBlockDevice() = default;

  /// Host-visible capacity in bytes.
  virtual uint64_t capacity_bytes() const = 0;

  /// Maximum concurrently in-flight IOs.
  virtual uint32_t queue_depth() const = 0;

  /// Submits one IO at time `t_us` (device clock domain). Blocks the
  /// submitter while the queue is full; the wait is charged to the IO's
  /// response time. Submission times must be nondecreasing.
  [[nodiscard]] virtual StatusOr<IoToken> Enqueue(uint64_t t_us, const IoRequest& req) = 0;

  /// Pops every completion record the device has resolved, ordered by
  /// (complete_us, token). Simulated and shimmed devices resolve
  /// eagerly: every enqueued IO's record is available immediately.
  virtual std::vector<IoCompletion> PollCompletions() = 0;

  /// Pops resolved records with complete_us <= t_us, same order.
  virtual std::vector<IoCompletion> DrainUntil(uint64_t t_us) = 0;

  /// Pops everything outstanding.
  std::vector<IoCompletion> DrainAll() { return DrainUntil(UINT64_MAX); }

  /// Resolved completion records not yet popped.
  virtual size_t pending() const = 0;

  /// The clock this device lives on.
  virtual Clock* clock() = 0;

  /// Human-readable device name for reports.
  virtual std::string name() const = 0;

  /// The metrics registry this device records into; nullptr when
  /// observability is not attached (same contract as BlockDevice).
  virtual MetricRegistry* metrics_registry() const { return nullptr; }

  /// The per-IO span recorder this device records into; nullptr when
  /// span tracing is not attached (same contract as BlockDevice).
  virtual SpanRecorder* span_recorder() const { return nullptr; }
};

/// Submit-side bookkeeping shared by async implementations that resolve
/// completion times at enqueue (simulated and shimmed devices): tracks
/// in-flight completion times for queue-depth backpressure and buffers
/// resolved records until the host pops them.
class CompletionLedger {
 public:
  /// Effective host submission time of an IO arriving at `t_us`: IOs
  /// still in flight at t_us count against `queue_depth`, and a full
  /// queue blocks the submitter until the earliest in-flight IOs
  /// complete. Only IOs already completed by t_us are retired from the
  /// in-flight set, so an enqueue that fails after admission leaves the
  /// backpressure accounting intact.
  uint64_t Admit(uint64_t t_us, uint32_t queue_depth);

  /// Registers a resolved completion record.
  void Commit(const IoCompletion& record);

  /// Pops records with complete_us <= horizon_us, ordered by
  /// (complete_us, token).
  std::vector<IoCompletion> Pop(uint64_t horizon_us);

  size_t pending() const { return done_.size(); }
  /// IOs admitted but not yet past the admission horizon -- the queue
  /// occupancy after the latest Admit (queue-depth telemetry).
  size_t in_flight() const { return live_.size(); }
  /// IOs still incomplete at `t_us`. At an admission time this is the
  /// device-side queue occupancy, < queue_depth by the admission
  /// invariant (in_flight() is NOT: it counts against the submitter's
  /// possibly-lagging clock, so backpressure inflates it). The walk is
  /// short for the same reason.
  size_t OccupancyAt(uint64_t t_us) const {
    return static_cast<size_t>(
        std::distance(live_.upper_bound(t_us), live_.end()));
  }
  IoToken NextToken() { return ++last_token_; }

 private:
  /// Completion times of IOs not yet past the admission horizon.
  std::multiset<uint64_t> live_;
  std::vector<IoCompletion> done_;
  IoToken last_token_ = 0;
};

/// Wraps an AsyncBlockDevice back into the synchronous BlockDevice
/// contract: each SubmitAt serializes behind the previous completion
/// (the sync contract's "overlapping submissions wait") and drains its
/// own completion before returning. Inherits BlockDevice::Submit, so
/// the WholeUsWithCarry carry semantics are preserved unchanged. The
/// adapter assumes exclusive use of the underlying device.
class SyncAdapter : public BlockDevice {
 public:
  /// Wraps `async` (not owned; must outlive the adapter).
  explicit SyncAdapter(AsyncBlockDevice* async) : async_(async) {}

  uint64_t capacity_bytes() const override {
    return async_->capacity_bytes();
  }
  [[nodiscard]] StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override;
  Clock* clock() override { return async_->clock(); }
  std::string name() const override { return async_->name() + "+sync"; }
  MetricRegistry* metrics_registry() const override {
    return async_->metrics_registry();
  }
  SpanRecorder* span_recorder() const override {
    return async_->span_recorder();
  }

  AsyncBlockDevice* async() { return async_; }

 private:
  AsyncBlockDevice* async_;
  uint64_t last_complete_us_ = 0;
};

/// Lifts a legacy synchronous BlockDevice into the async interface with
/// a serial queue: the inner device still serializes overlapping IOs,
/// but submissions queue up to `queue_depth` and completion records
/// carry the queue wait, so runners written against the async API work
/// unchanged on sync-only backends (e.g. FileDevice).
class AsyncShim : public AsyncBlockDevice {
 public:
  /// Wraps `inner` (not owned; must outlive the shim).
  AsyncShim(BlockDevice* inner, uint32_t queue_depth);

  uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  uint32_t queue_depth() const override { return queue_depth_; }
  [[nodiscard]] StatusOr<IoToken> Enqueue(uint64_t t_us, const IoRequest& req) override;
  std::vector<IoCompletion> PollCompletions() override;
  std::vector<IoCompletion> DrainUntil(uint64_t t_us) override;
  size_t pending() const override { return ledger_.pending(); }
  Clock* clock() override { return inner_->clock(); }
  std::string name() const override { return inner_->name() + "+queue"; }
  MetricRegistry* metrics_registry() const override {
    return inner_->metrics_registry();
  }
  SpanRecorder* span_recorder() const override {
    return inner_->span_recorder();
  }

  BlockDevice* inner() { return inner_; }

 private:
  BlockDevice* inner_;
  uint32_t queue_depth_;
  CompletionLedger ledger_;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_ASYNC_DEVICE_H_
