// Real-hardware measurement path: direct, synchronous IO against a file
// or raw block device, exactly as the paper's methodology prescribes
// (Section 4.3: direct IO to bypass the file system, synchronous IO to
// avoid OS parallelism). Usable unmodified against /dev/sdX to benchmark
// a physical flash device.
#ifndef UFLIP_DEVICE_FILE_DEVICE_H_
#define UFLIP_DEVICE_FILE_DEVICE_H_

#include <memory>
#include <string>

#include "src/device/block_device.h"
#include "src/util/aligned_buffer.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace uflip {

struct FileDeviceOptions {
  /// Try O_DIRECT first; fall back to O_SYNC when the filesystem refuses
  /// (e.g. tmpfs).
  bool try_direct = true;
  /// Create / extend a regular file to this size when it does not exist
  /// (ignored for block devices).
  uint64_t create_size_bytes = 0;
};

/// BlockDevice backed by a file descriptor; response times are wall
/// clock (CLOCK_MONOTONIC).
class FileDevice : public BlockDevice {
 public:
  ~FileDevice() override;

  /// Opens `path` (regular file or block device).
  [[nodiscard]] static StatusOr<std::unique_ptr<FileDevice>> Open(
      const std::string& path, const FileDeviceOptions& options);

  uint64_t capacity_bytes() const override { return capacity_; }
  [[nodiscard]] StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest& req) override;
  Clock* clock() override { return &clock_; }
  std::string name() const override { return "file:" + path_; }

  bool using_direct_io() const { return direct_; }

 private:
  FileDevice(std::string path, int fd, uint64_t capacity, bool direct);

  std::string path_;
  int fd_;
  uint64_t capacity_;
  bool direct_;
  RealClock clock_;
  AlignedBuffer buffer_;
  uint64_t fill_counter_ = 0;
};

}  // namespace uflip

#endif  // UFLIP_DEVICE_FILE_DEVICE_H_
