// Trace replay execution: drives a recorded or synthetic trace against
// any BlockDevice, producing the same RunResult / RunStats the pattern
// runners produce so traces, baselines and micro-benchmarks report
// through one pipeline.
//
// Replay pulls events from an EventSource, so the workload never has to
// be materialized: an in-memory Trace, a TraceReader streaming a
// (possibly gzip-framed) multi-GB file off disk, and the synthetic
// generators all replay through the same loop. With
// ReplayOptions::keep_samples = false, statistics are accumulated
// online as well and peak memory is O(1) in the trace length.
//
// Timing modes:
//  * closed-loop  -- each IO is submitted when the previous one
//    completes, exactly like the baseline patterns' "consecutive" mode;
//    the trace only contributes the IO sequence.
//  * original     -- IOs are submitted at the trace's inter-arrival
//    times via SubmitAt; a device slower than the recorded one shows
//    queueing in its response times, a faster one shows idle gaps
//    (which its FTL may spend on background reclamation).
//  * time-scaled  -- original with every inter-arrival delta multiplied
//    by `time_scale` (< 1 replays faster, > 1 slower).
//
// The AsyncBlockDevice overloads are a true open-loop replay: original /
// scaled timestamps are enqueue times, up to the device's queue_depth
// IOs stay in flight, and the completion records measure queue wait --
// on a multi-channel AsyncSimDevice the queued IOs genuinely overlap.
// The BlockDevice overloads serialize at the device as before.
#ifndef UFLIP_RUN_TRACE_RUN_H_
#define UFLIP_RUN_TRACE_RUN_H_

#include <cstdint>
#include <string>

#include "src/device/async_device.h"
#include "src/device/block_device.h"
#include "src/run/runner.h"
#include "src/trace/event_source.h"
#include "src/trace/trace_event.h"
#include "src/util/status.h"

namespace uflip {

enum class ReplayTiming { kClosedLoop, kOriginal, kScaled };

const char* ReplayTimingName(ReplayTiming t);

struct ReplayOptions {
  ReplayTiming timing = ReplayTiming::kClosedLoop;
  /// kScaled: multiplier applied to every inter-arrival delta.
  double time_scale = 1.0;
  /// Maps event offsets from the trace's recorded capacity onto the
  /// target device's capacity (sector-aligned), so a trace recorded on
  /// one device fits another. When off, events beyond the target
  /// device's capacity fail the replay.
  bool rescale_lba = false;
  /// Start-up IOs excluded from RunResult::Stats() (Section 4.2).
  /// kAutoIoIgnore derives it from the replayed response times via
  /// AnalyzePhases when the caller does not pass one explicitly.
  static constexpr uint32_t kAutoIoIgnore = UINT32_MAX;
  uint32_t io_ignore = 0;
  /// Retain per-IO samples in RunResult::samples (default). When false,
  /// statistics accumulate online (StreamingStats) and samples stays
  /// empty, so replaying an N-event trace needs O(1) memory instead of
  /// O(N). Requires an explicit io_ignore: kAutoIoIgnore needs the full
  /// response-time series and is rejected.
  bool keep_samples = true;
  /// Report label; defaults to the trace's source.
  std::string label;
};

/// Maps `offset` (an IO of `size` bytes on a device of `from_bytes`)
/// proportionally onto a device of `to_bytes`, keeping 512-byte sector
/// alignment and clamping so [result, result+size) fits. Errors when
/// the IO cannot fit the target device at all.
[[nodiscard]] StatusOr<uint64_t> RescaleLba(uint64_t offset, uint32_t size,
                              uint64_t from_bytes, uint64_t to_bytes);

/// Replays the events pulled from `source` on `device`, validating each
/// event as it streams (sizes, sorted submission times, recorded-
/// capacity bounds). The event epoch is arbitrary (only inter-arrival
/// deltas are used). The device clock is left past the completion of
/// the last IO, as with the pattern runners.
[[nodiscard]] StatusOr<RunResult> ExecuteTraceRun(BlockDevice* device, EventSource* source,
                                    const ReplayOptions& options = {});

/// Open-loop replay against a queued device: original / scaled events
/// are enqueued at their (scaled) recorded timestamps with up to
/// queue_depth IOs in flight, and each sample's response time comes
/// from the completion record, so it measures queue wait. Closed-loop
/// timing drives the queue one IO at a time.
[[nodiscard]] StatusOr<RunResult> ExecuteTraceRun(AsyncBlockDevice* device,
                                    EventSource* source,
                                    const ReplayOptions& options = {});

/// Materialized-trace conveniences: validate `trace` up front, then
/// replay it through a TraceView.
[[nodiscard]] StatusOr<RunResult> ExecuteTraceRun(BlockDevice* device, const Trace& trace,
                                    const ReplayOptions& options = {});
[[nodiscard]] StatusOr<RunResult> ExecuteTraceRun(AsyncBlockDevice* device,
                                    const Trace& trace,
                                    const ReplayOptions& options = {});

}  // namespace uflip

#endif  // UFLIP_RUN_TRACE_RUN_H_
