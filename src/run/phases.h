// Start-up and running phases (Section 4.2): a two-phase model of
// response time derived from a per-IO response-time series. Lives in the
// run layer (it is pure statistics over a run's samples) so both the
// methodology layer (choosing IOIgnore/IOCount for a benchmark plan) and
// trace replay (auto-deriving io_ignore for a replayed trace) can use it.
#ifndef UFLIP_RUN_PHASES_H_
#define UFLIP_RUN_PHASES_H_

#include <cstdint>
#include <vector>

namespace uflip {

struct PhaseAnalysis {
  /// IOs in the start-up phase (0 = none).
  uint32_t startup_ios = 0;
  /// Oscillation period of the running phase in IOs (0 = flat).
  uint32_t period_ios = 0;
  /// Mean response time of the running phase (us).
  double running_mean_us = 0;
  /// Mean response time of the start-up phase (us, 0 when absent).
  double startup_mean_us = 0;
  /// max/min ratio within the running phase (variability).
  double variability = 1.0;
};

/// Derives the two-phase model from a trace of per-IO response times.
PhaseAnalysis AnalyzePhases(const std::vector<double>& rt_us);

/// Suggested IOIgnore / IOCount from a phase analysis: IOIgnore covers
/// the start-up phase; IOCount covers `periods` oscillation periods past
/// it (with sane minimums).
struct RunLengths {
  uint32_t io_ignore = 0;
  uint32_t io_count = 0;
};
RunLengths SuggestRunLengths(const PhaseAnalysis& phases,
                             uint32_t periods = 16,
                             uint32_t min_count = 512);

}  // namespace uflip

#endif  // UFLIP_RUN_PHASES_H_
