#include "src/run/runner.h"

#include <algorithm>

#include "src/util/logging.h"

namespace uflip {

std::vector<double> RunResult::ResponseTimes() const {
  std::vector<double> v;
  v.reserve(samples.size());
  for (const IoSample& s : samples) v.push_back(s.rt_us);
  return v;
}

RunStats RunResult::Stats() const {
  return RunStats::Compute(ResponseTimes(), spec.io_ignore);
}

RunStats RunResult::StatsIncludingStartup() const {
  return RunStats::Compute(ResponseTimes(), 0);
}

StatusOr<RunResult> ExecuteRun(BlockDevice* device, const PatternSpec& spec) {
  UFLIP_RETURN_IF_ERROR(spec.Validate());
  if (spec.target_offset + spec.target_size + spec.io_shift >
      device->capacity_bytes()) {
    return Status::OutOfRange("target space beyond device capacity: " +
                              spec.ToString());
  }
  RunResult result;
  result.spec = spec;
  result.samples.reserve(spec.io_count);
  PatternGenerator gen(spec);
  Clock* clock = device->clock();
  // The clock ticks in whole microseconds; carry the fractional part of
  // each response time into the next sleep instead of truncating it.
  double carry_us = 0;
  for (uint64_t i = 0; i < spec.io_count; ++i) {
    uint64_t pause = gen.PauseBeforeNextUs();
    if (pause > 0) clock->SleepUs(pause);
    IoRequest req = gen.Next();
    uint64_t t = clock->NowUs();
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    result.samples.push_back(IoSample{i, t, *rt, req});
  }
  return result;
}

StatusOr<RunResult> ExecuteParallelRun(BlockDevice* device,
                                       const PatternSpec& base,
                                       uint32_t degree) {
  if (degree == 0) return Status::InvalidArgument("degree == 0");
  UFLIP_RETURN_IF_ERROR(base.Validate());

  // Per-process pattern over its own slice of the target space.
  std::vector<PatternGenerator> gens;
  std::vector<uint64_t> ready_us(degree);
  std::vector<uint64_t> remaining(degree);
  // Per-process fractional response-time carry (whole-us clock domain).
  std::vector<double> carry_us(degree, 0);
  uint64_t slice = base.target_size / degree;
  slice -= slice % base.io_size;
  if (slice < base.io_size) {
    return Status::InvalidArgument("target slice smaller than io_size");
  }
  uint64_t per_process = base.io_count / degree;
  if (per_process == 0) {
    return Status::InvalidArgument("io_count smaller than degree");
  }
  uint64_t start_us = device->clock()->NowUs();
  for (uint32_t p = 0; p < degree; ++p) {
    PatternSpec s = base;
    s.target_offset = base.target_offset + p * slice;
    s.target_size = slice;
    s.io_count = static_cast<uint32_t>(per_process);
    // Scale the warm-up with the per-process share of the run.
    s.io_ignore = std::min<uint32_t>(base.io_ignore / degree,
                                     s.io_count - 1);
    s.seed = base.seed + p * 7919;
    gens.emplace_back(s);
    ready_us[p] = start_us;
    remaining[p] = per_process;
  }

  RunResult result;
  result.spec = base;
  result.samples.reserve(per_process * degree);
  uint64_t submitted = 0;
  uint64_t max_completion = start_us;
  while (true) {
    // Next process ready to submit (synchronous IO per process).
    uint32_t p = UINT32_MAX;
    for (uint32_t q = 0; q < degree; ++q) {
      if (remaining[q] == 0) continue;
      if (p == UINT32_MAX || ready_us[q] < ready_us[p]) p = q;
    }
    if (p == UINT32_MAX) break;
    IoRequest req = gens[p].Next();
    uint64_t t = ready_us[p];
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    result.samples.push_back(IoSample{submitted++, t, *rt, req});
    ready_us[p] = t + WholeUsWithCarry(*rt, &carry_us[p]);
    max_completion = std::max(max_completion, ready_us[p]);
    --remaining[p];
  }
  // Samples in submission-time order.
  std::sort(result.samples.begin(), result.samples.end(),
            [](const IoSample& a, const IoSample& b) {
              return a.submit_us < b.submit_us;
            });
  for (uint64_t i = 0; i < result.samples.size(); ++i) {
    result.samples[i].index = i;
  }
  // Advance the shared clock past the whole parallel phase.
  if (auto* c = device->clock(); c->NowUs() < max_completion) {
    c->SleepUs(max_completion - c->NowUs());
  }
  return result;
}

StatusOr<RunResult> ExecuteMixRun(BlockDevice* device,
                                  const PatternSpec& first,
                                  const PatternSpec& second, uint32_t ratio) {
  if (ratio == 0) return Status::InvalidArgument("ratio == 0");
  UFLIP_RETURN_IF_ERROR(first.Validate());
  UFLIP_RETURN_IF_ERROR(second.Validate());

  PatternGenerator gen1(first);
  PatternGenerator gen2(second);
  Clock* clock = device->clock();

  // Scale the run so the minority pattern contributes io_count IOs of
  // its own past its start-up phase (the FlashIO IOCount/IOIgnore
  // scaling described in Section 5.1).
  uint64_t groups = std::max<uint64_t>(1, second.io_count);
  uint64_t total = groups * (ratio + 1);

  RunResult result;
  result.spec = first;
  result.spec.label = first.label + "/" + second.label + " mix " +
                      std::to_string(ratio) + ":1";
  result.spec.io_count = static_cast<uint32_t>(total);
  result.spec.io_ignore = static_cast<uint32_t>(
      static_cast<uint64_t>(second.io_ignore) * (ratio + 1));
  result.samples.reserve(total);
  double carry_us = 0;
  for (uint64_t i = 0; i < total; ++i) {
    bool from_first = (i % (ratio + 1)) != ratio;
    IoRequest req = from_first ? gen1.Next() : gen2.Next();
    uint64_t t = clock->NowUs();
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    result.samples.push_back(IoSample{i, t, *rt, req});
  }
  return result;
}

}  // namespace uflip
