#include "src/run/runner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/logging.h"

namespace uflip {

std::vector<double> RunResult::ResponseTimes() const {
  std::vector<double> v;
  v.reserve(samples.size());
  for (const IoSample& s : samples) v.push_back(s.rt_us);
  return v;
}

RunStats RunResult::Stats() const {
  if (streamed_stats) return *streamed_stats;
  return RunStats::Compute(ResponseTimes(), spec.io_ignore);
}

RunStats RunResult::StatsIncludingStartup() const {
  if (streamed_stats_all) return *streamed_stats_all;
  return RunStats::Compute(ResponseTimes(), 0);
}

StatusOr<RunResult> ExecuteRun(BlockDevice* device, const PatternSpec& spec) {
  UFLIP_RETURN_IF_ERROR(spec.Validate());
  if (spec.target_offset + spec.target_size + spec.io_shift >
      device->capacity_bytes()) {
    return Status::OutOfRange("target space beyond device capacity: " +
                              spec.ToString());
  }
  RunResult result;
  result.spec = spec;
  result.samples.reserve(spec.io_count);
  PatternGenerator gen(spec);
  Clock* clock = device->clock();
  // The clock ticks in whole microseconds; carry the fractional part of
  // each response time into the next sleep instead of truncating it.
  double carry_us = 0;
  for (uint64_t i = 0; i < spec.io_count; ++i) {
    uint64_t pause = gen.PauseBeforeNextUs();
    if (pause > 0) clock->SleepUs(pause);
    IoRequest req = gen.Next();
    uint64_t t = clock->NowUs();
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    result.samples.push_back(IoSample{i, t, *rt, req});
  }
  if (MetricRegistry* reg = device->metrics_registry()) {
    result.metrics = reg->Snapshot();
  }
  if (SpanRecorder* rec = device->span_recorder()) {
    result.spans = rec->Snapshot();
  }
  return result;
}

StatusOr<RunResult> ExecuteParallelRun(AsyncBlockDevice* device,
                                       const PatternSpec& base,
                                       uint32_t degree) {
  if (degree == 0) return Status::InvalidArgument("degree == 0");
  UFLIP_RETURN_IF_ERROR(base.Validate());

  // Per-process pattern over its own slice of the target space.
  std::vector<PatternGenerator> gens;
  std::vector<uint64_t> ready_us(degree);
  std::vector<uint64_t> remaining(degree);
  // In-flight processes: ready time unknown until their IO completes.
  std::vector<bool> in_flight(degree, false);
  // Per-process fractional response-time carry (whole-us clock domain).
  std::vector<double> carry_us(degree, 0);
  uint64_t slice = base.target_size / degree;
  slice -= slice % base.io_size;
  if (slice < base.io_size) {
    return Status::InvalidArgument("target slice smaller than io_size");
  }
  uint64_t per_process = base.io_count / degree;
  if (per_process == 0) {
    return Status::InvalidArgument("io_count smaller than degree");
  }
  uint64_t start_us = device->clock()->NowUs();
  for (uint32_t p = 0; p < degree; ++p) {
    PatternSpec s = base;
    s.target_offset = base.target_offset + p * slice;
    s.target_size = slice;
    s.io_count = static_cast<uint32_t>(per_process);
    // Scale the warm-up with the per-process share of the run.
    s.io_ignore = std::min<uint32_t>(base.io_ignore / degree,
                                     s.io_count - 1);
    s.seed = base.seed + p * 7919;
    gens.emplace_back(s);
    ready_us[p] = start_us;
    remaining[p] = per_process;
  }

  RunResult result;
  result.spec = base;
  result.samples.reserve(per_process * degree);
  // Owner process and request of each queued IO, by token.
  std::unordered_map<IoToken, std::pair<uint32_t, IoRequest>> queued;
  double max_completion_us = static_cast<double>(start_us);
  auto harvest = [&](const std::vector<IoCompletion>& records) {
    for (const IoCompletion& c : records) {
      auto it = queued.find(c.token);
      if (it == queued.end()) continue;  // not ours
      auto [q, req] = it->second;
      queued.erase(it);
      result.samples.push_back(IoSample{0, c.submit_us, c.rt_us, req});
      // The process submits its next IO when this one completes; the
      // fractional part of the response time is carried, not dropped.
      ready_us[q] = c.submit_us + WholeUsWithCarry(c.rt_us, &carry_us[q]);
      in_flight[q] = false;
      max_completion_us = std::max(
          max_completion_us, static_cast<double>(c.submit_us) + c.rt_us);
    }
  };
  while (true) {
    // Next idle process ready to submit (closed loop per process).
    uint32_t p = UINT32_MAX;
    for (uint32_t q = 0; q < degree; ++q) {
      if (remaining[q] == 0 || in_flight[q]) continue;
      if (p == UINT32_MAX || ready_us[q] < ready_us[p]) p = q;
    }
    if (p == UINT32_MAX) {
      if (queued.empty()) break;
      harvest(device->PollCompletions());
      if (!queued.empty()) {
        // Our devices resolve completions eagerly; a device that does
        // not cannot drive this runner.
        return Status::Internal(
            "async device left queued IOs unresolved");
      }
      continue;
    }
    IoRequest req = gens[p].Next();
    uint64_t t = ready_us[p];
    StatusOr<IoToken> token = device->Enqueue(t, req);
    if (!token.ok()) return token.status();
    queued.emplace(*token, std::make_pair(p, req));
    in_flight[p] = true;
    --remaining[p];
    harvest(device->PollCompletions());
  }
  // Samples in submission-time order.
  std::stable_sort(result.samples.begin(), result.samples.end(),
                   [](const IoSample& a, const IoSample& b) {
                     return a.submit_us < b.submit_us;
                   });
  for (uint64_t i = 0; i < result.samples.size(); ++i) {
    result.samples[i].index = i;
  }
  // Advance the shared clock past the whole parallel phase; round up so
  // accumulated fractional carries are never cut short.
  uint64_t end_us = static_cast<uint64_t>(std::ceil(max_completion_us));
  if (auto* c = device->clock(); c->NowUs() < end_us) {
    c->SleepUs(end_us - c->NowUs());
  }
  if (MetricRegistry* reg = device->metrics_registry()) {
    result.metrics = reg->Snapshot();
  }
  if (SpanRecorder* rec = device->span_recorder()) {
    result.spans = rec->Snapshot();
  }
  return result;
}

StatusOr<RunResult> ExecuteParallelRun(BlockDevice* device,
                                       const PatternSpec& base,
                                       uint32_t degree) {
  if (degree == 0) return Status::InvalidArgument("degree == 0");
  // Each closed-loop process has at most one IO in flight, but a
  // fractional response time leaves its rounded-up completion record
  // nominally in flight for the sub-microsecond remainder after the
  // process's floor-carried ready time. Depth degree + 1 absorbs that,
  // so the shim never delays a submission and the inner device's own
  // serialization produces exactly the legacy interleaving.
  AsyncShim shim(device, degree + 1);
  return ExecuteParallelRun(&shim, base, degree);
}

StatusOr<RunResult> ExecuteMixRun(BlockDevice* device,
                                  const PatternSpec& first,
                                  const PatternSpec& second, uint32_t ratio) {
  if (ratio == 0) return Status::InvalidArgument("ratio == 0");
  UFLIP_RETURN_IF_ERROR(first.Validate());
  UFLIP_RETURN_IF_ERROR(second.Validate());

  PatternGenerator gen1(first);
  PatternGenerator gen2(second);
  Clock* clock = device->clock();

  // Scale the run so the minority pattern contributes io_count IOs of
  // its own past its start-up phase (the FlashIO IOCount/IOIgnore
  // scaling described in Section 5.1).
  uint64_t groups = std::max<uint64_t>(1, second.io_count);
  uint64_t total = groups * (ratio + 1);

  RunResult result;
  result.spec = first;
  result.spec.label = first.label + "/" + second.label + " mix " +
                      std::to_string(ratio) + ":1";
  result.spec.io_count = static_cast<uint32_t>(total);
  result.spec.io_ignore = static_cast<uint32_t>(
      static_cast<uint64_t>(second.io_ignore) * (ratio + 1));
  result.samples.reserve(total);
  double carry_us = 0;
  for (uint64_t i = 0; i < total; ++i) {
    bool from_first = (i % (ratio + 1)) != ratio;
    IoRequest req = from_first ? gen1.Next() : gen2.Next();
    uint64_t t = clock->NowUs();
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    result.samples.push_back(IoSample{i, t, *rt, req});
  }
  return result;
}

}  // namespace uflip
