#include "src/run/parallel_exec.h"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>

#include "src/util/thread_pool.h"

namespace uflip {

unsigned DefaultJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ParallelFor(size_t count, unsigned jobs,
                   const std::function<Status(size_t)>& unit) {
  if (count == 0) return Status::Ok();
  if (jobs <= 1 || count == 1) {
    // Inline: same unit order, same fold order, no threads. A failure
    // still runs the remaining units so the inline path reports the
    // same (lowest-index) error the pooled path would.
    Status first = Status::Ok();
    for (size_t i = 0; i < count; ++i) {
      Status s = unit(i);
      if (!s.ok() && first.ok()) first = s;
    }
    return first;
  }

  size_t workers = std::min<size_t>(jobs, count);
  std::vector<std::future<Status>> results;
  results.reserve(count);
  {
    ThreadPool pool(static_cast<unsigned>(workers));
    for (size_t i = 0; i < count; ++i) {
      results.push_back(pool.Submit([&unit, i] { return unit(i); }));
    }
    // Pool destructor drains: every unit has run when it returns.
  }
  // Scan futures in index order so the reported failure (or rethrown
  // exception) is the lowest-index one regardless of completion order.
  Status first = Status::Ok();
  std::exception_ptr thrown;
  for (std::future<Status>& f : results) {
    try {
      Status s = f.get();
      if (!s.ok() && first.ok()) first = s;
    } catch (...) {
      if (!thrown) thrown = std::current_exception();
    }
  }
  if (thrown) std::rethrow_exception(thrown);
  return first;
}

}  // namespace uflip
