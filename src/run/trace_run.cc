#include "src/run/trace_run.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/run/phases.h"
#include "src/util/units.h"

namespace uflip {

namespace {

Status ValidateReplay(const Trace& trace, const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(trace.Validate());
  if (trace.events.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  if (options.timing == ReplayTiming::kScaled && options.time_scale <= 0) {
    return Status::InvalidArgument("time_scale must be > 0");
  }
  return Status::Ok();
}

/// Synthesizes a spec so RunResult::Stats() (io_ignore) and reports work
/// as for pattern runs; trace IOs need not share a size or mode, so the
/// spec describes the trace as a whole rather than a Table 1 pattern.
void FillSpec(const Trace& trace, const ReplayOptions& options, uint64_t cap,
              PatternSpec* spec) {
  spec->label = options.label.empty()
                    ? (trace.meta.source.empty() ? "trace"
                                                 : trace.meta.source)
                    : options.label;
  spec->io_count = static_cast<uint32_t>(trace.events.size());
  spec->io_size = trace.events.front().size;
  spec->mode = trace.events.front().mode;
  spec->target_size = cap;
}

/// Resolves the replay offset of event `i` on a device of `cap` bytes.
StatusOr<uint64_t> ReplayOffset(const Trace& trace, size_t i,
                                const ReplayOptions& options, uint64_t cap,
                                uint64_t recorded_cap) {
  const TraceEvent& e = trace.events[i];
  if (options.rescale_lba) {
    return RescaleLba(e.offset, e.size, recorded_cap, cap);
  }
  if (e.offset + e.size > cap) {
    return Status::OutOfRange(
        "trace event " + std::to_string(i) + " beyond device capacity (" +
        std::to_string(e.offset + e.size) + " > " + std::to_string(cap) +
        "); replay with LBA rescaling to fit it");
  }
  return e.offset;
}

/// Applies the explicit or phase-derived (Section 4.2) io_ignore to the
/// finished result.
void ResolveIoIgnore(const ReplayOptions& options, RunResult* result) {
  uint32_t ignore = options.io_ignore;
  if (ignore == ReplayOptions::kAutoIoIgnore) {
    ignore = AnalyzePhases(result->ResponseTimes()).startup_ios;
  }
  uint32_t count = result->spec.io_count;
  result->spec.io_ignore = std::min(ignore, count ? count - 1 : 0);
}

}  // namespace

const char* ReplayTimingName(ReplayTiming t) {
  switch (t) {
    case ReplayTiming::kClosedLoop: return "closed-loop";
    case ReplayTiming::kOriginal: return "original";
    case ReplayTiming::kScaled: return "scaled";
  }
  return "?";
}

StatusOr<uint64_t> RescaleLba(uint64_t offset, uint32_t size,
                              uint64_t from_bytes, uint64_t to_bytes) {
  if (to_bytes == 0) return Status::InvalidArgument("target capacity == 0");
  if (size > to_bytes) {
    return Status::OutOfRange("IO larger than target device capacity");
  }
  if (from_bytes == 0) from_bytes = to_bytes;
  if (offset + size > from_bytes) {
    return Status::OutOfRange("event beyond its own recorded capacity");
  }
  // Proportional mapping in exact integer arithmetic, snapped down to
  // the sector grid (the paper's LBA unit), then clamped so the IO fits.
  uint64_t scaled = static_cast<uint64_t>(
      static_cast<unsigned __int128>(offset) * to_bytes / from_bytes);
  scaled -= scaled % kSector;
  if (scaled + size > to_bytes) {
    scaled = (to_bytes - size) / kSector * kSector;
  }
  return scaled;
}

StatusOr<RunResult> ExecuteTraceRun(BlockDevice* device, const Trace& trace,
                                    const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(ValidateReplay(trace, options));
  const uint64_t cap = device->capacity_bytes();
  const uint64_t recorded_cap =
      trace.meta.capacity_bytes ? trace.meta.capacity_bytes : cap;
  const double scale =
      options.timing == ReplayTiming::kScaled ? options.time_scale : 1.0;

  RunResult result;
  FillSpec(trace, options, cap, &result.spec);
  result.samples.reserve(trace.events.size());

  Clock* clock = device->clock();
  const uint64_t base_us = clock->NowUs();
  const uint64_t epoch_us = trace.events.front().submit_us;
  double max_completion_us = base_us;
  double carry_us = 0;  // closed-loop fractional response-time carry

  for (size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    StatusOr<uint64_t> off = ReplayOffset(trace, i, options, cap,
                                          recorded_cap);
    if (!off.ok()) return off.status();
    IoRequest req{*off, e.size, e.mode};

    uint64_t t;
    if (options.timing == ReplayTiming::kClosedLoop) {
      t = clock->NowUs();
    } else {
      uint64_t delta = e.submit_us - epoch_us;
      t = base_us + static_cast<uint64_t>(static_cast<double>(delta) * scale);
      // Open loop: the clock tracks the submission schedule, not IO
      // completions; a submission never travels back in time.
      if (t > clock->NowUs()) clock->SleepUs(t - clock->NowUs());
      t = std::max(t, clock->NowUs());
    }
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    if (options.timing == ReplayTiming::kClosedLoop) {
      clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    }
    max_completion_us =
        std::max(max_completion_us, static_cast<double>(t) + *rt);
    result.samples.push_back(IoSample{i, t, *rt, req});
  }

  // Leave the clock past the last completion (open-loop replay may end
  // with IOs still queued on the device); round up so a fractional tail
  // is never cut short.
  uint64_t end_us = static_cast<uint64_t>(std::ceil(max_completion_us));
  if (clock->NowUs() < end_us) {
    clock->SleepUs(end_us - clock->NowUs());
  }
  ResolveIoIgnore(options, &result);
  return result;
}

StatusOr<RunResult> ExecuteTraceRun(AsyncBlockDevice* device,
                                    const Trace& trace,
                                    const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(ValidateReplay(trace, options));
  const uint64_t cap = device->capacity_bytes();
  const uint64_t recorded_cap =
      trace.meta.capacity_bytes ? trace.meta.capacity_bytes : cap;
  const double scale =
      options.timing == ReplayTiming::kScaled ? options.time_scale : 1.0;
  const bool closed = options.timing == ReplayTiming::kClosedLoop;

  RunResult result;
  FillSpec(trace, options, cap, &result.spec);
  result.samples.resize(trace.events.size());

  Clock* clock = device->clock();
  const uint64_t base_us = clock->NowUs();
  const uint64_t epoch_us = trace.events.front().submit_us;
  double max_completion_us = base_us;
  double carry_us = 0;      // closed-loop fractional response-time carry
  uint64_t next_us = base_us;  // closed loop: next submission time
  std::unordered_map<IoToken, size_t> event_of;
  auto harvest = [&](const std::vector<IoCompletion>& records) {
    for (const IoCompletion& c : records) {
      auto it = event_of.find(c.token);
      if (it == event_of.end()) continue;  // not ours
      IoSample& s = result.samples[it->second];
      s.rt_us = c.rt_us;
      event_of.erase(it);
      max_completion_us = std::max(
          max_completion_us, static_cast<double>(c.submit_us) + c.rt_us);
      if (closed) {
        next_us = c.submit_us + WholeUsWithCarry(c.rt_us, &carry_us);
      }
    }
  };

  for (size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    StatusOr<uint64_t> off = ReplayOffset(trace, i, options, cap,
                                          recorded_cap);
    if (!off.ok()) return off.status();
    IoRequest req{*off, e.size, e.mode};

    uint64_t t;
    if (closed) {
      t = next_us;
    } else {
      uint64_t delta = e.submit_us - epoch_us;
      t = base_us + static_cast<uint64_t>(static_cast<double>(delta) * scale);
    }
    // The clock tracks the submission schedule; completions may still be
    // in flight behind it.
    if (t > clock->NowUs()) clock->SleepUs(t - clock->NowUs());
    t = std::max(t, clock->NowUs());

    StatusOr<IoToken> token = device->Enqueue(t, req);
    if (!token.ok()) return token.status();
    event_of.emplace(*token, i);
    result.samples[i] = IoSample{i, t, 0, req};
    harvest(device->PollCompletions());
    if (closed && event_of.count(*token)) {
      return Status::Internal("async device left a closed-loop IO pending");
    }
  }
  harvest(device->DrainAll());
  if (!event_of.empty()) {
    return Status::Internal("async device left queued IOs unresolved");
  }

  uint64_t end_us = static_cast<uint64_t>(std::ceil(max_completion_us));
  if (clock->NowUs() < end_us) {
    clock->SleepUs(end_us - clock->NowUs());
  }
  ResolveIoIgnore(options, &result);
  return result;
}

}  // namespace uflip
