#include "src/run/trace_run.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/run/phases.h"
#include "src/util/units.h"

namespace uflip {

namespace {

Status ValidateOptions(const ReplayOptions& options) {
  if (options.timing == ReplayTiming::kScaled && options.time_scale <= 0) {
    return Status::InvalidArgument("time_scale must be > 0");
  }
  if (!options.keep_samples &&
      options.io_ignore == ReplayOptions::kAutoIoIgnore) {
    return Status::InvalidArgument(
        "stats-only replay cannot phase-derive io_ignore (the full "
        "response-time series is not retained); pass an explicit value");
  }
  return Status::Ok();
}

/// Online per-event validation: the same invariants Trace::Validate()
/// enforces on a materialized trace, checked as events stream past.
class EventChecker {
 public:
  explicit EventChecker(uint64_t recorded_capacity)
      : capacity_(recorded_capacity) {}

  Status Check(const TraceEvent& e, uint64_t i) {
    if (e.size == 0) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": zero-sized IO");
    }
    if (e.mode != IoMode::kRead && e.mode != IoMode::kWrite) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": invalid IO mode");
    }
    if (e.rt_us < 0) {
      return Status::InvalidArgument("trace event " + std::to_string(i) +
                                     ": negative response time");
    }
    if (i > 0 && e.submit_us < prev_submit_us_) {
      return Status::InvalidArgument(
          "trace event " + std::to_string(i) +
          ": submission times not sorted (" + std::to_string(e.submit_us) +
          " after " + std::to_string(prev_submit_us_) + ")");
    }
    prev_submit_us_ = e.submit_us;
    if (capacity_ > 0 && e.offset + e.size > capacity_) {
      return Status::OutOfRange(
          "trace event " + std::to_string(i) + ": [" +
          std::to_string(e.offset) + ", " +
          std::to_string(e.offset + e.size) + ") beyond recorded capacity " +
          std::to_string(capacity_));
    }
    return Status::Ok();
  }

 private:
  uint64_t capacity_;
  uint64_t prev_submit_us_ = 0;
};

/// Synthesizes a spec so RunResult::Stats() (io_ignore) and reports work
/// as for pattern runs; trace IOs need not share a size or mode, so the
/// spec describes the trace as a whole rather than a Table 1 pattern.
void FillSpecHeader(const TraceMeta& meta, const ReplayOptions& options,
                    uint64_t cap, PatternSpec* spec) {
  spec->label = options.label.empty()
                    ? (meta.source.empty() ? "trace" : meta.source)
                    : options.label;
  spec->target_size = cap;
}

/// Bounded sample reservation from a source's size hint (see
/// kMaxReserveEvents: hints from file headers are unvalidated).
void ReserveSamples(const EventSource& source, std::vector<IoSample>* out) {
  if (std::optional<uint64_t> n = source.SizeHint()) {
    out->reserve(static_cast<size_t>(std::min(*n, kMaxReserveEvents)));
  }
}

/// Resolves the replay offset of event `i` on a device of `cap` bytes.
StatusOr<uint64_t> ReplayOffset(const TraceEvent& e, uint64_t i,
                                const ReplayOptions& options, uint64_t cap,
                                uint64_t recorded_cap) {
  if (options.rescale_lba) {
    return RescaleLba(e.offset, e.size, recorded_cap, cap);
  }
  if (e.offset + e.size > cap) {
    return Status::OutOfRange(
        "trace event " + std::to_string(i) + " beyond device capacity (" +
        std::to_string(e.offset + e.size) + " > " + std::to_string(cap) +
        "); replay with LBA rescaling to fit it");
  }
  return e.offset;
}

/// Stats-only accumulation: online running/start-up statistics plus the
/// bookkeeping that replicates the materialized path's io_ignore
/// clamping (ignore >= count degrades to "last sample only").
struct OnlineStats {
  StreamingStats all;
  StreamingStats running;
  uint64_t last_index = 0;
  double last_rt_us = 0;

  void Add(uint64_t index, double rt_us, uint32_t io_ignore) {
    all.Add(rt_us);
    if (index >= io_ignore) running.Add(rt_us);
    if (all.count() == 1 || index >= last_index) {
      last_index = index;
      last_rt_us = rt_us;
    }
  }
};

/// Applies the explicit or phase-derived (Section 4.2) io_ignore and
/// the final statistics to the finished result. `count` is the events
/// replayed; `online` is set in stats-only mode.
void FinishResult(const ReplayOptions& options, uint64_t count,
                  OnlineStats* online, RunResult* result) {
  result->spec.io_count = static_cast<uint32_t>(
      std::min<uint64_t>(count, UINT32_MAX));
  uint32_t ignore = options.io_ignore;
  if (ignore == ReplayOptions::kAutoIoIgnore) {
    ignore = AnalyzePhases(result->ResponseTimes()).startup_ios;
  }
  uint32_t clamp = result->spec.io_count ? result->spec.io_count - 1 : 0;
  result->spec.io_ignore = std::min(ignore, clamp);
  if (online != nullptr) {
    // Mirror the materialized clamp: when every sample fell inside the
    // ignored prefix, statistics cover exactly the last one.
    if (online->running.count() == 0 && online->all.count() > 0) {
      online->running.Add(online->last_rt_us);
    }
    result->streamed_stats = online->running.ToRunStats();
    result->streamed_stats_all = online->all.ToRunStats();
  }
}

}  // namespace

const char* ReplayTimingName(ReplayTiming t) {
  switch (t) {
    case ReplayTiming::kClosedLoop: return "closed-loop";
    case ReplayTiming::kOriginal: return "original";
    case ReplayTiming::kScaled: return "scaled";
  }
  return "?";
}

StatusOr<uint64_t> RescaleLba(uint64_t offset, uint32_t size,
                              uint64_t from_bytes, uint64_t to_bytes) {
  if (to_bytes == 0) return Status::InvalidArgument("target capacity == 0");
  if (size > to_bytes) {
    return Status::OutOfRange("IO larger than target device capacity");
  }
  if (from_bytes == 0) from_bytes = to_bytes;
  if (offset + size > from_bytes) {
    return Status::OutOfRange("event beyond its own recorded capacity");
  }
  // Proportional mapping in exact integer arithmetic, snapped down to
  // the sector grid (the paper's LBA unit), then clamped so the IO fits.
  uint64_t scaled = static_cast<uint64_t>(
      static_cast<unsigned __int128>(offset) * to_bytes / from_bytes);
  scaled -= scaled % kSector;
  if (scaled + size > to_bytes) {
    scaled = (to_bytes - size) / kSector * kSector;
  }
  return scaled;
}

StatusOr<RunResult> ExecuteTraceRun(BlockDevice* device, EventSource* source,
                                    const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(ValidateOptions(options));
  const uint64_t cap = device->capacity_bytes();
  const TraceMeta& meta = source->meta();
  const uint64_t recorded_cap =
      meta.capacity_bytes ? meta.capacity_bytes : cap;
  const double scale =
      options.timing == ReplayTiming::kScaled ? options.time_scale : 1.0;

  RunResult result;
  FillSpecHeader(meta, options, cap, &result.spec);
  if (options.keep_samples) ReserveSamples(*source, &result.samples);

  Clock* clock = device->clock();
  const uint64_t base_us = clock->NowUs();
  uint64_t epoch_us = 0;
  double max_completion_us = base_us;
  double carry_us = 0;  // closed-loop fractional response-time carry
  EventChecker checker(meta.capacity_bytes);
  OnlineStats online;
  uint64_t count = 0;

  TraceEvent e;
  while (true) {
    StatusOr<bool> more = source->Next(&e);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const uint64_t i = count;
    UFLIP_RETURN_IF_ERROR(checker.Check(e, i));
    if (i == 0) {
      epoch_us = e.submit_us;
      result.spec.io_size = e.size;
      result.spec.mode = e.mode;
    }
    StatusOr<uint64_t> off = ReplayOffset(e, i, options, cap, recorded_cap);
    if (!off.ok()) return off.status();
    IoRequest req{*off, e.size, e.mode};

    uint64_t t;
    if (options.timing == ReplayTiming::kClosedLoop) {
      t = clock->NowUs();
    } else {
      uint64_t delta = e.submit_us - epoch_us;
      t = base_us + static_cast<uint64_t>(static_cast<double>(delta) * scale);
      // Open loop: the clock tracks the submission schedule, not IO
      // completions; a submission never travels back in time.
      if (t > clock->NowUs()) clock->SleepUs(t - clock->NowUs());
      t = std::max(t, clock->NowUs());
    }
    StatusOr<double> rt = device->SubmitAt(t, req);
    if (!rt.ok()) return rt.status();
    if (options.timing == ReplayTiming::kClosedLoop) {
      clock->SleepUs(WholeUsWithCarry(*rt, &carry_us));
    }
    max_completion_us =
        std::max(max_completion_us, static_cast<double>(t) + *rt);
    if (options.keep_samples) {
      result.samples.push_back(IoSample{i, t, *rt, req});
    } else {
      online.Add(i, *rt, options.io_ignore);
    }
    ++count;
  }
  if (count == 0) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }

  // Leave the clock past the last completion (open-loop replay may end
  // with IOs still queued on the device); round up so a fractional tail
  // is never cut short.
  uint64_t end_us = static_cast<uint64_t>(std::ceil(max_completion_us));
  if (clock->NowUs() < end_us) {
    clock->SleepUs(end_us - clock->NowUs());
  }
  FinishResult(options, count, options.keep_samples ? nullptr : &online,
               &result);
  if (MetricRegistry* reg = device->metrics_registry()) {
    result.metrics = reg->Snapshot();
  }
  if (SpanRecorder* rec = device->span_recorder()) {
    result.spans = rec->Snapshot();
  }
  return result;
}

StatusOr<RunResult> ExecuteTraceRun(AsyncBlockDevice* device,
                                    EventSource* source,
                                    const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(ValidateOptions(options));
  const uint64_t cap = device->capacity_bytes();
  const TraceMeta& meta = source->meta();
  const uint64_t recorded_cap =
      meta.capacity_bytes ? meta.capacity_bytes : cap;
  const double scale =
      options.timing == ReplayTiming::kScaled ? options.time_scale : 1.0;
  const bool closed = options.timing == ReplayTiming::kClosedLoop;

  RunResult result;
  FillSpecHeader(meta, options, cap, &result.spec);
  if (options.keep_samples) ReserveSamples(*source, &result.samples);

  Clock* clock = device->clock();
  const uint64_t base_us = clock->NowUs();
  uint64_t epoch_us = 0;
  double max_completion_us = base_us;
  double carry_us = 0;      // closed-loop fractional response-time carry
  uint64_t next_us = base_us;  // closed loop: next submission time
  EventChecker checker(meta.capacity_bytes);
  OnlineStats online;
  uint64_t count = 0;
  // In-flight IOs only: completions are harvested continuously, so this
  // map stays bounded by the device's queue depth.
  std::unordered_map<IoToken, uint64_t> event_of;
  auto harvest = [&](const std::vector<IoCompletion>& records) {
    for (const IoCompletion& c : records) {
      auto it = event_of.find(c.token);
      if (it == event_of.end()) continue;  // not ours
      uint64_t index = it->second;
      if (options.keep_samples) {
        result.samples[index].rt_us = c.rt_us;
      } else {
        online.Add(index, c.rt_us, options.io_ignore);
      }
      event_of.erase(it);
      max_completion_us = std::max(
          max_completion_us, static_cast<double>(c.submit_us) + c.rt_us);
      if (closed) {
        next_us = c.submit_us + WholeUsWithCarry(c.rt_us, &carry_us);
      }
    }
  };

  TraceEvent e;
  while (true) {
    StatusOr<bool> more = source->Next(&e);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const uint64_t i = count;
    UFLIP_RETURN_IF_ERROR(checker.Check(e, i));
    if (i == 0) {
      epoch_us = e.submit_us;
      result.spec.io_size = e.size;
      result.spec.mode = e.mode;
    }
    StatusOr<uint64_t> off = ReplayOffset(e, i, options, cap, recorded_cap);
    if (!off.ok()) return off.status();
    IoRequest req{*off, e.size, e.mode};

    uint64_t t;
    if (closed) {
      t = next_us;
    } else {
      uint64_t delta = e.submit_us - epoch_us;
      t = base_us + static_cast<uint64_t>(static_cast<double>(delta) * scale);
    }
    // The clock tracks the submission schedule; completions may still be
    // in flight behind it.
    if (t > clock->NowUs()) clock->SleepUs(t - clock->NowUs());
    t = std::max(t, clock->NowUs());

    StatusOr<IoToken> token = device->Enqueue(t, req);
    if (!token.ok()) return token.status();
    event_of.emplace(*token, i);
    if (options.keep_samples) {
      result.samples.push_back(IoSample{i, t, 0, req});
    }
    ++count;
    harvest(device->PollCompletions());
    if (closed && event_of.count(*token)) {
      return Status::Internal("async device left a closed-loop IO pending");
    }
  }
  if (count == 0) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  harvest(device->DrainAll());
  if (!event_of.empty()) {
    return Status::Internal("async device left queued IOs unresolved");
  }

  uint64_t end_us = static_cast<uint64_t>(std::ceil(max_completion_us));
  if (clock->NowUs() < end_us) {
    clock->SleepUs(end_us - clock->NowUs());
  }
  FinishResult(options, count, options.keep_samples ? nullptr : &online,
               &result);
  if (MetricRegistry* reg = device->metrics_registry()) {
    result.metrics = reg->Snapshot();
  }
  if (SpanRecorder* rec = device->span_recorder()) {
    result.spans = rec->Snapshot();
  }
  return result;
}

StatusOr<RunResult> ExecuteTraceRun(BlockDevice* device, const Trace& trace,
                                    const ReplayOptions& options) {
  // Deliberately validates up front even though the streaming loop
  // re-checks each event: a materialized trace can fail fast, before
  // any IO touches (and mutates) the device.
  UFLIP_RETURN_IF_ERROR(trace.Validate());
  if (trace.events.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  TraceView view(&trace);
  return ExecuteTraceRun(device, &view, options);
}

StatusOr<RunResult> ExecuteTraceRun(AsyncBlockDevice* device,
                                    const Trace& trace,
                                    const ReplayOptions& options) {
  UFLIP_RETURN_IF_ERROR(trace.Validate());
  if (trace.events.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  TraceView view(&trace);
  return ExecuteTraceRun(device, &view, options);
}

}  // namespace uflip
