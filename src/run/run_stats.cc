#include "src/run/run_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uflip {

RunStats RunStats::Compute(const std::vector<double>& samples_us,
                           size_t first) {
  RunStats s;
  if (first >= samples_us.size()) return s;
  std::vector<double> v(samples_us.begin() + first, samples_us.end());
  s.count = v.size();
  // Welford's online moments: the naive E[x^2] - E[x]^2 form cancels
  // catastrophically on high-mean low-variance series (long traces of
  // near-identical large response times collapsed to stddev 0).
  double sum = 0, mean = 0, m2 = 0;
  uint64_t n = 0;
  s.min_us = v[0];
  s.max_us = v[0];
  // Deliberately built for every materialized run, not just replicated
  // ones: mergeability is part of the RunStats contract (any run can
  // later be pooled), and the ~13KB digest rides the existing
  // O(n log n) sort without changing the complexity.
  auto digest = std::make_shared<TDigest>();
  for (double x : v) {
    sum += x;
    ++n;
    double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min_us = std::min(s.min_us, x);
    s.max_us = std::max(s.max_us, x);
    digest->Add(x);
  }
  s.sum_us = sum;
  s.mean_us = mean;
  double var = m2 / static_cast<double>(s.count);
  s.stddev_us = var > 0 ? std::sqrt(var) : 0.0;
  s.sketch = std::move(digest);
  std::sort(v.begin(), v.end());
  auto pct = [&v](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  return s;
}

double RunStats::SketchQuantile(double q) const {
  return sketch != nullptr ? sketch->Quantile(q) : 0.0;
}

RepSummary RunStats::Summary() const {
  RepSummary r;
  r.count = count;
  r.mean = mean_us;
  r.m2 = stddev_us * stddev_us * static_cast<double>(count);
  r.min = min_us;
  r.max = max_us;
  r.p50 = p50_us;
  r.p95 = p95_us;
  r.p99 = p99_us;
  r.sketch = sketch;
  return r;
}

RunStats RunStats::FromAggregate(const ReplicateAggregate& agg) {
  RunStats s;
  s.count = agg.count;
  s.mean_us = agg.mean;
  s.stddev_us = agg.stddev;
  s.min_us = agg.min;
  s.max_us = agg.max;
  s.sum_us = agg.mean * static_cast<double>(agg.count);
  s.p50_us = agg.p50;
  s.p95_us = agg.p95;
  s.p99_us = agg.p99;
  s.sketch = agg.sketch;
  return s;
}

size_t StreamingStats::BucketOf(double rt_us) const {
  if (!(rt_us > kMinRtUs)) return 0;  // also catches NaN / negatives
  double b = 1.0 + std::log(rt_us / kMinRtUs) / std::log(kGrowth);
  if (b >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(b);
}

double StreamingStats::BucketValue(size_t bucket) const {
  if (bucket == 0) return kMinRtUs;
  // Geometric midpoint of the bucket's bounds: relative error is at
  // most half a growth step (~0.5%).
  return kMinRtUs * std::pow(kGrowth, static_cast<double>(bucket) - 0.5);
}

void StreamingStats::Add(double rt_us) {
  if (count_ == 0) {
    min_us_ = rt_us;
    max_us_ = rt_us;
  } else {
    min_us_ = std::min(min_us_, rt_us);
    max_us_ = std::max(max_us_, rt_us);
  }
  ++count_;
  sum_us_ += rt_us;
  // Welford update, identical arithmetic (and order) to
  // RunStats::Compute so streamed and materialized moments match
  // bit-for-bit.
  double delta = rt_us - mean_us_;
  mean_us_ += delta / static_cast<double>(count_);
  m2_us_ += delta * (rt_us - mean_us_);
  digest_.Add(rt_us);
  // The histogram clamps out-of-range samples into its edge buckets;
  // count them so the sketch-vs-histogram cross-check can discount the
  // polluted estimates instead of flagging phantom divergence.
  static const double kMaxRtUs =
      kMinRtUs * std::pow(kGrowth, static_cast<double>(kBuckets - 1));
  if (rt_us < kMinRtUs) {
    ++hist_underflow_;
  } else if (rt_us >= kMaxRtUs) {
    ++hist_overflow_;
  }
  ++hist_[BucketOf(rt_us)];
}

RunStats StreamingStats::ToRunStats() const {
  RunStats s;
  if (count_ == 0) return s;
  s.count = count_;
  s.min_us = min_us_;
  s.max_us = max_us_;
  s.sum_us = sum_us_;
  s.mean_us = mean_us_;
  double var = m2_us_ / static_cast<double>(count_);
  s.stddev_us = var > 0 ? std::sqrt(var) : 0.0;
  // Percentiles come from the mergeable t-digest; the log histogram's
  // estimates ride along as an independent cross-check.
  s.p50_us = digest_.Quantile(0.50);
  s.p95_us = digest_.Quantile(0.95);
  s.p99_us = digest_.Quantile(0.99);
  s.sketch = std::make_shared<TDigest>(digest_);

  // The same order statistic RunStats::Compute takes (index
  // floor(p * (n-1)) of the sorted series), located in the histogram
  // and mapped back to the bucket's midpoint, clamped to the exact
  // observed range.
  auto hist_pct = [this](double p, size_t* bucket) {
    uint64_t target =
        static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += hist_[b];
      if (seen > target) {
        *bucket = b;
        return std::min(std::max(BucketValue(b), min_us_), max_us_);
      }
    }
    *bucket = kBuckets - 1;
    return max_us_;
  };
  RunStats::HistogramCheck hc;
  size_t b50 = 0, b95 = 0, b99 = 0;
  hc.p50_us = hist_pct(0.50, &b50);
  hc.p95_us = hist_pct(0.95, &b95);
  hc.p99_us = hist_pct(0.99, &b99);
  hc.underflow = hist_underflow_;
  hc.overflow = hist_overflow_;
  // Cross-check in rank space (value space would flag phantom
  // divergence wherever adjacent order statistics are far apart, e.g.
  // sparse tails of short runs): locate the sketch's value in the
  // histogram CDF and measure how many ranks its bucket's interval sits
  // from the requested order statistic. An estimate whose bucket
  // absorbed clamped samples measures the clamping, not the sketch, and
  // is excluded.
  auto polluted = [this](size_t b) {
    return (b == 0 && hist_underflow_ > 0) ||
           (b == kBuckets - 1 && hist_overflow_ > 0);
  };
  auto rank_divergence = [this, &polluted](double p, double sketch_v) {
    size_t b = BucketOf(sketch_v);
    if (polluted(b)) return 0.0;
    uint64_t before = 0;
    for (size_t i = 0; i < b; ++i) before += hist_[i];
    uint64_t inside = hist_[b];
    // Ranks covered by the sketch value's bucket; an empty bucket
    // (value interpolated into a gap) collapses to the boundary rank.
    double lo = static_cast<double>(before);
    double hi =
        static_cast<double>(before + (inside > 0 ? inside - 1 : 0));
    double target = p * static_cast<double>(count_ - 1);
    double dist = 0;
    if (target < lo) dist = lo - target;
    if (target > hi) dist = target - hi;
    // Interpolation quantization slack: the sketch's value may
    // legitimately sit between order statistics, displacing its bucket
    // by ~1 rank -- without this allowance every run under ~50 samples
    // would flag, since 1/n alone exceeds the threshold there.
    dist = std::max(0.0, dist - 1.5);
    return dist / static_cast<double>(count_);
  };
  if (!polluted(b50)) {
    hc.divergence =
        std::max(hc.divergence, rank_divergence(0.50, s.p50_us));
  }
  if (!polluted(b95)) {
    hc.divergence =
        std::max(hc.divergence, rank_divergence(0.95, s.p95_us));
  }
  if (!polluted(b99)) {
    hc.divergence =
        std::max(hc.divergence, rank_divergence(0.99, s.p99_us));
  }
  hc.divergent = hc.divergence > RunStats::kDivergenceThreshold;
  s.hist_check = hc;
  return s;
}

std::string RunStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu min=%.0f mean=%.0f p50=%.0f p95=%.0f max=%.0f "
                "sd=%.0f (us)",
                static_cast<unsigned long long>(count), min_us, mean_us,
                p50_us, p95_us, max_us, stddev_us);
  return buf;
}

}  // namespace uflip
