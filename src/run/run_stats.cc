#include "src/run/run_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uflip {

RunStats RunStats::Compute(const std::vector<double>& samples_us,
                           size_t first) {
  RunStats s;
  if (first >= samples_us.size()) return s;
  std::vector<double> v(samples_us.begin() + first, samples_us.end());
  s.count = v.size();
  double sum = 0, sum2 = 0;
  s.min_us = v[0];
  s.max_us = v[0];
  for (double x : v) {
    sum += x;
    sum2 += x * x;
    s.min_us = std::min(s.min_us, x);
    s.max_us = std::max(s.max_us, x);
  }
  s.sum_us = sum;
  s.mean_us = sum / static_cast<double>(s.count);
  double var = sum2 / static_cast<double>(s.count) - s.mean_us * s.mean_us;
  s.stddev_us = var > 0 ? std::sqrt(var) : 0.0;
  std::sort(v.begin(), v.end());
  auto pct = [&v](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  return s;
}

std::string RunStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu min=%.0f mean=%.0f p50=%.0f p95=%.0f max=%.0f "
                "sd=%.0f (us)",
                static_cast<unsigned long long>(count), min_us, mean_us,
                p50_us, p95_us, max_us, stddev_us);
  return buf;
}

}  // namespace uflip
