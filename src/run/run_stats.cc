#include "src/run/run_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uflip {

RunStats RunStats::Compute(const std::vector<double>& samples_us,
                           size_t first) {
  RunStats s;
  if (first >= samples_us.size()) return s;
  std::vector<double> v(samples_us.begin() + first, samples_us.end());
  s.count = v.size();
  // Welford's online moments: the naive E[x^2] - E[x]^2 form cancels
  // catastrophically on high-mean low-variance series (long traces of
  // near-identical large response times collapsed to stddev 0).
  double sum = 0, mean = 0, m2 = 0;
  uint64_t n = 0;
  s.min_us = v[0];
  s.max_us = v[0];
  for (double x : v) {
    sum += x;
    ++n;
    double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min_us = std::min(s.min_us, x);
    s.max_us = std::max(s.max_us, x);
  }
  s.sum_us = sum;
  s.mean_us = mean;
  double var = m2 / static_cast<double>(s.count);
  s.stddev_us = var > 0 ? std::sqrt(var) : 0.0;
  std::sort(v.begin(), v.end());
  auto pct = [&v](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  return s;
}

size_t StreamingStats::BucketOf(double rt_us) const {
  if (!(rt_us > kMinRtUs)) return 0;  // also catches NaN / negatives
  double b = 1.0 + std::log(rt_us / kMinRtUs) / std::log(kGrowth);
  if (b >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(b);
}

double StreamingStats::BucketValue(size_t bucket) const {
  if (bucket == 0) return kMinRtUs;
  // Geometric midpoint of the bucket's bounds: relative error is at
  // most half a growth step (~0.5%).
  return kMinRtUs * std::pow(kGrowth, static_cast<double>(bucket) - 0.5);
}

void StreamingStats::Add(double rt_us) {
  if (count_ == 0) {
    min_us_ = rt_us;
    max_us_ = rt_us;
  } else {
    min_us_ = std::min(min_us_, rt_us);
    max_us_ = std::max(max_us_, rt_us);
  }
  ++count_;
  sum_us_ += rt_us;
  // Welford update, identical arithmetic (and order) to
  // RunStats::Compute so streamed and materialized moments match
  // bit-for-bit.
  double delta = rt_us - mean_us_;
  mean_us_ += delta / static_cast<double>(count_);
  m2_us_ += delta * (rt_us - mean_us_);
  ++hist_[BucketOf(rt_us)];
}

RunStats StreamingStats::ToRunStats() const {
  RunStats s;
  if (count_ == 0) return s;
  s.count = count_;
  s.min_us = min_us_;
  s.max_us = max_us_;
  s.sum_us = sum_us_;
  s.mean_us = mean_us_;
  double var = m2_us_ / static_cast<double>(count_);
  s.stddev_us = var > 0 ? std::sqrt(var) : 0.0;
  // The same order statistic RunStats::Compute takes (index
  // floor(p * (n-1)) of the sorted series), located in the histogram
  // and mapped back to the bucket's midpoint, clamped to the exact
  // observed range.
  auto pct = [this](double p) {
    uint64_t target =
        static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += hist_[b];
      if (seen > target) {
        return std::min(std::max(BucketValue(b), min_us_), max_us_);
      }
    }
    return max_us_;
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  return s;
}

std::string RunStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu min=%.0f mean=%.0f p50=%.0f p95=%.0f max=%.0f "
                "sd=%.0f (us)",
                static_cast<unsigned long long>(count), min_us, mean_us,
                p50_us, p95_us, max_us, stddev_us);
  return buf;
}

}  // namespace uflip
