// Parallel execution core: fans independent simulation units -- explorer
// grid cells, per-cell repetitions, replicated replays -- across a
// worker pool and hands their results back to the coordinating thread
// in unit-index order.
//
// The contract every parallel feature in this repo builds on:
//
//   workers produce mergeable partials, the coordinator folds them in
//   canonical (unit-index) order.
//
// A unit must be self-contained: its own freshly prepared device, its
// own RNG streams (derived from the unit's *coordinates* -- cell axes
// and repetition index -- never from a worker id, see bench_util.h
// "Seed-stream derivation"), its own RunStats / sketch /
// MetricRegistry. Units share nothing mutable, so any interleaving of
// their execution produces the same per-unit results; and because the
// fold runs on one thread in a fixed order over merge operations that
// are themselves deterministic (ReplicateSet, MetricSnapshot::Merge,
// TDigest::Merge), the combined output of a --jobs=N run is
// byte-identical to --jobs=1. Nothing here may print, and callers must
// not print from inside a unit: all reporting happens after the fold.
#ifndef UFLIP_RUN_PARALLEL_EXEC_H_
#define UFLIP_RUN_PARALLEL_EXEC_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace uflip {

/// Worker count when the caller does not choose one:
/// std::thread::hardware_concurrency(), never below 1.
unsigned DefaultJobs();

/// Runs unit(i) for every i in [0, count) on up to `jobs` workers.
/// jobs <= 1 (or count <= 1) runs inline on the calling thread with no
/// pool at all, so a --jobs=1 run involves zero thread machinery.
/// Every unit is executed even when another unit fails -- units are
/// independent by contract, and completing them keeps the failure
/// deterministic -- and the returned status is the *lowest-index*
/// failure (Ok when all units succeeded), regardless of completion
/// order. An exception escaping a unit is rethrown on the calling
/// thread, again lowest index first.
[[nodiscard]] Status ParallelFor(size_t count, unsigned jobs,
                   const std::function<Status(size_t)>& unit);

/// Fan-out with result collection: produce(i) fills slot i of the
/// returned vector, which is therefore in unit-index order no matter
/// how execution interleaved. On failure, returns the lowest-index
/// error (all units still ran). Result must be default-constructible
/// and movable.
template <typename Result>
[[nodiscard]] StatusOr<std::vector<Result>> RunUnits(
    size_t count, unsigned jobs,
    const std::function<StatusOr<Result>(size_t)>& produce) {
  std::vector<Result> slots(count);
  Status status = ParallelFor(count, jobs, [&](size_t i) -> Status {
    StatusOr<Result> r = produce(i);
    if (!r.ok()) return r.status();
    slots[i] = std::move(*r);
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return slots;
}

}  // namespace uflip

#endif  // UFLIP_RUN_PARALLEL_EXEC_H_
