// Run execution (Section 3.2): a run is one execution of a reference
// pattern against a device, recording the response time of every IO.
// Includes the plain runner, the parallel runner (Parallelism
// micro-benchmark) and the mix runner (Mix micro-benchmark).
#ifndef UFLIP_RUN_RUNNER_H_
#define UFLIP_RUN_RUNNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/device/async_device.h"
#include "src/device/block_device.h"
#include "src/obs/metric_registry.h"
#include "src/obs/span_trace.h"
#include "src/pattern/pattern.h"
#include "src/run/run_stats.h"
#include "src/util/status.h"

namespace uflip {

/// One measured IO.
struct IoSample {
  uint64_t index = 0;      // position in the pattern
  uint64_t submit_us = 0;  // submission time (device clock)
  double rt_us = 0;        // response time
  IoRequest req;
};

/// Result of one run.
struct RunResult {
  PatternSpec spec;
  std::vector<IoSample> samples;

  /// Filled instead of `samples` by stats-only streaming trace replay
  /// (ReplayOptions::keep_samples = false): statistics accumulated
  /// online with O(1) memory. When set, Stats() /
  /// StatsIncludingStartup() return these; count/min/max/mean/stddev
  /// are exact, percentiles are log-histogram estimates.
  std::optional<RunStats> streamed_stats;
  std::optional<RunStats> streamed_stats_all;

  /// Snapshot of the device's metric registry at run end, when the
  /// device had observability attached (see MetricRegistry); absent
  /// otherwise. Snapshots of replicated runs merge deterministically.
  std::optional<MetricSnapshot> metrics;

  /// Snapshot of the device's span recorder at run end, when span
  /// tracing was attached (see SpanRecorder); absent otherwise. Merges
  /// in canonical unit order like `metrics`.
  std::optional<SpanSnapshot> spans;

  /// Response times only, in submission order.
  std::vector<double> ResponseTimes() const;

  /// Statistics over the running phase (spec.io_ignore start-up IOs
  /// excluded, Section 4.2).
  RunStats Stats() const;

  /// Statistics including the start-up phase.
  RunStats StatsIncludingStartup() const;
};

/// Executes a single pattern run on a device.
[[nodiscard]] StatusOr<RunResult> ExecuteRun(BlockDevice* device, const PatternSpec& spec);

/// Parallelism micro-benchmark executor: `degree` concurrent processes,
/// each running the same baseline pattern over its own slice of the
/// target space (Table 1):
///   TargetOffset_p = TargetOffset + p * TargetSize / degree
///   TargetSize_p   = TargetSize / degree
/// Each process is closed-loop (submits its next IO when its previous
/// one completes), and all processes share the device's completion
/// queue. On a multi-queue device (AsyncSimDevice) IOs dispatched to
/// different channels overlap; response times include queue wait.
[[nodiscard]] StatusOr<RunResult> ExecuteParallelRun(AsyncBlockDevice* device,
                                       const PatternSpec& base,
                                       uint32_t degree);

/// Legacy synchronous entry point: lifts `device` through an AsyncShim
/// deep enough (degree + 1, see runner.cc) that the shim never delays a
/// submission, so the device serializes overlapping IOs itself and
/// response times include queue wait, exactly as on a real
/// synchronous-IO device shared by processes.
[[nodiscard]] StatusOr<RunResult> ExecuteParallelRun(BlockDevice* device,
                                       const PatternSpec& base,
                                       uint32_t degree);

/// Mix micro-benchmark executor: interleaves `ratio` IOs of `first` with
/// one IO of `second`, consecutively (Table 1). The two patterns keep
/// independent LBA streams and target spaces. io_count/io_ignore of
/// `first` control the total length, scaled as in the FlashIO tool so
/// that the minority pattern still gets past its own start-up phase.
[[nodiscard]] StatusOr<RunResult> ExecuteMixRun(BlockDevice* device,
                                  const PatternSpec& first,
                                  const PatternSpec& second, uint32_t ratio);

}  // namespace uflip

#endif  // UFLIP_RUN_RUNNER_H_
