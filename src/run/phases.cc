#include "src/run/phases.h"

#include <algorithm>

namespace uflip {

PhaseAnalysis AnalyzePhases(const std::vector<double>& rt_us) {
  PhaseAnalysis out;
  const size_t n = rt_us.size();
  if (n < 16) {
    if (n > 0) {
      double s = 0;
      for (double x : rt_us) s += x;
      out.running_mean_us = s / static_cast<double>(n);
    }
    return out;
  }

  // Reference level: mean of the last half of the trace (assumed to be
  // fully inside the running phase).
  double tail_sum = 0;
  for (size_t i = n / 2; i < n; ++i) tail_sum += rt_us[i];
  double tail_mean = tail_sum / static_cast<double>(n - n / 2);

  // Start-up phase: the longest prefix whose sliding-window mean stays
  // clearly below the running level.
  const size_t w = std::max<size_t>(4, n / 64);
  size_t startup = 0;
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += rt_us[i];
    if (i + 1 >= w) {
      double window_mean = acc / static_cast<double>(w);
      if (window_mean >= 0.6 * tail_mean) {
        startup = i + 1 >= w ? i + 1 - w : 0;
        break;
      }
      acc -= rt_us[i + 1 - w];
    }
    if (i + 1 == n) startup = 0;  // never reached running level: no model
  }
  // A "start-up" shorter than the window is noise.
  if (startup < w) startup = 0;
  out.startup_ios = static_cast<uint32_t>(startup);
  if (startup > 0) {
    double s = 0;
    for (size_t i = 0; i < startup; ++i) s += rt_us[i];
    out.startup_mean_us = s / static_cast<double>(startup);
  }

  // Running phase statistics.
  double run_sum = 0, run_min = rt_us[startup], run_max = rt_us[startup];
  for (size_t i = startup; i < n; ++i) {
    run_sum += rt_us[i];
    run_min = std::min(run_min, rt_us[i]);
    run_max = std::max(run_max, rt_us[i]);
  }
  size_t run_n = n - startup;
  out.running_mean_us = run_sum / static_cast<double>(run_n);
  out.variability = run_min > 0 ? run_max / run_min : 1.0;

  // Oscillation period via autocorrelation of the running phase.
  if (run_n >= 32 && out.variability > 1.05) {
    std::vector<double> x(rt_us.begin() + startup, rt_us.end());
    double mean = out.running_mean_us;
    double denom = 0;
    for (double v : x) denom += (v - mean) * (v - mean);
    if (denom > 0) {
      size_t max_lag = std::min<size_t>(run_n / 3, 4096);
      double best = 0.2;  // minimum correlation to call it periodic
      size_t best_lag = 0;
      double prev = 1.0;
      bool dipped = false;
      for (size_t lag = 1; lag <= max_lag; ++lag) {
        double num = 0;
        for (size_t i = 0; i + lag < x.size(); ++i) {
          num += (x[i] - mean) * (x[i + lag] - mean);
        }
        double r = num / denom;
        // Look for the first strong peak after the autocorrelation has
        // dipped (skips the trivial lag-0 shoulder).
        if (!dipped && r < prev && r < 0.5) dipped = true;
        if (dipped && r > best) {
          best = r;
          best_lag = lag;
          break;
        }
        prev = r;
      }
      out.period_ios = static_cast<uint32_t>(best_lag);
    }
  }
  return out;
}

RunLengths SuggestRunLengths(const PhaseAnalysis& phases, uint32_t periods,
                             uint32_t min_count) {
  RunLengths out;
  out.io_ignore = phases.startup_ios;
  uint32_t per = std::max<uint32_t>(phases.period_ios, 1);
  out.io_count =
      std::max(min_count, out.io_ignore + per * periods);
  return out;
}

}  // namespace uflip
