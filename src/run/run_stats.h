// Per-run summary statistics (Section 3.2, design principle 1: "for each
// run we measure and record the response time of individual IOs and
// compute statistics (min, max, mean, standard deviation)").
#ifndef UFLIP_RUN_RUN_STATS_H_
#define UFLIP_RUN_RUN_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace uflip {

struct RunStats {
  uint64_t count = 0;
  double min_us = 0;
  double max_us = 0;
  double mean_us = 0;
  double stddev_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double sum_us = 0;

  std::string ToString() const;

  /// Computes statistics over samples[first..], i.e. with the first
  /// `first` (start-up) samples ignored.
  static RunStats Compute(const std::vector<double>& samples_us,
                          size_t first = 0);
};

/// One-pass statistics accumulator with O(1) memory, for replays of
/// traces too long to retain per-IO samples. count / min / max / mean /
/// stddev / sum match RunStats::Compute over the same values exactly
/// (same arithmetic); the percentiles come from a fixed-size
/// logarithmic histogram (~1% bucket growth), so they carry a bounded
/// relative error of about half a bucket instead of being exact order
/// statistics.
class StreamingStats {
 public:
  void Add(double rt_us);

  uint64_t count() const { return count_; }

  /// The accumulated statistics in RunStats form.
  RunStats ToRunStats() const;

 private:
  // Log-spaced response-time histogram: bucket 0 holds everything up to
  // kMinRtUs, later buckets grow by kGrowth per step. 4096 buckets
  // reach ~5e14 us, far past any plausible response time.
  static constexpr double kMinRtUs = 1e-3;
  static constexpr double kGrowth = 1.01;
  static constexpr size_t kBuckets = 4096;

  size_t BucketOf(double rt_us) const;
  double BucketValue(size_t bucket) const;

  uint64_t count_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
  double sum_us_ = 0;
  // Welford running moments (mean + sum of squared deviations); immune
  // to the cancellation the raw second moment suffers on high-mean
  // low-variance series.
  double mean_us_ = 0;
  double m2_us_ = 0;
  std::array<uint64_t, kBuckets> hist_ = {};
};

}  // namespace uflip

#endif  // UFLIP_RUN_RUN_STATS_H_
