// Per-run summary statistics (Section 3.2, design principle 1: "for each
// run we measure and record the response time of individual IOs and
// compute statistics (min, max, mean, standard deviation)").
#ifndef UFLIP_RUN_RUN_STATS_H_
#define UFLIP_RUN_RUN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uflip {

struct RunStats {
  uint64_t count = 0;
  double min_us = 0;
  double max_us = 0;
  double mean_us = 0;
  double stddev_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double sum_us = 0;

  std::string ToString() const;

  /// Computes statistics over samples[first..], i.e. with the first
  /// `first` (start-up) samples ignored.
  static RunStats Compute(const std::vector<double>& samples_us,
                          size_t first = 0);
};

}  // namespace uflip

#endif  // UFLIP_RUN_RUN_STATS_H_
