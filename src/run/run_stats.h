// Per-run summary statistics (Section 3.2, design principle 1: "for each
// run we measure and record the response time of individual IOs and
// compute statistics (min, max, mean, standard deviation)").
#ifndef UFLIP_RUN_RUN_STATS_H_
#define UFLIP_RUN_RUN_STATS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/stats/quantile_sketch.h"
#include "src/stats/replicate_set.h"

namespace uflip {

struct RunStats {
  uint64_t count = 0;
  double min_us = 0;
  double max_us = 0;
  double mean_us = 0;
  double stddev_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double sum_us = 0;

  /// Mergeable quantile sketch over the same samples, so per-run
  /// percentiles can be combined across repetitions (ReplicateSet).
  /// Materialized runs keep p50/p95/p99 as exact order statistics and
  /// carry the sketch alongside; streaming runs take them from the
  /// sketch directly.
  std::shared_ptr<const QuantileSketch> sketch;

  /// Streaming runs only: the legacy log-histogram percentile estimates
  /// retained as a cross-check of the sketch. `divergence` is measured
  /// in rank space -- the largest fraction of the sample count by which
  /// a sketch quantile's position in the histogram CDF misses the
  /// requested order statistic over p50/p95/p99; estimates whose
  /// histogram bucket is polluted by under/overflow clamping are
  /// excluded -- and `divergent` flags divergence >
  /// kDivergenceThreshold.
  struct HistogramCheck {
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    /// Samples below the histogram floor / beyond its last bucket
    /// bound: previously clamped silently into the edge buckets.
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    double divergence = 0;
    bool divergent = false;
  };
  static constexpr double kDivergenceThreshold = 0.02;
  std::optional<HistogramCheck> hist_check;

  bool HasSketch() const { return sketch != nullptr; }
  /// Any quantile off the sketch (0 when none is attached).
  double SketchQuantile(double q) const;

  /// This run as one repetition for ReplicateSet aggregation.
  RepSummary Summary() const;
  /// A ReplicateSet aggregate in RunStats form (percentiles from the
  /// merged sketch), so grid cells report pooled repetitions through
  /// the same columns as single runs.
  static RunStats FromAggregate(const ReplicateAggregate& agg);

  std::string ToString() const;

  /// Computes statistics over samples[first..], i.e. with the first
  /// `first` (start-up) samples ignored. Percentiles are exact order
  /// statistics; a t-digest over the same samples is attached for
  /// downstream merging.
  static RunStats Compute(const std::vector<double>& samples_us,
                          size_t first = 0);
};

/// One-pass statistics accumulator with O(1) memory, for replays of
/// traces too long to retain per-IO samples. count / min / max / mean /
/// stddev / sum match RunStats::Compute over the same values exactly
/// (same arithmetic); the percentiles come from a mergeable t-digest
/// sketch (rank error bounded by the sketch's compression), with the
/// fixed-size logarithmic histogram (~1% bucket growth) retained as an
/// independent cross-check whose divergence from the sketch is flagged
/// in RunStats::hist_check.
class StreamingStats {
 public:
  void Add(double rt_us);

  uint64_t count() const { return count_; }

  /// Samples the log histogram clamped below its floor bucket / beyond
  /// its top bucket (the sketch and the exact moments still cover them).
  uint64_t hist_underflow() const { return hist_underflow_; }
  uint64_t hist_overflow() const { return hist_overflow_; }

  /// The sketch accumulated so far (for O(1)-memory assertions and
  /// direct merging).
  const TDigest& sketch() const { return digest_; }

  /// The accumulated statistics in RunStats form: sketch-backed
  /// percentiles, histogram estimates in hist_check, sketch attached.
  RunStats ToRunStats() const;

 private:
  // Log-spaced response-time histogram: bucket 0 holds everything up to
  // kMinRtUs, later buckets grow by kGrowth per step. 4096 buckets
  // reach ~5e14 us, far past any plausible response time.
  static constexpr double kMinRtUs = 1e-3;
  static constexpr double kGrowth = 1.01;
  static constexpr size_t kBuckets = 4096;

  size_t BucketOf(double rt_us) const;
  double BucketValue(size_t bucket) const;

  uint64_t count_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
  double sum_us_ = 0;
  // Welford running moments (mean + sum of squared deviations); immune
  // to the cancellation the raw second moment suffers on high-mean
  // low-variance series.
  double mean_us_ = 0;
  double m2_us_ = 0;
  TDigest digest_;
  uint64_t hist_underflow_ = 0;
  uint64_t hist_overflow_ = 0;
  std::array<uint64_t, kBuckets> hist_ = {};
};

}  // namespace uflip

#endif  // UFLIP_RUN_RUN_STATS_H_
