#include "src/flash/geometry.h"

#include <cstdio>

namespace uflip {

const char* CellTypeName(CellType t) {
  return t == CellType::kSlc ? "SLC" : "MLC";
}

Status FlashGeometry::Validate() const {
  if (page_data_bytes == 0 || (page_data_bytes & (page_data_bytes - 1)) != 0) {
    return Status::InvalidArgument("page_data_bytes must be a power of two");
  }
  if (pages_per_block == 0) {
    return Status::InvalidArgument("pages_per_block must be > 0");
  }
  if (blocks == 0) return Status::InvalidArgument("blocks must be > 0");
  if (planes == 0) return Status::InvalidArgument("planes must be > 0");
  return Status::Ok();
}

std::string FlashGeometry::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "FlashGeometry{page=%uB+%uB spare, %u pages/block, %u blocks,"
                " %u planes, %.1f MiB}",
                page_data_bytes, page_spare_bytes, pages_per_block, blocks,
                planes,
                static_cast<double>(capacity_bytes()) / (1024.0 * 1024.0));
  return buf;
}

FlashTiming FlashTiming::Slc() {
  FlashTiming t;
  t.read_page_us = 25.0;
  t.program_page_us = 200.0;
  t.erase_block_us = 1500.0;
  t.page_transfer_us = 40.0;
  t.erase_limit = 1000000;
  return t;
}

FlashTiming FlashTiming::Mlc() {
  FlashTiming t;
  t.read_page_us = 60.0;
  t.program_page_us = 800.0;
  t.erase_block_us = 3000.0;
  t.page_transfer_us = 40.0;
  t.erase_limit = 100000;
  return t;
}

}  // namespace uflip
