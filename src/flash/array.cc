#include "src/flash/array.h"

#include <algorithm>

#include "src/util/logging.h"

namespace uflip {

FlashArray::FlashArray(const ArrayConfig& config)
    : config_(config), channel_time_(config.channels, 0.0) {
  UFLIP_CHECK(config.channels >= 1);
  UFLIP_CHECK(config.chip_geometry.Validate().ok());
  chips_.reserve(config.channels);
  for (uint32_t c = 0; c < config.channels; ++c) {
    chips_.push_back(
        std::make_unique<FlashChip>(config.chip_geometry, config.timing));
  }
  total_blocks_ =
      static_cast<uint64_t>(config.chip_geometry.blocks) * config.channels;
}

PageAddr FlashArray::LocalAddr(GlobalPage p, uint32_t* channel) const {
  *channel = ChannelOf(p.block);
  PageAddr a;
  a.block = static_cast<uint32_t>(p.block / config_.channels);
  a.page = p.page;
  return a;
}

Status FlashArray::ReadPages(const std::vector<GlobalPage>& pages,
                             std::vector<uint64_t>* tokens, double* time_us) {
  std::fill(channel_time_.begin(), channel_time_.end(), 0.0);
  if (tokens != nullptr) tokens->resize(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    uint32_t channel = 0;
    PageAddr a = LocalAddr(pages[i], &channel);
    uint64_t token = 0;
    double t = 0;
    UFLIP_RETURN_IF_ERROR(chips_[channel]->ReadPage(a, &token, &t));
    channel_time_[channel] += t;
    if (tokens != nullptr) (*tokens)[i] = token;
  }
  if (time_us != nullptr) {
    *time_us = *std::max_element(channel_time_.begin(), channel_time_.end());
  }
  return Status::Ok();
}

Status FlashArray::ProgramPages(const std::vector<PageWrite>& writes,
                                double* time_us) {
  std::fill(channel_time_.begin(), channel_time_.end(), 0.0);
  for (const PageWrite& w : writes) {
    uint32_t channel = 0;
    PageAddr a = LocalAddr(w.addr, &channel);
    double t = 0;
    UFLIP_RETURN_IF_ERROR(chips_[channel]->ProgramPage(a, w.token, &t));
    channel_time_[channel] += t;
  }
  if (time_us != nullptr) {
    *time_us = *std::max_element(channel_time_.begin(), channel_time_.end());
  }
  return Status::Ok();
}

Status FlashArray::EraseBlocks(const std::vector<uint64_t>& blocks,
                               double* time_us) {
  std::fill(channel_time_.begin(), channel_time_.end(), 0.0);
  for (uint64_t b : blocks) {
    uint32_t channel = ChannelOf(b);
    double t = 0;
    UFLIP_RETURN_IF_ERROR(chips_[channel]->EraseBlock(
        static_cast<uint32_t>(b / config_.channels), &t));
    channel_time_[channel] += t;
  }
  if (time_us != nullptr) {
    *time_us = *std::max_element(channel_time_.begin(), channel_time_.end());
  }
  return Status::Ok();
}

Status FlashArray::ReadPage(GlobalPage p, uint64_t* token, double* time_us) {
  uint32_t channel = 0;
  PageAddr a = LocalAddr(p, &channel);
  return chips_[channel]->ReadPage(a, token, time_us);
}

Status FlashArray::ProgramPage(GlobalPage p, uint64_t token,
                               double* time_us) {
  uint32_t channel = 0;
  PageAddr a = LocalAddr(p, &channel);
  return chips_[channel]->ProgramPage(a, token, time_us);
}

Status FlashArray::EraseBlock(uint64_t block, double* time_us) {
  uint32_t channel = ChannelOf(block);
  return chips_[channel]->EraseBlock(
      static_cast<uint32_t>(block / config_.channels), time_us);
}

uint32_t FlashArray::ProgrammedPages(uint64_t block) const {
  uint32_t channel = ChannelOf(block);
  return chips_[channel]->ProgrammedPages(
      static_cast<uint32_t>(block / config_.channels));
}

uint64_t FlashArray::EraseCount(uint64_t block) const {
  uint32_t channel = ChannelOf(block);
  return chips_[channel]->EraseCount(
      static_cast<uint32_t>(block / config_.channels));
}

bool FlashArray::IsBadBlock(uint64_t block) const {
  uint32_t channel = ChannelOf(block);
  return chips_[channel]->IsBadBlock(
      static_cast<uint32_t>(block / config_.channels));
}

ChipStats FlashArray::AggregateStats() const {
  ChipStats total;
  for (const auto& chip : chips_) {
    const ChipStats& s = chip->stats();
    total.page_reads += s.page_reads;
    total.page_programs += s.page_programs;
    total.block_erases += s.block_erases;
    total.program_order_violations += s.program_order_violations;
    total.bad_blocks += s.bad_blocks;
  }
  return total;
}

double FlashArray::TransferUsTotal() const {
  double total = 0;
  for (const auto& chip : chips_) {
    total += chip->TransferUsTotal();
  }
  return total;
}

}  // namespace uflip
