// Behavioural model of a single NAND flash chip. Enforces the physical
// constraints from Section 2.1 of the paper:
//   * read/program at page granularity, erase at block granularity;
//   * within a block, pages must be programmed in increasing order
//     (serially coupled rows);
//   * a page cannot be re-programmed without an intervening block erase;
//   * each block supports a bounded number of erase cycles (wear), after
//     which it becomes a bad block.
// Instead of full data, each page stores a 64-bit content token so that
// FTL correctness (logical data round-trips) is testable without
// gigabytes of RAM.
#ifndef UFLIP_FLASH_CHIP_H_
#define UFLIP_FLASH_CHIP_H_

#include <cstdint>
#include <vector>

#include "src/flash/geometry.h"
#include "src/util/status.h"

namespace uflip {

/// Physical page address within one chip.
struct PageAddr {
  uint32_t block = 0;
  uint32_t page = 0;

  bool operator==(const PageAddr&) const = default;
};

/// Lifetime counters exposed for tests, wear-leveling and reports.
struct ChipStats {
  uint64_t page_reads = 0;
  uint64_t page_programs = 0;
  uint64_t block_erases = 0;
  uint64_t program_order_violations = 0;
  uint64_t bad_blocks = 0;
};

/// One NAND chip. All operations return the time they take in
/// microseconds via *time_us and a Status describing constraint
/// violations (which a correct FTL never triggers).
class FlashChip {
 public:
  FlashChip(const FlashGeometry& geometry, const FlashTiming& timing);

  const FlashGeometry& geometry() const { return geometry_; }
  const FlashTiming& timing() const { return timing_; }
  const ChipStats& stats() const { return stats_; }

  /// Reads one page. Reading an erased (never programmed) page is legal
  /// and yields token 0.
  [[nodiscard]] Status ReadPage(PageAddr addr, uint64_t* token, double* time_us);

  /// Programs one page with `token`. Fails if the page is already
  /// programmed or behind the block's write point (programming must
  /// proceed in ascending page order; skipping forward is allowed).
  [[nodiscard]] Status ProgramPage(PageAddr addr, uint64_t token, double* time_us);

  /// Erases a block, resetting all its pages. Increments wear; marks the
  /// block bad once the erase limit is reached.
  [[nodiscard]] Status EraseBlock(uint32_t block, double* time_us);

  /// True if the block exceeded its erase limit.
  bool IsBadBlock(uint32_t block) const;

  /// Erase count of a block (wear-leveling input).
  uint64_t EraseCount(uint32_t block) const;

  /// Number of pages programmed in `block` so far (== next programmable
  /// page index).
  uint32_t ProgrammedPages(uint32_t block) const;

  /// Plane of a block (even blocks plane 0, odd blocks plane 1, ...).
  uint32_t PlaneOf(uint32_t block) const { return block % geometry_.planes; }

  /// Cumulative chip-to-controller data-transfer time (the
  /// page_transfer_us component of every read/program so far). The
  /// device model diffs this around an FTL call to split an IO's bus
  /// stage out of its flash stage for the per-channel bus-contention
  /// model; erases move no data and contribute nothing.
  double TransferUsTotal() const { return transfer_us_total_; }

 private:
  [[nodiscard]] Status CheckAddr(PageAddr addr) const;

  FlashGeometry geometry_;
  FlashTiming timing_;
  ChipStats stats_;
  double transfer_us_total_ = 0;

  // Per-block: next page index that may be programmed (0..pages_per_block).
  std::vector<uint32_t> write_point_;
  std::vector<uint64_t> erase_count_;
  std::vector<uint8_t> bad_;
  // Content token per page; 0 == erased.
  std::vector<uint64_t> tokens_;
};

}  // namespace uflip

#endif  // UFLIP_FLASH_CHIP_H_
