#include "src/flash/chip.h"

#include "src/util/logging.h"

namespace uflip {

FlashChip::FlashChip(const FlashGeometry& geometry, const FlashTiming& timing)
    : geometry_(geometry),
      timing_(timing),
      write_point_(geometry.blocks, 0),
      erase_count_(geometry.blocks, 0),
      bad_(geometry.blocks, 0),
      tokens_(geometry.total_pages(), 0) {
  UFLIP_CHECK(geometry.Validate().ok());
}

Status FlashChip::CheckAddr(PageAddr addr) const {
  if (addr.block >= geometry_.blocks) {
    return Status::OutOfRange("block index out of range");
  }
  if (addr.page >= geometry_.pages_per_block) {
    return Status::OutOfRange("page index out of range");
  }
  return Status::Ok();
}

Status FlashChip::ReadPage(PageAddr addr, uint64_t* token, double* time_us) {
  UFLIP_RETURN_IF_ERROR(CheckAddr(addr));
  ++stats_.page_reads;
  if (token != nullptr) {
    *token = tokens_[static_cast<uint64_t>(addr.block) *
                         geometry_.pages_per_block +
                     addr.page];
  }
  transfer_us_total_ += timing_.page_transfer_us;
  if (time_us != nullptr) {
    *time_us = timing_.read_page_us + timing_.page_transfer_us;
  }
  return Status::Ok();
}

Status FlashChip::ProgramPage(PageAddr addr, uint64_t token, double* time_us) {
  UFLIP_RETURN_IF_ERROR(CheckAddr(addr));
  if (bad_[addr.block]) {
    return Status::FailedPrecondition("programming a bad block");
  }
  uint32_t& wp = write_point_[addr.block];
  if (addr.page < wp) {
    // NAND programming must proceed in ascending page order within a
    // block (skipping forward is allowed; going back is not), and a page
    // cannot be re-programmed without an erase.
    ++stats_.program_order_violations;
    return Status::FailedPrecondition(
        "page already programmed or behind the block write point "
        "(no in-place update on NAND)");
  }
  wp = addr.page + 1;
  tokens_[static_cast<uint64_t>(addr.block) * geometry_.pages_per_block +
          addr.page] = token;
  ++stats_.page_programs;
  transfer_us_total_ += timing_.page_transfer_us;
  if (time_us != nullptr) {
    *time_us = timing_.program_page_us + timing_.page_transfer_us;
  }
  return Status::Ok();
}

Status FlashChip::EraseBlock(uint32_t block, double* time_us) {
  if (block >= geometry_.blocks) {
    return Status::OutOfRange("block index out of range");
  }
  if (bad_[block]) {
    return Status::FailedPrecondition("erasing a bad block");
  }
  write_point_[block] = 0;
  uint64_t base = static_cast<uint64_t>(block) * geometry_.pages_per_block;
  for (uint32_t p = 0; p < geometry_.pages_per_block; ++p) {
    tokens_[base + p] = 0;
  }
  ++stats_.block_erases;
  if (++erase_count_[block] >= timing_.erase_limit) {
    bad_[block] = 1;
    ++stats_.bad_blocks;
  }
  if (time_us != nullptr) *time_us = timing_.erase_block_us;
  return Status::Ok();
}

bool FlashChip::IsBadBlock(uint32_t block) const {
  UFLIP_DCHECK(block < geometry_.blocks);
  return bad_[block] != 0;
}

uint64_t FlashChip::EraseCount(uint32_t block) const {
  UFLIP_DCHECK(block < geometry_.blocks);
  return erase_count_[block];
}

uint32_t FlashChip::ProgrammedPages(uint32_t block) const {
  UFLIP_DCHECK(block < geometry_.blocks);
  return write_point_[block];
}

}  // namespace uflip
