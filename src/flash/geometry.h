// NAND flash geometry and timing parameters (Section 2.1 of the paper).
// Flash pages hold 2KB of data plus a 64B spare area; erase happens at
// flash-block granularity (typically 64 pages); programming within a block
// must proceed in page order; MLC chips are slower and wear out sooner.
#ifndef UFLIP_FLASH_GEOMETRY_H_
#define UFLIP_FLASH_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace uflip {

/// Single-level vs multi-level cells (Section 2.1).
enum class CellType { kSlc, kMlc };

const char* CellTypeName(CellType t);

/// Physical layout of one flash chip.
struct FlashGeometry {
  /// Data bytes per flash page (paper: typically 2KB).
  uint32_t page_data_bytes = 2048;
  /// Spare bytes per page for ECC + bookkeeping (paper: 64B).
  uint32_t page_spare_bytes = 64;
  /// Pages per erase block (paper: typically 64).
  uint32_t pages_per_block = 64;
  /// Erase blocks on this chip.
  uint32_t blocks = 4096;
  /// Planes per chip (even/odd block split, Section 2.1).
  uint32_t planes = 2;

  uint64_t block_bytes() const {
    return static_cast<uint64_t>(page_data_bytes) * pages_per_block;
  }
  uint64_t capacity_bytes() const { return block_bytes() * blocks; }
  uint64_t total_pages() const {
    return static_cast<uint64_t>(pages_per_block) * blocks;
  }

  /// Validates internal consistency (non-zero sizes, power-of-two pages).
  [[nodiscard]] Status Validate() const;

  std::string ToString() const;
};

/// Operation latencies of one flash chip. Defaults are typical SLC values;
/// Mlc() returns typical MLC values (paper: MLC slower, 10^5 erases vs
/// 10^6 for SLC).
struct FlashTiming {
  /// Cell-array read of one page into the chip register.
  double read_page_us = 25.0;
  /// Program one page from the register.
  double program_page_us = 200.0;
  /// Erase one block.
  double erase_block_us = 1500.0;
  /// Transfer of one page between chip register and controller.
  double page_transfer_us = 40.0;
  /// Maximum erase cycles per block before the block goes bad.
  uint64_t erase_limit = 1000000;  // SLC: 10^6

  static FlashTiming Slc();
  static FlashTiming Mlc();
  static FlashTiming ForCell(CellType t) {
    return t == CellType::kSlc ? Slc() : Mlc();
  }
};

}  // namespace uflip

#endif  // UFLIP_FLASH_GEOMETRY_H_
