// Multi-channel flash array: the set of flash chips inside a device,
// striped across independent channels. The block manager can overlap
// operations on different channels (Section 2.1: "the block manager
// should leverage these forms of parallelism"), so batched operations
// cost their per-channel makespan, not the serial sum.
//
// Global erase-block b lives on channel (b % channels); this block-index
// striping is what makes large-stride write patterns collapse onto a
// single channel (the paper's "large Incr" penalty, Table 3 last column).
#ifndef UFLIP_FLASH_ARRAY_H_
#define UFLIP_FLASH_ARRAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/flash/chip.h"
#include "src/flash/geometry.h"
#include "src/util/status.h"

namespace uflip {

/// Page address in the array's flat block space.
struct GlobalPage {
  uint64_t block = 0;
  uint32_t page = 0;

  bool operator==(const GlobalPage&) const = default;
};

/// One page-program request.
struct PageWrite {
  GlobalPage addr;
  uint64_t token = 0;
};

struct ArrayConfig {
  FlashGeometry chip_geometry;
  FlashTiming timing;
  /// Independent channels; chips on different channels operate in
  /// parallel.
  uint32_t channels = 1;
};

/// The physical back-end every FTL drives.
class FlashArray {
 public:
  explicit FlashArray(const ArrayConfig& config);

  uint32_t channels() const { return config_.channels; }
  uint32_t pages_per_block() const {
    return config_.chip_geometry.pages_per_block;
  }
  uint32_t page_data_bytes() const {
    return config_.chip_geometry.page_data_bytes;
  }
  uint64_t total_blocks() const { return total_blocks_; }
  uint64_t total_pages() const {
    return total_blocks_ * pages_per_block();
  }
  uint64_t capacity_bytes() const {
    return total_blocks_ * config_.chip_geometry.block_bytes();
  }
  const FlashTiming& timing() const { return config_.timing; }

  uint32_t ChannelOf(uint64_t block) const {
    return static_cast<uint32_t>(block % config_.channels);
  }

  /// Batched page reads; *time_us is the makespan across channels.
  /// tokens (optional) receives one token per requested page.
  [[nodiscard]] Status ReadPages(const std::vector<GlobalPage>& pages,
                   std::vector<uint64_t>* tokens, double* time_us);

  /// Batched page programs; *time_us is the makespan across channels.
  [[nodiscard]] Status ProgramPages(const std::vector<PageWrite>& writes, double* time_us);

  /// Batched block erases; *time_us is the makespan across channels.
  [[nodiscard]] Status EraseBlocks(const std::vector<uint64_t>& blocks, double* time_us);

  /// Single-op conveniences (serial cost).
  [[nodiscard]] Status ReadPage(GlobalPage p, uint64_t* token, double* time_us);
  [[nodiscard]] Status ProgramPage(GlobalPage p, uint64_t token, double* time_us);
  [[nodiscard]] Status EraseBlock(uint64_t block, double* time_us);

  /// Number of pages programmed so far in a block.
  uint32_t ProgrammedPages(uint64_t block) const;
  uint64_t EraseCount(uint64_t block) const;
  bool IsBadBlock(uint64_t block) const;

  /// Aggregated chip statistics across the array.
  ChipStats AggregateStats() const;

  /// Cumulative chip-to-controller transfer time across all chips (see
  /// FlashChip::TransferUsTotal). Monotone; the device model diffs it
  /// around FTL calls for the bus-contention model.
  double TransferUsTotal() const;

 private:
  PageAddr LocalAddr(GlobalPage p, uint32_t* channel) const;

  ArrayConfig config_;
  uint64_t total_blocks_;
  std::vector<std::unique_ptr<FlashChip>> chips_;  // one per channel
  // Scratch per-channel accumulation buffer reused across calls.
  std::vector<double> channel_time_;
};

}  // namespace uflip

#endif  // UFLIP_FLASH_ARRAY_H_
