#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file exported by --trace_out.

Checks the structural invariants the span exporter guarantees
(src/obs/span_trace.cc), so CI catches a malformed export even when
chrome://tracing would silently render garbage:

  * the file is a {"traceEvents": [...]} object;
  * every event has a known phase ("M", "X", "b", "e") and integer,
    non-negative ts/dur where applicable;
  * "X" slices on one (pid, tid) track are sorted and never overlap
    (next.ts >= prev.ts + prev.dur) -- every track models a serialized
    resource;
  * async "b"/"e" events pair up per (cat, id) with e.ts >= b.ts and
    no dangling halves;
  * "M" metadata names every (pid, tid) that carries slices.

Usage: trace_check.py TRACE.json [TRACE2.json ...]; exits non-zero on
the first invalid file. Stdlib only.
"""

import json
import sys


def check(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["not a {'traceEvents': [...]} object"]
    events = doc["traceEvents"]

    named_tracks = set()  # (pid, tid) with thread_name metadata
    named_pids = set()
    slices = {}  # (pid, tid) -> list of (ts, dur, index)
    asyncs = {}  # (cat, id) -> list of (ph, ts, index)

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("M", "X", "b", "e"):
            errors.append("event %d: unknown phase %r" % (i, ph))
            continue
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            elif e.get("name") == "thread_name":
                named_tracks.add((e.get("pid"), e.get("tid")))
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append("event %d: bad ts %r" % (i, ts))
            continue
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append("event %d: bad dur %r" % (i, dur))
                continue
            slices.setdefault((e.get("pid"), e.get("tid")), []).append(
                (ts, dur, i))
        else:
            asyncs.setdefault((e.get("cat"), e.get("id")), []).append(
                (ph, ts, i))

    for (pid, tid), track in sorted(slices.items(), key=str):
        if (pid, tid) not in named_tracks:
            errors.append("track (pid=%r, tid=%r): slices but no "
                          "thread_name metadata" % (pid, tid))
        if pid not in named_pids:
            errors.append("pid %r: slices but no process_name metadata" % pid)
        prev_end, prev_i = None, None
        for ts, dur, i in track:
            if prev_end is not None and ts < prev_end:
                errors.append(
                    "track (pid=%r, tid=%r): event %d (ts=%d) overlaps "
                    "event %d (ends %d)" % (pid, tid, i, ts, prev_i, prev_end))
            prev_end, prev_i = ts + dur, i

    for (cat, eid), halves in sorted(asyncs.items(), key=str):
        begins = [h for h in halves if h[0] == "b"]
        ends = [h for h in halves if h[0] == "e"]
        if len(begins) != len(ends):
            errors.append("async (cat=%r, id=%r): %d 'b' vs %d 'e'" %
                          (cat, eid, len(begins), len(ends)))
            continue
        for (_, bts, bi), (_, ets, ei) in zip(begins, ends):
            if ets < bts:
                errors.append(
                    "async (cat=%r, id=%r): 'e' at event %d (ts=%d) before "
                    "'b' at event %d (ts=%d)" % (cat, eid, ei, ets, bi, bts))

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        errors = check(path)
        if errors:
            for msg in errors:
                print("%s: %s" % (path, msg), file=sys.stderr)
            return 1
        print("%s: OK" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
