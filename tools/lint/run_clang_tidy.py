#!/usr/bin/env python3
"""Runs clang-tidy (profile: .clang-tidy at the repo root) over the
tree using an exported compilation database.

The root CMakeLists always sets CMAKE_EXPORT_COMPILE_COMMANDS, so any
configured build directory works:

  cmake -B build -S .
  tools/lint/run_clang_tidy.py --build-dir build

Frontends under bench/, tests/ and examples/ get concurrency-mt-unsafe
relaxed (they legitimately call std::exit); library code under src/
runs the full profile because it executes on parallel-exec workers.

Exit status: 0 clean, 1 findings, 2 setup error. Without clang-tidy on
PATH the script exits 0 with a notice (or 2 under --require, which CI
uses so the gate can never silently skip).
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
LINT_DIRS = ("src", "bench", "tests", "examples")
# Full-profile directories; everything else relaxes mt-unsafe.
STRICT_DIRS = ("src",)


def find_clang_tidy():
    candidates = ["clang-tidy"] + [
        f"clang-tidy-{v}" for v in range(21, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def database_files(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_clang_tidy: {db_path} not found; configure first "
              "(cmake -B build -S .)", file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        db = json.load(f)
    files = set()
    for entry in db:
        path = os.path.abspath(os.path.join(entry["directory"],
                                            entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.startswith(".."):
            continue  # third-party (gtest, benchmark) compilations
        if rel.split(os.sep, 1)[0] in LINT_DIRS:
            files.add(rel)
    return sorted(files)


def main():
    ap = argparse.ArgumentParser(prog="run_clang_tidy.py")
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 2) when clang-tidy is not installed")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 4)
    ap.add_argument("files", nargs="*",
                    help="restrict to these files (default: every "
                         "first-party file in the compilation database)")
    args = ap.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        msg = "run_clang_tidy: clang-tidy not found on PATH"
        if args.require:
            print(msg, file=sys.stderr)
            sys.exit(2)
        print(msg + "; skipping (CI runs it with --require)",
              file=sys.stderr)
        sys.exit(0)

    files = database_files(args.build_dir)
    if args.files:
        wanted = {os.path.relpath(os.path.abspath(f), REPO_ROOT)
                  for f in args.files}
        files = [f for f in files if f in wanted]
    if not files:
        print("run_clang_tidy: no files to check", file=sys.stderr)
        sys.exit(0)

    def run_one(rel):
        cmd = [tidy, "-p", args.build_dir, "--quiet"]
        if rel.split(os.sep, 1)[0] not in STRICT_DIRS:
            cmd.append("--checks=-concurrency-mt-unsafe")
        cmd.append(os.path.join(REPO_ROOT, rel))
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=REPO_ROOT)
        # clang-tidy prints "N warnings generated" chatter on stderr;
        # findings land on stdout.
        return rel, proc.returncode, proc.stdout.strip()

    failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for rel, rc, out in pool.map(run_one, files):
            if rc != 0 or out:
                failures.append((rel, out))
                if out:
                    print(out)

    print(f"run_clang_tidy: {len(files)} files, "
          f"{len(failures)} with findings", file=sys.stderr)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
