// External-sort run generation: the scenario the paper uses to motivate
// the Partitioning micro-benchmark ("a merge operation of several
// buckets during external sort", Section 3.2). A sort writes runs into
// B buckets round-robin -- exactly the partitioned sequential-write
// pattern. This example sweeps the number of buckets on two devices and
// shows where throughput collapses (design hint 5: limit sequential
// writes to a few partitions).
//
//   ./external_sort [device-id] [data-mb]
#include <cstdio>
#include <string>

#include "src/core/methodology.h"
#include "src/device/profiles.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/util/units.h"

using namespace uflip;

int main(int argc, char** argv) {
  std::string id = argc > 1 ? argv[1] : "kingston-dti";
  uint64_t data_mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;

  auto profile = ProfileById(id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
    return 1;
  }
  auto device = CreateSimDevice(*profile);
  if (!device.ok()) return 1;
  if (!EnforceRandomState(device->get()).ok()) return 1;

  const uint32_t io_size = 32 * 1024;
  const uint64_t data_bytes = data_mb << 20;
  const uint32_t ios = static_cast<uint32_t>(data_bytes / io_size);
  uint64_t target = (*device)->capacity_bytes() / 2;

  std::printf(
      "External sort run generation on %s: writing %lluMB into B buckets "
      "(32KB IOs)\n\n",
      id.c_str(), static_cast<unsigned long long>(data_mb));
  std::printf("%8s %14s %14s %16s\n", "buckets", "mean rt (ms)",
              "total (s)", "throughput MB/s");

  double best_mbs = 0;
  uint32_t best_b = 1;
  for (uint32_t buckets = 1; buckets <= 64; buckets *= 2) {
    (*device)->virtual_clock()->SleepUs(3000000);
    PatternSpec spec = PatternSpec::SequentialWrite(io_size, 0, target);
    spec.lba = LbaFunction::kPartitioned;
    spec.partitions = buckets;
    spec.io_count = ios;
    spec.io_ignore = ios / 8;
    auto run = ExecuteRun(device->get(), spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    RunStats stats = run->Stats();
    double total_s =
        stats.sum_us / 1e6 * ios / static_cast<double>(stats.count);
    double mbs = static_cast<double>(data_mb) / total_s;
    std::printf("%8u %14.2f %14.1f %16.1f\n", buckets,
                stats.mean_us / 1000.0, total_s, mbs);
    if (mbs > best_mbs) {
      best_mbs = mbs;
      best_b = buckets;
    }
  }
  std::printf(
      "\nBest throughput at %u bucket(s). Beyond the device's log-block "
      "pool the\npartitioned pattern degrades towards random-write cost "
      "(design hint 5:\n4-8 partitions are acceptable, more are not).\n",
      best_b);
  return 0;
}
