// Device advisor: characterizes a flash device with the uFLIP key
// indicators (Table 3) and prints concrete configuration advice for a
// storage engine -- page size, alignment, write-zone sizing, partition
// budget -- derived from the measured behaviour, plus the seven design
// hints with evidence.
//
//   ./device_advisor [device-id]
#include <cstdio>
#include <string>

#include "src/core/hints.h"
#include "src/core/methodology.h"
#include "src/core/table3.h"
#include "src/device/profiles.h"
#include "src/util/units.h"

using namespace uflip;

int main(int argc, char** argv) {
  std::string id = argc > 1 ? argv[1] : "samsung";

  auto profile = ProfileById(id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
    return 1;
  }
  auto device = CreateSimDevice(*profile);
  if (!device.ok()) return 1;
  std::printf("characterizing %s (%s)...\n", profile->model.c_str(),
              FtlKindName(profile->ftl));
  if (!EnforceRandomState(device->get()).ok()) return 1;
  (*device)->virtual_clock()->SleepUs(5000000);

  Table3Config cfg;
  cfg.io_count = 256;
  auto row = ExtractTable3Row(device->get(), cfg);
  if (!row.ok()) {
    std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
    return 1;
  }

  std::printf("\nKey characteristics (32KB IOs):\n");
  std::printf("  SR %.1fms  RR %.1fms  SW %.1fms  RW %.1fms\n", row->sr_ms,
              row->rr_ms, row->sw_ms, row->rw_ms);
  if (row->rw_pause_ms >= 0) {
    std::printf("  pauses of ~%.1fms absorb random-write cost\n",
                row->rw_pause_ms);
  }
  if (row->locality_mb > 0) {
    std::printf("  random-write locality area: %.0fMB (%s vs SW)\n",
                row->locality_mb,
                Table3Row::FormatFactor(row->locality_factor).c_str());
  } else {
    std::printf("  no random-write locality benefit\n");
  }
  std::printf("  concurrent sequential partitions: %u (%s vs SW)\n",
              row->partitions,
              Table3Row::FormatFactor(row->partition_factor).c_str());

  std::printf("\nStorage-engine advice for this device:\n");
  std::printf("  * block/page size: 32KB writes, batched reads\n");
  if (row->locality_mb > 0) {
    std::printf(
        "  * confine update-in-place structures (hot pages, maps) to a "
        "%.0fMB zone\n",
        row->locality_mb);
  } else {
    std::printf(
        "  * avoid random writes entirely: log-structure every update\n");
  }
  std::printf("  * use at most %u append streams (sort buckets, WAL "
              "segments, column files)\n",
              row->partitions > 0 ? row->partitions : 1);
  if (row->inplace_factor > 2.0) {
    std::printf("  * never rewrite a block in place (x%.0f penalty)\n",
                row->inplace_factor);
  }
  double rw_ratio = row->rw_ms / row->sw_ms;
  std::printf("  * random writes cost x%.0f sequential writes: batch and "
              "defragment\n",
              rw_ratio);

  MicroBenchConfig mcfg;
  mcfg.io_count = 192;
  mcfg.target_size = (*device)->capacity_bytes() / 4;
  auto report = EvaluateHints(device->get(), *row, mcfg);
  if (report.ok()) {
    std::printf("\n%s", report->Render().c_str());
  }
  return 0;
}
