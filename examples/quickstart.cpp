// Quickstart: create a simulated flash device, enforce the benchmark's
// initial state, run the four baseline patterns and print their
// statistics -- the minimal end-to-end use of the uFLIP library.
//
//   ./quickstart [device-id]        (default: mtron; see table2_devices)
#include <cstdio>
#include <string>

#include "src/core/methodology.h"
#include "src/device/profiles.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/util/units.h"

using namespace uflip;

int main(int argc, char** argv) {
  std::string id = argc > 1 ? argv[1] : "mtron";

  // 1. Instantiate a device from one of the eleven Table 2 profiles.
  auto profile = ProfileById(id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
    return 1;
  }
  auto device = CreateSimDevice(*profile);
  if (!device.ok()) {
    std::fprintf(stderr, "%s\n", device.status().ToString().c_str());
    return 1;
  }
  std::printf("device: %s (%s, %s simulated)\n", profile->model.c_str(),
              FtlKindName(profile->ftl),
              FormatSize((*device)->capacity_bytes()).c_str());

  // 2. Enforce a well-defined initial state (Section 4.1): random writes
  //    of random size over the whole device.
  auto report = EnforceRandomState(device->get());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("state enforced: %llu IOs (%.1f simulated seconds)\n\n",
              static_cast<unsigned long long>(report->ios),
              report->duration_us / 1e6);

  // 3. Run the four baseline patterns at the paper's reference 32KB IO
  //    size and print min/mean/max response times.
  for (const char* name : {"SR", "RR", "SW", "RW"}) {
    // Let deferred work drain between runs (Section 4.3).
    (*device)->virtual_clock()->SleepUs(2000000);
    auto spec = PatternSpec::Baseline(name, 32 * 1024, 0,
                                      (*device)->capacity_bytes());
    spec->io_count = 512;
    spec->io_ignore = 128;  // skip the start-up phase (Section 4.2)
    auto run = ExecuteRun(device->get(), *spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    RunStats stats = run->Stats();
    std::printf("%s: %s\n", name, stats.ToString().c_str());
  }
  std::printf(
      "\nExpect: SR ~ RR ~ SW fast; RW much slower (the flash translation "
      "layer pays\nmerges/erases for scattered writes). Try "
      "'./quickstart kingston-dti' for a USB stick\nwhere RW is two orders "
      "of magnitude slower.\n");
  return 0;
}
