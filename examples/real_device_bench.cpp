// Real-hardware measurement path: runs the uFLIP baseline patterns
// against a file or raw block device using direct, synchronous IO --
// exactly the discipline the paper prescribes (Section 4.3). Point it
// at /dev/sdX (as root) to benchmark a physical flash device, or at a
// scratch file for a demonstration.
//
//   ./real_device_bench <path> [size-mb] [io-count]
//
// WARNING: write patterns overwrite the target. Never point this at a
// device or file with data you care about.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/device/file_device.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/util/units.h"

using namespace uflip;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <path> [size-mb] [io-count]\n"
                 "  e.g.  %s /tmp/uflip_scratch.bin 64 256\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string path = argv[1];
  uint64_t size_mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  uint32_t io_count =
      argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 256;

  FileDeviceOptions opts;
  opts.create_size_bytes = size_mb << 20;
  auto device = FileDevice::Open(path, opts);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 device.status().ToString().c_str());
    return 1;
  }
  std::printf("target: %s (%s, %s)\n", path.c_str(),
              FormatSize((*device)->capacity_bytes()).c_str(),
              (*device)->using_direct_io() ? "O_DIRECT" : "O_SYNC fallback");

  for (const char* name : {"SR", "RR", "SW", "RW"}) {
    auto spec = PatternSpec::Baseline(name, 32 * 1024, 0,
                                      (*device)->capacity_bytes());
    spec->io_count = io_count;
    spec->io_ignore = io_count / 8;
    auto run = ExecuteRun(device->get(), *spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   run.status().ToString().c_str());
      return 1;
    }
    RunStats stats = run->Stats();
    std::printf("%s (32KB): %s\n", name, stats.ToString().c_str());
  }
  std::printf(
      "\nNote: on a file-backed target these numbers measure your disk / "
      "filesystem,\nnot a flash FTL. Run against a raw flash block device "
      "for uFLIP semantics,\nafter enforcing the random initial state "
      "(see bench/mb_device_state).\n");
  return 0;
}
