// Real-hardware measurement path: runs the uFLIP baseline patterns
// against a file or raw block device using direct, synchronous IO --
// exactly the discipline the paper prescribes (Section 4.3). Point it
// at /dev/sdX (as root) to benchmark a physical flash device, or at a
// scratch file for a demonstration.
//
//   ./real_device_bench <path> [size-mb] [io-count]
//   ./real_device_bench record <path> <trace-out> [size-mb] [io-count]
//
// The `record` verb additionally captures every IO (submission time,
// offset, size, mode, measured response time) through a
// RecordingDevice streaming into a TraceWriter, so a real-hardware
// session becomes a replayable trace: `trace-out` may be .csv, .utr or
// either with a ".gz" suffix (gzip-framed as it streams). Replay it on
// any simulated profile with `trace_tool replay` or sweep it across
// the design space with `ftl_compare`.
//
// WARNING: write patterns overwrite the target. Never point this at a
// device or file with data you care about.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/device/file_device.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/trace/recording_device.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"

using namespace uflip;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <path> [size-mb] [io-count]\n"
               "       %s record <path> <trace-out> [size-mb] [io-count]\n"
               "  e.g.  %s /tmp/uflip_scratch.bin 64 256\n"
               "        %s record /tmp/uflip_scratch.bin run.csv.gz 64 256\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

/// Runs the four baseline patterns on `device`, printing per-pattern
/// running statistics; returns false on the first failure.
bool RunBaselines(BlockDevice* device, uint32_t io_count) {
  for (const char* name : {"SR", "RR", "SW", "RW"}) {
    auto spec = PatternSpec::Baseline(name, 32 * 1024, 0,
                                      device->capacity_bytes());
    spec->io_count = io_count;
    spec->io_ignore = io_count / 8;
    auto run = ExecuteRun(device, *spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   run.status().ToString().c_str());
      return false;
    }
    RunStats stats = run->Stats();
    std::printf("%s (32KB): %s\n", name, stats.ToString().c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);

  bool record = std::string(argv[1]) == "record";
  int base = record ? 2 : 1;
  if (record && argc < 4) return Usage(argv[0]);
  if (argc < base + 1) return Usage(argv[0]);

  std::string path = argv[base];
  std::string trace_out = record ? argv[3] : "";
  int size_arg = record ? 4 : 2;
  // Positional counts are validated like the bench flags: a negative
  // value must not wrap around to ~4.29e9 IOs against real hardware.
  auto parse_count = [&](const char* what, const char* value,
                         long long max) -> long long {
    char* end = nullptr;
    long long v = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || v < 0 || v > max) {
      std::fprintf(stderr, "%s '%s': must be a number in [0, %lld]\n", what,
                   value, max);
      std::exit(2);
    }
    return v;
  };
  uint64_t size_mb =
      argc > size_arg
          ? static_cast<uint64_t>(
                parse_count("size-mb", argv[size_arg], 1 << 24))
          : 64;
  uint32_t io_count =
      argc > size_arg + 1
          ? static_cast<uint32_t>(parse_count("io-count",
                                              argv[size_arg + 1],
                                              UINT32_MAX))
          : 256;

  FileDeviceOptions opts;
  opts.create_size_bytes = size_mb << 20;
  auto device = FileDevice::Open(path, opts);
  if (!device.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 device.status().ToString().c_str());
    return 1;
  }
  std::printf("target: %s (%s, %s)\n", path.c_str(),
              FormatSize((*device)->capacity_bytes()).c_str(),
              (*device)->using_direct_io() ? "O_DIRECT" : "O_SYNC fallback");

  if (record) {
    RecordingDevice rec(device->get());
    // Stream each event to disk the moment its response time is known;
    // a ".gz" path gzip-frames the capture as it streams.
    Status s = rec.StreamTo(trace_out, FormatForPath(trace_out));
    if (!s.ok()) {
      std::fprintf(stderr, "trace open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    bool ok = RunBaselines(&rec, io_count);
    Status fin = rec.Finish();
    if (!fin.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   fin.ToString().c_str());
      return 1;
    }
    if (!ok) return 1;
    std::printf(
        "\nrecorded %llu IOs -> %s\nreplay with: trace_tool replay "
        "--trace=%s --device=mtron --rescale_lba=true\n",
        static_cast<unsigned long long>(rec.events_captured()),
        trace_out.c_str(), trace_out.c_str());
  } else {
    if (!RunBaselines(device->get(), io_count)) return 1;
  }
  std::printf(
      "\nNote: on a file-backed target these numbers measure your disk / "
      "filesystem,\nnot a flash FTL. Run against a raw flash block device "
      "for uFLIP semantics,\nafter enforcing the random initial state "
      "(see bench/mb_device_state).\n");
  return 0;
}
