// Trace tool: record, replay and generate IO workload traces.
//
//   trace_tool record   --device=mtron --out=sweep.csv[.gz]
//                       [--mb=granularity | --pattern=SR|RR|SW|RW]
//                       [--io_size=32768] [--io_count=512] [--io_ignore=64]
//                       [--format=csv|bin|csv.gz|bin.gz] [--stream=true]
//   trace_tool replay   --trace=sweep.csv[.gz] --device=memoright
//                       [--timing=closed|original|scaled] [--scale=1.0]
//                       [--rescale_lba=true] [--io_ignore=N]
//                       [--queue_depth=8] [--channels=4]
//                       [--controller_us=50] [--pipelined=false]
//                       [--stream-replay] [--metrics_out=m.json]
//                       [--trace_out=t.json] [--span_head=4096]
//                       [--span_tail=64]
//                       [--reps=5] [--jobs=N] [--calendar_shards=N]
//   trace_tool analyze  --trace=sweep.csv[.gz] | --kind=zipfian|oltp|...
//                       [--top=10] [--hot_block=32768] [--width=72]
//   trace_tool generate --kind=zipfian|oltp|multistream --out=synth.csv
//                       [--capacity_mb=64] [--io_size=4096] [--io_count=4096]
//                       [--theta=0.99] [--write_fraction=0.5]
//                       [--read_only_fraction=0.5] [--streams=4]
//                       [--gap_us=0] [--seed=1] [--format=csv|bin|...]
//
// A trace recorded on one device profile replays unchanged on any
// other; --rescale_lba fits a trace recorded on a larger device onto a
// smaller one. --queue_depth > 0 replays open-loop through the async
// multi-queue device API (queued IOs overlap across flash channels;
// --channels re-stripes the profile's array; --controller_us /
// --pipelined=false switch on the bounded-controller model, which
// serializes each IO's controller stage before its flash stage
// overlaps); --io_ignore defaults to
// phase-derived (AnalyzePhases) when not passed. --stream captures
// through a TraceWriter incrementally instead of buffering the trace.
//
// Everything streams: a ".gz" path (or --format=csv.gz|bin.gz)
// gzip-frames traces on the way out and is sniffed transparently on the
// way in; generate pipes the generator straight into the writer; and
// --stream-replay pulls events off disk as they are submitted and
// accumulates statistics online, so replaying a multi-GB trace holds
// O(1) memory (it therefore needs an explicit --io_ignore; default 0).
// Streamed percentiles are sketch-backed (mergeable t-digest, bounded
// rank error) with the legacy log-histogram estimates printed alongside
// as a cross-check; divergence beyond RunStats::kDivergenceThreshold is
// flagged, and samples the histogram clamps into its edge buckets are
// counted explicitly.
//
// `analyze` characterizes a workload without running it: one streaming
// pass over any EventSource -- a trace file or a synthetic generator --
// produces the arrival-rate curve, the read/write mix over time and the
// top-N hottest LBA regions. `replay --metrics_out=m.json` writes a run
// manifest (flags, seed, git, events/sec, full metric snapshot) for the
// replay, same schema as ftl_compare's. `replay --trace_out=t.json`
// exports a per-IO Chrome trace (trace_event JSON, open in Perfetto /
// chrome://tracing) of the replay -- rep 1 under --reps -- with
// --span_head / --span_tail controlling the first-N capture and the
// slowest-K tail reservoir (see src/obs/span_trace.h).
//
// `replay --reps=N` replays the identical trace on N independently-
// prepared devices (prep seed offset r per rep) fanned across --jobs
// worker threads (default hardware concurrency), pooling the reps
// through ReplicateSet into mean +/- 95% CI and merged-sketch
// percentiles; the output is byte-identical for every --jobs value.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/core/microbench.h"
#include "src/device/async_sim_device.h"
#include "src/obs/metric_registry.h"
#include "src/obs/run_manifest.h"
#include "src/obs/span_trace.h"
#include "src/obs/time_series.h"
#include "src/report/ascii_chart.h"
#include "src/run/parallel_exec.h"
#include "src/run/trace_run.h"
#include "src/trace/recording_device.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"

namespace uflip {
namespace bench {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_tool record|replay|analyze|generate [--flags]\n"
               "  (see the header of bench/trace_tool.cc)\n");
  return 2;
}

/// Builds a RunManifest from the raw command line ("--k=v" -> (k, v),
/// bare "--k" -> (k, "true"); the verb and non-flag args are skipped).
RunManifest ManifestFromFlags(const Flags& flags, const std::string& tool) {
  RunManifest manifest;
  manifest.tool = tool;
  for (const std::string& arg : flags.args()) {
    if (arg.rfind("--", 0) != 0) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      manifest.AddFlag(arg.substr(2), "true");
    } else {
      manifest.AddFlag(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
  }
  return manifest;
}

/// `replay --trace_out=`: writes `spans` as Chrome trace_event JSON to
/// `path` ("-" = stdout) and prints the one-line summary. Returns false
/// on I/O failure.
bool ExportChromeTrace(const SpanSnapshot& spans, const std::string& path,
                       const std::string& label, bool serialized_controller) {
  ChromeTraceOptions topt;
  topt.process_name = label;
  topt.serialized_controller = serialized_controller;
  if (!WriteChromeTrace(spans, path, topt)) {
    std::fprintf(stderr, "cannot write --trace_out=%s\n", path.c_str());
    return false;
  }
  if (path != "-") {
    std::printf("span trace: %s (%llu spans recorded; captured first %zu + "
                "slowest %zu)\n",
                path.c_str(), static_cast<unsigned long long>(spans.recorded),
                spans.head.size(), spans.tail.size());
  }
  return true;
}

TraceFormat FormatFromFlags(const Flags& flags, const std::string& out) {
  std::string f = flags.GetString("format", "");
  if (f == "csv" || f == "csv.gz") return TraceFormat::kCsv;
  if (f == "bin" || f == "binary" || f == "bin.gz") return TraceFormat::kBinary;
  return FormatForPath(out);
}

TraceCompression CompressionFromFlags(const Flags& flags,
                                      const std::string& out) {
  std::string f = flags.GetString("format", "");
  if (f == "csv.gz" || f == "bin.gz") return TraceCompression::kGzip;
  return CompressionForPath(out);
}

const char* FramingName(TraceFormat format, TraceCompression compression) {
  if (compression == TraceCompression::kGzip) {
    return format == TraceFormat::kCsv ? "csv+gzip" : "binary+gzip";
  }
  return TraceFormatName(format);
}

void PrintStats(const RunResult& run, const std::string& title) {
  RunStats running = run.Stats();
  RunStats all = run.StatsIncludingStartup();
  std::printf("%s\n", title.c_str());
  std::printf("  %-16s %8s %10s %10s %10s %10s %10s\n", "phase", "IOs",
              "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms");
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              "running", static_cast<unsigned long long>(running.count),
              UsToMs(running.mean_us), UsToMs(running.p50_us),
              UsToMs(running.p95_us), UsToMs(running.p99_us),
              UsToMs(running.max_us));
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              "incl. start-up", static_cast<unsigned long long>(all.count),
              UsToMs(all.mean_us), UsToMs(all.p50_us), UsToMs(all.p95_us),
              UsToMs(all.p99_us), UsToMs(all.max_us));
  // Streamed runs: percentiles above come from the t-digest sketch;
  // show the log-histogram estimates alongside as an independent
  // cross-check, with the under/overflow the histogram clamped and a
  // loud flag when the two estimators disagree beyond the threshold.
  if (running.hist_check.has_value()) {
    const RunStats::HistogramCheck& hc = *running.hist_check;
    std::printf("  %-16s %8s %10s %10.3f %10.3f %10.3f %10s\n",
                "  (histogram)", "", "", UsToMs(hc.p50_us),
                UsToMs(hc.p95_us), UsToMs(hc.p99_us), "");
    std::printf(
        "  percentiles: t-digest sketch (rank error <= %.2f%%); "
        "histogram cross-check divergence %.2f%%",
        100 * running.sketch->RankErrorBound(), 100 * hc.divergence);
    if (hc.divergent) {
      std::printf("  ** DIVERGENT (>%.0f%%) -- estimators disagree",
                  100 * RunStats::kDivergenceThreshold);
    }
    std::printf("\n");
    if (hc.underflow > 0 || hc.overflow > 0) {
      std::printf(
          "  histogram clamped %llu underflow / %llu overflow "
          "sample(s) (excluded from the cross-check; sketch and "
          "moments still cover them)\n",
          static_cast<unsigned long long>(hc.underflow),
          static_cast<unsigned long long>(hc.overflow));
    }
  }
}

StatusOr<MicroBench> MicroBenchByName(const std::string& name) {
  for (MicroBench mb : AllMicroBenches()) {
    std::string n = MicroBenchName(mb);
    for (char& c : n) c = static_cast<char>(std::tolower(c));
    if (n == name) return mb;
  }
  return Status::NotFound("unknown micro-benchmark '" + name + "'");
}

int Record(const Flags& flags) {
  std::string id = flags.GetString("device", "mtron");
  std::string out = flags.GetString("out", "trace.csv");
  bool stream = flags.GetBool("stream", false);
  TraceFormat format = FormatFromFlags(flags, out);
  TraceCompression compression = CompressionFromFlags(flags, out);
  auto dev = MakeDeviceWithState(id);
  InterRunPause(dev.get());

  // Wrap after preparation so the trace holds only the workload.
  RecordingDevice rec(dev.get());
  if (stream) {
    Status s = rec.StreamTo(out, format, compression);
    if (!s.ok()) {
      std::fprintf(stderr, "streaming capture failed to open: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  std::string mb_name = flags.GetString("mb", "");
  if (!mb_name.empty()) {
    auto mb = MicroBenchByName(mb_name);
    if (!mb.ok()) {
      std::fprintf(stderr, "%s\n", mb.status().ToString().c_str());
      return 2;
    }
    MicroBenchConfig cfg;
    cfg.io_size = flags.GetUint32("io_size", 32 * 1024);
    cfg.io_count = flags.GetUint32("io_count", 256);
    cfg.io_ignore = flags.GetUint32("io_ignore", 64);
    cfg.target_size = dev->capacity_bytes() / 2;
    auto exps = RunMicroBench(&rec, *mb, cfg);
    if (!exps.ok()) {
      std::fprintf(stderr, "micro-benchmark failed: %s\n",
                   exps.status().ToString().c_str());
      return 1;
    }
  } else {
    std::string pat = flags.GetString("pattern", "SR");
    auto spec = PatternSpec::Baseline(
        pat, flags.GetUint32("io_size", 32 * 1024), 0,
        dev->capacity_bytes() / 2);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    spec->io_count = flags.GetUint32("io_count", 512);
    spec->io_ignore = flags.GetUint32("io_ignore", 64);
    auto run = ExecuteRun(&rec, *spec);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  if (stream) {
    Status s = rec.Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "streaming capture failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("streamed %llu IOs from %s -> %s [%s]\n",
                static_cast<unsigned long long>(rec.events_captured()),
                dev->name().c_str(), out.c_str(),
                FramingName(format, compression));
    return 0;
  }
  Status s = rec.WriteTo(out, format, compression);
  if (!s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const Trace& t = rec.trace();
  std::printf("recorded %zu IOs (%.3fs of device time) from %s -> %s [%s]\n",
              t.events.size(), t.SpanUs() / 1e6, dev->name().c_str(),
              out.c_str(), FramingName(format, compression));
  return 0;
}

/// --reps=N replicated replay: N independently-prepared devices (prep
/// seed offset r, see bench_util.h "Seed-stream derivation") each
/// replay the identical trace, fanned across --jobs workers
/// (src/run/parallel_exec.h) and folded in rep order on this thread, so
/// the output is byte-identical for every --jobs value. Every rep sees
/// the same events, so the pooled 95% CI covers device-preparation
/// variance only, not workload variability.
int ReplicatedReplay(const Flags& flags, const ReplayOptions& opts,
                     const std::string& path, bool stream_replay,
                     const Trace& trace, const TraceMeta& meta,
                     const DeviceProfile& profile, uint32_t channels,
                     uint32_t queue_depth, uint32_t reps, unsigned jobs,
                     uint32_t calendar_shards,
                     const std::string& metrics_out,
                     const std::string& trace_out,
                     const SpanRecorderConfig& span_config,
                     std::chrono::steady_clock::time_point wall_start) {
  struct RepResult {
    RunStats stats;
    uint64_t makespan_us = 0;
    uint64_t replayed = 0;
    bool has_metrics = false;
    MetricSnapshot metrics;
    bool has_spans = false;
    SpanSnapshot spans;
    std::string device_name;
    uint64_t capacity_bytes = 0;
    uint32_t channels_used = 0;
  };
  bool want_metrics = !metrics_out.empty();
  // Spans feed the Chrome export and the span.* stage aggregates in the
  // manifest, so either output turns the recorder on.
  bool want_spans = !trace_out.empty() || want_metrics;
  auto produced = RunUnits<RepResult>(
      reps, jobs, [&](size_t rep) -> StatusOr<RepResult> {
        RepResult out;
        DeviceProfile p = profile;
        auto dev = MakeDeviceWithState(p, 0, false, channels, rep);
        InterRunPause(dev.get());
        out.capacity_bytes = dev->capacity_bytes();
        // Each rep pulls its own source: a fresh view of the shared
        // materialized trace, or its own reader over the file.
        std::unique_ptr<TraceReader> reader;
        TraceView view(&trace);
        EventSource* source = &view;
        if (stream_replay) {
          auto r = TraceReader::Open(path);
          if (!r.ok()) {
            return Status::IoError("trace open failed: " +
                                   r.status().ToString());
          }
          reader = std::make_unique<TraceReader>(std::move(*r));
          source = reader.get();
        }
        uint64_t start_us = dev->clock()->NowUs();
        StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
        std::unique_ptr<AsyncSimDevice> async;
        MetricRegistry registry;
        SpanRecorder spans(span_config);
        if (queue_depth > 0) {
          async = std::make_unique<AsyncSimDevice>(std::move(dev), queue_depth,
                                                   calendar_shards);
          out.device_name = async->name();
          out.channels_used = async->channels();
          if (want_metrics) async->AttachMetrics(&registry);
          if (want_spans) {
            async->AttachSpans(&spans);
            if (want_metrics) spans.RegisterMetrics(&registry);
          }
          run = ExecuteTraceRun(async.get(), source, opts);
        } else {
          out.device_name = dev->name();
          if (want_metrics) dev->AttachMetrics(&registry);
          if (want_spans) {
            dev->AttachSpans(&spans);
            if (want_metrics) spans.RegisterMetrics(&registry);
          }
          run = ExecuteTraceRun(dev.get(), source, opts);
        }
        if (!run.ok()) {
          return Status::Internal("replay failed (rep " +
                                  std::to_string(rep) +
                                  "): " + run.status().ToString());
        }
        out.makespan_us =
            (async ? async->clock() : dev->clock())->NowUs() - start_us;
        if (want_metrics && run->metrics) {
          out.has_metrics = true;
          out.metrics = std::move(*run->metrics);
        }
        if (want_spans && run->spans) {
          out.has_spans = true;
          out.spans = std::move(*run->spans);
        }
        out.stats = run->Stats();
        out.replayed = run->streamed_stats_all
                           ? run->streamed_stats_all->count
                           : run->samples.size();
        return out;
      });
  if (!produced.ok()) {
    std::fprintf(stderr, "%s\n", produced.status().ToString().c_str());
    return 1;
  }

  // Canonical fold in rep order (deterministic merges only).
  ReplicateSet set;
  MetricSnapshot merged;
  uint64_t total_replayed = 0;
  uint64_t max_makespan_us = 0;
  for (RepResult& r : *produced) {
    set.Add(r.stats.Summary());
    if (r.has_metrics) merged.Merge(r.metrics);
    total_replayed += r.replayed;
    max_makespan_us = std::max(max_makespan_us, r.makespan_us);
  }
  const RepResult& first = (*produced)[0];
  std::printf(
      "replayed %llu IOs (%u reps) of '%s' (recorded on %s) on %s, %s "
      "timing",
      static_cast<unsigned long long>(total_replayed), reps, path.c_str(),
      meta.source.c_str(), first.device_name.c_str(),
      ReplayTimingName(opts.timing));
  if (opts.timing == ReplayTiming::kScaled) {
    std::printf(" (x%.2f)", opts.time_scale);
  }
  if (stream_replay) {
    std::printf(", streamed (O(1) memory, stats-only)");
  }
  if (opts.rescale_lba) {
    std::printf(", LBAs rescaled %s -> %s",
                FormatSize(meta.capacity_bytes).c_str(),
                FormatSize(first.capacity_bytes).c_str());
  }
  if (queue_depth > 0) {
    std::printf(", queue_depth=%u over %u channels", queue_depth,
                first.channels_used);
  }
  std::printf("\n  makespan %.3fs (max over reps); rep r runs on a fresh "
              "device prepared with seed offset r\n\n",
              max_makespan_us / 1e6);

  ReplicateAggregate agg = set.Aggregate();
  std::printf("pooled response-time statistics (running phase, %u reps)\n",
              reps);
  std::printf("  %-16s %8s %10s %10s %10s %10s %10s\n", "", "IOs",
              "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms");
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              "pooled", static_cast<unsigned long long>(agg.count),
              UsToMs(agg.mean), UsToMs(agg.p50), UsToMs(agg.p95),
              UsToMs(agg.p99), UsToMs(agg.max));
  std::printf(
      "  mean %.3f ms +/- %.3f ms (95%% CI across rep means); "
      "percentiles from merged t-digest sketches\n",
      UsToMs(agg.mean), UsToMs(agg.mean_ci95_half));

  // --trace_out exports rep 1's capture: one rep reads as a true
  // per-IO timeline, where a multi-rep merge would overlay devices.
  if (!trace_out.empty()) {
    if (!first.has_spans ||
        !ExportChromeTrace(first.spans, trace_out, first.device_name,
                           profile.controller.SerializedController())) {
      return 1;
    }
  }

  if (!metrics_out.empty()) {
    RunManifest manifest = ManifestFromFlags(flags, "trace_tool replay");
    manifest.jobs = jobs;
    manifest.calendar_shards = calendar_shards;
    manifest.span_trace_enabled = want_spans;
    manifest.span_config = span_config;
    manifest.events = total_replayed;
    manifest.wall_seconds =
        // uflip-lint: allow(wall-clock) -- manifest wall_seconds provenance
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    manifest.sim_makespan_us = max_makespan_us;
    manifest.metrics = merged;
    if (!manifest.WriteTo(metrics_out)) {
      std::fprintf(stderr, "cannot write --metrics_out=%s\n",
                   metrics_out.c_str());
      return 1;
    }
    if (metrics_out != "-") {
      std::printf("run manifest: %s\n", metrics_out.c_str());
    }
  }
  return 0;
}

int Replay(const Flags& flags) {
  std::string path = flags.GetString("trace", "");
  if (path.empty()) return Usage();
  std::string metrics_out = flags.GetString("metrics_out", "");
  std::string trace_out = flags.GetString("trace_out", "");
  SpanRecorderConfig span_config;
  span_config.head_limit = flags.GetUint32("span_head", 4096);
  span_config.tail_k = flags.GetUint32("span_tail", 64);
  // uflip-lint: allow(wall-clock) -- manifest wall_seconds provenance
  auto wall_start = std::chrono::steady_clock::now();
  bool stream_replay = flags.GetBool("stream-replay", false) ||
                       flags.GetBool("stream_replay", false);

  // Validate flags before the (expensive) device preparation.
  ReplayOptions opts;
  std::string timing = flags.GetString("timing", "closed");
  if (timing == "closed") {
    opts.timing = ReplayTiming::kClosedLoop;
  } else if (timing == "original") {
    opts.timing = ReplayTiming::kOriginal;
  } else if (timing == "scaled") {
    opts.timing = ReplayTiming::kScaled;
    opts.time_scale = flags.GetDouble("scale", 1.0);
  } else {
    std::fprintf(stderr, "unknown --timing=%s\n", timing.c_str());
    return 2;
  }
  opts.rescale_lba = flags.GetBool("rescale_lba", false);
  // io_ignore defaults to phase-derived (AnalyzePhases over the replayed
  // response times) when the flag is not passed -- except under
  // --stream-replay, where the series is not retained (default 0).
  int64_t io_ignore = flags.GetInt("io_ignore", -1);
  opts.io_ignore = io_ignore < 0 ? ReplayOptions::kAutoIoIgnore
                                 : static_cast<uint32_t>(io_ignore);
  if (stream_replay) {
    opts.keep_samples = false;
    if (io_ignore < 0) opts.io_ignore = 0;
  }
  uint32_t queue_depth =
      flags.GetUint32("queue_depth", 0);
  uint32_t channels = flags.GetUint32("channels", 0);
  uint32_t reps = flags.GetUint32("reps", 1);
  if (reps == 0) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 2;
  }
  unsigned jobs = JobsFromFlags(flags);
  uint32_t calendar_shards = flags.GetUint32("calendar_shards", 1);
  if (calendar_shards == 0) {
    std::fprintf(stderr, "--calendar_shards must be >= 1\n");
    return 2;
  }

  // Streaming replay pulls events straight off the TraceReader as the
  // device consumes them; the materialized path reads the whole trace
  // up front. Either way the trace's meta is known before replay.
  Trace trace;
  std::unique_ptr<TraceReader> reader;
  EventSource* source = nullptr;
  TraceView view(&trace);
  if (stream_replay) {
    auto r = TraceReader::Open(path);
    if (!r.ok()) {
      std::fprintf(stderr, "trace open failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    reader = std::make_unique<TraceReader>(std::move(*r));
    source = reader.get();
  } else {
    auto t = ReadTrace(path);
    if (!t.ok()) {
      std::fprintf(stderr, "trace read failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*t);
    source = &view;
  }
  TraceMeta meta = source->meta();

  std::string id = flags.GetString("device", "mtron");
  auto profile = ProfileById(id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
    return 2;
  }
  // Bounded-controller knobs: --controller_us adds a serialized
  // controller stage per IO; --pipelined=false serializes the derived
  // controller stage without extra cost (see src/device/sim_device.h).
  double controller_us = flags.GetDouble("controller_us", -1);
  if (controller_us >= 0) profile->controller.controller_us = controller_us;
  profile->controller.pipelined = flags.GetBool("pipelined", true);
  if (reps > 1) {
    return ReplicatedReplay(flags, opts, path, stream_replay, trace, meta,
                            *profile, channels, queue_depth, reps, jobs,
                            calendar_shards, metrics_out, trace_out,
                            span_config, wall_start);
  }
  bool serialized_controller = profile->controller.SerializedController();
  auto dev = MakeDeviceWithState(std::move(*profile), 0, true, channels);
  InterRunPause(dev.get());

  std::string dev_name = dev->name();
  uint64_t replay_start_us = dev->clock()->NowUs();
  uint64_t dev_capacity = dev->capacity_bytes();
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  std::unique_ptr<AsyncSimDevice> async;
  // Attached after preparation so the snapshot covers the replay only;
  // the run layer copies it into run->metrics / run->spans.
  MetricRegistry registry;
  SpanRecorder spans(span_config);
  bool want_spans = !trace_out.empty() || !metrics_out.empty();
  if (queue_depth > 0) {
    // Open-loop replay through the async multi-queue API: up to
    // queue_depth IOs in flight, overlapping across flash channels.
    async = std::make_unique<AsyncSimDevice>(std::move(dev), queue_depth,
                                             calendar_shards);
    dev_name = async->name();
    if (!metrics_out.empty()) async->AttachMetrics(&registry);
    if (want_spans) {
      async->AttachSpans(&spans);
      if (!metrics_out.empty()) spans.RegisterMetrics(&registry);
    }
    run = ExecuteTraceRun(async.get(), source, opts);
  } else {
    if (!metrics_out.empty()) dev->AttachMetrics(&registry);
    if (want_spans) {
      dev->AttachSpans(&spans);
      if (!metrics_out.empty()) spans.RegisterMetrics(&registry);
    }
    run = ExecuteTraceRun(dev.get(), source, opts);
  }
  if (!run.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  uint64_t makespan_us =
      (async ? async->clock() : dev->clock())->NowUs() - replay_start_us;
  uint64_t replayed = run->streamed_stats_all ? run->streamed_stats_all->count
                                              : run->samples.size();
  std::printf("replayed %llu IOs of '%s' (recorded on %s) on %s, %s timing",
              static_cast<unsigned long long>(replayed), path.c_str(),
              meta.source.c_str(), dev_name.c_str(),
              ReplayTimingName(opts.timing));
  if (opts.timing == ReplayTiming::kScaled) {
    std::printf(" (x%.2f)", opts.time_scale);
  }
  if (stream_replay) {
    std::printf(", streamed (O(1) memory, stats-only)");
  }
  if (opts.rescale_lba) {
    std::printf(", LBAs rescaled %s -> %s",
                FormatSize(meta.capacity_bytes).c_str(),
                FormatSize(dev_capacity).c_str());
  }
  if (queue_depth > 0) {
    std::printf(", queue_depth=%u over %u channels", queue_depth,
                async->channels());
  }
  std::printf("\n  makespan %.3fs", makespan_us / 1e6);
  if (opts.io_ignore == ReplayOptions::kAutoIoIgnore) {
    std::printf(", io_ignore=%u (phase-derived)", run->spec.io_ignore);
  }
  std::printf("\n\n");
  PrintStats(*run, "response-time statistics");

  if (!trace_out.empty()) {
    if (!run->spans ||
        !ExportChromeTrace(*run->spans, trace_out, dev_name,
                           serialized_controller)) {
      return 1;
    }
  }

  if (!metrics_out.empty()) {
    RunManifest manifest = ManifestFromFlags(flags, "trace_tool replay");
    manifest.jobs = jobs;
    manifest.calendar_shards = calendar_shards;
    manifest.span_trace_enabled = want_spans;
    manifest.span_config = span_config;
    manifest.events = replayed;
    manifest.wall_seconds =
        // uflip-lint: allow(wall-clock) -- manifest wall_seconds provenance
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    manifest.sim_makespan_us = makespan_us;
    manifest.metrics = run->metrics ? *run->metrics : registry.Snapshot();
    if (!manifest.WriteTo(metrics_out)) {
      std::fprintf(stderr, "cannot write --metrics_out=%s\n",
                   metrics_out.c_str());
      return 1;
    }
    if (metrics_out != "-") {
      std::printf("run manifest: %s\n", metrics_out.c_str());
    }
  }
  return 0;
}

/// Workload characterization without a device: one streaming pass over
/// the EventSource (trace file or --kind synthetic generator) yields
/// the arrival-rate curve (reads/s and writes/s over trace time), the
/// write-mix-over-time strip and the top-N hottest LBA regions.
/// Time-series memory is O(1) via bucket coalescing; the hot-region map
/// holds one entry per distinct --hot_block-sized region touched.
int Analyze(const Flags& flags) {
  std::string path = flags.GetString("trace", "");
  uint32_t top_n = flags.GetUint32("top", 10);
  uint64_t hot_block = flags.GetUint32("hot_block", 32 * 1024);
  int width = static_cast<int>(flags.GetUint32("width", 72));
  if (hot_block == 0 || width <= 0) {
    std::fprintf(stderr, "--hot_block and --width must be > 0\n");
    return 2;
  }

  std::unique_ptr<EventSource> source;
  if (path.empty()) {
    auto synth = SyntheticSourceFromFlags(flags);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return 2;
    }
    source = std::move(*synth);
  } else {
    auto reader = TraceReader::Open(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "trace open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    source = std::make_unique<TraceReader>(std::move(*reader));
  }

  // One pass. The rate series sample at the submit timestamp; the
  // write-mix series records 1 per write and 0 per read, so a window's
  // mean is its write fraction.
  TimeSeries reads_over_time(obs::kTimelineIntervalUs);
  TimeSeries writes_over_time(obs::kTimelineIntervalUs);
  TimeSeries write_mix(obs::kTimelineIntervalUs);
  struct Region {
    uint64_t ios = 0;
    uint64_t writes = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<uint64_t, Region> regions;
  uint64_t events = 0, reads = 0, writes = 0;
  uint64_t read_bytes = 0, write_bytes = 0;
  uint64_t first_us = 0, last_us = 0;
  TraceEvent e;
  while (true) {
    auto more = source->Next(&e);
    if (!more.ok()) {
      std::fprintf(stderr, "source failed: %s\n",
                   more.status().ToString().c_str());
      return 1;
    }
    if (!*more) break;
    bool is_write = e.mode == IoMode::kWrite;
    if (events == 0) first_us = e.submit_us;
    last_us = e.submit_us;
    ++events;
    if (is_write) {
      ++writes;
      write_bytes += e.size;
      writes_over_time.Add(e.submit_us, 1);
    } else {
      ++reads;
      read_bytes += e.size;
      reads_over_time.Add(e.submit_us, 1);
    }
    write_mix.Add(e.submit_us, is_write ? 1.0 : 0.0);
    Region& r = regions[e.offset / hot_block];
    ++r.ios;
    if (is_write) ++r.writes;
    r.bytes += e.size;
  }
  if (events == 0) {
    std::fprintf(stderr, "no events in the source\n");
    return 1;
  }

  const TraceMeta& meta = source->meta();
  uint64_t span_us = last_us - first_us;
  std::printf("workload: %s (%s LBA domain)\n", meta.source.c_str(),
              FormatSize(meta.capacity_bytes).c_str());
  std::printf(
      "  %llu IOs over %.3fs of trace time: %llu reads (%s), "
      "%llu writes (%s), write fraction %.2f\n",
      static_cast<unsigned long long>(events), span_us / 1e6,
      static_cast<unsigned long long>(reads),
      FormatSize(read_bytes).c_str(),
      static_cast<unsigned long long>(writes),
      FormatSize(write_bytes).c_str(),
      static_cast<double>(writes) / static_cast<double>(events));
  if (span_us > 0) {
    std::printf("  mean arrival rate %.0f IOs/s\n",
                static_cast<double>(events) * 1e6 /
                    static_cast<double>(span_us));
  }
  std::printf("\n");

  // Arrival-rate curve: both modes on one chart, events per second per
  // resampled window.
  if (span_us > 0) {
    std::vector<ChartSeries> series;
    for (const auto& [name, ts, glyph] :
         {std::tuple<const char*, const TimeSeries*, char>{
              "reads/s", &reads_over_time, 'r'},
          {"writes/s", &writes_over_time, 'w'}}) {
      if (ts->empty()) continue;
      ChartSeries s;
      s.name = name;
      s.glyph = glyph;
      std::vector<TimeSeries::Window> windows =
          ts->Resample(static_cast<size_t>(width));
      uint64_t ts_span = ts->EndUs() - ts->BucketStartUs(0);
      double window_us =
          static_cast<double>(ts_span) / static_cast<double>(windows.size());
      for (const TimeSeries::Window& w : windows) {
        s.x.push_back(static_cast<double>(w.start_us) / 1e3);
        s.y.push_back(window_us == 0 ? 0 : w.sum * 1e6 / window_us);
      }
      series.push_back(std::move(s));
    }
    if (!series.empty()) {
      ChartOptions chart;
      chart.title = "arrival rate over trace time";
      chart.x_label = "trace ms";
      chart.y_label = "IOs/s";
      chart.width = width;
      chart.height = 12;
      std::printf("%s\n", RenderChart(series, chart).c_str());
    }
  }

  // Write-mix strip: one glyph per window, ' ' = all reads, '@' = all
  // writes (same ramp semantics as the utilization timelines).
  if (reads > 0 && writes > 0) {
    static const char kRamp[] = " .:-=+*#%@";
    std::vector<TimeSeries::Window> windows =
        write_mix.Resample(static_cast<size_t>(width));
    std::string strip;
    for (const TimeSeries::Window& w : windows) {
      double frac =
          w.count == 0 ? 0 : w.sum / static_cast<double>(w.count);
      strip += kRamp[static_cast<int>(std::clamp(frac, 0.0, 1.0) * 9 + 0.5)];
    }
    std::printf("write mix over time (' '=reads '@'=writes):\n  |%s|\n\n",
                strip.c_str());
  }

  // Top-N hottest regions.
  std::vector<std::pair<uint64_t, Region>> hot(regions.begin(),
                                               regions.end());
  size_t keep = std::min<size_t>(top_n, hot.size());
  std::partial_sort(hot.begin(), hot.begin() + keep, hot.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second.ios != b.second.ios) {
                        return a.second.ios > b.second.ios;
                      }
                      return a.first < b.first;  // deterministic ties
                    });
  hot.resize(keep);
  std::printf("top %zu of %zu touched %s regions:\n", keep, regions.size(),
              FormatSize(hot_block).c_str());
  std::printf("  %-14s %10s %8s %8s %10s\n", "region start", "IOs",
              "% IOs", "write%", "bytes");
  for (const auto& [block, r] : hot) {
    std::printf("  %-14s %10llu %7.2f%% %7.1f%% %10s\n",
                FormatSize(block * hot_block).c_str(),
                static_cast<unsigned long long>(r.ios),
                100.0 * static_cast<double>(r.ios) /
                    static_cast<double>(events),
                100.0 * static_cast<double>(r.writes) /
                    static_cast<double>(r.ios),
                FormatSize(r.bytes).c_str());
  }
  return 0;
}

int Generate(const Flags& flags) {
  std::string out = flags.GetString("out", "synth.csv");
  auto source = SyntheticSourceFromFlags(flags);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 2;
  }
  // Generator configs surface their validation errors on the first
  // Next(): pull it before opening (truncating!) the output file, so a
  // bad flag cannot destroy an existing trace.
  TraceEvent first;
  auto has_first = (*source)->Next(&first);
  if (!has_first.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 has_first.status().ToString().c_str());
    return 2;
  }

  // Generator -> writer, event by event: generating a billion-IO trace
  // holds one event in memory.
  TraceFormat format = FormatFromFlags(flags, out);
  TraceCompression compression = CompressionFromFlags(flags, out);
  auto writer =
      TraceWriter::Open(out, format, (*source)->meta(), compression);
  if (!writer.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 writer.status().ToString().c_str());
    return 1;
  }
  TraceEvent e = first;
  bool have_event = *has_first;
  while (have_event) {
    Status s = writer->Append(e);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    auto more = (*source)->Next(&e);
    if (!more.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   more.status().ToString().c_str());
      return 1;
    }
    have_event = *more;
  }
  uint64_t written = writer->events_written();
  Status s = writer->Close();
  if (!s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("generated %llu-IO %s trace over %s -> %s [%s]\n",
              static_cast<unsigned long long>(written),
              (*source)->meta().source.c_str(),
              FormatSize((*source)->meta().capacity_bytes).c_str(),
              out.c_str(), FramingName(format, compression));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  using namespace uflip::bench;
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string verb = argv[1];
  if (verb == "record") return Record(flags);
  if (verb == "replay") return Replay(flags);
  if (verb == "analyze") return Analyze(flags);
  if (verb == "generate") return Generate(flags);
  return Usage();
}
