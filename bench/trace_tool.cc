// Trace tool: record, replay and generate IO workload traces.
//
//   trace_tool record   --device=mtron --out=sweep.csv[.gz]
//                       [--mb=granularity | --pattern=SR|RR|SW|RW]
//                       [--io_size=32768] [--io_count=512] [--io_ignore=64]
//                       [--format=csv|bin|csv.gz|bin.gz] [--stream=true]
//   trace_tool replay   --trace=sweep.csv[.gz] --device=memoright
//                       [--timing=closed|original|scaled] [--scale=1.0]
//                       [--rescale_lba=true] [--io_ignore=N]
//                       [--queue_depth=8] [--channels=4]
//                       [--controller_us=50] [--pipelined=false]
//                       [--stream-replay]
//   trace_tool generate --kind=zipfian|oltp|multistream --out=synth.csv
//                       [--capacity_mb=64] [--io_size=4096] [--io_count=4096]
//                       [--theta=0.99] [--write_fraction=0.5]
//                       [--read_only_fraction=0.5] [--streams=4]
//                       [--gap_us=0] [--seed=1] [--format=csv|bin|...]
//
// A trace recorded on one device profile replays unchanged on any
// other; --rescale_lba fits a trace recorded on a larger device onto a
// smaller one. --queue_depth > 0 replays open-loop through the async
// multi-queue device API (queued IOs overlap across flash channels;
// --channels re-stripes the profile's array; --controller_us /
// --pipelined=false switch on the bounded-controller model, which
// serializes each IO's controller stage before its flash stage
// overlaps); --io_ignore defaults to
// phase-derived (AnalyzePhases) when not passed. --stream captures
// through a TraceWriter incrementally instead of buffering the trace.
//
// Everything streams: a ".gz" path (or --format=csv.gz|bin.gz)
// gzip-frames traces on the way out and is sniffed transparently on the
// way in; generate pipes the generator straight into the writer; and
// --stream-replay pulls events off disk as they are submitted and
// accumulates statistics online, so replaying a multi-GB trace holds
// O(1) memory (it therefore needs an explicit --io_ignore; default 0).
// Streamed percentiles are sketch-backed (mergeable t-digest, bounded
// rank error) with the legacy log-histogram estimates printed alongside
// as a cross-check; divergence beyond RunStats::kDivergenceThreshold is
// flagged, and samples the histogram clamps into its edge buckets are
// counted explicitly.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/core/microbench.h"
#include "src/device/async_sim_device.h"
#include "src/run/trace_run.h"
#include "src/trace/recording_device.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"

namespace uflip {
namespace bench {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_tool record|replay|generate [--flags]\n"
               "  (see the header of bench/trace_tool.cc)\n");
  return 2;
}

TraceFormat FormatFromFlags(const Flags& flags, const std::string& out) {
  std::string f = flags.GetString("format", "");
  if (f == "csv" || f == "csv.gz") return TraceFormat::kCsv;
  if (f == "bin" || f == "binary" || f == "bin.gz") return TraceFormat::kBinary;
  return FormatForPath(out);
}

TraceCompression CompressionFromFlags(const Flags& flags,
                                      const std::string& out) {
  std::string f = flags.GetString("format", "");
  if (f == "csv.gz" || f == "bin.gz") return TraceCompression::kGzip;
  return CompressionForPath(out);
}

const char* FramingName(TraceFormat format, TraceCompression compression) {
  if (compression == TraceCompression::kGzip) {
    return format == TraceFormat::kCsv ? "csv+gzip" : "binary+gzip";
  }
  return TraceFormatName(format);
}

void PrintStats(const RunResult& run, const std::string& title) {
  RunStats running = run.Stats();
  RunStats all = run.StatsIncludingStartup();
  std::printf("%s\n", title.c_str());
  std::printf("  %-16s %8s %10s %10s %10s %10s %10s\n", "phase", "IOs",
              "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms");
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              "running", static_cast<unsigned long long>(running.count),
              UsToMs(running.mean_us), UsToMs(running.p50_us),
              UsToMs(running.p95_us), UsToMs(running.p99_us),
              UsToMs(running.max_us));
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              "incl. start-up", static_cast<unsigned long long>(all.count),
              UsToMs(all.mean_us), UsToMs(all.p50_us), UsToMs(all.p95_us),
              UsToMs(all.p99_us), UsToMs(all.max_us));
  // Streamed runs: percentiles above come from the t-digest sketch;
  // show the log-histogram estimates alongside as an independent
  // cross-check, with the under/overflow the histogram clamped and a
  // loud flag when the two estimators disagree beyond the threshold.
  if (running.hist_check.has_value()) {
    const RunStats::HistogramCheck& hc = *running.hist_check;
    std::printf("  %-16s %8s %10s %10.3f %10.3f %10.3f %10s\n",
                "  (histogram)", "", "", UsToMs(hc.p50_us),
                UsToMs(hc.p95_us), UsToMs(hc.p99_us), "");
    std::printf(
        "  percentiles: t-digest sketch (rank error <= %.2f%%); "
        "histogram cross-check divergence %.2f%%",
        100 * running.sketch->RankErrorBound(), 100 * hc.divergence);
    if (hc.divergent) {
      std::printf("  ** DIVERGENT (>%.0f%%) -- estimators disagree",
                  100 * RunStats::kDivergenceThreshold);
    }
    std::printf("\n");
    if (hc.underflow > 0 || hc.overflow > 0) {
      std::printf(
          "  histogram clamped %llu underflow / %llu overflow "
          "sample(s) (excluded from the cross-check; sketch and "
          "moments still cover them)\n",
          static_cast<unsigned long long>(hc.underflow),
          static_cast<unsigned long long>(hc.overflow));
    }
  }
}

StatusOr<MicroBench> MicroBenchByName(const std::string& name) {
  for (MicroBench mb : AllMicroBenches()) {
    std::string n = MicroBenchName(mb);
    for (char& c : n) c = static_cast<char>(std::tolower(c));
    if (n == name) return mb;
  }
  return Status::NotFound("unknown micro-benchmark '" + name + "'");
}

int Record(const Flags& flags) {
  std::string id = flags.GetString("device", "mtron");
  std::string out = flags.GetString("out", "trace.csv");
  bool stream = flags.GetBool("stream", false);
  TraceFormat format = FormatFromFlags(flags, out);
  TraceCompression compression = CompressionFromFlags(flags, out);
  auto dev = MakeDeviceWithState(id);
  InterRunPause(dev.get());

  // Wrap after preparation so the trace holds only the workload.
  RecordingDevice rec(dev.get());
  if (stream) {
    Status s = rec.StreamTo(out, format, compression);
    if (!s.ok()) {
      std::fprintf(stderr, "streaming capture failed to open: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  std::string mb_name = flags.GetString("mb", "");
  if (!mb_name.empty()) {
    auto mb = MicroBenchByName(mb_name);
    if (!mb.ok()) {
      std::fprintf(stderr, "%s\n", mb.status().ToString().c_str());
      return 2;
    }
    MicroBenchConfig cfg;
    cfg.io_size = flags.GetUint32("io_size", 32 * 1024);
    cfg.io_count = flags.GetUint32("io_count", 256);
    cfg.io_ignore = flags.GetUint32("io_ignore", 64);
    cfg.target_size = dev->capacity_bytes() / 2;
    auto exps = RunMicroBench(&rec, *mb, cfg);
    if (!exps.ok()) {
      std::fprintf(stderr, "micro-benchmark failed: %s\n",
                   exps.status().ToString().c_str());
      return 1;
    }
  } else {
    std::string pat = flags.GetString("pattern", "SR");
    auto spec = PatternSpec::Baseline(
        pat, flags.GetUint32("io_size", 32 * 1024), 0,
        dev->capacity_bytes() / 2);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    spec->io_count = flags.GetUint32("io_count", 512);
    spec->io_ignore = flags.GetUint32("io_ignore", 64);
    auto run = ExecuteRun(&rec, *spec);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  if (stream) {
    Status s = rec.Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "streaming capture failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("streamed %llu IOs from %s -> %s [%s]\n",
                static_cast<unsigned long long>(rec.events_captured()),
                dev->name().c_str(), out.c_str(),
                FramingName(format, compression));
    return 0;
  }
  Status s = rec.WriteTo(out, format, compression);
  if (!s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const Trace& t = rec.trace();
  std::printf("recorded %zu IOs (%.3fs of device time) from %s -> %s [%s]\n",
              t.events.size(), t.SpanUs() / 1e6, dev->name().c_str(),
              out.c_str(), FramingName(format, compression));
  return 0;
}

int Replay(const Flags& flags) {
  std::string path = flags.GetString("trace", "");
  if (path.empty()) return Usage();
  bool stream_replay = flags.GetBool("stream-replay", false) ||
                       flags.GetBool("stream_replay", false);

  // Validate flags before the (expensive) device preparation.
  ReplayOptions opts;
  std::string timing = flags.GetString("timing", "closed");
  if (timing == "closed") {
    opts.timing = ReplayTiming::kClosedLoop;
  } else if (timing == "original") {
    opts.timing = ReplayTiming::kOriginal;
  } else if (timing == "scaled") {
    opts.timing = ReplayTiming::kScaled;
    opts.time_scale = flags.GetDouble("scale", 1.0);
  } else {
    std::fprintf(stderr, "unknown --timing=%s\n", timing.c_str());
    return 2;
  }
  opts.rescale_lba = flags.GetBool("rescale_lba", false);
  // io_ignore defaults to phase-derived (AnalyzePhases over the replayed
  // response times) when the flag is not passed -- except under
  // --stream-replay, where the series is not retained (default 0).
  int64_t io_ignore = flags.GetInt("io_ignore", -1);
  opts.io_ignore = io_ignore < 0 ? ReplayOptions::kAutoIoIgnore
                                 : static_cast<uint32_t>(io_ignore);
  if (stream_replay) {
    opts.keep_samples = false;
    if (io_ignore < 0) opts.io_ignore = 0;
  }
  uint32_t queue_depth =
      flags.GetUint32("queue_depth", 0);
  uint32_t channels = flags.GetUint32("channels", 0);

  // Streaming replay pulls events straight off the TraceReader as the
  // device consumes them; the materialized path reads the whole trace
  // up front. Either way the trace's meta is known before replay.
  Trace trace;
  std::unique_ptr<TraceReader> reader;
  EventSource* source = nullptr;
  TraceView view(&trace);
  if (stream_replay) {
    auto r = TraceReader::Open(path);
    if (!r.ok()) {
      std::fprintf(stderr, "trace open failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    reader = std::make_unique<TraceReader>(std::move(*r));
    source = reader.get();
  } else {
    auto t = ReadTrace(path);
    if (!t.ok()) {
      std::fprintf(stderr, "trace read failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*t);
    source = &view;
  }
  TraceMeta meta = source->meta();

  std::string id = flags.GetString("device", "mtron");
  auto profile = ProfileById(id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
    return 2;
  }
  // Bounded-controller knobs: --controller_us adds a serialized
  // controller stage per IO; --pipelined=false serializes the derived
  // controller stage without extra cost (see src/device/sim_device.h).
  double controller_us = flags.GetDouble("controller_us", -1);
  if (controller_us >= 0) profile->controller.controller_us = controller_us;
  profile->controller.pipelined = flags.GetBool("pipelined", true);
  auto dev = MakeDeviceWithState(std::move(*profile), 0, true, channels);
  InterRunPause(dev.get());

  std::string dev_name = dev->name();
  uint64_t replay_start_us = dev->clock()->NowUs();
  uint64_t dev_capacity = dev->capacity_bytes();
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  std::unique_ptr<AsyncSimDevice> async;
  if (queue_depth > 0) {
    // Open-loop replay through the async multi-queue API: up to
    // queue_depth IOs in flight, overlapping across flash channels.
    async = std::make_unique<AsyncSimDevice>(std::move(dev), queue_depth);
    dev_name = async->name();
    run = ExecuteTraceRun(async.get(), source, opts);
  } else {
    run = ExecuteTraceRun(dev.get(), source, opts);
  }
  if (!run.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  uint64_t makespan_us =
      (async ? async->clock() : dev->clock())->NowUs() - replay_start_us;
  uint64_t replayed = run->streamed_stats_all ? run->streamed_stats_all->count
                                              : run->samples.size();
  std::printf("replayed %llu IOs of '%s' (recorded on %s) on %s, %s timing",
              static_cast<unsigned long long>(replayed), path.c_str(),
              meta.source.c_str(), dev_name.c_str(),
              ReplayTimingName(opts.timing));
  if (opts.timing == ReplayTiming::kScaled) {
    std::printf(" (x%.2f)", opts.time_scale);
  }
  if (stream_replay) {
    std::printf(", streamed (O(1) memory, stats-only)");
  }
  if (opts.rescale_lba) {
    std::printf(", LBAs rescaled %s -> %s",
                FormatSize(meta.capacity_bytes).c_str(),
                FormatSize(dev_capacity).c_str());
  }
  if (queue_depth > 0) {
    std::printf(", queue_depth=%u over %u channels", queue_depth,
                async->channels());
  }
  std::printf("\n  makespan %.3fs", makespan_us / 1e6);
  if (opts.io_ignore == ReplayOptions::kAutoIoIgnore) {
    std::printf(", io_ignore=%u (phase-derived)", run->spec.io_ignore);
  }
  std::printf("\n\n");
  PrintStats(*run, "response-time statistics");
  return 0;
}

int Generate(const Flags& flags) {
  std::string out = flags.GetString("out", "synth.csv");
  auto source = SyntheticSourceFromFlags(flags);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 2;
  }
  // Generator configs surface their validation errors on the first
  // Next(): pull it before opening (truncating!) the output file, so a
  // bad flag cannot destroy an existing trace.
  TraceEvent first;
  auto has_first = (*source)->Next(&first);
  if (!has_first.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 has_first.status().ToString().c_str());
    return 2;
  }

  // Generator -> writer, event by event: generating a billion-IO trace
  // holds one event in memory.
  TraceFormat format = FormatFromFlags(flags, out);
  TraceCompression compression = CompressionFromFlags(flags, out);
  auto writer =
      TraceWriter::Open(out, format, (*source)->meta(), compression);
  if (!writer.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 writer.status().ToString().c_str());
    return 1;
  }
  TraceEvent e = first;
  bool have_event = *has_first;
  while (have_event) {
    Status s = writer->Append(e);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    auto more = (*source)->Next(&e);
    if (!more.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   more.status().ToString().c_str());
      return 1;
    }
    have_event = *more;
  }
  uint64_t written = writer->events_written();
  Status s = writer->Close();
  if (!s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("generated %llu-IO %s trace over %s -> %s [%s]\n",
              static_cast<unsigned long long>(written),
              (*source)->meta().source.c_str(),
              FormatSize((*source)->meta().capacity_bytes).c_str(),
              out.c_str(), FramingName(format, compression));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  using namespace uflip::bench;
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  std::string verb = argv[1];
  if (verb == "record") return Record(flags);
  if (verb == "replay") return Replay(flags);
  if (verb == "generate") return Generate(flags);
  return Usage();
}
