// Simulator-core performance tracker: measures how fast the simulator
// itself runs (host wall-clock, not simulated time) and appends one
// record per invocation to a JSON-array file, so CI accumulates an
// events/sec + cells/minute history PR over PR (see ROADMAP, "Parallel
// simulation core").
//
//   perf_tracker [--out=BENCH_simcore.json] [--io_count=20000]
//                [--kind=zipfian --theta=... generator flags]
//                [--label=ci] [--jobs=N]
//                [--speedup_reps=5] [--speedup_io_count=2000]
//                [--des_io_count=300000] [--des_channels=8]
//                [--span_io_count=200000]
//
// Five legs:
//  * replay throughput -- one synthetic workload replayed through the
//    async multi-queue path (qd=8 over 4 channels, the explorer's hot
//    configuration), reported as events/sec of pure replay (device
//    preparation excluded);
//  * explorer cell rate -- four small design-space cells (sync + qd=8,
//    two FTLs), each with the full per-cell cost a sweep pays (fresh
//    device preparation + settling + replay), reported as
//    cells/minute;
//  * parallel speedup -- the same multi-cell sweep replicated
//    --speedup_reps times per cell (4 cells x reps units, each a fresh
//    prepared device + replay, exactly the explorer's unit shape), run
//    once serially and once fanned over --jobs workers through the
//    parallel execution core (src/run/parallel_exec.h); the wall-clock
//    ratio is recorded as parallel_speedup. --speedup_reps=0 skips the
//    leg.
//  * intra-device speedup -- ONE multi-channel device timeline
//    (src/sim/device_timeline.h) fed a deterministic synthetic IO
//    stream striped over --des_channels channels and drained in
//    batches through the discrete-event calendar, once with one shard
//    (serial) and once sharded over min(--jobs, --des_channels)
//    calendar shards; records the sharded drain's events/sec
//    (des_events_per_sec) and the wall-clock ratio
//    (intra_device_speedup). Unlike the parallel-speedup leg, which
//    fans out independent (cell x rep) units, this measures
//    parallelism *inside* a single simulated device.
//    --des_io_count=0 skips the leg.
//  * span recording -- the same single-device drain, once bare and
//    once with a SpanRecorder attached (src/obs/span_trace.h), so the
//    record tracks the per-IO span-capture hot path: spans/sec of the
//    traced drain and the overhead fraction versus the bare drain.
//    --span_io_count=0 skips the leg.
// Peak RSS comes from getrusage(RUSAGE_SELF) after all legs.
//
// The output file is a JSON array of records; a new record is appended
// by rewriting the closing bracket, so the file stays valid JSON after
// every run and diffs line-per-record. Record schema 4 (older schema-1
// to schema-3 records remain in place and readable; consumers treat
// the added fields -- schema, jobs, wall_seconds, parallel_speedup,
// the speedup_* group, with schema 3 calendar_shards and the des_*
// group, and with schema 4 the spans_* / span_overhead_frac group --
// as optional): one record distinguishes serial from parallel runs by
// its jobs field.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/device/async_sim_device.h"
#include "src/obs/run_manifest.h"
#include "src/obs/span_trace.h"
#include "src/run/trace_run.h"
#include "src/sim/device_timeline.h"
#include "src/trace/synthetic.h"
#include "src/util/json_writer.h"

namespace uflip {
namespace bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  // uflip-lint: allow(wall-clock) -- perf tracker measures real elapsed time
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One replay of the flags' synthetic workload on a freshly prepared
/// device; returns events replayed (0 = failure, already reported) and
/// the pure-replay wall seconds in *replay_seconds.
uint64_t ReplayLeg(const Flags& flags, const DeviceProfile& profile,
                   uint32_t queue_depth, uint32_t channels, uint64_t seed,
                   double* replay_seconds) {
  auto source = SyntheticSourceFromFlags(flags, static_cast<int64_t>(seed));
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 0;
  }
  auto dev = MakeDeviceWithState(profile, 0, false, channels, seed);
  InterRunPause(dev.get());
  ReplayOptions opts;
  opts.rescale_lba = true;
  opts.io_ignore = 0;
  opts.keep_samples = false;
  // uflip-lint: allow(wall-clock) -- wall-clock throughput timing leg
  auto start = std::chrono::steady_clock::now();
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  if (queue_depth > 0) {
    AsyncSimDevice async(std::move(dev), queue_depth);
    run = ExecuteTraceRun(&async, source->get(), opts);
  } else {
    run = ExecuteTraceRun(dev.get(), source->get(), opts);
  }
  *replay_seconds = SecondsSince(start);
  if (!run.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 run.status().ToString().c_str());
    return 0;
  }
  return run->streamed_stats_all ? run->streamed_stats_all->count
                                 : run->samples.size();
}

/// One unit of the speedup leg: exactly the shape the explorer fans
/// out -- a fresh device prepared with per-rep seed offsets, a settling
/// pause, then a zipfian replay -- at a reduced io_count so the leg
/// stays cheap. Silent on success; thread-safe (no shared state).
Status SpeedupUnit(const DeviceProfile& base, FtlKind ftl, uint32_t qd,
                   uint32_t rep, uint32_t io_count, uint64_t base_seed) {
  DeviceProfile profile = base;
  profile.ftl = ftl;
  ZipfianTraceConfig cfg;
  cfg.io_count = io_count;
  cfg.seed = base_seed + rep;
  ZipfianEventSource source(cfg);
  auto dev = MakeDeviceWithState(profile, 0, false, /*channels=*/4, rep);
  InterRunPause(dev.get());
  ReplayOptions opts;
  opts.rescale_lba = true;
  opts.io_ignore = 0;
  opts.keep_samples = false;
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  if (qd > 0) {
    AsyncSimDevice async(std::move(dev), qd);
    run = ExecuteTraceRun(&async, &source, opts);
  } else {
    run = ExecuteTraceRun(dev.get(), &source, opts);
  }
  return run.status();
}

/// One drain of the intra-device leg: a single DeviceTimeline over
/// `channels` pipelined channels and `shards` calendar shards, fed
/// `io_count` deterministic IOs (channel = i % channels, stage
/// durations derived from the index -- no RNG, so the event stream is
/// identical across shard counts) and resolved in fixed-size batches.
/// Returns the drain's wall seconds; *events_out gets the calendar
/// events processed. `recorder`, when non-null, is attached before the
/// drain (span leg: the bare call measures the same drain without it).
double DesDrainSeconds(uint32_t channels, uint32_t shards, uint64_t io_count,
                       uint64_t* events_out,
                       SpanRecorder* recorder = nullptr) {
  DeviceTimeline timeline(channels, /*serialized_controller=*/false, shards,
                          /*initial_busy_us=*/0);
  if (recorder != nullptr) timeline.AttachSpans(recorder);
  constexpr uint64_t kBatch = 262144;
  // uflip-lint: allow(wall-clock) -- intra-device speedup timing leg
  auto start = std::chrono::steady_clock::now();
  uint64_t ready_us = 0;
  for (uint64_t i = 0; i < io_count; ++i) {
    IoStages stages;
    stages.controller_us = 2.0 + static_cast<double>(i % 7);
    stages.channel_us = 25.0 + 3.0 * static_cast<double>(i % 13);
    timeline.Submit(i + 1, ready_us, static_cast<uint32_t>(i % channels),
                    stages);
    if (i % 4 == 3) ready_us += 5;
    if ((i + 1) % kBatch == 0) timeline.ResolveAll(nullptr);
  }
  timeline.ResolveAll(nullptr);
  double seconds = SecondsSince(start);
  *events_out = timeline.EventsProcessed();
  return seconds;
}

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Appends `record` (a JSON object, no trailing newline) to the JSON
/// array in `path`, creating the file as "[record]" when absent. The
/// existing content is kept verbatim; only the closing bracket moves.
bool AppendToJsonArray(const std::string& path, const std::string& record) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(f);
  }
  // Strip trailing whitespace and the closing bracket of the array.
  size_t end = existing.find_last_not_of(" \t\r\n");
  bool empty_array = true;
  if (end != std::string::npos && existing[end] == ']') {
    size_t inner = existing.find_last_not_of(" \t\r\n", end - 1);
    empty_array = inner == std::string::npos || existing[inner] == '[';
    existing.resize(end);
  } else if (end != std::string::npos) {
    std::fprintf(stderr, "%s: not a JSON array, refusing to append\n",
                 path.c_str());
    return false;
  } else {
    existing = "[\n";
  }
  if (!empty_array) existing += ",\n";
  existing += record;
  existing += "\n]\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(existing.data(), 1, existing.size(), f);
  return std::fclose(f) == 0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  // uflip-lint: allow(wall-clock) -- whole-run wall time for the perf record
  auto wall_start = std::chrono::steady_clock::now();
  std::string out = flags.GetString("out", "BENCH_simcore.json");
  std::string label = flags.GetString("label", "");
  uint64_t seed = SeedFromFlags(flags);
  unsigned jobs = JobsFromFlags(flags);

  auto mtron = ProfileById("mtron");
  if (!mtron.ok()) {
    std::fprintf(stderr, "mtron profile missing\n");
    return 2;
  }

  // Leg 1: replay throughput through the explorer's hot configuration.
  double replay_seconds = 0;
  uint64_t events =
      ReplayLeg(flags, *mtron, /*queue_depth=*/8, /*channels=*/4, seed,
                &replay_seconds);
  if (events == 0) return 1;
  double events_per_sec =
      replay_seconds > 0 ? static_cast<double>(events) / replay_seconds : 0;
  std::printf("replay leg: %llu events in %.3fs wall = %.0f events/s\n",
              static_cast<unsigned long long>(events), replay_seconds,
              events_per_sec);

  // Leg 2: explorer cell rate, full per-cell cost included.
  struct CellCfg {
    FtlKind ftl;
    uint32_t qd;
  };
  const std::vector<CellCfg> cells = {{FtlKind::kPageMapping, 0},
                                      {FtlKind::kPageMapping, 8},
                                      {FtlKind::kFast, 0},
                                      {FtlKind::kFast, 8}};
  // uflip-lint: allow(wall-clock) -- cells/minute timing leg
  auto cells_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < cells.size(); ++i) {
    DeviceProfile profile = *mtron;
    profile.ftl = cells[i].ftl;
    double ignored = 0;
    if (ReplayLeg(flags, profile, cells[i].qd, /*channels=*/4, seed + i,
                  &ignored) == 0) {
      return 1;
    }
  }
  double cells_seconds = SecondsSince(cells_start);
  double cells_per_minute =
      cells_seconds > 0 ? 60.0 * static_cast<double>(cells.size()) /
                              cells_seconds
                        : 0;
  std::printf("cell leg: %zu cells in %.3fs wall = %.1f cells/minute\n",
              cells.size(), cells_seconds, cells_per_minute);

  // Leg 3: parallel speedup of the same sweep, replicated per cell and
  // fanned over the parallel execution core. Serial first so the
  // parallel pass runs against a warm allocator either way.
  uint32_t speedup_reps = flags.GetUint32("speedup_reps", 5);
  uint32_t speedup_io_count = flags.GetUint32("speedup_io_count", 2000);
  size_t speedup_units = cells.size() * speedup_reps;
  double speedup_serial_seconds = 0;
  double speedup_parallel_seconds = 0;
  double parallel_speedup = 0;
  if (speedup_reps > 0) {
    auto unit = [&](size_t i) -> Status {
      const CellCfg& c = cells[i / speedup_reps];
      return SpeedupUnit(*mtron, c.ftl, c.qd,
                         static_cast<uint32_t>(i % speedup_reps),
                         speedup_io_count, seed);
    };
    // uflip-lint: allow(wall-clock) -- serial leg of the parallel-speedup probe
    auto serial_start = std::chrono::steady_clock::now();
    Status serial = ParallelFor(speedup_units, 1, unit);
    speedup_serial_seconds = SecondsSince(serial_start);
    // uflip-lint: allow(wall-clock) -- parallel leg of the parallel-speedup probe
    auto parallel_start = std::chrono::steady_clock::now();
    Status parallel = ParallelFor(speedup_units, jobs, unit);
    speedup_parallel_seconds = SecondsSince(parallel_start);
    if (!serial.ok() || !parallel.ok()) {
      std::fprintf(stderr, "speedup leg failed: %s\n",
                   (serial.ok() ? parallel : serial).ToString().c_str());
      return 1;
    }
    parallel_speedup = speedup_parallel_seconds > 0
                           ? speedup_serial_seconds / speedup_parallel_seconds
                           : 0;
    std::printf(
        "speedup leg: %zu units, serial %.3fs vs %u jobs %.3fs = %.2fx\n",
        speedup_units, speedup_serial_seconds, jobs, speedup_parallel_seconds,
        parallel_speedup);
  }

  // Leg 4: intra-device speedup -- one sharded device timeline drained
  // serially, then sharded. Serial first so the sharded pass runs
  // against a warm allocator, mirroring leg 3's convention.
  uint64_t des_io_count = flags.GetUint32("des_io_count", 300000);
  uint32_t des_channels = flags.GetUint32("des_channels", 8);
  uint32_t des_shards =
      std::min(static_cast<uint32_t>(jobs), des_channels);
  if (des_channels == 0) des_channels = 1;
  if (des_shards == 0) des_shards = 1;
  uint64_t des_events = 0;
  double des_serial_seconds = 0;
  double des_sharded_seconds = 0;
  double des_events_per_sec = 0;
  double intra_device_speedup = 0;
  if (des_io_count > 0) {
    uint64_t serial_events = 0;
    des_serial_seconds =
        DesDrainSeconds(des_channels, 1, des_io_count, &serial_events);
    des_sharded_seconds =
        DesDrainSeconds(des_channels, des_shards, des_io_count, &des_events);
    if (des_events != serial_events) {
      std::fprintf(stderr,
                   "des leg: sharded drain processed %llu events, serial %llu\n",
                   static_cast<unsigned long long>(des_events),
                   static_cast<unsigned long long>(serial_events));
      return 1;
    }
    des_events_per_sec = des_sharded_seconds > 0
                             ? static_cast<double>(des_events) /
                                   des_sharded_seconds
                             : 0;
    intra_device_speedup = des_sharded_seconds > 0
                               ? des_serial_seconds / des_sharded_seconds
                               : 0;
    std::printf(
        "des leg: %llu events, serial %.3fs vs %u shards %.3fs = %.2fx "
        "(%.0f events/s sharded)\n",
        static_cast<unsigned long long>(des_events), des_serial_seconds,
        des_shards, des_sharded_seconds, intra_device_speedup,
        des_events_per_sec);
  }

  // Leg 5: span-recording hot path -- the single-device drain bare,
  // then with a SpanRecorder attached. Bare first so the traced pass
  // runs against a warm allocator, mirroring legs 3 and 4.
  uint64_t span_io_count = flags.GetUint32("span_io_count", 200000);
  uint64_t spans_recorded = 0;
  double spans_per_sec = 0;
  double span_overhead_frac = 0;
  if (span_io_count > 0) {
    uint64_t bare_events = 0, traced_events = 0;
    double bare_seconds =
        DesDrainSeconds(des_channels, 1, span_io_count, &bare_events);
    SpanRecorder recorder;
    double traced_seconds = DesDrainSeconds(des_channels, 1, span_io_count,
                                            &traced_events, &recorder);
    if (traced_events != bare_events) {
      std::fprintf(stderr,
                   "span leg: traced drain processed %llu events, bare %llu\n",
                   static_cast<unsigned long long>(traced_events),
                   static_cast<unsigned long long>(bare_events));
      return 1;
    }
    spans_recorded = recorder.recorded();
    spans_per_sec = traced_seconds > 0
                        ? static_cast<double>(spans_recorded) / traced_seconds
                        : 0;
    span_overhead_frac =
        bare_seconds > 0 ? (traced_seconds - bare_seconds) / bare_seconds : 0;
    std::printf(
        "span leg: %llu spans, bare %.3fs vs traced %.3fs = %+.1f%% "
        "(%.0f spans/s)\n",
        static_cast<unsigned long long>(spans_recorded), bare_seconds,
        traced_seconds, 100.0 * span_overhead_frac, spans_per_sec);
  }

  double peak_rss_mb = PeakRssMb();
  JsonWriter json(2);
  json.BeginObject();
  json.Key("schema");
  json.Uint(4);
  json.Key("git");
  json.String(GitDescribe());
  if (!label.empty()) {
    json.Key("label");
    json.String(label);
  }
  json.Key("unix_time");
  // uflip-lint: allow(wall-clock) -- perf-history record timestamp
  json.Uint(static_cast<uint64_t>(std::time(nullptr)));
  json.Key("jobs");
  json.Uint(jobs);
  json.Key("events");
  json.Uint(events);
  json.Key("events_per_sec");
  json.Double(events_per_sec);
  json.Key("cells");
  json.Uint(cells.size());
  json.Key("cells_per_minute");
  json.Double(cells_per_minute);
  if (speedup_reps > 0) {
    json.Key("speedup_units");
    json.Uint(speedup_units);
    json.Key("speedup_serial_seconds");
    json.Double(speedup_serial_seconds);
    json.Key("speedup_parallel_seconds");
    json.Double(speedup_parallel_seconds);
    json.Key("parallel_speedup");
    json.Double(parallel_speedup);
  }
  if (des_io_count > 0) {
    json.Key("calendar_shards");
    json.Uint(des_shards);
    json.Key("des_events");
    json.Uint(des_events);
    json.Key("des_events_per_sec");
    json.Double(des_events_per_sec);
    json.Key("des_serial_seconds");
    json.Double(des_serial_seconds);
    json.Key("des_sharded_seconds");
    json.Double(des_sharded_seconds);
    json.Key("intra_device_speedup");
    json.Double(intra_device_speedup);
  }
  if (span_io_count > 0) {
    json.Key("spans_recorded");
    json.Uint(spans_recorded);
    json.Key("spans_per_sec");
    json.Double(spans_per_sec);
    json.Key("span_overhead_frac");
    json.Double(span_overhead_frac);
  }
  json.Key("wall_seconds");
  json.Double(SecondsSince(wall_start));
  json.Key("peak_rss_mb");
  json.Double(peak_rss_mb);
  json.EndObject();
  if (!AppendToJsonArray(out, json.str())) {
    std::fprintf(stderr, "cannot append to %s\n", out.c_str());
    return 1;
  }
  std::printf("appended to %s (peak RSS %.1f MB)\n", out.c_str(),
              peak_rss_mb);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  return uflip::bench::Main(argc, argv);
}
