// Trace-driven device / FTL comparison sweep: replays ONE workload --
// a recorded trace file or a synthetic generator stream -- across every
// Table 2 device profile, and across the three FTL architectures
// (page-mapping, BAST, FAST) mounted on one fixed geometry/controller,
// then prints a Table 3-style comparison. This is the missing second
// half of the benchmark methodology: Section 2's point is that the same
// IO pattern behaves wildly differently across devices, and a recorded
// workload is the most honest pattern there is.
//
//   ftl_compare --trace=sweep.csv[.gz]            # recorded workload
//   ftl_compare --kind=oltp --io_count=2048       # synthetic workload
//     [--profiles=representative|all|id,id,...]   # device sweep rows
//     [--ftl_base=mtron]                          # FTL sweep geometry
//     [--sweep=devices|ftls|both]
//     [--timing=closed|original|scaled] [--scale=1.0]
//     [--queue_depth=0] [--channels=0]
//     [--io_ignore=N]      # default: phase-derived per cell
//     [--stream]           # re-stream the trace file per cell (O(1)
//                          # memory; stats-only, needs --io_ignore)
//     [--capacity_mb/--io_size/--theta/... generator flags]
//
// Every cell prepares a fresh device (random state enforcement +
// settling, Section 4.1), replays the identical event stream with LBA
// rescaling onto that device's capacity, and reports running-phase
// statistics plus throughput. "x" columns are factors relative to the
// best mean in the sweep.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/device/async_sim_device.h"
#include "src/run/trace_run.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"

namespace uflip {
namespace bench {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ftl_compare [--trace=path | --kind=...] [--flags]\n"
               "  (see the header of bench/ftl_compare.cc)\n");
  return 2;
}

struct SweepRow {
  std::string label;
  std::string ftl;
  RunStats running;
  uint64_t ios = 0;
  uint64_t makespan_us = 0;
};

struct SweepConfig {
  std::string trace_path;  // empty = synthetic
  bool stream = false;     // re-stream the file per cell, stats-only
  /// Trace file parsed once up front (materialized mode); every cell
  /// iterates it through its own TraceView.
  Trace materialized;
  ReplayOptions replay;
  uint32_t queue_depth = 0;
  uint32_t channels = 0;
};

/// Replays the workload once on a freshly prepared device built from
/// `profile`; false on failure (already reported).
bool RunCell(const Flags& flags, const SweepConfig& cfg,
             const DeviceProfile& profile, SweepRow* row) {
  auto dev = MakeDeviceWithState(profile, 0, false, cfg.channels);
  InterRunPause(dev.get());

  // One identical event stream per cell: rewind the materialized trace,
  // reopen the file (--stream) or re-seed the generator, so every
  // device sees the same workload from event 0.
  std::unique_ptr<EventSource> source;
  if (cfg.trace_path.empty()) {
    auto synth = SyntheticSourceFromFlags(flags);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return false;
    }
    source = std::move(*synth);
  } else if (cfg.stream) {
    auto reader = TraceReader::Open(cfg.trace_path);
    if (!reader.ok()) {
      std::fprintf(stderr, "trace open failed: %s\n",
                   reader.status().ToString().c_str());
      return false;
    }
    source = std::make_unique<TraceReader>(std::move(*reader));
  } else {
    source = std::make_unique<TraceView>(&cfg.materialized);
  }

  uint64_t start_us = dev->clock()->NowUs();
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  std::unique_ptr<AsyncSimDevice> async;
  if (cfg.queue_depth > 0) {
    async = std::make_unique<AsyncSimDevice>(std::move(dev),
                                             cfg.queue_depth);
    run = ExecuteTraceRun(async.get(), source.get(), cfg.replay);
  } else {
    run = ExecuteTraceRun(dev.get(), source.get(), cfg.replay);
  }
  if (!run.ok()) {
    std::fprintf(stderr, "[%s] replay failed: %s\n", profile.id.c_str(),
                 run.status().ToString().c_str());
    return false;
  }
  Clock* clock = async ? async->clock() : dev->clock();
  row->running = run->Stats();
  row->ios = run->streamed_stats_all ? run->streamed_stats_all->count
                                     : run->samples.size();
  row->makespan_us = clock->NowUs() - start_us;
  return true;
}

void PrintTable(const char* title, const std::vector<SweepRow>& rows) {
  double best_mean = 0;
  for (const SweepRow& r : rows) {
    if (best_mean == 0 || r.running.mean_us < best_mean) {
      best_mean = r.running.mean_us;
    }
  }
  std::printf("%s\n", title);
  std::printf("  %-18s %-18s %9s %6s %9s %9s %9s %9s %9s\n", "device",
              "FTL", "mean ms", "x", "p50 ms", "p95 ms", "p99 ms",
              "max ms", "IOs/s");
  for (const SweepRow& r : rows) {
    double factor = best_mean > 0 ? r.running.mean_us / best_mean : 1.0;
    double iops = r.makespan_us > 0
                      ? static_cast<double>(r.ios) * 1e6 /
                            static_cast<double>(r.makespan_us)
                      : 0;
    std::printf(
        "  %-18s %-18s %9.3f %6.1f %9.3f %9.3f %9.3f %9.3f %9.0f\n",
        r.label.c_str(), r.ftl.c_str(), UsToMs(r.running.mean_us), factor,
        UsToMs(r.running.p50_us), UsToMs(r.running.p95_us),
        UsToMs(r.running.p99_us), UsToMs(r.running.max_us), iops);
  }
  std::printf("\n");
}

std::vector<DeviceProfile> SelectProfiles(const std::string& spec) {
  if (spec == "all") return AllProfiles();
  if (spec.empty() || spec == "representative") {
    return RepresentativeProfiles();
  }
  std::vector<DeviceProfile> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string id = spec.substr(start, end - start);
    if (!id.empty()) {
      auto p = ProfileById(id);
      if (!p.ok()) {
        std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
        std::exit(2);
      }
      out.push_back(std::move(*p));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);

  SweepConfig cfg;
  cfg.trace_path = flags.GetString("trace", "");
  cfg.stream = flags.GetBool("stream", false);

  std::string timing = flags.GetString("timing", "closed");
  if (timing == "closed") {
    cfg.replay.timing = ReplayTiming::kClosedLoop;
  } else if (timing == "original") {
    cfg.replay.timing = ReplayTiming::kOriginal;
  } else if (timing == "scaled") {
    cfg.replay.timing = ReplayTiming::kScaled;
    cfg.replay.time_scale = flags.GetDouble("scale", 1.0);
  } else {
    std::fprintf(stderr, "unknown --timing=%s\n", timing.c_str());
    return Usage();
  }
  cfg.replay.rescale_lba = true;
  int64_t io_ignore = flags.GetInt("io_ignore", -1);
  cfg.replay.io_ignore = io_ignore < 0
                             ? ReplayOptions::kAutoIoIgnore
                             : static_cast<uint32_t>(io_ignore);
  if (cfg.stream) {
    if (cfg.trace_path.empty()) {
      std::fprintf(stderr, "--stream needs --trace=<file>\n");
      return Usage();
    }
    // O(1)-memory cells cannot phase-derive io_ignore.
    cfg.replay.keep_samples = false;
    if (io_ignore < 0) cfg.replay.io_ignore = 0;
  }
  cfg.queue_depth = static_cast<uint32_t>(flags.GetInt("queue_depth", 0));
  cfg.channels = static_cast<uint32_t>(flags.GetInt("channels", 0));

  std::string sweep = flags.GetString("sweep", "both");
  if (sweep != "devices" && sweep != "ftls" && sweep != "both") {
    std::fprintf(stderr, "unknown --sweep=%s\n", sweep.c_str());
    return Usage();
  }

  // Describe the workload once, and in materialized mode parse the
  // trace file once here rather than per cell.
  std::string workload = cfg.trace_path;
  if (workload.empty()) {
    auto synth = SyntheticSourceFromFlags(flags);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return 2;
    }
    workload = (*synth)->meta().source + " (synthetic)";
  } else if (!cfg.stream) {
    auto trace = ReadTrace(cfg.trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace read failed: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    cfg.materialized = std::move(*trace);
  }
  std::printf("Trace-driven comparison: %s\n", workload.c_str());
  std::printf("  timing=%s%s, queue_depth=%u, LBA-rescaled per device\n\n",
              ReplayTimingName(cfg.replay.timing),
              cfg.stream ? ", streamed (stats-only)" : "",
              cfg.queue_depth);

  if (sweep != "ftls") {
    std::vector<SweepRow> rows;
    for (const DeviceProfile& profile :
         SelectProfiles(flags.GetString("profiles", "representative"))) {
      SweepRow row;
      row.label = profile.id;
      row.ftl = FtlKindName(profile.ftl);
      if (!RunCell(flags, cfg, profile, &row)) return 1;
      rows.push_back(std::move(row));
    }
    PrintTable("Device sweep (Table 2 profiles, one workload):", rows);
  }

  if (sweep != "devices") {
    // Same chip geometry, controller and cache settings; only the FTL
    // architecture changes.
    std::string base_id = flags.GetString("ftl_base", "mtron");
    auto base = ProfileById(base_id);
    if (!base.ok()) {
      std::fprintf(stderr, "unknown --ftl_base=%s\n", base_id.c_str());
      return 2;
    }
    std::vector<SweepRow> rows;
    for (FtlKind kind :
         {FtlKind::kPageMapping, FtlKind::kBast, FtlKind::kFast}) {
      DeviceProfile profile = *base;
      profile.ftl = kind;
      SweepRow row;
      row.label = base_id + " geometry";
      row.ftl = FtlKindName(kind);
      if (!RunCell(flags, cfg, profile, &row)) return 1;
      rows.push_back(std::move(row));
    }
    PrintTable(
        ("FTL sweep (fixed geometry/controller: " + base_id + "):").c_str(),
        rows);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  return uflip::bench::Main(argc, argv);
}
