// Trace-driven design-space explorer: replays ONE workload -- a
// recorded trace file or a synthetic generator stream -- across every
// Table 2 device profile, across the three FTL architectures
// (page-mapping, BAST, FAST) mounted on one fixed geometry/controller,
// and per cell across the async design knobs: queue depth, channel
// count, write-cache size and the bounded-controller model. This is
// Section 2's point taken to its conclusion: the same IO pattern
// behaves wildly differently not just across devices but across the
// internal design choices of one device, and a recorded workload is
// the most honest pattern there is.
//
//   ftl_compare --trace=sweep.csv[.gz]            # recorded workload
//   ftl_compare --kind=oltp --io_count=2048       # synthetic workload
//     [--profiles=representative|all|id,id,...]   # device sweep rows
//     [--ftl_base=mtron]                          # FTL sweep geometry
//     [--sweep=devices|ftls|both]
//     [--timing=closed|original|scaled] [--scale=1.0]
//     [--queue_depths=1,8 | --queue_depth=N]  # 0 = synchronous replay
//     [--channels_list=1,4 | --channels=N]    # 0 = profile default
//     [--cache_pages=0,1024]   # write-cache pages; 0 = profile default
//     [--controller_us=50]     # serialized controller stage per IO
//     [--pipelined=false]      # bounded controller without extra cost
//     [--reps=3]               # repetitions per cell; rep r uses
//                              # workload seed --seed + r and an
//                              # independently-prepared device
//     [--seed=1]               # base workload seed (SeedFromFlags)
//     [--jobs=N]               # worker threads fanning the (cell x
//                              # rep) units; default hardware
//                              # concurrency. Output is byte-identical
//                              # for every N (src/run/parallel_exec.h)
//     [--calendar_shards=N]    # event-calendar shards per simulated
//                              # device (queued cells). Output is
//                              # byte-identical for every N
//                              # (src/sim/sharded_calendar.h)
//     [--csv=grid.csv]         # full grid export for plotting
//     [--io_ignore=N]      # default: phase-derived per cell
//     [--stream]           # re-stream the trace file per cell (O(1)
//                          # memory; stats-only, needs --io_ignore)
//     [--metrics_out=m.json]   # run manifest: flags, seed, git, events,
//                              # events/sec + full metric snapshot
//                              # merged across every cell and rep
//     [--explain=CELL]     # utilization timelines (per-channel busy
//                          # fraction, controller occupancy, queue
//                          # depth) plus the per-IO stage-latency
//                          # breakdown ("where the time went") of the
//                          # first cell matching CELL -- comma-
//                          # separated axis values, "*" wildcard,
//                          # prefix allowed: --explain=mtron,FAST,8
//     [--trace_out=t.json] # Chrome trace_event JSON of rep 1 of the
//                          # --explain cell (first cell otherwise):
//                          # open in Perfetto / chrome://tracing.
//                          # Byte-identical across --jobs and
//                          # --calendar_shards
//     [--span_head=4096]   # per-rep span capture: first-N limit
//     [--span_tail=64]     # ... and slowest-K tail reservoir size
//     [--capacity_mb/--io_size/--theta/... generator flags]
//
// Every cell prepares a fresh device (random state enforcement +
// settling, Section 4.1), replays the identical event stream with LBA
// rescaling onto that device's capacity, and reports running-phase
// statistics plus throughput. With --reps=N each cell is N independent
// repetitions -- fresh device preparation (seed offset r) and, for
// synthetic workloads, an independent generator stream (seed + r) per
// rep -- pooled through ReplicateSet: the reported mean/stddev cover
// all samples, percentiles come from the repetitions' merged t-digest
// sketches, and the grid gains a 95% confidence interval on each mean.
// The grid marks the best cell, marks cells whose CI overlaps the
// best's with '~' (not statistically distinguishable -- not losers),
// and reports factors relative to the best; when the queue-depth axis
// has more than one value, a speedup summary compares each cell's
// throughput to its qd-minimum sibling -- with --controller_us > 0 the
// speedup saturates below channels x, which is what keeps the high-qd
// cells honest.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <chrono>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/device/async_sim_device.h"
#include "src/obs/metric_registry.h"
#include "src/obs/run_manifest.h"
#include "src/obs/span_trace.h"
#include "src/report/grid_report.h"
#include "src/report/stage_table.h"
#include "src/report/timeline.h"
#include "src/run/parallel_exec.h"
#include "src/run/trace_run.h"
#include "src/stats/replicate_set.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"

namespace uflip {
namespace bench {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ftl_compare [--trace=path | --kind=...] [--flags]\n"
               "  (see the header of bench/ftl_compare.cc)\n");
  return 2;
}

struct SweepConfig {
  std::string trace_path;  // empty = synthetic
  bool stream = false;     // re-stream the file per cell, stats-only
  /// Trace file parsed once up front (materialized mode); every cell
  /// iterates it through its own TraceView.
  Trace materialized;
  ReplayOptions replay;
  // Per-cell design axes.
  std::vector<uint32_t> queue_depths;  // 0 = synchronous replay
  std::vector<uint32_t> channels;      // 0 = profile default
  std::vector<uint32_t> cache_pages;   // 0 = profile default cache
  // Controller model knobs applied to every cell's profile.
  double controller_us = -1;  // < 0 = leave the profile's value
  bool pipelined = true;
  // Replication: repetitions per cell and the base workload seed
  // (rep r derives seed + r).
  uint32_t reps = 1;
  uint32_t base_seed = 1;
  // Worker threads for the (cell x rep) fan-out; output is
  // byte-identical for every value (see src/run/parallel_exec.h).
  unsigned jobs = 1;
  // Event-calendar shards per simulated device (queued cells only);
  // output is byte-identical for every value (see
  // src/sim/sharded_calendar.h).
  uint32_t calendar_shards = 1;
  // Per-IO span tracing (--trace_out / --explain / --metrics_out):
  // every unit runs with a SpanRecorder attached so stage aggregates
  // reach the manifest and the --explain cell; the capture of one
  // canonical cell is exported as a Chrome trace.
  bool spans_enabled = false;
  SpanRecorderConfig span_config;
};

/// Observability collection across the sweep (--metrics_out /
/// --explain): per-rep registries are snapshot by the run layer and
/// merged here -- across reps into the explain cell's view, across
/// everything into the manifest's snapshot.
struct ObsCollection {
  bool enabled = false;
  std::string explain_spec;  // empty = no --explain

  MetricSnapshot merged;  // across all cells and reps
  uint64_t events = 0;
  uint64_t sim_makespan_us = 0;  // max single-rep device-time makespan

  bool explain_found = false;
  std::string explain_label;
  /// First repetition of the matched cell, not the rep merge: busy
  /// timelines sum under merge, so only a single rep reads as a true
  /// 0..1 busy fraction.
  MetricSnapshot explain;

  /// --trace_out: Chrome-trace export of rep 0 of the first cell
  /// matching `trace_spec` (the --explain spec, or "*"). Selected
  /// during the canonical fold, so the export is byte-identical across
  /// --jobs and --calendar_shards.
  std::string trace_out;   // empty = no --trace_out
  std::string trace_spec;
  bool trace_found = false;
  std::string trace_label;
  bool trace_serialized_controller = false;
  SpanSnapshot trace_spans;
};

/// True when `keys` matches an --explain spec: comma-separated axis
/// values in grid order, "*" matching anything, shorter specs matching
/// as a prefix ("mtron,FAST" hits every qd/ch/cache cell of that pair).
bool MatchesExplain(const std::string& spec,
                    const std::vector<std::string>& keys) {
  std::vector<std::string> parts = SplitCommas(spec);
  if (parts.empty() || parts.size() > keys.size()) return false;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] != "*" && parts[i] != keys[i]) return false;
  }
  return true;
}

/// One variant of the device under test: a Table 2 profile, or the
/// ftl_base geometry re-mounted under a different FTL.
struct Variant {
  std::string device_label;
  DeviceProfile profile;
};

/// One unit of the sweep's parallel fan-out: a single repetition of a
/// single cell, fully self-contained on its worker (fresh device, own
/// event source, own registry). The coordinator folds units in
/// canonical (cell-major, rep-minor) order, so --jobs=N output is
/// byte-identical to --jobs=1.
struct UnitResult {
  RunStats stats;
  uint64_t ios = 0;
  uint64_t makespan_us = 0;  // device-time makespan of this rep
  bool has_metrics = false;
  MetricSnapshot metrics;
  bool has_spans = false;
  SpanSnapshot spans;
  /// Whether this unit's effective profile ran the bounded-controller
  /// model (the Chrome export renders a controller track only then).
  bool serialized_controller = false;
  /// Rep 0 of a profile-default-cache cell: the cache size the built
  /// stack actually runs with ("none" when the profile has no cache).
  std::string resolved_cache;
};

/// Replays the workload once on a freshly prepared device built from
/// `variant` with the cell's knobs applied -- repetition `rep` on a
/// device prepared with seed offset rep, drawing workload seed
/// base_seed + rep when synthetic. Runs on a worker thread: every seed
/// derives from (cell, rep) only, and nothing here prints.
StatusOr<UnitResult> RunUnit(const Flags& flags, const SweepConfig& cfg,
                             const Variant& variant, uint32_t queue_depth,
                             uint32_t channels, uint32_t cache_pages,
                             uint32_t rep, bool obs_enabled) {
  UnitResult out;
  DeviceProfile profile = variant.profile;
  if (cfg.controller_us >= 0) {
    profile.controller.controller_us = cfg.controller_us;
  }
  profile.controller.pipelined = cfg.pipelined;
  if (cache_pages > 0) {
    profile.write_cache = true;
    profile.cache.capacity_pages = cache_pages;
  }
  auto dev = MakeDeviceWithState(profile, 0, false, channels, rep);
  InterRunPause(dev.get());
  if (cache_pages == 0 && rep == 0) {
    // Resolve the profile-default cache to what the built stack
    // actually runs with, so "default" cells are comparable to
    // explicit --cache_pages values in the grid and its CSV.
    auto* cache = dynamic_cast<WriteCache*>(dev->ftl());
    out.resolved_cache =
        cache ? std::to_string(cache->config().capacity_pages) : "none";
  }

  // One identical event stream per cell and rep (synthetic reps
  // excepted, which draw their own seed): rewind the materialized
  // trace, reopen the file (--stream) or re-seed the generator, so
  // every device sees the same workload from event 0.
  std::unique_ptr<EventSource> source;
  if (cfg.trace_path.empty()) {
    auto synth = SyntheticSourceFromFlags(
        flags, static_cast<int64_t>(cfg.base_seed) + rep);
    if (!synth.ok()) return synth.status();
    source = std::move(*synth);
  } else if (cfg.stream) {
    auto reader = TraceReader::Open(cfg.trace_path);
    if (!reader.ok()) {
      return Status::IoError("trace open failed: " +
                             reader.status().ToString());
    }
    source = std::make_unique<TraceReader>(std::move(*reader));
  } else {
    source = std::make_unique<TraceView>(&cfg.materialized);
  }

  uint64_t start_us = dev->clock()->NowUs();
  StatusOr<RunResult> run = Status::InvalidArgument("unreachable");
  std::unique_ptr<AsyncSimDevice> async;
  // Per-rep registry: attached after preparation, so the FTL/cache
  // collectors export the replay window only; the run layer snapshots
  // it into run->metrics. Merging the per-rep snapshots is
  // deterministic (see MetricSnapshot::Merge).
  MetricRegistry registry;
  // Per-rep span recorder, same lifecycle: attached after preparation
  // so spans cover the replay window only; the run layer snapshots it
  // into run->spans.
  SpanRecorder spans(cfg.span_config);
  out.serialized_controller = profile.controller.SerializedController();
  if (queue_depth > 0) {
    async = std::make_unique<AsyncSimDevice>(std::move(dev), queue_depth,
                                             cfg.calendar_shards);
    if (obs_enabled) async->AttachMetrics(&registry);
    if (cfg.spans_enabled) {
      async->AttachSpans(&spans);
      if (obs_enabled) spans.RegisterMetrics(&registry);
    }
    run = ExecuteTraceRun(async.get(), source.get(), cfg.replay);
  } else {
    if (obs_enabled) dev->AttachMetrics(&registry);
    if (cfg.spans_enabled) {
      dev->AttachSpans(&spans);
      if (obs_enabled) spans.RegisterMetrics(&registry);
    }
    run = ExecuteTraceRun(dev.get(), source.get(), cfg.replay);
  }
  if (!run.ok()) {
    return Status::Internal("[" + variant.device_label +
                            "] replay failed (rep " + std::to_string(rep) +
                            "): " + run.status().ToString());
  }
  Clock* clock = async ? async->clock() : dev->clock();
  out.makespan_us = clock->NowUs() - start_us;
  if (obs_enabled && run->metrics) {
    out.has_metrics = true;
    out.metrics = std::move(*run->metrics);
  }
  if (cfg.spans_enabled && run->spans) {
    out.has_spans = true;
    out.spans = std::move(*run->spans);
  }
  out.stats = run->Stats();
  out.ios = run->streamed_stats_all ? run->streamed_stats_all->count
                                    : run->samples.size();
  return out;
}

/// Folds one cell's repetitions -- already produced, in rep order --
/// into its GridCell and the sweep-wide observability collection.
/// Coordinator-thread only; the merge operations (ReplicateSet,
/// MetricSnapshot::Merge) are deterministic, so the fold's output
/// depends on nothing but the units' contents and this fixed order.
void FoldCell(const SweepConfig& cfg, UnitResult* units, GridCell* cell,
              ObsCollection* obs) {
  ReplicateSet set;
  RunStats single;
  uint64_t total_ios = 0;
  uint64_t total_makespan_us = 0;
  MetricSnapshot cell_metrics;
  MetricSnapshot first_rep_metrics;
  for (uint32_t rep = 0; rep < cfg.reps; ++rep) {
    UnitResult& u = units[rep];
    if (rep == 0 && !u.resolved_cache.empty()) {
      cell->keys[4] = u.resolved_cache;
    }
    if (obs->enabled && u.has_metrics) {
      if (rep == 0) first_rep_metrics = u.metrics;
      cell_metrics.Merge(u.metrics);
      obs->sim_makespan_us = std::max(obs->sim_makespan_us, u.makespan_us);
    }
    if (cfg.reps == 1) {
      single = u.stats;  // no aggregation: skip the sketch clone
    } else {
      set.Add(u.stats.Summary());
    }
    total_ios += u.ios;
    total_makespan_us += u.makespan_us;
  }
  // --trace_out: the export is rep 0 of the first cell matching the
  // trace spec, picked here in the canonical fold order, so the traced
  // cell (and the file's bytes) never depends on worker scheduling.
  if (!obs->trace_out.empty() && !obs->trace_found && units[0].has_spans &&
      MatchesExplain(obs->trace_spec, cell->keys)) {
    obs->trace_found = true;
    obs->trace_spans = std::move(units[0].spans);
    obs->trace_serialized_controller = units[0].serialized_controller;
    obs->trace_label = cell->keys[0];
    for (size_t i = 1; i < cell->keys.size(); ++i) {
      obs->trace_label += "," + cell->keys[i];
    }
  }
  if (obs->enabled) {
    obs->merged.Merge(cell_metrics);
    obs->events += total_ios;
    if (!obs->explain_found && !obs->explain_spec.empty() &&
        MatchesExplain(obs->explain_spec, cell->keys)) {
      obs->explain_found = true;
      obs->explain = std::move(first_rep_metrics);
      obs->explain_label = cell->keys[0];
      for (size_t i = 1; i < cell->keys.size(); ++i) {
        obs->explain_label += "," + cell->keys[i];
      }
    }
  }
  cell->reps = cfg.reps;
  cell->ios = total_ios;
  cell->makespan_us = total_makespan_us;
  if (cfg.reps == 1) {
    // Single run: keep the run's own stats (exact order-statistic
    // percentiles in materialized mode), exactly as before --reps.
    cell->stats = single;
  } else {
    ReplicateAggregate agg = set.Aggregate();
    cell->stats = RunStats::FromAggregate(agg);
    cell->mean_ci95_us = agg.mean_ci95_half;
  }
}

/// Runs the full knob grid for `variants` into a GridReport: fans the
/// (cell x rep) units across cfg.jobs workers, then folds every cell in
/// grid order on this thread.
bool RunGrid(const Flags& flags, const SweepConfig& cfg,
             const std::vector<Variant>& variants, GridReport* grid,
             ObsCollection* obs) {
  struct CellSpec {
    const Variant* variant;
    uint32_t qd, ch, cache;
  };
  std::vector<CellSpec> cells;
  std::vector<GridCell> grid_cells;
  for (const Variant& v : variants) {
    for (uint32_t ch : cfg.channels) {
      for (uint32_t cache : cfg.cache_pages) {
        for (uint32_t qd : cfg.queue_depths) {
          cells.push_back(CellSpec{&v, qd, ch, cache});
          GridCell cell;
          cell.keys = {v.device_label, FtlKindName(v.profile.ftl),
                       std::to_string(qd), std::to_string(ch),
                       cache == 0 ? "default" : std::to_string(cache)};
          grid_cells.push_back(std::move(cell));
        }
      }
    }
  }

  // Fan out: unit i is repetition i % reps of cell i / reps. Units are
  // independent by construction (seeds derive from (cell, rep) only),
  // so any execution interleaving yields identical slots.
  size_t unit_count = cells.size() * cfg.reps;
  auto produced = RunUnits<UnitResult>(
      unit_count, cfg.jobs, [&](size_t i) -> StatusOr<UnitResult> {
        const CellSpec& c = cells[i / cfg.reps];
        return RunUnit(flags, cfg, *c.variant, c.qd, c.ch, c.cache,
                       static_cast<uint32_t>(i % cfg.reps), obs->enabled);
      });
  if (!produced.ok()) {
    std::fprintf(stderr, "%s\n", produced.status().ToString().c_str());
    return false;
  }

  // Canonical fold: cell-major, rep-minor -- exactly the order the
  // serial loop used, regardless of which worker finished first.
  for (size_t c = 0; c < cells.size(); ++c) {
    FoldCell(cfg, produced->data() + c * cfg.reps, &grid_cells[c], obs);
    grid->Add(std::move(grid_cells[c]));
  }
  return true;
}

/// When the queue-depth axis was swept, prints each cell's throughput
/// speedup over the lowest-qd cell of its (device, FTL, channels,
/// cache) group -- the bounded-controller model keeps this strictly
/// below channels x at high depth.
void PrintQueueDepthSpeedups(const GridReport& grid, uint32_t base_qd) {
  bool any = false;
  for (const GridCell& c : grid.cells()) {
    if (c.keys[2] == std::to_string(base_qd)) continue;
    // Locate the base cell of this group.
    const GridCell* base = nullptr;
    for (const GridCell& b : grid.cells()) {
      if (b.keys[2] == std::to_string(base_qd) && b.keys[0] == c.keys[0] &&
          b.keys[1] == c.keys[1] && b.keys[3] == c.keys[3] &&
          b.keys[4] == c.keys[4]) {
        base = &b;
        break;
      }
    }
    if (base == nullptr || base->IosPerSec() <= 0) continue;
    if (!any) {
      std::printf("  Queue-depth speedup (IOs/s vs qd=%u):\n", base_qd);
      any = true;
    }
    std::printf("    %-18s %-18s ch=%-4s cache=%-8s qd=%-4s %5.2fx\n",
                c.keys[0].c_str(), c.keys[1].c_str(), c.keys[3].c_str(),
                c.keys[4].c_str(), c.keys[2].c_str(),
                c.IosPerSec() / base->IosPerSec());
  }
  if (any) std::printf("\n");
}

std::vector<DeviceProfile> SelectProfiles(const std::string& spec) {
  if (spec == "all") return AllProfiles();
  if (spec.empty() || spec == "representative") {
    return RepresentativeProfiles();
  }
  std::vector<DeviceProfile> out;
  for (const std::string& id : SplitCommas(spec)) {
    auto p = ProfileById(id);
    if (!p.ok()) {
      std::fprintf(stderr, "unknown device '%s'\n", id.c_str());
      std::exit(2);
    }
    out.push_back(std::move(*p));
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);

  SweepConfig cfg;
  cfg.trace_path = flags.GetString("trace", "");
  cfg.stream = flags.GetBool("stream", false);

  std::string timing = flags.GetString("timing", "closed");
  if (timing == "closed") {
    cfg.replay.timing = ReplayTiming::kClosedLoop;
  } else if (timing == "original") {
    cfg.replay.timing = ReplayTiming::kOriginal;
  } else if (timing == "scaled") {
    cfg.replay.timing = ReplayTiming::kScaled;
    cfg.replay.time_scale = flags.GetDouble("scale", 1.0);
  } else {
    std::fprintf(stderr, "unknown --timing=%s\n", timing.c_str());
    return Usage();
  }
  cfg.replay.rescale_lba = true;
  int64_t io_ignore = flags.GetInt("io_ignore", -1);
  cfg.replay.io_ignore = io_ignore < 0
                             ? ReplayOptions::kAutoIoIgnore
                             : static_cast<uint32_t>(io_ignore);
  if (cfg.stream) {
    if (cfg.trace_path.empty()) {
      std::fprintf(stderr, "--stream needs --trace=<file>\n");
      return Usage();
    }
    // O(1)-memory cells cannot phase-derive io_ignore.
    cfg.replay.keep_samples = false;
    if (io_ignore < 0) cfg.replay.io_ignore = 0;
  }
  // Sweep axes: the list flags override their single-value siblings so
  // existing invocations keep working unchanged.
  cfg.queue_depths =
      flags.GetUint32List("queue_depths", flags.GetUint32("queue_depth", 0));
  cfg.channels =
      flags.GetUint32List("channels_list", flags.GetUint32("channels", 0));
  cfg.cache_pages = flags.GetUint32List("cache_pages", 0);
  cfg.controller_us = flags.GetDouble("controller_us", -1);
  cfg.pipelined = flags.GetBool("pipelined", true);
  cfg.reps = flags.GetUint32("reps", 1);
  if (cfg.reps == 0) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return Usage();
  }
  cfg.base_seed = SeedFromFlags(flags);
  cfg.jobs = JobsFromFlags(flags);
  cfg.calendar_shards = flags.GetUint32("calendar_shards", 1);
  if (cfg.calendar_shards == 0) {
    std::fprintf(stderr, "--calendar_shards must be >= 1\n");
    return Usage();
  }

  std::string sweep = flags.GetString("sweep", "both");
  if (sweep != "devices" && sweep != "ftls" && sweep != "both") {
    std::fprintf(stderr, "unknown --sweep=%s\n", sweep.c_str());
    return Usage();
  }

  // Describe the workload once, and in materialized mode parse the
  // trace file once here rather than per cell.
  std::string workload = cfg.trace_path;
  if (workload.empty()) {
    auto synth = SyntheticSourceFromFlags(flags);
    if (!synth.ok()) {
      std::fprintf(stderr, "%s\n", synth.status().ToString().c_str());
      return 2;
    }
    workload = (*synth)->meta().source + " (synthetic)";
  } else if (!cfg.stream) {
    auto trace = ReadTrace(cfg.trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace read failed: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    cfg.materialized = std::move(*trace);
  }
  size_t cells_per_variant = cfg.queue_depths.size() * cfg.channels.size() *
                             cfg.cache_pages.size();
  std::printf("Trace-driven design-space exploration: %s\n",
              workload.c_str());
  std::printf(
      "  timing=%s%s, %zu cell(s) per variant "
      "(qd x channels x cache; qd 0 = synchronous), LBA-rescaled\n",
      ReplayTimingName(cfg.replay.timing),
      cfg.stream ? ", streamed (stats-only)" : "", cells_per_variant);
  if (cfg.controller_us >= 0 || !cfg.pipelined) {
    std::printf(
        "  bounded controller: controller_us=%.0f pipelined=%s "
        "(serialized controller stage caps high-qd speedup)\n",
        cfg.controller_us >= 0 ? cfg.controller_us : 0.0,
        cfg.pipelined ? "true" : "false");
  }
  if (cfg.reps > 1) {
    if (cfg.trace_path.empty()) {
      std::printf(
          "  reps=%u per cell (rep r: prep seed offset r, workload seed "
          "%u+r); mean +/- 95%% CI across rep means, percentiles from "
          "merged t-digest sketches\n",
          cfg.reps, cfg.base_seed);
    } else {
      // Trace reps replay the identical events: the CI covers
      // device-preparation variance only, not workload variability.
      std::printf(
          "  reps=%u per cell (rep r: prep seed offset r; identical "
          "trace workload each rep, CI covers preparation variance); "
          "mean +/- 95%% CI across rep means, percentiles from merged "
          "t-digest sketches\n",
          cfg.reps);
    }
  }
  std::printf("\n");

  const std::vector<std::string> axes = {"device", "FTL", "qd", "ch",
                                         "cache"};
  uint32_t base_qd = *std::min_element(cfg.queue_depths.begin(),
                                       cfg.queue_depths.end());
  std::string csv;

  std::string metrics_out = flags.GetString("metrics_out", "");
  ObsCollection obs;
  obs.explain_spec = flags.GetString("explain", "");
  if (obs.explain_spec.empty() && flags.GetBool("explain", false)) {
    obs.explain_spec = "*";  // bare --explain: first cell of the sweep
  }
  obs.enabled = !metrics_out.empty() || !obs.explain_spec.empty();
  obs.trace_out = flags.GetString("trace_out", "");
  // The traced cell follows --explain when given; otherwise the first
  // cell of the sweep.
  obs.trace_spec = obs.explain_spec.empty() ? "*" : obs.explain_spec;
  cfg.span_config.head_limit = flags.GetUint32("span_head", 4096);
  cfg.span_config.tail_k = flags.GetUint32("span_tail", 64);
  // Spans feed both the Chrome export and the span.* stage aggregates
  // in --explain / --metrics_out, so any of the three turns them on.
  cfg.spans_enabled = obs.enabled || !obs.trace_out.empty();
  // uflip-lint: allow(wall-clock) -- manifest wall_seconds provenance
  auto wall_start = std::chrono::steady_clock::now();

  if (sweep != "ftls") {
    std::vector<Variant> variants;
    for (DeviceProfile& profile :
         SelectProfiles(flags.GetString("profiles", "representative"))) {
      variants.push_back(Variant{profile.id, std::move(profile)});
    }
    GridReport grid(axes);
    if (!RunGrid(flags, cfg, variants, &grid, &obs)) return 1;
    std::printf("%s\n",
                grid.Render("Device sweep (Table 2 profiles, one workload):")
                    .c_str());
    if (cfg.queue_depths.size() > 1) {
      PrintQueueDepthSpeedups(grid, base_qd);
    }
    csv += grid.ToCsv(/*header=*/true);
  }

  if (sweep != "devices") {
    // Same chip geometry, controller and cache settings; only the FTL
    // architecture changes.
    std::string base_id = flags.GetString("ftl_base", "mtron");
    auto base = ProfileById(base_id);
    if (!base.ok()) {
      std::fprintf(stderr, "unknown --ftl_base=%s\n", base_id.c_str());
      return 2;
    }
    std::vector<Variant> variants;
    for (FtlKind kind :
         {FtlKind::kPageMapping, FtlKind::kBast, FtlKind::kFast}) {
      DeviceProfile profile = *base;
      profile.ftl = kind;
      variants.push_back(Variant{base_id + " geometry", std::move(profile)});
    }
    GridReport grid(axes);
    if (!RunGrid(flags, cfg, variants, &grid, &obs)) return 1;
    std::printf(
        "%s\n",
        grid.Render("FTL sweep (fixed geometry/controller: " + base_id +
                    "):")
            .c_str());
    if (cfg.queue_depths.size() > 1) {
      PrintQueueDepthSpeedups(grid, base_qd);
    }
    csv += grid.ToCsv(/*header=*/csv.empty());
  }

  std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --csv=%s\n", csv_path.c_str());
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("grid exported: %s\n", csv_path.c_str());
  }

  if (!obs.explain_spec.empty()) {
    if (obs.explain_found) {
      std::printf("Cell %s (rep 1 of %u):\n", obs.explain_label.c_str(),
                  cfg.reps);
      std::string timelines = RenderUtilizationTimelines(obs.explain);
      if (timelines.empty()) {
        std::printf(
            "  (no utilization timelines -- synchronous cells record "
            "device.busy_us only when qd=0)\n");
      } else {
        std::printf("%s", timelines.c_str());
      }
      std::string stages = RenderStageBreakdown(obs.explain);
      if (!stages.empty()) std::printf("%s", stages.c_str());
      std::printf("\n");
    } else {
      std::fprintf(stderr, "--explain=%s matched no cell\n",
                   obs.explain_spec.c_str());
    }
  }

  if (!obs.trace_out.empty()) {
    if (!obs.trace_found) {
      std::fprintf(stderr, "--trace_out: spec %s matched no cell\n",
                   obs.trace_spec.c_str());
      return 1;
    }
    ChromeTraceOptions topt;
    topt.process_name = obs.trace_label;
    topt.serialized_controller = obs.trace_serialized_controller;
    if (!WriteChromeTrace(obs.trace_spans, obs.trace_out, topt)) {
      std::fprintf(stderr, "cannot write --trace_out=%s\n",
                   obs.trace_out.c_str());
      return 1;
    }
    if (obs.trace_out != "-") {
      std::printf("span trace: %s (cell %s rep 1, %" PRIu64
                  " spans recorded; captured first %zu + slowest %zu)\n",
                  obs.trace_out.c_str(), obs.trace_label.c_str(),
                  obs.trace_spans.recorded, obs.trace_spans.head.size(),
                  obs.trace_spans.tail.size());
    }
  }

  if (!metrics_out.empty()) {
    RunManifest manifest;
    manifest.tool = "ftl_compare";
    for (const std::string& arg : flags.args()) {
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        manifest.AddFlag(arg.substr(2), "true");
      } else {
        manifest.AddFlag(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
    manifest.seed = cfg.base_seed;
    manifest.jobs = cfg.jobs;
    manifest.calendar_shards = cfg.calendar_shards;
    manifest.events = obs.events;
    manifest.wall_seconds =
        // uflip-lint: allow(wall-clock) -- manifest wall_seconds provenance
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    manifest.sim_makespan_us = obs.sim_makespan_us;
    manifest.span_trace_enabled = cfg.spans_enabled;
    manifest.span_config = cfg.span_config;
    manifest.metrics = std::move(obs.merged);
    if (!manifest.WriteTo(metrics_out)) {
      std::fprintf(stderr, "cannot write --metrics_out=%s\n",
                   metrics_out.c_str());
      return 1;
    }
    if (metrics_out != "-") {
      std::printf("run manifest: %s\n", metrics_out.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  return uflip::bench::Main(argc, argv);
}
