// Reproduces Table 2: the eleven selected flash devices, with the
// simulator architecture chosen for each (the substitution for physical
// hardware) and the simulated capacity.
//   ./table2_devices
#include "bench/bench_util.h"

using namespace uflip;

int main() {
  std::printf("Table 2: Selected flash devices (simulated profiles)\n\n");
  std::printf("%-2s %-10s %-18s %-10s %6s %8s   %-18s %s\n", "",
              "Brand", "Model", "Type", "Size", "Price", "FTL model",
              "Sim capacity");
  std::printf("%s\n", std::string(96, '-').c_str());
  for (const auto& p : AllProfiles()) {
    std::printf("%-2s %-10s %-18s %-10s %5lluGB %7.0f$   %-18s %s\n",
                p.representative ? "->" : "", p.brand.c_str(),
                p.model.c_str(), p.type.c_str(),
                static_cast<unsigned long long>(p.advertised_capacity_bytes /
                                                kGiB),
                p.price_usd, FtlKindName(p.ftl),
                FormatSize(p.sim_capacity_bytes).c_str());
  }
  std::printf(
      "\nArrow (->): the seven representative devices whose results the "
      "paper presents.\n");
  return 0;
}
