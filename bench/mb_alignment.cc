// Alignment micro-benchmark (Section 5.2, "Other Results"): unaligned
// IO requests degrade performance significantly on some devices; the
// paper's Samsung SSD wants 16KB alignment (random IOs go from 18ms to
// 32ms when misaligned).
//   ./mb_alignment [--device=samsung]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kAlignment, "samsung",
      "IOShift varies from 512B to IOSize; expect a step penalty for "
      "shifts that break the device's mapping granularity.");
}
