// Shared driver for the "other results" micro-benchmark binaries
// (Section 5.2): runs one of the nine micro-benchmarks on a device and
// prints the response-time series per baseline.
#ifndef UFLIP_BENCH_MB_COMMON_H_
#define UFLIP_BENCH_MB_COMMON_H_

#include "bench/bench_util.h"
#include "src/core/microbench.h"

namespace uflip {
namespace bench {

inline int RunMicroBenchMain(int argc, char** argv, MicroBench mb,
                             const char* default_device,
                             const char* header_note) {
  Flags flags(argc, argv);
  std::string id = flags.GetString("device", default_device);

  auto dev = MakeDeviceWithState(id);
  InterRunPause(dev.get());

  MicroBenchConfig cfg;
  cfg.io_count = flags.GetUint32("io_count", 256);
  cfg.io_ignore = flags.GetUint32("io_ignore", 64);
  cfg.target_size = dev->capacity_bytes() / 2;
  auto exps = RunMicroBench(dev.get(), mb, cfg);
  if (!exps.ok()) {
    std::fprintf(stderr, "failed: %s\n", exps.status().ToString().c_str());
    return 1;
  }

  std::printf("%s micro-benchmark on %s\n%s\n\n", MicroBenchName(mb),
              id.c_str(), header_note);
  for (const auto& e : *exps) {
    std::printf("%s  (varying %s; mean rt in ms, running phase)\n",
                e.name.c_str(), e.param_name.c_str());
    std::printf("  %14s %12s %12s %12s %12s\n", e.param_name.c_str(), "mean",
                "p50", "p95", "max");
    for (const auto& p : e.points) {
      RunStats s = p.run.Stats();
      std::printf("  %14.0f %12.2f %12.2f %12.2f %12.2f\n", p.param,
                  s.mean_us / 1000.0, s.p50_us / 1000.0, s.p95_us / 1000.0,
                  s.max_us / 1000.0);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace bench
}  // namespace uflip

#endif  // UFLIP_BENCH_MB_COMMON_H_
