// Mix micro-benchmark (Section 5.2): the six pairings of baseline
// patterns, interleaved at Ratio:1. The paper observes that mixes do not
// significantly affect the overall cost of the workloads (unlike on
// hard disks).
//   ./mb_mix [--device=memoright]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kMix, "memoright",
      "Ratio varies 1..64 for the six baseline pairings; compare the "
      "mean to the ratio-weighted baseline costs.");
}
