// Bursts micro-benchmark (Section 3.2 #9): a fixed 100ms pause between
// groups of Burst IOs; studies how deferred (asynchronous) work
// accumulates across bursts.
//   ./mb_bursts [--device=mtron]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kBursts, "mtron",
      "Burst varies 10..640 IOs per burst with a fixed 100ms pause "
      "between bursts.");
}
