// Evaluates the paper's seven design hints (Section 5.3) against a
// simulated device and prints the measured evidence for each.
//   ./hints_report [--device=memoright]
#include "bench/bench_util.h"
#include "src/core/hints.h"
#include "src/core/table3.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "memoright");

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());

  Table3Config tcfg;
  tcfg.io_count = flags.GetUint32("io_count", 256);
  auto row = ExtractTable3Row(dev.get(), tcfg);
  if (!row.ok()) {
    std::fprintf(stderr, "characterization failed: %s\n",
                 row.status().ToString().c_str());
    return 1;
  }

  MicroBenchConfig cfg;
  cfg.io_count = 192;
  cfg.target_size = dev->capacity_bytes() / 4;
  auto report = EvaluateHints(dev.get(), *row, cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "hint evaluation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Render().c_str());
  return 0;
}
