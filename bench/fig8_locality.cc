// Reproduces Figure 8: "Locality for Samsung, Memoright and Mtron" --
// the response time of random writes relative to sequential writes as
// TargetSize grows from 1MB to 128MB (log x-axis). Expected shape:
// random writes within a small area cost nearly the same as sequential
// writes; beyond a device-specific locality area the relative cost
// climbs steeply.
//
//   ./fig8_locality [--devices=samsung,memoright,mtron]
#include "bench/bench_util.h"
#include "src/core/microbench.h"
#include "src/report/ascii_chart.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string list = flags.GetString("devices", "samsung,memoright,mtron");
  uint32_t io_count = flags.GetUint32("io_count", 256);

  std::vector<std::string> ids = bench::SplitCommas(list);

  std::printf(
      "Figure 8: Locality -- RW response time relative to SW vs "
      "TargetSize (MB)\n\n");
  std::printf("%12s", "TargetSize");
  std::vector<uint64_t> targets;
  for (uint64_t ts = 1 * kMiB; ts <= 128 * kMiB; ts *= 2) {
    targets.push_back(ts);
  }
  for (const auto& id : ids) std::printf(" %16s", id.c_str());
  std::printf("\n");

  std::vector<std::vector<double>> rel(ids.size());
  for (size_t d = 0; d < ids.size(); ++d) {
    auto dev = bench::MakeDeviceWithState(ids[d]);
    bench::InterRunPause(dev.get());
    // SW reference at 32KB.
    PatternSpec sw = PatternSpec::SequentialWrite(32 * 1024, 0,
                                                  dev->capacity_bytes() / 2);
    sw.io_count = io_count;
    sw.io_ignore = 32;
    auto sw_run = ExecuteRun(dev.get(), sw);
    if (!sw_run.ok()) {
      std::fprintf(stderr, "SW failed on %s\n", ids[d].c_str());
      return 1;
    }
    double sw_ms = sw_run->Stats().mean_us / 1000.0;
    for (uint64_t ts : targets) {
      bench::InterRunPause(dev.get(), 1000000);
      PatternSpec rw = PatternSpec::RandomWrite(32 * 1024, 0, ts);
      rw.io_count = io_count;
      rw.io_ignore = 32;
      auto run = ExecuteRun(dev.get(), rw);
      if (!run.ok()) {
        std::fprintf(stderr, "RW failed on %s\n", ids[d].c_str());
        return 1;
      }
      rel[d].push_back(run->Stats().mean_us / 1000.0 / sw_ms);
    }
  }

  for (size_t t = 0; t < targets.size(); ++t) {
    std::printf("%12s", FormatSize(targets[t]).c_str());
    for (size_t d = 0; d < ids.size(); ++d) {
      std::printf(" %16.1f", rel[d][t]);
    }
    std::printf("\n");
  }

  std::vector<ChartSeries> series;
  const char glyphs[] = {'S', 'M', 'T', 'o'};
  for (size_t d = 0; d < ids.size(); ++d) {
    ChartSeries cs;
    cs.name = ids[d];
    cs.glyph = glyphs[d % 4];
    for (size_t t = 0; t < targets.size(); ++t) {
      cs.x.push_back(static_cast<double>(targets[t]) /
                     static_cast<double>(kMiB));
      cs.y.push_back(rel[d][t]);
    }
    series.push_back(std::move(cs));
  }
  ChartOptions copt;
  copt.title = "\nRW cost relative to SW vs TargetSize (MB, log x)";
  copt.log_x = true;
  std::printf("%s\n", RenderChart(series, copt).c_str());
  return 0;
}
