// Device-state enforcement comparison (Section 4.1 / 5.1): random-state
// enforcement (random writes of random size over the whole device) is
// slower to establish than sequential-state enforcement but far more
// stable -- a batch of random writes barely changes random-state RW
// behaviour while it visibly disturbs a sequential state. Reproduces
// the Samsung out-of-the-box anecdote: RW on a fresh (never-written)
// device is much cheaper than after the device has been filled.
//   ./mb_device_state [--device=samsung]
#include "bench/bench_util.h"
#include "src/core/methodology.h"

using namespace uflip;

namespace {

double MeasureRw(SimDevice* dev, uint32_t ios, uint64_t seed) {
  PatternSpec rw =
      PatternSpec::RandomWrite(32 * 1024, 0, dev->capacity_bytes());
  rw.io_count = ios;
  rw.seed = seed;
  auto run = ExecuteRun(dev, rw);
  if (!run.ok()) return -1;
  return run->Stats().mean_us / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "samsung");
  // Shared --seed base (bench_util): the fixed per-measurement offsets
  // keep the streams distinct; the base shifts them all together.
  uint64_t seed = bench::SeedFromFlags(flags);
  auto profile = ProfileById(id);
  if (!profile.ok()) return 2;

  std::printf("Device state enforcement study, %s (Section 4.1)\n\n",
              id.c_str());

  // Out of the box: no state enforcement at all.
  {
    auto dev = CreateSimDevice(*profile);
    double rw = MeasureRw(dev->get(), 256, seed + 2);
    std::printf("out-of-the-box RW (32KB): %8.1f ms\n", rw);
  }
  // Random state.
  double random_enforce_s = 0;
  double random_rw1 = 0, random_rw2 = 0;
  {
    auto dev = CreateSimDevice(*profile);
    auto rep = EnforceRandomState(dev->get());
    random_enforce_s = rep->duration_us / 1e6;
    random_rw1 = MeasureRw(dev->get(), 256, seed + 4);
    // Disturb with more random writes, re-measure: stability check.
    (void)MeasureRw(dev->get(), 1024, seed + 6);
    random_rw2 = MeasureRw(dev->get(), 256, seed + 8);
  }
  // Sequential state.
  double seq_enforce_s = 0;
  double seq_rw1 = 0, seq_rw2 = 0;
  {
    auto dev = CreateSimDevice(*profile);
    auto rep = EnforceSequentialState(dev->get());
    seq_enforce_s = rep->duration_us / 1e6;
    seq_rw1 = MeasureRw(dev->get(), 256, seed + 4);
    (void)MeasureRw(dev->get(), 1024, seed + 6);
    seq_rw2 = MeasureRw(dev->get(), 256, seed + 8);
  }

  std::printf("\n%-22s %14s %14s %14s\n", "state", "enforce time",
              "RW after", "RW after churn");
  std::printf("%-22s %13.1fs %13.1fms %13.1fms\n", "random (Section 4.1)",
              random_enforce_s, random_rw1, random_rw2);
  std::printf("%-22s %13.1fs %13.1fms %13.1fms\n", "sequential",
              seq_enforce_s, seq_rw1, seq_rw2);
  std::printf(
      "\nExpected: random-state RW stable across churn; out-of-the-box RW "
      "deceptively cheap\n(the paper's Samsung anecdote: ~1ms fresh vs "
      "~8ms-class after filling the device).\n");
  return 0;
}
