// Shared plumbing for the reproduction benches: flag parsing, device
// instantiation, random-state enforcement with progress, inter-run
// pauses, and CSV dumping.
#ifndef UFLIP_BENCH_BENCH_UTIL_H_
#define UFLIP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/methodology.h"
#include "src/run/parallel_exec.h"
#include "src/run/runner.h"
#include "src/device/profiles.h"
#include "src/device/sim_device.h"
#include "src/util/units.h"

namespace uflip {
namespace bench {

/// Splits "a,b,c" into its non-empty elements (shared by the list
/// flags, profile selections and id lists across the benches).
inline std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > start) out.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Minimal --key=value flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string GetString(const std::string& key,
                        const std::string& def) const {
    std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return def;
  }

  int64_t GetInt(const std::string& key, int64_t def) const {
    std::string v = GetString(key, "");
    return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double def) const {
    std::string v = GetString(key, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  /// --key=N as an unsigned count (queue depths, channels, IO counts).
  /// Rejects negative, non-numeric and out-of-range values with a clear
  /// error instead of letting a "-1" wrap around to ~4.29e9 and hang
  /// the run.
  uint32_t GetUint32(const std::string& key, uint32_t def) const {
    std::string v = GetString(key, "");
    return v.empty() ? def : ParseUint32(key, v);
  }

  /// Comma-separated variant ("--key=1,2,4"); absent/empty -> {def}.
  /// Every element is validated like GetUint32.
  std::vector<uint32_t> GetUint32List(const std::string& key,
                                      uint32_t def) const {
    std::string v = GetString(key, "");
    if (v.empty()) return {def};
    std::vector<uint32_t> out;
    for (const std::string& item : SplitCommas(v)) {
      out.push_back(ParseUint32(key, item));
    }
    if (out.empty()) {
      std::fprintf(stderr, "--%s: empty list\n", key.c_str());
      std::exit(2);
    }
    return out;
  }

  bool GetBool(const std::string& key, bool def) const {
    // A bare "--key" (no value) is an enabled switch.
    for (const auto& a : args_) {
      if (a == "--" + key) return true;
    }
    std::string v = GetString(key, def ? "true" : "false");
    return v == "true" || v == "1";
  }

  /// The raw command-line arguments, verbatim (run-manifest
  /// provenance: a manifest records exactly what was passed).
  const std::vector<std::string>& args() const { return args_; }

 private:
  static uint32_t ParseUint32(const std::string& key,
                              const std::string& value) {
    char* end = nullptr;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "--%s=%s: not a number\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    }
    if (v < 0) {
      std::fprintf(stderr, "--%s=%s: must be >= 0\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    }
    if (v > static_cast<long long>(UINT32_MAX)) {
      std::fprintf(stderr, "--%s=%s: larger than %u\n", key.c_str(),
                   value.c_str(), UINT32_MAX);
      std::exit(2);
    }
    return static_cast<uint32_t>(v);
  }

  std::vector<std::string> args_;
};

/// The shared --seed flag (validated like every count flag): the base
/// seed of a bench's workload. Repeated experiments derive the seed of
/// repetition r as `seed + r` (ftl_compare --reps), so any single
/// repetition is reproducible on its own by passing the derived seed
/// with --reps=1.
inline uint32_t SeedFromFlags(const Flags& flags, uint32_t def = 1) {
  return flags.GetUint32("seed", def);
}

// ---------------------------------------------------------------------
// Seed-stream derivation (audited for the parallel execution core)
// ---------------------------------------------------------------------
// Every Rng stream a bench run consumes is derived from the unit's
// *coordinates* -- the base --seed, the repetition index, and which
// purpose the stream serves -- and from nothing else. In particular a
// worker-thread id NEVER enters the derivation: a unit scheduled on
// worker 3 of a --jobs=8 run must draw exactly the streams it draws
// under --jobs=1, or parallel runs stop being byte-identical to serial
// ones. When adding a new parallel dimension, extend the coordinates
// (and this map), never the worker.
//
// Purposes are spaced into disjoint 2^32-wide bands, so a "+ rep"
// offset (rep is a uint32) can never walk one purpose's stream into
// another's, and no band below can collide with any user-chosen
// --seed:
//
//   band 0 [0, 2^32):  synthetic workload streams -- the only band a
//                      flag can reach: generator seed = --seed + rep
//                      (SyntheticSourceFromFlags).
//   band 1 [2^32, 2*2^32):  device preparation (random state
//                      enforcement): kPrepSeedBand + rep.
//   band 2 [2*2^32, 3*2^32):  settling-pass random writes:
//                      kSettleSeedBand + rep. (Historically this was
//                      `1 + rep` -- bit-identical to the default
//                      workload stream `--seed=1 + rep` of the same
//                      rep, i.e. the settling traffic and the measured
//                      workload drew the same xoshiro sequence. The
//                      banding fixes that silent reuse.)
//
// Grid sweeps intentionally give every cell of a repetition the *same*
// streams (cells must see identical preparation and workload to be
// comparable), so no per-cell term appears above. Units that should be
// decorrelated across cells (perf_tracker's throughput legs) offset
// the base seed per cell instead.
//
// This map is machine-enforced: tools/lint/uflip_lint's `seed-band`
// rule rejects literal seeds and raw --seed flag reads in bench/, so
// every derivation flows through SeedFromFlags or the band constants
// below (see "Static analysis & linting" in README.md).
inline constexpr uint64_t kPrepSeedBand = (1ULL << 32) | 0xF1A5;
inline constexpr uint64_t kSettleSeedBand = (2ULL << 32) | 0xF1A5;

/// The shared --jobs flag: worker threads for the parallel execution
/// core (src/run/parallel_exec.h). Defaults to hardware concurrency;
/// 0, negative and malformed values are rejected with exit 2 like the
/// other count flags. Results are byte-identical for every value.
inline unsigned JobsFromFlags(const Flags& flags) {
  if (flags.GetString("jobs", "").empty()) return DefaultJobs();
  uint32_t jobs = flags.GetUint32("jobs", 1);
  if (jobs == 0) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    std::exit(2);
  }
  return jobs;
}

/// Creates a simulated device from a full profile and enforces the
/// random initial state (Section 4.1). capacity 0 = profile default;
/// channels_override > 0 re-stripes the flash array over that many
/// channels (for multi-queue experiments; the Table 2 profiles fold
/// parallelism into page timings and use one channel). The profile
/// overload lets sweeps (ftl_compare) prepare ad-hoc variants -- e.g.
/// the same geometry under a different FTL -- through the exact
/// preparation every stock device gets. prep_seed_offset shifts the
/// state-enforcement and settling seeds inside their bands (see
/// "Seed-stream derivation" above; repetition r of a replicated cell
/// passes r, so each rep runs on an independently-prepared but
/// reproducible device; 0 = the default preparation).
inline std::unique_ptr<SimDevice> MakeDeviceWithState(
    DeviceProfile profile, uint64_t capacity = 0, bool verbose = true,
    uint32_t channels_override = 0, uint64_t prep_seed_offset = 0) {
  if (channels_override > 0) profile.channels = channels_override;
  auto dev = CreateSimDevice(profile, nullptr, capacity);
  if (!dev.ok()) {
    std::fprintf(stderr, "device creation failed: %s\n",
                 dev.status().ToString().c_str());
    std::exit(2);
  }
  const std::string& profile_id = profile.id;
  if (verbose) {
    std::fprintf(stderr, "[%s] enforcing random device state (%s)...\n",
                 profile_id.c_str(),
                 FormatSize((*dev)->capacity_bytes()).c_str());
  }
  StateEnforcementOptions opts;
  opts.max_io_bytes = 128 * 1024;
  opts.seed = kPrepSeedBand + prep_seed_offset;
  auto report = EnforceRandomState(dev->get(), opts);
  if (!report.ok()) {
    std::fprintf(stderr, "state enforcement failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(2);
  }
  if (verbose) {
    std::fprintf(stderr,
                 "[%s] state enforced: %llu IOs, %s written, %.1fs of "
                 "device time\n",
                 profile_id.c_str(),
                 static_cast<unsigned long long>(report->ios),
                 FormatSize(report->bytes_written).c_str(),
                 report->duration_us / 1e6);
  }
  // Settling pass: the paper's preparation runs the four baseline
  // patterns with large IOCount to measure the start-up phase and
  // period (Section 5.1) before any micro-benchmark; that traffic also
  // drains the enforcement-era content of hybrid FTL log regions. We
  // reproduce it with a short baseline pass over a scratch area at the
  // end of the device.
  {
    uint64_t cap = (*dev)->capacity_bytes();
    uint64_t scratch = cap / 4;
    PatternSpec rw = PatternSpec::RandomWrite(32 * 1024, cap - scratch,
                                              scratch);
    rw.seed = kSettleSeedBand + prep_seed_offset;
    rw.io_count = 256;
    auto r1 = ExecuteRun(dev->get(), rw);
    // The sequential pass runs last and long enough to cycle the
    // largest log region (16MB) twice, so hybrid FTLs reach their
    // sequential steady state.
    PatternSpec sw = PatternSpec::SequentialWrite(32 * 1024, cap - scratch,
                                                  scratch);
    sw.io_count = 1536;
    auto r2 = ExecuteRun(dev->get(), sw);
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "settling pass failed\n");
      std::exit(2);
    }
    (*dev)->virtual_clock()->SleepUs(5000000);
  }
  return std::move(*dev);
}

/// Looks up `profile_id` and prepares it as above.
inline std::unique_ptr<SimDevice> MakeDeviceWithState(
    const std::string& profile_id, uint64_t capacity = 0,
    bool verbose = true, uint32_t channels_override = 0,
    uint64_t prep_seed_offset = 0) {
  auto profile = ProfileById(profile_id);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown device '%s'\n", profile_id.c_str());
    std::exit(2);
  }
  return MakeDeviceWithState(std::move(*profile), capacity, verbose,
                             channels_override, prep_seed_offset);
}

/// Simulated inter-run pause (lets asynchronous GC drain, Section 4.3).
inline void InterRunPause(SimDevice* dev, uint64_t pause_us = 5000000) {
  dev->virtual_clock()->SleepUs(pause_us);
}

/// The seven representative device ids, in Table 3 order.
inline std::vector<std::string> RepresentativeIds() {
  std::vector<std::string> ids;
  for (const auto& p : RepresentativeProfiles()) ids.push_back(p.id);
  return ids;
}

}  // namespace bench
}  // namespace uflip

#endif  // UFLIP_BENCH_BENCH_UTIL_H_
