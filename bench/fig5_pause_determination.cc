// Reproduces Figure 5: "Pause determination for Mtron" -- sequential
// reads, a batch of random writes, then sequential reads again. On
// devices with deferred reclamation (Mtron/Memoright class) the random
// writes keep affecting the reads for thousands of IOs (~2.5s on the
// paper's Mtron); the recommended inter-run pause overestimates that
// lingering effect. On every other device the reads recover immediately
// and the conservative 1s floor is used.
//
//   ./fig5_pause_determination [--device=mtron]
#include "bench/bench_util.h"
#include "src/core/methodology.h"
#include "src/report/ascii_chart.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "mtron");

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());

  PauseCalibrationOptions opts;
  opts.sr_ios = flags.GetUint32("sr_ios", 5000);
  opts.rw_ios = flags.GetUint32("rw_ios", 2000);
  opts.target_size = dev->capacity_bytes() / 4;
  auto calib = CalibratePause(dev.get(), opts);
  if (!calib.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calib.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 5: pause determination, %s (SR ; RW ; SR)\n\n",
              id.c_str());
  std::vector<double> rt_ms(calib->trace_rt_us.size());
  for (size_t i = 0; i < rt_ms.size(); ++i) {
    rt_ms[i] = calib->trace_rt_us[i] / 1000.0;
  }
  ChartOptions copt;
  copt.title = "response time per IO (log y, ms); batches: SR | RW | SR";
  copt.log_y = true;
  copt.x_label = "IO number";
  copt.y_label = "rt (ms)";
  std::printf("%s\n", RenderTrace(rt_ms, copt).c_str());

  std::printf("batches: SR %u IOs | RW %u IOs | SR %u IOs\n",
              calib->sr1_count, calib->rw_count,
              static_cast<uint32_t>(calib->trace_rt_us.size()) -
                  calib->sr1_count - calib->rw_count);
  std::printf("lingering effect: %u sequential reads affected (%.2f s)\n",
              calib->affected_reads, calib->lingering_us / 1e6);
  std::printf("recommended inter-run pause: %.1f s\n",
              static_cast<double>(calib->recommended_pause_us) / 1e6);
  return 0;
}
