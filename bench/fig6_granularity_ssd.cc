// Reproduces Figure 6: "Granularity" for a high-end SSD (the paper's
// figure shows the Memoright/Mtron class): response time of SR/RR/SW/RW
// as IOSize grows from 0.5KB to 512KB. Expected shape: reads and
// sequential writes linear with a small latency; random writes much more
// expensive and dominated by merges; small random writes serviced faster
// (RAM buffering).
//
//   ./fig6_granularity_ssd [--device=memoright]
#include "bench/bench_util.h"
#include "src/core/microbench.h"
#include "src/report/ascii_chart.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "memoright");

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());

  MicroBenchConfig cfg;
  cfg.io_count = flags.GetUint32("io_count", 256);
  cfg.io_ignore = 64;
  cfg.target_size = dev->capacity_bytes();
  auto exps = RunMicroBench(dev.get(), MicroBench::kGranularity, cfg);
  if (!exps.ok()) {
    std::fprintf(stderr, "failed: %s\n", exps.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 6: Granularity for %s (rt in ms vs IO size in KB)\n\n",
              id.c_str());
  std::printf("%10s", "IOSize");
  for (const auto& e : *exps) {
    std::printf(" %10s", e.name.substr(e.name.find('/') + 1).c_str());
  }
  std::printf("\n");
  size_t n = exps->front().points.size();
  for (size_t i = 0; i < n; ++i) {
    std::printf("%10s",
                FormatSize(static_cast<uint64_t>(
                               exps->front().points[i].param)).c_str());
    for (const auto& e : *exps) {
      if (i < e.points.size()) {
        std::printf(" %10.2f", e.points[i].run.Stats().mean_us / 1000.0);
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }

  std::vector<ChartSeries> series;
  const char glyphs[] = {'s', 'r', 'W', 'X'};
  int gi = 0;
  for (const auto& e : *exps) {
    ChartSeries cs;
    cs.name = e.name.substr(e.name.find('/') + 1);
    cs.glyph = glyphs[gi++ % 4];
    for (const auto& p : e.points) {
      cs.x.push_back(p.param / 1024.0);
      cs.y.push_back(p.run.Stats().mean_us / 1000.0);
    }
    series.push_back(std::move(cs));
  }
  ChartOptions copt;
  copt.title = "\nresponse time (ms) vs IO size (KB)";
  copt.log_x = true;
  copt.log_y = true;
  std::printf("%s\n", RenderChart(series, copt).c_str());
  return 0;
}
