// Pause micro-benchmark (Table 3 col 5): pauses between IOs let
// asynchronous reclamation absorb random-write cost on high-end SSDs;
// the pause needed is about the average random-write response time, so
// total workload time does not improve (design hint 7).
//   ./mb_pause [--device=mtron]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kPause, "mtron",
      "Pause varies 0.1ms..25.6ms between consecutive IOs.");
}
