// Ablation bench: isolates the design choices DESIGN.md calls out by
// toggling one FTL knob at a time on a fixed substrate and measuring the
// four baselines. Shows which mechanism produces which Table 3 column:
//   * log-pool size       -> locality area & RW cost
//   * strict vs lenient   -> in-place / reverse pathology
//   * write-back cache    -> start-up phase & small-write absorption
//   * background flush    -> pause absorption
//   * FAST append points  -> partitioning limit
//   ./ablation_ftl
#include <functional>

#include "bench/bench_util.h"
#include "src/core/methodology.h"

using namespace uflip;

namespace {

struct Row {
  std::string name;
  double sw_ms, rw_ms, rw_local_ms, inplace_ms, rw_paused_ms;
};

StatusOr<Row> Measure(const DeviceProfile& profile, const std::string& name) {
  auto dev_or = CreateSimDevice(profile);
  if (!dev_or.ok()) return dev_or.status();
  SimDevice* dev = dev_or->get();
  auto enforce = EnforceRandomState(dev);
  if (!enforce.ok()) return enforce.status();
  // Drain hybrid log junk (see bench_util for rationale).
  PatternSpec drain = PatternSpec::SequentialWrite(
      32 * 1024, dev->capacity_bytes() / 2, dev->capacity_bytes() / 2);
  drain.io_count = 1024;
  UFLIP_RETURN_IF_ERROR(ExecuteRun(dev, drain).status());
  dev->virtual_clock()->SleepUs(5000000);

  Row row;
  row.name = name;
  auto mean = [&](PatternSpec s) -> StatusOr<double> {
    s.io_count = 256;
    s.io_ignore = 64;
    dev->virtual_clock()->SleepUs(2000000);
    auto run = ExecuteRun(dev, s);
    if (!run.ok()) return run.status();
    return run->Stats().mean_us / 1000.0;
  };
  uint64_t cap = dev->capacity_bytes();
  auto v = mean(PatternSpec::SequentialWrite(32 * 1024, 0, cap / 2));
  if (!v.ok()) return v.status();
  row.sw_ms = *v;
  v = mean(PatternSpec::RandomWrite(32 * 1024, 0, cap));
  if (!v.ok()) return v.status();
  row.rw_ms = *v;
  v = mean(PatternSpec::RandomWrite(32 * 1024, 0, 4 * kMiB));
  if (!v.ok()) return v.status();
  row.rw_local_ms = *v;
  {
    PatternSpec ip = PatternSpec::SequentialWrite(32 * 1024, 0, 128 * 1024);
    ip.lba = LbaFunction::kOrdered;
    ip.incr = 0;
    v = mean(ip);
    if (!v.ok()) return v.status();
    row.inplace_ms = *v;
  }
  {
    PatternSpec rp = PatternSpec::RandomWrite(32 * 1024, 0, cap);
    rp.time = TimeFunction::kPause;
    rp.pause_us = static_cast<uint64_t>(row.rw_ms * 1000.0);
    v = mean(rp);
    if (!v.ok()) return v.status();
    row.rw_paused_ms = *v;
  }
  return row;
}

void Print(const Row& r) {
  std::printf("%-28s %8.2f %9.2f %10.2f %10.2f %10.2f\n", r.name.c_str(),
              r.sw_ms, r.rw_ms, r.rw_local_ms, r.inplace_ms, r.rw_paused_ms);
}

}  // namespace

int main() {
  std::printf("FTL ablations (32KB IOs; ms)\n\n");
  std::printf("%-28s %8s %9s %10s %10s %10s\n", "variant", "SW", "RW",
              "RW@4MB", "in-place", "RW+pause");
  std::printf("%s\n", std::string(80, '-').c_str());

  // Base: the Memoright profile.
  DeviceProfile base = *ProfileById("memoright");
  base.id = "ablation";

  struct Variant {
    std::string name;
    std::function<void(DeviceProfile*)> mutate;
  };
  std::vector<Variant> variants = {
      {"memoright (baseline)", [](DeviceProfile*) {}},
      {"log pool 16 -> 4",
       [](DeviceProfile* p) { p->bast.log_blocks = 4; }},
      {"log pool 16 -> 64",
       [](DeviceProfile* p) { p->bast.log_blocks = 64; }},
      {"strict sequential logs",
       [](DeviceProfile* p) { p->bast.strict_sequential_log = true; }},
      {"no partial merges",
       [](DeviceProfile* p) { p->bast.partial_merge_supported = false; }},
      {"no write cache",
       [](DeviceProfile* p) { p->write_cache = false; }},
      {"no background flush",
       [](DeviceProfile* p) { p->cache.background_flush = false; }},
      {"cache 4MB -> 16MB",
       [](DeviceProfile* p) { p->cache.capacity_pages = 4096; }},
  };
  for (const auto& variant : variants) {
    DeviceProfile p = base;
    variant.mutate(&p);
    auto row = Measure(p, variant.name);
    if (!row.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name.c_str(),
                   row.status().ToString().c_str());
      continue;
    }
    Print(*row);
  }

  std::printf("\nFAST append points (Kingston DTHX base): partition limit\n");
  std::printf("%-28s %8s %9s\n", "variant", "SW@4part", "SW@16part");
  std::printf("%s\n", std::string(50, '-').c_str());
  for (uint32_t heads : {1u, 4u, 8u}) {
    DeviceProfile p = *ProfileById("kingston-dthx");
    p.id = "ablation";
    p.fast.append_points = heads;
    auto dev_or = CreateSimDevice(p);
    if (!dev_or.ok()) continue;
    SimDevice* dev = dev_or->get();
    if (!EnforceRandomState(dev).ok()) continue;
    PatternSpec drain = PatternSpec::SequentialWrite(
        32 * 1024, dev->capacity_bytes() / 2, dev->capacity_bytes() / 2);
    drain.io_count = 2048;
    if (!ExecuteRun(dev, drain).ok()) continue;
    double at4 = 0, at16 = 0;
    for (uint32_t parts : {4u, 16u}) {
      PatternSpec s = PatternSpec::SequentialWrite(32 * 1024, 0,
                                                   dev->capacity_bytes() / 2);
      s.lba = LbaFunction::kPartitioned;
      s.partitions = parts;
      s.io_count = 256;
      s.io_ignore = 64;
      auto run = ExecuteRun(dev, s);
      if (!run.ok()) continue;
      (parts == 4 ? at4 : at16) = run->Stats().mean_us / 1000.0;
    }
    std::printf("%-28s %8.2f %9.2f\n",
                ("append_points=" + std::to_string(heads)).c_str(), at4,
                at16);
  }
  return 0;
}
