// Reproduces Figure 4: "Running phase for Kingston DTI" -- a sequential
// write trace with no start-up phase and a periodic oscillation (the
// switch-merge cadence: one erase per flash block worth of writes).
//
//   ./fig4_running_phase [--device=kingston-dti] [--ios=300]
#include "bench/bench_util.h"
#include "src/core/methodology.h"
#include "src/report/ascii_chart.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "kingston-dti");
  uint32_t ios = flags.GetUint32("ios", 300);

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());

  PatternSpec sw = PatternSpec::SequentialWrite(32 * 1024, 0,
                                                dev->capacity_bytes() / 2);
  sw.io_count = ios;
  auto run = ExecuteRun(dev.get(), sw);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::vector<double> rt = run->ResponseTimes();
  std::vector<double> rt_ms(rt.size());
  for (size_t i = 0; i < rt.size(); ++i) rt_ms[i] = rt[i] / 1000.0;

  std::printf("Figure 4: running phase, %s (SW, 32KB)\n\n", id.c_str());
  ChartOptions opts;
  opts.title = "response time per IO (log y, ms)";
  opts.log_y = true;
  opts.x_label = "IO number";
  opts.y_label = "rt (ms)";
  std::printf("%s\n", RenderTrace(rt_ms, opts).c_str());

  PhaseAnalysis phases = AnalyzePhases(rt);
  double avg = 0;
  for (double v : rt) avg += v;
  std::printf("no start-up expected: detected start-up %u IOs\n",
              phases.startup_ios);
  std::printf("oscillation period ~%u IOs (erase cadence), Avg(rt) %.2f ms\n",
              phases.period_ios, avg / rt.size() / 1000.0);
  return 0;
}
