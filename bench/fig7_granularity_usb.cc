// Reproduces Figure 7: "Granularity for Kingston DTI (SR, RR, SW)" --
// same sweep as Figure 6 on a low-end USB stick. Random writes are
// reported separately as a near-constant value (~260ms in the paper)
// exactly as the figure omits them.
//
//   ./fig7_granularity_usb [--device=kingston-dti]
#include "bench/bench_util.h"
#include "src/core/microbench.h"
#include "src/report/ascii_chart.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "kingston-dti");

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());

  MicroBenchConfig cfg;
  cfg.io_count = flags.GetUint32("io_count", 192);
  cfg.io_ignore = 32;
  cfg.target_size = dev->capacity_bytes();
  cfg.baselines = {"SR", "RR", "SW"};
  auto exps = RunMicroBench(dev.get(), MicroBench::kGranularity, cfg);
  if (!exps.ok()) {
    std::fprintf(stderr, "failed: %s\n", exps.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Figure 7: Granularity for %s (SR, RR, SW; rt in ms vs IO size)\n\n",
      id.c_str());
  std::printf("%10s %10s %10s %10s\n", "IOSize", "SR", "RR", "SW");
  size_t n = exps->front().points.size();
  for (size_t i = 0; i < n; ++i) {
    std::printf("%10s",
                FormatSize(static_cast<uint64_t>(
                               exps->front().points[i].param)).c_str());
    for (const auto& e : *exps) {
      std::printf(" %10.2f", e.points[i].run.Stats().mean_us / 1000.0);
    }
    std::printf("\n");
  }

  // RW at the reference size, reported separately like the figure's
  // caption ("rather constant value around 260 msec").
  MicroBenchConfig rw_cfg = cfg;
  rw_cfg.baselines = {"RW"};
  PatternSpec rw = PatternSpec::RandomWrite(32 * 1024, 0,
                                            dev->capacity_bytes());
  rw.io_count = cfg.io_count;
  auto run = ExecuteRun(dev.get(), rw);
  if (run.ok()) {
    std::printf("\nRW (32KB, omitted from the plot): ~%.0f ms\n",
                run->Stats().mean_us / 1000.0);
  }

  std::vector<ChartSeries> series;
  const char glyphs[] = {'s', 'r', 'W'};
  int gi = 0;
  for (const auto& e : *exps) {
    ChartSeries cs;
    cs.name = e.name.substr(e.name.find('/') + 1);
    cs.glyph = glyphs[gi++ % 3];
    for (const auto& p : e.points) {
      cs.x.push_back(p.param / 1024.0);
      cs.y.push_back(p.run.Stats().mean_us / 1000.0);
    }
    series.push_back(std::move(cs));
  }
  ChartOptions copt;
  copt.title = "\nresponse time (ms) vs IO size (KB)";
  copt.log_x = true;
  std::printf("%s\n", RenderChart(series, copt).c_str());
  return 0;
}
