// google-benchmark microbenchmarks of the simulator itself: cost of
// simulated IOs per FTL kind, GC hot path, pattern generation, and
// statistics. These measure the *simulator's* wall-clock performance
// (how many simulated IOs per second the harness can execute), not the
// simulated device latency.
#include <benchmark/benchmark.h>

#include "src/core/methodology.h"
#include "src/device/profiles.h"
#include "src/pattern/pattern.h"
#include "src/run/run_stats.h"
#include "src/util/random.h"

namespace uflip {
namespace {

void BM_SimulatedIo(benchmark::State& state, const char* profile_id,
                    bool random_writes) {
  auto profile = ProfileById(profile_id);
  auto dev = CreateSimDevice(*profile, nullptr, 64ULL << 20);
  // uflip-lint: allow(seed-band) -- fixed-seed microbench stream, not an experiment seed
  Rng rng(1);
  uint64_t cap = (*dev)->capacity_bytes();
  uint64_t seq = 0;
  for (auto _ : state) {
    uint64_t offset;
    if (random_writes) {
      offset = rng.UniformU64(cap / 32768) * 32768;
    } else {
      offset = (seq * 32768) % (cap - 32768);
      ++seq;
    }
    IoRequest req{offset, 32768, IoMode::kWrite};
    auto rt = (*dev)->Submit(req);
    benchmark::DoNotOptimize(rt);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PatternGeneration(benchmark::State& state) {
  PatternSpec spec = PatternSpec::RandomWrite(32768, 0, 1ULL << 30);
  PatternGenerator gen(spec);
  for (auto _ : state) {
    IoRequest req = gen.Next();
    benchmark::DoNotOptimize(req);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RunStats(benchmark::State& state) {
  // uflip-lint: allow(seed-band) -- fixed-seed microbench stream, not an experiment seed
  Rng rng(2);
  std::vector<double> samples(static_cast<size_t>(state.range(0)));
  for (auto& s : samples) s = rng.UniformDouble() * 1000.0;
  for (auto _ : state) {
    RunStats stats = RunStats::Compute(samples, 0);
    benchmark::DoNotOptimize(stats);
  }
}

void BM_PhaseAnalysis(benchmark::State& state) {
  // uflip-lint: allow(seed-band) -- fixed-seed microbench stream, not an experiment seed
  Rng rng(3);
  std::vector<double> rt(4096);
  for (size_t i = 0; i < rt.size(); ++i) {
    rt[i] = (i < 128 ? 400.0 : 5000.0) + rng.UniformDouble() * 100.0;
  }
  for (auto _ : state) {
    PhaseAnalysis p = AnalyzePhases(rt);
    benchmark::DoNotOptimize(p);
  }
}

BENCHMARK_CAPTURE(BM_SimulatedIo, memoright_rw, "memoright", true);
BENCHMARK_CAPTURE(BM_SimulatedIo, memoright_sw, "memoright", false);
BENCHMARK_CAPTURE(BM_SimulatedIo, dti_rw, "kingston-dti", true);
BENCHMARK_CAPTURE(BM_SimulatedIo, dthx_rw, "kingston-dthx", true);
BENCHMARK(BM_PatternGeneration);
BENCHMARK(BM_RunStats)->Arg(1024)->Arg(16384);
BENCHMARK(BM_PhaseAnalysis);

}  // namespace
}  // namespace uflip

BENCHMARK_MAIN();
