// Shared flag plumbing for the trace benches: builds synthetic
// generator configs / EventSources from --kind=... flags, so
// trace_tool generate and ftl_compare accept the same workload
// vocabulary.
#ifndef UFLIP_BENCH_TRACE_FLAGS_H_
#define UFLIP_BENCH_TRACE_FLAGS_H_

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/trace/synthetic.h"

namespace uflip {
namespace bench {

/// Builds the pull-based generator selected by --kind=zipfian|oltp|
/// multistream from the shared generator flags (--capacity_mb,
/// --io_size, --io_count, --theta, --write_fraction,
/// --read_only_fraction, --streams, --gap_us, --seed). An unknown
/// --kind is InvalidArgument; config errors surface on the source's
/// first Next(). seed_override >= 0 replaces the --seed flag's value --
/// replicated sweeps (ftl_compare --reps) pass the derived per-rep
/// seed (`seed + rep`, see SeedFromFlags) so every repetition draws an
/// independent but reproducible workload.
inline StatusOr<std::unique_ptr<EventSource>> SyntheticSourceFromFlags(
    const Flags& flags, int64_t seed_override = -1) {
  std::string kind = flags.GetString("kind", "zipfian");
  uint64_t capacity =
      static_cast<uint64_t>(flags.GetUint32("capacity_mb", 64)) << 20;
  uint64_t seed = seed_override >= 0
                      ? static_cast<uint64_t>(seed_override)
                      : static_cast<uint64_t>(SeedFromFlags(flags));
  uint64_t gap_us = static_cast<uint64_t>(flags.GetUint32("gap_us", 0));

  if (kind == "zipfian") {
    ZipfianTraceConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.io_size = flags.GetUint32("io_size", 4096);
    cfg.io_count = flags.GetUint32("io_count", 4096);
    cfg.theta = flags.GetDouble("theta", 0.99);
    cfg.write_fraction = flags.GetDouble("write_fraction", 0.5);
    cfg.mean_gap_us = gap_us;
    cfg.seed = seed;
    return std::unique_ptr<EventSource>(new ZipfianEventSource(cfg));
  }
  if (kind == "oltp") {
    OltpTraceConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.io_size = flags.GetUint32("io_size", 8192);
    cfg.transactions = flags.GetUint32("io_count", 2048);
    cfg.read_only_fraction = flags.GetDouble("read_only_fraction", 0.5);
    cfg.mean_gap_us = gap_us;
    cfg.seed = seed;
    return std::unique_ptr<EventSource>(new OltpEventSource(cfg));
  }
  if (kind == "multistream") {
    MultiStreamTraceConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.io_size = flags.GetUint32("io_size", 32 * 1024);
    cfg.streams = flags.GetUint32("streams", 4);
    cfg.ios_per_stream =
        flags.GetUint32("io_count", 512);
    cfg.gap_us = gap_us;
    cfg.seed = seed;
    return std::unique_ptr<EventSource>(new MultiStreamEventSource(cfg));
  }
  return Status::InvalidArgument("unknown --kind=" + kind);
}

}  // namespace bench
}  // namespace uflip

#endif  // UFLIP_BENCH_TRACE_FLAGS_H_
