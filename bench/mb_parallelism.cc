// Parallelism micro-benchmark (Section 5.2): ParallelDegree concurrent
// processes each run the baseline pattern over their slice of the
// target space. The paper observes no improvement from parallel
// submission; high degrees degenerate sequential writes into
// partitioned-write behaviour.
//   ./mb_parallelism [--device=memoright]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kParallelism, "memoright",
      "ParallelDegree varies 1..16; response time includes queue wait "
      "(the device serializes).");
}
