// Parallelism micro-benchmark (Section 5.2): ParallelDegree concurrent
// processes each run the baseline pattern over their slice of the
// target space. The paper observes no improvement from parallel
// submission on synchronous-IO devices; high degrees degenerate
// sequential writes into partitioned-write behaviour.
//   ./mb_parallelism [--device=memoright]
//
// With --queue_depth > 0 the sweep instead drives the degree streams
// through the async multi-queue device API (one shared completion
// queue, per-channel overlap): on a multi-channel device the streams
// genuinely overlap, which is the internal parallelism Section 2.1 says
// a block manager should leverage.
//   ./mb_parallelism --device=memoright --queue_depth=8 --channels=4
#include "bench/mb_common.h"
#include "src/device/async_sim_device.h"

namespace uflip {
namespace bench {
namespace {

int RunMultiQueue(const Flags& flags) {
  std::string id = flags.GetString("device", "memoright");
  uint32_t queue_depth =
      flags.GetUint32("queue_depth", 8);
  uint32_t channels = flags.GetUint32("channels", 4);
  auto dev = MakeDeviceWithState(id, 0, true, channels);
  InterRunPause(dev.get());
  AsyncSimDevice async(std::move(dev), queue_depth);

  std::printf(
      "Parallelism micro-benchmark on %s (multi-queue: queue_depth=%u, "
      "%u channels)\nResponse time includes queue wait; streams on "
      "different channels overlap.\n\n", id.c_str(), queue_depth,
      async.channels());
  std::printf("  %14s %12s %12s %12s %14s\n", "ParallelDegree", "mean ms",
              "p50 ms", "max ms", "wall s");
  for (uint32_t degree : {1u, 2u, 4u, 8u, 16u}) {
    PatternSpec spec =
        PatternSpec::RandomRead(32768, 0, async.capacity_bytes() / 2);
    spec.io_count = flags.GetUint32("io_count", 256);
    spec.io_ignore = flags.GetUint32("io_ignore", 64);
    uint64_t t0 = async.clock()->NowUs();
    auto run = ExecuteParallelRun(&async, spec, degree);
    if (!run.ok()) {
      std::fprintf(stderr, "degree %u failed: %s\n", degree,
                   run.status().ToString().c_str());
      return 1;
    }
    double wall_s =
        static_cast<double>(async.clock()->NowUs() - t0) / 1e6;
    RunStats s = run->Stats();
    std::printf("  %14u %12.2f %12.2f %12.2f %14.3f\n", degree,
                s.mean_us / 1000.0, s.p50_us / 1000.0, s.max_us / 1000.0,
                wall_s);
    // Inter-run pause so deferred reclamation drains between degrees.
    async.sim()->virtual_clock()->SleepUs(5000000);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  uflip::bench::Flags flags(argc, argv);
  if (flags.GetInt("queue_depth", 0) > 0) {
    return uflip::bench::RunMultiQueue(flags);
  }
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kParallelism, "memoright",
      "ParallelDegree varies 1..16; response time includes queue wait "
      "(the device serializes).");
}
