// Order micro-benchmark (Table 3 cols 8-10): ordered patterns with
// linear LBA coefficient Incr -- reverse (-1), in-place (0), increasing
// gaps (2..256). In-place is pathological on strict-log USB sticks
// (x40 on the paper's Kingston DTI) and benign on SSDs.
//   ./mb_order [--device=kingston-dti]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kOrder, "kingston-dti",
      "Incr varies in {-1, 0, 1, 2, ..., 256} (sequential patterns "
      "only).");
}
