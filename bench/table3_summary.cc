// Reproduces Table 3 ("Result summary") of the paper: for each
// representative device, the cost of the four baseline patterns at 32KB,
// the effect of pauses on random writes, the random-write locality area,
// the sequential-write partition limit, and the reverse / in-place /
// large-increment ordered-pattern factors.
//
//   ./table3_summary [--device=<id>] [--io_count=N] [--fresh_state=true]
//
// Paper reference (Table 3):
//   Device      SR   RR   SW   RW    Pause  Locality  Partit.  Rev IP  Incr
//   Memoright  0.3  0.4  0.3    5     5     8 (=)     8 (=)    =   =   x4
//   Mtron      0.4  0.5  0.4    9     9     8 (x2)    4 (x1.5) =   =   x2
//   Samsung    0.5  0.5  0.6   18           16 (x1.5) 4 (x2)  x1.5 x0.6 x2
//   T.Module   1.2  1.3  1.7   18           4 (x2)    4 (x2)   x3  x2   x2
//   T.MLC      1.4  3.0  2.6  233           4 (=)     4 (x2)   x2  x2   x1
//   K.DTHX     1.3  1.5  1.8  270           16 (x20)  8 (x20)  x7  x6   x1
//   K.DTI      1.9  2.2  2.9  256           No        4 (x5)   x8  x40  x1
#include "bench/bench_util.h"
#include "src/core/table3.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string only = flags.GetString("device", "");
  bool verbose = flags.GetBool("verbose", false);

  Table3Config cfg;
  cfg.io_count = flags.GetUint32("io_count", 384);

  std::vector<Table3Row> rows;
  for (const std::string& id : bench::RepresentativeIds()) {
    if (!only.empty() && id != only) continue;
    auto dev = bench::MakeDeviceWithState(id);
    bench::InterRunPause(dev.get());
    ProgressFn progress = nullptr;
    if (verbose) {
      progress = [&id](const std::string& what, double p) {
        std::fprintf(stderr, "  [%s] %s %.0f\n", id.c_str(), what.c_str(),
                     p);
      };
    }
    auto row = ExtractTable3Row(dev.get(), cfg, progress);
    if (!row.ok()) {
      std::fprintf(stderr, "[%s] failed: %s\n", id.c_str(),
                   row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*row);
  }

  std::printf("\nTable 3: Result summary (simulated devices, 32KB IOs)\n\n");
  std::printf("%s\n", RenderTable3(rows).c_str());
  std::printf(
      "Factors: Locality/Partitioning/Reverse/In-Place relative to SW; "
      "Large-Incr relative to RW.\n");
  return 0;
}
