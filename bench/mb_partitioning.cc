// Partitioning micro-benchmark (Table 3 col 7): concurrent sequential
// write streams over P round-robin partitions. Expect clean behaviour up
// to the device's limit (4-8 partitions) and degradation towards
// random-write cost beyond.
//   ./mb_partitioning [--device=kingston-dti]
#include "bench/mb_common.h"

int main(int argc, char** argv) {
  return uflip::bench::RunMicroBenchMain(
      argc, argv, uflip::MicroBench::kPartitioning, "kingston-dti",
      "Partitions varies 1..256 (sequential patterns only).");
}
