// Reproduces Figure 3: "Starting and running phase for Mtron SSD (RW)".
// A long random-write run straight after an idle period shows a cheap
// start-up phase (~125 IOs on the paper's Mtron: deferred work absorbed
// by the RAM buffer) followed by a running phase oscillating with a
// short period. Prints the per-IO trace, the running averages including
// and excluding the start-up phase (the two lines in the figure), and
// the detected phase parameters.
//
//   ./fig3_startup_phase [--device=mtron] [--ios=300] [--csv=path]
#include "bench/bench_util.h"
#include "src/core/methodology.h"
#include "src/report/ascii_chart.h"
#include "src/util/csv.h"

using namespace uflip;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string id = flags.GetString("device", "mtron");
  uint32_t ios = flags.GetUint32("ios", 300);
  std::string csv = flags.GetString("csv", "");

  auto dev = bench::MakeDeviceWithState(id);
  bench::InterRunPause(dev.get());  // idle restores the deferred-work pool

  PatternSpec rw = PatternSpec::RandomWrite(32 * 1024, 0,
                                            dev->capacity_bytes());
  rw.io_count = ios;
  auto run = ExecuteRun(dev.get(), rw);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::vector<double> rt = run->ResponseTimes();

  PhaseAnalysis phases = AnalyzePhases(rt);
  std::printf("Figure 3: start-up and running phase, %s (RW, 32KB)\n\n",
              id.c_str());
  ChartOptions opts;
  opts.title = "response time per IO (log y, ms)";
  opts.log_y = true;
  opts.x_label = "IO number";
  opts.y_label = "rt (ms)";
  std::vector<double> rt_ms(rt.size());
  for (size_t i = 0; i < rt.size(); ++i) rt_ms[i] = rt[i] / 1000.0;
  std::printf("%s\n", RenderTrace(rt_ms, opts).c_str());

  // Running averages, as in the figure.
  double incl = 0, excl = 0;
  uint64_t excl_n = 0;
  for (size_t i = 0; i < rt.size(); ++i) {
    incl += rt[i];
    if (i >= phases.startup_ios) {
      excl += rt[i];
      ++excl_n;
    }
  }
  std::printf("start-up phase: %u IOs (mean %.2f ms)\n", phases.startup_ios,
              phases.startup_mean_us / 1000.0);
  std::printf("running phase:  period ~%u IOs, mean %.2f ms, "
              "variability x%.1f\n",
              phases.period_ios, phases.running_mean_us / 1000.0,
              phases.variability);
  std::printf("Avg(rt) incl. start-up: %.2f ms\n",
              incl / static_cast<double>(rt.size()) / 1000.0);
  if (excl_n > 0) {
    std::printf("Avg(rt) excl. start-up: %.2f ms\n",
                excl / static_cast<double>(excl_n) / 1000.0);
  }
  RunLengths lengths = SuggestRunLengths(phases);
  std::printf("suggested IOIgnore=%u IOCount=%u\n", lengths.io_ignore,
              lengths.io_count);

  if (!csv.empty()) {
    auto w = CsvWriter::Open(csv);
    if (w.ok()) {
      w->WriteRow(std::vector<std::string>{"io", "rt_ms"});
      for (size_t i = 0; i < rt_ms.size(); ++i) {
        w->WriteRow(std::vector<double>{static_cast<double>(i), rt_ms[i]});
      }
      (void)w->Close();
    }
  }
  return 0;
}
