// Observability-overhead microbench: asserts that the instrumented hot
// path (metrics attached) stays within a few percent of the disabled
// path (null handles, no registry). The obs layer's contract is
// zero-overhead-when-disabled and cheap-when-enabled; this bench is
// the enforcement for the second half, wired into CI.
//
//   obs_overhead [--io_count=30000] [--trials=5] [--max_overhead_pct=3]
//                [--kind=zipfian ... generator flags]
//
// Method: identically prepared devices (same preparation seed), one
// per arm: metrics attached, spans attached (SpanRecorder), and bare
// (null handles). Each trial replays the identical synthetic workload
// on every arm back-to-back (interleaved, so clock-frequency drift
// hits all arms equally); the comparison is min-of-trials per arm.
// All arms run the same simulated work -- instrumentation must not
// change simulated behavior, which tests/obs_test.cc and
// tests/span_trace_test.cc pin separately -- so the wall time delta
// isolates the instrumentation cost. Exit 1 when either arm's
// overhead exceeds --max_overhead_pct.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/obs/metric_registry.h"
#include "src/obs/span_trace.h"
#include "src/run/trace_run.h"

namespace uflip {
namespace bench {
namespace {

/// Replays the flags' workload once on `dev` and stores the wall
/// seconds in *seconds; false on failure (already reported).
bool TimedReplay(const Flags& flags, SimDevice* dev, double* seconds) {
  ReplayOptions opts;
  opts.rescale_lba = true;
  opts.io_ignore = 0;
  opts.keep_samples = false;
  auto source = SyntheticSourceFromFlags(flags);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return false;
  }
  // uflip-lint: allow(wall-clock) -- overhead gate times the real hot path
  auto start = std::chrono::steady_clock::now();
  auto run = ExecuteTraceRun(dev, source->get(), opts);
  *seconds =
      // uflip-lint: allow(wall-clock) -- overhead gate times the real hot path
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 run.status().ToString().c_str());
    return false;
  }
  return true;
}

/// Prints one arm's result line and enforces the gate. Returns false
/// when the arm's overhead exceeds the limit.
bool GateArm(const char* name, double arm_s, double plain_s, uint32_t trials,
             double max_overhead_pct) {
  double overhead_pct = plain_s > 0 ? 100.0 * (arm_s - plain_s) / plain_s : 0;
  std::printf(
      "disabled %.4fs, %s %.4fs (min of %u trials): "
      "overhead %+.2f%% (limit %.1f%%)\n",
      plain_s, name, arm_s, trials, overhead_pct, max_overhead_pct);
  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "FAIL: %s overhead %.2f%% exceeds %.1f%%\n", name,
                 overhead_pct, max_overhead_pct);
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint32_t trials = flags.GetUint32("trials", 5);
  double max_overhead_pct = flags.GetDouble("max_overhead_pct", 3.0);
  if (trials == 0) {
    std::fprintf(stderr, "--trials must be >= 1\n");
    return 2;
  }

  // Identical devices: same profile, same preparation seed. Trial t of
  // each arm therefore replays onto identical device state, so the
  // arms differ only in instrumentation.
  auto plain = MakeDeviceWithState("mtron", 0, false);
  auto instrumented = MakeDeviceWithState("mtron", 0, false);
  auto spanned = MakeDeviceWithState("mtron", 0, false);
  InterRunPause(plain.get());
  InterRunPause(instrumented.get());
  InterRunPause(spanned.get());
  MetricRegistry registry;
  instrumented->AttachMetrics(&registry);
  SpanRecorder recorder;
  spanned->AttachSpans(&recorder);

  // Interleaved trials: each iteration replays the same workload on
  // every arm (all devices age identically, so trial t compares equal
  // simulated work); a warm-up trial per arm is discarded.
  double plain_s = -1, inst_s = -1, span_s = -1;
  for (uint32_t t = 0; t <= trials; ++t) {
    double p = 0, i = 0, s = 0;
    if (!TimedReplay(flags, plain.get(), &p)) return 1;
    if (!TimedReplay(flags, instrumented.get(), &i)) return 1;
    if (!TimedReplay(flags, spanned.get(), &s)) return 1;
    if (t == 0) continue;  // warm-up
    if (plain_s < 0 || p < plain_s) plain_s = p;
    if (inst_s < 0 || i < inst_s) inst_s = i;
    if (span_s < 0 || s < span_s) span_s = s;
  }

  bool ok = GateArm("instrumented", inst_s, plain_s, trials,
                    max_overhead_pct);
  ok &= GateArm("span-traced", span_s, plain_s, trials, max_overhead_pct);
  if (!ok) return 1;
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  return uflip::bench::Main(argc, argv);
}
