// Observability-overhead microbench: asserts that the instrumented hot
// path (metrics attached) stays within a few percent of the disabled
// path (null handles, no registry). The obs layer's contract is
// zero-overhead-when-disabled and cheap-when-enabled; this bench is
// the enforcement for the second half, wired into CI.
//
//   obs_overhead [--io_count=30000] [--trials=5] [--max_overhead_pct=3]
//                [--kind=zipfian ... generator flags]
//
// Method: two identically prepared devices (same preparation seed),
// one with a MetricRegistry attached and one without. Each trial
// replays the identical synthetic workload on BOTH arms back-to-back
// (interleaved, so clock-frequency drift hits both arms equally); the
// comparison is min-of-trials per arm. Both arms run the same
// simulated work -- instrumentation must not change simulated
// behavior, which tests/obs_test.cc pins separately -- so the wall
// time delta isolates the instrumentation cost. Exit 1 when the
// overhead exceeds --max_overhead_pct.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_flags.h"
#include "src/obs/metric_registry.h"
#include "src/run/trace_run.h"

namespace uflip {
namespace bench {
namespace {

/// Replays the flags' workload once on `dev` and stores the wall
/// seconds in *seconds; false on failure (already reported).
bool TimedReplay(const Flags& flags, SimDevice* dev, double* seconds) {
  ReplayOptions opts;
  opts.rescale_lba = true;
  opts.io_ignore = 0;
  opts.keep_samples = false;
  auto source = SyntheticSourceFromFlags(flags);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return false;
  }
  // uflip-lint: allow(wall-clock) -- overhead gate times the real hot path
  auto start = std::chrono::steady_clock::now();
  auto run = ExecuteTraceRun(dev, source->get(), opts);
  *seconds =
      // uflip-lint: allow(wall-clock) -- overhead gate times the real hot path
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!run.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 run.status().ToString().c_str());
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint32_t trials = flags.GetUint32("trials", 5);
  double max_overhead_pct = flags.GetDouble("max_overhead_pct", 3.0);
  if (trials == 0) {
    std::fprintf(stderr, "--trials must be >= 1\n");
    return 2;
  }

  // Two identical devices: same profile, same preparation seed. Trial
  // t of each arm therefore replays onto identical device state, so
  // the arms differ only in instrumentation.
  auto plain = MakeDeviceWithState("mtron", 0, false);
  auto instrumented = MakeDeviceWithState("mtron", 0, false);
  InterRunPause(plain.get());
  InterRunPause(instrumented.get());
  MetricRegistry registry;
  instrumented->AttachMetrics(&registry);

  // Interleaved trials: each iteration replays the same workload on
  // both arms (both devices age identically, so trial t compares equal
  // simulated work); a warm-up trial per arm is discarded.
  double plain_s = -1, inst_s = -1;
  for (uint32_t t = 0; t <= trials; ++t) {
    double p = 0, i = 0;
    if (!TimedReplay(flags, plain.get(), &p)) return 1;
    if (!TimedReplay(flags, instrumented.get(), &i)) return 1;
    if (t == 0) continue;  // warm-up
    if (plain_s < 0 || p < plain_s) plain_s = p;
    if (inst_s < 0 || i < inst_s) inst_s = i;
  }

  double overhead_pct = plain_s > 0 ? 100.0 * (inst_s - plain_s) / plain_s
                                    : 0;
  std::printf(
      "disabled %.4fs, instrumented %.4fs (min of %u trials): "
      "overhead %+.2f%% (limit %.1f%%)\n",
      plain_s, inst_s, trials, overhead_pct, max_overhead_pct);
  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uflip

int main(int argc, char** argv) {
  return uflip::bench::Main(argc, argv);
}
