// Methodology tests (Section 4): state enforcement, the two-phase
// model / phase detection on synthetic traces, pause calibration,
// target-space allocation and benchmark plans.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/methodology.h"
#include "src/device/mem_device.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

TEST(StateEnforcementTest, RandomCoversWholeDevice) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  StateEnforcementOptions opts;
  auto report = EnforceRandomState(dev.get(), opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->bytes_written, dev->capacity_bytes());
  EXPECT_GT(report->ios, 0u);
  EXPECT_GT(report->duration_us, 0);
}

TEST(StateEnforcementTest, SequentialWritesEveryBlockOnce) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  auto report = EnforceSequentialState(dev.get(), 128 * 1024);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->bytes_written,
            dev->capacity_bytes() / (128 * 1024) * (128 * 1024));
}

TEST(StateEnforcementTest, RejectsBadOptions) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  StateEnforcementOptions opts;
  opts.min_io_bytes = 100;
  EXPECT_FALSE(EnforceRandomState(dev.get(), opts).ok());
  EXPECT_FALSE(EnforceSequentialState(dev.get(), 1000).ok());
}

TEST(PhaseAnalysisTest, DetectsStartupPhase) {
  // 128 cheap IOs then expensive oscillation: the paper's Figure 3.
  std::vector<double> rt;
  for (int i = 0; i < 128; ++i) rt.push_back(400.0);
  for (int i = 0; i < 512; ++i) {
    rt.push_back(i % 8 == 0 ? 27000.0 : 2000.0);
  }
  PhaseAnalysis p = AnalyzePhases(rt);
  EXPECT_GT(p.startup_ios, 100u);
  EXPECT_LT(p.startup_ios, 160u);
  EXPECT_NEAR(p.startup_mean_us, 400.0, 50.0);
  EXPECT_GT(p.running_mean_us, 2000.0);
  EXPECT_GT(p.variability, 10.0);
}

TEST(PhaseAnalysisTest, NoStartupOnFlatTrace) {
  std::vector<double> rt(512, 1000.0);
  PhaseAnalysis p = AnalyzePhases(rt);
  EXPECT_EQ(p.startup_ios, 0u);
  EXPECT_NEAR(p.running_mean_us, 1000.0, 1.0);
  EXPECT_EQ(p.period_ios, 0u);  // flat: no oscillation
}

TEST(PhaseAnalysisTest, DetectsOscillationPeriod) {
  // Period-16 oscillation (the paper's Figure 4 shape).
  std::vector<double> rt;
  for (int i = 0; i < 512; ++i) {
    rt.push_back(i % 16 == 0 ? 30000.0 : 3000.0);
  }
  PhaseAnalysis p = AnalyzePhases(rt);
  EXPECT_EQ(p.startup_ios, 0u);
  EXPECT_NEAR(p.period_ios, 16u, 1);
}

TEST(PhaseAnalysisTest, ShortTracesHandled) {
  PhaseAnalysis p = AnalyzePhases({});
  EXPECT_EQ(p.running_mean_us, 0);
  p = AnalyzePhases({5.0, 6.0});
  EXPECT_NEAR(p.running_mean_us, 5.5, 1e-9);
}

TEST(PhaseAnalysisTest, SuggestRunLengths) {
  PhaseAnalysis p;
  p.startup_ios = 128;
  p.period_ios = 16;
  RunLengths l = SuggestRunLengths(p, 16, 512);
  EXPECT_EQ(l.io_ignore, 128u);
  EXPECT_GE(l.io_count, 128u + 16 * 16);
  // Minimum enforced.
  p.startup_ios = 0;
  p.period_ios = 1;
  l = SuggestRunLengths(p, 4, 512);
  EXPECT_EQ(l.io_count, 512u);
}

TEST(PauseCalibrationTest, NoLingeringOnSyncDevice) {
  // The DTI has no deferred work: reads recover instantly and the
  // conservative 1s floor applies (the paper uses 1s for such devices).
  auto dev = MakeTestDevice("kingston-dti", 32 << 20);
  PauseCalibrationOptions opts;
  opts.sr_ios = 300;
  opts.rw_ios = 50;
  opts.target_size = 8 << 20;
  auto calib = CalibratePause(dev.get(), opts);
  ASSERT_TRUE(calib.ok()) << calib.status();
  EXPECT_EQ(calib->recommended_pause_us, 1000000u);
  EXPECT_EQ(calib->trace_rt_us.size(), 300u + 50 + 300);
}

TEST(PauseCalibrationTest, LingeringOnAsyncDevice) {
  // Memoright-class devices defer work; reads after a random-write
  // burst stay slow for a while (Figure 5).
  auto dev = MakeTestDevice("mtron", 128 << 20);
  auto enforce = EnforceRandomState(dev.get());
  ASSERT_TRUE(enforce.ok());
  dev->virtual_clock()->SleepUs(5000000);
  PauseCalibrationOptions opts;
  opts.sr_ios = 3000;
  // The random-write batch must both span far more than the locality
  // area (or the log pool absorbs it) and outlast what the controller's
  // foreground slices can destage on the fly.
  opts.rw_ios = 2000;
  opts.target_size = dev->capacity_bytes();
  auto calib = CalibratePause(dev.get(), opts);
  ASSERT_TRUE(calib.ok()) << calib.status();
  EXPECT_GT(calib->affected_reads, 50u);
  EXPECT_GT(calib->lingering_us, 0);
}

TEST(TargetAllocatorTest, DisjointAlignedAllocations) {
  TargetSpaceAllocator alloc(64 << 20);
  auto a = alloc.Allocate(10 << 20);
  auto b = alloc.Allocate(10 << 20);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + (10 << 20));
  EXPECT_EQ(*b % (1 << 20), 0u);
  // Exhaustion.
  EXPECT_FALSE(alloc.Allocate(64 << 20).ok());
  alloc.Rewind();
  EXPECT_TRUE(alloc.Allocate(64 << 20).ok());
}

TEST(BenchmarkPlanTest, GroupsSequentialWritesDisjointly) {
  BenchmarkPlan plan(256 << 20, 1000000);
  PatternSpec rr = PatternSpec::RandomRead(32768, 0, 32 << 20);
  PatternSpec sw1 = PatternSpec::SequentialWrite(32768, 0, 32 << 20);
  PatternSpec sw2 = PatternSpec::SequentialWrite(32768, 0, 32 << 20);
  plan.AddRun(sw1);
  plan.AddRun(rr);
  plan.AddRun(sw2);
  auto steps = plan.Build();
  ASSERT_TRUE(steps.ok());
  // First step enforces state; RR comes before the grouped SWs; the two
  // SWs get disjoint target offsets.
  ASSERT_GE(steps->size(), 4u);
  EXPECT_EQ((*steps)[0].kind, PlanStep::Kind::kEnforceState);
  std::vector<PatternSpec> sw_runs;
  bool rr_seen = false;
  bool rr_before_sw = true;
  for (const auto& step : *steps) {
    if (step.kind != PlanStep::Kind::kRun) continue;
    if (step.spec.mode == IoMode::kRead) {
      rr_seen = true;
      if (!sw_runs.empty()) rr_before_sw = false;
    } else {
      sw_runs.push_back(step.spec);
    }
  }
  EXPECT_TRUE(rr_seen);
  EXPECT_TRUE(rr_before_sw);
  ASSERT_EQ(sw_runs.size(), 2u);
  uint64_t end0 = sw_runs[0].target_offset + sw_runs[0].target_size;
  EXPECT_GE(sw_runs[1].target_offset, end0);
  EXPECT_EQ(plan.state_resets(), 0u);
}

TEST(BenchmarkPlanTest, InsertsResetWhenDeviceExhausted) {
  BenchmarkPlan plan(64 << 20, 1000000);
  for (int i = 0; i < 4; ++i) {
    plan.AddRun(PatternSpec::SequentialWrite(32768, 0, 30 << 20));
  }
  auto steps = plan.Build();
  ASSERT_TRUE(steps.ok());
  EXPECT_GE(plan.state_resets(), 1u);
}

TEST(BenchmarkPlanTest, RejectsOversizedTarget) {
  BenchmarkPlan plan(16 << 20, 0);
  plan.AddRun(PatternSpec::SequentialWrite(32768, 0, 64 << 20));
  EXPECT_FALSE(plan.Build().ok());
}

TEST(BenchmarkPlanTest, PausesBetweenRuns) {
  BenchmarkPlan plan(256 << 20, 750000);
  plan.AddRun(PatternSpec::RandomRead(32768, 0, 8 << 20));
  plan.AddRun(PatternSpec::RandomRead(32768, 0, 8 << 20));
  auto steps = plan.Build();
  ASSERT_TRUE(steps.ok());
  bool pause_found = false;
  for (const auto& s : *steps) {
    if (s.kind == PlanStep::Kind::kPause) {
      EXPECT_EQ(s.pause_us, 750000u);
      pause_found = true;
    }
  }
  EXPECT_TRUE(pause_found);
}

}  // namespace
}  // namespace uflip
