// Unit tests for the GC victim-selection bucket queue.
#include <gtest/gtest.h>

#include "src/ftl/bucket_queue.h"

namespace uflip {
namespace {

TEST(BucketQueueTest, EmptyBehaviour) {
  BucketQueue q(16, 8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.PeekMin(), BucketQueue::kNone);
  EXPECT_EQ(q.PopMin(), BucketQueue::kNone);
}

TEST(BucketQueueTest, InsertPopMin) {
  BucketQueue q(16, 8);
  q.Insert(3, 5);
  q.Insert(4, 2);
  q.Insert(5, 7);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PopMin(), 4u);
  EXPECT_EQ(q.PopMin(), 3u);
  EXPECT_EQ(q.PopMin(), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, TiesShareBucket) {
  BucketQueue q(16, 8);
  q.Insert(1, 3);
  q.Insert(2, 3);
  uint32_t a = q.PopMin();
  uint32_t b = q.PopMin();
  EXPECT_TRUE((a == 1 && b == 2) || (a == 2 && b == 1));
}

TEST(BucketQueueTest, RemoveMiddle) {
  BucketQueue q(16, 8);
  q.Insert(1, 4);
  q.Insert(2, 4);
  q.Insert(3, 4);
  q.Remove(2);
  EXPECT_FALSE(q.Contains(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.Contains(1));
  EXPECT_TRUE(q.Contains(3));
}

TEST(BucketQueueTest, UpdateKeyMovesBuckets) {
  BucketQueue q(16, 8);
  q.Insert(1, 6);
  q.Insert(2, 4);
  q.UpdateKey(1, 1);
  EXPECT_EQ(q.KeyOf(1), 1u);
  EXPECT_EQ(q.PopMin(), 1u);
  EXPECT_EQ(q.PopMin(), 2u);
}

TEST(BucketQueueTest, UpdateKeySameIsNoop) {
  BucketQueue q(8, 4);
  q.Insert(0, 2);
  q.UpdateKey(0, 2);
  EXPECT_EQ(q.KeyOf(0), 2u);
  EXPECT_EQ(q.PopMin(), 0u);
}

TEST(BucketQueueTest, MinHintRecoversAfterPop) {
  BucketQueue q(16, 8);
  q.Insert(1, 0);
  q.Insert(2, 8);
  EXPECT_EQ(q.PopMin(), 1u);
  // Insert below the stale hint.
  q.Insert(3, 1);
  EXPECT_EQ(q.PopMin(), 3u);
  EXPECT_EQ(q.PopMin(), 2u);
}

TEST(BucketQueueTest, StressAgainstNaive) {
  BucketQueue q(64, 32);
  std::vector<int> key(64, -1);
  uint64_t x = 12345;
  auto rnd = [&x](uint32_t m) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<uint32_t>(x % m);
  };
  for (int iter = 0; iter < 5000; ++iter) {
    uint32_t id = rnd(64);
    switch (rnd(3)) {
      case 0:
        if (key[id] < 0) {
          key[id] = static_cast<int>(rnd(33));
          q.Insert(id, key[id]);
        }
        break;
      case 1:
        if (key[id] >= 0) {
          q.Remove(id);
          key[id] = -1;
        }
        break;
      case 2:
        if (key[id] >= 0) {
          key[id] = static_cast<int>(rnd(33));
          q.UpdateKey(id, key[id]);
        }
        break;
    }
    // Check PeekMin against the naive minimum.
    int naive_min = 1000;
    for (int k : key) {
      if (k >= 0) naive_min = std::min(naive_min, k);
    }
    uint32_t top = q.PeekMin();
    if (naive_min == 1000) {
      EXPECT_EQ(top, BucketQueue::kNone);
    } else {
      ASSERT_NE(top, BucketQueue::kNone);
      EXPECT_EQ(static_cast<int>(q.KeyOf(top)), naive_min);
    }
  }
}

}  // namespace
}  // namespace uflip
