// Property tests swept across all eleven device profiles (TEST_P):
// determinism under a fixed seed, response-time sanity for every
// baseline pattern, write-amplification bounds, capacity conservation,
// and flash-level accounting invariants.
#include <gtest/gtest.h>

#include "src/core/methodology.h"
#include "src/device/profiles.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/util/random.h"

namespace uflip {
namespace {

class ProfileProperty : public testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<SimDevice> Make(uint64_t capacity = 48ULL << 20) {
    auto p = ProfileById(GetParam());
    EXPECT_TRUE(p.ok());
    auto dev = CreateSimDevice(*p, nullptr, capacity);
    EXPECT_TRUE(dev.ok()) << dev.status();
    return std::move(*dev);
  }
};

TEST_P(ProfileProperty, DeterministicUnderFixedSeed) {
  auto run_once = [&]() {
    auto dev = Make();
    PatternSpec rw =
        PatternSpec::RandomWrite(32768, 0, dev->capacity_bytes());
    rw.io_count = 128;
    rw.seed = 77;
    auto run = ExecuteRun(dev.get(), rw);
    EXPECT_TRUE(run.ok());
    return run.ok() ? run->ResponseTimes() : std::vector<double>{};
  };
  std::vector<double> a = run_once();
  std::vector<double> b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << GetParam() << " IO " << i;
  }
}

TEST_P(ProfileProperty, AllBaselinesProduceSaneTimes) {
  auto dev = Make();
  for (const char* name : {"SR", "RR", "SW", "RW"}) {
    auto spec =
        PatternSpec::Baseline(name, 32768, 0, dev->capacity_bytes());
    spec->io_count = 96;
    auto run = ExecuteRun(dev.get(), *spec);
    ASSERT_TRUE(run.ok()) << GetParam() << "/" << name << ": "
                          << run.status();
    RunStats s = run->Stats();
    EXPECT_GT(s.min_us, 0) << GetParam() << "/" << name;
    EXPECT_LT(s.max_us, 5e6) << GetParam() << "/" << name;
    EXPECT_LE(s.min_us, s.p50_us);
    EXPECT_LE(s.p50_us, s.max_us);
  }
}

TEST_P(ProfileProperty, WritesNeverCheaperThanBusFloor) {
  // Every write must at least pay the controller overhead (no
  // negative/zero-cost IOs even with caches absorbing content).
  auto dev = Make();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    uint64_t off =
        rng.UniformU64(dev->capacity_bytes() / 32768 - 1) * 32768;
    IoRequest req{off, 32768, IoMode::kWrite};
    auto rt = dev->Submit(req);
    ASSERT_TRUE(rt.ok());
    EXPECT_GE(*rt, dev->controller().write_overhead_us) << GetParam();
  }
}

TEST_P(ProfileProperty, StateEnforcementKeepsAccountingConsistent) {
  auto dev = Make(24ULL << 20);
  StateEnforcementOptions opts;
  opts.max_io_bytes = 64 * 1024;
  auto report = EnforceRandomState(dev.get(), opts);
  ASSERT_TRUE(report.ok()) << GetParam() << ": " << report.status();
  const FtlStats& s = dev->ftl()->stats();
  // Host pages all accounted; flash programs >= host writes (write
  // amplification >= ~1 after caching), bounded above.
  EXPECT_GT(s.host_page_writes, 0u);
  double wa = s.WriteAmplification();
  EXPECT_GT(wa, 0.3) << GetParam();  // coalescing may dip below 1
  EXPECT_LT(wa, 60.0) << GetParam();
}

TEST_P(ProfileProperty, SequentialRewriteCheaperThanScatteredRewrite) {
  // The core flash asymmetry must hold on every device once state is
  // enforced: a sequential overwrite pass costs less in total than the
  // same volume scattered randomly.
  auto dev = Make();
  auto enforce = EnforceRandomState(dev.get());
  ASSERT_TRUE(enforce.ok());
  // Drain hybrid log junk.
  PatternSpec drain = PatternSpec::SequentialWrite(
      32768, dev->capacity_bytes() / 2, dev->capacity_bytes() / 2);
  drain.io_count = 768;
  ASSERT_TRUE(ExecuteRun(dev.get(), drain).ok());
  dev->virtual_clock()->SleepUs(5000000);

  PatternSpec sw =
      PatternSpec::SequentialWrite(32768, 0, dev->capacity_bytes() / 4);
  sw.io_count = 192;
  auto seq = ExecuteRun(dev.get(), sw);
  ASSERT_TRUE(seq.ok());
  dev->virtual_clock()->SleepUs(5000000);
  PatternSpec rw =
      PatternSpec::RandomWrite(32768, 0, dev->capacity_bytes());
  rw.io_count = 192;
  auto rnd = ExecuteRun(dev.get(), rw);
  ASSERT_TRUE(rnd.ok());
  EXPECT_LT(seq->StatsIncludingStartup().sum_us,
            rnd->StatsIncludingStartup().sum_us)
      << GetParam();
}

TEST_P(ProfileProperty, ResponseTimeMonotoneInSizeForReads) {
  auto dev = Make();
  double prev_mean = 0;
  for (uint32_t size : {4096u, 16384u, 65536u, 262144u}) {
    PatternSpec sr =
        PatternSpec::SequentialRead(size, 0, dev->capacity_bytes());
    sr.io_count = 48;
    auto run = ExecuteRun(dev.get(), sr);
    ASSERT_TRUE(run.ok()) << GetParam();
    double mean = run->Stats().mean_us;
    EXPECT_GT(mean, prev_mean * 0.99) << GetParam() << " @" << size;
    prev_mean = mean;
  }
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const auto& p : AllProfiles()) ids.push_back(p.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllDevices, ProfileProperty,
                         testing::ValuesIn(AllIds()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace uflip
