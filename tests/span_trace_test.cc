// Per-IO span tracing tests (src/obs/span_trace.h + the sim/device
// instrumentation): first-N head capture, permutation-invariant
// slowest-K tail, snapshot merge semantics, stage aggregates through
// the metric registry, the --explain stage table, a golden Chrome
// trace_event export, span-chain invariants through the async device
// (pipelined, bounded-controller and bus-contention models), the
// attached-vs-detached byte-identity contract, and byte-identical
// exports across calendar shard counts. The AsyncSimDeviceSpan suite
// runs under the TSan CI job (sharded drains feed the recorder).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/device/async_sim_device.h"
#include "src/device/sim_device.h"
#include "src/flash/array.h"
#include "src/ftl/page_mapping_ftl.h"
#include "src/obs/metric_registry.h"
#include "src/obs/span_trace.h"
#include "src/report/stage_table.h"
#include "src/sim/device_timeline.h"

namespace uflip {
namespace {

/// A span with the given id/channel whose total latency is `total_us`
/// (all of it flash time; submit staggered by id so ties are honest).
IoSpan MakeSpan(uint64_t id, uint32_t channel, uint64_t total_us) {
  IoSpan s;
  s.id = id;
  s.channel = channel;
  s.submit_us = id * 100;
  s.ready_us = s.submit_us;
  s.start_us = s.submit_us;
  s.ctrl_end_us = s.start_us;
  s.flash_end_us = s.start_us + total_us;
  s.bus_start_us = s.flash_end_us;
  s.bus_end_us = s.flash_end_us;
  s.complete_us = s.flash_end_us;
  return s;
}

void ExpectChainInvariants(const IoSpan& s, uint32_t channels) {
  EXPECT_LT(s.channel, channels) << "io " << s.id;
  EXPECT_LE(s.submit_us, s.ready_us) << "io " << s.id;
  EXPECT_LE(s.ready_us, s.start_us) << "io " << s.id;
  EXPECT_LE(s.start_us, s.ctrl_end_us) << "io " << s.id;
  EXPECT_LE(s.ctrl_end_us, s.flash_end_us) << "io " << s.id;
  EXPECT_LE(s.flash_end_us, s.bus_start_us) << "io " << s.id;
  EXPECT_LE(s.bus_start_us, s.bus_end_us) << "io " << s.id;
  EXPECT_LE(s.bus_end_us, s.complete_us) << "io " << s.id;
  EXPECT_EQ(s.complete_us, std::max(s.flash_end_us, s.bus_end_us))
      << "io " << s.id;
}

// ---------------------------------------------------------------------
// SpanRecorder: bounded deterministic capture
// ---------------------------------------------------------------------

TEST(SpanRecorderTest, HeadCapturesFirstNWhileCountingAll) {
  SpanRecorderConfig cfg;
  cfg.head_limit = 3;
  cfg.tail_k = 2;
  SpanRecorder rec(cfg);
  for (uint64_t id = 1; id <= 5; ++id) {
    rec.Record(MakeSpan(id, 0, 10 * id));
  }
  SpanSnapshot snap = rec.Snapshot();
  EXPECT_EQ(snap.recorded, 5u);
  ASSERT_EQ(snap.head.size(), 3u);
  EXPECT_EQ(snap.head[0].id, 1u);
  EXPECT_EQ(snap.head[1].id, 2u);
  EXPECT_EQ(snap.head[2].id, 3u);
  // Tail kept the run-wide slowest, including spans past the head.
  ASSERT_EQ(snap.tail.size(), 2u);
  EXPECT_EQ(snap.tail[0].id, 5u);
  EXPECT_EQ(snap.tail[1].id, 4u);
}

TEST(SpanRecorderTest, TailIsPermutationInvariant) {
  const std::vector<uint64_t> totals = {40, 7, 93, 12, 55, 93,
                                        3,  70, 28, 61};
  auto tail_of = [&](const std::vector<size_t>& order) {
    SpanRecorderConfig cfg;
    cfg.head_limit = 0;
    cfg.tail_k = 4;
    SpanRecorder rec(cfg);
    for (size_t idx : order) {
      rec.Record(MakeSpan(idx + 1, static_cast<uint32_t>(idx % 3),
                          totals[idx]));
    }
    std::vector<uint64_t> ids;
    for (const IoSpan& s : rec.Snapshot().tail) ids.push_back(s.id);
    return ids;
  };
  std::vector<size_t> forward(totals.size());
  for (size_t i = 0; i < forward.size(); ++i) forward[i] = i;
  std::vector<size_t> reversed(forward.rbegin(), forward.rend());
  std::vector<size_t> strided;
  for (size_t s = 0; s < 3; ++s) {
    for (size_t i = s; i < totals.size(); i += 3) strided.push_back(i);
  }
  // Two spans tie at total 93 (ids 3 and 6): SpanSlowerThan breaks the
  // tie on id, so even the tie is order-independent.
  const std::vector<uint64_t> expected = {3, 6, 8, 10};
  EXPECT_EQ(tail_of(forward), expected);
  EXPECT_EQ(tail_of(reversed), expected);
  EXPECT_EQ(tail_of(strided), expected);
}

TEST(SpanSnapshotTest, MergeKeepsFirstHeadAndSlowestTail) {
  SpanRecorderConfig cfg;
  cfg.head_limit = 3;
  cfg.tail_k = 2;
  SpanRecorder a(cfg), b(cfg);
  a.Record(MakeSpan(1, 0, 10));
  a.Record(MakeSpan(2, 0, 80));
  b.Record(MakeSpan(11, 1, 50));
  b.Record(MakeSpan(12, 1, 99));
  b.Record(MakeSpan(13, 1, 5));
  SpanSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.recorded, 5u);
  // Head: a's spans first (canonical fold order), truncated to the
  // limit by b's.
  ASSERT_EQ(merged.head.size(), 3u);
  EXPECT_EQ(merged.head[0].id, 1u);
  EXPECT_EQ(merged.head[1].id, 2u);
  EXPECT_EQ(merged.head[2].id, 11u);
  // Tail: slowest-k of the union, order-invariant.
  ASSERT_EQ(merged.tail.size(), 2u);
  EXPECT_EQ(merged.tail[0].id, 12u);
  EXPECT_EQ(merged.tail[1].id, 2u);
}

TEST(SpanRecorderTest, RegisterMetricsExportsStageAggregates) {
  SpanRecorder rec;
  MetricRegistry registry;
  rec.RegisterMetrics(&registry);
  IoSpan s = MakeSpan(1, 0, 30);
  s.ctrl_end_us = s.start_us + 10;  // 10us controller, 20us flash
  rec.Record(s);
  rec.Record(MakeSpan(2, 1, 50));
  MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("span.count"), 2u);
  EXPECT_DOUBLE_EQ(snap.Value("span.total_sum_us"), 80.0);
  EXPECT_DOUBLE_EQ(snap.Value("span.controller_sum_us"), 10.0);
  EXPECT_DOUBLE_EQ(snap.Value("span.flash_sum_us"), 70.0);
  EXPECT_DOUBLE_EQ(snap.Value("span.queue_wait_sum_us"), 0.0);
}

// ---------------------------------------------------------------------
// Stage table ("where the time went")
// ---------------------------------------------------------------------

TEST(StageTableTest, RendersStageRowsFromSpanMetrics) {
  SpanRecorder rec;
  MetricRegistry registry;
  rec.RegisterMetrics(&registry);
  for (uint64_t id = 1; id <= 4; ++id) {
    IoSpan s = MakeSpan(id, 0, 40);
    s.ctrl_end_us = s.start_us + 15;
    rec.Record(s);
  }
  std::string table = RenderStageBreakdown(registry.Snapshot());
  EXPECT_NE(table.find("Where the time went (4 IO spans"), std::string::npos)
      << table;
  EXPECT_NE(table.find("controller"), std::string::npos);
  EXPECT_NE(table.find("flash"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  // No IO had a bus stage: the bus row is skipped, not rendered as 0s.
  EXPECT_EQ(table.find("bus"), std::string::npos) << table;
}

TEST(StageTableTest, EmptyWithoutSpanMetrics) {
  MetricRegistry registry;
  registry.GetCounter("device.reads")->value = 7;
  EXPECT_EQ(RenderStageBreakdown(registry.Snapshot()), "");
}

// ---------------------------------------------------------------------
// DeviceTimeline capture: golden export + bus-model invariants
// ---------------------------------------------------------------------

TEST(DeviceTimelineSpanTest, GoldenChromeTraceExport) {
  // Serialized controller over two channels, three IOs: id 2 waits on
  // the controller (start 5), id 3 waits on channel 0 (start 25,
  // submitted at 1). Every ts/dur below is hand-checkable from the
  // busy-until arithmetic in src/sim/device_timeline.cc.
  SpanRecorderConfig cfg;
  cfg.head_limit = 8;
  cfg.tail_k = 2;
  SpanRecorder rec(cfg);
  DeviceTimeline tl(2, /*serialized_controller=*/true, 1,
                    /*initial_busy_us=*/0);
  tl.AttachSpans(&rec);
  tl.Submit(1, 0, 0, IoStages{5, 20, 0}, 0);
  tl.Submit(2, 0, 1, IoStages{5, 20, 0}, 0);
  tl.Submit(3, 2, 0, IoStages{5, 10, 0}, 1);
  tl.ResolveAll(nullptr);
  ChromeTraceOptions opt;
  opt.process_name = "golden";
  opt.serialized_controller = true;
  const std::string kGolden = R"({
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "pid": 0,
   "args": {
    "name": "golden"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "channel 0"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 1,
   "args": {
    "name": "channel 1"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 1000,
   "args": {
    "name": "controller"
   }
  },
  {
   "name": "io",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "dur": 25,
   "args": {
    "id": 1,
    "queue_wait_us": 0,
    "controller_us": 5,
    "flash_us": 20,
    "bus_us": 0,
    "total_us": 25
   }
  },
  {
   "name": "io",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 0,
   "ts": 25,
   "dur": 15,
   "args": {
    "id": 3,
    "queue_wait_us": 24,
    "controller_us": 5,
    "flash_us": 10,
    "bus_us": 0,
    "total_us": 39
   }
  },
  {
   "name": "io",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 1,
   "ts": 5,
   "dur": 25,
   "args": {
    "id": 2,
    "queue_wait_us": 5,
    "controller_us": 5,
    "flash_us": 20,
    "bus_us": 0,
    "total_us": 30
   }
  },
  {
   "name": "ctrl",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 1000,
   "ts": 0,
   "dur": 5,
   "args": {
    "id": 1
   }
  },
  {
   "name": "ctrl",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 1000,
   "ts": 5,
   "dur": 5,
   "args": {
    "id": 2
   }
  },
  {
   "name": "ctrl",
   "cat": "device",
   "ph": "X",
   "pid": 0,
   "tid": 1000,
   "ts": 25,
   "dur": 5,
   "args": {
    "id": 3
   }
  },
  {
   "name": "queue_wait",
   "cat": "queue",
   "ph": "b",
   "id": 2,
   "pid": 0,
   "tid": 1,
   "ts": 0
  },
  {
   "name": "queue_wait",
   "cat": "queue",
   "ph": "e",
   "id": 2,
   "pid": 0,
   "tid": 1,
   "ts": 5
  },
  {
   "name": "queue_wait",
   "cat": "queue",
   "ph": "b",
   "id": 3,
   "pid": 0,
   "tid": 0,
   "ts": 1
  },
  {
   "name": "queue_wait",
   "cat": "queue",
   "ph": "e",
   "id": 3,
   "pid": 0,
   "tid": 0,
   "ts": 25
  }
 ]
})";
  EXPECT_EQ(ChromeTraceJson(rec.Snapshot(), opt), kGolden);
}

TEST(DeviceTimelineSpanTest, BusModelSpansKeepChainInvariants) {
  SpanRecorder rec;
  DeviceTimeline tl(2, /*serialized_controller=*/false, 1, 0);
  tl.AttachSpans(&rec);
  // Three IOs per channel with a bus stage slower than the flash
  // stage: transfers serialize on the channel's bus slot, so later
  // IOs' bus_start exceeds their own flash_end.
  uint64_t id = 0;
  for (uint32_t ch = 0; ch < 2; ++ch) {
    for (int i = 0; i < 3; ++i) {
      tl.Submit(++id, 0, ch, IoStages{2, 10, 20}, 0);
    }
  }
  tl.ResolveAll(nullptr);
  SpanSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.recorded, 6u);
  ASSERT_EQ(snap.head.size(), 6u);
  bool any_bus_wait = false;
  for (const IoSpan& s : snap.head) {
    ExpectChainInvariants(s, 2);
    EXPECT_EQ(s.BusUs(), 20u) << "io " << s.id;
    if (s.bus_start_us > s.flash_end_us) any_bus_wait = true;
  }
  EXPECT_TRUE(any_bus_wait) << "bus slots never contended";
}

TEST(DeviceTimelineSpanTest, AttachNeverPerturbsOutcomes) {
  auto outcomes_with = [](SpanRecorder* rec) {
    DeviceTimeline tl(4, /*serialized_controller=*/false, 1, 0);
    if (rec != nullptr) tl.AttachSpans(rec);
    for (uint64_t i = 0; i < 64; ++i) {
      IoStages stages;
      stages.controller_us = 2.0 + static_cast<double>(i % 5);
      stages.channel_us = 20.0 + 3.0 * static_cast<double>(i % 7);
      tl.Submit(i + 1, i / 4, static_cast<uint32_t>(i % 4), stages);
    }
    std::vector<IoOutcome> out;
    tl.ResolveAll(&out);
    return out;
  };
  SpanRecorder rec;
  std::vector<IoOutcome> traced = outcomes_with(&rec);
  std::vector<IoOutcome> bare = outcomes_with(nullptr);
  ASSERT_EQ(traced.size(), bare.size());
  for (size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].id, bare[i].id);
    EXPECT_EQ(traced[i].start_us, bare[i].start_us);
    EXPECT_EQ(traced[i].complete_us, bare[i].complete_us);
  }
  EXPECT_EQ(rec.recorded(), traced.size());
}

// ---------------------------------------------------------------------
// AsyncSimDevice: end-to-end spans through the device stack
// ---------------------------------------------------------------------

/// A deterministic multi-channel simulated device (mirrors
/// async_device_test.cc): page-mapping FTL over `channels` channels.
std::unique_ptr<SimDevice> ChanneledDevice(uint32_t channels,
                                           double controller_us = 0,
                                           bool pipelined = true,
                                           bool bus_contention = false) {
  ArrayConfig ac;
  ac.chip_geometry.page_data_bytes = 4096;
  ac.chip_geometry.pages_per_block = 32;
  ac.chip_geometry.blocks = 128;  // per channel
  ac.timing = FlashTiming::Slc();
  ac.channels = channels;
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  pm.write_streams = 4;
  ControllerConfig cc;
  cc.read_overhead_us = 10.0;
  cc.write_overhead_us = 10.0;
  cc.bus_read_mb_s = 1000.0;
  cc.bus_write_mb_s = 1000.0;
  cc.gc_slice_us = 0.0;
  cc.controller_us = controller_us;
  cc.pipelined = pipelined;
  cc.channel_bus_contention = bus_contention;
  return std::make_unique<SimDevice>(
      "mc" + std::to_string(channels),
      std::make_unique<PageMappingFtl>(std::make_unique<FlashArray>(ac), pm),
      cc, std::make_shared<VirtualClock>());
}

/// Enqueues `count` striped 4KB writes at a fixed submit time (queue
/// depth 4 forces backpressure waits) and drains; returns completions.
std::vector<IoCompletion> DriveWorkload(AsyncSimDevice* dev, int count) {
  uint64_t t0 = dev->clock()->NowUs();
  for (int i = 0; i < count; ++i) {
    auto tok = dev->Enqueue(
        t0, IoRequest{static_cast<uint64_t>(i) * 4096, 4096, IoMode::kWrite});
    EXPECT_TRUE(tok.ok()) << tok.status();
  }
  return dev->DrainAll();
}

TEST(AsyncSimDeviceSpanTest, SpanChainInvariantsAcrossModels) {
  struct ModelCfg {
    double controller_us;
    bool pipelined;
    bool bus;
  };
  for (const ModelCfg& m : std::vector<ModelCfg>{
           {0, true, false},    // fully pipelined
           {25, false, false},  // bounded controller
           {0, true, true}}) {  // bus contention
    SpanRecorder rec;
    AsyncSimDevice dev(ChanneledDevice(4, m.controller_us, m.pipelined, m.bus),
                       /*queue_depth=*/4);
    dev.AttachSpans(&rec);
    std::vector<IoCompletion> done = DriveWorkload(&dev, 32);
    ASSERT_EQ(done.size(), 32u);
    SpanSnapshot snap = rec.Snapshot();
    EXPECT_EQ(snap.recorded, 32u);
    ASSERT_EQ(snap.head.size(), 32u);
    bool any_queue_wait = false;
    for (const IoSpan& s : snap.head) {
      ExpectChainInvariants(s, 4);
      if (s.QueueWaitUs() > 0) any_queue_wait = true;
    }
    // 32 same-instant submissions through depth 4 must make some IO
    // wait; spans see that wait from the host submit time.
    EXPECT_TRUE(any_queue_wait);
    // Completion times match the spans' (same id, same clock).
    for (const IoCompletion& c : done) {
      auto it = std::find_if(
          snap.head.begin(), snap.head.end(),
          [&](const IoSpan& s) { return s.id == c.token; });
      ASSERT_NE(it, snap.head.end()) << "token " << c.token;
      EXPECT_EQ(it->complete_us, c.complete_us) << "token " << c.token;
      EXPECT_EQ(it->submit_us, c.submit_us) << "token " << c.token;
    }
  }
}

TEST(AsyncSimDeviceSpanTest, AttachedRunIsByteIdenticalToDetached) {
  auto run = [](bool attach, SpanRecorder* rec) {
    AsyncSimDevice dev(ChanneledDevice(4), /*queue_depth=*/8);
    if (attach) dev.AttachSpans(rec);
    return DriveWorkload(&dev, 48);
  };
  SpanRecorder rec;
  std::vector<IoCompletion> traced = run(true, &rec);
  std::vector<IoCompletion> bare = run(false, nullptr);
  ASSERT_EQ(traced.size(), bare.size());
  for (size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].token, bare[i].token);
    EXPECT_EQ(traced[i].submit_us, bare[i].submit_us);
    EXPECT_EQ(traced[i].complete_us, bare[i].complete_us);
  }
  EXPECT_EQ(rec.recorded(), traced.size());
}

TEST(AsyncSimDeviceSpanTest, ChromeTraceByteIdenticalAcrossShards) {
  auto json_with_shards = [](uint32_t shards) {
    SpanRecorder rec;
    AsyncSimDevice dev(ChanneledDevice(4), /*queue_depth=*/8, shards);
    dev.AttachSpans(&rec);
    DriveWorkload(&dev, 64);
    ChromeTraceOptions opt;
    opt.process_name = "shards";
    return ChromeTraceJson(rec.Snapshot(), opt);
  };
  std::string one = json_with_shards(1);
  EXPECT_EQ(json_with_shards(4), one);
  EXPECT_EQ(json_with_shards(2), one);
}

}  // namespace
}  // namespace uflip
