// Integration tests: the paper's qualitative results must emerge from
// the simulated devices end-to-end -- the Table 3 shape, the two-phase
// model, pause absorption, locality, partitioning limits and pattern
// pathologies. These run the actual uFLIP machinery (state enforcement,
// micro-benchmarks, extraction) on small device instances.
#include <gtest/gtest.h>

#include "src/core/methodology.h"
#include "src/core/microbench.h"
#include "src/core/table3.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

// Shared setup: device in random state, settled, with an idle pause.
std::unique_ptr<SimDevice> ReadyDevice(const std::string& id,
                                       uint64_t capacity = 96ULL << 20) {
  auto dev = MakeTestDevice(id, capacity);
  auto enforce = EnforceRandomState(dev.get());
  EXPECT_TRUE(enforce.ok()) << enforce.status();
  // Settle: drain hybrid log regions (cf. bench_util.h).
  uint64_t cap = dev->capacity_bytes();
  PatternSpec rw = PatternSpec::RandomWrite(32768, cap / 2, cap / 4);
  rw.io_count = 128;
  EXPECT_TRUE(ExecuteRun(dev.get(), rw).ok());
  PatternSpec sw = PatternSpec::SequentialWrite(32768, cap / 2, cap / 2);
  sw.io_count = 1280;
  EXPECT_TRUE(ExecuteRun(dev.get(), sw).ok());
  dev->virtual_clock()->SleepUs(5000000);
  return dev;
}

double MeanMs(SimDevice* dev, PatternSpec spec, uint32_t ios = 192,
              uint32_t ignore = 48) {
  spec.io_count = ios;
  spec.io_ignore = ignore;
  dev->virtual_clock()->SleepUs(2000000);
  auto run = ExecuteRun(dev, spec);
  EXPECT_TRUE(run.ok()) << run.status();
  return run.ok() ? run->Stats().mean_us / 1000.0 : -1;
}

TEST(PaperShape, ReadsCheapWritesOrderedByRandomness) {
  // On every representative device: SR <= RR << RW and SW << RW.
  for (const char* id :
       {"memoright", "samsung", "kingston-dti", "transcend-module"}) {
    auto dev = ReadyDevice(id);
    uint64_t cap = dev->capacity_bytes();
    double sr = MeanMs(dev.get(), PatternSpec::SequentialRead(32768, 0, cap));
    double rr = MeanMs(dev.get(), PatternSpec::RandomRead(32768, 0, cap));
    double sw = MeanMs(dev.get(),
                       PatternSpec::SequentialWrite(32768, 0, cap / 2));
    double rw = MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
    EXPECT_LE(sr, rr * 1.2) << id;
    EXPECT_GT(rw, 3.0 * sw) << id << " rw=" << rw << " sw=" << sw;
    EXPECT_GT(rw, 3.0 * rr) << id;
  }
}

TEST(PaperShape, UsbStickRandomWritesOrdersOfMagnitudeWorse) {
  auto dev = ReadyDevice("kingston-dti");
  uint64_t cap = dev->capacity_bytes();
  double sw =
      MeanMs(dev.get(), PatternSpec::SequentialWrite(32768, 0, cap / 2));
  double rw = MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
  EXPECT_GT(rw / sw, 30.0);  // paper: ~90x
}

TEST(PaperShape, HighEndSsdKeepsRandomWritesModerate) {
  auto dev = ReadyDevice("memoright");
  uint64_t cap = dev->capacity_bytes();
  double sw =
      MeanMs(dev.get(), PatternSpec::SequentialWrite(32768, 0, cap / 2));
  double rw = MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
  EXPECT_GT(rw / sw, 3.0);
  EXPECT_LT(rw / sw, 40.0);  // paper: ~16x
}

TEST(PaperShape, LocalityMakesRandomWritesCheap) {
  // Figure 8: RW within a small area ~ SW; RW over the device >> SW.
  auto dev = ReadyDevice("mtron");
  uint64_t cap = dev->capacity_bytes();
  double rw_local =
      MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, 2 << 20));
  double rw_global =
      MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
  EXPECT_GT(rw_global, 2.5 * rw_local);
}

TEST(PaperShape, DtiHasNoLocalityBenefit) {
  // Table 3: Kingston DTI shows "No" locality.
  auto dev = ReadyDevice("kingston-dti", 64ULL << 20);
  double rw_local =
      MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, 2 << 20), 96, 24);
  double rw_global = MeanMs(
      dev.get(), PatternSpec::RandomWrite(32768, 0, dev->capacity_bytes()),
      96, 24);
  EXPECT_GT(rw_local, 0.3 * rw_global);
}

TEST(PaperShape, StartupPhaseAfterIdleOnHighEnd) {
  // Figure 3: cheap start-up then expensive running phase.
  auto dev = ReadyDevice("mtron");
  dev->virtual_clock()->SleepUs(10000000);
  PatternSpec rw =
      PatternSpec::RandomWrite(32768, 0, dev->capacity_bytes());
  rw.io_count = 400;
  auto run = ExecuteRun(dev.get(), rw);
  ASSERT_TRUE(run.ok());
  PhaseAnalysis phases = AnalyzePhases(run->ResponseTimes());
  EXPECT_GT(phases.startup_ios, 16u);
  EXPECT_LT(phases.startup_ios, 256u);
  EXPECT_GT(phases.running_mean_us, 3.0 * phases.startup_mean_us);
}

TEST(PaperShape, NoStartupOnSynchronousUsbStick) {
  auto dev = ReadyDevice("kingston-dti", 64ULL << 20);
  dev->virtual_clock()->SleepUs(10000000);
  PatternSpec sw =
      PatternSpec::SequentialWrite(32768, 0, dev->capacity_bytes() / 2);
  sw.io_count = 400;
  auto run = ExecuteRun(dev.get(), sw);
  ASSERT_TRUE(run.ok());
  PhaseAnalysis phases = AnalyzePhases(run->ResponseTimes());
  EXPECT_LT(phases.startup_ios, 16u);
}

TEST(PaperShape, PausesAbsorbRandomWriteCostOnAsyncSsd) {
  // Table 3 col 5 / design hint 7: with per-IO pauses ~ RW cost, random
  // writes behave like sequential writes on Memoright/Mtron; total
  // workload time does not improve.
  auto dev = ReadyDevice("memoright");
  uint64_t cap = dev->capacity_bytes();
  double rw = MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
  PatternSpec paused = PatternSpec::RandomWrite(32768, 0, cap);
  paused.time = TimeFunction::kPause;
  paused.pause_us = static_cast<uint64_t>(rw * 1000.0);
  double rw_paused = MeanMs(dev.get(), paused);
  EXPECT_LT(rw_paused, 0.4 * rw);
}

TEST(PaperShape, PausesDoNotHelpSynchronousDevices) {
  auto dev = ReadyDevice("samsung");
  uint64_t cap = dev->capacity_bytes();
  double rw = MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap));
  PatternSpec paused = PatternSpec::RandomWrite(32768, 0, cap);
  paused.time = TimeFunction::kPause;
  paused.pause_us = static_cast<uint64_t>(rw * 1000.0);
  double rw_paused = MeanMs(dev.get(), paused);
  EXPECT_GT(rw_paused, 0.6 * rw);
}

TEST(PaperShape, InPlacePathologicalOnStrictLogStick) {
  // Table 3: DTI in-place x40-class penalty.
  auto dev = ReadyDevice("kingston-dti", 64ULL << 20);
  double sw = MeanMs(
      dev.get(),
      PatternSpec::SequentialWrite(32768, 0, dev->capacity_bytes() / 2));
  PatternSpec inplace = PatternSpec::SequentialWrite(32768, 0, 4 * 32768);
  inplace.lba = LbaFunction::kOrdered;
  inplace.incr = 0;
  double ip = MeanMs(dev.get(), inplace, 96, 24);
  EXPECT_GT(ip / sw, 10.0);
}

TEST(PaperShape, InPlaceBenignOnSsds) {
  for (const char* id : {"memoright", "samsung"}) {
    auto dev = ReadyDevice(id);
    double sw = MeanMs(
        dev.get(),
        PatternSpec::SequentialWrite(32768, 0, dev->capacity_bytes() / 2));
    PatternSpec inplace = PatternSpec::SequentialWrite(32768, 0, 4 * 32768);
    inplace.lba = LbaFunction::kOrdered;
    inplace.incr = 0;
    double ip = MeanMs(dev.get(), inplace, 96, 24);
    EXPECT_LT(ip / sw, 3.0) << id;
  }
}

TEST(PaperShape, PartitioningDegradesBeyondLimit) {
  // Table 3 col 7: a few concurrent sequential streams are fine; many
  // degrade towards random-write cost.
  auto dev = ReadyDevice("kingston-dti", 64ULL << 20);
  uint64_t half = dev->capacity_bytes() / 2;
  auto part = [&](uint32_t parts) {
    PatternSpec s = PatternSpec::SequentialWrite(32768, 0, half);
    s.lba = LbaFunction::kPartitioned;
    s.partitions = parts;
    return MeanMs(dev.get(), s, 128, 32);
  };
  double at4 = part(4);    // pool size: fine
  double at64 = part(64);  // way beyond: thrash
  EXPECT_GT(at64, 5.0 * at4);
}

TEST(PaperShape, MixDoesNotBlowUpCosts) {
  // Section 5.2: "The Mix patterns did not affect significantly the
  // overall cost of the workloads."
  auto dev = ReadyDevice("memoright");
  uint64_t cap = dev->capacity_bytes();
  PatternSpec sr = PatternSpec::SequentialRead(32768, 0, cap / 2);
  sr.io_count = 128;
  PatternSpec rr = PatternSpec::RandomRead(32768, cap / 2, cap / 2);
  rr.io_count = 64;
  double sr_ms = MeanMs(dev.get(), sr, 128, 16);
  double rr_ms = MeanMs(dev.get(), rr, 128, 16);
  auto mix = ExecuteMixRun(dev.get(), sr, rr, 1);
  ASSERT_TRUE(mix.ok());
  double mix_ms = mix->Stats().mean_us / 1000.0;
  double expected = (sr_ms + rr_ms) / 2;
  EXPECT_LT(mix_ms, 1.5 * expected);
}

TEST(PaperShape, ParallelismDoesNotImproveThroughput) {
  // Design hint 7: total time with 4 concurrent readers is not better
  // than serial submission.
  auto dev = ReadyDevice("samsung");
  PatternSpec sr =
      PatternSpec::SequentialRead(32768, 0, dev->capacity_bytes() / 2);
  sr.io_count = 128;
  auto serial = ExecuteRun(dev.get(), sr);
  ASSERT_TRUE(serial.ok());
  double serial_total = serial->StatsIncludingStartup().sum_us;
  auto par = ExecuteParallelRun(dev.get(), sr, 4);
  ASSERT_TRUE(par.ok());
  const auto& ps = par->samples;
  double end = 0;
  for (const auto& s : ps) {
    end = std::max(end, static_cast<double>(s.submit_us) + s.rt_us);
  }
  double par_wall = end - static_cast<double>(ps.front().submit_us);
  EXPECT_GT(par_wall, 0.85 * serial_total);
}

TEST(PaperShape, AlignmentPenaltyOnSamsung) {
  // Section 5.2: on the Samsung SSD, misaligned random IOs cost
  // substantially more (18ms -> 32ms in the paper).
  auto dev = ReadyDevice("samsung");
  uint64_t cap = dev->capacity_bytes();
  double aligned =
      MeanMs(dev.get(), PatternSpec::RandomWrite(32768, 0, cap - (1 << 20)));
  PatternSpec shifted = PatternSpec::RandomWrite(32768, 0, cap - (1 << 20));
  shifted.io_shift = 512;
  double misaligned = MeanMs(dev.get(), shifted);
  EXPECT_GT(misaligned, 1.2 * aligned);
  EXPECT_LT(misaligned, 3.0 * aligned);
}

TEST(PaperShape, Table3ExtractionEndToEnd) {
  // The full Table 3 pipeline runs and produces a sane row for a USB
  // stick (the cheapest full check).
  auto dev = ReadyDevice("kingston-dti", 64ULL << 20);
  Table3Config cfg;
  cfg.io_count = 128;
  cfg.io_ignore = 32;
  auto row = ExtractTable3Row(dev.get(), cfg);
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_GT(row->sr_ms, 0);
  EXPECT_GT(row->rw_ms, 10 * row->sw_ms);
  EXPECT_EQ(row->locality_mb, 0);  // "No"
  EXPECT_GE(row->partitions, 2u);
  EXPECT_GT(row->inplace_factor, 10.0);
  std::string rendered = RenderTable3({*row});
  EXPECT_NE(rendered.find("No"), std::string::npos);
}

TEST(PaperShape, GranularityLinearForReads) {
  // Figure 6/7: read response time linear in IO size with small latency.
  auto dev = ReadyDevice("transcend-module", 64ULL << 20);
  uint64_t cap = dev->capacity_bytes();
  double r8 =
      MeanMs(dev.get(), PatternSpec::SequentialRead(8192, 0, cap), 96, 24);
  double r64 =
      MeanMs(dev.get(), PatternSpec::SequentialRead(65536, 0, cap), 96, 24);
  // 8x the size, less than 8x the cost (latency amortized), but clearly
  // more expensive.
  EXPECT_GT(r64, 2.0 * r8);
  EXPECT_LT(r64, 8.0 * r8);
}

}  // namespace
}  // namespace uflip
