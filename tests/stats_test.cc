// Stats subsystem tests: mergeable quantile sketches (t-digest + KLL
// behind one interface), replicated-experiment aggregation
// (ReplicateSet: pooled Welford moments, merged-sketch percentiles, 95%
// confidence intervals), and the sketch-backed StreamingStats path with
// its log-histogram cross-check and explicit under/overflow accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/run/run_stats.h"
#include "src/stats/quantile_sketch.h"
#include "src/stats/replicate_set.h"
#include "src/util/random.h"

namespace uflip {
namespace {

// ---------------------------------------------------------------------
// Test distributions (deterministic via the repo Rng)
// ---------------------------------------------------------------------

std::vector<double> Uniform(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) v.push_back(10 + 990 * rng.UniformDouble());
  return v;
}

/// Heavy-tailed (Pareto-like), the shape response-time tails take.
std::vector<double> Zipfianish(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.UniformDouble();
    v.push_back(50 / std::pow(1 - u * 0.999, 0.7));
  }
  return v;
}

/// Two separated modes (cache hit vs erase-stalled write).
std::vector<double> Bimodal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.8)) {
      v.push_back(100 + 20 * rng.UniformDouble());
    } else {
      v.push_back(5000 + 500 * rng.UniformDouble());
    }
  }
  return v;
}

/// The exact rank (fractional midpoint over ties) of `value` in the
/// sorted series, for rank-error assertions.
double RankOf(const std::vector<double>& sorted, double value) {
  auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  return (static_cast<double>(lo - sorted.begin()) +
          static_cast<double>(hi - sorted.begin())) /
         2.0;
}

/// Asserts every checked quantile of `sketch` sits within its rank
/// bound of the exact order statistic (+slack ranks for interpolation
/// convention).
void ExpectQuantilesWithinRankBound(const QuantileSketch& sketch,
                                    std::vector<double> samples,
                                    double extra_slack_ranks = 1.5) {
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double bound = sketch.RankErrorBound() * n + extra_slack_ranks;
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    double v = sketch.Quantile(q);
    EXPECT_NEAR(RankOf(samples, v), q * (n - 1), bound)
        << "q=" << q << " v=" << v << " (" << SketchKindName(sketch.kind())
        << ")";
  }
}

// ---------------------------------------------------------------------
// Sketch correctness, both kinds
// ---------------------------------------------------------------------

class SketchTest : public ::testing::TestWithParam<SketchKind> {
 protected:
  std::unique_ptr<QuantileSketch> Make() {
    return QuantileSketch::Create(GetParam());
  }
};

TEST_P(SketchTest, EmptyAndSingleSample) {
  auto s = Make();
  EXPECT_EQ(s->count(), 0u);
  EXPECT_EQ(s->Quantile(0.5), 0.0);
  s->Add(42.5);
  EXPECT_EQ(s->count(), 1u);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s->Quantile(q), 42.5) << "q=" << q;
  }
  // NaN samples are dropped, not propagated.
  s->Add(std::nan(""));
  EXPECT_EQ(s->count(), 1u);
}

TEST_P(SketchTest, ExactExtremesAndTwoSamples) {
  auto s = Make();
  s->Add(10);
  s->Add(20);
  EXPECT_DOUBLE_EQ(s->Quantile(0), 10);
  EXPECT_DOUBLE_EQ(s->Quantile(1), 20);
  EXPECT_EQ(s->count(), 2u);
}

TEST_P(SketchTest, QuantileAccuracyAcrossDistributions) {
  for (auto maker : {Uniform, Zipfianish, Bimodal}) {
    auto s = Make();
    std::vector<double> v = maker(20000, 7);
    for (double x : v) s->Add(x);
    ExpectQuantilesWithinRankBound(*s, v);
    EXPECT_DOUBLE_EQ(s->Quantile(0),
                     *std::min_element(v.begin(), v.end()));
    EXPECT_DOUBLE_EQ(s->Quantile(1),
                     *std::max_element(v.begin(), v.end()));
  }
}

TEST_P(SketchTest, MergeIsCommutativeWithinBound) {
  std::vector<double> a = Zipfianish(8000, 11);
  std::vector<double> b = Uniform(12000, 13);
  auto sa = Make();
  auto sb = Make();
  for (double x : a) sa->Add(x);
  for (double x : b) sb->Add(x);

  auto ab = sa->Clone();
  ab->Merge(*sb);
  auto ba = sb->Clone();
  ba->Merge(*sa);
  ASSERT_EQ(ab->count(), a.size() + b.size());
  ASSERT_EQ(ba->count(), ab->count());

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  double n = static_cast<double>(all.size());
  double bound = ab->RankErrorBound() * n + 1.5;
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    // Both orders agree with each other within the bound...
    EXPECT_NEAR(RankOf(all, ab->Quantile(q)), RankOf(all, ba->Quantile(q)),
                2 * bound)
        << "q=" << q;
    // ...and with the truth.
    EXPECT_NEAR(RankOf(all, ab->Quantile(q)), q * (n - 1), bound)
        << "q=" << q;
  }
}

TEST_P(SketchTest, MergeIsAssociativeWithinBound) {
  std::vector<double> chunks_all;
  std::vector<std::unique_ptr<QuantileSketch>> sk;
  for (uint64_t seed : {3u, 4u, 5u}) {
    std::vector<double> c = Bimodal(5000, seed);
    sk.push_back(Make());
    for (double x : c) sk.back()->Add(x);
    chunks_all.insert(chunks_all.end(), c.begin(), c.end());
  }
  // (a + b) + c vs a + (b + c).
  auto left = sk[0]->Clone();
  left->Merge(*sk[1]);
  left->Merge(*sk[2]);
  auto bc = sk[1]->Clone();
  bc->Merge(*sk[2]);
  auto right = sk[0]->Clone();
  right->Merge(*bc);
  ASSERT_EQ(left->count(), chunks_all.size());
  ASSERT_EQ(right->count(), chunks_all.size());

  std::sort(chunks_all.begin(), chunks_all.end());
  double n = static_cast<double>(chunks_all.size());
  double bound = left->RankErrorBound() * n + 1.5;
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    EXPECT_NEAR(RankOf(chunks_all, left->Quantile(q)), q * (n - 1), bound);
    EXPECT_NEAR(RankOf(chunks_all, right->Quantile(q)), q * (n - 1), bound);
  }
}

// The ftl_compare --reps contract: merging per-repetition sketches must
// estimate the concatenated sample set as well as one sketch fed
// everything -- this is the regression test pinning the acceptance
// criterion.
TEST_P(SketchTest, MergedRepsMatchSingleSketchOverConcatenation) {
  constexpr int kReps = 3;
  auto merged = Make();
  auto single = Make();
  std::vector<double> all;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<double> c = Zipfianish(6000, 100 + rep);
    auto s = Make();
    for (double x : c) {
      s->Add(x);
      single->Add(x);
    }
    merged->Merge(*s);
    all.insert(all.end(), c.begin(), c.end());
  }
  ASSERT_EQ(merged->count(), all.size());
  ASSERT_EQ(single->count(), all.size());

  std::sort(all.begin(), all.end());
  double n = static_cast<double>(all.size());
  double bound = merged->RankErrorBound() * n + 1.5;
  for (double q : {0.50, 0.95, 0.99}) {
    double vm = merged->Quantile(q);
    double vs = single->Quantile(q);
    // Each within the configured bound of the true order statistic,
    // hence within 2x of each other.
    EXPECT_NEAR(RankOf(all, vm), q * (n - 1), bound) << "merged q=" << q;
    EXPECT_NEAR(RankOf(all, vs), q * (n - 1), bound) << "single q=" << q;
    EXPECT_NEAR(RankOf(all, vm), RankOf(all, vs), 2 * bound) << "q=" << q;
  }
}

TEST_P(SketchTest, MergeIsDeterministic) {
  std::vector<double> a = Uniform(5000, 21);
  std::vector<double> b = Bimodal(5000, 22);
  auto make_merged = [&] {
    auto sa = Make();
    auto sb = Make();
    for (double x : a) sa->Add(x);
    for (double x : b) sb->Add(x);
    sa->Merge(*sb);
    return sa;
  };
  auto m1 = make_merged();
  auto m2 = make_merged();
  for (double q : {0.01, 0.5, 0.95, 0.999}) {
    EXPECT_DOUBLE_EQ(m1->Quantile(q), m2->Quantile(q)) << "q=" << q;
  }
}

TEST_P(SketchTest, MemoryStaysBoundedOverAMillionSamples) {
  auto s = Make();
  Rng rng(5);
  size_t peak = 0;
  for (int i = 0; i < 1000000; ++i) {
    s->Add(100 / std::pow(1 - rng.UniformDouble() * 0.9999, 0.5));
    peak = std::max(peak, s->RetainedItems());
  }
  EXPECT_EQ(s->count(), 1000000u);
  // O(1): bounded by the accuracy parameter, nowhere near the stream
  // length (t-digest: centroids + 512-sample buffer; KLL: compactor
  // stack).
  EXPECT_LT(peak, 6000u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SketchTest,
                         ::testing::Values(SketchKind::kTDigest,
                                           SketchKind::kKll),
                         [](const auto& info) {
                           return info.param == SketchKind::kTDigest
                                      ? "TDigest"
                                      : "Kll";
                         });

// t-digest merging compacts the sorted centroid union, so both operand
// orders give bit-identical quantiles (stronger than the within-bound
// guarantee the interface promises).
TEST(TDigestTest, MergeIsExactlyCommutative) {
  std::vector<double> a = Zipfianish(4000, 31);
  std::vector<double> b = Bimodal(4000, 32);
  TDigest sa, sb;
  for (double x : a) sa.Add(x);
  for (double x : b) sb.Add(x);
  TDigest ab = sa;
  ab.Merge(sb);
  TDigest ba = sb;
  ba.Merge(sa);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(ab.Quantile(q), ba.Quantile(q)) << "q=" << q;
  }
}

TEST(TDigestTest, CentroidBudgetTracksCompression) {
  TDigest small(50), big(500);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    double x = rng.UniformDouble();
    small.Add(x);
    big.Add(x);
  }
  EXPECT_LT(small.CentroidCount(), big.CentroidCount());
  EXPECT_LT(big.CentroidCount(), 1200u);
  EXPECT_GT(small.RankErrorBound(), big.RankErrorBound());
}

// ---------------------------------------------------------------------
// ReplicateSet
// ---------------------------------------------------------------------

RepSummary SummaryOf(const std::vector<double>& samples) {
  return RunStats::Compute(samples).Summary();
}

TEST(ReplicateSetTest, PooledMomentsMatchConcatenatedWelford) {
  std::vector<double> a = Zipfianish(700, 41);
  std::vector<double> b = Uniform(1300, 42);
  std::vector<double> c = Bimodal(400, 43);
  ReplicateSet set;
  set.Add(SummaryOf(a));
  set.Add(SummaryOf(b));
  set.Add(SummaryOf(c));
  EXPECT_EQ(set.reps(), 3u);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  RunStats exact = RunStats::Compute(all);
  ReplicateAggregate agg = set.Aggregate();
  EXPECT_EQ(agg.count, exact.count);
  EXPECT_NEAR(agg.mean, exact.mean_us, 1e-9 * exact.mean_us);
  EXPECT_NEAR(agg.stddev, exact.stddev_us, 1e-9 * exact.stddev_us);
  EXPECT_DOUBLE_EQ(agg.min, exact.min_us);
  EXPECT_DOUBLE_EQ(agg.max, exact.max_us);

  // Merged-sketch percentiles track the concatenation's order
  // statistics within the sketch bound.
  ASSERT_NE(agg.sketch, nullptr);
  std::sort(all.begin(), all.end());
  double n = static_cast<double>(all.size());
  double bound = agg.sketch->RankErrorBound() * n + 1.5;
  EXPECT_NEAR(RankOf(all, agg.p50), 0.50 * (n - 1), bound);
  EXPECT_NEAR(RankOf(all, agg.p95), 0.95 * (n - 1), bound);
  EXPECT_NEAR(RankOf(all, agg.p99), 0.99 * (n - 1), bound);
}

TEST(ReplicateSetTest, ConfidenceIntervalKnownValues) {
  // Three reps with means 10, 12, 14: mean of rep means 12, sample
  // stddev 2, CI = t_{0.975,2} * 2 / sqrt(3) = 4.303 * 2 / 1.7320508.
  ReplicateSet set;
  for (double m : {10.0, 12.0, 14.0}) {
    RepSummary r;
    r.count = 100;
    r.mean = m;
    r.m2 = 0;
    r.min = m;
    r.max = m;
    set.Add(r);
  }
  ReplicateAggregate agg = set.Aggregate();
  EXPECT_EQ(agg.reps, 3u);
  EXPECT_DOUBLE_EQ(agg.mean, 12.0);  // equal counts: pooled == mean of means
  EXPECT_NEAR(agg.mean_ci95_half, 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(ReplicateSetTest, SingleRepHasNoInterval) {
  ReplicateSet set;
  set.Add(SummaryOf(Uniform(100, 51)));
  ReplicateAggregate agg = set.Aggregate();
  EXPECT_EQ(agg.reps, 1u);
  EXPECT_DOUBLE_EQ(agg.mean_ci95_half, 0.0);
}

TEST(ReplicateSetTest, TCriticalTable) {
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(1), 0.0);
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(2), 12.706);
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(3), 4.303);
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(31), 2.042);
  // Beyond the table: bracketed conservatively (wider than exact t),
  // not snapped straight to the normal 1.96.
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(41), 2.040);
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(100), 2.000);
  // Never below the exact t at finite df (which exceeds 1.960
  // everywhere): the final bracket rounds up to 1.970.
  EXPECT_DOUBLE_EQ(ReplicateSet::TCritical95(1000), 1.970);
}

TEST(ReplicateSetTest, CiOverlapSemantics) {
  ReplicateAggregate fast;
  fast.mean = 500;
  fast.mean_ci95_half = 80;
  ReplicateAggregate tie;
  tie.mean = 550;
  tie.mean_ci95_half = 60;
  ReplicateAggregate slow;
  slow.mean = 900;
  slow.mean_ci95_half = 20;
  EXPECT_TRUE(fast.OverlapsCi(tie));
  EXPECT_TRUE(tie.OverlapsCi(fast));
  EXPECT_FALSE(fast.OverlapsCi(slow));
}

TEST(ReplicateSetTest, SketchlessRepsFallBackToWeightedPercentiles) {
  ReplicateSet set;
  RepSummary a;
  a.count = 100;
  a.mean = 10;
  a.p50 = 9;
  a.p95 = 20;
  a.p99 = 30;
  RepSummary b = a;
  b.count = 300;
  b.p50 = 13;
  set.Add(a);
  set.Add(b);
  ReplicateAggregate agg = set.Aggregate();
  EXPECT_EQ(agg.sketch, nullptr);
  EXPECT_DOUBLE_EQ(agg.p50, (9.0 * 100 + 13.0 * 300) / 400);
}

TEST(ReplicateSetTest, MixedSketchRepsFallBackRatherThanUndercover) {
  // One rep with a sketch, one without (and, equivalently, mixed
  // kinds): a merged sketch would cover fewer samples than the pooled
  // moments claim, so percentiles must fall back to the weighted
  // estimates -- which span every rep -- instead.
  std::vector<double> v = Uniform(500, 55);
  RepSummary with = RunStats::Compute(v).Summary();
  RepSummary without = with;
  without.sketch = nullptr;
  without.p50 = with.p50 + 100;

  for (bool sketch_first : {true, false}) {
    ReplicateSet set;
    set.Add(sketch_first ? with : without);
    set.Add(sketch_first ? without : with);
    ReplicateAggregate agg = set.Aggregate();
    EXPECT_EQ(agg.sketch, nullptr);
    EXPECT_DOUBLE_EQ(agg.p50, (with.p50 + without.p50) / 2);
    EXPECT_EQ(agg.count, 1000u);
  }

  // Mixed kinds likewise drop the merge.
  RepSummary kll = with;
  auto ks = std::make_shared<KllSketch>();
  for (double x : v) ks->Add(x);
  kll.sketch = ks;
  ReplicateSet mixed;
  mixed.Add(with);
  mixed.Add(kll);
  EXPECT_EQ(mixed.Aggregate().sketch, nullptr);
}

// ---------------------------------------------------------------------
// StreamingStats: sketch path, cross-check, under/overflow accounting
// ---------------------------------------------------------------------

TEST(StreamingStatsSketchTest, RunStatsCarriesSketchBothPaths) {
  std::vector<double> v = Bimodal(4000, 61);
  RunStats exact = RunStats::Compute(v);
  ASSERT_TRUE(exact.HasSketch());
  EXPECT_EQ(exact.sketch->count(), v.size());

  StreamingStats ss;
  for (double x : v) ss.Add(x);
  RunStats online = ss.ToRunStats();
  ASSERT_TRUE(online.HasSketch());
  EXPECT_EQ(online.sketch->count(), v.size());
  // Same samples, same sketch algorithm: identical quantiles off either
  // path's sketch.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(online.SketchQuantile(q), exact.SketchQuantile(q));
  }
  // And the streamed percentiles ARE the sketch's.
  EXPECT_DOUBLE_EQ(online.p50_us, online.SketchQuantile(0.50));
  EXPECT_DOUBLE_EQ(online.p95_us, online.SketchQuantile(0.95));
  EXPECT_DOUBLE_EQ(online.p99_us, online.SketchQuantile(0.99));
}

TEST(StreamingStatsSketchTest, CleanSeriesDoesNotDiverge) {
  StreamingStats ss;
  for (double x : Zipfianish(20000, 71)) ss.Add(x);
  RunStats s = ss.ToRunStats();
  ASSERT_TRUE(s.hist_check.has_value());
  EXPECT_EQ(s.hist_check->underflow, 0u);
  EXPECT_EQ(s.hist_check->overflow, 0u);
  EXPECT_FALSE(s.hist_check->divergent)
      << "divergence " << s.hist_check->divergence;
  EXPECT_LE(s.hist_check->divergence, RunStats::kDivergenceThreshold);
}

TEST(StreamingStatsSketchTest, ShortRunsDoNotFalseAlarm) {
  // Regression: with few samples the sketch interpolates between order
  // statistics, so its bucket can sit ~1 rank off the target -- which
  // is 1/n > 2% for n < 50 and used to flag every short clean run as
  // divergent. The quantization slack must absorb it across sizes.
  for (size_t n : {5u, 20u, 49u}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      StreamingStats ss;
      for (double x : Zipfianish(n, 1000 + seed)) ss.Add(x);
      RunStats s = ss.ToRunStats();
      ASSERT_TRUE(s.hist_check.has_value());
      EXPECT_FALSE(s.hist_check->divergent)
          << "n=" << n << " seed=" << seed << " divergence "
          << s.hist_check->divergence;
    }
  }
}

TEST(StreamingStatsSketchTest, CountsUnderAndOverflowExplicitly) {
  StreamingStats ss;
  // The histogram floor is 1e-3 us and its range tops out near 5e14 us:
  // everything below / beyond used to be clamped silently into the edge
  // buckets.
  ss.Add(1e-7);
  ss.Add(5e-4);
  ss.Add(1e16);
  for (double x : Uniform(2000, 81)) ss.Add(x);
  EXPECT_EQ(ss.hist_underflow(), 2u);
  EXPECT_EQ(ss.hist_overflow(), 1u);
  RunStats s = ss.ToRunStats();
  ASSERT_TRUE(s.hist_check.has_value());
  EXPECT_EQ(s.hist_check->underflow, 2u);
  EXPECT_EQ(s.hist_check->overflow, 1u);
  // The exact moments and the sketch still cover the clamped samples.
  EXPECT_DOUBLE_EQ(s.min_us, 1e-7);
  EXPECT_DOUBLE_EQ(s.max_us, 1e16);
  EXPECT_DOUBLE_EQ(s.SketchQuantile(1.0), 1e16);
  // Polluted edge buckets are excluded from the divergence signal, so
  // the clamping alone must not flag the sketch as divergent.
  EXPECT_FALSE(s.hist_check->divergent)
      << "divergence " << s.hist_check->divergence;
}

TEST(StreamingStatsSketchTest, MillionEventStreamStaysBounded) {
  // The acceptance-criterion shape: >= 1M streamed samples, O(1)
  // retained state, percentiles still within the sketch bound.
  StreamingStats ss;
  Rng rng(91);
  for (int i = 0; i < 1000000; ++i) {
    ss.Add(100 + 5000 * rng.UniformDouble());
  }
  EXPECT_EQ(ss.count(), 1000000u);
  EXPECT_LT(ss.sketch().RetainedItems(), 6000u);
  RunStats s = ss.ToRunStats();
  // Uniform[100, 5100]: p50 ~ 2600, p95 ~ 4850 -- within the rank
  // bound, which for a uniform density maps to ~bound * range.
  double slack = s.sketch->RankErrorBound() * 5000 * 1.5 + 1;
  EXPECT_NEAR(s.p50_us, 2600, slack);
  EXPECT_NEAR(s.p95_us, 4850, slack);
  ASSERT_TRUE(s.hist_check.has_value());
  EXPECT_FALSE(s.hist_check->divergent);
}

}  // namespace
}  // namespace uflip
