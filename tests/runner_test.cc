// Runner tests: run execution and statistics, IOIgnore handling,
// parallel-runner event interleaving on a serializing device, and the
// mix runner, using the analytic MemDevice.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/device/mem_device.h"
#include "src/run/runner.h"

namespace uflip {
namespace {

std::unique_ptr<MemDevice> Dev(double jitter = 0) {
  MemDeviceConfig cfg;
  cfg.capacity_bytes = 64ULL << 20;
  cfg.jitter_us = jitter;
  return std::make_unique<MemDevice>(cfg,
                                     std::make_shared<VirtualClock>());
}

TEST(RunStatsTest, BasicMoments) {
  RunStats s = RunStats::Compute({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min_us, 1);
  EXPECT_DOUBLE_EQ(s.max_us, 5);
  EXPECT_DOUBLE_EQ(s.mean_us, 3);
  EXPECT_DOUBLE_EQ(s.sum_us, 15);
  EXPECT_NEAR(s.stddev_us, std::sqrt(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.p50_us, 3);
}

TEST(RunStatsTest, IgnoresPrefix) {
  RunStats s = RunStats::Compute({100, 100, 1, 1}, 2);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_us, 1);
}

TEST(RunStatsTest, EmptyAndOutOfRangePrefix) {
  RunStats s = RunStats::Compute({}, 0);
  EXPECT_EQ(s.count, 0u);
  s = RunStats::Compute({1, 2}, 5);
  EXPECT_EQ(s.count, 0u);
}

TEST(RunStatsTest, HighMeanLowVarianceDoesNotCancel) {
  // Regression: the old E[x^2] - E[x]^2 variance collapsed to 0 (or
  // negative, clamped) on high-mean low-variance series -- e.g. a long
  // trace of ~1e9us response times alternating by 1us, whose true
  // stddev is exactly 0.5. Welford keeps full precision.
  std::vector<double> v;
  for (int i = 0; i < 4096; ++i) {
    v.push_back(1e9 + static_cast<double>(i % 2));
  }
  RunStats exact = RunStats::Compute(v);
  EXPECT_NEAR(exact.stddev_us, 0.5, 1e-6);

  // The streaming accumulator shares the same arithmetic: identical
  // moments, bit for bit, over the same series.
  StreamingStats streaming;
  for (double x : v) streaming.Add(x);
  RunStats online = streaming.ToRunStats();
  EXPECT_DOUBLE_EQ(online.mean_us, exact.mean_us);
  EXPECT_DOUBLE_EQ(online.stddev_us, exact.stddev_us);
  EXPECT_NEAR(online.stddev_us, 0.5, 1e-6);
}

TEST(RunStatsTest, StreamingMomentsMatchComputeBitExactly) {
  // A skewed series with a wide dynamic range: streamed count / sum /
  // mean / stddev / min / max must equal the materialized computation
  // exactly (the percentiles alone carry histogram error).
  std::vector<double> v;
  uint64_t state = 12345;
  for (int i = 0; i < 2048; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v.push_back(50.0 + static_cast<double>(state % 1000000) / 7.0);
  }
  RunStats exact = RunStats::Compute(v);
  StreamingStats streaming;
  for (double x : v) streaming.Add(x);
  RunStats online = streaming.ToRunStats();
  EXPECT_EQ(online.count, exact.count);
  EXPECT_DOUBLE_EQ(online.sum_us, exact.sum_us);
  EXPECT_DOUBLE_EQ(online.mean_us, exact.mean_us);
  EXPECT_DOUBLE_EQ(online.stddev_us, exact.stddev_us);
  EXPECT_DOUBLE_EQ(online.min_us, exact.min_us);
  EXPECT_DOUBLE_EQ(online.max_us, exact.max_us);
}

TEST(RunnerTest, ExecutesAllIosAndAdvancesClock) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  spec.io_count = 64;
  auto run = ExecuteRun(dev.get(), spec);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->samples.size(), 64u);
  // MemDevice read: 100us + 0.005us/B * 32768 = 263.84us.
  EXPECT_NEAR(run->Stats().mean_us, 263.8, 1.0);
  // Clock advanced past the whole run.
  EXPECT_GE(dev->clock()->NowUs(), 64ull * 263);
  // Submission times strictly increase (consecutive pattern).
  for (size_t i = 1; i < run->samples.size(); ++i) {
    EXPECT_GT(run->samples[i].submit_us, run->samples[i - 1].submit_us);
  }
}

TEST(RunnerTest, RejectsTargetBeyondCapacity) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 128 << 20);
  EXPECT_FALSE(ExecuteRun(dev.get(), spec).ok());
}

TEST(RunnerTest, PausePatternStretchesWallTime) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  spec.io_count = 32;
  uint64_t start = dev->clock()->NowUs();
  auto base = ExecuteRun(dev.get(), spec);
  ASSERT_TRUE(base.ok());
  uint64_t base_wall = dev->clock()->NowUs() - start;

  spec.time = TimeFunction::kPause;
  spec.pause_us = 10000;
  start = dev->clock()->NowUs();
  auto paused = ExecuteRun(dev.get(), spec);
  ASSERT_TRUE(paused.ok());
  uint64_t paused_wall = dev->clock()->NowUs() - start;
  EXPECT_GE(paused_wall, base_wall + 31ull * 10000);
  // Response times themselves unchanged on this analytic device.
  EXPECT_NEAR(paused->Stats().mean_us, base->Stats().mean_us, 1.0);
}

TEST(RunnerTest, StatsExcludeIgnoredStartup) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  spec.io_count = 50;
  spec.io_ignore = 10;
  auto run = ExecuteRun(dev.get(), spec);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->Stats().count, 40u);
  EXPECT_EQ(run->StatsIncludingStartup().count, 50u);
}

TEST(ParallelRunnerTest, SerializingDeviceQueuesConcurrentIos) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 16 << 20);
  spec.io_count = 64;
  auto serial = ExecuteRun(dev.get(), spec);
  ASSERT_TRUE(serial.ok());

  auto par = ExecuteParallelRun(dev.get(), spec, 4);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->samples.size(), 64u);
  // With 4 processes on a serializing device, response time includes
  // queue wait: roughly 4x the serial response time.
  EXPECT_GT(par->Stats().mean_us, 2.5 * serial->Stats().mean_us);
  EXPECT_LT(par->Stats().mean_us, 6.0 * serial->Stats().mean_us);
}

TEST(ParallelRunnerTest, SlicesTargetSpacePerProcess) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialWrite(32768, 0, 16 << 20);
  spec.io_count = 32;
  auto par = ExecuteParallelRun(dev.get(), spec, 4);
  ASSERT_TRUE(par.ok());
  // Each process writes within its own quarter: offsets from all four
  // slices appear.
  uint64_t slice = (16ull << 20) / 4;
  std::vector<bool> seen(4, false);
  for (const auto& s : par->samples) {
    seen[s.req.offset / slice] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ParallelRunnerTest, RejectsDegenerateInputs) {
  auto dev = Dev();
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 1 << 20);
  spec.io_count = 8;
  EXPECT_FALSE(ExecuteParallelRun(dev.get(), spec, 0).ok());
  EXPECT_FALSE(ExecuteParallelRun(dev.get(), spec, 64).ok());  // slice < io
}

TEST(MixRunnerTest, InterleavesAtRatio) {
  auto dev = Dev();
  PatternSpec reads = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  PatternSpec writes = PatternSpec::SequentialWrite(32768, 8 << 20, 8 << 20);
  writes.io_count = 16;
  auto mix = ExecuteMixRun(dev.get(), reads, writes, 3);
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->samples.size(), 16u * 4);
  // Every 4th IO is a write.
  int write_count = 0;
  for (size_t i = 0; i < mix->samples.size(); ++i) {
    bool is_write = mix->samples[i].req.mode == IoMode::kWrite;
    write_count += is_write;
    EXPECT_EQ(is_write, i % 4 == 3);
  }
  EXPECT_EQ(write_count, 16);
}

TEST(MixRunnerTest, MeanMatchesWeightedBaselines) {
  auto dev = Dev();
  PatternSpec reads = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  PatternSpec writes = PatternSpec::SequentialWrite(32768, 8 << 20, 8 << 20);
  writes.io_count = 32;
  auto mix = ExecuteMixRun(dev.get(), reads, writes, 1);
  ASSERT_TRUE(mix.ok());
  // MemDevice: read 263.84us, write 412.14us -> 1:1 mix mean ~338us.
  EXPECT_NEAR(mix->Stats().mean_us, (263.84 + 412.14) / 2, 2.0);
}

TEST(MixRunnerTest, RejectsZeroRatio) {
  auto dev = Dev();
  PatternSpec a = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  EXPECT_FALSE(ExecuteMixRun(dev.get(), a, a, 0).ok());
}

}  // namespace
}  // namespace uflip
