// Discrete-event core tests (src/sim/): calendar pop order is invariant
// under permuted insertion, equal-timestamp events pop FIFO, the
// sharded calendar's parallel drain matches its serial merge, the
// device timeline produces identical outcomes at every shard count
// (the byte-identity contract behind --calendar_shards), and the
// per-channel bus-contention model pipelines transfers behind the next
// IO's flash stage. The ShardedCalendar / DeviceTimeline suites run
// under the TSan CI job (they exercise the multi-threaded drain).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "src/device/async_sim_device.h"
#include "src/device/sim_device.h"
#include "src/flash/array.h"
#include "src/ftl/page_mapping_ftl.h"
#include "src/sim/calendar.h"
#include "src/sim/device_timeline.h"
#include "src/sim/sharded_calendar.h"
#include "src/util/thread_pool.h"

namespace uflip {
namespace {

// ---------------------------------------------------------------------
// EventCalendar: ordering invariants
// ---------------------------------------------------------------------

TEST(EventCalendarTest, PopOrderInvariantUnderPermutedInsertion) {
  const std::vector<uint64_t> times = {50, 3,  97, 12, 71, 33,
                                       8,  64, 29, 90, 1,  45};
  auto pop_order = [&](const std::vector<size_t>& perm) {
    EventCalendar cal;
    for (size_t idx : perm) {
      Event e;
      e.time_us = times[idx];
      e.id = idx;
      cal.Schedule(e);
    }
    std::vector<uint64_t> out;
    while (!cal.empty()) out.push_back(cal.PopTop().time_us);
    return out;
  };
  std::vector<size_t> identity(times.size());
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<size_t> reversed(identity.rbegin(), identity.rend());
  std::vector<size_t> strided;
  for (size_t s = 0; s < 3; ++s) {
    for (size_t i = s; i < times.size(); i += 3) strided.push_back(i);
  }
  std::vector<uint64_t> expected = times;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(pop_order(identity), expected);
  EXPECT_EQ(pop_order(reversed), expected);
  EXPECT_EQ(pop_order(strided), expected);
}

TEST(EventCalendarTest, EqualTimestampsPopInInsertionOrder) {
  EventCalendar cal;
  // Two timestamp groups interleaved at insertion; within each group
  // the sequence number stamped at Schedule() must preserve FIFO.
  for (uint64_t i = 0; i < 8; ++i) {
    Event e;
    e.time_us = (i % 2 == 0) ? 10 : 20;
    e.id = i;
    cal.Schedule(e);
  }
  std::vector<uint64_t> at10, at20;
  while (!cal.empty()) {
    Event e = cal.PopTop();
    (e.time_us == 10 ? at10 : at20).push_back(e.id);
  }
  EXPECT_EQ(at10, (std::vector<uint64_t>{0, 2, 4, 6}));
  EXPECT_EQ(at20, (std::vector<uint64_t>{1, 3, 5, 7}));
}

// ---------------------------------------------------------------------
// ShardedCalendar: partitioning, merge order, parallel drain
// ---------------------------------------------------------------------

/// Records every delivered event; single-threaded drains only.
struct RecordingHandler : EventHandler {
  struct Rec {
    uint64_t time_us;
    uint64_t id;
    uint32_t channel;
  };
  std::vector<Rec> recs;
  void OnEvent(SimContext& ctx, const Event& e) override {
    recs.push_back({ctx.now_us(), e.id, e.channel});
  }
};

TEST(ShardedCalendarTest, ShardOfPartitionsChannelsByModulo) {
  ShardedCalendar cal(3);
  EXPECT_EQ(cal.shards(), 3u);
  for (uint32_t ch = 0; ch < 9; ++ch) EXPECT_EQ(cal.ShardOf(ch), ch % 3);
}

TEST(ShardedCalendarTest, RunAllMergesShardsInTimeThenShardOrder) {
  ShardedCalendar cal(2);
  // Channel 0/2 -> shard 0, channel 1/3 -> shard 1. The two events at
  // t=30 tie across shards; the serial merge breaks the tie by shard
  // index, so channel 2 (shard 0) must precede channel 3 (shard 1).
  struct Item {
    uint64_t t;
    uint32_t ch;
    uint64_t id;
  };
  const std::vector<Item> items = {{40, 0, 1}, {10, 1, 2}, {30, 2, 3},
                                   {30, 3, 4}, {20, 0, 5}, {50, 3, 6}};
  for (const Item& it : items) {
    Event e;
    e.time_us = it.t;
    e.channel = it.ch;
    e.id = it.id;
    cal.Schedule(e);
  }
  RecordingHandler h;
  cal.RunAll(&h);
  ASSERT_EQ(h.recs.size(), items.size());
  std::vector<uint64_t> ids;
  for (const auto& r : h.recs) {
    EXPECT_TRUE(ids.empty() || h.recs[ids.size() - 1].time_us <= r.time_us);
    ids.push_back(r.id);
  }
  EXPECT_EQ(ids, (std::vector<uint64_t>{2, 5, 3, 4, 1, 6}));
  EXPECT_EQ(cal.Processed(), items.size());
}

/// Per-channel fold of the delivered event stream. Channels never
/// leave their shard, so each slot is only ever touched by one worker
/// during a parallel drain -- the same property DeviceTimeline's
/// per-channel busy scalars rely on. Events with aux > 0 schedule a
/// same-channel follow-up, exercising handler-driven chains.
struct ChannelFoldHandler : EventHandler {
  explicit ChannelFoldHandler(uint32_t channels)
      : last_time(channels, 0), fold(channels, 0), count(channels, 0) {}
  std::vector<uint64_t> last_time;
  std::vector<uint64_t> fold;
  std::vector<uint64_t> count;
  void OnEvent(SimContext& ctx, const Event& e) override {
    last_time[e.channel] = ctx.now_us();
    fold[e.channel] = fold[e.channel] * 1000003 + e.id;
    ++count[e.channel];
    if (e.aux > 0) {
      Event next = e;
      next.time_us = ctx.now_us() + 7 + e.id % 5;
      next.aux = e.aux - 1;
      next.id = e.id + 1000;
      ctx.Schedule(next);
    }
  }
};

TEST(ShardedCalendarTest, ParallelDrainMatchesSerialFold) {
  constexpr uint32_t kChannels = 4;
  auto seed = [&](ShardedCalendar* cal) {
    for (uint64_t i = 0; i < 512; ++i) {
      Event e;
      e.time_us = (i * 13) % 257;
      e.channel = static_cast<uint32_t>(i % kChannels);
      e.id = i;
      e.aux = i % 3;  // up to two same-channel follow-ups
      cal->Schedule(e);
    }
  };
  ShardedCalendar serial(kChannels);
  seed(&serial);
  ChannelFoldHandler serial_fold(kChannels);
  serial.RunAll(&serial_fold);

  ShardedCalendar sharded(kChannels);
  seed(&sharded);
  ChannelFoldHandler parallel_fold(kChannels);
  ThreadPool pool(kChannels);
  sharded.RunAllParallel(&parallel_fold, &pool);

  EXPECT_EQ(serial.Processed(), sharded.Processed());
  EXPECT_EQ(parallel_fold.last_time, serial_fold.last_time);
  EXPECT_EQ(parallel_fold.fold, serial_fold.fold);
  EXPECT_EQ(parallel_fold.count, serial_fold.count);
}

// ---------------------------------------------------------------------
// DeviceTimeline: shard-count byte-identity and model properties
// ---------------------------------------------------------------------

std::vector<IoOutcome> DrainTimeline(uint32_t channels, uint32_t shards,
                                     uint64_t ios) {
  DeviceTimeline timeline(channels, /*serialized_controller=*/false, shards,
                          /*initial_busy_us=*/0);
  uint64_t ready_us = 0;
  for (uint64_t i = 0; i < ios; ++i) {
    IoStages stages;
    stages.controller_us = 1.0 + static_cast<double>(i % 5) * 0.5;
    stages.channel_us = 20.0 + static_cast<double>(i % 11) * 3.0;
    if (i % 2 == 0) stages.bus_us = 8.0;
    timeline.Submit(i + 1, ready_us, static_cast<uint32_t>(i % channels),
                    stages);
    if (i % 3 == 2) ready_us += 4;
  }
  std::vector<IoOutcome> out;
  timeline.ResolveAll(&out);
  return out;
}

TEST(DeviceTimelineTest, ShardedDrainMatchesSerialOutcomesExactly) {
  // 4096 pending IOs comfortably clear the parallel-drain threshold,
  // so the sharded run really drains on worker threads (this is the
  // sharded-run TSan target).
  const auto serial = DrainTimeline(4, 1, 4096);
  const auto sharded = DrainTimeline(4, 4, 4096);
  ASSERT_EQ(serial.size(), 4096u);
  ASSERT_EQ(sharded.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(sharded[i].id, serial[i].id) << "at " << i;
    ASSERT_EQ(sharded[i].start_us, serial[i].start_us) << "io " << serial[i].id;
    ASSERT_EQ(sharded[i].complete_us, serial[i].complete_us)
        << "io " << serial[i].id;
  }
}

TEST(DeviceTimelineTest, IntermediateShardCountAlsoMatches) {
  const auto serial = DrainTimeline(4, 1, 1024);
  const auto two = DrainTimeline(4, 2, 1024);
  ASSERT_EQ(two.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(two[i].complete_us, serial[i].complete_us)
        << "io " << serial[i].id;
  }
}

TEST(DeviceTimelineTest, SerializedControllerForcesSingleShard) {
  DeviceTimeline timeline(4, /*serialized_controller=*/true, 4, 0);
  EXPECT_EQ(timeline.shards(), 1u);
}

TEST(DeviceTimelineTest, ShardCountClampsToChannels) {
  DeviceTimeline timeline(2, /*serialized_controller=*/false, 8, 0);
  EXPECT_EQ(timeline.shards(), 2u);
}

TEST(DeviceTimelineTest, BusSlotSerializesTransfersPerChannel) {
  // Flash stage 30us, bus stage 100us: the second IO's flash overlaps
  // the first IO's transfer, but the transfers themselves queue on the
  // channel's bus slot.
  DeviceTimeline timeline(1, false, 1, 0);
  timeline.Submit(1, 0, 0, IoStages{0.0, 30.0, 100.0});
  timeline.Submit(2, 0, 0, IoStages{0.0, 30.0, 100.0});
  std::vector<IoOutcome> out;
  timeline.ResolveAll(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].complete_us, 130u);  // flash [0,30], bus [30,130]
  EXPECT_EQ(out[1].complete_us, 230u);  // flash [30,60], bus [130,230]
}

// ---------------------------------------------------------------------
// Sharded AsyncSimDevice: byte-equality on a 4-channel device
// ---------------------------------------------------------------------

std::unique_ptr<SimDevice> FourChannelDevice(bool bus_contention = false) {
  ArrayConfig ac;
  ac.chip_geometry.page_data_bytes = 4096;
  ac.chip_geometry.pages_per_block = 32;
  ac.chip_geometry.blocks = 128;  // per channel
  ac.timing = FlashTiming::Slc();
  ac.channels = 4;
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  pm.write_streams = 4;
  ControllerConfig cc;
  cc.read_overhead_us = 10.0;
  cc.write_overhead_us = 10.0;
  cc.bus_read_mb_s = 1000.0;
  cc.bus_write_mb_s = 1000.0;
  cc.gc_slice_us = 0.0;
  cc.channel_bus_contention = bus_contention;
  return std::make_unique<SimDevice>(
      "mc4",
      std::make_unique<PageMappingFtl>(std::make_unique<FlashArray>(ac), pm),
      cc, std::make_shared<VirtualClock>());
}

/// Runs a deterministic mixed workload through a sharded
/// AsyncSimDevice and returns the full completion record.
std::vector<IoCompletion> ShardedDeviceRun(uint32_t calendar_shards) {
  AsyncSimDevice dev(FourChannelDevice(), /*queue_depth=*/8, calendar_shards);
  std::vector<IoCompletion> all;
  uint64_t t_us = 0;
  // Sequential priming writes followed by a strided read/write mix;
  // identical submission times on both runs.
  for (uint64_t i = 0; i < 512; ++i) {
    IoRequest req;
    req.offset = (i % 2 == 0) ? (i * 4096) % (256 * 4096)
                              : ((i * 37) % 256) * 4096;
    req.size = 4096;
    req.mode = (i < 256 || i % 3 == 0) ? IoMode::kWrite : IoMode::kRead;
    auto tok = dev.Enqueue(t_us, req);
    EXPECT_TRUE(tok.ok()) << tok.status();
    t_us += 11;
    for (IoCompletion& c : dev.DrainUntil(t_us)) all.push_back(c);
  }
  for (IoCompletion& c : dev.DrainUntil(~0ULL)) all.push_back(c);
  return all;
}

TEST(ShardedCalendarTest, FourChannelDeviceByteIdenticalAcrossShardCounts) {
  const auto one = ShardedDeviceRun(1);
  const auto four = ShardedDeviceRun(4);
  ASSERT_EQ(one.size(), 512u);
  ASSERT_EQ(four.size(), one.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(four[i].token, one[i].token);
    EXPECT_EQ(four[i].submit_us, one[i].submit_us);
    EXPECT_EQ(four[i].complete_us, one[i].complete_us) << "io " << i;
    EXPECT_EQ(four[i].rt_us, one[i].rt_us) << "io " << i;
  }
}

// ---------------------------------------------------------------------
// Bus-contention knob on the full device stack
// ---------------------------------------------------------------------

/// Makespan of `n` back-to-back 4KB reads all dispatched to the same
/// channel of a primed device (submitted at t=0 with queue depth n, so
/// only the device model orders them).
uint64_t SameChannelReadMakespan(bool bus_contention, uint32_t n) {
  AsyncSimDevice dev(FourChannelDevice(bus_contention), /*queue_depth=*/n);
  SyncAdapter sync(&dev);
  for (uint64_t off = 0; off + 4096 <= 256 * 4096; off += 4096) {
    auto rt = sync.Submit(IoRequest{off, 4096, IoMode::kWrite});
    EXPECT_TRUE(rt.ok()) << rt.status();
  }
  // Collect n primed offsets that all dispatch to channel 0.
  std::vector<uint64_t> offsets;
  for (uint64_t off = 0; off + 4096 <= 256 * 4096 && offsets.size() < n;
       off += 4096) {
    if (dev.DispatchChannelOf(IoRequest{off, 4096, IoMode::kRead}) == 0) {
      offsets.push_back(off);
    }
  }
  EXPECT_EQ(offsets.size(), n);
  uint64_t t0 = dev.busy_max_us();
  uint64_t last = 0;
  for (uint64_t off : offsets) {
    auto tok = dev.Enqueue(t0, IoRequest{off, 4096, IoMode::kRead});
    EXPECT_TRUE(tok.ok()) << tok.status();
  }
  for (const IoCompletion& c : dev.DrainUntil(~0ULL)) {
    last = std::max(last, c.complete_us);
  }
  return last - t0;
}

TEST(BusContentionTest, TransfersPipelineBehindNextFlashStage) {
  // Off (default): the page transfer is folded into the flash stage,
  // so same-channel reads fully serialize at overhead + read +
  // transfer each. On: the transfer moves to the channel's bus slot
  // and overlaps the next IO's flash stage, shortening the makespan.
  const uint64_t off = SameChannelReadMakespan(false, 4);
  const uint64_t on = SameChannelReadMakespan(true, 4);
  EXPECT_LT(on, off);
  // A single IO pays the same end-to-end service either way (the
  // transfer merely moved stages; rounding may differ by one floor).
  const uint64_t off1 = SameChannelReadMakespan(false, 1);
  const uint64_t on1 = SameChannelReadMakespan(true, 1);
  EXPECT_LE(on1 > off1 ? on1 - off1 : off1 - on1, 1u);
}

}  // namespace
}  // namespace uflip
