// Pattern tests: the Table 1 formulas for every LBA function, the time
// functions, validation, and the baseline constructors.
#include <gtest/gtest.h>

#include "src/pattern/pattern.h"
#include "src/util/random.h"

namespace uflip {
namespace {

constexpr uint32_t kIo = 32 * 1024;
constexpr uint64_t kTarget = 64ULL << 20;

TEST(PatternSpecTest, BaselineConstructors) {
  PatternSpec sr = PatternSpec::SequentialRead(kIo, 0, kTarget);
  EXPECT_EQ(sr.mode, IoMode::kRead);
  EXPECT_EQ(sr.lba, LbaFunction::kSequential);
  PatternSpec rr = PatternSpec::RandomRead(kIo, 0, kTarget);
  EXPECT_EQ(rr.lba, LbaFunction::kRandom);
  PatternSpec sw = PatternSpec::SequentialWrite(kIo, 0, kTarget);
  EXPECT_EQ(sw.mode, IoMode::kWrite);
  PatternSpec rw = PatternSpec::RandomWrite(kIo, 0, kTarget);
  EXPECT_EQ(rw.mode, IoMode::kWrite);
  EXPECT_EQ(rw.lba, LbaFunction::kRandom);
  auto by_name = PatternSpec::Baseline("RW", kIo, 0, kTarget);
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->label, "RW");
  EXPECT_FALSE(PatternSpec::Baseline("XX", kIo, 0, kTarget).ok());
}

TEST(PatternSpecTest, ValidationRejectsBadSpecs) {
  PatternSpec s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  EXPECT_TRUE(s.Validate().ok());
  s.io_size = 0;
  EXPECT_FALSE(s.Validate().ok());
  s = PatternSpec::SequentialRead(kIo, 0, kIo / 2);  // target < io
  EXPECT_FALSE(s.Validate().ok());
  s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.io_ignore = s.io_count;
  EXPECT_FALSE(s.Validate().ok());
  s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.io_shift = 100;  // not a 512B multiple
  EXPECT_FALSE(s.Validate().ok());
  s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.lba = LbaFunction::kPartitioned;
  s.partitions = 0;
  EXPECT_FALSE(s.Validate().ok());
  s.partitions = 1 << 20;  // partition smaller than io_size
  EXPECT_FALSE(s.Validate().ok());
  s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.time = TimeFunction::kBurst;
  s.burst = 0;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(PatternTest, SequentialFormulaWrapsInTarget) {
  // Seq: TargetOffset + (i x IOSize) mod TargetSize (Table 1).
  PatternSpec s = PatternSpec::SequentialWrite(kIo, 1 << 20, 4 * kIo);
  Rng rng(1);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 0, &rng), (1u << 20) + 0 * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 3, &rng), (1u << 20) + 3 * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 4, &rng), (1u << 20) + 0 * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 5, &rng), (1u << 20) + 1 * kIo);
}

TEST(PatternTest, IoShiftAddsToEveryLba) {
  PatternSpec s = PatternSpec::SequentialWrite(kIo, 0, 4 * kIo);
  s.io_shift = 512;
  Rng rng(1);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 0, &rng), 512u);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 1, &rng), 512u + kIo);
}

TEST(PatternTest, RandomStaysAlignedWithinTarget) {
  PatternSpec s = PatternSpec::RandomWrite(kIo, 2 * kIo, 16 * kIo);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uint64_t lba = PatternGenerator::LbaAt(s, i, &rng);
    EXPECT_GE(lba, s.target_offset);
    EXPECT_LT(lba, s.target_offset + s.target_size);
    EXPECT_EQ((lba - s.target_offset) % kIo, 0u);
  }
}

TEST(PatternTest, OrderedIncrFormula) {
  PatternSpec s = PatternSpec::SequentialWrite(kIo, 0, 16 * kIo);
  s.lba = LbaFunction::kOrdered;
  Rng rng(1);
  // Incr = 4: 0, 4, 8, 12, 0 (wraps at 16 locations? 16 locations, step
  // 4 -> wraps at i=4).
  s.incr = 4;
  EXPECT_EQ(PatternGenerator::LbaAt(s, 0, &rng), 0u * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 1, &rng), 4u * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 4, &rng), 0u * kIo);
  // Incr = 0: in-place.
  s.incr = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(PatternGenerator::LbaAt(s, i, &rng), 0u);
  }
  // Incr = -1: reverse, wraps from the end.
  s.incr = -1;
  EXPECT_EQ(PatternGenerator::LbaAt(s, 0, &rng), 0u);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 1, &rng), 15u * kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 2, &rng), 14u * kIo);
}

TEST(PatternTest, PartitionedRoundRobinFormula) {
  // Pi x PS + Oi with PS = TargetSize/Partitions (Table 1).
  PatternSpec s = PatternSpec::SequentialWrite(kIo, 0, 8 * kIo);
  s.lba = LbaFunction::kPartitioned;
  s.partitions = 2;
  Rng rng(1);
  uint64_t ps = 4 * kIo;
  // i=0 -> P0 off 0; i=1 -> P1 off 0; i=2 -> P0 off 1; ...
  EXPECT_EQ(PatternGenerator::LbaAt(s, 0, &rng), 0u);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 1, &rng), ps);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 2, &rng), kIo);
  EXPECT_EQ(PatternGenerator::LbaAt(s, 3, &rng), ps + kIo);
  // Offsets wrap within the partition.
  EXPECT_EQ(PatternGenerator::LbaAt(s, 8, &rng), 0u);
}

TEST(PatternTest, GeneratorDeterministicBySeed) {
  PatternSpec s = PatternSpec::RandomRead(kIo, 0, kTarget);
  s.seed = 42;
  PatternGenerator a(s), b(s);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next().offset, b.Next().offset);
  }
  s.seed = 43;
  PatternGenerator c(s);
  PatternGenerator d(PatternSpec::RandomRead(kIo, 0, kTarget));
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c.Next().offset == d.Next().offset;
  EXPECT_LT(same, 10);
}

TEST(PatternTest, PauseTimeFunction) {
  PatternSpec s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.time = TimeFunction::kPause;
  s.pause_us = 500;
  PatternGenerator gen(s);
  EXPECT_EQ(gen.PauseBeforeNextUs(), 0u);  // no pause before the first IO
  gen.Next();
  EXPECT_EQ(gen.PauseBeforeNextUs(), 500u);
}

TEST(PatternTest, BurstTimeFunction) {
  PatternSpec s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  s.time = TimeFunction::kBurst;
  s.pause_us = 1000;
  s.burst = 3;
  PatternGenerator gen(s);
  std::vector<uint64_t> pauses;
  for (int i = 0; i < 7; ++i) {
    pauses.push_back(gen.PauseBeforeNextUs());
    gen.Next();
  }
  // Pause before IOs 3 and 6 only.
  EXPECT_EQ(pauses, (std::vector<uint64_t>{0, 0, 0, 1000, 0, 0, 1000}));
}

TEST(PatternTest, ConsecutiveNeverPauses) {
  PatternSpec s = PatternSpec::SequentialRead(kIo, 0, kTarget);
  PatternGenerator gen(s);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.PauseBeforeNextUs(), 0u);
    gen.Next();
  }
}

TEST(PatternTest, RequestCarriesSizeAndMode) {
  PatternSpec s = PatternSpec::RandomWrite(kIo, 0, kTarget);
  PatternGenerator gen(s);
  IoRequest req = gen.Next();
  EXPECT_EQ(req.size, kIo);
  EXPECT_EQ(req.mode, IoMode::kWrite);
}

class BaselineSweep
    : public testing::TestWithParam<std::tuple<const char*, uint32_t>> {};

TEST_P(BaselineSweep, AllLbasInsideTargetSpace) {
  auto [name, io_size] = GetParam();
  auto spec = PatternSpec::Baseline(name, io_size, 1 << 20, 8 << 20);
  ASSERT_TRUE(spec.ok());
  PatternGenerator gen(*spec);
  for (int i = 0; i < 300; ++i) {
    IoRequest req = gen.Next();
    EXPECT_GE(req.offset, spec->target_offset);
    EXPECT_LE(req.offset + req.size,
              spec->target_offset + spec->target_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSweep,
    testing::Combine(testing::Values("SR", "RR", "SW", "RW"),
                     testing::Values(512u, 4096u, 32768u, 131072u)),
    [](const testing::TestParamInfo<std::tuple<const char*, uint32_t>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace uflip
