#!/usr/bin/env python3
"""Golden tests for tools/lint/uflip_lint (registered with ctest as
lint_test; run directly with python3 tests/lint_test.py).

Feeds the known-bad fixture tree and asserts every determinism rule
fires (nonzero exit), feeds the clean/annotated fixtures and the real
repo tree and asserts zero findings, and runs the linter's inline
self-test."""

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "uflip_lint")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")

failures = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(name)


def run_lint(root):
    return subprocess.run(
        [sys.executable, LINT, "--root", root],
        capture_output=True, text=True, cwd=REPO_ROOT)


# --- known-bad fixtures: every rule must fire, with nonzero exit ------
bad = run_lint(os.path.join(FIXTURES, "bad"))
check("bad fixtures exit nonzero", bad.returncode == 1,
      f"exit={bad.returncode}\n{bad.stdout}{bad.stderr}")

expected = {
    "rand": "src/bad_rand.cc",
    "wall-clock": "src/bad_wallclock.cc",
    "check-macro": "src/bad_assert.cc",
    "seed-band": "bench/bad_seed.cc",
    "thread-id": "bench/bad_thread_seed.cc",
    "lint-annotation": "src/bad_stale_allow.cc",
}
for rule, path in expected.items():
    hits = [line for line in bad.stdout.splitlines()
            if f"[{rule}]" in line and path in line]
    check(f"rule {rule} fires on {path}", bool(hits), bad.stdout)

# Each seeded violation class in bad_seed.cc individually: literal
# member seed, literal Rng, raw --seed flag read.
seed_hits = [line for line in bad.stdout.splitlines()
             if "[seed-band]" in line]
check("seed-band fires on all three bad derivations", len(seed_hits) >= 3,
      bad.stdout)

# --- clean + annotated fixtures: zero findings ------------------------
clean = run_lint(os.path.join(FIXTURES, "clean"))
check("clean fixtures exit zero", clean.returncode == 0,
      f"exit={clean.returncode}\n{clean.stdout}{clean.stderr}")
check("clean fixtures report no findings", clean.stdout.strip() == "",
      clean.stdout)

# --- the real tree must be clean (annotated exemptions only) ----------
tree = run_lint(REPO_ROOT)
check("repo tree is lint-clean", tree.returncode == 0,
      f"exit={tree.returncode}\n{tree.stdout}{tree.stderr}")

# --- the linter's own matching machinery ------------------------------
st = subprocess.run([sys.executable, LINT, "--self-test"],
                    capture_output=True, text=True)
check("uflip_lint --self-test", st.returncode == 0,
      f"{st.stdout}{st.stderr}")

# --- exemption listing stays greppable --------------------------------
ex = subprocess.run([sys.executable, LINT, "--root", REPO_ROOT,
                     "--list-exemptions"],
                    capture_output=True, text=True, cwd=REPO_ROOT)
check("--list-exemptions exits zero", ex.returncode == 0, ex.stderr)
check("RealClock exemption is listed",
      any("src/util/clock.cc" in line and "wall-clock" in line
          for line in ex.stdout.splitlines()), ex.stdout)

if failures:
    print(f"\n{len(failures)} lint_test failure(s): {', '.join(failures)}")
    sys.exit(1)
print("\nlint_test: all checks passed")
