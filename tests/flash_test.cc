// Unit tests for the NAND chip and flash array models: geometry
// validation, read/program/erase semantics, the in-block program-order
// constraint, wear and bad blocks, channel striping and makespan
// accounting.
#include <gtest/gtest.h>

#include "src/flash/array.h"
#include "src/flash/chip.h"
#include "src/flash/geometry.h"

namespace uflip {
namespace {

FlashGeometry SmallGeom() {
  FlashGeometry g;
  g.page_data_bytes = 2048;
  g.pages_per_block = 4;
  g.blocks = 8;
  g.planes = 2;
  return g;
}

TEST(GeometryTest, ValidatesPowerOfTwoPages) {
  FlashGeometry g = SmallGeom();
  EXPECT_TRUE(g.Validate().ok());
  g.page_data_bytes = 1000;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GeometryTest, RejectsZeroFields) {
  FlashGeometry g = SmallGeom();
  g.blocks = 0;
  EXPECT_FALSE(g.Validate().ok());
  g = SmallGeom();
  g.pages_per_block = 0;
  EXPECT_FALSE(g.Validate().ok());
  g = SmallGeom();
  g.planes = 0;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GeometryTest, DerivedSizes) {
  FlashGeometry g = SmallGeom();
  EXPECT_EQ(g.block_bytes(), 8192u);
  EXPECT_EQ(g.capacity_bytes(), 8192u * 8);
  EXPECT_EQ(g.total_pages(), 32u);
}

TEST(TimingTest, MlcSlowerThanSlc) {
  FlashTiming slc = FlashTiming::Slc();
  FlashTiming mlc = FlashTiming::Mlc();
  EXPECT_GT(mlc.program_page_us, slc.program_page_us);
  EXPECT_GT(mlc.read_page_us, slc.read_page_us);
  EXPECT_LT(mlc.erase_limit, slc.erase_limit);
}

TEST(ChipTest, ReadErasedPageReturnsZeroToken) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  uint64_t token = 1;
  double t = 0;
  ASSERT_TRUE(chip.ReadPage({0, 0}, &token, &t).ok());
  EXPECT_EQ(token, 0u);
  EXPECT_GT(t, 0);
}

TEST(ChipTest, ProgramThenReadRoundTrips) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  double t = 0;
  ASSERT_TRUE(chip.ProgramPage({2, 0}, 0xBEEF, &t).ok());
  EXPECT_GT(t, 0);
  uint64_t token = 0;
  ASSERT_TRUE(chip.ReadPage({2, 0}, &token, &t).ok());
  EXPECT_EQ(token, 0xBEEFu);
}

TEST(ChipTest, NoReprogramWithoutErase) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  double t = 0;
  ASSERT_TRUE(chip.ProgramPage({0, 0}, 1, &t).ok());
  Status s = chip.ProgramPage({0, 0}, 2, &t);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(chip.stats().program_order_violations, 1u);
}

TEST(ChipTest, ProgramOrderAscendingWithSkips) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  double t = 0;
  ASSERT_TRUE(chip.ProgramPage({0, 0}, 1, &t).ok());
  ASSERT_TRUE(chip.ProgramPage({0, 2}, 2, &t).ok());  // skip forward: legal
  EXPECT_FALSE(chip.ProgramPage({0, 1}, 3, &t).ok());  // backwards: illegal
  EXPECT_EQ(chip.ProgrammedPages(0), 3u);
}

TEST(ChipTest, EraseResetsBlock) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  double t = 0;
  ASSERT_TRUE(chip.ProgramPage({1, 0}, 7, &t).ok());
  ASSERT_TRUE(chip.EraseBlock(1, &t).ok());
  EXPECT_GT(t, 0);
  uint64_t token = 9;
  ASSERT_TRUE(chip.ReadPage({1, 0}, &token, &t).ok());
  EXPECT_EQ(token, 0u);
  ASSERT_TRUE(chip.ProgramPage({1, 0}, 8, &t).ok());  // reprogram after erase
  EXPECT_EQ(chip.EraseCount(1), 1u);
}

TEST(ChipTest, WearOutMarksBadBlock) {
  FlashGeometry g = SmallGeom();
  FlashTiming timing = FlashTiming::Slc();
  timing.erase_limit = 3;
  FlashChip chip(g, timing);
  double t = 0;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(chip.EraseBlock(0, &t).ok());
  EXPECT_TRUE(chip.IsBadBlock(0));
  EXPECT_FALSE(chip.EraseBlock(0, &t).ok());
  EXPECT_FALSE(chip.ProgramPage({0, 0}, 1, &t).ok());
  EXPECT_EQ(chip.stats().bad_blocks, 1u);
}

TEST(ChipTest, OutOfRangeAddresses) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  double t = 0;
  uint64_t token;
  EXPECT_EQ(chip.ReadPage({8, 0}, &token, &t).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ReadPage({0, 4}, &token, &t).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(chip.EraseBlock(9, &t).code(), StatusCode::kOutOfRange);
}

TEST(ChipTest, PlaneAssignment) {
  FlashChip chip(SmallGeom(), FlashTiming::Slc());
  EXPECT_EQ(chip.PlaneOf(0), 0u);
  EXPECT_EQ(chip.PlaneOf(1), 1u);
  EXPECT_EQ(chip.PlaneOf(2), 0u);
}

ArrayConfig SmallArray(uint32_t channels) {
  ArrayConfig c;
  c.chip_geometry = SmallGeom();
  c.timing = FlashTiming::Slc();
  c.channels = channels;
  return c;
}

TEST(ArrayTest, CapacityAggregatesChannels) {
  FlashArray a(SmallArray(4));
  EXPECT_EQ(a.total_blocks(), 32u);
  EXPECT_EQ(a.capacity_bytes(), 4u * 8 * 8192);
}

TEST(ArrayTest, ChannelStripingByBlock) {
  FlashArray a(SmallArray(4));
  EXPECT_EQ(a.ChannelOf(0), 0u);
  EXPECT_EQ(a.ChannelOf(1), 1u);
  EXPECT_EQ(a.ChannelOf(5), 1u);
  EXPECT_EQ(a.ChannelOf(7), 3u);
}

TEST(ArrayTest, MakespanParallelAcrossChannels) {
  FlashArray a(SmallArray(4));
  // Four programs on four different channels: makespan == one program.
  std::vector<PageWrite> writes;
  for (uint64_t b = 0; b < 4; ++b) writes.push_back({{b, 0}, b + 1});
  double t_parallel = 0;
  ASSERT_TRUE(a.ProgramPages(writes, &t_parallel).ok());

  // Four programs on one channel: makespan == four programs.
  FlashArray b(SmallArray(4));
  std::vector<PageWrite> serial;
  for (uint32_t p = 0; p < 4; ++p) serial.push_back({{0, p}, p + 1});
  double t_serial = 0;
  ASSERT_TRUE(b.ProgramPages(serial, &t_serial).ok());

  EXPECT_NEAR(t_serial, 4 * t_parallel, 1e-9);
}

TEST(ArrayTest, ReadPagesReturnsTokensInOrder) {
  FlashArray a(SmallArray(2));
  std::vector<PageWrite> writes{{{0, 0}, 11}, {{1, 0}, 22}, {{2, 0}, 33}};
  double t = 0;
  ASSERT_TRUE(a.ProgramPages(writes, &t).ok());
  std::vector<GlobalPage> pages{{2, 0}, {0, 0}, {1, 0}};
  std::vector<uint64_t> tokens;
  ASSERT_TRUE(a.ReadPages(pages, &tokens, &t).ok());
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], 33u);
  EXPECT_EQ(tokens[1], 11u);
  EXPECT_EQ(tokens[2], 22u);
}

TEST(ArrayTest, EraseBlocksAndStats) {
  FlashArray a(SmallArray(2));
  double t = 0;
  std::vector<PageWrite> writes{{{0, 0}, 1}, {{1, 0}, 2}};
  ASSERT_TRUE(a.ProgramPages(writes, &t).ok());
  ASSERT_TRUE(a.EraseBlocks({0, 1}, &t).ok());
  ChipStats s = a.AggregateStats();
  EXPECT_EQ(s.page_programs, 2u);
  EXPECT_EQ(s.block_erases, 2u);
  EXPECT_EQ(a.EraseCount(0), 1u);
  EXPECT_EQ(a.ProgrammedPages(0), 0u);
}

TEST(ArrayTest, SingleOpHelpers) {
  FlashArray a(SmallArray(2));
  double t = 0;
  ASSERT_TRUE(a.ProgramPage({3, 0}, 77, &t).ok());
  uint64_t token = 0;
  ASSERT_TRUE(a.ReadPage({3, 0}, &token, &t).ok());
  EXPECT_EQ(token, 77u);
  ASSERT_TRUE(a.EraseBlock(3, &t).ok());
  ASSERT_TRUE(a.ReadPage({3, 0}, &token, &t).ok());
  EXPECT_EQ(token, 0u);
}

}  // namespace
}  // namespace uflip
