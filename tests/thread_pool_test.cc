// ThreadPool tests: FIFO start order, future-based results and
// exception propagation, Wait() draining, and the destructor's
// run-to-completion guarantee under pending work. These are the
// properties the parallel execution core (src/run/parallel_exec.h)
// leans on for its determinism contract.
#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace uflip {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolStartsTasksInSubmissionOrder) {
  // With one worker the FIFO queue forces strict execution order.
  std::vector<int> order;
  std::mutex mu;
  ThreadPool pool(1);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&order, &mu, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, FuturesCarryResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, FuturePropagatesException) {
  ThreadPool pool(2);
  std::future<int> ok = pool.Submit([] { return 7; });
  std::future<int> bad =
      pool.Submit([]() -> int { throw std::runtime_error("unit blew up"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    bad.get();
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unit blew up");
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  // Queue far more tasks than workers and destroy the pool while most
  // are still pending: every task must still run (futures from a
  // drained pool would otherwise throw broken_promise).
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      }));
    }
    // No Wait(): the destructor is the drain.
  }
  EXPECT_EQ(count.load(), 64);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPoolTest, WaitBlocksUntilIdleAndIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 8 * (round + 1));
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  std::future<int> f = pool.Submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

}  // namespace
}  // namespace uflip
