// bench/ flag-parsing tests: the validated unsigned accessors
// (GetUint32 / GetUint32List) must reject negative, malformed and
// out-of-range values with a clear diagnostic instead of silently
// wrapping (--queue_depth=-1 used to become ~4.29e9 and hang the run),
// and the list parser feeds the ftl_compare sweep axes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace uflip {
namespace bench {
namespace {

/// Builds Flags from a literal argv; Flags copies the strings, so the
/// temporaries only need to outlive the constructor call.
Flags MakeFlags(std::vector<std::string> args) {
  std::string prog = "test";
  std::vector<char*> argv = {prog.data()};
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchFlagsTest, GetUint32ParsesAndDefaults) {
  Flags flags = MakeFlags({"--queue_depth=8", "--channels=0"});
  EXPECT_EQ(flags.GetUint32("queue_depth", 1), 8u);
  EXPECT_EQ(flags.GetUint32("channels", 4), 0u);
  EXPECT_EQ(flags.GetUint32("absent", 17), 17u);
}

TEST(BenchFlagsTest, GetUint32ListParsesCommaSeparated) {
  Flags flags = MakeFlags({"--queue_depths=1,2,8,32"});
  EXPECT_EQ(flags.GetUint32List("queue_depths", 0),
            (std::vector<uint32_t>{1, 2, 8, 32}));
  // Absent list flag degrades to its single-value default.
  EXPECT_EQ(flags.GetUint32List("channels_list", 4),
            (std::vector<uint32_t>{4}));
}

TEST(BenchFlagsDeathTest, NegativeCountIsRejected) {
  Flags flags = MakeFlags({"--queue_depth=-1"});
  EXPECT_EXIT(flags.GetUint32("queue_depth", 0),
              testing::ExitedWithCode(2), "must be >= 0");
}

TEST(BenchFlagsDeathTest, NonNumericCountIsRejected) {
  Flags flags = MakeFlags({"--io_count=lots"});
  EXPECT_EXIT(flags.GetUint32("io_count", 0),
              testing::ExitedWithCode(2), "not a number");
  Flags trailing = MakeFlags({"--io_count=12x"});
  EXPECT_EXIT(trailing.GetUint32("io_count", 0),
              testing::ExitedWithCode(2), "not a number");
}

TEST(BenchFlagsDeathTest, OutOfRangeCountIsRejected) {
  Flags flags = MakeFlags({"--io_count=5000000000"});
  EXPECT_EXIT(flags.GetUint32("io_count", 0),
              testing::ExitedWithCode(2), "larger than");
}

TEST(BenchFlagsDeathTest, NegativeListElementIsRejected) {
  Flags flags = MakeFlags({"--queue_depths=1,-8"});
  EXPECT_EXIT(flags.GetUint32List("queue_depths", 0),
              testing::ExitedWithCode(2), "must be >= 0");
}

}  // namespace
}  // namespace bench
}  // namespace uflip
