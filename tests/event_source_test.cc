// EventSource / streaming-replay tests: TraceView and generator
// sources against their materialized counterparts, streaming
// (TraceReader-driven) replay vs. materialized replay on the sync and
// async paths, stats-only O(1) replay, gzip framing round-trips, and
// the ZipfianLba O(1) sampler (zeta approximation, scatter bijection,
// distribution regression, huge-domain construction).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifdef UFLIP_HAVE_ZLIB
#include <zlib.h>
#endif

#include "src/device/async_sim_device.h"
#include "src/device/mem_device.h"
#include "src/run/trace_run.h"
#include "src/trace/event_source.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "uflip_evsrc_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Trace SampleTrace(uint32_t events = 64, uint64_t gap_us = 200) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 8ULL << 20;
  cfg.io_size = 4096;
  cfg.io_count = events;
  cfg.theta = 0.9;
  cfg.mean_gap_us = gap_us;
  auto t = GenerateZipfianTrace(cfg);
  EXPECT_TRUE(t.ok()) << t.status();
  return *t;
}

// ---------------------------------------------------------------------
// EventSource basics
// ---------------------------------------------------------------------

TEST(EventSourceTest, TraceViewIteratesAndResets) {
  Trace t = SampleTrace(8);
  TraceView view(&t);
  EXPECT_EQ(view.meta(), t.meta);
  ASSERT_TRUE(view.SizeHint().has_value());
  EXPECT_EQ(*view.SizeHint(), 8u);

  TraceEvent e;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < t.events.size(); ++i) {
      auto more = view.Next(&e);
      ASSERT_TRUE(more.ok());
      ASSERT_TRUE(*more);
      EXPECT_EQ(e, t.events[i]);
    }
    auto end = view.Next(&e);
    ASSERT_TRUE(end.ok());
    EXPECT_FALSE(*end);
    view.Reset();
  }
}

TEST(EventSourceTest, MaterializeRoundTripsAndEnforcesLimit) {
  Trace t = SampleTrace(16);
  TraceView view(&t);
  auto back = MaterializeTrace(&view);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, t);

  view.Reset();
  auto capped = MaterializeTrace(&view, 4);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
}

TEST(EventSourceTest, GeneratorSourcesMatchMaterializedGenerators) {
  ZipfianTraceConfig z;
  z.io_count = 200;
  z.mean_gap_us = 100;
  z.theta = 0.9;
  ZipfianEventSource zs(z);
  auto zt = MaterializeTrace(&zs);
  ASSERT_TRUE(zt.ok());
  auto zg = GenerateZipfianTrace(z);
  ASSERT_TRUE(zg.ok());
  EXPECT_EQ(*zt, *zg);

  OltpTraceConfig o;
  o.transactions = 150;
  o.mean_gap_us = 50;
  OltpEventSource os(o);
  auto ot = MaterializeTrace(&os);
  ASSERT_TRUE(ot.ok());
  auto og = GenerateOltpTrace(o);
  ASSERT_TRUE(og.ok());
  EXPECT_EQ(*ot, *og);

  MultiStreamTraceConfig m;
  m.ios_per_stream = 40;
  m.gap_us = 10;
  MultiStreamEventSource ms(m);
  auto mt = MaterializeTrace(&ms);
  ASSERT_TRUE(mt.ok());
  auto mg = GenerateMultiStreamTrace(m);
  ASSERT_TRUE(mg.ok());
  EXPECT_EQ(*mt, *mg);
}

TEST(EventSourceTest, GeneratorSourcesSurfaceConfigErrors) {
  ZipfianTraceConfig bad;
  bad.theta = 2.0;
  ZipfianEventSource src(bad);
  TraceEvent e;
  auto more = src.Next(&e);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Streaming replay == materialized replay
// ---------------------------------------------------------------------

TEST(StreamingReplayTest, SyncStreamingMatchesMaterializedExactly) {
  Trace t = SampleTrace(128);
  std::string p = TempPath("sync.utr");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());

  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;

  auto dev_a = MakeTestDevice("mtron", 16 << 20);
  auto materialized = ExecuteTraceRun(dev_a.get(), t, opts);
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  auto dev_b = MakeTestDevice("mtron", 16 << 20);
  auto reader = TraceReader::Open(p);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto streamed = ExecuteTraceRun(dev_b.get(), &*reader, opts);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  ASSERT_EQ(streamed->samples.size(), materialized->samples.size());
  for (size_t i = 0; i < streamed->samples.size(); ++i) {
    EXPECT_EQ(streamed->samples[i].submit_us,
              materialized->samples[i].submit_us) << "IO " << i;
    EXPECT_DOUBLE_EQ(streamed->samples[i].rt_us,
                     materialized->samples[i].rt_us) << "IO " << i;
  }
  RunStats sm = materialized->Stats(), ss = streamed->Stats();
  EXPECT_EQ(ss.count, sm.count);
  EXPECT_DOUBLE_EQ(ss.mean_us, sm.mean_us);
  EXPECT_DOUBLE_EQ(ss.p95_us, sm.p95_us);
  EXPECT_DOUBLE_EQ(ss.max_us, sm.max_us);
  EXPECT_EQ(dev_a->clock()->NowUs(), dev_b->clock()->NowUs());
}

TEST(StreamingReplayTest, AsyncStreamingMatchesMaterializedExactly) {
  Trace t = SampleTrace(128, 100);  // tight gaps: IOs genuinely queue
  std::string p = TempPath("async.utr");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());

  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;

  AsyncSimDevice dev_a(MakeTestDevice("mtron", 16 << 20), 8);
  auto materialized = ExecuteTraceRun(&dev_a, t, opts);
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  AsyncSimDevice dev_b(MakeTestDevice("mtron", 16 << 20), 8);
  auto reader = TraceReader::Open(p);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto streamed = ExecuteTraceRun(&dev_b, &*reader, opts);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  ASSERT_EQ(streamed->samples.size(), materialized->samples.size());
  for (size_t i = 0; i < streamed->samples.size(); ++i) {
    EXPECT_EQ(streamed->samples[i].submit_us,
              materialized->samples[i].submit_us) << "IO " << i;
    EXPECT_DOUBLE_EQ(streamed->samples[i].rt_us,
                     materialized->samples[i].rt_us) << "IO " << i;
  }
  EXPECT_EQ(dev_a.clock()->NowUs(), dev_b.clock()->NowUs());
}

TEST(StreamingReplayTest, StatsOnlyReplayMatchesExactMoments) {
  Trace t = SampleTrace(256);
  ReplayOptions keep;
  keep.timing = ReplayTiming::kOriginal;
  keep.io_ignore = 50;
  ReplayOptions stats_only = keep;
  stats_only.keep_samples = false;

  auto dev_a = MakeTestDevice("mtron", 16 << 20);
  auto full = ExecuteTraceRun(dev_a.get(), t, keep);
  ASSERT_TRUE(full.ok()) << full.status();

  auto dev_b = MakeTestDevice("mtron", 16 << 20);
  auto lean = ExecuteTraceRun(dev_b.get(), t, stats_only);
  ASSERT_TRUE(lean.ok()) << lean.status();

  EXPECT_TRUE(lean->samples.empty());
  ASSERT_TRUE(lean->streamed_stats.has_value());
  for (auto pick : {0, 1}) {
    RunStats exact = pick ? full->Stats() : full->StatsIncludingStartup();
    RunStats online = pick ? lean->Stats() : lean->StatsIncludingStartup();
    EXPECT_EQ(online.count, exact.count);
    EXPECT_DOUBLE_EQ(online.mean_us, exact.mean_us);
    EXPECT_DOUBLE_EQ(online.sum_us, exact.sum_us);
    EXPECT_DOUBLE_EQ(online.min_us, exact.min_us);
    EXPECT_DOUBLE_EQ(online.max_us, exact.max_us);
    EXPECT_NEAR(online.stddev_us, exact.stddev_us,
                1e-9 * (1 + exact.stddev_us));
    // Percentiles come from the t-digest sketch, whose guarantee is in
    // rank, not value: the reported quantile must sit within the
    // sketch's rank-error bound of the requested one in the exact
    // sorted series (+1.5 ranks of interpolation-convention slack).
    ASSERT_TRUE(online.HasSketch());
    std::vector<double> sorted = full->ResponseTimes();
    if (pick) {
      sorted.erase(sorted.begin(),
                   sorted.begin() + full->spec.io_ignore);
    }
    std::sort(sorted.begin(), sorted.end());
    double n = static_cast<double>(sorted.size());
    double bound = online.sketch->RankErrorBound() * n + 1.5;
    auto rank_of = [&sorted](double v) {
      auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
      auto hi = std::upper_bound(sorted.begin(), sorted.end(), v);
      // Midpoint of the tied range: v may fall between samples.
      return (static_cast<double>(lo - sorted.begin()) +
              static_cast<double>(hi - sorted.begin())) /
             2.0;
    };
    EXPECT_NEAR(rank_of(online.p50_us), 0.50 * (n - 1), bound);
    EXPECT_NEAR(rank_of(online.p95_us), 0.95 * (n - 1), bound);
    EXPECT_NEAR(rank_of(online.p99_us), 0.99 * (n - 1), bound);
    // The log histogram rides along as a cross-check; on a clean
    // in-range series it must agree with the sketch (no divergence
    // flag, no clamped samples).
    ASSERT_TRUE(online.hist_check.has_value());
    EXPECT_FALSE(online.hist_check->divergent)
        << "divergence " << online.hist_check->divergence;
    EXPECT_EQ(online.hist_check->underflow, 0u);
    EXPECT_EQ(online.hist_check->overflow, 0u);
  }
  // Identical device-time behaviour either way.
  EXPECT_EQ(dev_a->clock()->NowUs(), dev_b->clock()->NowUs());
}

TEST(StreamingReplayTest, StatsOnlyClampsIgnoreLikeMaterialized) {
  Trace t = SampleTrace(16);
  ReplayOptions opts;
  opts.io_ignore = 1000;  // beyond the trace: degrades to last sample
  auto dev_a = MakeTestDevice("mtron", 16 << 20);
  auto full = ExecuteTraceRun(dev_a.get(), t, opts);
  ASSERT_TRUE(full.ok());
  opts.keep_samples = false;
  auto dev_b = MakeTestDevice("mtron", 16 << 20);
  auto lean = ExecuteTraceRun(dev_b.get(), t, opts);
  ASSERT_TRUE(lean.ok());
  EXPECT_EQ(lean->Stats().count, full->Stats().count);
  EXPECT_DOUBLE_EQ(lean->Stats().mean_us, full->Stats().mean_us);
}

TEST(StreamingReplayTest, StatsOnlyRejectsAutoIoIgnore) {
  Trace t = SampleTrace(8);
  auto dev = MakeTestDevice("mtron", 16 << 20);
  ReplayOptions opts;
  opts.keep_samples = false;
  opts.io_ignore = ReplayOptions::kAutoIoIgnore;
  auto run = ExecuteTraceRun(dev.get(), t, opts);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingReplayTest, OnlineValidationCatchesCorruptStreams) {
  // Unsorted submissions reach replay only through a streaming source
  // (materialized traces are validated up front); the replay loop must
  // catch them itself.
  Trace t;
  t.meta.capacity_bytes = 8 << 20;
  t.events = {
      {1000, 0, 4096, IoMode::kRead, 0},
      {0, 4096, 4096, IoMode::kRead, 0},
  };
  TraceView view(&t);
  auto dev = MakeTestDevice("mtron", 16 << 20);
  auto run = ExecuteTraceRun(dev.get(), &view, ReplayOptions{});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  TraceView empty_view(&t);
  Trace empty;
  TraceView really_empty(&empty);
  auto none = ExecuteTraceRun(dev.get(), &really_empty, ReplayOptions{});
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingReplayTest, GeneratorReplaysDirectlyWithoutMaterializing) {
  // generator -> replay, no Trace in between; equals the materialized
  // result of the same generator config.
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 8ULL << 20;
  cfg.io_count = 96;
  cfg.mean_gap_us = 300;
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;

  ZipfianEventSource source(cfg);
  auto dev_a = MakeTestDevice("memoright", 16 << 20);
  auto direct = ExecuteTraceRun(dev_a.get(), &source, opts);
  ASSERT_TRUE(direct.ok()) << direct.status();

  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok());
  auto dev_b = MakeTestDevice("memoright", 16 << 20);
  auto via_trace = ExecuteTraceRun(dev_b.get(), *trace, opts);
  ASSERT_TRUE(via_trace.ok());
  ASSERT_EQ(direct->samples.size(), via_trace->samples.size());
  for (size_t i = 0; i < direct->samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct->samples[i].rt_us, via_trace->samples[i].rt_us);
  }
}

// ---------------------------------------------------------------------
// Gzip framing
// ---------------------------------------------------------------------

TEST(GzipTraceTest, PathHelpersSeeThroughGzSuffix) {
  EXPECT_EQ(FormatForPath("a/b.csv.gz"), TraceFormat::kCsv);
  EXPECT_EQ(FormatForPath("a/b.utr.gz"), TraceFormat::kBinary);
  EXPECT_EQ(CompressionForPath("a/b.csv.gz"), TraceCompression::kGzip);
  EXPECT_EQ(CompressionForPath("a/b.csv"), TraceCompression::kNone);
}

#ifdef UFLIP_HAVE_ZLIB
std::string Gunzip(const std::string& path) {
  gzFile gz = gzopen(path.c_str(), "rb");
  EXPECT_NE(gz, nullptr);
  std::string out;
  char buf[4096];
  int n;
  while ((n = gzread(gz, buf, sizeof(buf))) > 0) out.append(buf, n);
  EXPECT_EQ(n, 0);
  gzclose(gz);
  return out;
}
#endif

TEST(GzipTraceTest, CsvGzipDecompressesByteIdenticalToPlain) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
#ifdef UFLIP_HAVE_ZLIB
  Trace t = SampleTrace(64);
  std::string plain = TempPath("rt.csv"), gz = TempPath("rt.csv.gz");
  ASSERT_TRUE(WriteTrace(plain, TraceFormat::kCsv, t).ok());
  ASSERT_TRUE(WriteTrace(gz, TraceFormat::kCsv, t).ok());  // kAuto -> gzip
  // Framing engaged: the gz file starts with the gzip magic and is not
  // the plain bytes.
  std::string raw = Slurp(gz);
  ASSERT_GE(raw.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(raw[0]), 0x1f);
  EXPECT_EQ(static_cast<unsigned char>(raw[1]), 0x8b);
  EXPECT_EQ(Gunzip(gz), Slurp(plain));
#endif
}

TEST(GzipTraceTest, GzipTracesReadBackAndRewriteByteIdentical) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  Trace t = SampleTrace(64);
  for (TraceFormat format : {TraceFormat::kCsv, TraceFormat::kBinary}) {
    std::string ext = format == TraceFormat::kCsv ? ".csv.gz" : ".utr.gz";
    std::string p1 = TempPath("rt1" + ext), p2 = TempPath("rt2" + ext);
    ASSERT_TRUE(WriteTrace(p1, format, t).ok());
    auto back = ReadTrace(p1);
    ASSERT_TRUE(back.ok()) << back.status();
    if (format == TraceFormat::kBinary) {
      EXPECT_EQ(*back, t);  // binary preserves doubles exactly
    } else {
      ASSERT_EQ(back->events.size(), t.events.size());
      EXPECT_EQ(back->meta, t.meta);
    }
    ASSERT_TRUE(WriteTrace(p2, format, *back).ok());
    EXPECT_EQ(Slurp(p1), Slurp(p2)) << ext;
  }
}

TEST(GzipTraceTest, GzipBinaryIsUncountedAndEndsCleanly) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  Trace t = SampleTrace(5);
  std::string p = TempPath("uncounted.utr.gz");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());
  auto r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->compression(), TraceCompression::kGzip);
  // The gzip writer cannot patch the header count: the stream is
  // EOF-delimited and advertises no size.
  EXPECT_FALSE(r->SizeHint().has_value());
  TraceEvent e;
  for (int i = 0; i < 5; ++i) {
    auto more = r->Next(&e);
    ASSERT_TRUE(more.ok()) << more.status();
    EXPECT_TRUE(*more);
    EXPECT_EQ(e, t.events[i]);
  }
  auto end = r->Next(&e);
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_FALSE(*end);
}

TEST(GzipTraceTest, TruncatedGzipTraceIsAnErrorNotEof) {
  if (!GzipSupported()) GTEST_SKIP() << "built without zlib";
  Trace t = SampleTrace(32);
  std::string p = TempPath("trunc.utr.gz");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());
  std::string bytes = Slurp(p);
  std::ofstream(p, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);
  auto back = ReadTrace(p);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(TraceReaderErrorTest, HugeBinaryHeaderCountIsCorruptionNotAbort) {
  // A counted binary header whose count field is absurd (but not the
  // "uncounted" sentinel) must surface as Corruption when the events
  // run out -- it must NOT be trusted as a vector reservation size.
  Trace t = SampleTrace(3);
  std::string p = TempPath("hugecount.utr");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());
  std::string bytes = Slurp(p);
  // Count lives right before the first 32-byte event: 3 events here.
  size_t count_pos = bytes.size() - 3 * 32 - sizeof(uint64_t);
  uint64_t huge = UINT64_MAX - 1;
  bytes.replace(count_pos, sizeof(huge),
                std::string(reinterpret_cast<const char*>(&huge),
                            sizeof(huge)));
  std::ofstream(p, std::ios::binary | std::ios::trunc) << bytes;
  auto back = ReadTrace(p);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);

  auto r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok());
  auto dev = MakeTestDevice("mtron", 16 << 20);
  auto run = ExecuteTraceRun(dev.get(), &*r, ReplayOptions{});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCorruption);
}

TEST(TraceReaderErrorTest, CsvParseErrorsCarryPathAndLineNumber) {
  std::string p = TempPath("badline.csv");
  std::ofstream(p) << "# uflip-trace v1\n# source=x\n# capacity_bytes=1048576\n"
                   << "submit_us,offset,size,mode,rt_us\n"
                   << "0,0,4096,read,1.000\n"
                   << "10,oops,4096,read,1.000\n";
  auto r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok()) << r.status();
  TraceEvent e;
  auto first = r->Next(&e);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto bad = r->Next(&e);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find("line 6"), std::string::npos)
      << bad.status();
  EXPECT_NE(bad.status().message().find(p), std::string::npos)
      << bad.status();
}

// ---------------------------------------------------------------------
// ZipfianLba at scale
// ---------------------------------------------------------------------

TEST(ZipfianLbaTest, ZetaApproximationTracksExactSum) {
  // theta = 1 exercises the logarithmic tail (harmonic series); the
  // sampler itself only uses theta < 1 but ZetaN is a public helper.
  for (double theta : {0.5, 0.8, 0.99, 1.0, 1.2}) {
    const uint64_t n = 1000000;
    double exact = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      exact += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    double approx = ZetaN(n, theta);
    EXPECT_NEAR(approx / exact, 1.0, 1e-6) << "theta=" << theta;
  }
}

TEST(ZipfianLbaTest, ScatterIsABijection) {
  for (uint64_t n : {1ull, 2ull, 1000ull, 1024ull, 1025ull}) {
    ZipfianLba z(n, 0.9, 42);
    std::vector<bool> hit(n, false);
    for (uint64_t rank = 0; rank < n; ++rank) {
      uint64_t loc = z.Scatter(rank);
      ASSERT_LT(loc, n);
      ASSERT_FALSE(hit[loc]) << "collision at rank " << rank << " (n=" << n
                             << ")";
      hit[loc] = true;
    }
  }
}

TEST(ZipfianLbaTest, DistributionMatchesZipfTheory) {
  const uint64_t n = 512;
  const double theta = 0.8;
  const int draws = 200000;
  ZipfianLba z(n, theta, 7);
  std::map<uint64_t, uint32_t> freq;
  for (int i = 0; i < draws; ++i) ++freq[z.Next()];

  std::vector<uint32_t> counts;
  for (const auto& [loc, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());

  // n < exact-prefix length, so ZetaN here is the exact normalizer.
  double zeta = ZetaN(n, theta);
  // Hottest location: p1 = 1/zeta.
  double expect_top = draws / zeta;
  EXPECT_NEAR(counts[0] / expect_top, 1.0, 0.08);
  // Mass of the ten hottest locations.
  double expect_top10 = 0;
  for (int i = 1; i <= 10; ++i) {
    expect_top10 += draws / (std::pow(i, theta) * zeta);
  }
  double got_top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(counts.size()); ++i) {
    got_top10 += counts[i];
  }
  EXPECT_NEAR(got_top10 / expect_top10, 1.0, 0.05);
}

TEST(ZipfianLbaTest, HugeDomainsConstructInstantly) {
  // 1 TB at 4KB IOs = 268M locations; the old implementation allocated
  // a 2GB+ permutation table and summed 268M zeta terms before the
  // first event. Now both construction and sampling are O(1).
  const uint64_t locations = (1ULL << 40) / 4096;
  ZipfianLba z(locations, 0.99, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.Next(), locations);
  }
  // Uniform works at scale too.
  ZipfianLba u(locations, 0.0, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(u.Next(), locations);
  }
}

TEST(ZipfianLbaTest, DeterministicPerSeed) {
  ZipfianLba a(4096, 0.99, 11), b(4096, 0.99, 11), c(4096, 0.99, 12);
  bool any_diff = false;
  for (int i = 0; i < 256; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    any_diff = any_diff || va != c.Next();
  }
  EXPECT_TRUE(any_diff) << "different seeds must scatter differently";
}

}  // namespace
}  // namespace uflip
