// FTL unit and property tests: data integrity (shadow comparison) under
// sequential / random / in-place / reverse workloads for all three FTLs,
// GC and merge accounting, write-amplification sanity, the write cache,
// and the emergent cost behaviours each FTL is responsible for.
#include <gtest/gtest.h>

#include <memory>

#include "src/flash/array.h"
#include "src/ftl/bast_ftl.h"
#include "src/ftl/fast_ftl.h"
#include "src/ftl/ftl.h"
#include "src/ftl/page_mapping_ftl.h"
#include "src/ftl/write_cache.h"
#include "src/util/random.h"

namespace uflip {
namespace {

std::unique_ptr<FlashArray> SmallArray(uint32_t blocks = 64,
                                       uint32_t channels = 2,
                                       uint32_t ppb = 8) {
  ArrayConfig c;
  c.chip_geometry.page_data_bytes = 2048;
  c.chip_geometry.pages_per_block = ppb;
  c.chip_geometry.blocks = blocks;
  c.timing = FlashTiming::Slc();
  c.channels = channels;
  return std::make_unique<FlashArray>(c);
}

enum class Kind { kPageMapping, kBast, kBastStrict, kFast };

std::string KindName(Kind k) {
  switch (k) {
    case Kind::kPageMapping:
      return "PageMapping";
    case Kind::kBast:
      return "Bast";
    case Kind::kBastStrict:
      return "BastStrict";
    case Kind::kFast:
      return "Fast";
  }
  return "?";
}

std::unique_ptr<Ftl> MakeFtl(Kind kind) {
  switch (kind) {
    case Kind::kPageMapping: {
      PageMappingConfig cfg;
      cfg.mapping_unit_pages = 2;
      cfg.overprovision = 0.2;
      cfg.write_streams = 2;
      cfg.gc_high_watermark_blocks = 4;
      return std::make_unique<PageMappingFtl>(SmallArray(96, 2), cfg);
    }
    case Kind::kBast: {
      BastConfig cfg;
      cfg.log_blocks = 4;
      return std::make_unique<BastFtl>(SmallArray(), cfg);
    }
    case Kind::kBastStrict: {
      BastConfig cfg;
      cfg.log_blocks = 4;
      cfg.strict_sequential_log = true;
      return std::make_unique<BastFtl>(SmallArray(), cfg);
    }
    case Kind::kFast: {
      FastConfig cfg;
      cfg.log_region_blocks = 6;
      return std::make_unique<FastFtl>(SmallArray(), cfg);
    }
  }
  return nullptr;
}

// ----- Shadow-integrity property tests across all FTLs -----

class FtlIntegrityTest : public testing::TestWithParam<Kind> {
 protected:
  void SetUp() override {
    ftl_ = MakeFtl(GetParam());
    shadow_.assign(ftl_->logical_pages(), 0);
  }

  void Write(uint64_t lpn, uint32_t n) {
    std::vector<uint64_t> tokens(n);
    for (uint32_t i = 0; i < n; ++i) {
      tokens[i] = ++counter_;
      shadow_[lpn + i] = tokens[i];
    }
    FtlCost cost;
    Status s = ftl_->Write(lpn, n, tokens.data(), &cost);
    ASSERT_TRUE(s.ok()) << KindName(GetParam()) << ": " << s;
    EXPECT_GT(cost.service_us, 0);
  }

  void VerifyAll() {
    const uint32_t chunk = 16;
    for (uint64_t p = 0; p < shadow_.size(); p += chunk) {
      uint32_t n =
          static_cast<uint32_t>(std::min<uint64_t>(chunk, shadow_.size() - p));
      std::vector<uint64_t> tokens;
      FtlCost cost;
      ASSERT_TRUE(ftl_->Read(p, n, &tokens, &cost).ok());
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(tokens[i], shadow_[p + i])
            << KindName(GetParam()) << " page " << p + i;
      }
    }
  }

  std::unique_ptr<Ftl> ftl_;
  std::vector<uint64_t> shadow_;
  uint64_t counter_ = 0;
};

TEST_P(FtlIntegrityTest, UnwrittenReadsAsZero) {
  std::vector<uint64_t> tokens;
  FtlCost cost;
  ASSERT_TRUE(ftl_->Read(0, 8, &tokens, &cost).ok());
  for (uint64_t t : tokens) EXPECT_EQ(t, 0u);
}

TEST_P(FtlIntegrityTest, SequentialFillRoundTrips) {
  for (uint64_t p = 0; p + 4 <= shadow_.size(); p += 4) Write(p, 4);
  VerifyAll();
}

TEST_P(FtlIntegrityTest, RandomOverwritesRoundTrip) {
  // Fill first so overwrites hit mapped space.
  for (uint64_t p = 0; p + 8 <= shadow_.size(); p += 8) Write(p, 8);
  Rng rng(GetParam() == Kind::kFast ? 5 : 6);
  for (int i = 0; i < 600; ++i) {
    uint32_t n = 1 + static_cast<uint32_t>(rng.UniformU64(6));
    uint64_t lpn = rng.UniformU64(shadow_.size() - n);
    Write(lpn, n);
  }
  VerifyAll();
}

TEST_P(FtlIntegrityTest, InPlaceHammerRoundTrips) {
  for (int i = 0; i < 300; ++i) Write(10, 4);
  VerifyAll();
}

TEST_P(FtlIntegrityTest, ReverseSequentialRoundTrips) {
  uint64_t n = std::min<uint64_t>(shadow_.size(), 128);
  for (uint64_t i = 0; i < n / 4; ++i) {
    Write(n - (i + 1) * 4, 4);
  }
  VerifyAll();
}

TEST_P(FtlIntegrityTest, OutOfRangeRejected) {
  FtlCost cost;
  std::vector<uint64_t> tokens(4, 1);
  EXPECT_EQ(ftl_->Write(ftl_->logical_pages() - 1, 4, tokens.data(), &cost)
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ftl_->Read(ftl_->logical_pages(), 1, nullptr, &cost).code(),
            StatusCode::kOutOfRange);
}

TEST_P(FtlIntegrityTest, StatsTrackHostAndFlashOps) {
  Write(0, 8);
  const FtlStats& s = ftl_->stats();
  EXPECT_EQ(s.host_page_writes, 8u);
  EXPECT_GE(s.flash_page_programs, 8u);
  FtlCost cost;
  ASSERT_TRUE(ftl_->Read(0, 8, nullptr, &cost).ok());
  EXPECT_EQ(ftl_->stats().host_page_reads, 8u);
}

TEST_P(FtlIntegrityTest, SustainedRandomChurnNeverFails) {
  // Write ~5x the logical capacity randomly; GC/merges must always
  // reclaim space and data must stay intact.
  Rng rng(99);
  uint64_t budget = shadow_.size() * 5;
  uint64_t written = 0;
  while (written < budget) {
    uint32_t n = 1 + static_cast<uint32_t>(rng.UniformU64(8));
    uint64_t lpn = rng.UniformU64(shadow_.size() - n);
    Write(lpn, n);
    written += n;
  }
  VerifyAll();
  // Write amplification must be finite and sane (> 1, < 40).
  double wa = ftl_->stats().WriteAmplification();
  EXPECT_GT(wa, 0.99) << ftl_->DebugString();
  EXPECT_LT(wa, 40.0) << ftl_->DebugString();
}

INSTANTIATE_TEST_SUITE_P(AllFtls, FtlIntegrityTest,
                         testing::Values(Kind::kPageMapping, Kind::kBast,
                                         Kind::kBastStrict, Kind::kFast),
                         [](const testing::TestParamInfo<Kind>& info) {
                           return KindName(info.param);
                         });

// ----- FTL-specific behaviour -----

TEST(PageMappingFtlTest, SequentialCheaperThanScatteredAfterChurn) {
  PageMappingConfig cfg;
  cfg.mapping_unit_pages = 2;
  cfg.overprovision = 0.1;
  cfg.write_streams = 2;
  auto ftl = std::make_unique<PageMappingFtl>(SmallArray(256, 2, 16), cfg);
  uint64_t pages = ftl->logical_pages();
  std::vector<uint64_t> tok(16, 1);
  // Fill, then churn randomly to reach steady state.
  FtlCost fill;
  for (uint64_t p = 0; p + 16 <= pages; p += 16) {
    ASSERT_TRUE(ftl->Write(p, 16, tok.data(), &fill).ok());
  }
  Rng rng(4);
  FtlCost churn;
  for (int i = 0; i < 2000; ++i) {
    uint64_t lpn = rng.UniformU64(pages / 16) * 16;
    ASSERT_TRUE(ftl->Write(lpn, 16, tok.data(), &churn).ok());
  }
  // Sequential overwrite passes vs random scatter, same volume. The
  // first sequential pass still collects garbage left by the random
  // churn; steady-state sequential behaviour shows from the second
  // pass on (its overwrites invalidate whole blocks).
  FtlCost warm;
  for (uint64_t p = 0; p + 16 <= pages / 2; p += 16) {
    ASSERT_TRUE(ftl->Write(p, 16, tok.data(), &warm).ok());
  }
  FtlCost seq;
  for (uint64_t p = 0; p + 16 <= pages / 2; p += 16) {
    ASSERT_TRUE(ftl->Write(p, 16, tok.data(), &seq).ok());
  }
  FtlCost rnd;
  for (uint64_t i = 0; i + 16 <= pages / 2; i += 16) {
    uint64_t lpn = rng.UniformU64(pages / 16) * 16;
    ASSERT_TRUE(ftl->Write(lpn, 16, tok.data(), &rnd).ok());
  }
  EXPECT_LT(seq.service_us, rnd.service_us);
}

TEST(PageMappingFtlTest, BackgroundWorkRefillsFreePool) {
  PageMappingConfig cfg;
  cfg.mapping_unit_pages = 1;
  cfg.overprovision = 0.2;
  cfg.async_gc = true;
  cfg.gc_high_watermark_blocks = 8;
  auto ftl = std::make_unique<PageMappingFtl>(SmallArray(128, 2), cfg);
  uint64_t pages = ftl->logical_pages();
  std::vector<uint64_t> tok(8, 1);
  FtlCost cost;
  for (uint64_t p = 0; p + 8 <= pages; p += 8) {
    ASSERT_TRUE(ftl->Write(p, 8, tok.data(), &cost).ok());
  }
  Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(
        ftl->Write(rng.UniformU64(pages - 8), 8, tok.data(), &cost).ok());
  }
  ASSERT_GT(ftl->PendingBackgroundUs(), 0);
  uint64_t before = ftl->FreeBlocks();
  double used = ftl->BackgroundWork(1e9);
  EXPECT_GT(used, 0);
  EXPECT_GT(ftl->FreeBlocks(), before);
  EXPECT_EQ(ftl->PendingBackgroundUs(), 0);
}

TEST(PageMappingFtlTest, NoAsyncGcMeansNoPendingWork) {
  PageMappingConfig cfg;
  cfg.mapping_unit_pages = 1;
  cfg.overprovision = 0.2;
  cfg.async_gc = false;
  auto ftl = std::make_unique<PageMappingFtl>(SmallArray(64, 2), cfg);
  EXPECT_EQ(ftl->PendingBackgroundUs(), 0);
  EXPECT_EQ(ftl->BackgroundWork(1e6), 0);
}

TEST(PageMappingFtlTest, PartialMappingUnitWritePaysRmw) {
  PageMappingConfig cfg;
  cfg.mapping_unit_pages = 4;  // 8KB mapping unit
  cfg.overprovision = 0.2;
  auto ftl = std::make_unique<PageMappingFtl>(SmallArray(64, 1), cfg);
  std::vector<uint64_t> tok(4, 7);
  FtlCost full;
  ASSERT_TRUE(ftl->Write(0, 4, tok.data(), &full).ok());
  FtlCost partial;
  ASSERT_TRUE(ftl->Write(1, 2, tok.data(), &partial).ok());
  EXPECT_GT(partial.rmw_pages, 0u);
  EXPECT_GT(partial.service_us, full.service_us);
  // Content must survive the RMW.
  std::vector<uint64_t> tokens;
  FtlCost c;
  ASSERT_TRUE(ftl->Read(0, 4, &tokens, &c).ok());
  EXPECT_EQ(tokens[0], 7u);
  EXPECT_EQ(tokens[3], 7u);
}

TEST(BastFtlTest, SequentialUsesSwitchMerges) {
  BastConfig cfg;
  cfg.log_blocks = 4;
  auto ftl = std::make_unique<BastFtl>(SmallArray(64, 1), cfg);
  uint64_t pages = ftl->logical_pages();
  std::vector<uint64_t> tok(8, 1);
  FtlCost cost;
  // Two full sequential passes (second one exercises merges).
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t p = 0; p + 8 <= pages; p += 8) {
      ASSERT_TRUE(ftl->Write(p, 8, tok.data(), &cost).ok());
    }
  }
  const FtlStats& s = ftl->stats();
  // Switch merges move no pages: flash programs stay close to host
  // writes.
  EXPECT_LT(s.WriteAmplification(), 1.3) << ftl->DebugString();
}

TEST(BastFtlTest, RandomThrashesLogPool) {
  BastConfig cfg;
  cfg.log_blocks = 4;
  auto ftl = std::make_unique<BastFtl>(SmallArray(64, 1), cfg);
  uint64_t pages = ftl->logical_pages();
  std::vector<uint64_t> tok(8, 1);
  FtlCost cost;
  for (uint64_t p = 0; p + 8 <= pages; p += 8) {
    ASSERT_TRUE(ftl->Write(p, 8, tok.data(), &cost).ok());
  }
  Rng rng(8);
  FtlCost rnd;
  uint64_t rnd_writes = 200;
  uint64_t merges_before = ftl->stats().merges;
  for (uint64_t i = 0; i < rnd_writes; ++i) {
    // Sub-block (4-page) writes at random 4-page-aligned offsets: most
    // land mid-block, so log evictions pay full merges.
    uint64_t lpn = rng.UniformU64(pages / 4) * 4;
    ASSERT_TRUE(ftl->Write(lpn, 4, tok.data(), &rnd).ok());
  }
  // The 4-entry pool thrashes: merges scale with the random writes.
  EXPECT_GT(ftl->stats().merges - merges_before, rnd_writes / 4);
  EXPECT_GT(ftl->stats().WriteAmplification(), 1.5);
}

TEST(BastFtlTest, StrictLogMergesOnNonAscendingAppend) {
  BastConfig cfg;
  cfg.log_blocks = 4;
  cfg.strict_sequential_log = true;
  auto ftl = std::make_unique<BastFtl>(SmallArray(64, 1), cfg);
  std::vector<uint64_t> tok(2, 1);
  FtlCost c1;
  ASSERT_TRUE(ftl->Write(0, 2, tok.data(), &c1).ok());
  uint64_t merges_before = ftl->stats().merges;
  // Re-writing the same offsets violates ascending order -> merge.
  FtlCost c2;
  ASSERT_TRUE(ftl->Write(0, 2, tok.data(), &c2).ok());
  EXPECT_GT(ftl->stats().merges, merges_before);
  EXPECT_GT(c2.service_us, c1.service_us);
}

TEST(BastFtlTest, LenientLogAbsorbsInPlaceUntilFull) {
  BastConfig cfg;
  cfg.log_blocks = 4;
  cfg.strict_sequential_log = false;
  auto ftl = std::make_unique<BastFtl>(SmallArray(64, 1), cfg);
  std::vector<uint64_t> tok(2, 1);
  FtlCost c;
  ASSERT_TRUE(ftl->Write(0, 2, tok.data(), &c).ok());
  uint64_t merges_start = ftl->stats().merges;
  // ppb = 8: three more 2-page in-place writes fit in the log.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ftl->Write(0, 2, tok.data(), &c).ok());
  }
  EXPECT_EQ(ftl->stats().merges, merges_start);
  // The next one fills the log -> merge.
  ASSERT_TRUE(ftl->Write(0, 2, tok.data(), &c).ok());
  EXPECT_GT(ftl->stats().merges, merges_start);
}

TEST(FastFtlTest, LocalRandomWritesSupersedeInLog) {
  FastConfig cfg;
  cfg.log_region_blocks = 8;
  auto ftl = std::make_unique<FastFtl>(SmallArray(96, 1), cfg);
  uint64_t pages = ftl->logical_pages();
  std::vector<uint64_t> tok(2, 1);
  FtlCost cost;
  for (uint64_t p = 0; p + 2 <= pages; p += 2) {
    ASSERT_TRUE(ftl->Write(p, 2, tok.data(), &cost).ok());
  }
  // Local random writes confined to one block's worth of pages.
  Rng rng(2);
  uint64_t merges_before = ftl->stats().merges;
  FtlCost local;
  for (int i = 0; i < 400; ++i) {
    uint64_t lpn = rng.UniformU64(6);
    ASSERT_TRUE(ftl->Write(lpn, 2, tok.data(), &local).ok());
  }
  uint64_t local_merges = ftl->stats().merges - merges_before;
  // Wide random writes, same count.
  merges_before = ftl->stats().merges;
  FtlCost wide;
  for (int i = 0; i < 400; ++i) {
    uint64_t lpn = rng.UniformU64(pages - 2);
    ASSERT_TRUE(ftl->Write(lpn, 2, tok.data(), &wide).ok());
  }
  uint64_t wide_merges = ftl->stats().merges - merges_before;
  EXPECT_LT(local_merges, wide_merges / 2);
  EXPECT_LT(local.service_us, wide.service_us);
}

TEST(WriteCacheTest, CoalescesOverwritesAndReadsThrough) {
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  auto inner = std::make_unique<PageMappingFtl>(SmallArray(64, 1), pm);
  WriteCacheConfig cc;
  cc.capacity_pages = 64;
  cc.max_coalesce = 1000000;  // effectively unlimited for this test
  WriteCache cache(std::move(inner), cc);

  std::vector<uint64_t> tok{1, 2, 3, 4};
  FtlCost c;
  ASSERT_TRUE(cache.Write(0, 4, tok.data(), &c).ok());
  EXPECT_EQ(cache.DirtyPages(), 4u);
  // Overwrite in cache: inner FTL untouched.
  uint64_t programs = cache.stats().flash_page_programs;
  std::vector<uint64_t> tok2{5, 6, 7, 8};
  ASSERT_TRUE(cache.Write(0, 4, tok2.data(), &c).ok());
  EXPECT_EQ(cache.stats().flash_page_programs, programs);
  // Read-through serves the cached content.
  std::vector<uint64_t> tokens;
  ASSERT_TRUE(cache.Read(0, 4, &tokens, &c).ok());
  EXPECT_EQ(tokens[0], 5u);
  EXPECT_EQ(tokens[3], 8u);
  // FlushAll pushes to flash; content still correct.
  ASSERT_TRUE(cache.FlushAll(&c).ok());
  EXPECT_EQ(cache.DirtyPages(), 0u);
  tokens.clear();
  ASSERT_TRUE(cache.Read(0, 4, &tokens, &c).ok());
  EXPECT_EQ(tokens[0], 5u);
  EXPECT_EQ(tokens[3], 8u);
}

TEST(WriteCacheTest, EvictsAtCapacityInRuns) {
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  auto inner = std::make_unique<PageMappingFtl>(SmallArray(64, 1), pm);
  WriteCacheConfig cc;
  cc.capacity_pages = 8;
  WriteCache cache(std::move(inner), cc);
  std::vector<uint64_t> tok(4, 9);
  FtlCost c;
  for (uint64_t p = 0; p < 40; p += 4) {
    ASSERT_TRUE(cache.Write(p, 4, tok.data(), &c).ok());
    EXPECT_LE(cache.DirtyPages(), 8u);
  }
  EXPECT_GT(cache.stats().flash_page_programs, 0u);
}

TEST(WriteCacheTest, MaxCoalesceForcesDestage) {
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  auto inner = std::make_unique<PageMappingFtl>(SmallArray(64, 1), pm);
  WriteCacheConfig cc;
  cc.capacity_pages = 64;
  cc.max_coalesce = 2;
  WriteCache cache(std::move(inner), cc);
  std::vector<uint64_t> tok(2, 3);
  FtlCost c;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.Write(0, 2, tok.data(), &c).ok());
  }
  // With max_coalesce 2, ~every third write destages.
  EXPECT_GT(cache.stats().flash_page_programs, 2u);
  EXPECT_LT(cache.stats().flash_page_programs, 20u);
}

}  // namespace
}  // namespace uflip
