// Fixture: thread identity near seeds must fire [thread-id].
#include <thread>

unsigned long DeriveSeed(unsigned long base, unsigned long worker_id) {
  unsigned long seed = base + worker_id;
  auto id = std::this_thread::get_id();
  (void)id;
  return seed;
}
