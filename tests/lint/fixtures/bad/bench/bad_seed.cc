// Fixture: unbanded seed derivations in bench/ must fire [seed-band].
struct Opts {
  unsigned long seed = 0;
};
struct Rng {
  explicit Rng(unsigned long) {}
};
struct Flags {
  unsigned GetUint32(const char*, unsigned def) const { return def; }
};

void Run(const Flags& flags) {
  Opts opts;
  opts.seed = 42;               // literal seed
  Rng rng(12345);               // literal-seeded stream
  unsigned s = flags.GetUint32("seed", 1);  // raw flag read
  (void)rng;
  (void)s;
}
