// Fixture: unannotated wall-clock reads in src/ must fire [wall-clock].
#include <chrono>
#include <ctime>

uint64_t Stamp() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  auto t2 = std::chrono::steady_clock::now();
  (void)t2;
  return static_cast<uint64_t>(time(nullptr));
}
