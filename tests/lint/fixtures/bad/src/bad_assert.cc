// Fixture: assert() for invariants in src/ must fire [check-macro]
// (it vanishes under NDEBUG; UFLIP_CHECK does not).
#include <cassert>

int Divide(int a, int b) {
  assert(b != 0);
  return a / b;
}
