// Fixture: a stale exemption and an unknown rule name must fire
// [lint-annotation].

// uflip-lint: allow(wall-clock) -- suppresses nothing below
int NothingToAllowHere() { return 0; }

// uflip-lint: allow(no-such-rule)
int UnknownRule() { return 1; }
