// Fixture: raw libc / std randomness in src/ must fire [rand].
#include <cstdlib>
#include <random>

int Roll() {
  std::random_device rd;
  return std::rand() + static_cast<int>(rd());
}
