// Fixture: annotated exemptions and banded seeds are clean.
#include <chrono>
#include <cstdint>

double WallSeconds() {
  // uflip-lint: allow(wall-clock) -- fixture: sanctioned timing site
  auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() -  // uflip-lint: allow(wall-clock) -- same
             start)
      .count();
}
