// Fixture: seeds routed through the banded helpers are clean.
#include <cstdint>

inline constexpr uint64_t kPrepSeedBand = (1ULL << 32) | 0xF1A5;

struct Flags {
  uint32_t GetUint32(const char*, uint32_t def) const { return def; }
};
inline uint32_t SeedFromFlags(const Flags& flags) {
  return flags.GetUint32("not-a-seed-key", 1);
}

uint64_t Derive(const Flags& flags, uint32_t rep) {
  uint64_t workload = SeedFromFlags(flags) + rep;
  uint64_t prep = kPrepSeedBand + rep;
  return workload ^ prep;
}
