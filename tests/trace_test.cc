// Trace subsystem tests: CSV/binary round-trips (byte-exact), format
// sniffing, malformed-trace error paths, RecordingDevice capture,
// replay timing modes, LBA rescaling, record->write->read->replay
// determinism on a SimDevice under the virtual clock, and the synthetic
// generator family.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "src/device/mem_device.h"
#include "src/run/phases.h"
#include "src/run/trace_run.h"
#include "src/trace/recording_device.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/util/units.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "uflip_trace_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Trace SmallTrace() {
  Trace t;
  t.meta.source = "unit-test";
  t.meta.capacity_bytes = 1 << 20;
  t.events = {
      {0, 0, 4096, IoMode::kRead, 263.84},
      {1000, 4096, 4096, IoMode::kWrite, 412.141},
      {2500, 512, 512, IoMode::kRead, 92.0},
  };
  return t;
}

std::unique_ptr<MemDevice> Mem(uint64_t capacity = 64ULL << 20) {
  MemDeviceConfig cfg;
  cfg.capacity_bytes = capacity;
  return std::make_unique<MemDevice>(cfg, std::make_shared<VirtualClock>());
}

// ---------------------------------------------------------------------
// Formats
// ---------------------------------------------------------------------

TEST(TraceIoTest, CsvRoundTripIsByteExact) {
  Trace t = SmallTrace();
  std::string p1 = TempPath("rt1.csv"), p2 = TempPath("rt2.csv");
  ASSERT_TRUE(WriteTrace(p1, TraceFormat::kCsv, t).ok());
  auto back = ReadTrace(p1);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->meta, t.meta);
  ASSERT_EQ(back->events.size(), t.events.size());
  ASSERT_TRUE(WriteTrace(p2, TraceFormat::kCsv, *back).ok());
  EXPECT_EQ(Slurp(p1), Slurp(p2));
}

TEST(TraceIoTest, BinaryRoundTripIsByteExact) {
  Trace t = SmallTrace();
  std::string p1 = TempPath("rt1.utr"), p2 = TempPath("rt2.utr");
  ASSERT_TRUE(WriteTrace(p1, TraceFormat::kBinary, t).ok());
  auto back = ReadTrace(p1);
  ASSERT_TRUE(back.ok()) << back.status();
  // Binary preserves doubles exactly: the traces compare equal.
  EXPECT_EQ(*back, t);
  ASSERT_TRUE(WriteTrace(p2, TraceFormat::kBinary, *back).ok());
  EXPECT_EQ(Slurp(p1), Slurp(p2));
}

TEST(TraceIoTest, ReaderSniffsFormatRegardlessOfExtension) {
  Trace t = SmallTrace();
  std::string p = TempPath("sniff.dat");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kCsv, t).ok());
  auto r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->format(), TraceFormat::kCsv);
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, t).ok());
  r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->format(), TraceFormat::kBinary);
}

TEST(TraceIoTest, FormatForPathUsesExtension) {
  EXPECT_EQ(FormatForPath("a/b.csv"), TraceFormat::kCsv);
  EXPECT_EQ(FormatForPath("a/b.utr"), TraceFormat::kBinary);
  EXPECT_EQ(FormatForPath("noext"), TraceFormat::kBinary);
}

TEST(TraceIoTest, StreamingReaderSignalsEndOfTraceExplicitly) {
  std::string p = TempPath("stream.csv");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kCsv, SmallTrace()).ok());
  auto r = TraceReader::Open(p);
  ASSERT_TRUE(r.ok());
  TraceEvent e;
  for (int i = 0; i < 3; ++i) {
    auto more = r->Next(&e);
    ASSERT_TRUE(more.ok()) << more.status();
    EXPECT_TRUE(*more);
  }
  // Clean EOF is Ok(false) -- never an error status -- and is sticky.
  for (int i = 0; i < 2; ++i) {
    auto end = r->Next(&e);
    ASSERT_TRUE(end.ok()) << end.status();
    EXPECT_FALSE(*end);
  }
}

// ---------------------------------------------------------------------
// Malformed traces
// ---------------------------------------------------------------------

TEST(TraceIoTest, RejectsBadMode) {
  std::string p = TempPath("badmode.csv");
  std::ofstream(p) << "# uflip-trace v1\n# source=x\n# capacity_bytes=1024\n"
                   << "submit_us,offset,size,mode,rt_us\n"
                   << "0,0,512,fread,1.000\n";
  auto t = ReadTrace(p);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kCorruption);
}

TEST(TraceIoTest, RejectsNonNumericField) {
  std::string p = TempPath("badnum.csv");
  std::ofstream(p) << "# uflip-trace v1\n# source=x\n# capacity_bytes=1024\n"
                   << "submit_us,offset,size,mode,rt_us\n"
                   << "zero,0,512,read,1.000\n";
  EXPECT_EQ(ReadTrace(p).status().code(), StatusCode::kCorruption);
}

TEST(TraceIoTest, RejectsUnsortedTimestamps) {
  std::string p = TempPath("unsorted.csv");
  Trace t = SmallTrace();
  std::swap(t.events[0], t.events[2]);  // now decreasing
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kCsv, t).ok());
  auto back = ReadTrace(p);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsEventBeyondRecordedCapacity) {
  std::string p = TempPath("overcap.csv");
  Trace t = SmallTrace();
  t.events[1].offset = t.meta.capacity_bytes;  // outside its own domain
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kCsv, t).ok());
  EXPECT_EQ(ReadTrace(p).status().code(), StatusCode::kOutOfRange);
}

TEST(TraceIoTest, RejectsTruncatedBinary) {
  std::string p = TempPath("trunc.utr");
  ASSERT_TRUE(WriteTrace(p, TraceFormat::kBinary, SmallTrace()).ok());
  std::string bytes = Slurp(p);
  std::ofstream(p, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 8);
  EXPECT_EQ(ReadTrace(p).status().code(), StatusCode::kCorruption);
}

TEST(TraceIoTest, WriterRejectsUnreadableSourceNames) {
  Trace t = SmallTrace();
  t.meta.source = "multi\nline";  // would corrupt the CSV header
  EXPECT_FALSE(
      WriteTrace(TempPath("badsrc.csv"), TraceFormat::kCsv, t).ok());
  t.meta.source = std::string((1 << 20) + 1, 'x');  // reader's limit
  EXPECT_FALSE(
      WriteTrace(TempPath("badsrc.utr"), TraceFormat::kBinary, t).ok());
}

TEST(TraceIoTest, RejectsGarbageFile) {
  std::string p = TempPath("garbage.bin");
  std::ofstream(p) << "this is not a trace";
  EXPECT_EQ(ReadTrace(p).status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// RecordingDevice
// ---------------------------------------------------------------------

TEST(RecordingDeviceTest, CapturesEveryIoAndMeta) {
  auto dev = Mem();
  RecordingDevice rec(dev.get());
  PatternSpec spec = PatternSpec::SequentialRead(32768, 0, 8 << 20);
  spec.io_count = 16;
  auto run = ExecuteRun(&rec, spec);
  ASSERT_TRUE(run.ok());

  const Trace& t = rec.trace();
  EXPECT_EQ(t.meta.source, "mem");
  EXPECT_EQ(t.meta.capacity_bytes, dev->capacity_bytes());
  ASSERT_EQ(t.events.size(), run->samples.size());
  for (size_t i = 0; i < t.events.size(); ++i) {
    const IoSample& s = run->samples[i];
    EXPECT_EQ(t.events[i].submit_us, s.submit_us);
    EXPECT_EQ(t.events[i].offset, s.req.offset);
    EXPECT_EQ(t.events[i].size, s.req.size);
    EXPECT_EQ(t.events[i].mode, s.req.mode);
    EXPECT_DOUBLE_EQ(t.events[i].rt_us, s.rt_us);
  }
  EXPECT_TRUE(t.Validate().ok());
}

TEST(RecordingDeviceTest, ResetAndTakeTrace) {
  auto dev = Mem();
  RecordingDevice rec(dev.get());
  ASSERT_TRUE(rec.Submit(IoRequest{0, 4096, IoMode::kRead}).ok());
  rec.Reset();
  EXPECT_TRUE(rec.trace().events.empty());
  ASSERT_TRUE(rec.Submit(IoRequest{0, 4096, IoMode::kWrite}).ok());
  Trace taken = rec.TakeTrace();
  EXPECT_EQ(taken.events.size(), 1u);
  EXPECT_EQ(taken.meta.source, "mem");
  EXPECT_TRUE(rec.trace().events.empty());
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

TEST(TraceRunTest, ClosedLoopReplayMatchesRecordingOnSimDevice) {
  // Record a random-write run on one fresh device, round-trip the trace
  // through a file, replay closed-loop on an identical fresh device:
  // the simulator is deterministic, so response times must match
  // exactly.
  auto recorded_dev = MakeTestDevice("mtron", 16 << 20);
  RecordingDevice rec(recorded_dev.get());
  PatternSpec spec = PatternSpec::RandomWrite(32768, 0, 8 << 20);
  spec.io_count = 128;
  auto run = ExecuteRun(&rec, spec);
  ASSERT_TRUE(run.ok());

  std::string p = TempPath("sim.utr");
  ASSERT_TRUE(rec.WriteTo(p, TraceFormat::kBinary).ok());
  auto trace = ReadTrace(p);
  ASSERT_TRUE(trace.ok()) << trace.status();

  auto replay_dev = MakeTestDevice("mtron", 16 << 20);
  auto replay = ExecuteTraceRun(replay_dev.get(), *trace, ReplayOptions{});
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->samples.size(), run->samples.size());
  for (size_t i = 0; i < replay->samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(replay->samples[i].rt_us, run->samples[i].rt_us)
        << "IO " << i;
    EXPECT_EQ(replay->samples[i].submit_us, run->samples[i].submit_us);
  }
}

TEST(TraceRunTest, OriginalTimingHonorsInterArrivalTimes) {
  auto dev = Mem();
  Trace t;
  t.meta.capacity_bytes = dev->capacity_bytes();
  for (uint64_t i = 0; i < 8; ++i) {
    t.events.push_back(
        TraceEvent{i * 1000, i * 32768, 32768, IoMode::kRead, 0});
  }
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  auto run = ExecuteTraceRun(dev.get(), t, opts);
  ASSERT_TRUE(run.ok());
  // MemDevice reads take ~264us < 1000us gaps: submissions land exactly
  // on the recorded schedule.
  for (size_t i = 0; i < run->samples.size(); ++i) {
    EXPECT_EQ(run->samples[i].submit_us - run->samples[0].submit_us,
              i * 1000);
  }
  // Clock left past the last completion.
  EXPECT_GE(dev->clock()->NowUs(), 7 * 1000 + 263);
}

TEST(TraceRunTest, ScaledTimingStretchesAndCompresses) {
  for (double scale : {2.0, 0.5}) {
    auto dev = Mem();
    Trace t;
    t.meta.capacity_bytes = dev->capacity_bytes();
    for (uint64_t i = 0; i < 4; ++i) {
      t.events.push_back(
          TraceEvent{i * 10000, i * 32768, 32768, IoMode::kRead, 0});
    }
    ReplayOptions opts;
    opts.timing = ReplayTiming::kScaled;
    opts.time_scale = scale;
    auto run = ExecuteTraceRun(dev.get(), t, opts);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->samples[3].submit_us - run->samples[0].submit_us,
              static_cast<uint64_t>(30000 * scale));
  }
}

TEST(TraceRunTest, ClosedLoopIgnoresRecordedTimestamps) {
  auto dev = Mem();
  Trace t;
  t.meta.capacity_bytes = dev->capacity_bytes();
  // Huge recorded gaps; closed-loop replay must not sleep them.
  for (uint64_t i = 0; i < 4; ++i) {
    t.events.push_back(
        TraceEvent{i * 10000000, i * 32768, 32768, IoMode::kRead, 0});
  }
  auto run = ExecuteTraceRun(dev.get(), t, ReplayOptions{});
  ASSERT_TRUE(run.ok());
  EXPECT_LT(dev->clock()->NowUs(), 10000u);
}

TEST(TraceRunTest, RejectsEmptyTraceAndBadScale) {
  auto dev = Mem();
  Trace empty;
  EXPECT_FALSE(ExecuteTraceRun(dev.get(), empty, ReplayOptions{}).ok());
  Trace t;
  t.events.push_back(TraceEvent{0, 0, 4096, IoMode::kRead, 0});
  ReplayOptions opts;
  opts.timing = ReplayTiming::kScaled;
  opts.time_scale = 0;
  EXPECT_FALSE(ExecuteTraceRun(dev.get(), t, opts).ok());
}

TEST(TraceRunTest, ReplayBeyondCapacityNeedsRescale) {
  auto small = Mem(32ULL << 20);
  Trace t;
  t.meta.source = "bigdev";
  t.meta.capacity_bytes = 64ULL << 20;
  t.events.push_back(
      TraceEvent{0, (64ULL << 20) - 32768, 32768, IoMode::kRead, 0});

  auto fail = ExecuteTraceRun(small.get(), t, ReplayOptions{});
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kOutOfRange);

  ReplayOptions opts;
  opts.rescale_lba = true;
  auto ok = ExecuteTraceRun(small.get(), t, opts);
  ASSERT_TRUE(ok.ok()) << ok.status();
  const IoSample& s = ok->samples[0];
  EXPECT_LE(s.req.offset + s.req.size, small->capacity_bytes());
  EXPECT_EQ(s.req.offset % kSector, 0u);
}

TEST(TraceRunTest, RescaleLbaBounds) {
  const uint64_t from = 64ULL << 20, to = 32ULL << 20;
  // Proportional mapping, sector aligned.
  auto mid = RescaleLba(32ULL << 20, 4096, from, to);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 16ULL << 20);
  // Last IO of the recorded device still fits the smaller one.
  auto last = RescaleLba(from - 4096, 4096, from, to);
  ASSERT_TRUE(last.ok());
  EXPECT_LE(*last + 4096, to);
  EXPECT_EQ(*last % kSector, 0u);
  // Growing works too and preserves order.
  auto grown = RescaleLba(16ULL << 20, 4096, to, from);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(*grown, 32ULL << 20);
  // IO bigger than the target device cannot be rescaled.
  EXPECT_FALSE(RescaleLba(0, 1 << 20, from, 512 << 10).ok());
  // Event outside its own recorded domain is corrupt input.
  EXPECT_FALSE(RescaleLba(from, 4096, from, to).ok());
}

// ---------------------------------------------------------------------
// Synthetic generators
// ---------------------------------------------------------------------

TEST(SyntheticTraceTest, ZipfianSkewsAccessesAndAlignsOffsets) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 4ULL << 20;
  cfg.io_size = 4096;
  cfg.io_count = 8192;
  cfg.theta = 0.9;
  cfg.write_fraction = 1.0;
  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok()) << trace.status();
  ASSERT_TRUE(trace->Validate().ok());
  EXPECT_EQ(trace->events.size(), 8192u);

  std::map<uint64_t, uint32_t> freq;
  for (const TraceEvent& e : trace->events) {
    EXPECT_EQ(e.offset % cfg.io_size, 0u);
    EXPECT_LE(e.offset + e.size, cfg.capacity_bytes);
    EXPECT_EQ(e.mode, IoMode::kWrite);
    ++freq[e.offset];
  }
  uint32_t hottest = 0;
  for (const auto& [off, n] : freq) hottest = std::max(hottest, n);
  // 1024 locations, 8192 IOs: uniform expectation is 8/location; Zipf
  // theta=0.9 concentrates far more on the hottest location.
  EXPECT_GT(hottest, 200u);
}

TEST(SyntheticTraceTest, ZipfianThetaZeroIsRoughlyUniform) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 4ULL << 20;
  cfg.io_size = 4096;
  cfg.io_count = 8192;
  cfg.theta = 0;
  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok());
  std::map<uint64_t, uint32_t> freq;
  for (const TraceEvent& e : trace->events) ++freq[e.offset];
  uint32_t hottest = 0;
  for (const auto& [off, n] : freq) hottest = std::max(hottest, n);
  EXPECT_LT(hottest, 40u);  // uniform: ~8 expected, far from Zipf's spike
}

TEST(SyntheticTraceTest, OltpPairsWritesWithPrecedingReads) {
  OltpTraceConfig cfg;
  cfg.transactions = 512;
  cfg.read_only_fraction = 0.5;
  auto trace = GenerateOltpTrace(cfg);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->Validate().ok());
  uint32_t writes = 0;
  for (size_t i = 0; i < trace->events.size(); ++i) {
    const TraceEvent& e = trace->events[i];
    if (e.mode == IoMode::kWrite) {
      ++writes;
      // Read-modify-write: the write targets the page just read.
      ASSERT_GT(i, 0u);
      EXPECT_EQ(trace->events[i - 1].mode, IoMode::kRead);
      EXPECT_EQ(trace->events[i - 1].offset, e.offset);
    }
  }
  // ~half the transactions update; allow generous binomial slack.
  EXPECT_GT(writes, 200u);
  EXPECT_LT(writes, 312u);
}

TEST(SyntheticTraceTest, MultiStreamIsSequentialPerStream) {
  MultiStreamTraceConfig cfg;
  cfg.capacity_bytes = 16ULL << 20;
  cfg.io_size = 32768;
  cfg.streams = 4;
  cfg.ios_per_stream = 32;
  cfg.gap_us = 100;
  auto trace = GenerateMultiStreamTrace(cfg);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->Validate().ok());
  ASSERT_EQ(trace->events.size(), 4u * 32u);

  uint64_t slice = cfg.capacity_bytes / cfg.streams;
  for (size_t i = 0; i < trace->events.size(); ++i) {
    const TraceEvent& e = trace->events[i];
    uint32_t stream = static_cast<uint32_t>(i % cfg.streams);
    EXPECT_GE(e.offset, stream * slice);
    EXPECT_LT(e.offset, (stream + 1) * slice);
    if (i >= cfg.streams) {
      // Within a stream, strictly sequential by io_size.
      EXPECT_EQ(e.offset, trace->events[i - cfg.streams].offset + cfg.io_size);
    }
  }
}

TEST(SyntheticTraceTest, SyntheticTracesReplayThroughTheSamePath) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 8ULL << 20;
  cfg.io_count = 64;
  cfg.mean_gap_us = 500;
  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok());
  auto dev = Mem(8ULL << 20);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  auto run = ExecuteTraceRun(dev.get(), *trace, opts);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->Stats().count, 64u);
  EXPECT_GT(run->Stats().mean_us, 0);
}

TEST(SyntheticTraceTest, ConfigValidation) {
  ZipfianTraceConfig z;
  z.theta = 1.5;
  EXPECT_FALSE(GenerateZipfianTrace(z).ok());
  z = ZipfianTraceConfig{};
  z.io_size = 0;
  EXPECT_FALSE(GenerateZipfianTrace(z).ok());
  OltpTraceConfig o;
  o.read_only_fraction = -0.1;
  EXPECT_FALSE(GenerateOltpTrace(o).ok());
  MultiStreamTraceConfig m;
  m.streams = 0;
  EXPECT_FALSE(GenerateMultiStreamTrace(m).ok());
  m = MultiStreamTraceConfig{};
  m.streams = 1024;
  m.io_size = 1 << 20;
  m.capacity_bytes = 16ULL << 20;  // slice < one IO
  EXPECT_FALSE(GenerateMultiStreamTrace(m).ok());
}

// ---------------------------------------------------------------------
// Streaming capture
// ---------------------------------------------------------------------

TEST(StreamingCaptureTest, StreamedFileMatchesBufferedWrite) {
  // The same workload captured twice -- once buffered and written at
  // the end, once flushed through a TraceWriter event by event -- must
  // produce byte-identical files in both formats.
  for (TraceFormat format : {TraceFormat::kCsv, TraceFormat::kBinary}) {
    std::string ext = format == TraceFormat::kCsv ? ".csv" : ".utr";
    std::string buffered_path = TempPath("cap_buf" + ext);
    std::string streamed_path = TempPath("cap_stream" + ext);

    PatternSpec spec = PatternSpec::RandomWrite(4096, 0, 8 << 20);
    spec.io_count = 64;

    auto dev1 = Mem();
    RecordingDevice buffered(dev1.get());
    ASSERT_TRUE(ExecuteRun(&buffered, spec).ok());
    ASSERT_TRUE(buffered.WriteTo(buffered_path, format).ok());

    auto dev2 = Mem();
    RecordingDevice streamed(dev2.get());
    ASSERT_TRUE(streamed.StreamTo(streamed_path, format).ok());
    ASSERT_TRUE(ExecuteRun(&streamed, spec).ok());
    ASSERT_TRUE(streamed.Finish().ok());

    EXPECT_TRUE(streamed.trace().events.empty())
        << "streaming capture must not buffer events";
    EXPECT_EQ(streamed.events_captured(), 64u);
    EXPECT_EQ(Slurp(buffered_path), Slurp(streamed_path)) << ext;
  }
}

TEST(StreamingCaptureTest, WriteToIsRejectedWhileStreaming) {
  auto dev = Mem();
  RecordingDevice rec(dev.get());
  ASSERT_TRUE(rec.StreamTo(TempPath("cap_reject.csv"),
                           TraceFormat::kCsv).ok());
  EXPECT_FALSE(rec.WriteTo(TempPath("cap_other.csv"),
                           TraceFormat::kCsv).ok());
  EXPECT_FALSE(rec.StreamTo(TempPath("cap_again.csv"),
                            TraceFormat::kCsv).ok());
  EXPECT_TRUE(rec.Finish().ok());
}

// ---------------------------------------------------------------------
// Phase-aware replay statistics
// ---------------------------------------------------------------------

TEST(TraceRunTest, AutoIoIgnoreDerivesFromReplayedPhases) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 8ULL << 20;
  cfg.io_count = 128;
  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok());
  auto dev = Mem(8ULL << 20);
  ReplayOptions opts;
  opts.io_ignore = ReplayOptions::kAutoIoIgnore;
  auto run = ExecuteTraceRun(dev.get(), *trace, opts);
  ASSERT_TRUE(run.ok()) << run.status();
  // The derived io_ignore is exactly what AnalyzePhases reports for the
  // replayed response times (flat on the analytic device -> 0).
  EXPECT_EQ(run->spec.io_ignore,
            AnalyzePhases(run->ResponseTimes()).startup_ios);
}

TEST(TraceRunTest, ExplicitIoIgnoreIsNotOverridden) {
  ZipfianTraceConfig cfg;
  cfg.capacity_bytes = 8ULL << 20;
  cfg.io_count = 64;
  auto trace = GenerateZipfianTrace(cfg);
  ASSERT_TRUE(trace.ok());
  auto dev = Mem(8ULL << 20);
  ReplayOptions opts;
  opts.io_ignore = 5;
  auto run = ExecuteTraceRun(dev.get(), *trace, opts);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->spec.io_ignore, 5u);
  EXPECT_EQ(run->Stats().count, 59u);
}

}  // namespace
}  // namespace uflip
