// Device-layer tests: SimDevice response-time accounting and
// serialization, token integrity through the whole stack, sub-page
// read-modify-write, device profiles, and the FileDevice real-IO path.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/device/file_device.h"
#include "src/device/mem_device.h"
#include "src/device/profiles.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

TEST(SimDeviceTest, RejectsBadRequests) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  IoRequest zero{0, 0, IoMode::kRead};
  EXPECT_FALSE(dev->SubmitAt(0, zero).ok());
  IoRequest beyond{dev->capacity_bytes(), 4096, IoMode::kRead};
  EXPECT_FALSE(dev->SubmitAt(0, beyond).ok());
}

TEST(SimDeviceTest, ResponseTimesPositiveAndFinite) {
  auto dev = MakeTestDevice("mtron", 32 << 20);
  for (IoMode mode : {IoMode::kRead, IoMode::kWrite}) {
    IoRequest req{0, 32768, mode};
    auto rt = dev->Submit(req);
    ASSERT_TRUE(rt.ok());
    EXPECT_GT(*rt, 0);
    EXPECT_LT(*rt, 10e6);
  }
}

TEST(SimDeviceTest, BusySerializationQueuesOverlappingIos) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  IoRequest req{0, 32768, IoMode::kRead};
  auto rt1 = dev->SubmitAt(1000, req);
  ASSERT_TRUE(rt1.ok());
  // Submitted while the device is still busy: waits in queue.
  auto rt2 = dev->SubmitAt(1000, req);
  ASSERT_TRUE(rt2.ok());
  EXPECT_GT(*rt2, *rt1);
}

TEST(SimDeviceTest, LargerIosTakeLonger) {
  auto dev = MakeTestDevice("transcend-module", 32 << 20);
  double prev = 0;
  for (uint32_t size : {4096u, 32768u, 131072u}) {
    IoRequest req{0, size, IoMode::kRead};
    auto rt = dev->Submit(req);
    ASSERT_TRUE(rt.ok());
    EXPECT_GT(*rt, prev);
    prev = *rt;
  }
}

TEST(SimDeviceTest, TokenIntegrityThroughFullStack) {
  auto dev = MakeTestDevice("samsung", 32 << 20);
  ShadowTester shadow(dev.get());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    uint32_t size = static_cast<uint32_t>(
        (1 + rng.UniformU64(32)) * 4096);
    uint64_t offset =
        rng.UniformU64((dev->capacity_bytes() - size) / 4096) * 4096;
    shadow.Write(offset, size);
  }
  shadow.VerifyAll();
}

TEST(SimDeviceTest, SubPageWritePreservesNeighbouringData) {
  auto dev = MakeTestDevice("kingston-dti", 16 << 20);
  uint32_t page = dev->page_bytes();
  ShadowTester shadow(dev.get());
  shadow.Write(0, page * 4);
  // A 512B-shifted write covering parts of pages 0-1 must not corrupt
  // pages 2-3 (device-level read-modify-write).
  shadow.Write(512, page);
  shadow.VerifyRead(0, page * 4);
}

TEST(SimDeviceTest, RandomReadPenaltyAppliesToNonContiguousReads) {
  auto profile = *ProfileById("transcend-mlc");
  auto dev_or = CreateSimDevice(profile, nullptr, 16 << 20);
  ASSERT_TRUE(dev_or.ok());
  auto dev = std::move(*dev_or);
  IoRequest a{0, 32768, IoMode::kRead};
  (void)dev->Submit(a);  // first read: penalty (cold)
  IoRequest contiguous{32768, 32768, IoMode::kRead};
  auto rt_seq = dev->Submit(contiguous);
  IoRequest jump{8 << 20, 32768, IoMode::kRead};
  auto rt_rand = dev->Submit(jump);
  ASSERT_TRUE(rt_seq.ok());
  ASSERT_TRUE(rt_rand.ok());
  EXPECT_GT(*rt_rand, *rt_seq + 1000);  // 1.5ms penalty on this profile
}

TEST(ProfilesTest, AllElevenDevicesPresent) {
  const auto& all = AllProfiles();
  EXPECT_EQ(all.size(), 11u);
  int representative = 0;
  for (const auto& p : all) {
    EXPECT_TRUE(p.Validate().ok()) << p.id;
    representative += p.representative;
  }
  EXPECT_EQ(representative, 7);  // the seven arrows of Table 2
}

TEST(ProfilesTest, LookupByIdAndUnknown) {
  EXPECT_TRUE(ProfileById("memoright").ok());
  EXPECT_TRUE(ProfileById("kingston-sd").ok());
  EXPECT_FALSE(ProfileById("nope").ok());
}

TEST(ProfilesTest, EveryProfileInstantiatesAndDoesIo) {
  for (const auto& p : AllProfiles()) {
    auto dev = CreateSimDevice(p, nullptr, 16 << 20);
    ASSERT_TRUE(dev.ok()) << p.id << ": " << dev.status();
    IoRequest w{0, 32768, IoMode::kWrite};
    auto rt = (*dev)->Submit(w);
    ASSERT_TRUE(rt.ok()) << p.id << ": " << rt.status();
    EXPECT_GT(*rt, 0) << p.id;
    IoRequest r{0, 32768, IoMode::kRead};
    rt = (*dev)->Submit(r);
    ASSERT_TRUE(rt.ok()) << p.id;
  }
}

TEST(ProfilesTest, CapacityOverrideRespected) {
  auto p = *ProfileById("mtron");
  auto dev = CreateSimDevice(p, nullptr, 64 << 20);
  ASSERT_TRUE(dev.ok());
  // Logical capacity is close to (and below) the requested size plus
  // the reserve slack.
  EXPECT_GE((*dev)->capacity_bytes(), 60ull << 20);
  EXPECT_LE((*dev)->capacity_bytes(), 80ull << 20);
}

TEST(MemDeviceTest, AnalyticCostModel) {
  MemDeviceConfig cfg;
  auto clock = std::make_shared<VirtualClock>();
  MemDevice dev(cfg, clock);
  IoRequest r{0, 10000, IoMode::kRead};
  auto rt = dev.Submit(r);
  ASSERT_TRUE(rt.ok());
  EXPECT_NEAR(*rt, 100.0 + 0.005 * 10000, 1.0);
  EXPECT_FALSE(dev.SubmitAt(0, IoRequest{0, 0, IoMode::kRead}).ok());
}

// A device whose every IO takes a fraction of a microsecond; with
// truncation instead of remainder carry, Submit() would never advance
// the clock.
class FractionalDevice : public BlockDevice {
 public:
  FractionalDevice() : clock_(std::make_shared<VirtualClock>()) {}
  uint64_t capacity_bytes() const override { return 1 << 20; }
  StatusOr<double> SubmitAt(uint64_t, const IoRequest&) override {
    return 0.25;
  }
  Clock* clock() override { return clock_.get(); }
  std::string name() const override { return "fractional"; }

 private:
  std::shared_ptr<VirtualClock> clock_;
};

TEST(BlockDeviceTest, SubmitCarriesSubMicrosecondResponseTimes) {
  FractionalDevice dev;
  IoRequest req{0, 512, IoMode::kRead};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(dev.Submit(req).ok());
  // 8 IOs of 0.25us each: the clock must have advanced the full 2us,
  // not 0 (truncation) and not 8 (rounding every IO up).
  EXPECT_EQ(dev.clock()->NowUs(), 2u);
}

TEST(FileDeviceTest, RoundTripOnScratchFile) {
  std::string path = testing::TempDir() + "/uflip_filedev_test.bin";
  FileDeviceOptions opts;
  opts.create_size_bytes = 4 << 20;
  auto dev = FileDevice::Open(path, opts);
  ASSERT_TRUE(dev.ok()) << dev.status();
  EXPECT_EQ((*dev)->capacity_bytes(), 4ull << 20);
  for (IoMode mode : {IoMode::kWrite, IoMode::kRead}) {
    IoRequest req{65536, 32768, mode};
    auto rt = (*dev)->Submit(req);
    ASSERT_TRUE(rt.ok()) << rt.status();
    EXPECT_GT(*rt, 0);
  }
  // Out-of-range rejected.
  IoRequest beyond{4 << 20, 4096, IoMode::kRead};
  EXPECT_FALSE((*dev)->SubmitAt(0, beyond).ok());
  std::remove(path.c_str());
}

TEST(FileDeviceTest, OpenFailsOnBadPath) {
  FileDeviceOptions opts;
  opts.create_size_bytes = 1 << 20;
  EXPECT_FALSE(FileDevice::Open("/nonexistent-dir-xyz/dev.bin", opts).ok());
}

}  // namespace
}  // namespace uflip
