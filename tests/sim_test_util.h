// Shared helpers for simulator tests: a shadow model that mirrors every
// write made through a SimDevice at flash-page granularity and verifies
// reads, plus small factory helpers for test-sized devices.
#ifndef UFLIP_TESTS_SIM_TEST_UTIL_H_
#define UFLIP_TESTS_SIM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/device/profiles.h"
#include "src/device/sim_device.h"
#include "src/util/random.h"

namespace uflip {

/// Drives a SimDevice with token-tracked IO and checks every read
/// against a page-granular shadow copy.
class ShadowTester {
 public:
  explicit ShadowTester(SimDevice* device)
      : device_(device),
        page_(device->page_bytes()),
        shadow_(device->capacity_bytes() / device->page_bytes(), 0) {}

  /// Writes [offset, offset+size) with fresh tokens; updates the shadow.
  void Write(uint64_t offset, uint32_t size) {
    uint64_t first = offset / page_;
    uint64_t last = (offset + size - 1) / page_;
    std::vector<uint64_t> tokens;
    for (uint64_t p = first; p <= last; ++p) {
      tokens.push_back(++counter_);
      shadow_[p] = counter_;
    }
    auto rt = device_->WriteTokens(device_->virtual_clock()->NowUs(), offset,
                                   size, tokens);
    ASSERT_TRUE(rt.ok()) << rt.status();
    device_->virtual_clock()->SleepUs(static_cast<uint64_t>(*rt));
  }

  /// Reads [offset, offset+size) and verifies tokens page by page.
  void VerifyRead(uint64_t offset, uint32_t size) {
    auto tokens = device_->ReadTokens(offset, size);
    ASSERT_TRUE(tokens.ok()) << tokens.status();
    uint64_t first = offset / page_;
    for (size_t i = 0; i < tokens->size(); ++i) {
      ASSERT_EQ((*tokens)[i], shadow_[first + i])
          << "page " << first + i << " mismatch";
    }
  }

  /// Verifies the entire written device in chunks.
  void VerifyAll(uint32_t chunk_pages = 64) {
    uint64_t total = shadow_.size();
    for (uint64_t p = 0; p < total; p += chunk_pages) {
      uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(chunk_pages, total - p));
      VerifyRead(p * page_, n * page_);
    }
  }

  uint32_t page_bytes() const { return page_; }
  uint64_t pages() const { return shadow_.size(); }

 private:
  SimDevice* device_;
  uint32_t page_;
  std::vector<uint64_t> shadow_;
  uint64_t counter_ = 0;
};

/// A small test device from a named profile (capacity shrunk for speed).
inline std::unique_ptr<SimDevice> MakeTestDevice(
    const std::string& profile_id, uint64_t capacity_bytes = 32ULL << 20) {
  auto profile = ProfileById(profile_id);
  EXPECT_TRUE(profile.ok()) << profile.status();
  auto dev = CreateSimDevice(*profile, nullptr, capacity_bytes);
  EXPECT_TRUE(dev.ok()) << dev.status();
  return std::move(*dev);
}

}  // namespace uflip

#endif  // UFLIP_TESTS_SIM_TEST_UTIL_H_
